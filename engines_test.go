package adaptivetc_test

import (
	"errors"
	"testing"

	"adaptivetc"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/vtime"
	"adaptivetc/problems/comp"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/knight"
	"adaptivetc/problems/nqueens"
	"adaptivetc/problems/pentomino"
	"adaptivetc/problems/strimko"
	"adaptivetc/problems/sudoku"
	"adaptivetc/problems/synthtree"
)

// corpus is the differential-testing workload: one small instance of every
// benchmark family.
func corpus() []adaptivetc.Program {
	t3 := synthtree.Tree3(30000)
	t3.Seed = 5
	atcProg, err := adaptivetc.CompileATC("nqueens", adaptivetc.ATCSources()["nqueens"], map[string]int64{"n": 7})
	if err != nil {
		panic(err)
	}
	return []adaptivetc.Program{
		atcProg,
		nqueens.NewArray(8),
		nqueens.NewCompute(7),
		sudoku.Empty(2),
		sudoku.Input1(3, 50),
		strimko.Diagonal(5, 0),
		knight.NewRect(5, 4, 0, 0),
		pentomino.NewBoard(5, 4, "LNPY", "t"),
		fib.New(16),
		comp.New(200),
		synthtree.New(t3),
	}
}

func parallelEngines() []adaptivetc.Engine {
	return []adaptivetc.Engine{
		adaptivetc.NewCilk(),
		adaptivetc.NewCilkSynched(),
		adaptivetc.NewTascell(),
		adaptivetc.NewAdaptiveTC(),
		adaptivetc.NewCutoffProgrammer(),
		adaptivetc.NewCutoffLibrary(),
		adaptivetc.NewHelpFirst(),
		adaptivetc.NewSLAW(),
	}
}

// TestEnginesMatchSerial is the central differential test: every engine,
// every problem, several worker counts, on the deterministic simulator.
func TestEnginesMatchSerial(t *testing.T) {
	for _, p := range corpus() {
		want, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", p.Name(), err)
		}
		for _, e := range parallelEngines() {
			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				res, err := e.Run(p, adaptivetc.Options{Workers: workers, Seed: int64(workers)})
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", e.Name(), p.Name(), workers, err)
				}
				if res.Value != want.Value {
					t.Errorf("%s/%s P=%d: value %d, serial says %d",
						e.Name(), p.Name(), workers, res.Value, want.Value)
				}
			}
		}
	}
}

// TestEnginesRealPlatform re-runs a subset on real goroutines (use -race).
func TestEnginesRealPlatform(t *testing.T) {
	progs := []adaptivetc.Program{
		nqueens.NewArray(8),
		sudoku.Input1(3, 48),
		fib.New(15),
	}
	for _, p := range progs {
		want, _ := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		for _, e := range parallelEngines() {
			for seed := int64(1); seed <= 3; seed++ {
				res, err := e.Run(p, adaptivetc.Options{
					Workers:  8,
					Platform: adaptivetc.NewRealPlatform(seed),
				})
				if err != nil {
					t.Fatalf("%s/%s: %v", e.Name(), p.Name(), err)
				}
				if res.Value != want.Value {
					t.Errorf("%s/%s seed=%d: value %d, serial says %d",
						e.Name(), p.Name(), seed, res.Value, want.Value)
				}
			}
		}
	}
}

// TestSimDeterminism: identical options must give identical makespans and
// counters on the simulator.
func TestSimDeterminism(t *testing.T) {
	p := nqueens.NewArray(9)
	for _, e := range parallelEngines() {
		a, err := e.Run(p, adaptivetc.Options{Workers: 6, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(p, adaptivetc.Options{Workers: 6, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan != b.Makespan || a.Stats != b.Stats {
			t.Errorf("%s: runs differ: %v vs %v / %+v vs %+v",
				e.Name(), a.Makespan, b.Makespan, a.Stats, b.Stats)
		}
	}
}

// TestAdaptiveCreatesFewerTasks checks the paper's headline mechanism: far
// fewer tasks and workspace copies than Cilk, without losing parallelism.
func TestAdaptiveCreatesFewerTasks(t *testing.T) {
	p := nqueens.NewArray(10)
	opt := adaptivetc.Options{Workers: 8, Seed: 2}
	cilk, err := adaptivetc.NewCilk().Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	atc, err := adaptivetc.NewAdaptiveTC().Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if atc.Stats.TasksCreated*5 > cilk.Stats.TasksCreated {
		t.Errorf("adaptivetc created %d tasks vs cilk %d — expected far fewer",
			atc.Stats.TasksCreated, cilk.Stats.TasksCreated)
	}
	if atc.Stats.WorkspaceCopies*5 > cilk.Stats.WorkspaceCopies {
		t.Errorf("adaptivetc copied %d workspaces vs cilk %d — expected far fewer",
			atc.Stats.WorkspaceCopies, cilk.Stats.WorkspaceCopies)
	}
	if atc.Makespan >= cilk.Makespan {
		t.Errorf("adaptivetc makespan %d not better than cilk %d", atc.Makespan, cilk.Makespan)
	}
}

// TestSpecialTasksFire forces starvation-driven special tasks by making the
// need_task threshold hair-trigger on a lopsided tree, and checks both that
// specials appear and that the answer stays right.
func TestSpecialTasksFire(t *testing.T) {
	spec := synthtree.Tree3(60000)
	spec.Seed = 3
	p := synthtree.New(spec)
	res, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{
		Workers:      8,
		MaxStolenNum: 1,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != spec.Size {
		t.Fatalf("value = %d, want %d", res.Value, spec.Size)
	}
	if res.Stats.SpecialTasks == 0 {
		t.Fatal("no special tasks fired on a starving unbalanced tree")
	}
	if res.Stats.Steals == 0 {
		t.Fatal("no steals at all")
	}
	t.Logf("specials=%d steals=%d fails=%d tasks=%d fake=%d",
		res.Stats.SpecialTasks, res.Stats.Steals, res.Stats.StealFails,
		res.Stats.TasksCreated, res.Stats.FakeTasks)
}

// TestDequeOverflowSurfaces: a pathologically tiny deque must produce the
// documented error, not a crash or a wrong answer.
func TestDequeOverflowSurfaces(t *testing.T) {
	p := nqueens.NewArray(9)
	_, err := adaptivetc.NewCilk().Run(p, adaptivetc.Options{Workers: 2, DequeCapacity: 4})
	if !errors.Is(err, sched.ErrDequeOverflow) {
		t.Fatalf("err = %v, want ErrDequeOverflow", err)
	}
}

// TestProfileBreakdown: with profiling on, the phase breakdown must roughly
// cover the workers' total time and contain no negative residual.
func TestProfileBreakdown(t *testing.T) {
	p := nqueens.NewArray(9)
	for _, e := range parallelEngines() {
		res, err := e.Run(p, adaptivetc.Options{Workers: 4, Profile: true, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if st.WorkerTime <= 0 {
			t.Errorf("%s: no worker time", e.Name())
			continue
		}
		if st.WorkTime < 0 {
			t.Errorf("%s: negative working residual %d (worker=%d copy=%d deque=%d poll=%d wait=%d steal=%d respond=%d)",
				e.Name(), st.WorkTime, st.WorkerTime, st.CopyTime, st.DequeTime,
				st.PollTime, st.WaitTime, st.StealTime, st.RespondTime)
		}
	}
}

// TestCilkSuspends: on a deep unbalanced tree with many workers, Cilk's
// sync rule must actually suspend tasks (unlike Tascell, which waits).
func TestCilkSuspends(t *testing.T) {
	spec := synthtree.Tree2(50000)
	p := synthtree.New(spec)
	res, err := adaptivetc.NewCilk().Run(p, adaptivetc.Options{Workers: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Suspends == 0 {
		t.Error("cilk never suspended a waiting task")
	}
}

// TestTascellWaits: Tascell must record wait_children time where Cilk
// records none of that kind.
func TestTascellWaits(t *testing.T) {
	spec := synthtree.Tree3(60000) // right-heavy would be worse; L is enough
	p := synthtree.New(spec)
	res, err := adaptivetc.NewTascell().Run(p, adaptivetc.Options{Workers: 8, Profile: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steals == 0 {
		t.Fatal("tascell made no steals")
	}
	if res.Stats.WaitTime == 0 {
		t.Error("tascell recorded no wait_children time on an unbalanced tree")
	}
}

// TestWorkerSweep: answers stay correct for every worker count 1..12 on an
// irregular tree (off-by-one hunting in victim selection etc.).
func TestWorkerSweep(t *testing.T) {
	p := sudoku.Input2(3, 50)
	want, _ := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	for workers := 1; workers <= 12; workers++ {
		for _, e := range parallelEngines() {
			res, err := e.Run(p, adaptivetc.Options{Workers: workers, Seed: int64(100 + workers)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want.Value {
				t.Errorf("%s P=%d: %d != %d", e.Name(), workers, res.Value, want.Value)
			}
		}
	}
}

// TestEngineByName round-trips every engine.
func TestEngineByName(t *testing.T) {
	for _, e := range adaptivetc.Engines() {
		got, err := adaptivetc.EngineByName(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != e.Name() {
			t.Errorf("round trip %q -> %q", e.Name(), got.Name())
		}
	}
	if _, err := adaptivetc.EngineByName("nope"); err == nil {
		t.Error("unknown engine name accepted")
	}
}

// TestForcedCutoffAblation: forcing a deeper cutoff must create more tasks.
func TestForcedCutoffAblation(t *testing.T) {
	p := nqueens.NewArray(10)
	shallow, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{
		Workers: 4, ForceCutoff: true, Cutoff: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{
		Workers: 4, ForceCutoff: true, Cutoff: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Stats.TasksCreated <= shallow.Stats.TasksCreated {
		t.Errorf("cutoff 6 created %d tasks, cutoff 1 created %d — expected more with deeper cutoff",
			deep.Stats.TasksCreated, shallow.Stats.TasksCreated)
	}
	if shallow.Value != deep.Value {
		t.Errorf("values differ across cutoffs: %d vs %d", shallow.Value, deep.Value)
	}
}

// TestGrowableDequeAvoidsOverflow: the same configuration that overflows a
// fixed deque completes with a growable one (the related-work remedy).
func TestGrowableDequeAvoidsOverflow(t *testing.T) {
	p := nqueens.NewArray(9)
	want := nqueens.Solutions(9)
	_, err := adaptivetc.NewCilk().Run(p, adaptivetc.Options{Workers: 2, DequeCapacity: 4})
	if !errors.Is(err, sched.ErrDequeOverflow) {
		t.Fatalf("fixed deque: err = %v, want overflow", err)
	}
	res, err := adaptivetc.NewCilk().Run(p, adaptivetc.Options{Workers: 2, DequeCapacity: 4, GrowableDeque: true})
	if err != nil {
		t.Fatalf("growable deque: %v", err)
	}
	if res.Value != want {
		t.Fatalf("growable deque value %d, want %d", res.Value, want)
	}
}

// TestGrowableDequeAllEngines runs every engine with tiny growable deques.
func TestGrowableDequeAllEngines(t *testing.T) {
	p := sudoku.Input1(3, 48)
	wantRes, _ := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	for _, e := range parallelEngines() {
		res, err := e.Run(p, adaptivetc.Options{Workers: 8, DequeCapacity: 8, GrowableDeque: true, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Value != wantRes.Value {
			t.Errorf("%s: value %d, want %d", e.Name(), res.Value, wantRes.Value)
		}
	}
}

// TestATCMatchesNativePrograms cross-checks the mini-language
// implementations against the native Go ones.
func TestATCMatchesNativePrograms(t *testing.T) {
	cases := []struct {
		atcName   string
		overrides map[string]int64
		native    adaptivetc.Program
	}{
		{"nqueens", map[string]int64{"n": 8}, nqueens.NewArray(8)},
		{"fib", map[string]int64{"n": 16}, fib.New(16)},
		{"knight", map[string]int64{"n": 5}, knight.New(5)},
		{"latin", map[string]int64{"n": 4}, strimko.LatinSquares(4)},
	}
	for _, c := range cases {
		atcProg, err := adaptivetc.CompileATC(c.atcName, adaptivetc.ATCSources()[c.atcName], c.overrides)
		if err != nil {
			t.Fatalf("%s: %v", c.atcName, err)
		}
		a, err := adaptivetc.NewSerial().Run(atcProg, adaptivetc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := adaptivetc.NewSerial().Run(c.native, adaptivetc.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != n.Value {
			t.Errorf("%s: atc says %d, native says %d", c.atcName, a.Value, n.Value)
		}
		// And under the AdaptiveTC scheduler with 8 workers.
		par, err := adaptivetc.NewAdaptiveTC().Run(atcProg, adaptivetc.Options{Workers: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if par.Value != n.Value {
			t.Errorf("%s parallel: atc says %d, native says %d", c.atcName, par.Value, n.Value)
		}
	}
}

// TestQuantumInsensitivity: the simulator's slice quantum is a performance
// knob, not a semantics knob — makespans may shift slightly (slices change
// steal interleavings) but values must hold and makespans stay in a band.
func TestQuantumInsensitivity(t *testing.T) {
	p := nqueens.NewArray(9)
	want := nqueens.Solutions(9)
	var spans []float64
	for _, quantum := range []int64{100, 500, 2000} {
		plat := &vtime.Sim{Seed: 5, Quantum: quantum}
		res, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{Workers: 8, Platform: plat})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Fatalf("quantum %d: value %d", quantum, res.Value)
		}
		spans = append(spans, float64(res.Makespan))
	}
	for _, s := range spans[1:] {
		if ratio := s / spans[0]; ratio < 0.5 || ratio > 2 {
			t.Errorf("makespans drift too much across quanta: %v", spans)
		}
	}
}
