module adaptivetc

go 1.22
