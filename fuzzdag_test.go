package adaptivetc_test

import (
	"fmt"
	"testing"

	"adaptivetc"
	"adaptivetc/problems/dagflow"
)

// FuzzDAG fuzzes the dependency-counting ready layer itself: the fuzzer
// chooses a DAG shape (either a seeded layered graph or an explicit edge
// list decoded from the input bytes), an engine, a worker count and a
// schedule seed, and every run must satisfy the dataflow contract —
//
//   - Value equals the sum of all node scores (every node's emit leaf
//     counted exactly once, no matter which predecessor won each claim);
//   - the post-run audit shows claims==1 and emits==1 for every node
//     (exactly-once execution);
//   - the claim stamps are a topological witness: stamp(u) < stamp(v) for
//     every edge u→v, i.e. no node ever started before all of its
//     predecessors had.
//
// The curated probes in testdata/fuzz/FuzzDAG pin a diamond DAG decoded
// from explicit edges, a deep layered graph on the most steal-happy worker
// count, and a single-chain DAG (zero parallelism — every claim is won by
// the only predecessor) so the corpus covers both claim-race extremes.
func FuzzDAG(f *testing.F) {
	f.Add([]byte{0, 3, 7, 1, 4, 0})                      // small layered, adaptivetc
	f.Add([]byte{3, 2, 1, 0, 5, 1, 2, 3, 4, 5, 6, 7, 8}) // explicit edges, cutoff-programmer
	f.Add([]byte{6, 4, 13, 1, 6, 2})                     // wider layered, slaw, 4 workers

	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 5 {
			t.Skip()
		}
		mk := diffEngines()[int(in[0])%7]
		workers := 2 + int(in[1])%3
		seed := int64(in[2])
		var p *dagflow.Program
		if in[3]%2 == 1 {
			layers := 1 + int(in[4])%6
			width := 1 + int(in[4]/6)%4
			p = dagflow.NewLayered(layers, width, seed+1)
		} else {
			// Explicit shape: node count from in[4], then byte pairs as
			// candidate edges kept when they respect the topological
			// numbering. Duplicate edges are deliberately legal — each
			// edge instance contributes one pending count and one claim
			// attempt.
			n := 2 + int(in[4])%12
			succs := make([][]int32, n)
			scores := make([]int64, n)
			for v := 0; v < n; v++ {
				scores[v] = 1 + int64(in[(v+3)%len(in)]%9)
			}
			for i := 5; i+1 < len(in); i += 2 {
				u, v := int(in[i])%n, int(in[i+1])%n
				if u < v {
					succs[u] = append(succs[u], int32(v))
				}
			}
			p = dagflow.NewFromEdges(fmt.Sprintf("dag-fuzz(n=%d)", n), succs, scores)
		}
		want := p.WantValue()

		audit := func(label string, got int64) {
			t.Helper()
			if got != want {
				t.Errorf("%s: value %d, want Σ scores = %d", label, got, want)
			}
			a := p.LastRun()
			if a == nil {
				t.Fatalf("%s: no run state recorded", label)
			}
			for v := range a.Claims {
				if a.Claims[v] != 1 {
					t.Errorf("%s: node %d claimed %d times, want exactly 1", label, v, a.Claims[v])
				}
				if a.Emits[v] != 1 {
					t.Errorf("%s: node %d emitted %d leaves, want exactly 1", label, v, a.Emits[v])
				}
			}
			for _, e := range p.Edges() {
				if a.Stamps[e[0]] >= a.Stamps[e[1]] {
					t.Errorf("%s: edge %d→%d claimed out of order (stamps %d ≥ %d) — node started before a predecessor",
						label, e[0], e[1], a.Stamps[e[0]], a.Stamps[e[1]])
				}
			}
		}

		serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		audit("serial", serial.Value)

		eng := mk()
		res, err := eng.Run(p, adaptivetc.Options{Workers: workers, Seed: seed})
		if err != nil {
			t.Fatalf("%s workers=%d seed=%d: %v", eng.Name(), workers, seed, err)
		}
		audit(fmt.Sprintf("%s workers=%d seed=%d", eng.Name(), workers, seed), res.Value)
	})
}
