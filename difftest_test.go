package adaptivetc_test

import (
	"reflect"
	"testing"

	"adaptivetc"
	"adaptivetc/internal/cluster"
	"adaptivetc/internal/lang"
	"adaptivetc/internal/progstore"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// diffSizes fixes one small instance per registry family — every name in
// problems/registry must appear here, so adding a benchmark without wiring
// it into the differential harness is a test failure, not a silent gap.
var diffSizes = map[string]registry.Params{
	"nqueens-array":   {N: 6},
	"nqueens-compute": {N: 6},
	"sudoku-balanced": {N: 12},
	"sudoku-input1":   {N: 12},
	"sudoku-input2":   {N: 12},
	"sudoku-empty4":   {},
	"strimko":         {N: 5},
	"knight":          {N: 5},
	"pentomino":       {N: 4},
	"fib":             {N: 14},
	"comp":            {N: 64},
	"tree1":           {Size: 2048},
	"tree2":           {Size: 2048},
	"tree3":           {Size: 2048},
	"atc-nqueens":     {N: 6},
	"atc-fib":         {N: 12},
	"atc-latin":       {N: 4},
	"atc-knight":      {N: 4},
	// Dataflow DAGs and branch-and-bound communicate through shared per-run
	// state (dependency counters, the incumbent bound), yet their values are
	// engine- and schedule-independent by construction — so they ride the
	// same value-equality rows as the search families. The first-solution
	// families run here in normal mode, where Value is the order-independent
	// sum of all solution witnesses; their first-solution semantics get
	// dedicated rows in TestDifferentialFirstSolution.
	"dag-layered":   {N: 4, M: 3},
	"dag-stencil":   {N: 4, M: 5},
	"bnb-knapsack":  {N: 12},
	"bnb-tsp":       {N: 6},
	"first-nqueens": {N: 6},
	"first-sat":     {N: 10},
}

// diffEngines are the seven pool-capable schedulers: every engine the
// serving path can host, each built fresh per use (Tascell and Serial are
// batch-only and are covered by TestEnginesMatchSerial).
func diffEngines() []func() adaptivetc.Engine {
	return []func() adaptivetc.Engine{
		adaptivetc.NewAdaptiveTC,
		adaptivetc.NewCilk,
		adaptivetc.NewCilkSynched,
		adaptivetc.NewCutoffProgrammer,
		adaptivetc.NewCutoffLibrary,
		adaptivetc.NewHelpFirst,
		adaptivetc.NewSLAW,
	}
}

// diffCorpus builds the instance of every registered family, failing if
// the registry and diffSizes ever drift apart.
func diffCorpus(t *testing.T) map[string]sched.Program {
	t.Helper()
	progs := make(map[string]sched.Program)
	for _, name := range registry.Names() {
		params, ok := diffSizes[name]
		if !ok {
			t.Fatalf("registry program %q has no differential-test size — add it to diffSizes", name)
		}
		p, err := registry.Build(name, params)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		progs[name] = p
	}
	if len(diffSizes) != len(progs) {
		t.Fatalf("diffSizes has %d entries but the registry has %d — remove the stale names", len(diffSizes), len(progs))
	}
	return progs
}

// TestDifferentialBatch runs every registry program through all seven
// pool-capable engines on the deterministic simulator: values must match
// the serial oracle, and each engine's two identically-seeded runs must
// report identical makespans.
func TestDifferentialBatch(t *testing.T) {
	for name, p := range diffCorpus(t) {
		oracle, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		for _, mk := range diffEngines() {
			eng := mk()
			opt := adaptivetc.Options{Workers: 3, Seed: 7}
			a, err := eng.Run(p, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", eng.Name(), name, err)
			}
			if a.Value != oracle.Value {
				t.Errorf("%s/%s: value %d, serial says %d", eng.Name(), name, a.Value, oracle.Value)
			}
			b, err := mk().Run(p, opt)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", eng.Name(), name, err)
			}
			if a.Makespan != b.Makespan {
				t.Errorf("%s/%s: identically-seeded Sim makespans differ: %d vs %d",
					eng.Name(), name, a.Makespan, b.Makespan)
			}
		}
	}
}

// TestDifferentialStealPolicies sweeps every steal policy across both
// deque variants (THE and lock-reduced) for a representative program slice
// and all seven pool-capable engines: values must match the serial oracle,
// and identically-seeded Sim reruns must stay deterministic — a policy's
// victim sequence is part of the schedule, so nondeterminism here means a
// thief PRNG leaked shared state.
func TestDifferentialStealPolicies(t *testing.T) {
	progs := diffCorpus(t)
	slice := []string{"fib", "nqueens-array", "sudoku-input1", "tree3"}
	for _, name := range slice {
		p, ok := progs[name]
		if !ok {
			t.Fatalf("program %q missing from the corpus", name)
		}
		oracle, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		for _, relaxed := range []bool{false, true} {
			for _, policy := range wsrt.StealPolicyNames() {
				for _, mk := range diffEngines() {
					eng := mk()
					opt := adaptivetc.Options{
						Workers: 3, Seed: 7,
						StealPolicy:  policy,
						RelaxedDeque: relaxed,
					}
					a, err := eng.Run(p, opt)
					if err != nil {
						t.Fatalf("%s/%s policy=%s relaxed=%v: %v", eng.Name(), name, policy, relaxed, err)
					}
					if a.Value != oracle.Value {
						t.Errorf("%s/%s policy=%s relaxed=%v: value %d, serial says %d",
							eng.Name(), name, policy, relaxed, a.Value, oracle.Value)
					}
					b, err := mk().Run(p, opt)
					if err != nil {
						t.Fatalf("%s/%s policy=%s relaxed=%v rerun: %v", eng.Name(), name, policy, relaxed, err)
					}
					if a.Makespan != b.Makespan {
						t.Errorf("%s/%s policy=%s relaxed=%v: identically-seeded Sim makespans differ: %d vs %d",
							eng.Name(), name, policy, relaxed, a.Makespan, b.Makespan)
					}
				}
			}
		}
	}
}

// TestDifferentialCluster runs a representative program slice through 2-
// and 3-node deterministic Sim clusters under skewed load: every job's
// first completion must carry the serial oracle's value, the model's
// conservation invariants must hold, and identically-seeded runs must
// produce byte-identical event logs. The per-job service time is the
// engine's deterministic Sim makespan, so the cluster rows exercise the
// same work distribution the batch rows measure, one level up.
func TestDifferentialCluster(t *testing.T) {
	progs := diffCorpus(t)
	slice := []string{"fib", "nqueens-array", "tree3", "knight"}
	for _, name := range slice {
		p, ok := progs[name]
		if !ok {
			t.Fatalf("program %q missing from the corpus", name)
		}
		oracle, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		cost, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{Workers: 3, Seed: 7})
		if err != nil {
			t.Fatalf("cost run %s: %v", name, err)
		}
		if cost.Value != oracle.Value {
			t.Fatalf("%s: engine value %d, serial says %d", name, cost.Value, oracle.Value)
		}
		svc := int64(cost.Makespan)
		if svc <= 0 {
			svc = 1_000_000
		}
		for _, nodes := range []int{2, 3} {
			jobs := make([]cluster.SimJob, 16)
			for i := range jobs {
				node := 0
				if i%5 == 4 {
					node = 1 + (i/5)%(nodes-1)
				}
				jobs[i] = cluster.SimJob{
					ID: i, Node: node, ArriveNS: int64(i) * svc / 4,
					ServiceNS: svc, Value: oracle.Value,
				}
			}
			run := func() *cluster.SimReport {
				rep, err := cluster.RunSim(cluster.SimConfig{
					Nodes: nodes, Seed: 7,
					BaseLatencyNS: svc/16 + 1, JitterNS: svc/64 + 1, GossipEveryNS: svc/2 + 1,
				}, jobs)
				if err != nil {
					t.Fatalf("cluster/%s/n%d: %v", name, nodes, err)
				}
				return rep
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a.Events, b.Events) {
				t.Errorf("cluster/%s/n%d: identically-seeded runs diverged (%d vs %d events)",
					name, nodes, len(a.Events), len(b.Events))
			}
			if len(a.Violations) > 0 {
				t.Errorf("cluster/%s/n%d: violations: %v", name, nodes, a.Violations)
			}
			if a.Completed != len(jobs) {
				t.Errorf("cluster/%s/n%d: %d of %d jobs completed", name, nodes, a.Completed, len(jobs))
			}
			for id, v := range a.Values {
				if v != oracle.Value {
					t.Errorf("cluster/%s/n%d: job %d value %d, serial says %d", name, nodes, id, v, oracle.Value)
				}
			}
			moved := 0
			for _, st := range a.PerNode {
				moved += st.ForwardedIn
			}
			if moved == 0 {
				t.Errorf("cluster/%s/n%d: no job ever moved — the rows don't exercise forwarding", name, nodes)
			}
		}
	}
}

// TestDifferentialShardedPool pushes the same program×engine matrix
// through a resident sharded pool — the serving path, with up to two jobs
// in flight on disjoint worker groups — and checks every value against the
// serial oracle.
func TestDifferentialShardedPool(t *testing.T) {
	progs := diffCorpus(t)
	oracles := make(map[string]int64, len(progs))
	for name, p := range progs {
		res, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		oracles[name] = res.Value
	}

	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 16, Options: sched.Options{GrowableDeque: true},
	})
	defer pool.Close()

	type pending struct {
		name, engine string
		h            *wsrt.JobHandle
	}
	var window []pending
	drain := func(all bool) {
		keep := 0
		if !all {
			keep = 2 // leave the in-flight jobs cooking, reap the rest
		}
		for len(window) > keep {
			job := window[0]
			window = window[1:]
			res, err := job.h.Result()
			if err != nil {
				t.Fatalf("pool %s/%s: %v", job.engine, job.name, err)
			}
			if res.Value != oracles[job.name] {
				t.Errorf("pool %s/%s: value %d, serial says %d",
					job.engine, job.name, res.Value, oracles[job.name])
			}
			if len(res.Shard) == 0 {
				t.Errorf("pool %s/%s: result carries no shard", job.engine, job.name)
			}
		}
	}
	for name, p := range progs {
		for _, mk := range diffEngines() {
			eng := mk()
			pe, ok := eng.(wsrt.PoolEngine)
			if !ok {
				t.Fatalf("%s does not implement wsrt.PoolEngine", eng.Name())
			}
			h, err := pool.Submit(wsrt.JobSpec{Prog: p, Engine: pe})
			if err != nil {
				t.Fatalf("submit %s/%s: %v", eng.Name(), name, err)
			}
			window = append(window, pending{name: name, engine: eng.Name(), h: h})
			drain(false)
		}
	}
	drain(true)
}

// dslDiffSizes shrinks the shipped DSL examples to differential-test
// instances, matching the atc-* rows in diffSizes so the cached-program
// path is checked at the same sizes the registry mirrors are.
var dslDiffSizes = map[string]map[string]int64{
	"nqueens": {"n": 6},
	"fib":     {"n": 12},
	"latin":   {"n": 4},
	"knight":  {"n": 4},
}

// TestDifferentialDSL runs every shipped DSL example through the
// content-addressed compile cache — the same Put/Program path that backs
// POST /programs and program_hash job submission — and pushes each cached
// instance through all seven pool engines and the resident sharded pool,
// checking values against a serial oracle run on the very same Program.
// Along the way it pins content addressing: the canonical form of a source
// must land on the hash the original did, never a second cache entry.
func TestDifferentialDSL(t *testing.T) {
	store := progstore.New(progstore.Config{})
	type row struct {
		name, hash string
		prog       sched.Program
		oracle     int64
	}
	var rows []row
	for name, src := range lang.Sources() {
		sizes, ok := dslDiffSizes[name]
		if !ok {
			t.Fatalf("DSL example %q has no differential-test size — add it to dslDiffSizes", name)
		}
		meta, created, err := store.Put(name, src)
		if err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
		if !created {
			t.Fatalf("put %s: fresh store claims the program was already cached", name)
		}
		_, canonical, lerr := lang.HashSource(src)
		if lerr != nil {
			t.Fatalf("canonicalize %s: %v", name, lerr)
		}
		again, createdAgain, err := store.Put(name+"-canon", canonical)
		if err != nil {
			t.Fatalf("put canonical %s: %v", name, err)
		}
		if createdAgain || again.Hash != meta.Hash {
			t.Fatalf("%s: canonical form hashed to %s (created=%v), original to %s — content addressing is broken",
				name, again.Hash, createdAgain, meta.Hash)
		}
		p, err := store.Program(meta.Hash, sizes)
		if err != nil {
			t.Fatalf("program %s: %v", name, err)
		}
		oracle, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		rows = append(rows, row{name: name, hash: meta.Hash, prog: p, oracle: oracle.Value})
	}
	if len(rows) != len(dslDiffSizes) {
		t.Fatalf("dslDiffSizes has %d entries but lang ships %d examples — remove the stale names",
			len(dslDiffSizes), len(rows))
	}

	// Batch rows: each engine on the shared cached instance, plus the
	// seeded-makespan determinism check every other family gets.
	for _, r := range rows {
		for _, mk := range diffEngines() {
			eng := mk()
			opt := adaptivetc.Options{Workers: 3, Seed: 7}
			a, err := eng.Run(r.prog, opt)
			if err != nil {
				t.Fatalf("%s/dsl:%s: %v", eng.Name(), r.name, err)
			}
			if a.Value != r.oracle {
				t.Errorf("%s/dsl:%s: value %d, serial says %d", eng.Name(), r.name, a.Value, r.oracle)
			}
			b, err := mk().Run(r.prog, opt)
			if err != nil {
				t.Fatalf("%s/dsl:%s rerun: %v", eng.Name(), r.name, err)
			}
			if a.Makespan != b.Makespan {
				t.Errorf("%s/dsl:%s: identically-seeded Sim makespans differ: %d vs %d",
					eng.Name(), r.name, a.Makespan, b.Makespan)
			}
		}
	}

	// Sharded-pool rows: up to two jobs in flight share one cached Program
	// instance — the serving-path concurrency a compile cache must survive.
	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 16, Options: sched.Options{GrowableDeque: true},
	})
	defer pool.Close()

	type pending struct {
		name, engine string
		oracle       int64
		h            *wsrt.JobHandle
	}
	var window []pending
	drain := func(all bool) {
		keep := 0
		if !all {
			keep = 2
		}
		for len(window) > keep {
			job := window[0]
			window = window[1:]
			res, err := job.h.Result()
			if err != nil {
				t.Fatalf("pool %s/dsl:%s: %v", job.engine, job.name, err)
			}
			if res.Value != job.oracle {
				t.Errorf("pool %s/dsl:%s: value %d, serial says %d",
					job.engine, job.name, res.Value, job.oracle)
			}
		}
	}
	for _, r := range rows {
		for _, mk := range diffEngines() {
			eng := mk()
			pe, ok := eng.(wsrt.PoolEngine)
			if !ok {
				t.Fatalf("%s does not implement wsrt.PoolEngine", eng.Name())
			}
			h, err := pool.Submit(wsrt.JobSpec{Prog: r.prog, Engine: pe})
			if err != nil {
				t.Fatalf("submit %s/dsl:%s: %v", eng.Name(), r.name, err)
			}
			window = append(window, pending{name: r.name, engine: eng.Name(), oracle: r.oracle, h: h})
			drain(false)
		}
	}
	drain(true)
}
