package adaptivetc_test

import (
	"testing"

	"adaptivetc"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// diffSizes fixes one small instance per registry family — every name in
// problems/registry must appear here, so adding a benchmark without wiring
// it into the differential harness is a test failure, not a silent gap.
var diffSizes = map[string]registry.Params{
	"nqueens-array":   {N: 6},
	"nqueens-compute": {N: 6},
	"sudoku-balanced": {N: 12},
	"sudoku-input1":   {N: 12},
	"sudoku-input2":   {N: 12},
	"sudoku-empty4":   {},
	"strimko":         {N: 5},
	"knight":          {N: 5},
	"pentomino":       {N: 4},
	"fib":             {N: 14},
	"comp":            {N: 64},
	"tree1":           {Size: 2048},
	"tree2":           {Size: 2048},
	"tree3":           {Size: 2048},
	"atc-nqueens":     {N: 6},
	"atc-fib":         {N: 12},
	"atc-latin":       {N: 4},
	"atc-knight":      {N: 4},
}

// diffEngines are the seven pool-capable schedulers: every engine the
// serving path can host, each built fresh per use (Tascell and Serial are
// batch-only and are covered by TestEnginesMatchSerial).
func diffEngines() []func() adaptivetc.Engine {
	return []func() adaptivetc.Engine{
		adaptivetc.NewAdaptiveTC,
		adaptivetc.NewCilk,
		adaptivetc.NewCilkSynched,
		adaptivetc.NewCutoffProgrammer,
		adaptivetc.NewCutoffLibrary,
		adaptivetc.NewHelpFirst,
		adaptivetc.NewSLAW,
	}
}

// diffCorpus builds the instance of every registered family, failing if
// the registry and diffSizes ever drift apart.
func diffCorpus(t *testing.T) map[string]sched.Program {
	t.Helper()
	progs := make(map[string]sched.Program)
	for _, name := range registry.Names() {
		params, ok := diffSizes[name]
		if !ok {
			t.Fatalf("registry program %q has no differential-test size — add it to diffSizes", name)
		}
		p, err := registry.Build(name, params)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		progs[name] = p
	}
	if len(diffSizes) != len(progs) {
		t.Fatalf("diffSizes has %d entries but the registry has %d — remove the stale names", len(diffSizes), len(progs))
	}
	return progs
}

// TestDifferentialBatch runs every registry program through all seven
// pool-capable engines on the deterministic simulator: values must match
// the serial oracle, and each engine's two identically-seeded runs must
// report identical makespans.
func TestDifferentialBatch(t *testing.T) {
	for name, p := range diffCorpus(t) {
		oracle, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		for _, mk := range diffEngines() {
			eng := mk()
			opt := adaptivetc.Options{Workers: 3, Seed: 7}
			a, err := eng.Run(p, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", eng.Name(), name, err)
			}
			if a.Value != oracle.Value {
				t.Errorf("%s/%s: value %d, serial says %d", eng.Name(), name, a.Value, oracle.Value)
			}
			b, err := mk().Run(p, opt)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", eng.Name(), name, err)
			}
			if a.Makespan != b.Makespan {
				t.Errorf("%s/%s: identically-seeded Sim makespans differ: %d vs %d",
					eng.Name(), name, a.Makespan, b.Makespan)
			}
		}
	}
}

// TestDifferentialStealPolicies sweeps every steal policy across both
// deque variants (THE and lock-reduced) for a representative program slice
// and all seven pool-capable engines: values must match the serial oracle,
// and identically-seeded Sim reruns must stay deterministic — a policy's
// victim sequence is part of the schedule, so nondeterminism here means a
// thief PRNG leaked shared state.
func TestDifferentialStealPolicies(t *testing.T) {
	progs := diffCorpus(t)
	slice := []string{"fib", "nqueens-array", "sudoku-input1", "tree3"}
	for _, name := range slice {
		p, ok := progs[name]
		if !ok {
			t.Fatalf("program %q missing from the corpus", name)
		}
		oracle, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		for _, relaxed := range []bool{false, true} {
			for _, policy := range wsrt.StealPolicyNames() {
				for _, mk := range diffEngines() {
					eng := mk()
					opt := adaptivetc.Options{
						Workers: 3, Seed: 7,
						StealPolicy:  policy,
						RelaxedDeque: relaxed,
					}
					a, err := eng.Run(p, opt)
					if err != nil {
						t.Fatalf("%s/%s policy=%s relaxed=%v: %v", eng.Name(), name, policy, relaxed, err)
					}
					if a.Value != oracle.Value {
						t.Errorf("%s/%s policy=%s relaxed=%v: value %d, serial says %d",
							eng.Name(), name, policy, relaxed, a.Value, oracle.Value)
					}
					b, err := mk().Run(p, opt)
					if err != nil {
						t.Fatalf("%s/%s policy=%s relaxed=%v rerun: %v", eng.Name(), name, policy, relaxed, err)
					}
					if a.Makespan != b.Makespan {
						t.Errorf("%s/%s policy=%s relaxed=%v: identically-seeded Sim makespans differ: %d vs %d",
							eng.Name(), name, policy, relaxed, a.Makespan, b.Makespan)
					}
				}
			}
		}
	}
}

// TestDifferentialShardedPool pushes the same program×engine matrix
// through a resident sharded pool — the serving path, with up to two jobs
// in flight on disjoint worker groups — and checks every value against the
// serial oracle.
func TestDifferentialShardedPool(t *testing.T) {
	progs := diffCorpus(t)
	oracles := make(map[string]int64, len(progs))
	for name, p := range progs {
		res, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
		if err != nil {
			t.Fatalf("serial/%s: %v", name, err)
		}
		oracles[name] = res.Value
	}

	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 16, Options: sched.Options{GrowableDeque: true},
	})
	defer pool.Close()

	type pending struct {
		name, engine string
		h            *wsrt.JobHandle
	}
	var window []pending
	drain := func(all bool) {
		keep := 0
		if !all {
			keep = 2 // leave the in-flight jobs cooking, reap the rest
		}
		for len(window) > keep {
			job := window[0]
			window = window[1:]
			res, err := job.h.Result()
			if err != nil {
				t.Fatalf("pool %s/%s: %v", job.engine, job.name, err)
			}
			if res.Value != oracles[job.name] {
				t.Errorf("pool %s/%s: value %d, serial says %d",
					job.engine, job.name, res.Value, oracles[job.name])
			}
			if len(res.Shard) == 0 {
				t.Errorf("pool %s/%s: result carries no shard", job.engine, job.name)
			}
		}
	}
	for name, p := range progs {
		for _, mk := range diffEngines() {
			eng := mk()
			pe, ok := eng.(wsrt.PoolEngine)
			if !ok {
				t.Fatalf("%s does not implement wsrt.PoolEngine", eng.Name())
			}
			h, err := pool.Submit(wsrt.JobSpec{Prog: p, Engine: pe})
			if err != nil {
				t.Fatalf("submit %s/%s: %v", eng.Name(), name, err)
			}
			window = append(window, pending{name: name, engine: eng.Name(), h: h})
			drain(false)
		}
	}
	drain(true)
}
