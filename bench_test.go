// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, each running the corresponding experiment at quick scale so
// `go test -bench=. -benchmem` regenerates every result in a bounded time.
// Custom metrics report the quantities the paper plots (speedups, overhead
// ratios, wait shares) alongside Go's ns/op.
//
// The full sweeps live in cmd/adaptivetc-bench; these benches are the
// per-experiment entry points the repository's DESIGN.md index refers to.
package adaptivetc_test

import (
	"io"
	"testing"

	"adaptivetc"
	"adaptivetc/internal/experiments"
	"adaptivetc/problems/nqueens"
	"adaptivetc/problems/synthtree"
)

func benchConfig(b *testing.B) experiments.Config {
	b.Helper()
	return experiments.Config{Scale: experiments.Quick, Out: io.Discard, Seed: 1}
}

func runExperiment(b *testing.B, fn func(experiments.Config) error) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the eight speedup-vs-threads charts.
func BenchmarkFig4(b *testing.B) { runExperiment(b, experiments.Figure4) }

// BenchmarkFig5 regenerates the 8-thread comparison against Cilk.
func BenchmarkFig5(b *testing.B) { runExperiment(b, experiments.Figure5) }

// BenchmarkTable2 regenerates the one-thread execution-time table.
func BenchmarkTable2(b *testing.B) { runExperiment(b, experiments.Table2) }

// BenchmarkFig6 regenerates the one-thread overhead breakdowns.
func BenchmarkFig6(b *testing.B) { runExperiment(b, experiments.Figure6) }

// BenchmarkFig7 regenerates Tascell's multi-thread breakdown.
func BenchmarkFig7(b *testing.B) { runExperiment(b, experiments.Figure7) }

// BenchmarkFig8 regenerates the unbalanced-tree shape analysis.
func BenchmarkFig8(b *testing.B) { runExperiment(b, experiments.Figure8) }

// BenchmarkFig9 regenerates the cut-off starvation experiment.
func BenchmarkFig9(b *testing.B) { runExperiment(b, experiments.Figure9) }

// BenchmarkFig10 regenerates the unbalanced-tree comparison.
func BenchmarkFig10(b *testing.B) { runExperiment(b, experiments.Figure10) }

// BenchmarkTable3 regenerates the synthetic-tree description table.
func BenchmarkTable3(b *testing.B) { runExperiment(b, experiments.Table3) }

// ---------------------------------------------------------------------------
// Headline single-configuration benches: the 2.71×/1.72× claim of the
// abstract, on the scaled n-queens instance, as direct metrics.

func BenchmarkHeadlineNqueens(b *testing.B) {
	p := nqueens.NewArray(10)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []adaptivetc.Engine{
		adaptivetc.NewCilk(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC(),
	} {
		b.Run(e.Name(), func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Run(p, adaptivetc.Options{Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				if res.Value != serial.Value {
					b.Fatalf("value %d, want %d", res.Value, serial.Value)
				}
				last = res
			}
			b.ReportMetric(float64(serial.Makespan)/float64(last.Makespan), "speedup")
			b.ReportMetric(float64(last.Stats.TasksCreated), "tasks")
			b.ReportMetric(float64(last.Stats.WorkspaceCopies), "copies")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationMaxStolenNum sweeps the need_task threshold: too low
// fires special tasks for every hiccup, too high reacts slowly to
// starvation. The paper fixes 20.
func BenchmarkAblationMaxStolenNum(b *testing.B) {
	spec := synthtree.Tree3(40000)
	spec.Seed = 9
	p := synthtree.New(spec)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, msn := range []int{1, 5, 20, 100, 1000} {
		b.Run(byInt("maxStolen", msn), func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{Workers: 8, MaxStolenNum: msn})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(serial.Makespan)/float64(last.Makespan), "speedup")
			b.ReportMetric(float64(last.Stats.SpecialTasks), "specials")
		})
	}
}

// BenchmarkAblationCutoff compares the ⌈log2 N⌉ rule against forced
// constants (the paper motivates the adaptive rule over fixed choices).
func BenchmarkAblationCutoff(b *testing.B) {
	p := nqueens.NewArray(10)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	configs := []struct {
		name string
		opt  adaptivetc.Options
	}{
		{"log2N", adaptivetc.Options{Workers: 8}},
		{"forced1", adaptivetc.Options{Workers: 8, ForceCutoff: true, Cutoff: 1}},
		{"forced6", adaptivetc.Options{Workers: 8, ForceCutoff: true, Cutoff: 6}},
		{"forced9", adaptivetc.Options{Workers: 8, ForceCutoff: true, Cutoff: 9}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := adaptivetc.NewAdaptiveTC().Run(p, cfg.opt)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(serial.Makespan)/float64(last.Makespan), "speedup")
			b.ReportMetric(float64(last.Stats.TasksCreated), "tasks")
		})
	}
}

// BenchmarkAblationFast2Multiplier sweeps the fast_2 cutoff factor
// (paper: 2×).
func BenchmarkAblationFast2Multiplier(b *testing.B) {
	spec := synthtree.Tree2(40000)
	spec.Seed = 4
	p := synthtree.New(spec)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mult := range []int{1, 2, 4, 8} {
		b.Run(byInt("mult", mult), func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{Workers: 8, Fast2Multiplier: mult})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(serial.Makespan)/float64(last.Makespan), "speedup")
		})
	}
}

// BenchmarkAblationWorkspacePooling isolates the SYNCHED pool: plain Cilk
// vs pooled Cilk on a copy-heavy benchmark.
func BenchmarkAblationWorkspacePooling(b *testing.B) {
	p := nqueens.NewArray(10)
	for _, e := range []adaptivetc.Engine{adaptivetc.NewCilk(), adaptivetc.NewCilkSynched()} {
		b.Run(e.Name(), func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Run(p, adaptivetc.Options{Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Makespan)/1e6, "vmakespan-ms")
		})
	}
}

// BenchmarkRealPlatform measures actual wall-clock throughput of the
// engines on real goroutines (the non-simulated mode).
func BenchmarkRealPlatform(b *testing.B) {
	p := nqueens.NewArray(9)
	for _, e := range []adaptivetc.Engine{adaptivetc.NewCilk(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC()} {
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(p, adaptivetc.Options{Workers: 4, Platform: adaptivetc.NewRealPlatform(int64(i + 1))}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byInt(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkStealCounts regenerates the §5.3.2 future-work comparison.
func BenchmarkStealCounts(b *testing.B) { runExperiment(b, experiments.StealCounts) }

// BenchmarkAblationGrowableDeque compares the fixed THE deque against the
// growable one on a deep spawn-heavy workload.
func BenchmarkAblationGrowableDeque(b *testing.B) {
	p := nqueens.NewArray(10)
	for _, growable := range []bool{false, true} {
		name := "fixed"
		if growable {
			name = "growable"
		}
		b.Run(name, func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := adaptivetc.NewCilk().Run(p, adaptivetc.Options{
					Workers: 8, GrowableDeque: growable, DequeCapacity: 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Makespan)/1e6, "vmakespan-ms")
			b.ReportMetric(float64(last.Stats.MaxDequeDepth), "max-depth")
		})
	}
}

// BenchmarkExtensionEngines compares AdaptiveTC against the help-first and
// SLAW extensions on the headline workload.
func BenchmarkExtensionEngines(b *testing.B) {
	p := nqueens.NewArray(10)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	engines := append([]adaptivetc.Engine{adaptivetc.NewAdaptiveTC(), adaptivetc.NewCilk()},
		adaptivetc.ExtensionEngines()...)
	for _, e := range engines {
		b.Run(e.Name(), func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Run(p, adaptivetc.Options{Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				if res.Value != serial.Value {
					b.Fatalf("value %d, want %d", res.Value, serial.Value)
				}
				last = res
			}
			b.ReportMetric(float64(serial.Makespan)/float64(last.Makespan), "speedup")
			b.ReportMetric(float64(last.Stats.TasksCreated), "tasks")
		})
	}
}

// BenchmarkAblationTascellGrain compares Tascell's two extraction rules
// the paper describes: half of the remaining iterations (§5.3.2's
// parallel-for) vs a single iteration (§1's plain recursion), on a wide
// unbalanced tree where the difference matters.
func BenchmarkAblationTascellGrain(b *testing.B) {
	spec := synthtree.Tree1(60000)
	spec.Seed = 12
	p := synthtree.New(spec)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []adaptivetc.Engine{adaptivetc.NewTascell(), adaptivetc.NewTascellSingle()} {
		b.Run(e.Name(), func(b *testing.B) {
			var last adaptivetc.Result
			for i := 0; i < b.N; i++ {
				res, err := e.Run(p, adaptivetc.Options{Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(serial.Makespan)/float64(last.Makespan), "speedup")
			b.ReportMetric(float64(last.Stats.Requests), "extractions")
		})
	}
}

// BenchmarkATCInterpretationOverhead compares the compiled mini-language
// against the native Go implementation of the same search (real CPU time,
// not virtual): the cost of the closure interpreter per node.
func BenchmarkATCInterpretationOverhead(b *testing.B) {
	atcProg, err := adaptivetc.CompileATC("nqueens", adaptivetc.ATCSources()["nqueens"], map[string]int64{"n": 9})
	if err != nil {
		b.Fatal(err)
	}
	native := nqueens.NewArray(9)
	for _, cfg := range []struct {
		name string
		prog adaptivetc.Program
	}{{"atc", atcProg}, {"native", native}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := adaptivetc.NewSerial().Run(cfg.prog, adaptivetc.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Value != 352 {
					b.Fatalf("value %d", res.Value)
				}
			}
		})
	}
}
