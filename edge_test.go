package adaptivetc_test

import (
	"errors"
	"fmt"
	"testing"

	"adaptivetc"
	"adaptivetc/internal/sched"
	"adaptivetc/problems/nqueens"
)

// singleton is a one-node tree: the root is terminal.
type singleton struct{}

type nullWS struct{}

func (nullWS) Clone() sched.Workspace { return nullWS{} }
func (nullWS) Bytes() int             { return 0 }

func (singleton) Name() string                                { return "singleton" }
func (singleton) Root() sched.Workspace                       { return nullWS{} }
func (singleton) Terminal(sched.Workspace, int) (int64, bool) { return 7, true }
func (singleton) Moves(sched.Workspace, int) int              { return 0 }
func (singleton) Apply(sched.Workspace, int, int) bool        { return false }
func (singleton) Undo(sched.Workspace, int, int)              {}

// deadEnd has a non-terminal root whose every candidate move is illegal.
type deadEnd struct{}

func (deadEnd) Name() string                                { return "deadend" }
func (deadEnd) Root() sched.Workspace                       { return nullWS{} }
func (deadEnd) Terminal(sched.Workspace, int) (int64, bool) { return 0, false }
func (deadEnd) Moves(sched.Workspace, int) int              { return 5 }
func (deadEnd) Apply(sched.Workspace, int, int) bool        { return false }
func (deadEnd) Undo(sched.Workspace, int, int)              {}

// thin is a tree whose every interior node has exactly one legal move —
// a pure chain with no parallelism at all.
type thin struct{ depth int }

type thinWS struct{ d int }

func (w *thinWS) Clone() sched.Workspace { c := *w; return &c }
func (w *thinWS) Bytes() int             { return 8 }

func (p thin) Name() string          { return fmt.Sprintf("thin(%d)", p.depth) }
func (p thin) Root() sched.Workspace { return &thinWS{} }
func (p thin) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == p.depth {
		return 1, true
	}
	return 0, false
}
func (p thin) Moves(sched.Workspace, int) int { return 3 }
func (p thin) Apply(w sched.Workspace, depth, m int) bool {
	if m != 1 {
		return false // only the middle candidate is legal
	}
	w.(*thinWS).d++
	return true
}
func (p thin) Undo(w sched.Workspace, depth, m int) { w.(*thinWS).d-- }

// TestEdgePrograms: every engine must handle trees with no spawnable work.
func TestEdgePrograms(t *testing.T) {
	cases := []struct {
		p    adaptivetc.Program
		want int64
	}{
		{singleton{}, 7},
		{deadEnd{}, 0},
		{thin{depth: 40}, 1},
	}
	engines := append(adaptivetc.Engines(), adaptivetc.ExtensionEngines()...)
	for _, c := range cases {
		for _, e := range engines {
			for _, workers := range []int{1, 3, 8} {
				res, err := e.Run(c.p, adaptivetc.Options{Workers: workers, Seed: int64(workers)})
				if err != nil {
					t.Fatalf("%s/%s P=%d: %v", e.Name(), c.p.Name(), workers, err)
				}
				if res.Value != c.want {
					t.Errorf("%s/%s P=%d: value %d, want %d", e.Name(), c.p.Name(), workers, res.Value, c.want)
				}
			}
		}
	}
}

// TestOverflowAbortSticky forces a deque overflow on real goroutines while
// thieves hold stolen frames. The aborting worker records the failure; a
// thief mid-Resume on a stolen frame can still finish its subtree and run
// its deposit cascade all the way to a nil parent — that late completion
// must not flip the run back to "done, here is a value": the reported
// error must remain the overflow, every time.
func TestOverflowAbortSticky(t *testing.T) {
	p := nqueens.NewArray(8) // depth 8 >> effective capacity, overflow certain
	for seed := int64(1); seed <= 20; seed++ {
		res, err := adaptivetc.NewCilk().Run(p, adaptivetc.Options{
			Workers:       2,
			DequeCapacity: 6, // two slots are claim slack: 4 usable
			Platform:      adaptivetc.NewRealPlatform(seed),
		})
		if err == nil {
			t.Fatalf("seed %d: run with capacity 4 succeeded (value %d), want overflow", seed, res.Value)
		}
		if !errors.Is(err, sched.ErrDequeOverflow) {
			t.Fatalf("seed %d: error %v, want ErrDequeOverflow", seed, err)
		}
	}
}

// TestEdgeProgramsRealPlatform repeats the edge cases on real goroutines:
// thieves must terminate even when there is nothing to steal, ever.
func TestEdgeProgramsRealPlatform(t *testing.T) {
	engines := append(adaptivetc.Engines(), adaptivetc.ExtensionEngines()...)
	for _, e := range engines {
		res, err := e.Run(thin{depth: 30}, adaptivetc.Options{
			Workers:  4,
			Platform: adaptivetc.NewRealPlatform(2),
		})
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.Value != 1 {
			t.Errorf("%s: value %d, want 1", e.Name(), res.Value)
		}
	}
}
