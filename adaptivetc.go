// Package adaptivetc is a Go reproduction of "An Adaptive Task Creation
// Strategy for Work-Stealing Scheduling" (Wang et al., CGO 2010). It
// provides:
//
//   - the AdaptiveTC scheduler itself — adaptive switching between real
//     tasks, fake tasks (plain recursion) and special tasks, with
//     taskprivate workspace semantics (NewAdaptiveTC);
//   - the paper's baselines: Cilk, Cilk-SYNCHED, Tascell and two cut-off
//     strategies (NewCilk, NewCilkSynched, NewTascell,
//     NewCutoffProgrammer, NewCutoffLibrary), plus a Serial reference;
//   - the Program/Workspace model every benchmark is written against, and
//     ready-made programs under problems/ (n-queens, Sudoku, Strimko,
//     Knight's Tour, Pentomino, Fib, Comp, synthetic unbalanced trees);
//   - two execution platforms: real goroutine workers, and a deterministic
//     virtual-time simulator whose makespans stand in for wall-clock time
//     on an N-core machine (the default, and how the paper's figures are
//     regenerated on any host).
//
// Quick start:
//
//	p := nqueens.NewArray(10)
//	res, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{Workers: 8})
//	// res.Value = 724 solutions; res.Makespan = virtual ns
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package adaptivetc

import (
	"fmt"

	"adaptivetc/internal/cilk"
	"adaptivetc/internal/core"
	"adaptivetc/internal/cutoff"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/slaw"
	"adaptivetc/internal/tascell"
	"adaptivetc/internal/vtime"
)

// Core vocabulary, shared by every engine. See the sched package docs on
// each type; they are aliased here so external code never has to name an
// internal import path.
type (
	// Program is a recursive task function in the paper's spawn/sync shape.
	Program = sched.Program
	// Workspace is a task's taskprivate working state.
	Workspace = sched.Workspace
	// Reusable is a workspace that supports in-place copy (SYNCHED pool).
	Reusable = sched.Reusable
	// Coster optionally prices a program's per-node work for virtual time.
	Coster = sched.Coster
	// Options configures a run (workers, platform, costs, cutoff, …).
	Options = sched.Options
	// Costs is the virtual-time price list for scheduler actions.
	Costs = sched.Costs
	// Result is one run's outcome: value, makespan, statistics.
	Result = sched.Result
	// Stats aggregates scheduler counters and per-phase times.
	Stats = sched.Stats
	// Engine is a scheduling strategy under test.
	Engine = sched.Engine
	// TreeStats describes a search tree's shape (Figure 8 / Table 3).
	TreeStats = sched.TreeStats
	// Platform executes a run's workers (simulated or real).
	Platform = vtime.Platform
)

// DefaultCosts returns the calibrated virtual cost model.
func DefaultCosts() Costs { return sched.DefaultCosts() }

// LogCutoff returns ⌈log2 n⌉, AdaptiveTC's initial cutoff for n workers.
func LogCutoff(n int) int { return sched.LogCutoff(n) }

// Analyze walks a program's search tree and reports its shape.
func Analyze(p Program, maxNodes int64) TreeStats { return sched.Analyze(p, maxNodes) }

// NewSerial returns the single-threaded reference engine, the baseline all
// speedups are computed against.
func NewSerial() Engine { return sched.Serial{} }

// NewAdaptiveTC returns the paper's contribution: the adaptive task
// creation scheduler with its fast/check/fast_2/sequence/slow versions.
func NewAdaptiveTC() Engine { return core.New() }

// NewCilk returns the Cilk 5.4.6 baseline: a task per spawn, workspace
// copied for every child.
func NewCilk() Engine { return cilk.New() }

// NewCilkSynched returns Cilk with the SYNCHED-variable space optimisation
// (pooled workspace memory; bytes still copied).
func NewCilkSynched() Engine { return cilk.NewSynched() }

// NewTascell returns the Tascell baseline: backtracking-based lazy task
// creation with non-suspendable joins; a victim gives away half of a
// level's remaining iterations per request (the parallel-for rule of
// §5.3.2).
func NewTascell() Engine { return tascell.New() }

// NewTascellSingle returns the Tascell variant that extracts exactly one
// iteration per request — the plain-recursion rule of the paper's §1.
func NewTascellSingle() Engine { return tascell.NewSingle() }

// NewCutoffProgrammer returns the programmer-specified cut-off baseline of
// Figure 9 (Options.Cutoff sets the depth).
func NewCutoffProgrammer() Engine { return cutoff.NewProgrammer() }

// NewCutoffLibrary returns the runtime-chosen cut-off baseline of Figure 9.
func NewCutoffLibrary() Engine { return cutoff.NewLibrary() }

// NewHelpFirst returns the help-first scheduling extension: every spawn
// pushes the child task and the parent continues (contrast with Cilk's
// work-first policy).
func NewHelpFirst() Engine { return slaw.NewHelpFirst() }

// NewSLAW returns the SLAW-like extension engine that adaptively switches
// between help-first and work-first per spawn — the alternative adaptive
// scheduler the paper's related work contrasts AdaptiveTC with.
func NewSLAW() Engine { return slaw.New() }

// NewSimPlatform returns the deterministic virtual-time platform. seed
// fixes victim selection; zero means 1.
func NewSimPlatform(seed int64) Platform { return &vtime.Sim{Seed: seed} }

// NewRealPlatform returns the wall-clock goroutine platform.
func NewRealPlatform(seed int64) Platform { return &vtime.Real{Seed: seed} }

// Engines returns every scheduler of the paper, serial first — the set the
// evaluation compares (plus the cut-off baselines of Figure 9).
func Engines() []Engine {
	return []Engine{
		NewSerial(),
		NewCilk(),
		NewCilkSynched(),
		NewTascell(),
		NewAdaptiveTC(),
		NewCutoffProgrammer(),
		NewCutoffLibrary(),
	}
}

// ExtensionEngines returns the schedulers this repository adds beyond the
// paper's comparison set: the help-first policy, the SLAW-like adaptive
// policy switcher from the related work, and Tascell with single-iteration
// extraction (the paper's plain-recursion rule).
func ExtensionEngines() []Engine {
	return []Engine{NewHelpFirst(), NewSLAW(), NewTascellSingle()}
}

// EngineByName resolves "serial", "cilk", "cilk-synched", "tascell",
// "adaptivetc", "cutoff-programmer", "cutoff-library", "helpfirst" or
// "slaw".
func EngineByName(name string) (Engine, error) {
	for _, e := range append(Engines(), ExtensionEngines()...) {
		if e.Name() == name {
			return e, nil
		}
	}
	return nil, fmt.Errorf("adaptivetc: unknown engine %q", name)
}
