// Service metrics: the latency ring and log-bucketed histogram, the
// per-tenant / per-priority / per-engine breakdowns, and the Metrics
// snapshot GET /metrics renders. Latency accounting policy (what enters
// the ring at all) lives with the job lifecycle in service.go; this file
// only aggregates.
package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyRing keeps the last N job latencies for percentile estimates.
type latencyRing struct {
	mu   sync.Mutex
	buf  []int64
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]int64, n)} }

func (l *latencyRing) add(d int64) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// percentiles returns the p50 and p99 of the retained window (0, 0 when
// empty), using nearest-rank (ceil) indexing: the reported pXX is the
// smallest retained sample ≥ XX% of the window. The truncating
// int(p*(n-1)) form this replaces under-reports the tail — on a 50-sample
// window it hands back the ~p96 sample and calls it p99, exactly when the
// tail is what the number is for.
func (l *latencyRing) percentiles() (p50, p99 int64) {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	s := make([]int64, n)
	copy(s, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[nearestRank(0.50, n)], s[nearestRank(0.99, n)]
}

// nearestRank returns the 0-based index of the nearest-rank percentile p
// in a sorted sample of size n: ceil(p·n) clamped to [0, n-1].
func nearestRank(p float64, n int) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// histBoundsMS are the histogram bucket upper bounds in milliseconds,
// roughly log-spaced from sub-millisecond pool round-trips to the job
// deadlines loadgen uses.
var histBoundsMS = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// histogram counts latencies into the histBoundsMS buckets plus one
// overflow bucket. Counters are atomics: observe is on the job completion
// path and must not contend with /metrics scrapes.
type histogram struct {
	counts []atomic.Int64 // len(histBoundsMS)+1; last is the overflow
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(histBoundsMS)+1)}
}

func (h *histogram) observe(ns int64) {
	ms := float64(ns) / 1e6
	i := sort.SearchFloat64s(histBoundsMS, ms)
	h.counts[i].Add(1)
}

// LatencyHistogram is the JSON view: Counts[i] holds samples ≤
// BoundsMS[i] (and > the previous bound); Counts[len(BoundsMS)] holds the
// overflow. Counts are per-bucket, not cumulative.
type LatencyHistogram struct {
	BoundsMS []float64 `json:"bounds_ms"`
	Counts   []int64   `json:"counts"`
}

func (h *histogram) snapshot() LatencyHistogram {
	out := LatencyHistogram{BoundsMS: histBoundsMS, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	return out
}

// groupStat accumulates one breakdown key's counters (a tenant, a
// priority class, or an engine) plus a latency window of its own.
type groupStat struct {
	submitted     atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	cancelled     atomic.Int64
	rejected      atomic.Int64 // queue-full rejections attributed to the key
	rateLimited   atomic.Int64
	quotaRejected atomic.Int64
	queued        atomic.Int64 // gauge: admitted, not yet running
	running       atomic.Int64 // gauge: on pool workers now
	lat           *latencyRing
}

func newGroupStat() *groupStat { return &groupStat{lat: newLatencyRing(1024)} }

// GroupMetrics is the JSON view of one breakdown key.
type GroupMetrics struct {
	Submitted     int64   `json:"submitted"`
	Completed     int64   `json:"completed"`
	Failed        int64   `json:"failed,omitempty"`
	Cancelled     int64   `json:"cancelled,omitempty"`
	Rejected      int64   `json:"rejected,omitempty"`
	RateLimited   int64   `json:"rate_limited,omitempty"`
	QuotaRejected int64   `json:"quota_rejected,omitempty"`
	Queued        int64   `json:"queued"`
	Running       int64   `json:"running"`
	P50LatencyMS  float64 `json:"p50_latency_ms"`
	P99LatencyMS  float64 `json:"p99_latency_ms"`
}

func (g *groupStat) snapshot() GroupMetrics {
	p50, p99 := g.lat.percentiles()
	return GroupMetrics{
		Submitted:     g.submitted.Load(),
		Completed:     g.completed.Load(),
		Failed:        g.failed.Load(),
		Cancelled:     g.cancelled.Load(),
		Rejected:      g.rejected.Load(),
		RateLimited:   g.rateLimited.Load(),
		QuotaRejected: g.quotaRejected.Load(),
		Queued:        g.queued.Load(),
		Running:       g.running.Load(),
		P50LatencyMS:  float64(p50) / 1e6,
		P99LatencyMS:  float64(p99) / 1e6,
	}
}

// tenantState is one tenant's admission state: its limits, its token
// bucket, its in-flight count (for the quota), and its metrics.
type tenantState struct {
	groupStat
	limits   TenantLimits
	bucket   *tokenBucket
	inflight atomic.Int64 // queued + running, bounded by limits.MaxInFlight
}

func newTenantState(lim TenantLimits) *tenantState {
	ts := &tenantState{limits: lim, bucket: newTokenBucket(lim)}
	ts.lat = newLatencyRing(1024)
	return ts
}

// Metrics is the service counter snapshot returned by GET /metrics.
type Metrics struct {
	Started             time.Time `json:"started"`
	UptimeSeconds       float64   `json:"uptime_seconds"`
	Draining            bool      `json:"draining"`
	Workers             int       `json:"workers"`
	MaxConcurrentJobs   int       `json:"max_concurrent_jobs"`
	ShardPolicy         string    `json:"shard_policy"`
	SLOTargetMS         float64   `json:"slo_target_ms,omitempty"`
	RunningJobs         int64     `json:"running_jobs"`
	BusyWorkers         int64     `json:"busy_workers"`
	WorkerOccupancy     float64   `json:"worker_occupancy"`
	QueueCapacity       int       `json:"queue_capacity"`
	QueueDepth          int       `json:"queue_depth"`
	ExternalQueueDepth  int       `json:"external_queue_depth"`
	LoadScore           int       `json:"load_score"`
	InFlight            int64     `json:"in_flight"`
	ForwardedOut        int64     `json:"forwarded_out"`
	ForwardedIn         int64     `json:"forwarded_in"`
	ForwardRejected     int64     `json:"forward_rejected"`
	ForwardedNow        int64     `json:"forwarded_now"`
	Submitted           int64     `json:"submitted"`
	Completed           int64     `json:"completed"`
	Failed              int64     `json:"failed"`
	Cancelled           int64     `json:"cancelled"`
	Rejected            int64     `json:"rejected"`
	RateLimited         int64     `json:"rate_limited"`
	QuotaRejected       int64     `json:"quota_rejected"`
	AdmissionRetries    int64     `json:"admission_retries"`
	QuarantinedJobs     int64     `json:"quarantined_jobs"`
	ThroughputPerSecond float64   `json:"throughput_per_second"`
	P50LatencyMS        float64   `json:"p50_latency_ms"`
	P99LatencyMS        float64   `json:"p99_latency_ms"`
	InvariantChecked    int64     `json:"invariant_checked"`
	InvariantViolations int64     `json:"invariant_violations"`

	// Programs-as-data: DSL compile cache and persistent job store.
	ProgramsCached    int            `json:"programs_cached"`
	ProgramCacheBytes int64          `json:"program_cache_bytes"`
	CompileHits       int64          `json:"compile_hits"`
	CompileMisses     int64          `json:"compile_misses"`
	CompileErrHits    int64          `json:"compile_error_hits"`
	ProgramEvictions  int64          `json:"program_evictions"`
	StoreFsyncs       int64          `json:"store_fsyncs,omitempty"`
	StoreRecords      int64          `json:"store_records,omitempty"`
	Recovery          *RecoveryStats `json:"recovery,omitempty"`

	LatencyHistogram LatencyHistogram        `json:"latency_histogram"`
	Shards           []ShardMetrics          `json:"shards,omitempty"`
	Tenants          map[string]GroupMetrics `json:"tenants,omitempty"`
	Priorities       map[string]GroupMetrics `json:"priorities,omitempty"`
	Engines          map[string]GroupMetrics `json:"engines,omitempty"`
}

// ShardMetrics is the occupancy view of one live worker shard: which
// global workers a running job is bound to and what fraction of the pool
// that is. The aggregate worker_occupancy cannot distinguish one wide job
// from many narrow ones; the cluster load view (and capacity planning)
// wants the breakdown.
type ShardMetrics struct {
	Workers   []int   `json:"workers"`
	Width     int     `json:"width"`
	Occupancy float64 `json:"occupancy"`
}
