package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"adaptivetc/internal/lang"
	"adaptivetc/internal/progstore"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// ProgramStatus is the JSON view of one cached DSL program. Source is
// the canonical form and is only populated by GET /programs/{hash}.
type ProgramStatus struct {
	progstore.Meta
	Source string `json:"source,omitempty"`
}

// JobStatus is the JSON view of one job (POST /jobs and GET /jobs/{id}).
type JobStatus struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Program string `json:"program,omitempty"`
	// ProgramHash identifies a DSL job's cached program (set instead of
	// Program for program_hash submissions).
	ProgramHash string    `json:"program_hash,omitempty"`
	Engine      string    `json:"engine"`
	Tenant   string    `json:"tenant"`
	Priority Priority  `json:"priority"`
	Created  time.Time `json:"created"`

	// Cluster fields: Origin is the peer that forwarded the job here;
	// ForwardedTo/RemoteID point at the peer a forwarded job went to.
	Origin      string `json:"origin,omitempty"`
	ForwardedTo string `json:"forwarded_to,omitempty"`
	RemoteID    string `json:"remote_id,omitempty"`

	// Terminal-state fields.
	Value       *int64  `json:"value,omitempty"`
	Error       string  `json:"error,omitempty"`
	MakespanMS  float64 `json:"makespan_ms,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	Violations  string  `json:"invariant_violations,omitempty"`
	// Shard is the worker group the job ran on (absent until terminal, and
	// for jobs that never started).
	Shard []int `json:"shard,omitempty"`

	Stats *sched.Stats `json:"stats,omitempty"`
}

// status renders j for the API.
func status(j *Job) JobStatus {
	st, res, err := j.Snapshot()
	eng := j.Req.Engine
	if eng == "" {
		eng = "adaptivetc"
	}
	out := JobStatus{
		ID:          j.ID,
		State:       st,
		Program:     j.Req.Program,
		ProgramHash: j.Req.ProgramHash,
		Engine:      eng,
		Tenant:   j.tenant,
		Priority: j.prio,
		Created:  j.Created,
		Origin:   j.origin,
	}
	j.mu.Lock()
	out.ForwardedTo, out.RemoteID = j.remoteNode, j.remoteID
	j.mu.Unlock()
	switch st {
	case StateQueued, StateRunning, StateForwarded:
		return out
	}
	if err != nil {
		out.Error = err.Error()
	}
	if st == StateDone {
		v := res.Value
		out.Value = &v
	}
	out.MakespanMS = float64(res.Makespan) / 1e6
	out.QueueWaitMS = float64(res.Stats.QueueWait) / 1e6
	out.Shard = res.Shard
	stats := res.Stats
	out.Stats = &stats
	if viol := j.Violations(); viol != nil {
		out.Violations = viol.Error()
	}
	return out
}

// NewMux returns the service's HTTP API:
//
//	POST   /jobs       submit (Request body; X-Tenant header overrides
//	                   req.Tenant) → 202 JobStatus; 429 + Retry-After on a
//	                   full queue, tenant rate limit, or tenant quota; 503
//	                   while draining or closed
//	GET    /jobs/{id}  status and, once terminal, result → JobStatus
//	DELETE /jobs/{id}  cancel → 202 JobStatus
//	GET    /metrics    service counters → Metrics
//	GET    /catalog    available programs and engines
//	GET    /healthz    liveness: 200 while the process serves HTTP
//	GET    /readyz     readiness: 200 until Drain/Close, then 503
//
// Programs as data (the DSL compile cache):
//
//	POST   /programs        {"name","source"} → 201 ProgramStatus on first
//	                        submission, 200 for a program already cached
//	                        under the same content hash; 400 with
//	                        {"error","line","col"} on a compile error
//	GET    /programs        cached programs, most recently used first
//	GET    /programs/{hash} metadata + canonical source → ProgramStatus
//	DELETE /programs/{hash} evict → 200; 404 unknown
//
// A cached program runs via POST /jobs with "program_hash" in place of
// "program"; engine, steal_policy, tenant, priority, timeout_ms and the
// n/m size knobs apply identically, and "first_solution": true selects
// first-solution mode.
func NewMux(s *Service) *http.ServeMux {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	writeErr := func(w http.ResponseWriter, code int, err error) {
		// Compile diagnostics keep their source position in the payload.
		var le *lang.Error
		if errors.As(err, &le) {
			writeJSON(w, code, map[string]any{"error": le.Error(), "line": le.Line, "col": le.Col})
			return
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if t := r.Header.Get("X-Tenant"); t != "" {
			req.Tenant = t
		}
		job, err := s.Submit(req)
		var rej *RejectionError
		switch {
		case errors.As(err, &rej):
			w.Header().Set("Retry-After", retryAfterSeconds(rej.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, wsrt.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, err)
			return
		case errors.Is(err, ErrDraining), errors.Is(err, wsrt.ErrPoolClosed):
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, status(job))
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Get(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("serve: no such job"))
			return
		}
		writeJSON(w, http.StatusOK, status(job))
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Cancel(r.PathValue("id"))
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("serve: no such job"))
			return
		}
		writeJSON(w, http.StatusAccepted, status(job))
	})

	mux.HandleFunc("POST /programs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name   string `json:"name"`
			Source string `json:"source"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Source == "" {
			writeErr(w, http.StatusBadRequest, errors.New("serve: empty program source"))
			return
		}
		meta, created, err := s.PutProgram(req.Name, req.Source)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, ProgramStatus{Meta: meta})
	})

	mux.HandleFunc("GET /programs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"programs": s.Programs()})
	})

	mux.HandleFunc("GET /programs/{hash}", func(w http.ResponseWriter, r *http.Request) {
		meta, src, ok := s.GetProgram(r.PathValue("hash"))
		if !ok {
			writeErr(w, http.StatusNotFound, errors.New("serve: no such program"))
			return
		}
		writeJSON(w, http.StatusOK, ProgramStatus{Meta: meta, Source: src})
	})

	mux.HandleFunc("DELETE /programs/{hash}", func(w http.ResponseWriter, r *http.Request) {
		if !s.DeleteProgram(r.PathValue("hash")) {
			writeErr(w, http.StatusNotFound, errors.New("serve: no such program"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Snapshot())
	})

	mux.HandleFunc("GET /catalog", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"programs":     registry.Names(),
			"engines":      EngineNames(),
			"dsl_programs": s.Programs(),
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	return mux
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 — the header has no sub-second form.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
