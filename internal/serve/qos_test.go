// Tests for the QoS admission plane: weighted-fair ordering, tenant
// quotas and rate limits, graceful drain, the percentile and backoff
// fixes, and goroutine hygiene of the job lifecycle.
package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivetc/internal/core"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// waitForState polls until the job reaches want (the submit→running edge
// is asynchronous: the pump stages the job, the pool starts it).
func waitForState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st, _, _ := j.Snapshot(); st == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _, err := j.Snapshot()
	t.Fatalf("job %s stuck in state %s (err=%v), want %s", j.ID, st, err, want)
}

// startOrder records the order in which probed jobs start on the pool.
type startOrder struct {
	mu  sync.Mutex
	ids []int
}

// probeEngine wraps a pool engine and records its job's start: the pool
// dispatcher calls NewExec exactly once per job, at start, from a single
// goroutine, so the recorded order is the true start order.
type probeEngine struct {
	inner wsrt.PoolEngine
	id    int
	ord   *startOrder
}

func (e *probeEngine) Name() string { return e.inner.Name() }

func (e *probeEngine) NewExec(n int, opt sched.Options) wsrt.Engine {
	e.ord.mu.Lock()
	e.ord.ids = append(e.ord.ids, e.id)
	e.ord.mu.Unlock()
	return e.inner.NewExec(n, opt)
}

// TestWeightedFairOrdering is the contention test for the admission
// queue: with the single worker held by a blocker, four background jobs
// submitted *before* four interactive jobs must still start *after* them
// — all but the one background job the pump had already staged into the
// pool's capacity-1 queue before the interactive jobs arrived.
func TestWeightedFairOrdering(t *testing.T) {
	ord := &startOrder{}
	nextID := 0
	RegisterEngine("qos-probe", func() wsrt.PoolEngine {
		e := &probeEngine{inner: core.New(), id: nextID, ord: ord}
		nextID++
		return e
	})
	t.Cleanup(func() { delete(poolEngines, "qos-probe") })

	s := New(Config{Workers: 1, QueueCapacity: 16, AdmissionBackoff: time.Millisecond})
	t.Cleanup(s.Close)

	// id 0: the blocker, holding the lone worker.
	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, Engine: "qos-probe", TimeoutMS: 30000})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, blocker, StateRunning)

	var jobs []*Job
	submit := func(prio string) {
		t.Helper()
		j, err := s.Submit(Request{Program: "fib", N: 10, Engine: "qos-probe", Priority: prio})
		if err != nil {
			t.Fatalf("submit %s: %v", prio, err)
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 4; i++ { // ids 1..4
		submit("background")
	}
	for i := 0; i < 4; i++ { // ids 5..8
		submit("interactive")
	}
	blocker.Cancel(ErrCancelled)
	for _, j := range jobs {
		<-j.Done()
		if st, res, err := j.Snapshot(); st != StateDone || err != nil || res.Value != 55 {
			t.Fatalf("job %s: state=%s value=%d err=%v, want done/55", j.ID, st, res.Value, err)
		}
	}
	<-blocker.Done()

	ord.mu.Lock()
	order := append([]int(nil), ord.ids...)
	ord.mu.Unlock()
	if len(order) != 9 || order[0] != 0 {
		t.Fatalf("start order %v: want 9 starts led by the blocker", order)
	}
	lastInteractive := 0
	for pos, id := range order {
		if id >= 5 {
			lastInteractive = pos
		}
	}
	jumped := 0
	for _, id := range order[1:lastInteractive] {
		if id >= 1 && id <= 4 {
			jumped++
		}
	}
	if jumped > 1 {
		t.Fatalf("start order %v: %d background jobs started before the last interactive; only the pre-staged one may", order, jumped)
	}

	m := s.Snapshot()
	if got := m.Priorities[string(PriorityInteractive)].Completed; got != 4 {
		t.Fatalf("interactive completed = %d, want 4", got)
	}
	if got := m.Priorities[string(PriorityBackground)].Completed; got != 4 {
		t.Fatalf("background completed = %d, want 4", got)
	}
}

// TestWFQClassWeights pins the smooth-weighted-round-robin drain order
// for the 16/4/1 weights with four jobs queued per class.
func TestWFQClassWeights(t *testing.T) {
	q := newWFQ()
	for i := 0; i < 4; i++ {
		for _, p := range []Priority{PriorityBackground, PriorityBatch, PriorityInteractive} {
			q.push(&admItem{job: &Job{tenant: DefaultTenant, prio: p}})
		}
	}
	var got []Priority
	for q.depth() > 0 {
		it, ok := q.pop()
		if !ok {
			t.Fatal("pop reported closed on a non-empty queue")
		}
		got = append(got, it.job.prio)
	}
	want := []Priority{
		PriorityInteractive, PriorityInteractive, PriorityBatch,
		PriorityInteractive, PriorityInteractive, PriorityBackground,
		PriorityBatch, PriorityBatch, PriorityBatch,
		PriorityBackground, PriorityBackground, PriorityBackground,
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v (diverges at %d)", got, want, i)
		}
	}
}

// TestWFQTenantRoundRobin checks fairness within a class: tenants take
// turns regardless of how many jobs each has queued, and a tenant whose
// queue empties leaves the ring cleanly.
func TestWFQTenantRoundRobin(t *testing.T) {
	q := newWFQ()
	push := func(id, tenant string) {
		q.push(&admItem{job: &Job{ID: id, tenant: tenant, prio: PriorityBatch}})
	}
	push("a1", "a")
	push("a2", "a")
	push("b1", "b")
	var got []string
	for q.depth() > 0 {
		it, _ := q.pop()
		got = append(got, it.job.ID)
	}
	if want := "a1 b1 a2"; strings.Join(got, " ") != want {
		t.Fatalf("tenant round-robin order %v, want %q", got, want)
	}
}

// TestQuotaRejection exhausts a tenant's in-flight quota: the rejection
// is typed, carries the tenant and a Retry-After hint, does not affect
// other tenants, and clears when the tenant's own job finishes.
func TestQuotaRejection(t *testing.T) {
	s := New(Config{
		Workers:       1,
		QueueCapacity: 8,
		Tenants:       map[string]TenantLimits{"acme": {MaxInFlight: 1}},
	})
	t.Cleanup(s.Close)

	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, Tenant: "acme", TimeoutMS: 30000})
	if err != nil {
		t.Fatal(err)
	}

	_, err = s.Submit(Request{Program: "fib", N: 10, Tenant: "acme"})
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != "quota" || rej.Tenant != "acme" || rej.RetryAfter <= 0 {
		t.Fatalf("over-quota submit: err=%v, want a quota RejectionError for acme", err)
	}

	other, err := s.Submit(Request{Program: "fib", N: 10, Tenant: "other"})
	if err != nil {
		t.Fatalf("other tenant blocked by acme's quota: %v", err)
	}

	blocker.Cancel(ErrCancelled)
	<-blocker.Done()
	again, err := s.Submit(Request{Program: "fib", N: 10, Tenant: "acme"})
	if err != nil {
		t.Fatalf("submit after quota cleared: %v", err)
	}
	<-again.Done()
	<-other.Done()

	m := s.Snapshot()
	if m.QuotaRejected != 1 || m.Tenants["acme"].QuotaRejected != 1 {
		t.Fatalf("quota_rejected=%d acme=%d, want 1/1", m.QuotaRejected, m.Tenants["acme"].QuotaRejected)
	}
	if m.Rejected != 0 {
		t.Fatalf("rejected=%d: quota rejections must not count as queue-full", m.Rejected)
	}
}

// TestRateLimitRejection drains a tenant's token bucket and checks both
// the typed error and the HTTP mapping: 429 with a whole-second
// Retry-After derived from the refill rate.
func TestRateLimitRejection(t *testing.T) {
	s := New(Config{
		Workers:       1,
		QueueCapacity: 8,
		Tenants:       map[string]TenantLimits{"burst": {RatePerSec: 0.5, Burst: 1}},
	})
	t.Cleanup(s.Close)

	first, err := s.Submit(Request{Program: "fib", N: 10, Tenant: "burst"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(Request{Program: "fib", N: 10, Tenant: "burst"})
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != "rate-limit" || rej.RetryAfter <= 0 || rej.RetryAfter > 2*time.Second {
		t.Fatalf("rate-limited submit: err=%v, want rate-limit RejectionError with 0 < RetryAfter <= 2s", err)
	}

	srv := httptest.NewServer(NewMux(s))
	t.Cleanup(srv.Close)
	req, _ := http.NewRequest("POST", srv.URL+"/jobs", strings.NewReader(`{"program":"fib","n":10}`))
	req.Header.Set("X-Tenant", "burst")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited POST status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\" (1 token at 0.5/s)", got)
	}
	<-first.Done()
	if m := s.Snapshot(); m.RateLimited != 2 || m.Tenants["burst"].RateLimited != 2 {
		t.Fatalf("rate_limited=%d burst=%d, want 2/2", m.RateLimited, m.Tenants["burst"].RateLimited)
	}
}

// TestDrainLifecycle walks the graceful shutdown: /readyz flips to 503
// the moment draining starts, new submissions are refused with
// ErrDraining (503 over HTTP) while the in-flight job finishes, /healthz
// stays 200 throughout, and Drain returns once the last job settles.
func TestDrainLifecycle(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 8})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(NewMux(s))
	t.Cleanup(srv.Close)

	get := func(path string) int {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}

	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, TimeoutMS: 30000})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, blocker, StateRunning)

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Ready() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Ready() {
		t.Fatal("service still ready after Drain started")
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}
	if _, err := s.Submit(Request{Program: "fib", N: 10}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err=%v, want ErrDraining", err)
	}
	resp, err := srv.Client().Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"program":"fib","n":10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain status = %d, want 503", resp.StatusCode)
	}

	blocker.Cancel(ErrCancelled)
	<-blocker.Done()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the last job settled")
	}
	m := s.Snapshot()
	if !m.Draining || m.InFlight != 0 {
		t.Fatalf("draining=%v in_flight=%d, want true/0", m.Draining, m.InFlight)
	}
}

// TestDrainDeadline checks the other exit: a drain bounded by a context
// that expires while a job is still running reports the context error and
// leaves the service drained.
func TestDrainDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 4})
	t.Cleanup(s.Close)
	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, TimeoutMS: 30000})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, blocker, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain: err=%v, want DeadlineExceeded", err)
	}
	blocker.Cancel(ErrCancelled)
	<-blocker.Done()
}

// TestPercentilesNearestRank pins the S2 fix: nearest-rank (ceil)
// indexing. On 50 samples 1..50, p99 must be the 50th sample — the old
// truncating int(p*(n-1)) indexing returned the 49th (~p96) and
// under-reported the tail.
func TestPercentilesNearestRank(t *testing.T) {
	r := newLatencyRing(64)
	for i := 1; i <= 50; i++ {
		r.add(int64(i))
	}
	p50, p99 := r.percentiles()
	if p50 != 25 || p99 != 50 {
		t.Fatalf("p50=%d p99=%d, want 25/50 (nearest-rank)", p50, p99)
	}
	for _, tc := range []struct {
		p       float64
		n, want int
	}{
		{0.99, 50, 49}, {0.50, 50, 24}, {0.99, 100, 98},
		{0.50, 1, 0}, {0.99, 1, 0}, {1.0, 10, 9}, {0.0, 10, 0},
	} {
		if got := nearestRank(tc.p, tc.n); got != tc.want {
			t.Fatalf("nearestRank(%v, %d) = %d, want %d", tc.p, tc.n, got, tc.want)
		}
	}
}

// TestAdmissionBackoffClamp pins the S4 fix: the doubling backoff must
// never overflow into a negative (spinning) sleep, whatever base and
// attempt the caller supplies, and is capped at 100ms.
func TestAdmissionBackoffClamp(t *testing.T) {
	const cap = 100 * time.Millisecond
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 0, 500 * time.Microsecond},                    // default base
		{time.Millisecond, 3, 8 * time.Millisecond},       // plain doubling
		{time.Millisecond, 30, cap},                       // attempt clamp then cap
		{time.Second, 1, cap},                             // base at/over the cap
		{time.Duration(1<<40) * time.Nanosecond, 62, cap}, // would overflow unclamped
	}
	for _, tc := range cases {
		if got := admissionBackoff(tc.base, tc.attempt); got != tc.want {
			t.Fatalf("admissionBackoff(%v, %d) = %v, want %v", tc.base, tc.attempt, got, tc.want)
		}
	}
	for attempt := 0; attempt <= 200; attempt++ {
		for _, base := range []time.Duration{0, 1, time.Microsecond, time.Millisecond, time.Hour} {
			if d := admissionBackoff(base, attempt); d <= 0 || d > cap {
				t.Fatalf("admissionBackoff(%v, %d) = %v out of (0, %v]", base, attempt, d, cap)
			}
		}
	}
}

// TestTokenBucket pins refill arithmetic and the Retry-After hint.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(TenantLimits{RatePerSec: 2, Burst: 1})
	t0 := time.Now()
	if ok, _ := b.take(t0); !ok {
		t.Fatal("first take from a full bucket refused")
	}
	ok, retry := b.take(t0)
	if ok || retry != 500*time.Millisecond {
		t.Fatalf("empty bucket: ok=%v retry=%v, want refused/500ms", ok, retry)
	}
	if ok, _ := b.take(t0.Add(600 * time.Millisecond)); !ok {
		t.Fatal("take after refill interval refused")
	}
	unlimited := newTokenBucket(TenantLimits{})
	for i := 0; i < 100; i++ {
		if ok, _ := unlimited.take(t0); !ok {
			t.Fatal("unlimited bucket refused")
		}
	}
}

// TestMetricsBreakdowns submits across two tenants, two priorities, and
// two engines, then checks every breakdown surfaces in the snapshot and
// the histogram accounts for each completion.
func TestMetricsBreakdowns(t *testing.T) {
	s := New(Config{Workers: 2, QueueCapacity: 8, Options: sched.Options{GrowableDeque: true}})
	t.Cleanup(s.Close)

	a, err := s.Submit(Request{Program: "fib", N: 10, Tenant: "alpha", Priority: "interactive"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(Request{Program: "fib", N: 10, Tenant: "beta", Priority: "background", Engine: "cilk"})
	if err != nil {
		t.Fatal(err)
	}
	<-a.Done()
	<-b.Done()

	m := s.Snapshot()
	for _, tenant := range []string{"alpha", "beta"} {
		g, ok := m.Tenants[tenant]
		if !ok || g.Submitted != 1 || g.Completed != 1 || g.Queued != 0 || g.Running != 0 {
			t.Fatalf("tenant %s metrics = %+v, want 1 submitted, 1 completed, idle gauges", tenant, g)
		}
	}
	if g := m.Priorities[string(PriorityInteractive)]; g.Completed != 1 {
		t.Fatalf("interactive completed = %d, want 1", g.Completed)
	}
	if g := m.Priorities[string(PriorityBackground)]; g.Completed != 1 {
		t.Fatalf("background completed = %d, want 1", g.Completed)
	}
	if g := m.Priorities[string(PriorityBatch)]; g.Submitted != 0 {
		t.Fatalf("batch submitted = %d, want 0", g.Submitted)
	}
	if g := m.Engines["adaptivetc"]; g.Completed != 1 {
		t.Fatalf("adaptivetc engine completed = %d, want 1", g.Completed)
	}
	if g := m.Engines["cilk"]; g.Completed != 1 {
		t.Fatalf("cilk engine completed = %d, want 1", g.Completed)
	}
	var histTotal int64
	for _, c := range m.LatencyHistogram.Counts {
		histTotal += c
	}
	if histTotal != 2 {
		t.Fatalf("histogram holds %d samples, want 2", histTotal)
	}
	if m.P99LatencyMS <= 0 {
		t.Fatalf("p99=%vms, want > 0 after completions", m.P99LatencyMS)
	}
}

// TestServeGoroutineHygiene is the S3 assertion: after a service that ran
// completed, cancelled, and deadline-expired jobs is closed, every
// goroutine it spawned — pump, watchers, and the job-start markers that
// previously escaped the WaitGroup — is gone.
func TestServeGoroutineHygiene(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 2, QueueCapacity: 8, Check: true, Options: sched.Options{GrowableDeque: true}})
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(Request{Program: "fib", N: 10})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	expired, err := s.Submit(Request{Program: "nqueens-array", N: 13, TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, expired)
	for _, j := range jobs {
		<-j.Done()
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d at close vs %d at start — service leaked", runtime.NumGoroutine(), base)
}
