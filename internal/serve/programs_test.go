package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adaptivetc/internal/jobstore"
	"adaptivetc/internal/lang"
	"adaptivetc/internal/sched"
)

// firstSolDSL maintains a packed path witness in taskprivate state: every
// apply shifts the chosen move in, every undo shifts it out, and the
// terminal value is the packed path plus one — always nonzero, so a
// first-solution run returns a recognizable witness.
const firstSolDSL = `
param n = 6
state w
terminal depth == n -> w + 1
moves 2
apply { w = w * 2 + m }
undo { w = (w - m) / 2 }
`

// postJSON posts v to url and decodes the response into out.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls GET /jobs/{id} until the job leaves queued/running.
func waitDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, base+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		switch st.State {
		case StateQueued, StateRunning, StateForwarded:
			time.Sleep(5 * time.Millisecond)
		default:
			return st
		}
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestServeProgramLifecycle is the satellite end-to-end: submit a DSL
// program over HTTP, run it by hash on the pool (invariant checker on),
// hit the compile cache on resubmission, read back diagnostics for a
// broken program, 404 an unknown hash, delete and resubmit, and run a
// first-solution DSL job whose witness path flows through the
// truncation-tolerant checker.
func TestServeProgramLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueCapacity: 32, Check: true,
		Options: sched.Options{GrowableDeque: true}})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(NewMux(s))
	t.Cleanup(srv.Close)

	// A syntax error answers 400 with a position, not a stack trace.
	var diag struct {
		Error string `json:"error"`
		Line  int    `json:"line"`
		Col   int    `json:"col"`
	}
	code := postJSON(t, srv.URL+"/programs",
		map[string]string{"name": "broken", "source": "param n = 4\nterminal depth == n -> 1\nmoves n\napply { x = }\nundo { }"}, &diag)
	if code != http.StatusBadRequest || diag.Line != 4 || diag.Col < 1 {
		t.Fatalf("broken program: code=%d diag=%+v", code, diag)
	}

	// Submit-compile: the shipped fib example, as a client would write it.
	var meta ProgramStatus
	code = postJSON(t, srv.URL+"/programs", map[string]string{"name": "fib", "source": lang.FibSrc}, &meta)
	if code != http.StatusCreated || len(meta.Hash) != 64 {
		t.Fatalf("put fib: code=%d meta=%+v", code, meta)
	}
	// A reformatted copy is the same program: 200, same hash, compile hit.
	var meta2 ProgramStatus
	reformatted := "# fib, reformatted\n" + strings.ReplaceAll(lang.FibSrc, "\n", "\n\t \n")
	code = postJSON(t, srv.URL+"/programs", map[string]string{"name": "fib2", "source": reformatted}, &meta2)
	if code != http.StatusOK || meta2.Hash != meta.Hash {
		t.Fatalf("reformatted fib: code=%d hash=%s want %s", code, meta2.Hash, meta.Hash)
	}

	// Run by hash on two engines; both must agree with the registry build
	// of the identical source (byte-identical in-process compilation).
	var want int64
	{
		var reg JobStatus
		if code := postJSON(t, srv.URL+"/jobs", Request{Program: "atc-fib", N: 15}, &reg); code != http.StatusAccepted {
			t.Fatalf("registry atc-fib: %d", code)
		}
		st := waitDone(t, srv.URL, reg.ID)
		if st.State != StateDone || st.Value == nil {
			t.Fatalf("registry atc-fib: %+v", st)
		}
		want = *st.Value
	}
	for _, engine := range []string{"adaptivetc", "slaw"} {
		var job JobStatus
		code = postJSON(t, srv.URL+"/jobs", Request{ProgramHash: meta.Hash, N: 15, Engine: engine}, &job)
		if code != http.StatusAccepted {
			t.Fatalf("submit by hash (%s): %d", engine, code)
		}
		if job.ProgramHash != meta.Hash {
			t.Fatalf("job status lost the hash: %+v", job)
		}
		st := waitDone(t, srv.URL, job.ID)
		if st.State != StateDone || st.Value == nil || *st.Value != want {
			t.Fatalf("hash job on %s: %+v, want value %d", engine, st, want)
		}
		if st.Violations != "" {
			t.Fatalf("hash job on %s: invariant violations: %s", engine, st.Violations)
		}
	}

	// Bad submissions: unknown hash, and both program selectors at once.
	if code = postJSON(t, srv.URL+"/jobs", Request{ProgramHash: strings.Repeat("0", 64)}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown hash job: %d", code)
	}
	if code = postJSON(t, srv.URL+"/jobs", Request{Program: "fib", ProgramHash: meta.Hash}, nil); code != http.StatusBadRequest {
		t.Fatalf("both selectors: %d", code)
	}
	// Override of a parameter fib does not declare is a client error.
	if code = postJSON(t, srv.URL+"/jobs", Request{ProgramHash: meta.Hash, M: 3}, nil); code != http.StatusBadRequest {
		t.Fatalf("undeclared param override: %d", code)
	}

	// Catalog and lookup endpoints.
	var got ProgramStatus
	if code = getJSON(t, srv.URL+"/programs/"+meta.Hash, &got); code != http.StatusOK || got.Source == "" {
		t.Fatalf("get program: code=%d %+v", code, got)
	}
	if code = getJSON(t, srv.URL+"/programs/"+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Fatalf("get unknown program: %d", code)
	}

	// First-solution DSL: the witness path (packed moves) survives the
	// run and the truncation-tolerant invariant check.
	var fsMeta ProgramStatus
	if code = postJSON(t, srv.URL+"/programs", map[string]string{"name": "first-path", "source": firstSolDSL}, &fsMeta); code != http.StatusCreated {
		t.Fatalf("put first-sol program: %d", code)
	}
	var fsJob JobStatus
	if code = postJSON(t, srv.URL+"/jobs", Request{ProgramHash: fsMeta.Hash, FirstSolution: true}, &fsJob); code != http.StatusAccepted {
		t.Fatalf("submit first-sol: %d", code)
	}
	st := waitDone(t, srv.URL, fsJob.ID)
	if st.State != StateDone || st.Value == nil || *st.Value < 1 {
		t.Fatalf("first-solution DSL job: %+v", st)
	}
	if st.Violations != "" {
		t.Fatalf("first-solution DSL job violations: %s", st.Violations)
	}

	// Metrics: cache populated, hits recorded, no invariant violations.
	var m Metrics
	if code = getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.ProgramsCached != 2 || m.CompileHits < 2 || m.CompileMisses < 2 {
		t.Fatalf("cache metrics: cached=%d hits=%d misses=%d", m.ProgramsCached, m.CompileHits, m.CompileMisses)
	}
	if m.InvariantViolations != 0 || m.InvariantChecked == 0 {
		t.Fatalf("invariants: checked=%d violations=%d", m.InvariantChecked, m.InvariantViolations)
	}

	// Evict and resubmit: delete frees the hash, jobs against it fail,
	// resubmission re-creates the entry under the same identity.
	resp, err := http.NewRequest(http.MethodDelete, srv.URL+"/programs/"+meta.Hash, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(resp)
	if err != nil || dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete program: %v %d", err, dresp.StatusCode)
	}
	dresp.Body.Close()
	if code = postJSON(t, srv.URL+"/jobs", Request{ProgramHash: meta.Hash}, nil); code != http.StatusBadRequest {
		t.Fatalf("job against deleted hash: %d", code)
	}
	var meta3 ProgramStatus
	if code = postJSON(t, srv.URL+"/programs", map[string]string{"name": "fib", "source": lang.FibSrc}, &meta3); code != http.StatusCreated || meta3.Hash != meta.Hash {
		t.Fatalf("resubmit after delete: code=%d hash=%s want %s", code, meta3.Hash, meta.Hash)
	}
}

// TestServeJournalRecovery: a service with a journal completes DSL and
// registry jobs, shuts down, and a second service on the same directory
// serves those results, recovers the program cache, and keeps minting
// fresh job IDs past the recovered ones. Close-and-reopen stands in for
// the crash: for an append-only log the two differ only in the torn
// tail, which the jobstore fuzz covers.
func TestServeJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	js, rec, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", rec.Records)
	}
	s := New(Config{Workers: 2, QueueCapacity: 16, Journal: js, Recovered: rec,
		Options: sched.Options{GrowableDeque: true}})

	meta, created, err := s.PutProgram("fib", lang.FibSrc)
	if err != nil || !created {
		t.Fatalf("PutProgram: created=%v err=%v", created, err)
	}
	dslJob, err := s.Submit(Request{ProgramHash: meta.Hash, N: 12})
	if err != nil {
		t.Fatalf("submit DSL job: %v", err)
	}
	regJob, err := s.Submit(Request{Program: "fib", N: 10})
	if err != nil {
		t.Fatalf("submit registry job: %v", err)
	}
	<-dslJob.Done()
	<-regJob.Done()
	_, dslRes, err := dslJob.Snapshot()
	if err != nil {
		t.Fatalf("DSL job failed: %v", err)
	}
	_, regRes, err := regJob.Snapshot()
	if err != nil || regRes.Value != 55 {
		t.Fatalf("registry job: value=%d err=%v", regRes.Value, err)
	}
	s.Close()
	if err := js.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	// Restart on the same directory.
	js2, rec2, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, QueueCapacity: 16, Journal: js2, Recovered: rec2,
		Options: sched.Options{GrowableDeque: true}})
	t.Cleanup(func() { s2.Close(); js2.Close() })

	for _, tc := range []struct {
		id   string
		want int64
	}{{dslJob.ID, dslRes.Value}, {regJob.ID, regRes.Value}} {
		j, ok := s2.Get(tc.id)
		if !ok {
			t.Fatalf("job %s not recovered", tc.id)
		}
		st, res, err := j.Snapshot()
		if st != StateDone || err != nil || res.Value != tc.want {
			t.Fatalf("recovered %s: state=%s value=%d err=%v, want done/%d", tc.id, st, res.Value, err, tc.want)
		}
	}
	if _, src, ok := s2.GetProgram(meta.Hash); !ok || src == "" {
		t.Fatalf("program %s not recovered", meta.Hash)
	}
	m := s2.Snapshot()
	if m.Recovery == nil || m.Recovery.Terminal != 2 || m.Recovery.Programs != 1 {
		t.Fatalf("recovery stats: %+v", m.Recovery)
	}
	// The recovered cache serves jobs, and new IDs never collide.
	again, err := s2.Submit(Request{ProgramHash: meta.Hash, N: 12})
	if err != nil {
		t.Fatalf("submit on recovered cache: %v", err)
	}
	if again.ID == dslJob.ID || again.ID == regJob.ID {
		t.Fatalf("recycled job ID %s", again.ID)
	}
	<-again.Done()
	if _, res, err := again.Snapshot(); err != nil || res.Value != dslRes.Value {
		t.Fatalf("post-recovery DSL run: value=%d err=%v want %d", res.Value, err, dslRes.Value)
	}
}

// TestServeRecoveryRequeueAndAbort drives the two non-terminal recovery
// paths with a hand-written journal: a submitted-never-started job is
// re-queued (same ID) and runs to completion; a submitted-and-started
// job is settled as failed with ErrAbortedByRestart — and that verdict
// is itself journaled, so a third open recovers it as terminal.
func TestServeRecoveryRequeueAndAbort(t *testing.T) {
	dir := t.TempDir()
	js, _, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	must := func(e error) {
		if e != nil {
			t.Fatal(e)
		}
	}
	must(js.Append(&jobstore.Record{T: jobstore.TSubmit, ID: "j1", Req: json.RawMessage(`{"program":"fib","n":10}`)}))
	must(js.Append(&jobstore.Record{T: jobstore.TSubmit, ID: "j2", Req: json.RawMessage(`{"program":"fib","n":12}`)}))
	must(js.Append(&jobstore.Record{T: jobstore.TStart, ID: "j2"}))
	must(js.Close())

	js2, rec, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, QueueCapacity: 16, Journal: js2, Recovered: rec,
		Options: sched.Options{GrowableDeque: true}})

	j1, ok := s.Get("j1")
	if !ok {
		t.Fatal("j1 not re-queued")
	}
	<-j1.Done()
	if st, res, err := j1.Snapshot(); st != StateDone || err != nil || res.Value != 55 {
		t.Fatalf("re-queued j1: state=%s value=%d err=%v", st, res.Value, err)
	}
	j2, ok := s.Get("j2")
	if !ok {
		t.Fatal("j2 not recovered")
	}
	if st, _, err := j2.Snapshot(); st != StateFailed || err == nil || !strings.Contains(err.Error(), "restart") {
		t.Fatalf("mid-run j2: state=%s err=%v, want failed/aborted-by-restart", st, err)
	}
	m := s.Snapshot()
	if m.Recovery == nil || m.Recovery.Requeued != 1 || m.Recovery.Aborted != 1 {
		t.Fatalf("recovery stats: %+v", m.Recovery)
	}
	// IDs resume past the recovered ones.
	j3, err := s.Submit(Request{Program: "fib", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID == "j1" || j3.ID == "j2" {
		t.Fatalf("recycled ID %s", j3.ID)
	}
	<-j3.Done()
	s.Close()
	must(js2.Close())

	// Third open: the abort verdict was journaled, so j2 is terminal now
	// (no double-abort), and j1's completion is durable.
	js3, rec3, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s3 := New(Config{Workers: 1, QueueCapacity: 4, Journal: js3, Recovered: rec3,
		Options: sched.Options{GrowableDeque: true}})
	t.Cleanup(func() { s3.Close(); js3.Close() })
	m3 := s3.Snapshot()
	if m3.Recovery == nil || m3.Recovery.Terminal != 3 || m3.Recovery.Requeued != 0 || m3.Recovery.Aborted != 0 {
		t.Fatalf("third-open recovery stats: %+v", m3.Recovery)
	}
	j2r, ok := s3.Get("j2")
	if !ok {
		t.Fatal("j2 lost on third open")
	}
	if st, _, err := j2r.Snapshot(); st != StateFailed || err == nil || !strings.Contains(err.Error(), "restart") {
		t.Fatalf("third-open j2: state=%s err=%v", st, err)
	}
}

// TestServeRecoveryUnrecoverableJob: a journaled job whose program cannot
// be rebuilt (its DSL hash is gone) settles as failed, not lost and not
// silently dropped.
func TestServeRecoveryUnrecoverableJob(t *testing.T) {
	dir := t.TempDir()
	js, _, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hash := strings.Repeat("a", 64)
	req := fmt.Sprintf(`{"program_hash":%q,"n":10}`, hash)
	if err := js.Append(&jobstore.Record{T: jobstore.TSubmit, ID: "j1", Req: json.RawMessage(req)}); err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	js2, rec, err := jobstore.Open(dir, jobstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueCapacity: 4, Journal: js2, Recovered: rec,
		Options: sched.Options{GrowableDeque: true}})
	t.Cleanup(func() { s.Close(); js2.Close() })
	j, ok := s.Get("j1")
	if !ok {
		t.Fatal("unrecoverable job dropped without a record")
	}
	if st, _, err := j.Snapshot(); st != StateFailed || err == nil {
		t.Fatalf("unrecoverable job: state=%s err=%v, want failed", st, err)
	}
}
