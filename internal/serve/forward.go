// The cluster-facing half of the service: forward-on-full, queued-job
// extraction for rebalancing and remote steal, and peer-side admission of
// forwarded jobs. The service never talks to the network itself — the
// cluster tier (internal/cluster) installs a ForwardFunc and calls the
// extraction API; everything here is transport-agnostic bookkeeping.
//
// The accounting contract (the "count the 429 exactly once" rule):
//
//   - A client-visible capacity rejection is counted in `rejected` only at
//     the node the client submitted to, and only when the client actually
//     receives the 429 — i.e. after forwarding was unavailable or failed.
//     The Retry-After hint on that 429 is always this node's own, never a
//     peer's relayed hint.
//   - A peer refusing a *forwarded* job counts it in `forward_rejected`
//     only. The originating node requeues (background rebalance) or
//     rejects with its own hint (forward-on-full), so cluster-wide the
//     client's 429 appears exactly once.
package serve

import (
	"context"
	"time"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// Forwarded describes a job successfully placed on a peer.
type Forwarded struct {
	// Node is the peer's advertised identity (URL or name).
	Node string
	// JobID is the job's id on the peer.
	JobID string
	// Wait blocks until the remote job reaches a terminal state and
	// returns its outcome. It must honour ctx: on cancellation it should
	// best-effort cancel the remote job and return ctx's cause.
	Wait func(ctx context.Context) (sched.Result, error)
}

// ForwardFunc places a request on a peer synchronously. A nil error means
// the peer accepted the job; any error means no peer could take it and the
// caller falls back to local handling.
type ForwardFunc func(req Request) (*Forwarded, error)

// forwarderBox keeps atomic.Value's concrete type stable.
type forwarderBox struct{ fn ForwardFunc }

// SetForwarder installs the cluster forward-on-full hook, consulted by
// Submit when the local backlog is full. Safe to call at any time; nil
// restores single-node behaviour.
func (s *Service) SetForwarder(fn ForwardFunc) { s.forwarder.Store(forwarderBox{fn}) }

// LoadScore is the node's cluster load signal: backlog depth (weighted-
// fair queue plus the staged job) plus busy workers. Gossip exchanges it;
// the forward and steal policies compare it across nodes.
func (s *Service) LoadScore() int {
	return int(s.waiting.Load() + s.pool.BusyWorkers())
}

// forwardOrReject handles Submit's capacity miss: try the forwarder, and
// only if that fails surface the client's 429 — counted once, with this
// node's own Retry-After.
func (s *Service) forwardOrReject(it *admItem, ts *tenantState, cls *groupStat) (*Job, error) {
	job := it.job
	if fw, _ := s.forwarder.Load().(forwarderBox); fw.fn != nil {
		if placed, err := fw.fn(job.Req); err == nil {
			if rec := it.spec.Tracer; rec != nil {
				rec.Release() // the peer audits the run; the local recorder never sees it
			}
			return s.adoptForwarded(it, placed, ts, cls)
		}
		s.rejected.Add(1)
		ts.rejected.Add(1)
		rej := &RejectionError{Tenant: job.tenant, Reason: "capacity", RetryAfter: time.Second, cause: wsrt.ErrQueueFull}
		job.cancel(rej)
		return nil, rej
	}
	s.rejected.Add(1)
	ts.rejected.Add(1)
	job.cancel(wsrt.ErrQueueFull)
	return nil, wsrt.ErrQueueFull
}

// adoptForwarded registers a job the forwarder just placed on a peer: the
// record lives here in StateForwarded (the client polls this node), the
// remote watcher settles it when the peer finishes. The job holds no local
// queue slot — that is the point of forwarding — but it does count toward
// the tenant's in-flight quota, which was checked before the capacity miss.
func (s *Service) adoptForwarded(it *admItem, placed *Forwarded, ts *tenantState, cls *groupStat) (*Job, error) {
	job := it.job
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		job.cancel(wsrt.ErrPoolClosed)
		return nil, wsrt.ErrPoolClosed
	}
	job.state = StateForwarded
	job.remoteNode, job.remoteID = placed.Node, placed.JobID
	s.jobs[job.ID] = job
	s.mu.Unlock()

	s.inflight.Add(1)
	ts.inflight.Add(1)
	s.submitted.Add(1)
	ts.submitted.Add(1)
	cls.submitted.Add(1)
	s.forwardedOut.Add(1)
	s.forwardedNow.Add(1)
	s.watchRemote(job, it.spec.Ctx, placed)
	return job, nil
}

// watchRemote follows a forwarded job to its remote terminal state. The
// wait context merges the job's own context with service shutdown, so
// Close never blocks on a peer that stopped answering.
func (s *Service) watchRemote(job *Job, jobCtx context.Context, placed *Forwarded) {
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		wctx, stop := context.WithCancelCause(jobCtx)
		go func() {
			defer s.wg.Done()
			select {
			case <-s.quit:
				stop(wsrt.ErrPoolClosed)
			case <-wctx.Done():
			}
		}()
		res, err := placed.Wait(wctx)
		stop(nil)
		s.finalize(job, nil, res, err)
	}()
}

// RemoteJob is one queued job extracted for forwarding: still owned by
// this node (the client polls here) but out of the weighted-fair queue.
// The extractor must finish it with exactly one of Requeue or Placed.
type RemoteJob struct {
	s  *Service
	it *admItem
}

// ID returns the job's local id.
func (r *RemoteJob) ID() string { return r.it.job.ID }

// Request returns the submission to replay on the peer — still a plain
// JobSpec-shaped request, tenant and priority included, which is what
// makes forwarding a serialize-and-resubmit rather than a migration.
func (r *RemoteJob) Request() Request { return r.it.job.Req }

// Requeue returns the job to the head of its tenant queue (forward failed
// or no peer wanted it). Queue-slot accounting never moved, so this is
// position-only.
func (r *RemoteJob) Requeue() {
	r.s.q.pushFront(r.it)
}

// Placed commits the forward: the peer at node accepted the job as
// remoteID. The local queue slot is released (capacity frees up, the pump
// may wake) and a remote watcher settles the record when the peer is done.
func (r *RemoteJob) Placed(node, remoteID string, wait func(ctx context.Context) (sched.Result, error)) {
	s, job := r.s, r.it.job
	job.mu.Lock()
	job.state = StateForwarded
	job.remoteNode, job.remoteID = node, remoteID
	job.mu.Unlock()
	ts := s.tenant(job.tenant)
	cls := s.classes[job.prio]
	s.waiting.Add(-1)
	ts.queued.Add(-1)
	cls.queued.Add(-1)
	s.forwardedOut.Add(1)
	s.forwardedNow.Add(1)
	if rec := r.it.spec.Tracer; rec != nil {
		rec.Release()
	}
	s.watchRemote(job, r.it.spec.Ctx, &Forwarded{Node: node, JobID: remoteID, Wait: wait})
	s.wakePump()
}

// ExtractQueued removes up to max queued, not-yet-admitted jobs for
// forwarding, in reverse service order (the work that would wait longest
// leaves first). Jobs already cancelled are retired on the spot and do not
// count. Running jobs are never touched — there is no mid-run migration.
func (s *Service) ExtractQueued(max int) []*RemoteJob {
	if max <= 0 {
		return nil
	}
	items := s.q.extractBack(max)
	out := make([]*RemoteJob, 0, len(items))
	for _, it := range items {
		if ctx := it.spec.Ctx; ctx != nil && ctx.Err() != nil {
			s.retireQueued(it, context.Cause(ctx))
			continue
		}
		out = append(out, &RemoteJob{s: s, it: it})
	}
	return out
}

// SubmitForwarded admits a job a peer forwarded here. It runs the same
// validation and capacity bound as Submit but skips the tenant rate limit
// and quota — both were charged at the originating node — and it never
// re-forwards: a full backlog is refused with wsrt.ErrQueueFull, counted
// in forward_rejected (not the client-visible rejected counter; the origin
// owns the client's 429). origin records which peer sent the job.
func (s *Service) SubmitForwarded(req Request, origin string) (*Job, error) {
	it, err := s.buildJob(req)
	if err != nil {
		return nil, err
	}
	job := it.job
	job.origin = origin
	ts := s.tenant(job.tenant)
	cls := s.classes[job.prio]

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		job.cancel(wsrt.ErrPoolClosed)
		return nil, wsrt.ErrPoolClosed
	}
	if s.draining.Load() {
		s.mu.Unlock()
		job.cancel(ErrDraining)
		return nil, ErrDraining
	}
	if s.waiting.Load() >= int64(s.capacity) {
		s.mu.Unlock()
		s.forwardRej.Add(1)
		job.cancel(wsrt.ErrQueueFull)
		return nil, wsrt.ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.waiting.Add(1)
	s.inflight.Add(1)
	ts.inflight.Add(1)
	ts.queued.Add(1)
	cls.queued.Add(1)
	s.mu.Unlock()

	s.submitted.Add(1)
	ts.submitted.Add(1)
	cls.submitted.Add(1)
	s.forwardedIn.Add(1)
	s.journalSubmit(job)
	s.q.push(it)
	return job, nil
}
