// Package serve is the resident job service: the layer between the
// long-lived scheduler pool (internal/wsrt.Pool) and the HTTP front end
// (cmd/adaptivetc-serve). It owns job identity and lifecycle (queued →
// running → done/failed/cancelled), per-job cancellation and deadlines,
// service metrics (throughput, latency percentiles, rejections), and — in
// check mode — a per-job trace recorder whose invariant verdict is folded
// into the metrics, so a serving deployment continuously audits the
// scheduler it runs on.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted, waiting for the pool.
	StateQueued State = "queued"
	// StateRunning: executing on the pool workers.
	StateRunning State = "running"
	// StateDone: completed with a value.
	StateDone State = "done"
	// StateFailed: aborted with an error (overflow, panic, pool shutdown).
	StateFailed State = "failed"
	// StateCancelled: cancelled by the submitter or its deadline.
	StateCancelled State = "cancelled"
)

// Request describes one job submission.
type Request struct {
	// Program is a problems/registry name.
	Program string `json:"program"`
	// N and Size are the registry size parameters (zero → family default).
	N    int   `json:"n,omitempty"`
	Size int64 `json:"size,omitempty"`
	// Reverse mirrors a synthetic tree.
	Reverse bool `json:"reverse,omitempty"`
	// Engine is a pool-capable engine name ("adaptivetc", "cilk",
	// "cilk-synched", "cutoff-programmer", "cutoff-library", "helpfirst",
	// "slaw"). Empty means "adaptivetc".
	Engine string `json:"engine,omitempty"`
	// TimeoutMS is the job deadline in milliseconds; zero means none.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// StealPolicy overrides the pool's victim-selection/steal-amount
	// strategy for this job ("random", "steal-half", "richest-first",
	// "shard-local"). Empty means the service-wide default
	// (Config.Options.StealPolicy, itself defaulting to "random").
	StealPolicy string `json:"steal_policy,omitempty"`
}

// Job is one submission's record.
type Job struct {
	ID      string
	Req     Request
	Created time.Time

	cancel context.CancelCauseFunc
	handle *wsrt.JobHandle
	done   chan struct{}

	mu         sync.Mutex
	state      State
	res        sched.Result
	err        error
	violations error // invariant verdict from check mode, nil if clean
}

// Done is closed when the job has reached a terminal state and its record
// (state, result, metrics, invariant verdict) is final.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current state and, once terminal, its outcome.
func (j *Job) Snapshot() (State, sched.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.res, j.err
}

// Violations returns the invariant-checker verdict (check mode only; nil
// when clean, not checked, or not yet terminal).
func (j *Job) Violations() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.violations
}

// Cancel requests cooperative cancellation of the job.
func (j *Job) Cancel(cause error) { j.cancel(cause) }

// ErrCancelled is the cause recorded when a job is cancelled through the
// service (DELETE /jobs/{id}) rather than by its own deadline.
var ErrCancelled = errors.New("serve: job cancelled by request")

// Config configures a Service.
type Config struct {
	// Workers is the pool size; zero means 1.
	Workers int
	// QueueCapacity bounds the admission queue; zero means 64.
	QueueCapacity int
	// MaxConcurrentJobs is the number of jobs the pool runs at once, each
	// on its own disjoint worker shard; zero or one means the single-job
	// pool. See wsrt.PoolConfig.
	MaxConcurrentJobs int
	// ShardPolicy sizes shards: "static" (equal-width, the default) or
	// "adaptive" (grow when idle, split when jobs are waiting).
	ShardPolicy string
	// Options supplies pool-wide scheduling parameters (costs, deque
	// capacity, seed). Platform/Ctx/Tracer are per-job or pool-fixed and
	// ignored here.
	Options sched.Options
	// Check attaches a trace recorder to every job and verifies the
	// scheduler invariants on completion (Check for completed jobs,
	// CheckTruncated for cancelled/failed ones). Costs memory and time per
	// job; meant for smoke tests and canary deployments.
	Check bool
	// RetainJobs bounds how many terminal job records are kept for
	// GET /jobs/{id}; zero means 1024. Oldest terminal records are evicted
	// first; live jobs are never evicted.
	RetainJobs int
	// AdmissionRetries bounds the in-process retries Submit makes when the
	// pool reports a full admission queue, before surfacing ErrQueueFull to
	// the caller (HTTP 429). Transient saturation — a burst draining within
	// a millisecond — is thereby absorbed without weakening backpressure:
	// the final rejection still counts once and still tells the client to
	// back off. Zero means 2; negative disables retrying.
	AdmissionRetries int
	// AdmissionBackoff is the sleep before the first admission retry,
	// doubling per attempt. Zero means 500µs.
	AdmissionBackoff time.Duration
	// Faults, when non-nil, threads the fault plan through the service:
	// pool-level admission/shard faults plus per-job worker and deque
	// faults. Chaos soaks use it; production leaves it nil (free).
	Faults *faults.Plan
}

// latencyRing keeps the last N job latencies for percentile estimates.
type latencyRing struct {
	mu   sync.Mutex
	buf  []int64
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]int64, n)} }

func (l *latencyRing) add(d int64) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// percentiles returns the p50 and p99 of the retained window (0, 0 when
// empty).
func (l *latencyRing) percentiles() (p50, p99 int64) {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	s := make([]int64, n)
	copy(s, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := func(p float64) int64 {
		i := int(p * float64(n-1))
		return s[i]
	}
	return idx(0.50), idx(0.99)
}

// Metrics is the service counter snapshot returned by GET /metrics.
type Metrics struct {
	Started             time.Time `json:"started"`
	UptimeSeconds       float64   `json:"uptime_seconds"`
	Workers             int       `json:"workers"`
	MaxConcurrentJobs   int       `json:"max_concurrent_jobs"`
	ShardPolicy         string    `json:"shard_policy"`
	RunningJobs         int64     `json:"running_jobs"`
	BusyWorkers         int64     `json:"busy_workers"`
	WorkerOccupancy     float64   `json:"worker_occupancy"`
	QueueCapacity       int       `json:"queue_capacity"`
	QueueDepth          int       `json:"queue_depth"`
	InFlight            int64     `json:"in_flight"`
	Submitted           int64     `json:"submitted"`
	Completed           int64     `json:"completed"`
	Failed              int64     `json:"failed"`
	Cancelled           int64     `json:"cancelled"`
	Rejected            int64     `json:"rejected"`
	AdmissionRetries    int64     `json:"admission_retries"`
	QuarantinedJobs     int64     `json:"quarantined_jobs"`
	ThroughputPerSecond float64   `json:"throughput_per_second"`
	P50LatencyMS        float64   `json:"p50_latency_ms"`
	P99LatencyMS        float64   `json:"p99_latency_ms"`
	InvariantChecked    int64     `json:"invariant_checked"`
	InvariantViolations int64     `json:"invariant_violations"`
}

// Service is the resident job service.
type Service struct {
	cfg  Config
	pool *wsrt.Pool

	started time.Time
	nextID  atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // terminal job ids in completion order, for eviction
	closed bool

	submitted  atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
	cancelled  atomic.Int64
	rejected   atomic.Int64
	retried    atomic.Int64
	checked    atomic.Int64
	violations atomic.Int64
	latencies  *latencyRing

	wg sync.WaitGroup // job watcher goroutines
}

// New builds the service and starts its pool.
func New(cfg Config) *Service {
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	return &Service{
		cfg: cfg,
		pool: wsrt.NewPool(wsrt.PoolConfig{
			Workers:           cfg.Workers,
			QueueCapacity:     cfg.QueueCapacity,
			MaxConcurrentJobs: cfg.MaxConcurrentJobs,
			ShardPolicy:       wsrt.ShardPolicy(cfg.ShardPolicy),
			Options:           cfg.Options,
			Faults:            cfg.Faults,
		}),
		started:   time.Now(),
		jobs:      make(map[string]*Job),
		latencies: newLatencyRing(4096),
	}
}

// Pool exposes the underlying pool (tests).
func (s *Service) Pool() *wsrt.Pool { return s.pool }

// resolveEngine maps an engine name to its pool-capable implementation.
// Tascell and the serial reference are deliberately absent: their runtimes
// are not built on the wsrt pool (Tascell's workers own their victims'
// stacks; serial has no workers), so a resident pool cannot host them.
var poolEngines = map[string]func() wsrt.PoolEngine{}

// RegisterEngine adds a pool-capable engine constructor under name. The
// seven wsrt engines register themselves via internal/serve/engines.go;
// the hook is exported for tests injecting instrumented engines.
func RegisterEngine(name string, mk func() wsrt.PoolEngine) { poolEngines[name] = mk }

// EngineNames lists the registered pool-capable engine names, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(poolEngines))
	for n := range poolEngines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Submit validates req, builds its program, and enqueues it on the pool.
// A full queue returns wsrt.ErrQueueFull (HTTP 429 upstream).
func (s *Service) Submit(req Request) (*Job, error) {
	prog, err := registry.Build(req.Program, registry.Params{N: req.N, Size: req.Size, Reverse: req.Reverse})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	engName := req.Engine
	if engName == "" {
		engName = "adaptivetc"
	}
	mk, ok := poolEngines[engName]
	if !ok {
		return nil, fmt.Errorf("serve: engine %q is not pool-capable (have %v)", engName, EngineNames())
	}
	if !wsrt.ValidStealPolicy(req.StealPolicy) {
		return nil, fmt.Errorf("serve: unknown steal policy %q (have %v)", req.StealPolicy, wsrt.StealPolicyNames())
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	if req.TimeoutMS > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeoutCause(ctx, time.Duration(req.TimeoutMS)*time.Millisecond,
			fmt.Errorf("serve: job exceeded its %dms deadline: %w", req.TimeoutMS, context.DeadlineExceeded))
		// Chain the timer's release into the job cancel func; the watcher
		// calls it when the job ends, whatever the outcome.
		orig := cancel
		cancel = func(cause error) { orig(cause); cancelTimeout() }
	}

	job := &Job{
		ID:      "j" + strconv.FormatInt(s.nextID.Add(1), 10),
		Req:     req,
		Created: time.Now(),
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
	}
	var rec *trace.Recorder
	if s.cfg.Check {
		rec = trace.NewRecorder()
	}

	spec := wsrt.JobSpec{
		Prog:        prog,
		Engine:      mk(),
		Ctx:         ctx,
		Tracer:      rec,
		Faults:      s.cfg.Faults,
		StealPolicy: req.StealPolicy,
	}
	retries := s.cfg.AdmissionRetries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	backoff := s.cfg.AdmissionBackoff
	if backoff <= 0 {
		backoff = 500 * time.Microsecond
	}
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel(wsrt.ErrPoolClosed)
			return nil, wsrt.ErrPoolClosed
		}
		h, err := s.pool.Submit(spec)
		if err == nil {
			job.handle = h
			s.jobs[job.ID] = job
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		if !errors.Is(err, wsrt.ErrQueueFull) || attempt >= retries {
			cancel(err)
			if errors.Is(err, wsrt.ErrQueueFull) {
				s.rejected.Add(1)
			}
			return nil, err
		}
		// Transient saturation: back off briefly (outside the service lock,
		// so concurrent submissions proceed) and retry. The final rejection
		// above counts once, keeping 429 semantics intact.
		s.retried.Add(1)
		time.Sleep(backoff << attempt)
	}

	s.submitted.Add(1)
	s.wg.Add(1)
	go s.watch(job, rec)
	return job, nil
}

// Get returns the job record for id.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels the job with the given id.
func (s *Service) Cancel(id string) (*Job, bool) {
	j, ok := s.Get(id)
	if !ok {
		return nil, false
	}
	j.Cancel(ErrCancelled)
	return j, true
}

// watch follows one job to its terminal state, folding the outcome into
// the service metrics and, in check mode, running the invariant checker.
func (s *Service) watch(job *Job, rec *trace.Recorder) {
	defer s.wg.Done()
	go func() {
		// Mark running as soon as the pool picks the job up. The goroutine
		// exits with the watcher: Started is closed by the pool on job
		// start, and a job drained by Close never starts but does finish.
		select {
		case <-job.handle.Started():
			job.mu.Lock()
			if job.state == StateQueued {
				job.state = StateRunning
			}
			job.mu.Unlock()
		case <-job.handle.Done():
		}
	}()
	res, err := job.handle.Result()
	job.cancel(nil) // release the context watcher and any deadline timer

	state := StateDone
	switch {
	case err == nil:
		s.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrCancelled):
		state = StateCancelled
		s.cancelled.Add(1)
	default:
		state = StateFailed
		s.failed.Add(1)
	}
	// Latency accounting by outcome. Completed jobs record the full
	// submit-to-done latency — queue wait is part of what their clients
	// experienced. Aborted or failed jobs record only the time they actually
	// held workers: a job cancelled after sitting in the queue for a second
	// did one second of *waiting*, not one second of *serving*, and letting
	// that wait into the ring would inflate p99 every time load shedding
	// kicks in — precisely when honest latency numbers matter most. Jobs
	// that never started (cancelled while queued, drained by Close) held no
	// workers and contribute nothing.
	switch {
	case err == nil:
		s.latencies.add(time.Since(job.Created).Nanoseconds())
	case res.Makespan > 0:
		s.latencies.add(res.Makespan)
	}

	var viol error
	if rec != nil {
		// A relaxed-deque pool is audited under bounded multiplicity: the
		// lock-reduced owner path is allowed (by construction, never
		// observed) to hand an entry to up to 2 consumers, so the strict
		// exactly-once ceilings would mislabel it.
		k := 1
		if s.cfg.Options.RelaxedDeque {
			k = 2
		}
		if state == StateDone {
			// No external oracle at serve time: the run's value stands in
			// for it, so this checks internal consistency (conservation,
			// deposit accounting, completion uniqueness), not correctness
			// against a serial run.
			viol = rec.CheckMultiplicity(res.Value, res.Value, k)
		} else {
			viol = rec.CheckTruncatedMultiplicity(k)
		}
		s.checked.Add(1)
		if viol != nil {
			s.violations.Add(1)
		}
		rec.Release()
	}

	job.mu.Lock()
	job.state, job.res, job.err, job.violations = state, res, err, viol
	job.mu.Unlock()
	close(job.done)
	s.retire(job.ID)
}

// retire records id as terminal and evicts the oldest terminal records
// beyond the retention bound.
func (s *Service) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.RetainJobs {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.jobs, evict)
	}
}

// Snapshot returns the current service metrics.
func (s *Service) Snapshot() Metrics {
	up := time.Since(s.started)
	p50, p99 := s.latencies.percentiles()
	completed := s.completed.Load()
	m := Metrics{
		Started:             s.started,
		UptimeSeconds:       up.Seconds(),
		Workers:             s.pool.Workers(),
		MaxConcurrentJobs:   s.pool.MaxConcurrentJobs(),
		ShardPolicy:         string(s.pool.ShardPolicy()),
		RunningJobs:         s.pool.RunningJobs(),
		BusyWorkers:         s.pool.BusyWorkers(),
		QueueCapacity:       s.pool.QueueCapacity(),
		QueueDepth:          s.pool.QueueDepth(),
		InFlight:            s.pool.InFlight(),
		Submitted:           s.submitted.Load(),
		Completed:           completed,
		Failed:              s.failed.Load(),
		Cancelled:           s.cancelled.Load(),
		Rejected:            s.rejected.Load(),
		AdmissionRetries:    s.retried.Load(),
		QuarantinedJobs:     s.pool.Quarantined(),
		P50LatencyMS:        float64(p50) / 1e6,
		P99LatencyMS:        float64(p99) / 1e6,
		InvariantChecked:    s.checked.Load(),
		InvariantViolations: s.violations.Load(),
	}
	if up > 0 {
		m.ThroughputPerSecond = float64(completed) / up.Seconds()
	}
	if m.Workers > 0 {
		m.WorkerOccupancy = float64(m.BusyWorkers) / float64(m.Workers)
	}
	return m
}

// Close shuts the service down: in-flight work finishes or is drained by
// the pool, every watcher completes, and further submissions fail.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.pool.Close()
	s.wg.Wait()
}
