// Package serve is the resident job service: the layer between the
// long-lived scheduler pool (internal/wsrt.Pool) and the HTTP front end
// (cmd/adaptivetc-serve). It owns job identity and lifecycle (queued →
// running → done/failed/cancelled), multi-tenant QoS admission (priority
// classes under weighted-fair queueing, per-tenant quotas and rate
// limits), per-job cancellation and deadlines, service metrics
// (throughput, latency percentiles and histograms, per-tenant /
// per-priority / per-engine breakdowns, rejections), graceful drain, and
// — in check mode — a per-job trace recorder whose invariant verdict is
// folded into the metrics, so a serving deployment continuously audits
// the scheduler it runs on.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetc/internal/faults"
	"adaptivetc/internal/jobstore"
	"adaptivetc/internal/progstore"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted, waiting for the pool.
	StateQueued State = "queued"
	// StateRunning: executing on the pool workers.
	StateRunning State = "running"
	// StateDone: completed with a value.
	StateDone State = "done"
	// StateFailed: aborted with an error (overflow, panic, pool shutdown).
	StateFailed State = "failed"
	// StateCancelled: cancelled by the submitter or its deadline.
	StateCancelled State = "cancelled"
	// StateForwarded: handed to a cluster peer; this node tracks the remote
	// outcome and the record settles here when the peer finishes it.
	StateForwarded State = "forwarded"
)

// Request describes one job submission.
type Request struct {
	// Program is a problems/registry name. Exactly one of Program and
	// ProgramHash must be set.
	Program string `json:"program"`
	// ProgramHash runs a DSL program previously registered via
	// POST /programs, by its content hash. Engine, steal-policy, priority,
	// tenant and timeout knobs apply exactly as for registry programs; N
	// and M override the program's "n" and "m" parameters when nonzero.
	ProgramHash string `json:"program_hash,omitempty"`
	// FirstSolution runs a ProgramHash job in first-solution mode (the
	// run stops at the first terminal witness). Registry programs carry
	// this property in the registry and ignore the field.
	FirstSolution bool `json:"first_solution,omitempty"`
	// N, M and Size are the registry size parameters (zero → family
	// default). M is the secondary knob of two-knob families (DAG width,
	// knapsack capacity, SAT clause count).
	N    int   `json:"n,omitempty"`
	M    int   `json:"m,omitempty"`
	Size int64 `json:"size,omitempty"`
	// Reverse mirrors a synthetic tree.
	Reverse bool `json:"reverse,omitempty"`
	// Engine is a pool-capable engine name ("adaptivetc", "cilk",
	// "cilk-synched", "cutoff-programmer", "cutoff-library", "helpfirst",
	// "slaw"). Empty means "adaptivetc".
	Engine string `json:"engine,omitempty"`
	// Tenant identifies the submitter for quotas, rate limits and fair
	// sharing. Empty means DefaultTenant. The HTTP front end also accepts
	// it as an X-Tenant header.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the QoS class: "interactive", "batch" (the default) or
	// "background". Classes share the admission queue weighted-fair.
	Priority string `json:"priority,omitempty"`
	// TimeoutMS is the job deadline in milliseconds; zero means none.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// StealPolicy overrides the pool's victim-selection/steal-amount
	// strategy for this job ("random", "steal-half", "richest-first",
	// "shard-local"). Empty means the service-wide default
	// (Config.Options.StealPolicy, itself defaulting to "random").
	StealPolicy string `json:"steal_policy,omitempty"`
}

// Job is one submission's record.
type Job struct {
	ID      string
	Req     Request
	Created time.Time

	tenant string
	prio   Priority

	cancel context.CancelCauseFunc
	handle *wsrt.JobHandle // set by the pump once the pool accepts the job
	done   chan struct{}

	origin   string // peer node that forwarded the job here, if any
	firstSol bool   // resolved first-solution mode (registry or request)

	mu         sync.Mutex
	state      State
	res        sched.Result
	err        error
	violations error // invariant verdict from check mode, nil if clean
	remoteNode string // peer the job was forwarded to, if any
	remoteID   string // the job's id on that peer
}

// Done is closed when the job has reached a terminal state and its record
// (state, result, metrics, invariant verdict) is final.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot returns the job's current state and, once terminal, its outcome.
func (j *Job) Snapshot() (State, sched.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.res, j.err
}

// Violations returns the invariant-checker verdict (check mode only; nil
// when clean, not checked, or not yet terminal).
func (j *Job) Violations() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.violations
}

// Tenant returns the tenant the job was attributed to.
func (j *Job) Tenant() string { return j.tenant }

// Priority returns the job's QoS class.
func (j *Job) Priority() Priority { return j.prio }

// Cancel requests cooperative cancellation of the job.
func (j *Job) Cancel(cause error) { j.cancel(cause) }

// ErrCancelled is the cause recorded when a job is cancelled through the
// service (DELETE /jobs/{id}) rather than by its own deadline.
var ErrCancelled = errors.New("serve: job cancelled by request")

// Config configures a Service.
type Config struct {
	// Workers is the pool size; zero means 1.
	Workers int
	// QueueCapacity bounds the admission backlog — jobs accepted but not
	// yet running, across the weighted-fair queue and the pool staging
	// slot; zero means 64. A full backlog rejects with wsrt.ErrQueueFull
	// (HTTP 429).
	QueueCapacity int
	// MaxConcurrentJobs is the number of jobs the pool runs at once, each
	// on its own disjoint worker shard; zero or one means the single-job
	// pool. See wsrt.PoolConfig.
	MaxConcurrentJobs int
	// ShardPolicy sizes shards: "static" (equal-width, the default),
	// "adaptive" (grow when idle, split when jobs are waiting), or "slo"
	// (adaptive, but collapse to the widest shard while the interactive
	// class's live p99 exceeds SLOTargetMS).
	ShardPolicy string
	// SLOTargetMS is the interactive-class p99 target driving the "slo"
	// shard policy; zero means 50ms. Ignored by the other policies.
	SLOTargetMS float64
	// TenantDefaults bounds tenants that have no entry in Tenants. The
	// zero value is unlimited.
	TenantDefaults TenantLimits
	// Tenants overrides TenantDefaults per tenant name.
	Tenants map[string]TenantLimits
	// Options supplies pool-wide scheduling parameters (costs, deque
	// capacity, seed). Platform/Ctx/Tracer are per-job or pool-fixed and
	// ignored here.
	Options sched.Options
	// Check attaches a trace recorder to every job and verifies the
	// scheduler invariants on completion (Check for completed jobs,
	// CheckTruncated for cancelled/failed ones). Costs memory and time per
	// job; meant for smoke tests and canary deployments.
	Check bool
	// RetainJobs bounds how many terminal job records are kept for
	// GET /jobs/{id}; zero means 1024. Oldest terminal records are evicted
	// first; live jobs are never evicted.
	RetainJobs int
	// AdmissionBackoff is the pump's initial sleep when the pool's staging
	// queue is full (or fault injection pretends it is), doubling per
	// consecutive refusal up to a 100ms cap. Zero means 500µs. The pump
	// retries until the job is cancelled or the service closes — a full
	// staging slot is flow control, not rejection; rejection happens at
	// the QueueCapacity bound in Submit.
	AdmissionBackoff time.Duration
	// Faults, when non-nil, threads the fault plan through the service:
	// pool-level admission/shard faults plus per-job worker and deque
	// faults. Chaos soaks use it; production leaves it nil (free).
	Faults *faults.Plan
	// Journal, when non-nil, persists job submissions, state transitions,
	// results and DSL program registrations to the append-only store, so a
	// restart on the same directory recovers them. The service owns
	// appends; the caller owns Open/Close.
	Journal *jobstore.Store
	// Recovered is the state Journal's Open reconstructed; New materializes
	// it (terminal results served, never-started jobs re-queued, mid-run
	// jobs marked aborted-by-restart, DSL programs re-compiled) before the
	// admission pump starts.
	Recovered *jobstore.Recovery
	// ProgramCache bounds the DSL compile cache (POST /programs). Zero
	// values take the progstore defaults.
	ProgramCache progstore.Config
}

// Service is the resident job service.
type Service struct {
	cfg      Config
	pool     *wsrt.Pool
	capacity int

	started time.Time
	nextID  atomic.Int64

	q    *wfq
	quit chan struct{} // closed by Close; wakes the pump's backoff sleep
	wake chan struct{} // capacity 1; nudges the pump when pool space frees

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // terminal job ids in completion order, for eviction
	closed bool

	draining atomic.Bool
	waiting  atomic.Int64 // accepted, not yet running (WFQ + staged)
	inflight atomic.Int64 // accepted, not yet terminal

	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	rejected    atomic.Int64
	rateLimited atomic.Int64
	quotaRej    atomic.Int64
	retried     atomic.Int64
	checked     atomic.Int64
	violations  atomic.Int64
	latencies   *latencyRing
	hist        *histogram

	programs *progstore.Store // DSL compile cache (programs-as-data)
	journal  *jobstore.Store  // nil when not persisting

	recoveredTerminal atomic.Int64 // jobs restored with their journaled result
	recoveredRequeued atomic.Int64 // jobs re-queued because they never started
	recoveredAborted  atomic.Int64 // mid-run jobs marked aborted-by-restart
	recoveredPrograms atomic.Int64 // DSL programs re-compiled from the journal

	forwarder    atomic.Value // forwarderBox: cluster forward-on-full hook
	forwardedOut atomic.Int64 // jobs this node placed on peers
	forwardedIn  atomic.Int64 // jobs accepted from peers
	forwardRej   atomic.Int64 // peer submissions refused for capacity
	forwardedNow atomic.Int64 // gauge: forwarded, peer outcome pending

	tenantsMu sync.Mutex
	tenants   map[string]*tenantState
	classes   map[Priority]*groupStat // fixed key set, built in New
	enginesMu sync.Mutex
	engines   map[string]*groupStat

	wg sync.WaitGroup // pump + job watcher goroutines (start markers included)
}

// New builds the service and starts its pool and admission pump.
func New(cfg Config) *Service {
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	capacity := cfg.QueueCapacity
	if capacity <= 0 {
		capacity = 64
	}
	s := &Service{
		cfg:      cfg,
		capacity: capacity,
		pool: wsrt.NewPool(wsrt.PoolConfig{
			Workers: cfg.Workers,
			// One staging slot: every job that is not literally next waits
			// in the weighted-fair queue, where priority still matters.
			QueueCapacity:     1,
			MaxConcurrentJobs: cfg.MaxConcurrentJobs,
			ShardPolicy:       wsrt.ShardPolicy(cfg.ShardPolicy),
			Options:           cfg.Options,
			Faults:            cfg.Faults,
		}),
		started:   time.Now(),
		q:         newWFQ(),
		quit:      make(chan struct{}),
		wake:      make(chan struct{}, 1),
		jobs:      make(map[string]*Job),
		latencies: newLatencyRing(4096),
		hist:      newHistogram(),
		tenants:   make(map[string]*tenantState),
		classes:   make(map[Priority]*groupStat, len(priorityOrder)),
		engines:   make(map[string]*groupStat),
	}
	for _, p := range priorityOrder {
		s.classes[p] = newGroupStat()
	}
	s.programs = progstore.New(cfg.ProgramCache)
	s.journal = cfg.Journal
	// The demand the pool's adaptive/SLO shard policies see must include
	// the backlog held here, since only one job at a time is staged into
	// the pool's own queue.
	s.pool.SetExternalQueueDepth(func() int { return int(s.waiting.Load()) })
	s.pool.SetShardAdvisor(s.adviseShard)
	// Materialize recovered journal state before the pump starts, so
	// re-queued jobs are first in line and terminal records answer GETs
	// from the first request on.
	s.recover(cfg.Recovered)
	s.wg.Add(1)
	go s.pump()
	return s
}

// Pool exposes the underlying pool (tests).
func (s *Service) Pool() *wsrt.Pool { return s.pool }

// adviseShard is the "slo" shard policy: while the interactive class's
// live p99 exceeds the target, collapse to one claim — the widest shard
// the allocator can form, draining each job fastest — and otherwise fall
// back to the adaptive split (one claim per waiting job).
func (s *Service) adviseShard(waiting, slots, free int) int {
	target := s.cfg.SLOTargetMS
	if target <= 0 {
		target = 50
	}
	_, p99 := s.classes[PriorityInteractive].lat.percentiles()
	if float64(p99)/1e6 > target {
		return 1
	}
	return waiting + 1
}

// resolveEngine maps an engine name to its pool-capable implementation.
// Tascell and the serial reference are deliberately absent: their runtimes
// are not built on the wsrt pool (Tascell's workers own their victims'
// stacks; serial has no workers), so a resident pool cannot host them.
var poolEngines = map[string]func() wsrt.PoolEngine{}

// RegisterEngine adds a pool-capable engine constructor under name. The
// seven wsrt engines register themselves via internal/serve/engines.go;
// the hook is exported for tests injecting instrumented engines.
func RegisterEngine(name string, mk func() wsrt.PoolEngine) { poolEngines[name] = mk }

// EngineNames lists the registered pool-capable engine names, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(poolEngines))
	for n := range poolEngines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// tenant returns (creating if needed) the named tenant's state.
func (s *Service) tenant(name string) *tenantState {
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	ts := s.tenants[name]
	if ts == nil {
		lim := s.cfg.TenantDefaults
		if o, ok := s.cfg.Tenants[name]; ok {
			lim = o
		}
		ts = newTenantState(lim)
		s.tenants[name] = ts
	}
	return ts
}

// buildJob validates req, builds its program and engine, and constructs
// the job record, its cancellation context and its admission item —
// everything Submit and SubmitForwarded share before their admission
// checks diverge.
func (s *Service) buildJob(req Request) (*admItem, error) {
	var prog sched.Program
	var firstSol bool
	switch {
	case req.Program != "" && req.ProgramHash != "":
		return nil, fmt.Errorf("serve: request sets both program %q and program_hash %q; use one", req.Program, req.ProgramHash)
	case req.ProgramHash != "":
		// A cached DSL program, addressed by content hash. N and M map to
		// the conventional "n" and "m" parameters; overriding a parameter
		// the program does not declare is an error, like any bad request.
		var err error
		prog, err = s.programs.Program(req.ProgramHash, dslOverrides(req))
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		firstSol = req.FirstSolution
	default:
		var err error
		prog, err = registry.Build(req.Program, registry.Params{N: req.N, M: req.M, Size: req.Size, Reverse: req.Reverse})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		firstSol = registry.FirstSolution(req.Program)
	}
	engName := req.Engine
	if engName == "" {
		engName = "adaptivetc"
	}
	mk, ok := poolEngines[engName]
	if !ok {
		return nil, fmt.Errorf("serve: engine %q is not pool-capable (have %v)", engName, EngineNames())
	}
	if !wsrt.ValidStealPolicy(req.StealPolicy) {
		return nil, fmt.Errorf("serve: unknown steal policy %q (have %v)", req.StealPolicy, wsrt.StealPolicyNames())
	}
	prio, err := ParsePriority(req.Priority)
	if err != nil {
		return nil, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}

	ctx, cancel := context.WithCancelCause(context.Background())
	if req.TimeoutMS > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeoutCause(ctx, time.Duration(req.TimeoutMS)*time.Millisecond,
			fmt.Errorf("serve: job exceeded its %dms deadline: %w", req.TimeoutMS, context.DeadlineExceeded))
		// Chain the timer's release into the job cancel func; finalize
		// calls it when the job ends, whatever the outcome.
		orig := cancel
		cancel = func(cause error) { orig(cause); cancelTimeout() }
	}

	job := &Job{
		ID:       "j" + strconv.FormatInt(s.nextID.Add(1), 10),
		Req:      req,
		Created:  time.Now(),
		tenant:   tenant,
		prio:     prio,
		firstSol: firstSol,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
	}
	var rec *trace.Recorder
	if s.cfg.Check {
		rec = trace.NewRecorder()
	}
	return &admItem{
		job: job,
		spec: wsrt.JobSpec{
			Prog:          prog,
			Engine:        mk(),
			Ctx:           ctx,
			Tracer:        rec,
			Faults:        s.cfg.Faults,
			StealPolicy:   req.StealPolicy,
			FirstSolution: firstSol,
		},
	}, nil
}

// dslOverrides maps the request's registry-shaped size knobs onto DSL
// parameter overrides: N → "n", M → "m", zero meaning "program default".
func dslOverrides(req Request) map[string]int64 {
	var ov map[string]int64
	if req.N > 0 {
		ov = map[string]int64{"n": int64(req.N)}
	}
	if req.M > 0 {
		if ov == nil {
			ov = map[string]int64{}
		}
		ov["m"] = int64(req.M)
	}
	return ov
}

// Submit validates req, builds its program, runs the tenant's admission
// checks, and enqueues the job on the weighted-fair queue. Rejections:
// *RejectionError for a tenant rate limit or quota (HTTP 429 with a
// per-tenant Retry-After), wsrt.ErrQueueFull for a full backlog (HTTP
// 429), ErrDraining during drain (HTTP 503), wsrt.ErrPoolClosed after
// Close. In cluster mode a full backlog first tries the installed
// forwarder (see SetForwarder); only if no peer takes the job does the
// client see the 429 — counted once, here, with this node's Retry-After.
func (s *Service) Submit(req Request) (*Job, error) {
	it, err := s.buildJob(req)
	if err != nil {
		return nil, err
	}
	job := it.job
	ts := s.tenant(job.tenant)
	cls := s.classes[job.prio]

	// Admission checks and the enqueue are one critical section, so the
	// capacity and quota bounds cannot be overshot by concurrent submits.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		job.cancel(wsrt.ErrPoolClosed)
		return nil, wsrt.ErrPoolClosed
	}
	if s.draining.Load() {
		s.mu.Unlock()
		job.cancel(ErrDraining)
		return nil, ErrDraining
	}
	if q := ts.limits.MaxInFlight; q > 0 && ts.inflight.Load() >= int64(q) {
		s.mu.Unlock()
		rej := &RejectionError{Tenant: job.tenant, Reason: "quota", RetryAfter: time.Second}
		s.quotaRej.Add(1)
		ts.quotaRejected.Add(1)
		job.cancel(rej)
		return nil, rej
	}
	if ok, retryAfter := ts.bucket.take(time.Now()); !ok {
		s.mu.Unlock()
		rej := &RejectionError{Tenant: job.tenant, Reason: "rate-limit", RetryAfter: retryAfter}
		s.rateLimited.Add(1)
		ts.rateLimited.Add(1)
		job.cancel(rej)
		return nil, rej
	}
	if s.waiting.Load() >= int64(s.capacity) {
		s.mu.Unlock()
		// Outside the lock: the forwarder does network I/O.
		return s.forwardOrReject(it, ts, cls)
	}
	s.jobs[job.ID] = job
	s.waiting.Add(1)
	s.inflight.Add(1)
	ts.inflight.Add(1)
	ts.queued.Add(1)
	cls.queued.Add(1)
	s.mu.Unlock()

	s.submitted.Add(1)
	ts.submitted.Add(1)
	cls.submitted.Add(1)
	s.journalSubmit(job)
	s.q.push(it)
	return job, nil
}

// Get returns the job record for id.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels the job with the given id.
func (s *Service) Cancel(id string) (*Job, bool) {
	j, ok := s.Get(id)
	if !ok {
		return nil, false
	}
	j.Cancel(ErrCancelled)
	return j, true
}

// pump is the admission pump: the single consumer of the weighted-fair
// queue. It stages jobs into the pool one at a time; a full staging slot
// puts the job back at the head of its tenant queue and backs off, so a
// higher-priority arrival can overtake while the pump waits.
func (s *Service) pump() {
	defer s.wg.Done()
	attempt := 0
	for {
		it, ok := s.q.pop()
		if !ok {
			return
		}
		job := it.job
		if ctx := it.spec.Ctx; ctx != nil && ctx.Err() != nil {
			// Cancelled while queued: never reaches the pool.
			s.retireQueued(it, context.Cause(ctx))
			attempt = 0
			continue
		}
		if s.isClosed() {
			s.retireQueued(it, wsrt.ErrPoolClosed)
			continue
		}
		h, err := s.pool.Submit(it.spec)
		switch {
		case err == nil:
			attempt = 0
			job.handle = h
			// Two slots: the watcher and its start marker. The pump holds
			// its own slot while adding, so the counter cannot be at zero
			// concurrently with Close's Wait.
			s.wg.Add(2)
			go s.watch(it)
		case errors.Is(err, wsrt.ErrQueueFull):
			// The staging slot is taken (or fault injection says so). Not a
			// rejection — the job was accepted at Submit — so park it back
			// at the head of its queue and wait for space.
			s.q.pushFront(it)
			s.retried.Add(1)
			s.sleepOrWake(admissionBackoff(s.cfg.AdmissionBackoff, attempt))
			attempt++
		default:
			s.retireQueued(it, err)
			attempt = 0
		}
	}
}

// sleepOrWake sleeps for d unless a finishing job (wake) or shutdown
// (quit) interrupts.
func (s *Service) sleepOrWake(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.wake:
	case <-s.quit:
	}
}

// wakePump nudges the pump out of its backoff sleep (non-blocking).
func (s *Service) wakePump() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// retireQueued finishes a job that never reached the pool (cancelled in
// the queue, service closed, or the pool refused it terminally).
func (s *Service) retireQueued(it *admItem, err error) {
	res := sched.Result{Engine: it.spec.Engine.Name(), Program: it.job.Req.Program}
	res.Stats.QueueWait = time.Since(it.job.Created).Nanoseconds()
	s.finalize(it.job, it.spec.Tracer, res, err)
}

// watch follows one pool-accepted job to its terminal state. The start
// marker moves the job queued → running as soon as the pool picks it up;
// it is wg-tracked like the watcher itself (its slot pre-added by the
// pump), so Close cannot return while either still runs.
func (s *Service) watch(it *admItem) {
	defer s.wg.Done()
	job := it.job
	go func() {
		defer s.wg.Done()
		// Started is closed by the pool on job start; a job drained by
		// Close never starts but does finish, which releases this marker.
		select {
		case <-job.handle.Started():
			s.markRunning(job)
		case <-job.handle.Done():
		}
	}()
	res, err := job.handle.Result()
	s.finalize(job, it.spec.Tracer, res, err)
}

// markRunning transitions a job queued → running and moves the gauges
// with it. The job's state mutex orders it against finalize: whichever
// runs first wins, and the loser sees the state it left behind.
func (s *Service) markRunning(job *Job) {
	job.mu.Lock()
	moved := job.state == StateQueued
	if moved {
		job.state = StateRunning
	}
	job.mu.Unlock()
	if !moved {
		return
	}
	s.waiting.Add(-1)
	ts := s.tenant(job.tenant)
	cls := s.classes[job.prio]
	ts.queued.Add(-1)
	cls.queued.Add(-1)
	ts.running.Add(1)
	cls.running.Add(1)
	s.journalStart(job)
	// The job left the staging slot, so the pump can stage the next one.
	s.wakePump()
}

// engine returns (creating if needed) the per-engine breakdown stats.
func (s *Service) engine(name string) *groupStat {
	if name == "" {
		name = "adaptivetc"
	}
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	g := s.engines[name]
	if g == nil {
		g = newGroupStat()
		s.engines[name] = g
	}
	return g
}

// finalize settles one job: classify the outcome, fold it into the
// global and per-tenant/priority/engine metrics, run the invariant
// checker in check mode, publish the terminal record, and release the
// job's admission footprint. Every job passes through here exactly once,
// whether it ran on the pool or died in the queue.
func (s *Service) finalize(job *Job, rec *trace.Recorder, res sched.Result, err error) {
	job.cancel(nil) // release the context watcher and any deadline timer

	ts := s.tenant(job.tenant)
	cls := s.classes[job.prio]
	eng := s.engine(job.Req.Engine)

	state := StateDone
	switch {
	case err == nil:
		s.completed.Add(1)
		ts.completed.Add(1)
		cls.completed.Add(1)
		eng.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrCancelled):
		state = StateCancelled
		s.cancelled.Add(1)
		ts.cancelled.Add(1)
		cls.cancelled.Add(1)
	default:
		state = StateFailed
		s.failed.Add(1)
		ts.failed.Add(1)
		cls.failed.Add(1)
	}
	// Latency accounting by outcome. Completed jobs record the full
	// submit-to-done latency — queue wait is part of what their clients
	// experienced. Aborted or failed jobs record only the time they actually
	// held workers: a job cancelled after sitting in the queue for a second
	// did one second of *waiting*, not one second of *serving*, and letting
	// that wait into the ring would inflate p99 every time load shedding
	// kicks in — precisely when honest latency numbers matter most. Jobs
	// that never started (cancelled while queued, drained by Close) held no
	// workers and contribute nothing.
	var sample int64 = -1
	switch {
	case err == nil:
		sample = time.Since(job.Created).Nanoseconds()
	case res.Makespan > 0:
		sample = res.Makespan
	}
	if sample >= 0 {
		s.latencies.add(sample)
		s.hist.observe(sample)
		ts.lat.add(sample)
		cls.lat.add(sample)
		eng.lat.add(sample)
	}

	var viol error
	if rec != nil {
		// A relaxed-deque pool is audited under bounded multiplicity: the
		// lock-reduced owner path is allowed (by construction, never
		// observed) to hand an entry to up to 2 consumers, so the strict
		// exactly-once ceilings would mislabel it.
		k := 1
		if s.cfg.Options.RelaxedDeque {
			k = 2
		}
		if state == StateDone && !job.firstSol {
			// No external oracle at serve time: the run's value stands in
			// for it, so this checks internal consistency (conservation,
			// deposit accounting, completion uniqueness), not correctness
			// against a serial run.
			viol = rec.CheckMultiplicity(res.Value, res.Value, k)
		} else {
			// Aborted jobs — and completed first-solution jobs, whose losing
			// workers are cancelled mid-tree by design — are audited under
			// the truncation laws instead.
			viol = rec.CheckTruncatedMultiplicity(k)
		}
		s.checked.Add(1)
		if viol != nil {
			s.violations.Add(1)
		}
		rec.Release()
	}
	// A completed first-solution job's value is a solution witness; when the
	// family can verify witnesses, a bogus one counts as a violation whether
	// or not trace checking is on. Zero is unverifiable (legitimately "no
	// solution exists") and passes. DSL programs have no registry oracle,
	// so only registry jobs are witness-checked.
	if state == StateDone && job.Req.Program != "" {
		p := registry.Params{N: job.Req.N, M: job.Req.M, Size: job.Req.Size, Reverse: job.Req.Reverse}
		if ok, checkable := registry.VerifyWitness(job.Req.Program, p, res.Value); checkable && !ok {
			werr := fmt.Errorf("serve: job %s returned invalid witness %d for %q", job.ID, res.Value, job.Req.Program)
			if viol == nil {
				s.violations.Add(1)
			}
			viol = errors.Join(viol, werr)
		}
	}

	// Durability before visibility: the terminal record is fsynced before
	// the state is published, so a poller that observes "done" can trust
	// the result to survive a crash.
	s.journalDone(job, state, res, err)

	job.mu.Lock()
	prev := job.state
	job.state, job.res, job.err, job.violations = state, res, err, viol
	job.mu.Unlock()
	// Release the admission footprint according to how far the job got.
	// The state mutex totally orders this against markRunning, so the
	// waiting counter and the queued/running gauges settle exactly once.
	// A forwarded job released its queue slot when it left for the peer
	// (Placed / adoptForwarded); only its pending gauge remains.
	switch prev {
	case StateRunning:
		ts.running.Add(-1)
		cls.running.Add(-1)
	case StateForwarded:
		s.forwardedNow.Add(-1)
	default:
		s.waiting.Add(-1)
		ts.queued.Add(-1)
		cls.queued.Add(-1)
	}
	ts.inflight.Add(-1)
	s.inflight.Add(-1)
	close(job.done)
	s.retire(job.ID)
	s.wakePump()
}

// retire records id as terminal and evicts the oldest terminal records
// beyond the retention bound.
func (s *Service) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.RetainJobs {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.jobs, evict)
	}
}

// Ready reports whether the service accepts new jobs: true until Drain or
// Close begins. GET /readyz renders it.
func (s *Service) Ready() bool {
	return !s.draining.Load() && !s.isClosed()
}

// Drain gracefully winds the service down: new submissions are rejected
// with ErrDraining (and /readyz flips not-ready) while queued and running
// jobs finish. It returns nil once every accepted job has settled, or the
// context's error if that expires first; either way the service stays
// drained — the expected follow-up is Close.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Snapshot returns the current service metrics.
func (s *Service) Snapshot() Metrics {
	up := time.Since(s.started)
	p50, p99 := s.latencies.percentiles()
	completed := s.completed.Load()
	m := Metrics{
		Started:             s.started,
		UptimeSeconds:       up.Seconds(),
		Draining:            s.draining.Load(),
		Workers:             s.pool.Workers(),
		MaxConcurrentJobs:   s.pool.MaxConcurrentJobs(),
		ShardPolicy:         string(s.pool.ShardPolicy()),
		RunningJobs:         s.pool.RunningJobs(),
		BusyWorkers:         s.pool.BusyWorkers(),
		QueueCapacity:       s.capacity,
		QueueDepth:          int(s.waiting.Load()),
		ExternalQueueDepth:  s.q.depth(),
		InFlight:            s.inflight.Load(),
		ForwardedOut:        s.forwardedOut.Load(),
		ForwardedIn:         s.forwardedIn.Load(),
		ForwardRejected:     s.forwardRej.Load(),
		ForwardedNow:        s.forwardedNow.Load(),
		Submitted:           s.submitted.Load(),
		Completed:           completed,
		Failed:              s.failed.Load(),
		Cancelled:           s.cancelled.Load(),
		Rejected:            s.rejected.Load(),
		RateLimited:         s.rateLimited.Load(),
		QuotaRejected:       s.quotaRej.Load(),
		AdmissionRetries:    s.retried.Load(),
		QuarantinedJobs:     s.pool.Quarantined(),
		P50LatencyMS:        float64(p50) / 1e6,
		P99LatencyMS:        float64(p99) / 1e6,
		InvariantChecked:    s.checked.Load(),
		InvariantViolations: s.violations.Load(),
		LatencyHistogram:    s.hist.snapshot(),
	}
	ps := s.programs.Snapshot()
	m.ProgramsCached = ps.Cached
	m.ProgramCacheBytes = ps.Bytes
	m.CompileHits = ps.Hits
	m.CompileMisses = ps.Misses
	m.CompileErrHits = ps.ErrHits
	m.ProgramEvictions = ps.Evictions
	if s.journal != nil {
		m.StoreFsyncs = s.journal.Fsyncs()
		m.StoreRecords = s.journal.Records()
		m.Recovery = &RecoveryStats{
			Terminal: s.recoveredTerminal.Load(),
			Requeued: s.recoveredRequeued.Load(),
			Aborted:  s.recoveredAborted.Load(),
			Programs: s.recoveredPrograms.Load(),
		}
	}
	if s.pool.ShardPolicy() == wsrt.ShardSLO {
		m.SLOTargetMS = s.cfg.SLOTargetMS
		if m.SLOTargetMS <= 0 {
			m.SLOTargetMS = 50
		}
	}
	if up > 0 {
		m.ThroughputPerSecond = float64(completed) / up.Seconds()
	}
	if m.Workers > 0 {
		m.WorkerOccupancy = float64(m.BusyWorkers) / float64(m.Workers)
	}
	m.LoadScore = m.QueueDepth + int(m.BusyWorkers)
	for _, shard := range s.pool.LiveShards() {
		m.Shards = append(m.Shards, ShardMetrics{
			Workers:   shard,
			Width:     len(shard),
			Occupancy: float64(len(shard)) / float64(m.Workers),
		})
	}
	s.tenantsMu.Lock()
	if len(s.tenants) > 0 {
		m.Tenants = make(map[string]GroupMetrics, len(s.tenants))
		for name, ts := range s.tenants {
			m.Tenants[name] = ts.snapshot()
		}
	}
	s.tenantsMu.Unlock()
	m.Priorities = make(map[string]GroupMetrics, len(priorityOrder))
	for _, p := range priorityOrder {
		m.Priorities[string(p)] = s.classes[p].snapshot()
	}
	s.enginesMu.Lock()
	if len(s.engines) > 0 {
		m.Engines = make(map[string]GroupMetrics, len(s.engines))
		for name, g := range s.engines {
			m.Engines[name] = g.snapshot()
		}
	}
	s.enginesMu.Unlock()
	return m
}

// Close shuts the service down: queued jobs are retired with
// wsrt.ErrPoolClosed, in-flight work finishes or is drained by the pool,
// every watcher (and start marker) completes, and further submissions
// fail. For a graceful shutdown that finishes the backlog instead of
// failing it, call Drain first.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.q.close() // the pump drains the backlog, retiring every queued job
	s.pool.Close()
	s.wg.Wait()
}
