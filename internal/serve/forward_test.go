// Tests for the cluster-facing half of the service: forward-on-full, the
// 429-once accounting contract, queued-job extraction, and peer-side
// admission of forwarded jobs.
package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// fillService occupies the lone worker with a long blocker and the single
// queue slot with a filler, so the next Submit is a capacity miss. Returns
// the blocker for cleanup.
func fillService(t *testing.T, s *Service) *Job {
	t.Helper()
	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, TimeoutMS: 30000})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	waitForState(t, blocker, StateRunning)
	if _, err := s.Submit(Request{Program: "fib", N: 10, TimeoutMS: 30000}); err != nil {
		t.Fatalf("filler: %v", err)
	}
	return blocker
}

// TestForwardOnFullAccounting pins the 429-once contract on the submit
// node: without a forwarder a capacity miss is a plain queue-full
// rejection; with a failing forwarder it is a capacity RejectionError
// carrying this node's own Retry-After (still counted exactly once); with
// a working forwarder it is not a rejection at all — the job is adopted
// in StateForwarded and settles with the peer's result.
func TestForwardOnFullAccounting(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 1})
	t.Cleanup(s.Close)
	blocker := fillService(t, s)
	over := Request{Program: "fib", N: 10, TimeoutMS: 30000}

	// No forwarder: the single-node contract, one rejection.
	_, err := s.Submit(over)
	if !errors.Is(err, wsrt.ErrQueueFull) {
		t.Fatalf("no forwarder: got %v, want ErrQueueFull", err)
	}
	if m := s.Snapshot(); m.Rejected != 1 {
		t.Fatalf("no forwarder: rejected=%d, want 1", m.Rejected)
	}

	// Failing forwarder: still exactly one new rejection, and the 429
	// carries this node's own hint while remaining a queue-full error.
	s.SetForwarder(func(Request) (*Forwarded, error) { return nil, errors.New("no colder peer") })
	_, err = s.Submit(over)
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("failing forwarder: got %v, want RejectionError", err)
	}
	if rej.Reason != "capacity" || rej.RetryAfter != time.Second {
		t.Fatalf("failing forwarder: reason=%q retryAfter=%v, want capacity/1s", rej.Reason, rej.RetryAfter)
	}
	if !errors.Is(err, wsrt.ErrQueueFull) {
		t.Fatalf("capacity RejectionError must wrap ErrQueueFull, got %v", err)
	}
	m := s.Snapshot()
	if m.Rejected != 2 || m.ForwardRejected != 0 {
		t.Fatalf("failing forwarder: rejected=%d forward_rejected=%d, want 2/0", m.Rejected, m.ForwardRejected)
	}

	// Working forwarder: no rejection; the record stays here in
	// StateForwarded and the remote watcher settles it.
	s.SetForwarder(func(req Request) (*Forwarded, error) {
		return &Forwarded{Node: "http://peer-b", JobID: "remote-7",
			Wait: func(context.Context) (sched.Result, error) {
				return sched.Result{Value: 77}, nil
			}}, nil
	})
	j, err := s.Submit(over)
	if err != nil {
		t.Fatalf("working forwarder: %v", err)
	}
	waitForState(t, j, StateDone)
	if _, res, jerr := j.Snapshot(); jerr != nil || res.Value != 77 {
		t.Fatalf("forwarded job settled as (%v, %v), want value 77", res.Value, jerr)
	}
	if st := status(j); st.ForwardedTo != "http://peer-b" || st.RemoteID != "remote-7" {
		t.Fatalf("status carries %q/%q, want peer-b/remote-7", st.ForwardedTo, st.RemoteID)
	}
	m = s.Snapshot()
	if m.Rejected != 2 {
		t.Errorf("working forwarder must not count a rejection: rejected=%d", m.Rejected)
	}
	if m.ForwardedOut != 1 || m.ForwardedNow != 0 {
		t.Errorf("forwarded_out=%d forwarded_now=%d, want 1/0", m.ForwardedOut, m.ForwardedNow)
	}

	if _, ok := s.Cancel(blocker.ID); !ok {
		t.Fatalf("cancel blocker")
	}
}

// TestSubmitForwardedAccounting pins the peer side of the contract: a
// refused forward lands in forward_rejected only (the origin owns the
// client's 429), an accepted one runs to completion with the origin
// recorded and counted in forwarded_in.
func TestSubmitForwardedAccounting(t *testing.T) {
	full := New(Config{Workers: 1, QueueCapacity: 1})
	t.Cleanup(full.Close)
	blocker := fillService(t, full)

	_, err := full.SubmitForwarded(Request{Program: "fib", N: 10}, "http://origin-a")
	if !errors.Is(err, wsrt.ErrQueueFull) {
		t.Fatalf("full peer: got %v, want ErrQueueFull", err)
	}
	if m := full.Snapshot(); m.ForwardRejected != 1 || m.Rejected != 0 {
		t.Fatalf("full peer: forward_rejected=%d rejected=%d, want 1/0", m.ForwardRejected, m.Rejected)
	}
	if _, ok := full.Cancel(blocker.ID); !ok {
		t.Fatalf("cancel blocker")
	}

	idle := New(Config{Workers: 2, QueueCapacity: 8})
	t.Cleanup(idle.Close)
	j, err := idle.SubmitForwarded(Request{Program: "fib", N: 10, Tenant: "t1", Priority: "interactive"}, "http://origin-a")
	if err != nil {
		t.Fatalf("idle peer: %v", err)
	}
	waitForState(t, j, StateDone)
	if st := status(j); st.Origin != "http://origin-a" {
		t.Fatalf("origin %q, want http://origin-a", st.Origin)
	}
	if m := idle.Snapshot(); m.ForwardedIn != 1 || m.ForwardRejected != 0 {
		t.Fatalf("idle peer: forwarded_in=%d forward_rejected=%d, want 1/0", m.ForwardedIn, m.ForwardRejected)
	}
}

// TestExtractQueuedOrderAndLifecycle extracts queued jobs for rebalancing:
// reverse service order (background tail before interactive), Requeue
// restores the job for local completion, Placed hands it to a fake peer
// whose result settles the local record.
func TestExtractQueuedOrderAndLifecycle(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 8})
	t.Cleanup(s.Close)
	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, TimeoutMS: 30000})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	waitForState(t, blocker, StateRunning)

	inter, err := s.Submit(Request{Program: "fib", N: 10, Priority: "interactive", TimeoutMS: 30000})
	if err != nil {
		t.Fatalf("interactive: %v", err)
	}
	bg, err := s.Submit(Request{Program: "fib", N: 12, Priority: "background", TimeoutMS: 30000})
	if err != nil {
		t.Fatalf("background: %v", err)
	}

	got := s.ExtractQueued(1)
	if len(got) != 1 || got[0].ID() != bg.ID {
		t.Fatalf("ExtractQueued(1) took %v, want the background job %s", got, bg.ID)
	}
	if p := got[0].Request().Priority; p != "background" {
		t.Fatalf("extracted request priority %q, want background (metadata must travel)", p)
	}

	// Requeue: the job must still complete locally once the worker frees.
	got[0].Requeue()
	// Placed: the interactive job goes to a fake peer.
	got = s.ExtractQueued(2)
	var placed *RemoteJob
	for _, rj := range got {
		if rj.ID() == inter.ID {
			placed = rj
		} else {
			rj.Requeue()
		}
	}
	if placed == nil {
		t.Fatalf("interactive job not extracted; got %d jobs", len(got))
	}
	placed.Placed("http://peer-c", "r-9", func(context.Context) (sched.Result, error) {
		return sched.Result{Value: 55}, nil
	})
	waitForState(t, inter, StateDone)
	if _, res, jerr := inter.Snapshot(); jerr != nil || res.Value != 55 {
		t.Fatalf("placed job settled as (%v, %v), want 55", res.Value, jerr)
	}

	if _, ok := s.Cancel(blocker.ID); !ok {
		t.Fatalf("cancel blocker")
	}
	waitForState(t, bg, StateDone)
	if m := s.Snapshot(); m.ForwardedOut != 1 || m.ForwardedNow != 0 {
		t.Fatalf("forwarded_out=%d forwarded_now=%d, want 1/0", m.ForwardedOut, m.ForwardedNow)
	}
}
