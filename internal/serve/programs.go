// Programs-as-data: the service side of the DSL program cache and the
// persistent job journal. POST /programs lands here (compile, cache,
// journal), job lifecycle transitions are journaled from service.go via
// the journal* helpers, and recover() materializes what a restart found
// in the store — terminal results served again, never-started jobs
// re-queued, mid-run jobs marked aborted-by-restart, programs
// re-compiled from their persisted canonical source.
package serve

import (
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"time"

	"adaptivetc/internal/jobstore"
	"adaptivetc/internal/progstore"
	"adaptivetc/internal/sched"
)

// ErrAbortedByRestart is the terminal error recovery records on jobs that
// were mid-run when the server died: their partial work is gone (the pool
// holds no persistent state) and re-running silently would double-count
// side effects the client may have taken — resubmitting is the client's
// call.
var ErrAbortedByRestart = errors.New("serve: job aborted by server restart")

// PutProgram compiles and caches a DSL program, journaling it (durably)
// when it is new so a restart recovers the cache. Compile failures are
// position-annotated *lang.Error values.
func (s *Service) PutProgram(name, src string) (progstore.Meta, bool, error) {
	meta, created, err := s.programs.Put(name, src)
	if err != nil {
		return progstore.Meta{}, false, err
	}
	if created && s.journal != nil {
		_, canonical, _ := s.programs.Get(meta.Hash)
		if jerr := s.journal.AppendSync(&jobstore.Record{
			T: jobstore.TProgram, Hash: meta.Hash, Name: meta.Name, Source: canonical,
		}); jerr != nil {
			return progstore.Meta{}, false, jerr
		}
	}
	return meta, created, nil
}

// GetProgram returns a cached program's metadata and canonical source.
func (s *Service) GetProgram(hash string) (progstore.Meta, string, bool) {
	return s.programs.Get(hash)
}

// DeleteProgram evicts a cached program and journals the deletion.
func (s *Service) DeleteProgram(hash string) bool {
	if !s.programs.Delete(hash) {
		return false
	}
	if s.journal != nil {
		_ = s.journal.AppendSync(&jobstore.Record{T: jobstore.TProgDel, Hash: hash})
	}
	return true
}

// Programs lists the cached programs, most recently used first.
func (s *Service) Programs() []progstore.Meta { return s.programs.List() }

// journalSubmit records an admitted job durably: once the client's 202 is
// out, a restart must re-queue (or have finished) the job, never lose it.
func (s *Service) journalSubmit(job *Job) {
	if s.journal == nil {
		return
	}
	req, err := json.Marshal(job.Req)
	if err != nil {
		return
	}
	_ = s.journal.AppendSync(&jobstore.Record{T: jobstore.TSubmit, ID: job.ID, Req: req})
}

// journalStart records a job entering execution. Async on purpose: the
// record only affects how a crash classifies the job (aborted-by-restart
// versus re-queued), and programs are side-effect-free, so the tiny
// window where a started job could be re-run after a crash is safe —
// while an fsync here would serialize every job start.
func (s *Service) journalStart(job *Job) {
	if s.journal == nil {
		return
	}
	_ = s.journal.Append(&jobstore.Record{T: jobstore.TStart, ID: job.ID})
}

// journalDone records a job's terminal outcome durably; finalize calls it
// before publishing the state (acknowledge ⇒ durable).
func (s *Service) journalDone(job *Job, state State, res sched.Result, err error) {
	if s.journal == nil {
		return
	}
	rec := &jobstore.Record{
		T: jobstore.TDone, ID: job.ID, State: string(state),
		Value: res.Value, MakespanNS: res.Makespan,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	_ = s.journal.AppendSync(rec)
}

// recover materializes the journal's recovered state. Programs first (a
// re-queued job may reference one by hash), then jobs: terminal records
// become served results, submit-only jobs re-enter the queue with their
// IDs preserved, and submit+start jobs — mid-run at the crash — become
// failed with ErrAbortedByRestart, journaled terminal so the next restart
// recovers them directly.
func (s *Service) recover(rec *jobstore.Recovery) {
	if rec == nil {
		return
	}
	for _, p := range rec.Programs {
		if _, err := s.programs.Restore(p.Name, p.Source); err == nil {
			s.recoveredPrograms.Add(1)
		}
	}
	// Resume job IDs past everything recovered, so new submissions never
	// collide with a journaled ID.
	maxID := int64(0)
	for _, j := range rec.Jobs {
		if n, err := strconv.ParseInt(strings.TrimPrefix(j.ID, "j"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	s.nextID.Store(maxID)

	for _, j := range rec.Jobs {
		var req Request
		if err := json.Unmarshal(j.Req, &req); err != nil {
			continue // unreadable request: nothing can be done with it
		}
		switch {
		case j.Done:
			s.materializeRecovered(j, req, State(j.State), nil)
			s.recoveredTerminal.Add(1)
		case j.Started:
			s.materializeRecovered(j, req, StateFailed, ErrAbortedByRestart)
			s.recoveredAborted.Add(1)
			if s.journal != nil {
				_ = s.journal.Append(&jobstore.Record{
					T: jobstore.TDone, ID: j.ID, State: string(StateFailed),
					Err: ErrAbortedByRestart.Error(),
				})
			}
		default:
			if s.resubmitRecovered(j.ID, req) {
				s.recoveredRequeued.Add(1)
			}
		}
	}
}

// materializeRecovered installs a terminal job record reconstructed from
// the journal: pollable via GET /jobs/{id}, counted only in the recovery
// metrics (the submit/complete counters describe this process's work).
func (s *Service) materializeRecovered(j *jobstore.JobState, req Request, state State, errv error) {
	prio, perr := ParsePriority(req.Priority)
	if perr != nil {
		prio = PriorityBatch
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	job := &Job{
		ID:      j.ID,
		Req:     req,
		Created: time.Now(),
		tenant:  tenant,
		prio:    prio,
		cancel:  func(error) {}, // terminal: nothing left to cancel
		done:    make(chan struct{}),
		state:   state,
	}
	job.res = sched.Result{Value: j.Value, Makespan: j.MakespanNS, Program: req.Program, Engine: req.Engine}
	if errv != nil {
		job.err = errv
	} else if j.Err != "" {
		job.err = errors.New(j.Err)
	}
	close(job.done)
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
}

// resubmitRecovered re-queues a journaled job that never started, with
// its ID preserved. Admission control is deliberately bypassed: the job
// was already admitted (and its submit journaled) before the crash;
// bouncing it now off a quota would turn an acknowledged submission into
// a silent loss. Build failures (program gone from the registry, DSL
// hash unrecoverable) settle the job as failed instead.
func (s *Service) resubmitRecovered(id string, req Request) bool {
	it, err := s.buildJob(req)
	if err != nil {
		s.materializeRecovered(&jobstore.JobState{ID: id}, req, StateFailed, err)
		if s.journal != nil {
			_ = s.journal.Append(&jobstore.Record{
				T: jobstore.TDone, ID: id, State: string(StateFailed), Err: err.Error(),
			})
		}
		return false
	}
	job := it.job
	job.ID = id // preserve the journaled identity; the minted one is discarded
	ts := s.tenant(job.tenant)
	cls := s.classes[job.prio]

	s.mu.Lock()
	s.jobs[job.ID] = job
	s.waiting.Add(1)
	s.inflight.Add(1)
	ts.inflight.Add(1)
	ts.queued.Add(1)
	cls.queued.Add(1)
	s.mu.Unlock()
	// No journalSubmit: the original submit record is already in the log,
	// and recovery folds duplicates first-submission-wins anyway.
	s.q.push(it)
	return true
}

// RecoveryStats is the restart-recovery summary exposed in Metrics.
type RecoveryStats struct {
	Terminal int64 `json:"terminal"`
	Requeued int64 `json:"requeued"`
	Aborted  int64 `json:"aborted"`
	Programs int64 `json:"programs"`
}
