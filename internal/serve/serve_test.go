package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

func newTestService(t *testing.T, workers, queue int, check bool) *Service {
	t.Helper()
	s := New(Config{
		Workers:       workers,
		QueueCapacity: queue,
		Check:         check,
		Options:       sched.Options{GrowableDeque: true},
	})
	t.Cleanup(s.Close)
	return s
}

// TestServeConcurrentMixedJobs is the tentpole acceptance test: one
// resident pool serves >= 100 concurrently submitted jobs mixing three
// programs across three engines, and every result is correct. Run with
// -race in CI.
func TestServeConcurrentMixedJobs(t *testing.T) {
	s := newTestService(t, 2, 128, false)

	type kind struct {
		req  Request
		want int64
	}
	kinds := []kind{
		{Request{Program: "nqueens-array", N: 6, Engine: "adaptivetc"}, 4},
		{Request{Program: "fib", N: 15, Engine: "cilk"}, 610},
		{Request{Program: "knight", N: 5, Engine: "slaw"}, 304},
		{Request{Program: "nqueens-array", N: 7, Engine: "cilk-synched"}, 40},
		{Request{Program: "fib", N: 12, Engine: "helpfirst"}, 144},
		{Request{Program: "knight", N: 4, Engine: "cutoff-library"}, 0},
		{Request{Program: "fib", N: 10, Engine: "cutoff-programmer"}, 55},
	}

	const jobs = 105
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		k := kinds[i%len(kinds)]
		wg.Add(1)
		go func(i int, k kind) {
			defer wg.Done()
			// The queue (128) can momentarily fill against 105 concurrent
			// submitters; back off and retry — the client contract.
			var job *Job
			for {
				var err error
				job, err = s.Submit(k.req)
				if err == nil {
					break
				}
				if !errors.Is(err, wsrt.ErrQueueFull) {
					errs <- fmt.Errorf("job %d: submit: %v", i, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			<-job.Done()
			state, res, err := job.Snapshot()
			if err != nil || state != StateDone {
				errs <- fmt.Errorf("job %d (%s/%s): state=%s err=%v", i, k.req.Program, k.req.Engine, state, err)
				return
			}
			if res.Value != k.want {
				errs <- fmt.Errorf("job %d (%s/%s): value=%d want %d", i, k.req.Program, k.req.Engine, res.Value, k.want)
			}
		}(i, k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Snapshot()
	if m.Completed != jobs {
		t.Fatalf("completed=%d, want %d", m.Completed, jobs)
	}
	if m.InFlight != 0 || m.QueueDepth != 0 {
		t.Fatalf("in-flight=%d queue=%d after drain, want 0/0", m.InFlight, m.QueueDepth)
	}
}

// TestServeNewFamilies submits one job per workload family added by the
// dataflow/branch-and-bound/first-solution expansion, with the invariant
// checker on. DAG and BnB values are checked against the serial oracle
// (schedule-independent by construction); first-solution jobs must carry a
// valid witness, which finalize routes through the truncation-tolerant
// checker plus the registry's server-side witness verification — so a
// violations==nil verdict here really covers both planes. The M knob rides
// the dag-layered request to prove the secondary parameter travels the
// submission path.
func TestServeNewFamilies(t *testing.T) {
	s := newTestService(t, 4, 32, true)
	reqs := []Request{
		{Program: "dag-layered", N: 4, M: 3, Engine: "adaptivetc"},
		{Program: "dag-stencil", N: 4, M: 5, Engine: "cilk"},
		{Program: "bnb-knapsack", N: 12, Engine: "slaw"},
		{Program: "bnb-tsp", N: 6, Engine: "helpfirst"},
		{Program: "first-nqueens", N: 7, Engine: "cilk-synched"},
		{Program: "first-sat", N: 10, Engine: "cutoff-programmer"},
	}
	for _, req := range reqs {
		job, err := s.Submit(req)
		if err != nil {
			t.Fatalf("submit %s: %v", req.Program, err)
		}
		<-job.Done()
		state, res, err := job.Snapshot()
		if err != nil || state != StateDone {
			t.Fatalf("%s: state=%s err=%v", req.Program, state, err)
		}
		if verr := job.Violations(); verr != nil {
			t.Errorf("%s: invariant violations: %v", req.Program, verr)
		}
		p := registry.Params{N: req.N, M: req.M}
		if registry.FirstSolution(req.Program) {
			if ok, checkable := registry.VerifyWitness(req.Program, p, res.Value); !checkable || !ok {
				t.Errorf("%s: invalid witness %d (checkable=%v)", req.Program, res.Value, checkable)
			}
			continue
		}
		prog, err := registry.Build(req.Program, p)
		if err != nil {
			t.Fatalf("rebuild %s: %v", req.Program, err)
		}
		oracle, err := (sched.Serial{}).Run(prog, sched.Options{})
		if err != nil {
			t.Fatalf("serial %s: %v", req.Program, err)
		}
		if res.Value != oracle.Value {
			t.Errorf("%s: value %d, serial says %d", req.Program, res.Value, oracle.Value)
		}
	}
	if m := s.Snapshot(); m.InvariantViolations != 0 {
		t.Fatalf("invariant_violations=%d, want 0", m.InvariantViolations)
	}
}

// TestServeShardedConcurrency runs the service with two shards and the
// invariant checker on: a mixed stream of jobs must all complete with
// correct values, zero invariant violations, and terminal statuses that
// carry the shard each job ran on. Run with -race in CI.
func TestServeShardedConcurrency(t *testing.T) {
	s := New(Config{
		Workers:           2,
		QueueCapacity:     64,
		MaxConcurrentJobs: 2,
		ShardPolicy:       "adaptive",
		Check:             true,
		Options:           sched.Options{GrowableDeque: true},
	})
	t.Cleanup(s.Close)

	type kind struct {
		req  Request
		want int64
	}
	kinds := []kind{
		{Request{Program: "fib", N: 12, Engine: "adaptivetc"}, 144},
		{Request{Program: "nqueens-array", N: 6, Engine: "cilk"}, 4},
		{Request{Program: "fib", N: 10, Engine: "helpfirst"}, 55},
		{Request{Program: "nqueens-array", N: 5, Engine: "slaw"}, 10},
		{Request{Program: "fib", N: 11, Engine: "cilk-synched"}, 89},
	}

	const jobs = 40
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		k := kinds[i%len(kinds)]
		wg.Add(1)
		go func(i int, k kind) {
			defer wg.Done()
			var job *Job
			for {
				var err error
				job, err = s.Submit(k.req)
				if err == nil {
					break
				}
				if !errors.Is(err, wsrt.ErrQueueFull) {
					errs <- fmt.Errorf("job %d: submit: %v", i, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
			<-job.Done()
			state, res, err := job.Snapshot()
			if err != nil || state != StateDone {
				errs <- fmt.Errorf("job %d (%s/%s): state=%s err=%v", i, k.req.Program, k.req.Engine, state, err)
				return
			}
			if res.Value != k.want {
				errs <- fmt.Errorf("job %d (%s/%s): value=%d want %d", i, k.req.Program, k.req.Engine, res.Value, k.want)
			}
			if len(res.Shard) == 0 {
				errs <- fmt.Errorf("job %d (%s/%s): terminal result carries no shard", i, k.req.Program, k.req.Engine)
				return
			}
			if got := status(job); len(got.Shard) == 0 {
				errs <- fmt.Errorf("job %d: terminal JobStatus carries no shard", i)
			}
		}(i, k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Snapshot()
	if m.Completed != jobs {
		t.Fatalf("completed=%d, want %d", m.Completed, jobs)
	}
	if m.MaxConcurrentJobs != 2 || m.ShardPolicy != "adaptive" {
		t.Fatalf("metrics report max_concurrent_jobs=%d policy=%q, want 2/adaptive", m.MaxConcurrentJobs, m.ShardPolicy)
	}
	if m.InvariantChecked != jobs || m.InvariantViolations != 0 {
		t.Fatalf("invariants: checked=%d violations=%d, want %d/0", m.InvariantChecked, m.InvariantViolations, jobs)
	}
	if m.RunningJobs != 0 || m.BusyWorkers != 0 || m.WorkerOccupancy != 0 {
		t.Fatalf("after drain: running=%d busy=%d occupancy=%v, want zeros", m.RunningJobs, m.BusyWorkers, m.WorkerOccupancy)
	}
}

// TestServeBackpressure fills the queue behind a blocked job and checks the
// overflow submission is rejected with wsrt.ErrQueueFull and counted.
func TestServeBackpressure(t *testing.T) {
	s := newTestService(t, 1, 2, false)

	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 12, Engine: "adaptivetc", TimeoutMS: 30000})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the blocker to leave the queue and occupy the workers, so
	// the two fills below take the queue's whole capacity.
	for {
		if state, _, _ := blocker.Snapshot(); state == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{Program: "fib", N: 5}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := s.Submit(Request{Program: "fib", N: 5}); !errors.Is(err, wsrt.ErrQueueFull) {
		t.Fatalf("overflow: err=%v, want ErrQueueFull", err)
	}
	if got := s.Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected=%d, want 1", got)
	}
	blocker.Cancel(ErrCancelled)
	<-blocker.Done()
}

// TestServeCancellation cancels a running job and checks the state, the
// cause, and that the pool serves the next job correctly.
func TestServeCancellation(t *testing.T) {
	s := newTestService(t, 2, 8, true)

	job, err := s.Submit(Request{Program: "nqueens-array", N: 13, Engine: "adaptivetc"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, ok := s.Cancel(job.ID); !ok {
		t.Fatal("Cancel: job not found")
	}
	<-job.Done()
	state, _, jerr := job.Snapshot()
	if state != StateCancelled || !errors.Is(jerr, ErrCancelled) {
		t.Fatalf("state=%s err=%v, want cancelled/ErrCancelled", state, jerr)
	}
	if v := job.Violations(); v != nil {
		t.Fatalf("truncated trace violated invariants: %v", v)
	}

	next, err := s.Submit(Request{Program: "fib", N: 10})
	if err != nil {
		t.Fatal(err)
	}
	<-next.Done()
	if state, res, err := next.Snapshot(); err != nil || state != StateDone || res.Value != 55 {
		t.Fatalf("job after cancel: state=%s value=%d err=%v", state, res.Value, err)
	}
	if v := next.Violations(); v != nil {
		t.Fatalf("post-cancel job violated invariants: %v", v)
	}

	m := s.Snapshot()
	if m.Cancelled != 1 || m.Completed != 1 {
		t.Fatalf("cancelled=%d completed=%d, want 1/1", m.Cancelled, m.Completed)
	}
	if m.InvariantChecked != 2 || m.InvariantViolations != 0 {
		t.Fatalf("checked=%d violations=%d, want 2/0", m.InvariantChecked, m.InvariantViolations)
	}
}

// TestServeDeadline lets a job expire via its own timeout_ms.
func TestServeDeadline(t *testing.T) {
	s := newTestService(t, 1, 4, false)

	job, err := s.Submit(Request{Program: "nqueens-array", N: 13, Engine: "adaptivetc", TimeoutMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	state, _, jerr := job.Snapshot()
	if state != StateCancelled {
		t.Fatalf("state=%s err=%v, want cancelled via deadline", state, jerr)
	}
}

// TestServeRejectsUnknowns validates program and engine names at submit.
func TestServeRejectsUnknowns(t *testing.T) {
	s := newTestService(t, 1, 4, false)
	if _, err := s.Submit(Request{Program: "no-such"}); err == nil {
		t.Fatal("unknown program accepted")
	}
	if _, err := s.Submit(Request{Program: "fib", Engine: "tascell"}); err == nil {
		t.Fatal("non-pool engine accepted")
	}
	if _, err := s.Submit(Request{Program: "fib", Engine: "serial"}); err == nil {
		t.Fatal("serial engine accepted")
	}
	if _, err := s.Submit(Request{Program: "fib", StealPolicy: "round-robin"}); err == nil {
		t.Fatal("unknown steal policy accepted")
	}
}

// TestServeStealPolicies runs one checked job per steal policy on a
// relaxed-deque service: the value must be right and the job's trace must
// pass the (multiplicity-tolerant) invariant audit.
func TestServeStealPolicies(t *testing.T) {
	s := New(Config{
		Workers:       4,
		QueueCapacity: 16,
		Check:         true,
		Options:       sched.Options{RelaxedDeque: true},
	})
	defer s.Close()
	oracle := fibOracle(12)
	for _, policy := range wsrt.StealPolicyNames() {
		job, err := s.Submit(Request{Program: "fib", N: 12, Engine: "adaptivetc", StealPolicy: policy})
		if err != nil {
			t.Fatalf("%s: submit: %v", policy, err)
		}
		<-job.Done()
		state, res, err := job.Snapshot()
		if err != nil || state != StateDone {
			t.Fatalf("%s: state %v, err %v", policy, state, err)
		}
		if res.Value != oracle {
			t.Errorf("%s: value %d, want %d", policy, res.Value, oracle)
		}
		if v := job.Violations(); v != nil {
			t.Errorf("%s: invariant violations: %v", policy, v)
		}
	}
	m := s.Snapshot()
	if m.InvariantChecked != int64(len(wsrt.StealPolicyNames())) || m.InvariantViolations != 0 {
		t.Fatalf("checked=%d violations=%d, want %d/0", m.InvariantChecked, m.InvariantViolations, len(wsrt.StealPolicyNames()))
	}
}

func fibOracle(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// TestHTTPAPI exercises the JSON API end to end over httptest.
func TestHTTPAPI(t *testing.T) {
	s := newTestService(t, 2, 16, false)
	srv := httptest.NewServer(NewMux(s))
	defer srv.Close()

	// Submit.
	body, _ := json.Marshal(Request{Program: "fib", N: 10, Engine: "adaptivetc"})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID == "" {
		t.Fatal("no job id")
	}

	// Poll to done.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == StateDone {
			break
		}
		if st.State == StateFailed || st.State == StateCancelled {
			t.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Value == nil || *st.Value != 55 {
		t.Fatalf("value = %v, want 55", st.Value)
	}
	if st.Stats == nil || st.Stats.Nodes == 0 {
		t.Fatal("terminal status is missing stats")
	}

	// Unknown id.
	resp, _ = http.Get(srv.URL + "/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad request.
	resp, _ = http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader([]byte(`{"program":"no-such"}`)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST unknown program: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Cancel via DELETE on a fresh long job.
	body, _ = json.Marshal(Request{Program: "nqueens-array", N: 13, Engine: "adaptivetc"})
	resp, err = http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var longSt JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&longSt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+longSt.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	job, ok := s.Get(longSt.ID)
	if !ok {
		t.Fatal("cancelled job vanished")
	}
	<-job.Done()
	if state, _, _ := job.Snapshot(); state != StateCancelled && state != StateDone {
		t.Fatalf("after DELETE: state=%s", state)
	}

	// Metrics.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Completed < 1 || m.Workers != 2 {
		t.Fatalf("metrics: completed=%d workers=%d", m.Completed, m.Workers)
	}

	// Catalog.
	resp, err = http.Get(srv.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(cat["programs"]) == 0 || len(cat["engines"]) != 7 {
		t.Fatalf("catalog: %d programs, %d engines (want 7)", len(cat["programs"]), len(cat["engines"]))
	}
}

// TestJobRetention evicts the oldest terminal records past the bound.
func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 1, QueueCapacity: 8, RetainJobs: 2, Options: sched.Options{GrowableDeque: true}})
	defer s.Close()

	ids := make([]string, 3)
	for i := range ids {
		job, err := s.Submit(Request{Program: "fib", N: 5})
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
		ids[i] = job.ID
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("oldest record not evicted")
	}
	if _, ok := s.Get(ids[2]); !ok {
		t.Fatal("newest record evicted")
	}
}

// TestServeQuarantineMetrics runs every job under a certain-panic fault
// plan: each one must land in StateFailed with ErrJobPanicked, the
// quarantine gauge must follow the pool's counter, and the occupancy
// gauges must settle back to zero — a quarantined shard that stayed
// "busy" forever was exactly the bug the fault plane exists to catch.
func TestServeQuarantineMetrics(t *testing.T) {
	s := New(Config{
		Workers:       1,
		QueueCapacity: 4,
		Faults:        faults.New(faults.Spec{Seed: 20100424, Panic: 1}),
	})
	t.Cleanup(s.Close)

	for i := 0; i < 2; i++ {
		job, err := s.Submit(Request{Program: "fib", N: 10})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		<-job.Done()
		state, _, jerr := job.Snapshot()
		if state != StateFailed || !errors.Is(jerr, wsrt.ErrJobPanicked) {
			t.Fatalf("job %d: state=%s err=%v, want failed/ErrJobPanicked", i, state, jerr)
		}
	}

	m := s.Snapshot()
	if m.Failed != 2 || m.QuarantinedJobs != 2 {
		t.Fatalf("failed=%d quarantined=%d, want 2/2", m.Failed, m.QuarantinedJobs)
	}
	if m.Completed != 0 {
		t.Fatalf("completed=%d, want 0", m.Completed)
	}
	for i := 0; ; i++ {
		m = s.Snapshot()
		if m.BusyWorkers == 0 && m.WorkerOccupancy == 0 {
			break
		}
		if i >= 200 {
			t.Fatalf("occupancy never settled after quarantine: busy=%d occupancy=%f",
				m.BusyWorkers, m.WorkerOccupancy)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeLatencyExcludesQueueWait pins the latency-ring accounting: a
// job cancelled while still queued contributes nothing (its time was
// waiting, not serving), while an aborted job that actually ran
// contributes only its run time. Before the fix, load shedding poisoned
// p99 with queue waits.
func TestServeLatencyExcludesQueueWait(t *testing.T) {
	s := newTestService(t, 1, 4, false)

	// The blocker must outlive the whole test window — nqueens 14 runs for
	// minutes on one worker; the cancel below reaps it in milliseconds.
	blocker, err := s.Submit(Request{Program: "nqueens-array", N: 14, Engine: "adaptivetc", TimeoutMS: 600000})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if state, _, _ := blocker.Snapshot(); state == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	var queued []*Job
	for i := 0; i < 2; i++ {
		j, err := s.Submit(Request{Program: "fib", N: 5})
		if err != nil {
			t.Fatalf("queue fill %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	time.Sleep(150 * time.Millisecond) // let queue wait accrue
	for _, j := range queued {
		j.Cancel(ErrCancelled)
	}
	// Cancelling the blocker frees the worker, which lets the pool drain
	// the two dead queued jobs without ever starting them.
	blocker.Cancel(ErrCancelled)
	<-blocker.Done()
	for _, j := range queued {
		<-j.Done()
		if state, _, _ := j.Snapshot(); state != StateCancelled {
			t.Fatalf("queued job state=%s, want cancelled", state)
		}
	}

	// Exactly one sample may exist: the blocker's run time. The cancelled
	// queued jobs waited ~150ms each — with the old accounting the ring
	// would hold three samples and p99 would read queue wait as latency.
	if n := ringCount(s.latencies); n != 1 {
		t.Fatalf("latency ring holds %d samples, want 1 (the aborted-but-ran blocker only)", n)
	}
	_, res, _ := blocker.Snapshot()
	if res.Makespan <= 0 {
		t.Fatalf("cancelled running blocker has Makespan %d, want > 0", res.Makespan)
	}
	wantMS := float64(res.Makespan) / 1e6
	if m := s.Snapshot(); m.P50LatencyMS != wantMS || m.P99LatencyMS != wantMS {
		t.Fatalf("ring sample p50=%vms p99=%vms, want the blocker's run time %vms",
			m.P50LatencyMS, m.P99LatencyMS, wantMS)
	}
}

// ringCount reports how many samples the latency ring holds.
func ringCount(l *latencyRing) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.buf)
	}
	return l.next
}

// TestServeAdmissionRetryTransient checks that Submit absorbs a transient
// injected admission rejection: the first attempt is refused, the retry is
// admitted, the job completes, and the retry — not a rejection — is what
// the metrics record.
func TestServeAdmissionRetryTransient(t *testing.T) {
	// Find a seed whose admission stream rejects the first draw and admits
	// the second at rate 0.5. The scan runs on a probe plan; the service
	// gets a fresh plan with the same spec, hence the same stream.
	spec := faults.Spec{Reject: 0.5}
	for seed := int64(1); ; seed++ {
		spec.Seed = seed
		fi := faults.New(spec).Admission()
		if fi.RejectAdmission() && !fi.RejectAdmission() {
			break
		}
		if seed > 1000 {
			t.Fatal("no reject-then-admit seed below 1000")
		}
	}
	s := New(Config{
		Workers:          1,
		QueueCapacity:    4,
		AdmissionBackoff: time.Millisecond,
		Faults:           faults.New(spec),
	})
	t.Cleanup(s.Close)

	job, err := s.Submit(Request{Program: "fib", N: 10})
	if err != nil {
		t.Fatalf("submit with transient rejection: %v", err)
	}
	<-job.Done()
	if state, res, jerr := job.Snapshot(); state != StateDone || jerr != nil || res.Value != 55 {
		t.Fatalf("retried job: state=%s value=%d err=%v, want done/55", state, res.Value, jerr)
	}
	m := s.Snapshot()
	if m.AdmissionRetries != 1 || m.Rejected != 0 {
		t.Fatalf("retries=%d rejected=%d, want 1/0", m.AdmissionRetries, m.Rejected)
	}
}

// TestServeAdmissionSustainedRejection checks the other side of the
// contract: an accepted job is never spuriously failed by staging
// pressure. Under a fault plan that rejects every pool submission, the
// pump parks the job and retries with backoff until the job's own
// deadline retires it as cancelled — the caller saw an accept, not a
// rejection, and the pump survives to serve the next job.
func TestServeAdmissionSustainedRejection(t *testing.T) {
	s := New(Config{
		Workers:          1,
		QueueCapacity:    4,
		AdmissionBackoff: time.Millisecond,
		Faults:           faults.New(faults.Spec{Seed: 1, Reject: 1}),
	})
	t.Cleanup(s.Close)

	job, err := s.Submit(Request{Program: "fib", N: 10, TimeoutMS: 50})
	if err != nil {
		t.Fatalf("submit under sustained staging rejection: %v", err)
	}
	<-job.Done()
	if state, _, jerr := job.Snapshot(); state != StateCancelled || !errors.Is(jerr, context.DeadlineExceeded) {
		t.Fatalf("parked job: state=%s err=%v, want cancelled by deadline", state, jerr)
	}
	m := s.Snapshot()
	if m.AdmissionRetries < 1 || m.Rejected != 0 || m.Cancelled != 1 {
		t.Fatalf("retries=%d rejected=%d cancelled=%d, want >=1/0/1", m.AdmissionRetries, m.Rejected, m.Cancelled)
	}
}
