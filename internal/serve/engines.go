package serve

import (
	"adaptivetc/internal/cilk"
	"adaptivetc/internal/core"
	"adaptivetc/internal/cutoff"
	"adaptivetc/internal/slaw"
	"adaptivetc/internal/wsrt"
)

// The seven pool-capable engines. Tascell (own backtracking runtime) and
// the serial reference (no workers) cannot be hosted on a wsrt pool.
func init() {
	RegisterEngine("adaptivetc", func() wsrt.PoolEngine { return core.New() })
	RegisterEngine("cilk", func() wsrt.PoolEngine { return cilk.New() })
	RegisterEngine("cilk-synched", func() wsrt.PoolEngine { return cilk.NewSynched() })
	RegisterEngine("cutoff-programmer", func() wsrt.PoolEngine { return cutoff.NewProgrammer() })
	RegisterEngine("cutoff-library", func() wsrt.PoolEngine { return cutoff.NewLibrary() })
	RegisterEngine("helpfirst", func() wsrt.PoolEngine { return slaw.NewHelpFirst() })
	RegisterEngine("slaw", func() wsrt.PoolEngine { return slaw.New() })
}
