// The QoS admission plane: tenant identity, priority classes, per-tenant
// quotas and token-bucket rate limits, and the weighted-fair queue that
// replaced the single FIFO in front of wsrt.Pool.Submit.
//
// Admission is two-stage. Submit performs the synchronous, caller-visible
// checks (rate limit, quota, global capacity — each a 429 with its own
// Retry-After) and enqueues the job into the weighted-fair queue; the
// service's pump goroutine then drains that queue in QoS order, staging
// one job at a time into the pool's own (capacity-1) queue. Keeping the
// pool-side buffer minimal is what makes the weights matter: every job
// that is not literally next waits where priority is still mutable, so a
// late-arriving interactive job overtakes queued batch work instead of
// sitting behind it in a FIFO.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"adaptivetc/internal/wsrt"
)

// Priority is a job's QoS class. Classes share the admission queue under
// smooth weighted round-robin: with the default weights an interactive
// job is picked 16× as often as a background one when both classes have
// work queued, but no class is ever starved outright.
type Priority string

const (
	// PriorityInteractive: latency-sensitive, user-facing work.
	PriorityInteractive Priority = "interactive"
	// PriorityBatch: the default class for unmarked submissions.
	PriorityBatch Priority = "batch"
	// PriorityBackground: best-effort work that yields to everything else.
	PriorityBackground Priority = "background"
)

// priorityOrder fixes a deterministic iteration order for the scheduler
// and for metrics snapshots.
var priorityOrder = []Priority{PriorityInteractive, PriorityBatch, PriorityBackground}

// priorityWeights are the admission shares. They are deliberately not
// configurable per request — a tenant picks a class, the operator owns
// the ratios.
var priorityWeights = map[Priority]int{
	PriorityInteractive: 16,
	PriorityBatch:       4,
	PriorityBackground:  1,
}

// ParsePriority maps a request's priority string to its class. Empty
// means PriorityBatch, so unmarked traffic neither jumps the interactive
// queue nor falls behind background work.
func ParsePriority(s string) (Priority, error) {
	switch Priority(s) {
	case "":
		return PriorityBatch, nil
	case PriorityInteractive, PriorityBatch, PriorityBackground:
		return Priority(s), nil
	}
	return "", fmt.Errorf("serve: unknown priority %q (have %v)", s, priorityOrder)
}

// DefaultTenant is the identity assumed for requests that carry none.
const DefaultTenant = "default"

// ErrDraining reports a submission to a service that is draining: it is
// finishing its backlog and will not accept new jobs (HTTP 503 upstream).
var ErrDraining = errors.New("serve: draining: not accepting new jobs")

// RejectionError is a per-tenant admission rejection (HTTP 429 upstream).
// RetryAfter is the tenant-specific back-off hint: for a rate limit, the
// time until the token bucket refills a whole token; for a quota, a flat
// second, since quota headroom returns only when one of the tenant's own
// jobs finishes. A cluster-mode capacity rejection (Reason "capacity")
// also carries this type so the client sees *this* node's Retry-After
// hint — never a peer's — and wraps wsrt.ErrQueueFull for errors.Is.
type RejectionError struct {
	Tenant     string
	Reason     string // "rate-limit", "quota" or "capacity"
	RetryAfter time.Duration
	cause      error
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("serve: tenant %q rejected (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter)
}

// Unwrap exposes the underlying sentinel (wsrt.ErrQueueFull for capacity
// rejections), keeping existing errors.Is call sites working.
func (e *RejectionError) Unwrap() error { return e.cause }

// TenantLimits bounds one tenant's use of the service. The zero value is
// unlimited.
type TenantLimits struct {
	// MaxInFlight caps the tenant's queued+running jobs; 0 is unlimited.
	MaxInFlight int
	// RatePerSec is the tenant's token-bucket refill rate in submissions
	// per second; 0 is unlimited.
	RatePerSec float64
	// Burst is the bucket depth; 0 means max(1, ceil(RatePerSec)).
	Burst int
}

// tokenBucket is a standard refill-on-access token bucket.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the bucket
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(lim TenantLimits) *tokenBucket {
	burst := float64(lim.Burst)
	if burst <= 0 {
		burst = math.Max(1, math.Ceil(lim.RatePerSec))
	}
	return &tokenBucket{rate: lim.RatePerSec, burst: burst}
}

// take consumes one token if available; otherwise it reports how long
// until a whole token will have refilled (the Retry-After hint).
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = b.burst
	} else {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// admItem is one queued submission: the job record plus everything the
// pump needs to hand it to the pool.
type admItem struct {
	job  *Job
	spec wsrt.JobSpec
}

// wfqTenant is one tenant's FIFO within a class.
type wfqTenant struct {
	name  string
	items []*admItem
}

// wfqClass is one priority class: per-tenant FIFOs drained round-robin,
// so within a class every tenant gets an equal share regardless of how
// many jobs each has queued.
type wfqClass struct {
	weight int
	credit int // smooth-weighted-round-robin state
	tens   map[string]*wfqTenant
	rr     []*wfqTenant // tenants with queued work, round-robin order
	rrNext int
	size   int
}

func (c *wfqClass) tenant(name string) *wfqTenant {
	t := c.tens[name]
	if t == nil {
		t = &wfqTenant{name: name}
		c.tens[name] = t
		c.rr = append(c.rr, t)
	}
	return t
}

func (c *wfqClass) push(it *admItem) {
	t := c.tenant(it.job.tenant)
	t.items = append(t.items, it)
	c.size++
}

// pushFront returns an item to the head of its tenant's FIFO — the pump
// uses it when the pool cannot take the job yet, so per-tenant FIFO order
// survives the round trip.
func (c *wfqClass) pushFront(it *admItem) {
	t := c.tenant(it.job.tenant)
	t.items = append([]*admItem{it}, t.items...)
	c.size++
}

// pop removes and returns the next item in round-robin tenant order. A
// tenant whose FIFO empties leaves the ring (and re-enters on its next
// push), so idle tenants cost nothing.
func (c *wfqClass) pop() *admItem {
	for i := 0; i < len(c.rr); i++ {
		idx := (c.rrNext + i) % len(c.rr)
		t := c.rr[idx]
		if len(t.items) == 0 {
			continue
		}
		it := t.items[0]
		t.items = t.items[1:]
		c.size--
		if len(t.items) == 0 {
			delete(c.tens, t.name)
			c.rr = append(c.rr[:idx], c.rr[idx+1:]...)
			if len(c.rr) == 0 {
				c.rrNext = 0
			} else {
				c.rrNext = idx % len(c.rr)
			}
		} else {
			c.rrNext = (idx + 1) % len(c.rr)
		}
		return it
	}
	return nil
}

// wfq is the weighted-fair admission queue: one wfqClass per priority,
// drained by smooth weighted round-robin. Producers are the Submit path;
// the single consumer is the service pump.
type wfq struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	classes  map[Priority]*wfqClass
	size     int
	closed   bool
}

func newWFQ() *wfq {
	q := &wfq{classes: make(map[Priority]*wfqClass, len(priorityOrder))}
	for _, p := range priorityOrder {
		q.classes[p] = &wfqClass{weight: priorityWeights[p], tens: make(map[string]*wfqTenant)}
	}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

func (q *wfq) push(it *admItem) {
	q.mu.Lock()
	q.classes[it.job.prio].push(it)
	q.size++
	q.mu.Unlock()
	q.nonEmpty.Signal()
}

func (q *wfq) pushFront(it *admItem) {
	q.mu.Lock()
	q.classes[it.job.prio].pushFront(it)
	q.size++
	q.mu.Unlock()
	q.nonEmpty.Signal()
}

// pop blocks until an item is available and returns it, choosing the
// class by smooth weighted round-robin and the tenant within it by plain
// round-robin. After close it keeps returning queued items until the
// queue is empty, then reports ok == false — the pump drains the backlog
// (retiring each job) before exiting.
func (q *wfq) pop() (it *admItem, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	var best *wfqClass
	total := 0
	for _, p := range priorityOrder {
		c := q.classes[p]
		if c.size == 0 {
			continue
		}
		c.credit += c.weight
		total += c.weight
		if best == nil || c.credit > best.credit {
			best = c
		}
	}
	best.credit -= total
	q.size--
	return best.pop(), true
}

// popBack removes the item that would be served last: the tail of a tenant
// FIFO in the lowest-priority class with queued work. The cluster tier
// extracts here — shedding the work that would wait longest keeps a
// forward from stealing an interactive job out from under its SLO.
func (c *wfqClass) popBack() *admItem {
	for i := len(c.rr) - 1; i >= 0; i-- {
		t := c.rr[i]
		if len(t.items) == 0 {
			continue
		}
		it := t.items[len(t.items)-1]
		t.items = t.items[:len(t.items)-1]
		c.size--
		if len(t.items) == 0 {
			delete(c.tens, t.name)
			c.rr = append(c.rr[:i], c.rr[i+1:]...)
			if len(c.rr) == 0 {
				c.rrNext = 0
			} else {
				c.rrNext %= len(c.rr)
			}
		}
		return it
	}
	return nil
}

// extractBack removes up to max items in reverse service order (lowest
// class first, tenant-FIFO tails first). It never blocks; an empty queue
// returns nil.
func (q *wfq) extractBack(max int) []*admItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*admItem
	for len(out) < max && q.size > 0 {
		for i := len(priorityOrder) - 1; i >= 0; i-- {
			c := q.classes[priorityOrder[i]]
			if c.size == 0 {
				continue
			}
			if it := c.popBack(); it != nil {
				q.size--
				out = append(out, it)
				break
			}
		}
	}
	return out
}

// depth returns the number of queued items.
func (q *wfq) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// close wakes the consumer; pop then drains the remaining items.
func (q *wfq) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

// admissionBackoff is the pump's sleep before retrying a pool submission
// that reported a full staging queue: base doubling per attempt, with the
// shift clamped and the sleep capped. The clamp matters for correctness,
// not just politeness — a user-supplied base shifted by an unbounded
// attempt counter overflows time.Duration (shift ≥ 63 flips the sign) and
// a negative sleep turns the back-off loop into a spin.
func admissionBackoff(base time.Duration, attempt int) time.Duration {
	const maxSleep = 100 * time.Millisecond
	if base <= 0 {
		base = 500 * time.Microsecond
	}
	if base >= maxSleep {
		return maxSleep
	}
	if attempt > 20 {
		attempt = 20
	}
	d := base << attempt
	if d <= 0 || d > maxSleep {
		return maxSleep
	}
	return d
}
