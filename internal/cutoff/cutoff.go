// Package cutoff implements the two cut-off baselines of the paper's
// Figure 9. Both create Cilk-style tasks while the recursion depth is below
// a fixed cut-off and run plain recursion beyond it, so on unbalanced trees
// they starve: once the shallow tasks are consumed, the work hiding below
// the cut-off can never be stolen.
//
//   - Programmer: the cut-off depth is supplied by the programmer
//     (Options.Cutoff); below it the programmer also knows copying is
//     unnecessary, so the sequential part reuses the parent workspace with
//     move undo.
//   - Library: the runtime picks ⌈log2 N⌉ itself, but — as the paper notes —
//     "the cost of workspace copying cannot be reduced": a library transform
//     cannot prove the workspace private, so every child below the cut-off
//     still gets an allocate-and-copy.
package cutoff

import (
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// Variant selects which Figure 9 baseline an Engine is.
type Variant int

const (
	// Programmer is the user-specified cut-off with hand-optimised
	// (copy-free) sequential execution below it.
	Programmer Variant = iota
	// Library is the runtime-chosen cut-off with workspace copying intact.
	Library
)

// Engine is a cut-off strategy scheduler.
type Engine struct {
	variant Variant
}

// NewProgrammer returns the Cutoff-programmer baseline.
func NewProgrammer() *Engine { return &Engine{variant: Programmer} }

// NewLibrary returns the Cutoff-library baseline.
func NewLibrary() *Engine { return &Engine{variant: Library} }

// Name implements sched.Engine.
func (e *Engine) Name() string {
	if e.variant == Library {
		return "cutoff-library"
	}
	return "cutoff-programmer"
}

// Run implements sched.Engine.
func (e *Engine) Run(p sched.Program, opt sched.Options) (sched.Result, error) {
	return wsrt.Run(p, opt, e.NewExec(opt.WorkersOrDefault(), opt), e.Name())
}

// NewExec implements wsrt.PoolEngine.
func (e *Engine) NewExec(n int, opt sched.Options) wsrt.Engine {
	cut := opt.Cutoff
	if e.variant == Library || cut <= 0 {
		cut = sched.LogCutoff(n)
	}
	return &exec{variant: e.variant, cutoff: cut}
}

type exec struct {
	variant Variant
	cutoff  int
}

// Root implements wsrt.Engine.
func (x *exec) Root(w *wsrt.Worker) (int64, bool) {
	return x.node(w, nil, w.Prog().Root(), 0)
}

// Resume implements wsrt.Engine.
func (x *exec) Resume(w *wsrt.Worker, f *wsrt.Frame) (int64, bool) {
	return x.loop(w, f, f.PC, f.Sum)
}

func (x *exec) node(w *wsrt.Worker, parent *wsrt.Frame, ws sched.Workspace, depth int) (int64, bool) {
	if depth >= x.cutoff {
		return x.sequential(w, ws, depth), true
	}
	w.BeginNode(ws, depth)
	w.ChargeTask()
	if v, term := w.Prog().Terminal(ws, depth); term {
		return v, true
	}
	f := w.NewFrame(parent, ws, depth, depth, wsrt.KindFast)
	v, completed := x.loop(w, f, 0, 0)
	if completed {
		w.FreeFrame(f) // completed inline: the frame is dead and solely ours
	}
	return v, completed
}

func (x *exec) loop(w *wsrt.Worker, f *wsrt.Frame, pc int, sum int64) (int64, bool) {
	prog := w.Prog()
	ws, depth := f.WS, f.Depth
	n := prog.Moves(ws, depth)
	for m := pc; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		childWS := w.Clone(ws)
		prog.Undo(ws, depth, m)
		f.PC, f.Sum = m+1, sum
		w.Push(f)
		v, completed := x.node(w, f, childWS, depth+1)
		if !completed {
			return 0, false
		}
		if _, ok := w.Pop(); !ok {
			w.Deposit(f, v)
			return 0, false
		}
		sum += v
	}
	total, out := f.Sync(sum)
	if out == wsrt.SyncSuspended {
		w.Suspend(f)
		return 0, false
	}
	return total, true
}

// sequential is the below-cut-off execution. Neither variant creates tasks
// here, so nothing below the cut-off is stealable — the source of the
// starvation Figure 9 demonstrates.
func (x *exec) sequential(w *wsrt.Worker, ws sched.Workspace, depth int) int64 {
	if x.variant == Programmer {
		return sched.EvalSequentialStop(w.Prog(), ws, depth, w.Costs(), w.Proc, &w.Stats, w.Rt().Stop())
	}
	return x.seqCopy(w, ws, depth)
}

// seqCopy is the Library variant's sequential recursion: still one
// allocate-and-copy per child, because a library cut-off cannot know the
// workspace could be shared and undone.
func (x *exec) seqCopy(w *wsrt.Worker, ws sched.Workspace, depth int) int64 {
	w.BeginNode(ws, depth)
	prog := w.Prog()
	if v, term := prog.Terminal(ws, depth); term {
		return v
	}
	var sum int64
	n := prog.Moves(ws, depth)
	for m := 0; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		childWS := w.Clone(ws)
		prog.Undo(ws, depth, m)
		sum += x.seqCopy(w, childWS, depth+1)
	}
	return sum
}
