package cutoff

import (
	"fmt"
	"testing"

	"adaptivetc/internal/sched"
)

// spine hides most of the work below the cut-off: a chain of the given
// length where every node also has a small bushy side subtree.
type spine struct{ length, bushHeight int }

type spineWS struct{ stack []int32 }

func (w *spineWS) Clone() sched.Workspace {
	return &spineWS{stack: append([]int32(nil), w.stack...)}
}
func (w *spineWS) Bytes() int { return 48 }

// encoding: values ≥ 0 are spine positions; values < 0 encode remaining
// bush height -v-1.
func (p spine) Name() string          { return fmt.Sprintf("spine(%d,%d)", p.length, p.bushHeight) }
func (p spine) Root() sched.Workspace { return &spineWS{stack: []int32{0}} }
func (p spine) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*spineWS)
	top := s.stack[len(s.stack)-1]
	if top >= 0 && int(top) >= p.length {
		return 1, true
	}
	if top < 0 && int(-top-1) == 0 {
		return 1, true
	}
	return 0, false
}
func (p spine) Moves(sched.Workspace, int) int { return 2 }
func (p spine) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*spineWS)
	top := s.stack[len(s.stack)-1]
	var child int32
	if top >= 0 {
		if m == 0 {
			child = top + 1 // continue the spine
		} else {
			child = int32(-p.bushHeight - 1) // enter a bush
		}
	} else {
		child = top + 1 // descend the bush (height decreases)
	}
	s.stack = append(s.stack, child)
	return true
}
func (p spine) Undo(w sched.Workspace, depth, m int) {
	s := w.(*spineWS)
	s.stack = s.stack[:len(s.stack)-1]
}

func serialOf(t *testing.T, p sched.Program) sched.Result {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValuesBothVariants(t *testing.T) {
	p := spine{length: 300, bushHeight: 5}
	want := serialOf(t, p).Value
	for _, e := range []*Engine{NewProgrammer(), NewLibrary()} {
		for _, workers := range []int{1, 2, 4, 8} {
			opt := sched.Options{Workers: workers, Cutoff: 4, Seed: int64(workers)}
			res, err := e.Run(p, opt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want {
				t.Errorf("%s P=%d: %d, want %d", e.Name(), workers, res.Value, want)
			}
		}
	}
}

func TestNoTasksBelowCutoff(t *testing.T) {
	p := spine{length: 100, bushHeight: 4}
	res, err := NewProgrammer().Run(p, sched.Options{Workers: 4, Cutoff: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes above depth 3 in this program: at most 2^0+2^1+2^2 = 7.
	if res.Stats.TasksCreated > 7 {
		t.Errorf("created %d tasks with cutoff 3, want ≤ 7", res.Stats.TasksCreated)
	}
}

func TestLibraryStillCopiesBelowCutoff(t *testing.T) {
	p := spine{length: 60, bushHeight: 4}
	prog, err := NewProgrammer().Run(p, sched.Options{Workers: 2, Cutoff: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := NewLibrary().Run(p, sched.Options{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lib.Stats.WorkspaceCopies <= prog.Stats.WorkspaceCopies {
		t.Errorf("library copies %d not above programmer copies %d — 'the cost of workspace copying cannot be reduced'",
			lib.Stats.WorkspaceCopies, prog.Stats.WorkspaceCopies)
	}
}

// TestStarvation: with the whole spine hidden below the cut-off, adding
// workers cannot help much — the defining weakness of Figure 9.
func TestStarvation(t *testing.T) {
	p := spine{length: 2000, bushHeight: 2}
	serial := serialOf(t, p)
	res2, err := NewProgrammer().Run(p, sched.Options{Workers: 2, Cutoff: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := NewProgrammer().Run(p, sched.Options{Workers: 8, Cutoff: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s2 := float64(serial.Makespan) / float64(res2.Makespan)
	s8 := float64(serial.Makespan) / float64(res8.Makespan)
	t.Logf("speedup: 2 workers %.2f, 8 workers %.2f", s2, s8)
	if s8 > s2*2 {
		t.Errorf("8 workers gave %.2f vs %.2f at 2 — cutoff should starve on a spine", s8, s2)
	}
}

func TestProgrammerCutoffFromOptions(t *testing.T) {
	p := spine{length: 40, bushHeight: 6}
	shallow, _ := NewProgrammer().Run(p, sched.Options{Workers: 2, Cutoff: 1, Seed: 2})
	deep, _ := NewProgrammer().Run(p, sched.Options{Workers: 2, Cutoff: 6, Seed: 2})
	if deep.Stats.TasksCreated <= shallow.Stats.TasksCreated {
		t.Errorf("cutoff 6 made %d tasks, cutoff 1 made %d", deep.Stats.TasksCreated, shallow.Stats.TasksCreated)
	}
}

func TestNames(t *testing.T) {
	if NewProgrammer().Name() != "cutoff-programmer" || NewLibrary().Name() != "cutoff-library" {
		t.Fatal("engine names changed")
	}
}
