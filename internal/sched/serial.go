package sched

import "adaptivetc/internal/vtime"

// ChargeNode advances proc by the modelled cost of visiting one node of p.
func ChargeNode(p Program, ws Workspace, depth int, c *Costs, proc vtime.Proc) {
	cost := c.Node
	if extra, ok := p.(Coster); ok {
		cost += extra.NodeCost(ws, depth)
	}
	proc.Advance(cost)
}

// EvalSequential evaluates the subtree rooted at ws with plain recursion and
// move undo — no tasks, no copies. It is both the serial baseline and the
// "sequence version" that every parallel engine falls back to. Counters are
// accumulated into st; proc's clock advances by the modelled work.
func EvalSequential(p Program, ws Workspace, depth int, c *Costs, proc vtime.Proc, st *Stats) int64 {
	return EvalSequentialStop(p, ws, depth, c, proc, st, nil)
}

// EvalSequentialStop is EvalSequential with a cancellation poll at every
// node: when stop fires it panics with Abort, unwinding to the caller's
// top-level recover. A nil stop costs one predicted branch per node, and
// the poll charges no virtual cost, so traces and makespans of un-cancelled
// runs are unchanged.
func EvalSequentialStop(p Program, ws Workspace, depth int, c *Costs, proc vtime.Proc, st *Stats, stop *Stop) int64 {
	stop.Check()
	st.Nodes++
	ChargeNode(p, ws, depth, c, proc)
	proc.Yield()
	if v, term := p.Terminal(ws, depth); term {
		return v
	}
	var sum int64
	n := p.Moves(ws, depth)
	for m := 0; m < n; m++ {
		proc.Advance(c.Move)
		if !p.Apply(ws, depth, m) {
			continue
		}
		sum += EvalSequentialStop(p, ws, depth+1, c, proc, st, stop)
		p.Undo(ws, depth, m)
	}
	return sum
}

// EvalFirstSolution evaluates the subtree rooted at ws depth-first and
// returns the first nonzero terminal value it meets, abandoning the rest of
// the tree — the deterministic serial semantics of a first-solution run
// (Options.FirstSolution). found is false when the subtree holds no nonzero
// leaf; the traversal then visited every node, exactly like EvalSequential.
// Node and move costs are charged identically to EvalSequentialStop so
// makespans stay comparable.
func EvalFirstSolution(p Program, ws Workspace, depth int, c *Costs, proc vtime.Proc, st *Stats, stop *Stop) (value int64, found bool) {
	stop.Check()
	st.Nodes++
	ChargeNode(p, ws, depth, c, proc)
	proc.Yield()
	if v, term := p.Terminal(ws, depth); term {
		return v, v != 0
	}
	n := p.Moves(ws, depth)
	for m := 0; m < n; m++ {
		proc.Advance(c.Move)
		if !p.Apply(ws, depth, m) {
			continue
		}
		v, ok := EvalFirstSolution(p, ws, depth+1, c, proc, st, stop)
		p.Undo(ws, depth, m)
		if ok {
			return v, true
		}
	}
	return 0, false
}

// Serial runs the program on one worker with no scheduling machinery at all.
// It is the baseline every speedup in the paper (and here) is computed
// against.
type Serial struct{}

// Name implements Engine.
func (Serial) Name() string { return "serial" }

// Run implements Engine. Options.Ctx is honoured: cancellation aborts the
// recursion at the next node visit and is reported as the run's error.
func (Serial) Run(p Program, opt Options) (res Result, err error) {
	costs := opt.CostsOrDefault()
	var st Stats
	var value int64
	stop := &Stop{}
	release := WatchContext(opt.Ctx, stop)
	defer release()
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(Abort)
			if !ok {
				panic(r)
			}
			res = Result{Workers: 1, Engine: "serial", Program: p.Name(), Stats: st}
			err = ab.Err
		}
	}()
	plat := opt.PlatformOrDefault()
	makespan := plat.Run(1, func(proc vtime.Proc) {
		start := proc.Now()
		if opt.FirstSolution {
			value, _ = EvalFirstSolution(p, p.Root(), 0, &costs, proc, &st, stop)
		} else {
			value = EvalSequentialStop(p, p.Root(), 0, &costs, proc, &st, stop)
		}
		st.WorkerTime += proc.Now() - start
	})
	st.WorkTime = st.WorkerTime
	return Result{
		Value:    value,
		Makespan: makespan,
		Workers:  1,
		Engine:   "serial",
		Program:  p.Name(),
		Stats:    st,
	}, nil
}
