package sched

import (
	"fmt"
	"testing"

	"adaptivetc/internal/vtime"
)

// binTree is a minimal in-package test program: a perfect binary tree of
// the given height whose leaves are each worth 1.
type binTree struct{ height int }

type binWS struct{ depth int }

func (w *binWS) Clone() Workspace { c := *w; return &c }
func (w *binWS) Bytes() int       { return 16 }

func (b binTree) Name() string    { return fmt.Sprintf("bintree(%d)", b.height) }
func (b binTree) Root() Workspace { return &binWS{} }
func (b binTree) Terminal(w Workspace, depth int) (int64, bool) {
	if depth == b.height {
		return 1, true
	}
	return 0, false
}
func (b binTree) Moves(Workspace, int) int { return 2 }
func (b binTree) Apply(w Workspace, depth, m int) bool {
	w.(*binWS).depth++
	return true
}
func (b binTree) Undo(w Workspace, depth, m int) { w.(*binWS).depth-- }

func TestLogCutoff(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := LogCutoff(n); got != want {
			t.Errorf("LogCutoff(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.WorkersOrDefault() != 1 {
		t.Error("default workers != 1")
	}
	if o.MaxStolenNumOrDefault() != 20 {
		t.Error("default max_stolen_num != 20 (the paper's value)")
	}
	if o.Fast2MultiplierOrDefault() != 2 {
		t.Error("default fast_2 multiplier != 2")
	}
	if o.DequeCapacityOrDefault() != 8192 {
		t.Error("default deque capacity != 8192")
	}
	if got := o.CostsOrDefault(); got != DefaultCosts() {
		t.Error("default costs mismatch")
	}
	if o.CutoffFor(8) != 3 {
		t.Error("CutoffFor(8) != 3")
	}
	o.ForceCutoff, o.Cutoff = true, 7
	if o.CutoffFor(8) != 7 {
		t.Error("ForceCutoff ignored")
	}
	if o.PlatformOrDefault() == nil {
		t.Error("nil default platform")
	}
}

func TestSerialEngine(t *testing.T) {
	res, err := Serial{}.Run(binTree{height: 6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 64 {
		t.Fatalf("value = %d, want 64", res.Value)
	}
	if res.Stats.Nodes != 127 {
		t.Fatalf("nodes = %d, want 127", res.Stats.Nodes)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	// Virtual cost: 127 nodes × Node + 63 interiors × 2 moves × Move.
	c := DefaultCosts()
	want := 127*c.Node + 126*c.Move
	if res.Makespan != want {
		t.Fatalf("makespan = %d, want %d", res.Makespan, want)
	}
}

func TestSerialCosterCharged(t *testing.T) {
	p := costedTree{binTree{height: 3}}
	res, err := Serial{}.Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultCosts()
	base := 15*c.Node + 14*c.Move
	if res.Makespan != base+15*1000 {
		t.Fatalf("makespan = %d, want %d (coster not charged?)", res.Makespan, base+15*1000)
	}
}

type costedTree struct{ binTree }

func (costedTree) NodeCost(Workspace, int) int64 { return 1000 }

func TestAnalyze(t *testing.T) {
	st := Analyze(binTree{height: 4}, 0)
	if st.Nodes != 31 || st.Leaves != 16 || st.Depth != 4 {
		t.Fatalf("got %+v", st)
	}
	if len(st.Depth1) != 2 || st.Depth1[0] != 15 || st.Depth1[1] != 15 {
		t.Fatalf("depth-1 sizes = %v, want [15 15]", st.Depth1)
	}
	pct := st.Depth1Percent()
	if pct[0] < 48 || pct[0] > 49 {
		t.Fatalf("depth-1 percent = %v", pct)
	}
}

func TestAnalyzeTruncation(t *testing.T) {
	st := Analyze(binTree{height: 20}, 1000)
	if !st.Truncated {
		t.Fatal("expected truncation")
	}
	if st.Nodes > 1001 {
		t.Fatalf("visited %d nodes past the cap", st.Nodes)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Nodes: 1, Steals: 2, MaxDequeDepth: 5, WorkTime: 10}
	b := Stats{Nodes: 3, Steals: 4, MaxDequeDepth: 3, WorkTime: 7}
	a.Add(b)
	if a.Nodes != 4 || a.Steals != 6 || a.WorkTime != 17 {
		t.Fatalf("bad sum: %+v", a)
	}
	if a.MaxDequeDepth != 5 {
		t.Fatalf("MaxDequeDepth = %d, want max not sum", a.MaxDequeDepth)
	}
}

func TestEvalSequentialMatchesSerial(t *testing.T) {
	p := binTree{height: 5}
	var st Stats
	c := DefaultCosts()
	var got int64
	(&vtime.Sim{}).Run(1, func(proc vtime.Proc) {
		got = EvalSequential(p, p.Root(), 0, &c, proc, &st)
	})
	if got != 32 {
		t.Fatalf("value = %d, want 32", got)
	}
	if st.Nodes != 63 {
		t.Fatalf("nodes = %d, want 63", st.Nodes)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Engine: "cilk", Program: "x", Workers: 2, Value: 9, Makespan: 1e6}
	if s := r.String(); s == "" {
		t.Fatal("empty string")
	}
}
