// Cooperative cancellation: a run-scoped stop flag that workers poll at
// their scheduling points (thief loop, node entry, special-task join wait)
// and a panic sentinel that unwinds a worker's recursion back to its top
// level, where the runtime converts it into the run's failure.
//
// The flag is deliberately dumb — one atomic bool plus a first-cause slot —
// so that polling it costs a single predicted load on the zero-allocation
// hot path, and so that it works identically under the deterministic Sim
// platform (where a context watcher goroutine lives outside virtual time)
// and under Real goroutines.
package sched

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSolutionFound is the stop cause of a first-solution run whose winner
// claimed a solution: the remaining workers unwind through the same Abort
// path a cancellation uses, but the run itself completed successfully. The
// wsrt runtime treats an Abort carrying this cause as a clean finish, not a
// failure.
var ErrSolutionFound = errors.New("sched: first solution found")

// Stop is a cooperative stop request shared by all workers of one run (or
// one resident-pool job). Signal may be called from any goroutine — a
// context watcher, a test, another worker — and is idempotent: the first
// cause wins. Workers observe it with Stopped/Check at their poll points.
// All methods are safe on a nil receiver, which behaves as "never stopped".
type Stop struct {
	fired atomic.Bool
	cause atomic.Pointer[stopCause]
}

type stopCause struct{ err error }

// Signal requests the run to stop with the given cause. The first call
// wins; later calls are no-ops. A nil err is recorded as
// context.Canceled.
func (s *Stop) Signal(err error) {
	if s == nil {
		return
	}
	if err == nil {
		err = context.Canceled
	}
	if s.cause.CompareAndSwap(nil, &stopCause{err: err}) {
		s.fired.Store(true)
	}
}

// Stopped reports whether a stop has been requested. This is the poll-point
// fast path: one atomic load (plus a nil check).
func (s *Stop) Stopped() bool {
	return s != nil && s.fired.Load()
}

// Cause returns the first Signal's error, or nil if no stop was requested.
func (s *Stop) Cause() error {
	if s == nil {
		return nil
	}
	if c := s.cause.Load(); c != nil {
		return c.err
	}
	return nil
}

// Check panics with Abort when a stop has been requested, unwinding the
// calling worker to its top-level recover. It is the standard poll point.
func (s *Stop) Check() {
	if s.Stopped() {
		panic(Abort{Err: s.Cause()})
	}
}

// Abort is the panic value scheduler internals use to unwind a worker's
// recursion: deque overflow, cooperative cancellation, deadline expiry.
// The worker's top level (inside the platform body) recovers it and records
// the error as the run's failure; it never escapes a Run call.
type Abort struct{ Err error }

// Error implements error so a stray Abort still prints usefully.
func (a Abort) Error() string {
	if a.Err == nil {
		return "sched: run aborted"
	}
	return a.Err.Error()
}

// WatchContext connects ctx to stop: when ctx is cancelled or its deadline
// expires, stop is signalled with the context's cause. It returns a release
// function that must be called when the run finishes to reclaim the watcher
// goroutine. A nil ctx, a ctx that can never be cancelled, or a nil stop
// costs nothing and returns a no-op release.
func WatchContext(ctx context.Context, stop *Stop) (release func()) {
	if ctx == nil || ctx.Done() == nil || stop == nil {
		return func() {}
	}
	// A context that is already done is signalled synchronously, so a run
	// submitted with a dead context aborts at its very first poll point
	// instead of racing the watcher goroutine against worker start-up.
	if ctx.Err() != nil {
		stop.Signal(context.Cause(ctx))
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			stop.Signal(context.Cause(ctx))
		case <-quit:
		}
	}()
	return func() { close(quit) }
}
