package sched

import "fmt"

// TreeStats describes the shape of a program's search tree, the quantities
// the paper reports in Figure 8 and Table 3: total size, leaf count, depth,
// and the share of the whole held by each depth-1 subtree.
type TreeStats struct {
	Program   string
	Nodes     int64
	Leaves    int64
	Depth     int
	Depth1    []int64 // size of each depth-1 subtree (absent children omitted? kept as 0)
	Truncated bool    // the MaxNodes cap was hit; numbers are lower bounds
}

// Depth1Percent returns each depth-1 subtree's share of the whole, in the
// format of Table 3's last column.
func (t TreeStats) Depth1Percent() []float64 {
	out := make([]float64, len(t.Depth1))
	for i, s := range t.Depth1 {
		out[i] = 100 * float64(s) / float64(t.Nodes)
	}
	return out
}

func (t TreeStats) String() string {
	return fmt.Sprintf("%s: nodes=%d leaves=%d depth=%d depth1=%v%%",
		t.Program, t.Nodes, t.Leaves, t.Depth, t.Depth1Percent())
}

// Analyze walks p's search tree sequentially and reports its shape. If
// maxNodes > 0 the walk aborts once that many nodes have been visited and
// marks the result truncated.
func Analyze(p Program, maxNodes int64) TreeStats {
	st := TreeStats{Program: p.Name()}
	ws := p.Root()
	var walk func(depth int) int64
	walk = func(depth int) int64 {
		if st.Truncated {
			return 0
		}
		st.Nodes++
		if maxNodes > 0 && st.Nodes > maxNodes {
			st.Truncated = true
			return 0
		}
		if depth > st.Depth {
			st.Depth = depth
		}
		if _, term := p.Terminal(ws, depth); term {
			st.Leaves++
			return 1
		}
		size := int64(1)
		n := p.Moves(ws, depth)
		anyChild := false
		for m := 0; m < n; m++ {
			if !p.Apply(ws, depth, m) {
				continue
			}
			anyChild = true
			sub := walk(depth + 1)
			p.Undo(ws, depth, m)
			if depth == 0 {
				st.Depth1 = append(st.Depth1, sub)
			}
			size += sub
		}
		if !anyChild {
			st.Leaves++ // dead end: no legal moves
		}
		return size
	}
	walk(0)
	return st
}
