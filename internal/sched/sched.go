// Package sched defines the vocabulary shared by every scheduling engine in
// this repository: the Program model that task functions are written
// against, workspaces (the paper's taskprivate data), run options, results,
// statistics, and the cost model that drives virtual-time execution.
//
// Every benchmark in the paper is a backtracking enumeration whose task
// function has the shape
//
//	value(ws) = leaf value, or Σ over legal moves m of value(apply(ws, m)),
//
// with sync as the final statement before returning the sum. A Program
// expresses exactly that, and a suspended task frame is the tuple
// (workspace, depth, next-move index, partial sum) — the same "saved PC plus
// live variables" that the AdaptiveTC compiler's slow version restores.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"adaptivetc/internal/faults"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/vtime"
)

// Workspace is a task's private working state — the paper's taskprivate
// data (chessboard, Sudoku grid, …). Engines call Clone when and only when
// the strategy under test requires a workspace copy, so the number and size
// of Clone calls is itself a measured quantity.
type Workspace interface {
	// Clone returns an independent deep copy. The copy must be safe to
	// mutate concurrently with the original.
	Clone() Workspace
	// Bytes reports the copied payload size, used to charge copy cost.
	Bytes() int
}

// Reusable is an optional Workspace extension that supports copying in
// place, letting the Cilk-SYNCHED engine reuse pooled workspaces ("allow
// some child tasks to reuse the same memory space") while still paying the
// byte-copy cost.
type Reusable interface {
	Workspace
	// CopyFrom overwrites the receiver with src's state. src has the same
	// dynamic type as the receiver.
	CopyFrom(src Workspace)
}

// Program is a recursive task function in the paper's spawn/sync shape.
// Implementations must be safe for concurrent use on *distinct* workspaces;
// all per-node mutable state lives in the Workspace.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Root returns a fresh root workspace. Each call returns an
	// independent workspace positioned at the root node.
	Root() Workspace
	// Terminal reports whether the node reached by ws at the given depth is
	// a leaf, and if so its value.
	Terminal(ws Workspace, depth int) (value int64, terminal bool)
	// Moves returns the number of candidate moves at this node. Candidates
	// may individually be illegal (Apply returns false).
	Moves(ws Workspace, depth int) int
	// Apply plays candidate move m, mutating ws, and reports whether the
	// move is legal. When it returns false it must leave ws unchanged.
	Apply(ws Workspace, depth, m int) bool
	// Undo reverses a successful Apply of move m at this depth.
	Undo(ws Workspace, depth, m int)
}

// Coster is an optional Program extension: per-node extra work in
// nanoseconds, charged on top of Costs.Node. The synthetic unbalanced trees
// use it to model the paper's "execution time of each node set to the
// average time of the task in the benchmarks".
type Coster interface {
	NodeCost(ws Workspace, depth int) int64
}

// Costs models the price of primitive scheduler actions in nanoseconds.
// Virtual-time runs advance worker clocks by these amounts; real-time runs
// ignore them (the actions themselves take real time). The defaults are
// calibrated to the magnitudes a C runtime on the paper's Xeon E5520 pays;
// see DESIGN.md §2.
type Costs struct {
	Node           int64 // base cost of visiting a node (terminal test etc.)
	Move           int64 // per candidate move (legality check, apply+undo)
	Spawn          int64 // creating a task: frame allocation + initialisation
	Push           int64 // deque push
	Pop            int64 // deque pop (THE protocol fast path)
	Steal          int64 // one steal attempt, successful or not
	CopyBase       int64 // workspace copy: fixed part (allocation)
	CopyBytesPerNs int64 // workspace copy throughput: bytes copied per ns (memcpy-like)
	PooledBase     int64 // workspace copy into a pooled buffer (SYNCHED)
	Poll           int64 // Tascell per-node polling-flag check
	FlagPoll       int64 // one read of the local need_task flag (check version)
	NestedCall     int64 // Tascell per-node nested-function bookkeeping
	TascellMove    int64 // Tascell per-move workspace-reachability tax (Bytes>0)
	WaitTick       int64 // granularity of busy-wait loops at joins
	Respond        int64 // Tascell: backtrack + package one task for a thief
}

// DefaultCosts returns the calibrated default cost model.
func DefaultCosts() Costs {
	return Costs{
		Node:           15,
		Move:           8,
		Spawn:          30,
		Push:           15,
		Pop:            15,
		Steal:          400,
		CopyBase:       60,
		CopyBytesPerNs: 3,
		PooledBase:     15,
		Poll:           1,
		FlagPoll:       2,
		NestedCall:     1,
		TascellMove:    4,
		WaitTick:       2000,
		Respond:        800,
	}
}

// Options configures a run.
type Options struct {
	// Workers is the number of threads N. Zero means 1.
	Workers int
	// Ctx, when non-nil, cancels the run cooperatively: workers observe
	// cancellation (or deadline expiry) at their poll points — the thief
	// loop, node entry, sequential recursion, the special-task join wait —
	// and the run aborts with the context's cause as its error. Nil means
	// the run cannot be cancelled from outside. Cancellation is observed by
	// the wsrt-based engines and the serial engine; Tascell ignores it.
	Ctx context.Context
	// Platform executes the workers. Nil means a deterministic Sim.
	Platform vtime.Platform
	// Costs is the virtual cost model. The zero value means DefaultCosts.
	Costs *Costs
	// Cutoff overrides an engine's cutoff depth where meaningful
	// (Cutoff-programmer takes it from here; AdaptiveTC and Cutoff-library
	// compute ⌈log2 N⌉ themselves and ignore it unless ForceCutoff).
	Cutoff int
	// ForceCutoff makes AdaptiveTC use Options.Cutoff instead of ⌈log2 N⌉
	// (used by ablation benches).
	ForceCutoff bool
	// MaxStolenNum is the paper's max_stolen_num threshold before a
	// victim's need_task flag is raised. Zero means 20.
	MaxStolenNum int
	// Fast2Multiplier scales the fast_2 cutoff relative to the fast cutoff.
	// Zero means the paper's 2.
	Fast2Multiplier int
	// DequeCapacity bounds each worker's deque (or sets the initial size
	// of a growable one). Zero means 8192 entries.
	DequeCapacity int
	// GrowableDeque replaces the fixed-size THE deque with one that
	// doubles on overflow (the Chase–Lev / Michael-et-al. remedy the
	// paper's related work cites). Fixed is the default because the paper
	// treats overflow-proneness as an observable property.
	GrowableDeque bool
	// RelaxedDeque replaces the THE deque with the lock-reduced variant
	// whose owner Push/Pop avoid the owner lock outside the conflict window
	// (after Castañeda & Piña's relaxed work-stealing queues). Implies a
	// growable buffer; takes precedence over GrowableDeque. Runs using it
	// should be checked with the multiplicity-tolerant invariant checker
	// (trace.CheckMultiplicity) rather than the strict one.
	RelaxedDeque bool
	// StealPolicy names the victim-selection/steal-amount strategy of the
	// thief loop: "random" (default), "steal-half", "richest-first" or
	// "shard-local". Empty means "random", the paper's baseline. Unknown
	// names fall back to "random" at the runtime layer; front ends validate
	// earlier.
	StealPolicy string
	// Profile enables the per-phase time breakdown (working, copying,
	// deque management, polling, waiting). It costs a little extra
	// bookkeeping, so performance figures leave it off.
	Profile bool
	// Seed fixes the random victim-selection sequence. Zero means 1.
	Seed int64
	// VirtualLimit aborts a Sim run whose virtual clock passes this bound
	// (livelock guard). Zero means 5 minutes of virtual time.
	VirtualLimit int64
	// Tracer, when non-nil, records every scheduler event of the run
	// (spawns, deque traffic, steals, deposits, need_task transitions) into
	// per-worker buffers for invariant checking or Chrome trace export.
	// The runtime re-Inits it at the start of the run, so one Recorder can
	// be reused across runs but never shared by concurrent ones. Nil (the
	// default) keeps the zero-allocation hot path: every recording site is
	// behind a single nil check.
	Tracer *trace.Recorder
	// Faults, when non-nil, injects the plan's deterministic fault streams
	// into the run: forced steal failures at the deques, stalls and panics
	// at node entry, delayed deposits, forced overflows. Combined with the
	// Sim platform the whole perturbed schedule is a pure function of the
	// seeds and replays byte-identically. Nil (the default) keeps the
	// zero-allocation hot path: every injection site is behind a single nil
	// check, exactly like Tracer. Observed by the wsrt-based engines.
	Faults *faults.Plan
	// FirstSolution switches the run to first-solution-wins semantics: the
	// first worker to evaluate a terminal node with a nonzero value claims
	// it as the run's Value, signals Stop with ErrSolutionFound, and the
	// siblings unwind at their next poll point. The run completes
	// successfully with the winner's leaf value (a witness the family can
	// verify); a run that exhausts the tree without a nonzero leaf completes
	// normally with Value 0. Observed by the wsrt-based engines and the
	// serial engine (which deterministically returns the first nonzero leaf
	// in depth-first order); Tascell ignores it.
	FirstSolution bool
}

// WorkersOrDefault returns the worker count, defaulting to 1.
func (o Options) WorkersOrDefault() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// CostsOrDefault returns the cost model, defaulting to DefaultCosts.
func (o Options) CostsOrDefault() Costs {
	if o.Costs != nil {
		return *o.Costs
	}
	return DefaultCosts()
}

// MaxStolenNumOrDefault returns max_stolen_num, defaulting to the paper's 20.
func (o Options) MaxStolenNumOrDefault() int {
	if o.MaxStolenNum <= 0 {
		return 20
	}
	return o.MaxStolenNum
}

// Fast2MultiplierOrDefault returns the fast_2 cutoff multiplier (paper: 2).
func (o Options) Fast2MultiplierOrDefault() int {
	if o.Fast2Multiplier <= 0 {
		return 2
	}
	return o.Fast2Multiplier
}

// DequeCapacityOrDefault returns the deque capacity, defaulting to 8192.
func (o Options) DequeCapacityOrDefault() int {
	if o.DequeCapacity <= 0 {
		return 8192
	}
	return o.DequeCapacity
}

// CutoffFor returns the cutoff the AdaptiveTC family should use: ⌈log2 N⌉
// unless ForceCutoff pins Options.Cutoff.
func (o Options) CutoffFor(workers int) int {
	if o.ForceCutoff {
		return o.Cutoff
	}
	return LogCutoff(workers)
}

// PlatformOrDefault returns the execution platform, defaulting to a
// deterministic Sim with a livelock guard.
func (o Options) PlatformOrDefault() vtime.Platform {
	if o.Platform != nil {
		return o.Platform
	}
	limit := o.VirtualLimit
	if limit == 0 {
		limit = int64(5 * time.Minute)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return &vtime.Sim{Seed: seed, Limit: limit}
}

// LogCutoff returns ⌈log2 n⌉, the paper's initial cutoff for n workers
// (depth of the recursive call tree beyond which no tasks are created).
func LogCutoff(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Stats aggregates counters and, when profiling, per-phase time across all
// workers of a run. Times are nanoseconds in the run's time base (virtual
// under Sim).
type Stats struct {
	Nodes           int64 // nodes visited
	TasksCreated    int64 // real tasks (frames) created
	FakeTasks       int64 // plain recursive calls standing in for spawns
	SpecialTasks    int64 // AdaptiveTC special tasks pushed
	Steals          int64 // successful steals
	StealFails      int64 // failed steal attempts
	Requests        int64 // Tascell task requests answered
	WorkspaceCopies int64
	WorkspaceBytes  int64 // bytes copied for workspaces
	Suspends        int64 // tasks suspended at a sync point
	Polls           int64 // need_task / request polls
	MaxDequeDepth   int64 // high-water mark over all deques

	// Per-phase time, populated when Options.Profile is set.
	WorkTime    int64 // executing program nodes
	CopyTime    int64 // workspace allocation + copying
	DequeTime   int64 // task creation + push/pop/steal bookkeeping
	PollTime    int64 // polling for requests / need_task
	WaitTime    int64 // waiting for children at joins (incl. special task)
	StealTime   int64 // thief time spent attempting steals
	RespondTime int64 // Tascell victim time packaging tasks for thieves
	WorkerTime  int64 // Σ over workers of total time from start to exit

	// QueueWait is the wall-clock time a resident-pool job spent in the
	// admission queue before its workers started (zero for batch runs).
	QueueWait int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Nodes += other.Nodes
	s.TasksCreated += other.TasksCreated
	s.FakeTasks += other.FakeTasks
	s.SpecialTasks += other.SpecialTasks
	s.Steals += other.Steals
	s.StealFails += other.StealFails
	s.Requests += other.Requests
	s.WorkspaceCopies += other.WorkspaceCopies
	s.WorkspaceBytes += other.WorkspaceBytes
	s.Suspends += other.Suspends
	s.Polls += other.Polls
	if other.MaxDequeDepth > s.MaxDequeDepth {
		s.MaxDequeDepth = other.MaxDequeDepth
	}
	s.WorkTime += other.WorkTime
	s.CopyTime += other.CopyTime
	s.DequeTime += other.DequeTime
	s.PollTime += other.PollTime
	s.WaitTime += other.WaitTime
	s.StealTime += other.StealTime
	s.RespondTime += other.RespondTime
	s.WorkerTime += other.WorkerTime
	s.QueueWait += other.QueueWait
}

// Result is the outcome of one run.
type Result struct {
	Value    int64 // the program's answer (e.g. number of solutions)
	Makespan int64 // ns: virtual under Sim, wall-clock under Real
	Workers  int
	Engine   string
	Program  string
	Stats    Stats
	// Shard lists the global ids of the resident-pool workers the job ran
	// on (nil for batch runs, which own every worker they start, and for
	// pool jobs that never started). Workers equals len(Shard) for a pool
	// job — the shard width, not the pool's total worker count.
	Shard []int `json:",omitempty"`
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s P=%d value=%d makespan=%.3fms tasks=%d steals=%d copies=%d",
		r.Engine, r.Program, r.Workers, r.Value,
		float64(r.Makespan)/1e6, r.Stats.TasksCreated, r.Stats.Steals, r.Stats.WorkspaceCopies)
}

// Engine is a scheduling strategy under test.
type Engine interface {
	// Name identifies the engine ("cilk", "tascell", "adaptivetc", …).
	Name() string
	// Run executes p to completion and returns the result.
	Run(p Program, opt Options) (Result, error)
}

// ErrDequeOverflow reports that a fixed-size deque filled up. The paper
// lists overflow-proneness as a Cilk weakness; engines surface it rather
// than resizing so the effect is observable.
var ErrDequeOverflow = errors.New("sched: deque overflow")
