package faults

import (
	"strings"
	"testing"
)

// Two injectors derived from the same plan, role and slot must make
// identical decision sequences — that is the replay contract.
func TestStreamDeterminism(t *testing.T) {
	p := New(Spec{Seed: 42, Stall: 0.3, Panic: 0.1, Overflow: 0.05, DepositDelay: 0.2})
	a := p.Worker(3)
	b := p.Worker(3)
	if a == nil || b == nil {
		t.Fatal("worker injector unexpectedly nil")
	}
	for i := 0; i < 10_000; i++ {
		if av, bv := a.StallNS(), b.StallNS(); av != bv {
			t.Fatalf("step %d: StallNS diverged: %d vs %d", i, av, bv)
		}
		if av, bv := a.PanicNow(), b.PanicNow(); av != bv {
			t.Fatalf("step %d: PanicNow diverged: %v vs %v", i, av, bv)
		}
		if av, bv := a.ForceOverflow(), b.ForceOverflow(); av != bv {
			t.Fatalf("step %d: ForceOverflow diverged: %v vs %v", i, av, bv)
		}
		if av, bv := a.DepositDelayNS(), b.DepositDelayNS(); av != bv {
			t.Fatalf("step %d: DepositDelayNS diverged: %d vs %d", i, av, bv)
		}
	}
}

// Distinct slots and distinct roles must not produce the same stream.
func TestStreamsIndependent(t *testing.T) {
	p := New(Spec{Seed: 7, Stall: 0.5, StealFail: 0.5})
	w0, w1 := p.Worker(0), p.Worker(1)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if (w0.StallNS() > 0) == (w1.StallNS() > 0) {
			same++
		}
	}
	if same == n {
		t.Fatalf("worker streams 0 and 1 fully correlated over %d draws", n)
	}
	// Worker vs deque role on the same slot.
	d0 := p.DequeHook(0)
	w0b := p.Worker(0)
	same = 0
	for i := 0; i < n; i++ {
		if d0() == (w0b.StallNS() > 0) {
			same++
		}
	}
	if same == n {
		t.Fatalf("deque and worker streams for slot 0 fully correlated over %d draws", n)
	}
}

// Rates at the extremes must be exact, not probabilistic.
func TestRateExtremes(t *testing.T) {
	always := New(Spec{Seed: 3, Panic: 1}).Worker(0)
	for i := 0; i < 100; i++ {
		if !always.PanicNow() {
			t.Fatalf("draw %d: rate 1.0 did not fire", i)
		}
	}
	if in := New(Spec{Seed: 3, Panic: 1}).Worker(1); in == nil {
		t.Fatal("panic-only plan returned nil worker injector")
	}
	// Zero-rate faults never fire even on an enabled plan.
	off := New(Spec{Seed: 3, Panic: 1}).Worker(0)
	for i := 0; i < 100; i++ {
		if off.ForceOverflow() || off.StallNS() != 0 || off.DepositDelayNS() != 0 {
			t.Fatalf("draw %d: zero-rate fault fired", i)
		}
	}
}

func TestBurstSemantics(t *testing.T) {
	in := New(Spec{Seed: 11, StealFail: 0.05, StealFailBurst: 5}).injector(roleDeque, 0)
	// Find the first firing, then expect exactly burst-1 forced follow-ups
	// (the follow-ups consume no randomness, so they are unconditional).
	for i := 0; i < 10_000; i++ {
		if in.FailSteal() {
			for j := 1; j < 5; j++ {
				if !in.FailSteal() {
					t.Fatalf("burst broke at follow-up %d", j)
				}
			}
			if in.burstLeft != 0 {
				t.Fatalf("burst not exhausted: %d left", in.burstLeft)
			}
			return
		}
	}
	t.Fatal("steal-fail rate 0.05 never fired in 10k draws")
}

func TestStarveBurst(t *testing.T) {
	in := New(Spec{Seed: 13, Starve: 1, StarveBurst: 3}).ShardAlloc()
	if in == nil {
		t.Fatal("starve plan returned nil shard injector")
	}
	for i := 0; i < 9; i++ {
		if !in.StarveShard() {
			t.Fatalf("draw %d: starve rate 1.0 did not fire", i)
		}
	}
}

// A nil plan and a zero spec must hand out nil hooks so the runtime's
// nil-check fast path stays on.
func TestOffMeansNil(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Worker(0) != nil || nilPlan.DequeHook(0) != nil ||
		nilPlan.Admission() != nil || nilPlan.ShardAlloc() != nil {
		t.Fatal("nil plan handed out a non-nil hook")
	}
	if nilPlan.Enabled() {
		t.Fatal("nil plan reports enabled")
	}
	zero := New(Spec{Seed: 9})
	if zero.Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if zero.Worker(0) != nil || zero.DequeHook(0) != nil ||
		zero.Admission() != nil || zero.ShardAlloc() != nil {
		t.Fatal("zero spec handed out a non-nil hook")
	}
	// A steal-only plan must not allocate worker injectors, and vice versa.
	stealOnly := New(Spec{Seed: 9, StealFail: 0.5})
	if stealOnly.Worker(0) != nil {
		t.Fatal("steal-only plan handed out a worker injector")
	}
	if stealOnly.DequeHook(0) == nil {
		t.Fatal("steal-only plan lost its deque hook")
	}
	panicOnly := New(Spec{Seed: 9, Panic: 0.5})
	if panicOnly.DequeHook(0) != nil {
		t.Fatal("panic-only plan handed out a deque hook")
	}
}

func TestDefaults(t *testing.T) {
	p := New(Spec{Stall: 0.1, DepositDelay: 0.1})
	s := p.Spec()
	if s.Seed != 1 {
		t.Fatalf("zero seed not defaulted: %d", s.Seed)
	}
	if s.StallNS <= 0 || s.DepositDelayNS <= 0 {
		t.Fatalf("durations not defaulted: stall=%d deposit=%d", s.StallNS, s.DepositDelayNS)
	}
	if s.StealFailBurst != 1 || s.StarveBurst != 1 {
		t.Fatalf("bursts not defaulted: %d %d", s.StealFailBurst, s.StarveBurst)
	}
}

func TestScenarios(t *testing.T) {
	names := Scenarios()
	if len(names) == 0 {
		t.Fatal("no scenarios")
	}
	for _, n := range names {
		s, err := Scenario(n, 99)
		if err != nil {
			t.Fatalf("Scenario(%q): %v", n, err)
		}
		if s.Seed != 99 {
			t.Fatalf("Scenario(%q) dropped the seed", n)
		}
		if !s.enabled() {
			t.Fatalf("scenario %q injects nothing", n)
		}
	}
	if _, err := Scenario("no-such", 1); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("bad scenario name not rejected: %v", err)
	}
}

// Link and partition streams follow the same replay and nil-when-off
// contracts as the process-side streams.
func TestNetStreams(t *testing.T) {
	p := New(Spec{Seed: 21, NetDrop: 0.2, NetDelay: 0.3, NetDup: 0.1, Partition: 0.4})
	a, b := p.Link(5), p.Link(5)
	if a == nil || b == nil {
		t.Fatal("net plan returned nil link injector")
	}
	for i := 0; i < 10_000; i++ {
		if av, bv := a.DropMessage(), b.DropMessage(); av != bv {
			t.Fatalf("step %d: DropMessage diverged: %v vs %v", i, av, bv)
		}
		if av, bv := a.ExtraDelayNS(), b.ExtraDelayNS(); av != bv {
			t.Fatalf("step %d: ExtraDelayNS diverged: %d vs %d", i, av, bv)
		}
		if av, bv := a.DuplicateMessage(), b.DuplicateMessage(); av != bv {
			t.Fatalf("step %d: DuplicateMessage diverged: %v vs %v", i, av, bv)
		}
	}
	pa, pb := p.Partitioner(2), p.Partitioner(2)
	for i := 0; i < 1000; i++ {
		if av, bv := pa.PartitionNS(), pb.PartitionNS(); av != bv {
			t.Fatalf("step %d: PartitionNS diverged: %d vs %d", i, av, bv)
		}
	}
	// Opposite directions of the same node pair are independent streams.
	const nodes = 3
	ab, ba := p.Link(0*nodes+1), p.Link(1*nodes+0)
	same, n := 0, 1000
	for i := 0; i < n; i++ {
		if ab.DropMessage() == ba.DropMessage() {
			same++
		}
	}
	if same == n {
		t.Fatalf("A→B and B→A link streams fully correlated over %d draws", n)
	}
	// Net-only faults must not wake the process-side hooks, and vice versa.
	netOnly := New(Spec{Seed: 21, NetDrop: 0.5})
	if netOnly.Worker(0) != nil || netOnly.DequeHook(0) != nil ||
		netOnly.Admission() != nil || netOnly.ShardAlloc() != nil {
		t.Fatal("net-only plan handed out a process-side hook")
	}
	if !netOnly.Enabled() || !netOnly.Spec().NetEnabled() || netOnly.Spec().ProcessEnabled() {
		t.Fatal("net-only plan misclassified")
	}
	procOnly := New(Spec{Seed: 21, Panic: 0.5})
	if procOnly.Link(0) != nil || procOnly.Partitioner(0) != nil {
		t.Fatal("process-only plan handed out a net hook")
	}
	var nilPlan *Plan
	if nilPlan.Link(0) != nil || nilPlan.Partitioner(0) != nil {
		t.Fatal("nil plan handed out a net hook")
	}
}

// The scenario catalogue must partition cleanly between the process and
// cluster campaigns, with the expected net presets present.
func TestScenarioSplit(t *testing.T) {
	net, proc := NetScenarios(), ProcessScenarios()
	if len(net) == 0 || len(proc) == 0 {
		t.Fatalf("empty split: net=%v proc=%v", net, proc)
	}
	inNet := make(map[string]bool, len(net))
	for _, n := range net {
		inNet[n] = true
	}
	for _, want := range []string{"net-drop", "net-delay", "net-dup", "partition", "net-mixed"} {
		if !inNet[want] {
			t.Fatalf("net scenario %q missing from NetScenarios(): %v", want, net)
		}
	}
	for _, n := range proc {
		s, err := Scenario(n, 1)
		if err != nil || !s.ProcessEnabled() {
			t.Fatalf("process scenario %q: err=%v processEnabled=%v", n, err, s.ProcessEnabled())
		}
	}
	if len(net)+len(proc) < len(Scenarios()) {
		t.Fatalf("split lost scenarios: %d net + %d proc < %d total", len(net), len(proc), len(Scenarios()))
	}
	s, err := Scenario("partition", 7)
	if err != nil || s.PartitionNS == 0 {
		t.Fatalf("partition scenario: err=%v spec=%+v", err, s)
	}
	if d := New(s).Spec().NetDelayNS; d != 300_000 {
		t.Fatalf("NetDelayNS default not applied: %d", d)
	}
}

// An empirical sanity check that thresholds land near their rates.
func TestRateCalibration(t *testing.T) {
	in := New(Spec{Seed: 5, Panic: 0.25}).Worker(0)
	hits := 0
	const n = 200_000
	for i := 0; i < n; i++ {
		if in.PanicNow() {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.24 || got > 0.26 {
		t.Fatalf("rate 0.25 measured at %.4f over %d draws", got, n)
	}
}
