// Package faults is the deterministic fault-injection plane of the
// work-stealing runtime: a seed-replayable source of adversarial scheduling
// decisions — forced steal failures, worker stalls, delayed deposits,
// injected deque overflows, injected program panics, admission rejections
// and shard-allocator starvation — threaded through the deque, the wsrt
// runtime, the pool dispatcher and the serve layer.
//
// The plane follows the trace layer's contract: it is free when it is off.
// Every injection site in the hot path is a single nil check (the runtime's
// Worker holds a nil *Injector unless a Plan was attached to the run or
// job), so the zero-allocation deque/frame paths are untouched when no
// faults are configured.
//
// Determinism is the whole point: a Plan is an immutable Spec plus a seed,
// and every consumer derives its own private decision stream from
// (seed, role, slot) with a splitmix64 generator. Under the vtime Sim
// platform the entire run — scheduling, costs, and now faults — is a pure
// function of the seeds, so any chaos failure replays byte-identically from
// its printed tuple. Under the Real platform the per-stream decisions are
// still seed-reproducible even though goroutine interleaving is not, which
// keeps soak campaigns statistically repeatable.
//
// Streams never share state: worker i's node-level faults, deque i's
// steal-failure hook (called under the deque's owner lock), the pool's
// admission stream (called under the pool's submit lock) and the
// dispatcher's shard-starvation stream are all independent generators, so
// concurrent jobs on a sharded pool need no synchronisation to draw faults.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Spec configures a fault plan. All rates are probabilities in [0, 1] per
// decision point; zero disables that fault. The zero Spec injects nothing.
type Spec struct {
	// Seed fixes every decision stream. Zero means 1.
	Seed int64

	// StealFail is the per-steal-attempt probability that the attempt is
	// forced to fail at the deque (a contention burst: the thief loses the
	// race without touching the entries). The failure is real as far as the
	// starvation machinery is concerned — stolen_num increments and
	// need_task may be raised — so the paper's signalling FSM runs under
	// adversarial steal timing.
	StealFail float64
	// StealFailBurst is the number of consecutive forced failures once
	// StealFail fires (default 1). Bursts model a thief pack hammering one
	// victim.
	StealFailBurst int

	// Stall is the per-node probability that a worker stalls at BeginNode
	// for StallNS nanoseconds (virtual under Sim, wall-clock under Real).
	Stall float64
	// StallNS is the stall duration. Default 20µs.
	StallNS int64

	// DepositDelay is the per-deposit probability that a worker sleeps
	// DepositDelayNS before delivering a value to a parent frame —
	// perturbing exactly the join/deposit races that low-synchronisation
	// runtimes are most sensitive to.
	DepositDelay float64
	// DepositDelayNS is the deposit delay duration. Default 5µs.
	DepositDelayNS int64

	// Panic is the per-node probability that a worker panics at BeginNode,
	// simulating a buggy program mid-job. The panic is not a sched.Abort:
	// it exercises the runtime's quarantine path, not cancellation.
	Panic float64

	// Overflow is the per-push probability that the push is failed as if
	// the deque were full, aborting the job with sched.ErrDequeOverflow
	// regardless of the deque's real capacity or growability.
	Overflow float64

	// Reject is the per-submission probability that the pool's admission
	// queue reports saturation (ErrQueueFull) even though capacity remains.
	Reject float64

	// Starve is the per-allocation probability that the shard allocator
	// reports no shard can be formed, delaying admitted jobs.
	Starve float64
	// StarveBurst is the number of consecutive starved allocations once
	// Starve fires (default 1).
	StarveBurst int

	// Network fault roles, consumed by the cluster tier (internal/cluster):
	// the Sim transport draws one decision per message from a per-link
	// stream, so a whole N-node cluster soak replays byte-identically from
	// its seed. The single-process fault roles above never consult these.

	// NetDrop is the per-message probability that a cluster message
	// (gossip, forward, steal, ack) is lost in flight.
	NetDrop float64
	// NetDelay is the per-message probability of an extra latency spike of
	// NetDelayNS on top of the link's base cost.
	NetDelay float64
	// NetDelayNS is the injected latency spike. Default 300µs.
	NetDelayNS int64
	// NetDup is the per-message probability that the message is delivered
	// twice — the at-least-once hazard the forwarding layer's dedupe must
	// absorb.
	NetDup float64
	// Partition is the per-probe (gossip-tick) probability that a node
	// drops off the network — every message to or from it is lost — for
	// PartitionNS.
	Partition float64
	// PartitionNS is how long an injected partition isolates the node.
	// Default 5ms of virtual time.
	PartitionNS int64
}

// enabled reports whether any fault has a non-zero rate.
func (s Spec) enabled() bool {
	return s.StealFail > 0 || s.Stall > 0 || s.DepositDelay > 0 ||
		s.Panic > 0 || s.Overflow > 0 || s.Reject > 0 || s.Starve > 0 ||
		s.netEnabled()
}

// netEnabled reports whether any network fault has a non-zero rate.
func (s Spec) netEnabled() bool {
	return s.NetDrop > 0 || s.NetDelay > 0 || s.NetDup > 0 || s.Partition > 0
}

// NetEnabled reports whether the spec injects any network fault — the
// chaos harness routes such scenarios to its cluster campaigns.
func (s Spec) NetEnabled() bool { return s.netEnabled() }

// ProcessEnabled reports whether the spec injects any single-process fault
// (everything but the network roles) — the sim and pool chaos campaigns
// skip scenarios that are network-only.
func (s Spec) ProcessEnabled() bool {
	return s.StealFail > 0 || s.Stall > 0 || s.DepositDelay > 0 ||
		s.Panic > 0 || s.Overflow > 0 || s.Reject > 0 || s.Starve > 0
}

// Plan is an immutable, sharable fault configuration. One Plan may serve
// any number of runs and concurrent jobs; every consumer derives a private
// decision stream from it. Create with New; a nil *Plan means "no faults"
// everywhere it is accepted.
type Plan struct {
	spec Spec
}

// New returns a plan for spec, applying defaults for zero-valued durations
// and burst lengths.
func New(spec Spec) *Plan {
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.StealFailBurst <= 0 {
		spec.StealFailBurst = 1
	}
	if spec.StarveBurst <= 0 {
		spec.StarveBurst = 1
	}
	if spec.StallNS <= 0 {
		spec.StallNS = 20_000
	}
	if spec.DepositDelayNS <= 0 {
		spec.DepositDelayNS = 5_000
	}
	if spec.NetDelayNS <= 0 {
		spec.NetDelayNS = 300_000
	}
	if spec.PartitionNS <= 0 {
		spec.PartitionNS = 5_000_000
	}
	return &Plan{spec: spec}
}

// Spec returns the plan's (defaulted) configuration.
func (p *Plan) Spec() Spec { return p.spec }

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool { return p != nil && p.spec.enabled() }

// Stream roles: each (role, slot) pair seeds an independent generator, so
// worker-side and deque-side streams of the same slot never correlate.
const (
	roleWorker = 0x9E37_79B9 + iota
	roleDeque
	roleAdmission
	roleShard
	roleLink
	rolePartition
)

// stream derives the splitmix64 state for one (role, slot) stream.
func (p *Plan) stream(role, slot int) uint64 {
	z := uint64(p.spec.Seed) ^ (uint64(role) << 32) ^ (uint64(slot+1) * 0x9E3779B97F4A7C15)
	// One scramble round so adjacent seeds/slots do not start correlated.
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Worker returns the fault stream for worker slot i of one run or job:
// node stalls, injected panics, deposit delays and forced overflows. The
// injector is owned by exactly one worker goroutine. Returns nil when none
// of the worker-side faults are configured, so the runtime's nil check
// keeps the hot path free.
func (p *Plan) Worker(i int) *Injector {
	if p == nil {
		return nil
	}
	s := p.spec
	if s.Stall <= 0 && s.Panic <= 0 && s.DepositDelay <= 0 && s.Overflow <= 0 {
		return nil
	}
	return p.injector(roleWorker, i)
}

// DequeHook returns the forced-steal-failure decision function to install
// on deque i with SetFailSteal, or nil when StealFail is zero. The hook's
// state is private to the deque and only ever touched under the deque's
// owner lock (the steal path), so concurrent thieves serialise on it
// exactly as they serialise on the deque itself.
func (p *Plan) DequeHook(i int) func() bool {
	if p == nil || p.spec.StealFail <= 0 {
		return nil
	}
	in := p.injector(roleDeque, i)
	return in.FailSteal
}

// Admission returns the pool-level admission-rejection stream (used under
// the pool's submit lock), or nil when Reject is zero.
func (p *Plan) Admission() *Injector {
	if p == nil || p.spec.Reject <= 0 {
		return nil
	}
	return p.injector(roleAdmission, 0)
}

// ShardAlloc returns the dispatcher's shard-starvation stream (used only
// by the pool's dispatcher goroutine), or nil when Starve is zero.
func (p *Plan) ShardAlloc() *Injector {
	if p == nil || p.spec.Starve <= 0 {
		return nil
	}
	return p.injector(roleShard, 0)
}

// Link returns the per-link message-fault stream for directed link slot i
// (the cluster tier keys it src*nodes+dst), or nil when no message fault
// (drop/delay/duplicate) is configured. Each directed link owns a private
// stream, so the fate of A→B traffic never correlates with B→A.
func (p *Plan) Link(i int) *Injector {
	if p == nil {
		return nil
	}
	s := p.spec
	if s.NetDrop <= 0 && s.NetDelay <= 0 && s.NetDup <= 0 {
		return nil
	}
	return p.injector(roleLink, i)
}

// Partitioner returns node i's partition stream — probed once per gossip
// tick by the Sim cluster — or nil when Partition is zero.
func (p *Plan) Partitioner(i int) *Injector {
	if p == nil || p.spec.Partition <= 0 {
		return nil
	}
	return p.injector(rolePartition, i)
}

func (p *Plan) injector(role, slot int) *Injector {
	s := p.spec
	return &Injector{
		state:        p.stream(role, slot),
		stealFail:    threshold(s.StealFail),
		stealBurst:   s.StealFailBurst,
		stall:        threshold(s.Stall),
		stallNS:      s.StallNS,
		depositDelay: threshold(s.DepositDelay),
		depositNS:    s.DepositDelayNS,
		panicTh:      threshold(s.Panic),
		overflow:     threshold(s.Overflow),
		reject:       threshold(s.Reject),
		starve:       threshold(s.Starve),
		starveBurst:  s.StarveBurst,
		netDrop:      threshold(s.NetDrop),
		netDelay:     threshold(s.NetDelay),
		netDelayNS:   s.NetDelayNS,
		netDup:       threshold(s.NetDup),
		partition:    threshold(s.Partition),
		partitionNS:  s.PartitionNS,
	}
}

// threshold converts a probability to a uint64 comparison bound.
func threshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return ^uint64(0)
	default:
		return uint64(rate * float64(1<<63) * 2)
	}
}

// Injector is one private fault decision stream. Each method is one
// splitmix64 step plus a compare — no allocation, no locking — and must
// only be called by the stream's owner (a worker goroutine, a deque under
// its owner lock, the pool's submit path, or the dispatcher).
type Injector struct {
	state uint64

	stealFail  uint64
	stealBurst int
	burstLeft  int

	stall   uint64
	stallNS int64

	depositDelay uint64
	depositNS    int64

	panicTh  uint64
	overflow uint64
	reject   uint64

	starve      uint64
	starveBurst int
	starveLeft  int

	netDrop     uint64
	netDelay    uint64
	netDelayNS  int64
	netDup      uint64
	partition   uint64
	partitionNS int64
}

// next is splitmix64: deterministic, full-period, cheap.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (in *Injector) hit(th uint64) bool {
	if th == 0 {
		return false
	}
	return in.next() < th
}

// FailSteal decides whether the current steal attempt is forced to fail.
// Once the rate fires, the next StealFailBurst-1 attempts fail too.
func (in *Injector) FailSteal() bool {
	if in.burstLeft > 0 {
		in.burstLeft--
		return true
	}
	if in.hit(in.stealFail) {
		in.burstLeft = in.stealBurst - 1
		return true
	}
	return false
}

// StallNS returns the nanoseconds the worker should stall at this node
// (0: no stall).
func (in *Injector) StallNS() int64 {
	if in.hit(in.stall) {
		return in.stallNS
	}
	return 0
}

// DepositDelayNS returns the nanoseconds to sleep before the current
// deposit (0: no delay).
func (in *Injector) DepositDelayNS() int64 {
	if in.hit(in.depositDelay) {
		return in.depositNS
	}
	return 0
}

// PanicNow decides whether the worker panics at this node.
func (in *Injector) PanicNow() bool { return in.hit(in.panicTh) }

// ForceOverflow decides whether the current push is failed as a deque
// overflow.
func (in *Injector) ForceOverflow() bool { return in.hit(in.overflow) }

// RejectAdmission decides whether the current submission is rejected as if
// the admission queue were full.
func (in *Injector) RejectAdmission() bool { return in.hit(in.reject) }

// StarveShard decides whether the current shard allocation is refused.
// Once the rate fires, the next StarveBurst-1 allocations are refused too.
func (in *Injector) StarveShard() bool {
	if in.starveLeft > 0 {
		in.starveLeft--
		return true
	}
	if in.hit(in.starve) {
		in.starveLeft = in.starveBurst - 1
		return true
	}
	return false
}

// DropMessage decides whether the current message is lost in flight.
func (in *Injector) DropMessage() bool { return in.hit(in.netDrop) }

// ExtraDelayNS returns the injected latency spike for the current message
// (0: delivered at the link's base cost).
func (in *Injector) ExtraDelayNS() int64 {
	if in.hit(in.netDelay) {
		return in.netDelayNS
	}
	return 0
}

// DuplicateMessage decides whether the current message is delivered twice.
func (in *Injector) DuplicateMessage() bool { return in.hit(in.netDup) }

// PartitionNS returns how long the node is isolated starting at this probe
// (0: stays connected). One probe per gossip tick keeps the decision count
// — and with it the replayed stream — independent of message volume.
func (in *Injector) PartitionNS() int64 {
	if in.hit(in.partition) {
		return in.partitionNS
	}
	return 0
}

// PanicValue is the value an injected program panic throws, so tests and
// the chaos harness can tell an injected panic from a real program bug.
type PanicValue struct {
	// Worker is the shard-local id of the worker that panicked.
	Worker int
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faults: injected panic on worker %d", p.Worker)
}

// ---------------------------------------------------------------------------
// Scenario presets

// scenarios maps curated scenario names to their specs (seed applied by
// Scenario). Rates are sized so that small benchmark instances both
// complete cleanly sometimes and abort sometimes — a soak needs to see
// both outcomes.
var scenarios = map[string]Spec{
	"steal-burst":   {StealFail: 0.4, StealFailBurst: 8},
	"stall":         {Stall: 0.01, StallNS: 50_000},
	"panic":         {Panic: 0.002},
	"overflow":      {Overflow: 0.001},
	"deposit-delay": {DepositDelay: 0.25, DepositDelayNS: 20_000},
	"reject":        {Reject: 0.3},
	"starve":        {Starve: 0.5, StarveBurst: 4},
	"mixed": {
		StealFail: 0.2, StealFailBurst: 4,
		Stall: 0.005, StallNS: 20_000,
		DepositDelay: 0.1, DepositDelayNS: 10_000,
		Panic: 0.0005, Overflow: 0.0002,
		Reject: 0.05, Starve: 0.1, StarveBurst: 2,
	},
	// Network scenarios, consumed by the cluster campaigns. Rates are sized
	// so a small Sim cluster both loses enough messages to exercise the
	// retry/dedupe machinery and still converges quickly.
	"net-drop":  {NetDrop: 0.25},
	"net-delay": {NetDelay: 0.4, NetDelayNS: 400_000},
	"net-dup":   {NetDup: 0.3},
	"partition": {Partition: 0.15, PartitionNS: 4_000_000},
	"net-mixed": {
		NetDrop: 0.1, NetDelay: 0.2, NetDelayNS: 250_000,
		NetDup: 0.1, Partition: 0.05, PartitionNS: 2_500_000,
	},
}

// Scenarios lists the curated scenario names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ProcessScenarios lists the scenario names that inject single-process
// faults, sorted — the set the sim and pool chaos campaigns iterate.
func ProcessScenarios() []string {
	var names []string
	for n, s := range scenarios {
		if s.ProcessEnabled() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// NetScenarios lists the scenario names that inject network faults, sorted
// — the set the cluster chaos campaigns iterate.
func NetScenarios() []string {
	var names []string
	for n, s := range scenarios {
		if s.NetEnabled() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Scenario returns the named curated spec with the given seed.
func Scenario(name string, seed int64) (Spec, error) {
	s, ok := scenarios[strings.TrimSpace(name)]
	if !ok {
		return Spec{}, fmt.Errorf("faults: unknown scenario %q (have %s)", name, strings.Join(Scenarios(), ", "))
	}
	s.Seed = seed
	return s, nil
}

// ErrInjected tags error messages produced by the plane where an error (not
// a panic) is the natural surface; call sites wrap their own sentinel and
// include this one so chaos verdicts can separate injected failures from
// organic ones.
var ErrInjected = errors.New("injected by fault plane")
