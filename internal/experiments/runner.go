// The parallel sweep driver. Every cell of the evaluation — one
// (engine, program, workers, seed) run — is an independent, deterministic
// Sim execution, so cells can run on any number of OS threads without
// changing a single byte of output: results are collected by cell index in
// submission order, never by completion order, and each cell derives its
// seed from the configuration alone. The figure generators submit all of
// their cells up front and then format; with Config.Parallel > 1 the cells
// overlap on a bounded goroutine pool, with Parallel <= 1 submission runs
// each cell inline, which reproduces the historical strictly-sequential
// execution order exactly.
package experiments

import (
	"fmt"
	"sort"

	"adaptivetc"
)

// future is the pending result of one submitted experiment cell.
type future struct {
	done     chan struct{}
	res      adaptivetc.Result
	err      error
	panicked any
}

// parallel returns the effective worker-pool size; anything below 2 means
// sequential inline execution.
func (c *Config) parallel() int {
	if c.Parallel < 2 {
		return 1
	}
	return c.Parallel
}

func (c *Config) ensureSem() {
	if c.sem == nil {
		c.sem = make(chan struct{}, c.parallel())
	}
}

// submit schedules one cell. Sequential configs run it inline (preserving
// the historical execution order); parallel configs hand it to the pool.
// Either way output order is decided solely by the order of await calls.
func (c *Config) submit(e adaptivetc.Engine, p adaptivetc.Program, opt adaptivetc.Options) *future {
	f := &future{done: make(chan struct{})}
	if c.parallel() <= 1 {
		f.res, f.err = mustRun(e, p, opt)
		close(f.done)
		return f
	}
	c.ensureSem()
	go func() {
		defer close(f.done)
		defer func() {
			if r := recover(); r != nil {
				f.panicked = r
			}
		}()
		c.sem <- struct{}{}
		defer func() { <-c.sem }()
		f.res, f.err = mustRun(e, p, opt)
	}()
	return f
}

// await blocks until the cell has run. A panic inside a pooled cell (e.g.
// the Sim livelock guard) is re-raised here, on the collecting goroutine,
// matching the sequential behaviour.
func (f *future) await() (adaptivetc.Result, error) {
	<-f.done
	if f.panicked != nil {
		panic(f.panicked)
	}
	return f.res, f.err
}

// submitSerial schedules the serial-baseline cell for p.
func (c *Config) submitSerial(p adaptivetc.Program) *future {
	return c.submit(adaptivetc.NewSerial(), p, adaptivetc.Options{Seed: c.seed()})
}

// awaitBaseline resolves a submitSerial future into the baseline every
// speedup is computed against.
func awaitBaseline(f *future) (baseline, error) {
	res, err := f.await()
	if err != nil {
		return baseline{}, err
	}
	return baseline{value: res.Value, makespan: res.Makespan}, nil
}

// sweep is one engine's submitted thread sweep: cells[i][r] is the run at
// threads(i) under repeat seed r.
type sweep struct {
	engine  string
	program string
	cells   [][]*future
}

// submitSweep schedules every (thread count × repeat) cell of one engine's
// sweep. Per-cell seeds derive from the configuration and the repeat index
// only, so the results are independent of execution order.
func (c *Config) submitSweep(e adaptivetc.Engine, p adaptivetc.Program, mutate func(*adaptivetc.Options)) *sweep {
	s := &sweep{engine: e.Name(), program: p.Name()}
	for _, n := range c.threads() {
		row := make([]*future, 0, c.repeats())
		for r := 0; r < c.repeats(); r++ {
			opt := adaptivetc.Options{Workers: n, Seed: c.seed() + int64(r)*1009}
			if mutate != nil {
				mutate(&opt)
			}
			row = append(row, c.submit(e, p, opt))
		}
		s.cells = append(s.cells, row)
	}
	return s
}

// collectSweep resolves a sweep in cell order: per thread count the median
// makespan over the repeats becomes one speedup sample (checked against the
// serial baseline), appended to the returned series and the CSV sink.
func (c *Config) collectSweep(s *sweep, base baseline, experiment string) (series, error) {
	out := series{name: s.engine}
	threads := c.threads()
	for i, row := range s.cells {
		spans := make([]int64, 0, len(row))
		for _, fu := range row {
			res, err := fu.await()
			if err != nil {
				return out, err
			}
			if err := base.check(res); err != nil {
				return out, err
			}
			spans = append(spans, res.Makespan)
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a] < spans[b] })
		median := spans[len(spans)/2]
		speedup := float64(base.makespan) / float64(median)
		out.values = append(out.values, speedup)
		c.csvRow(experiment, s.program, s.engine, threads[i], speedup)
	}
	return out, nil
}

// sweepSpeedups submits and immediately collects one engine's sweep — the
// sequential convenience used by tests and one-off callers. The figure
// generators submit all sweeps first and collect afterwards so that cells
// overlap under a parallel Config.
func sweepSpeedups(e adaptivetc.Engine, p adaptivetc.Program, base baseline, cfg *Config, experiment string, mutate func(*adaptivetc.Options)) (series, error) {
	return cfg.collectSweep(cfg.submitSweep(e, p, mutate), base, experiment)
}

// mustRun executes one configuration or returns the first error.
func mustRun(e adaptivetc.Engine, p adaptivetc.Program, opt adaptivetc.Options) (adaptivetc.Result, error) {
	res, err := e.Run(p, opt)
	if err != nil {
		return res, fmt.Errorf("%s/%s P=%d: %w", e.Name(), p.Name(), opt.Workers, err)
	}
	return res, nil
}
