package experiments

import (
	"adaptivetc"
	"adaptivetc/problems/registry"
)

// BuildProgram constructs a benchmark instance by name — the vocabulary of
// cmd/adaptivetc-run, delegating to problems/registry (shared with the
// serving API). n is the family-specific size parameter (board side,
// removals, givens, …); size is the synthetic-tree leaf count; reverse
// mirrors a synthetic tree. Zero n or size selects the family default.
func BuildProgram(name string, n int, size int64, reverse bool) (adaptivetc.Program, error) {
	return registry.Build(name, registry.Params{N: n, Size: size, Reverse: reverse})
}

// ProgramNames lists the names BuildProgram accepts.
func ProgramNames() []string { return registry.Names() }
