package experiments

import (
	"fmt"

	"adaptivetc"
	"adaptivetc/internal/lang"
	"adaptivetc/problems/comp"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/knight"
	"adaptivetc/problems/nqueens"
	"adaptivetc/problems/pentomino"
	"adaptivetc/problems/strimko"
	"adaptivetc/problems/sudoku"
	"adaptivetc/problems/synthtree"
)

// BuildProgram constructs a benchmark instance by name — the vocabulary of
// cmd/adaptivetc-run. n is the family-specific size parameter (board side,
// removals, givens, …); size is the synthetic-tree leaf count; reverse
// mirrors a synthetic tree.
func BuildProgram(name string, n int, size int64, reverse bool) (adaptivetc.Program, error) {
	tree := func(spec synthtree.Spec) adaptivetc.Program {
		spec.Seed = 20100424
		if reverse {
			spec = spec.Reverse()
		}
		return synthtree.New(spec)
	}
	switch name {
	case "nqueens-array":
		return nqueens.NewArray(n), nil
	case "nqueens-compute":
		return nqueens.NewCompute(n), nil
	case "sudoku-balanced":
		return sudoku.Balanced(3, n), nil
	case "sudoku-input1":
		return sudoku.Input1(3, n), nil
	case "sudoku-input2":
		return sudoku.Input2(3, n), nil
	case "sudoku-empty4":
		return sudoku.Empty(2), nil
	case "strimko":
		return strimko.Diagonal(7, n), nil
	case "knight":
		return knight.New(n), nil
	case "pentomino":
		return pentomino.New(n), nil
	case "fib":
		return fib.New(n), nil
	case "comp":
		return comp.New(n), nil
	case "tree1":
		return tree(synthtree.Tree1(size)), nil
	case "tree2":
		return tree(synthtree.Tree2(size)), nil
	case "tree3":
		return tree(synthtree.Tree3(size)), nil
	case "atc-nqueens", "atc-fib", "atc-latin", "atc-knight":
		src := lang.Sources()[name[len("atc-"):]]
		return lang.CompileProgram(name[len("atc-"):], src, map[string]int64{"n": int64(n)})
	}
	return nil, fmt.Errorf("unknown program %q", name)
}

// ProgramNames lists the names BuildProgram accepts.
func ProgramNames() []string {
	return []string{
		"nqueens-array", "nqueens-compute", "sudoku-balanced", "sudoku-input1",
		"sudoku-input2", "sudoku-empty4", "strimko", "knight", "pentomino",
		"fib", "comp", "tree1", "tree2", "tree3",
		"atc-nqueens", "atc-fib", "atc-latin", "atc-knight",
	}
}
