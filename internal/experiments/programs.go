package experiments

import (
	"adaptivetc"
	"adaptivetc/problems/registry"
)

// BuildProgram constructs a benchmark instance by name — the vocabulary of
// cmd/adaptivetc-run, delegating to problems/registry (shared with the
// serving API). n is the family-specific size parameter (board side,
// removals, givens, …); size is the synthetic-tree leaf count; reverse
// mirrors a synthetic tree. Zero n or size selects the family default.
func BuildProgram(name string, n int, size int64, reverse bool) (adaptivetc.Program, error) {
	return registry.Build(name, registry.Params{N: n, Size: size, Reverse: reverse})
}

// BuildProgramM is BuildProgram with the secondary knob of two-knob
// families (DAG width, knapsack capacity, SAT clause count); zero m
// selects the family default, and single-knob families ignore it.
func BuildProgramM(name string, n, m int, size int64, reverse bool) (adaptivetc.Program, error) {
	return registry.Build(name, registry.Params{N: n, M: m, Size: size, Reverse: reverse})
}

// FirstSolution reports whether the named family is meant to run with
// first-solution-wins semantics (Options.FirstSolution).
func FirstSolution(name string) bool { return registry.FirstSolution(name) }

// ProgramNames lists the names BuildProgram accepts.
func ProgramNames() []string { return registry.Names() }
