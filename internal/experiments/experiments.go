package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"adaptivetc"
)

// Config drives one experiment run.
type Config struct {
	// Scale selects workload sizes (Quick/Default/Full).
	Scale Scale
	// Out receives the report. Nil means os.Stdout.
	Out io.Writer
	// MaxThreads is the largest thread count swept (paper: 8). Zero means 8.
	MaxThreads int
	// Seed fixes victim selection across the whole experiment.
	Seed int64
	// CutoffProgrammer is the user-supplied cut-off depth for the
	// Cutoff-programmer baseline of Figure 9. Zero means 3.
	CutoffProgrammer int
	// Repeats runs each parallel configuration this many times with
	// different seeds and plots the median makespan, smoothing
	// steal-timing noise in the speedup curves. Zero means 1.
	Repeats int
	// CSV, when non-nil, additionally receives every speedup sample of
	// the sweep experiments as "experiment,workload,engine,threads,speedup"
	// rows (for external plotting). Write the header yourself or call
	// CSVHeader once before the first experiment.
	CSV io.Writer
	// Parallel is the number of experiment cells run concurrently. Values
	// below 2 run strictly sequentially (the historical behaviour). Output —
	// report text and CSV rows alike — is byte-identical at any setting,
	// because results are collected in submission order and every cell's
	// seed derives from the Config, not from scheduling (see runner.go).
	Parallel int

	// InjectTraceViolation corrupts the recorded trace before TraceRun's
	// invariant check — a deliberately broken run for verifying that the
	// checker's failure path reaches the exit code (CI asserts both
	// directions). Never set outside tests and CI.
	InjectTraceViolation bool

	// sem is the lazily-created pool gate for Parallel > 1; see ensureSem.
	// Config is passed by value between figures, so each figure gets its
	// own gate — the bound applies per running figure, which is all the
	// cells that can be in flight at once anyway.
	sem chan struct{}
}

// CSVHeader writes the column header for the CSV sink.
func CSVHeader(w io.Writer) { fmt.Fprintln(w, "experiment,workload,engine,threads,speedup") }

// csvRow appends one sample to the CSV sink.
func (c *Config) csvRow(experiment, workload, engine string, threads int, speedup float64) {
	if c.CSV == nil {
		return
	}
	fmt.Fprintf(c.CSV, "%s,%s,%s,%d,%.4f\n", experiment, workload, engine, threads, speedup)
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c Config) threads() []int {
	max := c.MaxThreads
	if max <= 0 {
		max = 8
	}
	ts := make([]int, max)
	for i := range ts {
		ts[i] = i + 1
	}
	return ts
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) repeats() int {
	if c.Repeats <= 0 {
		return 1
	}
	return c.Repeats
}

// All runs every experiment in paper order, then the extensions.
func All(cfg Config) error {
	for _, f := range []func(Config) error{
		Figure4, Figure5, Table2, Figure6, Figure7, Figure8, Figure9, Figure10, Table3,
		StealCounts,
	} {
		if err := f(cfg); err != nil {
			return err
		}
	}
	return nil
}

// ByName dispatches "fig4", "table2", … or "all".
func ByName(name string, cfg Config) error {
	fns := map[string]func(Config) error{
		"fig4": Figure4, "fig5": Figure5, "table2": Table2,
		"fig6": Figure6, "fig7": Figure7, "fig8": Figure8,
		"fig9": Figure9, "fig10": Figure10, "table3": Table3,
		"steals": StealCounts, "all": All,
	}
	fn, ok := fns[name]
	if !ok {
		names := make([]string, 0, len(fns))
		for k := range fns {
			names = append(names, k)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(names, ", "))
	}
	return fn(cfg)
}

// baseline is the serial engine's result, checking the value of every later
// run through check(). Built from a submitSerial future via awaitBaseline.
type baseline struct {
	value    int64
	makespan int64
}

func (b baseline) check(res adaptivetc.Result) error {
	if res.Value != b.value {
		return fmt.Errorf("%s/%s P=%d returned %d, serial baseline says %d",
			res.Engine, res.Program, res.Workers, res.Value, b.value)
	}
	return nil
}

// series is one line of a speedup chart.
type series struct {
	name   string
	values []float64 // one per thread count; NaN marks "not run"
}

func printSpeedupTable(w io.Writer, title string, threads []int, rows []series) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-18s", "engine \\ threads")
	for _, t := range threads {
		fmt.Fprintf(w, "%8d", t)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s", r.name)
		for _, v := range r.values {
			fmt.Fprintf(w, "%8.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	renderChart(w, threads, rows)
}

func header(w io.Writer, title, description string) {
	fmt.Fprintf(w, "\n================================================================\n")
	fmt.Fprintf(w, "%s\n", title)
	if description != "" {
		fmt.Fprintf(w, "%s\n", description)
	}
	fmt.Fprintf(w, "================================================================\n")
}
