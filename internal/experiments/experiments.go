package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"adaptivetc"
)

// Config drives one experiment run.
type Config struct {
	// Scale selects workload sizes (Quick/Default/Full).
	Scale Scale
	// Out receives the report. Nil means os.Stdout.
	Out io.Writer
	// MaxThreads is the largest thread count swept (paper: 8). Zero means 8.
	MaxThreads int
	// Seed fixes victim selection across the whole experiment.
	Seed int64
	// CutoffProgrammer is the user-supplied cut-off depth for the
	// Cutoff-programmer baseline of Figure 9. Zero means 3.
	CutoffProgrammer int
	// Repeats runs each parallel configuration this many times with
	// different seeds and plots the median makespan, smoothing
	// steal-timing noise in the speedup curves. Zero means 1.
	Repeats int
	// CSV, when non-nil, additionally receives every speedup sample of
	// the sweep experiments as "experiment,workload,engine,threads,speedup"
	// rows (for external plotting). Write the header yourself or call
	// CSVHeader once before the first experiment.
	CSV io.Writer
}

// CSVHeader writes the column header for the CSV sink.
func CSVHeader(w io.Writer) { fmt.Fprintln(w, "experiment,workload,engine,threads,speedup") }

// csvRow appends one sample to the CSV sink.
func (c *Config) csvRow(experiment, workload, engine string, threads int, speedup float64) {
	if c.CSV == nil {
		return
	}
	fmt.Fprintf(c.CSV, "%s,%s,%s,%d,%.4f\n", experiment, workload, engine, threads, speedup)
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c Config) threads() []int {
	max := c.MaxThreads
	if max <= 0 {
		max = 8
	}
	ts := make([]int, max)
	for i := range ts {
		ts[i] = i + 1
	}
	return ts
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c Config) repeats() int {
	if c.Repeats <= 0 {
		return 1
	}
	return c.Repeats
}

// All runs every experiment in paper order, then the extensions.
func All(cfg Config) error {
	for _, f := range []func(Config) error{
		Figure4, Figure5, Table2, Figure6, Figure7, Figure8, Figure9, Figure10, Table3,
		StealCounts,
	} {
		if err := f(cfg); err != nil {
			return err
		}
	}
	return nil
}

// ByName dispatches "fig4", "table2", … or "all".
func ByName(name string, cfg Config) error {
	fns := map[string]func(Config) error{
		"fig4": Figure4, "fig5": Figure5, "table2": Table2,
		"fig6": Figure6, "fig7": Figure7, "fig8": Figure8,
		"fig9": Figure9, "fig10": Figure10, "table3": Table3,
		"steals": StealCounts, "all": All,
	}
	fn, ok := fns[name]
	if !ok {
		names := make([]string, 0, len(fns))
		for k := range fns {
			names = append(names, k)
		}
		sort.Strings(names)
		return fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(names, ", "))
	}
	return fn(cfg)
}

// mustRun executes one configuration or returns the first error.
func mustRun(e adaptivetc.Engine, p adaptivetc.Program, opt adaptivetc.Options) (adaptivetc.Result, error) {
	res, err := e.Run(p, opt)
	if err != nil {
		return res, fmt.Errorf("%s/%s P=%d: %w", e.Name(), p.Name(), opt.Workers, err)
	}
	return res, nil
}

// serialBaseline runs the serial engine once and returns its makespan,
// checking the value against every later run through check().
type baseline struct {
	value    int64
	makespan int64
}

func serial(p adaptivetc.Program, seed int64) (baseline, error) {
	res, err := mustRun(adaptivetc.NewSerial(), p, adaptivetc.Options{Seed: seed})
	if err != nil {
		return baseline{}, err
	}
	return baseline{value: res.Value, makespan: res.Makespan}, nil
}

func (b baseline) check(res adaptivetc.Result) error {
	if res.Value != b.value {
		return fmt.Errorf("%s/%s P=%d returned %d, serial baseline says %d",
			res.Engine, res.Program, res.Workers, res.Value, b.value)
	}
	return nil
}

// series is one line of a speedup chart.
type series struct {
	name   string
	values []float64 // one per thread count; NaN marks "not run"
}

// sweepSpeedups runs an engine over the thread sweep, returning speedups
// against the serial makespan. With cfg.Repeats > 1 each configuration
// runs under several seeds and the median makespan is used, smoothing
// steal-timing noise.
func sweepSpeedups(e adaptivetc.Engine, p adaptivetc.Program, base baseline, cfg *Config, experiment string, mutate func(*adaptivetc.Options)) (series, error) {
	s := series{name: e.Name()}
	for _, n := range cfg.threads() {
		spans := make([]int64, 0, cfg.repeats())
		for r := 0; r < cfg.repeats(); r++ {
			opt := adaptivetc.Options{Workers: n, Seed: cfg.seed() + int64(r)*1009}
			if mutate != nil {
				mutate(&opt)
			}
			res, err := mustRun(e, p, opt)
			if err != nil {
				return s, err
			}
			if err := base.check(res); err != nil {
				return s, err
			}
			spans = append(spans, res.Makespan)
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i] < spans[j] })
		median := spans[len(spans)/2]
		speedup := float64(base.makespan) / float64(median)
		s.values = append(s.values, speedup)
		cfg.csvRow(experiment, p.Name(), e.Name(), n, speedup)
	}
	return s, nil
}

func printSpeedupTable(w io.Writer, title string, threads []int, rows []series) {
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-18s", "engine \\ threads")
	for _, t := range threads {
		fmt.Fprintf(w, "%8d", t)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s", r.name)
		for _, v := range r.values {
			fmt.Fprintf(w, "%8.2f", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	renderChart(w, threads, rows)
}

func header(w io.Writer, title, description string) {
	fmt.Fprintf(w, "\n================================================================\n")
	fmt.Fprintf(w, "%s\n", title)
	if description != "" {
		fmt.Fprintf(w, "%s\n", description)
	}
	fmt.Fprintf(w, "================================================================\n")
}
