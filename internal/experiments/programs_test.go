package experiments

import (
	"testing"

	"adaptivetc"
)

func TestBuildProgramAllNames(t *testing.T) {
	for _, name := range ProgramNames() {
		n := 6
		switch name {
		case "sudoku-balanced", "sudoku-input1", "sudoku-input2":
			n = 30
		case "strimko":
			n = 20
		case "knight":
			n = 4
		case "pentomino":
			n = 3
		case "comp":
			n = 64
		case "atc-nqueens", "atc-fib", "atc-latin", "atc-knight":
			n = 5
		}
		p, err := BuildProgram(name, n, 2000, false)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p == nil || p.Name() == "" {
			t.Fatalf("%s: bad program", name)
		}
		// Every named program must at least run serially.
		if _, err := mustRun(adaptivetc.NewSerial(), p, adaptivetc.Options{Workers: 1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := BuildProgram("bogus", 1, 1, false); err == nil {
		t.Fatal("accepted bogus program name")
	}
}

func TestBuildProgramReverse(t *testing.T) {
	l, err := BuildProgram("tree3", 0, 4000, false)
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildProgram("tree3", 0, 4000, true)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() == r.Name() {
		t.Fatalf("reverse did not change the tree: %s", l.Name())
	}
}
