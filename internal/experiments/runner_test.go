package experiments

import (
	"bytes"
	"strings"
	"testing"

	"adaptivetc"
)

// TestParallelOutputIdentical is the driver's core guarantee: a parallel
// Config produces byte-for-byte the same report and the same CSV as a
// sequential one, because cells are collected in submission order and every
// cell's seed comes from the Config alone.
func TestParallelOutputIdentical(t *testing.T) {
	run := func(parallel int) (report, csv string) {
		var out, samples bytes.Buffer
		cfg := quickCfg(&out)
		cfg.Repeats = 2
		cfg.CSV = &samples
		cfg.Parallel = parallel
		if err := Figure9(cfg); err != nil {
			t.Fatalf("fig9 parallel=%d: %v", parallel, err)
		}
		if err := Figure5(cfg); err != nil {
			t.Fatalf("fig5 parallel=%d: %v", parallel, err)
		}
		return out.String(), samples.String()
	}
	seqReport, seqCSV := run(1)
	parReport, parCSV := run(8)
	if seqReport != parReport {
		t.Errorf("report differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqReport, parReport)
	}
	if seqCSV != parCSV {
		t.Errorf("CSV differs between sequential and parallel runs:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqCSV, parCSV)
	}
	if seqCSV == "" {
		t.Error("no CSV samples were written")
	}
}

// TestParallelDefaults pins the Parallel knob's edge cases: zero and
// negative mean sequential.
func TestParallelDefaults(t *testing.T) {
	for _, v := range []int{-1, 0, 1} {
		c := Config{Parallel: v}
		if got := c.parallel(); got != 1 {
			t.Errorf("Config{Parallel: %d}.parallel() = %d, want 1", v, got)
		}
	}
	c := Config{Parallel: 4}
	if got := c.parallel(); got != 4 {
		t.Errorf("Config{Parallel: 4}.parallel() = %d, want 4", got)
	}
}

// panicEngine blows up on Run, standing in for a Sim livelock guard firing
// inside a pooled cell.
type panicEngine struct{}

func (panicEngine) Name() string { return "panic" }
func (panicEngine) Run(adaptivetc.Program, adaptivetc.Options) (adaptivetc.Result, error) {
	panic("boom")
}

// TestFutureRepanics checks that a panic inside a pooled cell surfaces on
// the collecting goroutine rather than killing the process from a worker.
func TestFutureRepanics(t *testing.T) {
	cfg := Config{Parallel: 2}
	fu := cfg.submit(panicEngine{}, nil, adaptivetc.Options{})
	defer func() {
		if r := recover(); r == nil {
			t.Error("await did not re-raise the cell's panic")
		}
	}()
	fu.await()
}

// TestRunnerPanicPropagation drives a real panic — the Sim livelock guard,
// fired deterministically by VirtualLimit: 1 — through both execution
// modes. Sequentially the cell runs inline, so submit itself panics;
// pooled, the panic must travel through the future and re-raise at await,
// not kill the process from a pool goroutine.
func TestRunnerPanicPropagation(t *testing.T) {
	prog, err := BuildProgram("nqueens-array", 6, 0, false)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	opt := adaptivetc.Options{Workers: 2, VirtualLimit: 1}
	catch := func(f func()) (recovered any) {
		defer func() { recovered = recover() }()
		f()
		return nil
	}
	check := func(mode string, r any) {
		t.Helper()
		if r == nil {
			t.Fatalf("%s: the VirtualLimit=1 livelock guard did not fire", mode)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "virtual time limit") {
			t.Fatalf("%s: recovered %v, want the Sim limit panic", mode, r)
		}
	}

	seq := Config{Parallel: 1}
	check("sequential submit", catch(func() { seq.submit(adaptivetc.NewCilk(), prog, opt) }))

	pool := Config{Parallel: 4}
	fu := pool.submit(adaptivetc.NewCilk(), prog, opt)
	check("pooled await", catch(func() { fu.await() }))

	// The pool survives its cell's panic: the semaphore slot was released,
	// so later cells still run to completion.
	res, err := pool.submit(adaptivetc.NewCilk(), prog, adaptivetc.Options{Workers: 2}).await()
	if err != nil {
		t.Fatalf("cell after panic: %v", err)
	}
	if res.Value == 0 {
		t.Fatal("cell after panic returned no solutions")
	}
}
