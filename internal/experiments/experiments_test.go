package experiments

import (
	"bytes"
	"strings"
	"testing"

	"adaptivetc/problems/sudoku"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Scale: Quick, Out: buf, MaxThreads: 4, Seed: 1}
}

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{"quick": Quick, "default": Default, "": Default, "full": Full}
	for in, want := range cases {
		got, ok := ParseScale(in)
		if !ok || got != want {
			t.Errorf("ParseScale(%q) = %v,%v", in, got, ok)
		}
	}
	if _, ok := ParseScale("bogus"); ok {
		t.Error("accepted bogus scale")
	}
	if Quick.String() != "quick" || Default.String() != "default" || Full.String() != "full" {
		t.Error("Scale.String broken")
	}
}

func TestWorkloadsCoverTable1(t *testing.T) {
	for _, s := range []Scale{Quick, Default, Full} {
		wls := Figure4Workloads(s)
		if len(wls) != 8 {
			t.Fatalf("scale %v: %d workloads, want the 8 of Table 1", s, len(wls))
		}
		names := map[string]bool{}
		for _, wl := range wls {
			names[wl.Name] = true
			if wl.Prog == nil {
				t.Errorf("%v/%s: nil program", s, wl.Name)
			}
		}
		for _, want := range []string{"Nqueen-array", "Nqueen-compute", "Strimko", "Knight's Tour", "Sudoku", "Pentomino", "Fib", "Comp"} {
			if !names[want] {
				t.Errorf("scale %v: missing %s", s, want)
			}
		}
	}
}

func TestTaskprivateFlags(t *testing.T) {
	for _, wl := range Figure4Workloads(Quick) {
		hasPayload := wl.Prog.Root().Bytes() > 0
		if wl.Taskprivate != hasPayload {
			t.Errorf("%s: Taskprivate=%v but workspace payload=%v", wl.Name, wl.Taskprivate, hasPayload)
		}
	}
}

func TestTable3SpecsPairs(t *testing.T) {
	specs := Table3Specs(Quick)
	if len(specs) != 6 {
		t.Fatalf("%d specs, want 6", len(specs))
	}
	for i := 0; i < 6; i += 2 {
		l, r := specs[i], specs[i+1]
		if !strings.HasSuffix(l.Label, "L") || !strings.HasSuffix(r.Label, "R") {
			t.Errorf("pair %d labels %q/%q", i/2, l.Label, r.Label)
		}
		if l.Size != r.Size {
			t.Errorf("pair %d sizes differ", i/2)
		}
	}
}

func TestByNameDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := ByName("table3", quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tree3L") {
		t.Errorf("table3 output missing tree3L:\n%s", buf.String())
	}
	if err := ByName("nope", quickCfg(&buf)); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFigure5Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure5(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Nqueen-array", "Fib", "adaptivetc"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 5 output missing %q", want)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "serial") {
		t.Error("table 2 output missing serial column")
	}
}

func TestFigure6And7Run(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure6(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "taskprivate/copy") {
		t.Error("figure 6 output missing copy column")
	}
	buf.Reset()
	if err := Figure7(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wait_children") {
		t.Error("figure 7 output missing wait_children")
	}
}

func TestFigure8HeavyPath(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure8(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "depth 1 children") {
		t.Errorf("figure 8 output:\n%s", buf.String())
	}
}

func TestHeavyPathShares(t *testing.T) {
	p := sudoku.Input1(3, 48)
	levels, err := HeavyPath(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) == 0 {
		t.Fatal("no levels")
	}
	// Shares are percentages of the whole tree: every level's total must
	// be ≤ 100 and strictly decreasing as we descend the heavy path.
	prevTotal := 101.0
	for i, shares := range levels {
		var total float64
		for _, s := range shares {
			if s < 0 || s > 100 {
				t.Fatalf("level %d share %f out of range", i+1, s)
			}
			total += s
		}
		if total > prevTotal+1e-9 {
			t.Fatalf("level %d total %.2f exceeds parent level %.2f", i+1, total, prevTotal)
		}
		prevTotal = total
	}
}

// TestFigure9CutoffStarves asserts the paper's core Figure 9 claim at quick
// scale: the cut-off strategies stop scaling while AdaptiveTC continues.
func TestFigure9CutoffStarves(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup sweep")
	}
	var buf bytes.Buffer
	cfg := Config{Scale: Quick, Out: &buf, MaxThreads: 8, Seed: 1}
	if err := Figure9(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cutoff-library") {
		t.Fatalf("figure 9 output:\n%s", out)
	}
}

func TestStealCountsRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := StealCounts(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"migrations", "tascell", "adaptivetc", "tree3R"} {
		if !strings.Contains(out, want) {
			t.Errorf("steals output missing %q", want)
		}
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	rows := []series{
		{name: "adaptivetc", values: []float64{1, 2, 4, 7.8}},
		{name: "cilk", values: []float64{0.4, 0.8, 1.6, 3.2}},
	}
	renderChart(&buf, []int{1, 2, 4, 8}, rows)
	out := buf.String()
	if !strings.Contains(out, "A=adaptivetc") || !strings.Contains(out, "C=cilk") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "threads") {
		t.Fatal("axis label missing")
	}
	// Degenerate inputs must not crash.
	renderChart(&buf, nil, rows)
	renderChart(&buf, []int{1}, nil)
}

func TestCSVExport(t *testing.T) {
	var out, csv bytes.Buffer
	CSVHeader(&csv)
	cfg := Config{Scale: Quick, Out: &out, MaxThreads: 2, Seed: 1, CSV: &csv}
	if err := Figure9(cfg); err != nil {
		t.Fatal(err)
	}
	got := csv.String()
	if !strings.HasPrefix(got, "experiment,workload,engine,threads,speedup\n") {
		t.Fatalf("missing CSV header:\n%s", got)
	}
	if !strings.Contains(got, "fig9,") || !strings.Contains(got, ",adaptivetc,") {
		t.Fatalf("missing rows:\n%s", got)
	}
}
