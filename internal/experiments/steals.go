package experiments

import (
	"fmt"

	"adaptivetc"
)

// StealCounts implements the paper's stated future work (§5.3.2): "In the
// future, we will compare the number of steals in Cilk, the number of
// steals in AdaptiveTC and the number of responding requests in Tascell to
// analyze and evaluate the dynamic load balancing."
//
// For each unbalanced workload of Figure 10 it reports, at the full thread
// count, how many task migrations each system performed (steals for the
// deque-based engines, answered requests for Tascell), how many attempts
// failed, how many special tasks AdaptiveTC had to create, the share of
// worker time spent waiting at joins and stealing/idling (the quantities
// behind the paper's 14.44%/0.56% Tree3L observation), and the resulting
// speedup — making the load-balancing/overhead trade explicit.
func StealCounts(cfg Config) error {
	w := cfg.out()
	n := cfg.threadsMax()
	header(w, fmt.Sprintf("Extension — steal/request counts at %d threads, scale=%s (the paper's §5.3.2 future work)", n, cfg.Scale),
		"Migrations move work between threads; failed attempts burn time; speedup shows what the migrations bought.")

	_, input1, input2 := SudokuInputs(cfg.Scale)
	programs := []adaptivetc.Program{input1, input2}
	for _, spec := range Table3Specs(cfg.Scale) {
		programs = append(programs, newTree(spec))
	}

	engines := []adaptivetc.Engine{
		adaptivetc.NewCilkSynched(),
		adaptivetc.NewTascell(),
		adaptivetc.NewAdaptiveTC(),
	}
	bases := make([]*future, len(programs))
	cells := make([][]*future, len(programs))
	for i, p := range programs {
		bases[i] = cfg.submitSerial(p)
		for _, e := range engines {
			cells[i] = append(cells[i], cfg.submit(e, p, adaptivetc.Options{Workers: n, Seed: cfg.seed(), Profile: true}))
		}
	}
	fmt.Fprintf(w, "\n%-22s%-14s%12s%12s%10s%8s%8s%10s\n",
		"workload", "engine", "migrations", "failed", "specials", "wait%", "idle%", "speedup")
	for i, p := range programs {
		base, err := awaitBaseline(bases[i])
		if err != nil {
			return err
		}
		for j, e := range engines {
			res, err := cells[i][j].await()
			if err != nil {
				return err
			}
			if err := base.check(res); err != nil {
				return err
			}
			migrations := res.Stats.Steals
			failed := res.Stats.StealFails
			total := float64(res.Stats.WorkerTime)
			fmt.Fprintf(w, "%-22s%-14s%12d%12d%10d%8.2f%8.2f%10.2f\n",
				p.Name(), e.Name(), migrations, failed, res.Stats.SpecialTasks,
				100*float64(res.Stats.WaitTime)/total,
				100*float64(res.Stats.StealTime)/total,
				float64(base.makespan)/float64(res.Makespan))
		}
	}
	fmt.Fprintln(w, "\nReading: Cilk migrates often and cheaply because every node is a task;")
	fmt.Fprintln(w, "Tascell migrates rarely (each move costs a backtrack + copy); AdaptiveTC")
	fmt.Fprintln(w, "sits between, paying a special task each time starvation forces it to")
	fmt.Fprintln(w, "re-open a subtree.")
	return nil
}
