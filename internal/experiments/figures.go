package experiments

import (
	"fmt"
	"io"

	"adaptivetc"
)

// engines4 is the comparison set of Figure 4: Cilk, Cilk-SYNCHED (only for
// taskprivate benchmarks), Tascell and AdaptiveTC.
func engines4(taskprivate bool) []adaptivetc.Engine {
	es := []adaptivetc.Engine{adaptivetc.NewCilk()}
	if taskprivate {
		es = append(es, adaptivetc.NewCilkSynched())
	}
	return append(es, adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC())
}

// Figure4 regenerates the speedup-vs-threads curves for all eight
// benchmarks (paper Figure 4 (a)–(h)).
func Figure4(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 4 — speedup vs threads, scale=%s", cfg.Scale),
		"Speedup = serial virtual time / engine virtual makespan.")
	threads := cfg.threads()
	for i, wl := range Figure4Workloads(cfg.Scale) {
		base, err := serial(wl.Prog, cfg.seed())
		if err != nil {
			return err
		}
		var rows []series
		for _, e := range engines4(wl.Taskprivate) {
			s, err := sweepSpeedups(e, wl.Prog, base, &cfg, "fig4", nil)
			if err != nil {
				return err
			}
			rows = append(rows, s)
		}
		printSpeedupTable(w, fmt.Sprintf("Figure 4(%c): %s  [paper: %s; instance: %s, serial %.1fms]",
			'a'+i, wl.Name, wl.Paper, wl.Prog.Name(), float64(base.makespan)/1e6), threads, rows)
	}
	return nil
}

// Figure5 regenerates the 8-thread bar chart with Cilk's execution time as
// the baseline (paper Figure 5).
func Figure5(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 5 — speedup at %d threads, baseline Cilk, scale=%s", cfg.threadsMax(), cfg.Scale),
		"Each cell is Cilk's makespan divided by the engine's makespan at the full thread count.")
	n := cfg.threadsMax()
	fmt.Fprintf(w, "\n%-18s%14s%14s%14s%14s\n", "benchmark", "cilk", "cilk-synched", "tascell", "adaptivetc")
	for _, wl := range Figure4Workloads(cfg.Scale) {
		base, err := serial(wl.Prog, cfg.seed())
		if err != nil {
			return err
		}
		cilkRes, err := mustRun(adaptivetc.NewCilk(), wl.Prog, adaptivetc.Options{Workers: n, Seed: cfg.seed()})
		if err != nil {
			return err
		}
		if err := base.check(cilkRes); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s%14.2f", wl.Name, 1.0)
		for _, e := range []adaptivetc.Engine{adaptivetc.NewCilkSynched(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC()} {
			if e.Name() == "cilk-synched" && !wl.Taskprivate {
				fmt.Fprintf(w, "%14s", "—")
				continue
			}
			res, err := mustRun(e, wl.Prog, adaptivetc.Options{Workers: n, Seed: cfg.seed()})
			if err != nil {
				return err
			}
			if err := base.check(res); err != nil {
				return err
			}
			fmt.Fprintf(w, "%14.2f", float64(cilkRes.Makespan)/float64(res.Makespan))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func (c Config) threadsMax() int {
	ts := c.threads()
	return ts[len(ts)-1]
}

// Table2 regenerates the one-thread execution times and their ratios to the
// serial program (paper Table 2).
func Table2(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Table 2 — execution time with one thread, scale=%s", cfg.Scale),
		"Virtual milliseconds and (ratio to serial), one worker.")
	fmt.Fprintf(w, "\n%-18s%12s", "benchmark", "serial")
	engines := []adaptivetc.Engine{
		adaptivetc.NewTascell(), adaptivetc.NewCilk(),
		adaptivetc.NewCilkSynched(), adaptivetc.NewAdaptiveTC(),
	}
	for _, e := range engines {
		fmt.Fprintf(w, "%20s", e.Name())
	}
	fmt.Fprintln(w)
	for _, wl := range Figure4Workloads(cfg.Scale) {
		base, err := serial(wl.Prog, cfg.seed())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s%10.1fms", wl.Name, float64(base.makespan)/1e6)
		for _, e := range engines {
			if e.Name() == "cilk-synched" && !wl.Taskprivate {
				fmt.Fprintf(w, "%20s", "—")
				continue
			}
			res, err := mustRun(e, wl.Prog, adaptivetc.Options{Workers: 1, Seed: cfg.seed()})
			if err != nil {
				return err
			}
			if err := base.check(res); err != nil {
				return err
			}
			fmt.Fprintf(w, "%12.1fms (%4.2f)", float64(res.Makespan)/1e6,
				float64(res.Makespan)/float64(base.makespan))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// breakdownRow prints one engine's phase percentages as text and as a
// stacked bar (w=working, c=copy, d=deque/nested, p=poll, W=wait, s=steal).
func breakdownRow(w io.Writer, name string, st adaptivetc.Stats) {
	total := float64(st.WorkerTime)
	if total <= 0 {
		total = 1
	}
	pct := func(v int64) float64 { return 100 * float64(v) / total }
	fmt.Fprintf(w, "%-16s working=%6.2f%%  taskprivate/copy=%6.2f%%  deque/nested=%6.2f%%  poll=%5.2f%%  wait=%5.2f%%  steal/idle=%5.2f%%\n",
		name, pct(st.WorkTime), pct(st.CopyTime), pct(st.DequeTime+st.RespondTime),
		pct(st.PollTime), pct(st.WaitTime), pct(st.StealTime))
	renderBar(w, name, []struct {
		mark byte
		pct  float64
	}{
		{'w', pct(st.WorkTime)},
		{'c', pct(st.CopyTime)},
		{'d', pct(st.DequeTime + st.RespondTime)},
		{'p', pct(st.PollTime)},
		{'W', pct(st.WaitTime)},
		{'s', pct(st.StealTime)},
	})
}

// Figure6 regenerates the one-thread overhead breakdowns (paper Figure 6).
func Figure6(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 6 — overhead breakdown with one thread, scale=%s", cfg.Scale),
		"Shares of a single worker's time: working, taskprivate/workspace copying, deque or nested-function management.")
	engines := []adaptivetc.Engine{
		adaptivetc.NewTascell(), adaptivetc.NewCilk(),
		adaptivetc.NewCilkSynched(), adaptivetc.NewAdaptiveTC(),
	}
	for i, wl := range figure67Workloads(cfg.Scale) {
		fmt.Fprintf(w, "\nFigure 6(%c): %s\n", 'a'+i, wl.Name)
		for _, e := range engines {
			if e.Name() == "cilk-synched" && !wl.Taskprivate {
				continue
			}
			res, err := mustRun(e, wl.Prog, adaptivetc.Options{Workers: 1, Profile: true, Seed: cfg.seed()})
			if err != nil {
				return err
			}
			breakdownRow(w, e.Name(), res.Stats)
		}
	}
	return nil
}

// figure67Workloads are the three benchmarks of Figures 6 and 7.
func figure67Workloads(s Scale) []Workload {
	all := Figure4Workloads(s)
	return []Workload{all[0], all[1], all[6]} // Nqueen-array, Nqueen-compute, Fib
}

// Figure7 regenerates Tascell's multi-thread overhead breakdown (paper
// Figure 7): working vs polling vs waiting for children at 2, 4, 8 threads.
func Figure7(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 7 — Tascell overhead breakdown with multiple threads, scale=%s", cfg.Scale),
		"Aggregated over all workers; wait_children is the non-suspendable join cost the paper highlights.")
	for i, wl := range figure67Workloads(cfg.Scale) {
		fmt.Fprintf(w, "\nFigure 7(%c): %s\n", 'a'+i, wl.Name)
		for _, n := range []int{2, 4, 8} {
			res, err := mustRun(adaptivetc.NewTascell(), wl.Prog,
				adaptivetc.Options{Workers: n, Profile: true, Seed: cfg.seed()})
			if err != nil {
				return err
			}
			st := res.Stats
			total := float64(st.WorkerTime)
			fmt.Fprintf(w, "  %d threads: working=%6.2f%%  polling=%5.2f%%  wait_children=%6.2f%%  respond=%5.2f%%  idle/steal=%6.2f%%\n",
				n, 100*float64(st.WorkTime)/total, 100*float64(st.PollTime)/total,
				100*float64(st.WaitTime)/total, 100*float64(st.RespondTime)/total,
				100*float64(st.StealTime)/total)
		}
	}
	return nil
}

// Figure8 reports the shape of the unbalanced Sudoku input1 tree along its
// heavy path (paper Figure 8).
func Figure8(cfg Config) error {
	w := cfg.out()
	_, input1, _ := SudokuInputs(cfg.Scale)
	header(w, fmt.Sprintf("Figure 8 — the unbalanced tree of Sudoku input1, scale=%s", cfg.Scale),
		"Subtree shares along the heavy path; the paper's tree (1,934,719,465 nodes, depth 63) shows 61%/28%/11% at depth 1.")
	st := adaptivetc.Analyze(input1, 0)
	fmt.Fprintf(w, "\nsize=%d; leaves=%d; depth=%d\n", st.Nodes, st.Leaves, st.Depth)
	levels, err := HeavyPath(input1, 4)
	if err != nil {
		return err
	}
	for d, shares := range levels {
		fmt.Fprintf(w, "depth %d children of heavy node:", d+1)
		for _, p := range shares {
			fmt.Fprintf(w, "  %.2f%%", p)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure9 regenerates the cut-off starvation experiment on Sudoku input1
// (paper Figure 9).
func Figure9(cfg Config) error {
	w := cfg.out()
	_, input1, _ := SudokuInputs(cfg.Scale)
	cutP := cfg.CutoffProgrammer
	if cutP <= 0 {
		cutP = 3
	}
	header(w, fmt.Sprintf("Figure 9 — Sudoku input1: AdaptiveTC vs cut-off strategies, scale=%s", cfg.Scale),
		fmt.Sprintf("Cutoff-programmer uses depth %d; Cutoff-library uses ⌈log2 N⌉. The paper reports both starving past 4 threads.", cutP))
	base, err := serial(input1, cfg.seed())
	if err != nil {
		return err
	}
	threads := cfg.threads()
	var rows []series
	for _, e := range []adaptivetc.Engine{
		adaptivetc.NewCilk(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC(),
		adaptivetc.NewCutoffProgrammer(), adaptivetc.NewCutoffLibrary(),
	} {
		mutate := func(o *adaptivetc.Options) {}
		if e.Name() == "cutoff-programmer" {
			mutate = func(o *adaptivetc.Options) { o.Cutoff = cutP }
		}
		s, err := sweepSpeedups(e, input1, base, &cfg, "fig9", mutate)
		if err != nil {
			return err
		}
		rows = append(rows, s)
	}
	printSpeedupTable(w, fmt.Sprintf("Sudoku input1 [%s, serial %.1fms]", input1.Name(), float64(base.makespan)/1e6), threads, rows)
	return nil
}

// Figure10 regenerates the unbalanced-tree load-balancing comparison
// (paper Figure 10): Sudoku input1/input2 plus the three Table 3 tree
// pairs, under Cilk-SYNCHED, Tascell and AdaptiveTC.
func Figure10(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 10 — speedup on unbalanced trees, scale=%s", cfg.Scale),
		"Cilk suspends waiting tasks; Tascell cannot (hurts right-heavy trees); AdaptiveTC suspends everything but special tasks.")
	threads := cfg.threads()
	engines := []adaptivetc.Engine{adaptivetc.NewCilkSynched(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC()}

	_, input1, input2 := SudokuInputs(cfg.Scale)
	for _, p := range []adaptivetc.Program{input1, input2} {
		base, err := serial(p, cfg.seed())
		if err != nil {
			return err
		}
		var rows []series
		for _, e := range engines {
			s, err := sweepSpeedups(e, p, base, &cfg, "fig10", nil)
			if err != nil {
				return err
			}
			rows = append(rows, s)
		}
		printSpeedupTable(w, fmt.Sprintf("Figure 10(a): %s [serial %.1fms]", p.Name(), float64(base.makespan)/1e6), threads, rows)
	}

	specs := Table3Specs(cfg.Scale)
	for i := 0; i < len(specs); i += 2 {
		for _, spec := range specs[i : i+2] {
			p := newTree(spec)
			base, err := serial(p, cfg.seed())
			if err != nil {
				return err
			}
			var rows []series
			for _, e := range engines {
				s, err := sweepSpeedups(e, p, base, &cfg, "fig10", nil)
				if err != nil {
					return err
				}
				rows = append(rows, s)
			}
			printSpeedupTable(w, fmt.Sprintf("Figure 10(%c): %s [serial %.1fms]",
				'b'+i/2, p.Name(), float64(base.makespan)/1e6), threads, rows)
		}
	}
	return nil
}

// Table3 describes the six random unbalanced trees (paper Table 3).
func Table3(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Table 3 — randomly generated unbalanced trees, scale=%s", cfg.Scale),
		"Scaled stand-ins for the paper's ~2-billion-node trees; same fraction vectors, same L/R mirroring.")
	fmt.Fprintf(w, "\n%-8s%12s%12s%7s  %s\n", "input", "nodes", "leaves", "depth", "depth-1 subtree shares (%)")
	for _, spec := range Table3Specs(cfg.Scale) {
		st := adaptivetc.Analyze(newTree(spec), 0)
		fmt.Fprintf(w, "%-8s%12d%12d%7d  ", spec.Label, st.Nodes, st.Leaves, st.Depth)
		for _, p := range st.Depth1Percent() {
			fmt.Fprintf(w, "%.3f ", p)
		}
		fmt.Fprintln(w)
	}
	return nil
}
