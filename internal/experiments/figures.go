package experiments

import (
	"fmt"
	"io"

	"adaptivetc"
)

// Every generator below is written submit-all-then-collect: the first loop
// schedules each experiment cell through the driver in runner.go, the second
// awaits them in the same order and formats. Under a sequential Config the
// cells run inline at submission; under Config.Parallel > 1 they overlap on
// the pool — the collect loop is single-threaded either way, so the report
// and the CSV come out byte-identical.

// engines4 is the comparison set of Figure 4: Cilk, Cilk-SYNCHED (only for
// taskprivate benchmarks), Tascell and AdaptiveTC.
func engines4(taskprivate bool) []adaptivetc.Engine {
	es := []adaptivetc.Engine{adaptivetc.NewCilk()}
	if taskprivate {
		es = append(es, adaptivetc.NewCilkSynched())
	}
	return append(es, adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC())
}

// Figure4 regenerates the speedup-vs-threads curves for all eight
// benchmarks (paper Figure 4 (a)–(h)).
func Figure4(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 4 — speedup vs threads, scale=%s", cfg.Scale),
		"Speedup = serial virtual time / engine virtual makespan.")
	threads := cfg.threads()
	wls := Figure4Workloads(cfg.Scale)
	bases := make([]*future, len(wls))
	sweeps := make([][]*sweep, len(wls))
	for i, wl := range wls {
		bases[i] = cfg.submitSerial(wl.Prog)
		for _, e := range engines4(wl.Taskprivate) {
			sweeps[i] = append(sweeps[i], cfg.submitSweep(e, wl.Prog, nil))
		}
	}
	for i, wl := range wls {
		base, err := awaitBaseline(bases[i])
		if err != nil {
			return err
		}
		var rows []series
		for _, s := range sweeps[i] {
			row, err := cfg.collectSweep(s, base, "fig4")
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		printSpeedupTable(w, fmt.Sprintf("Figure 4(%c): %s  [paper: %s; instance: %s, serial %.1fms]",
			'a'+i, wl.Name, wl.Paper, wl.Prog.Name(), float64(base.makespan)/1e6), threads, rows)
	}
	return nil
}

// Figure5 regenerates the 8-thread bar chart with Cilk's execution time as
// the baseline (paper Figure 5).
func Figure5(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 5 — speedup at %d threads, baseline Cilk, scale=%s", cfg.threadsMax(), cfg.Scale),
		"Each cell is Cilk's makespan divided by the engine's makespan at the full thread count.")
	n := cfg.threadsMax()
	wls := Figure4Workloads(cfg.Scale)
	bases := make([]*future, len(wls))
	cilks := make([]*future, len(wls))
	rest := make([][]*future, len(wls)) // nil entry = engine skipped for this workload
	for i, wl := range wls {
		bases[i] = cfg.submitSerial(wl.Prog)
		cilks[i] = cfg.submit(adaptivetc.NewCilk(), wl.Prog, adaptivetc.Options{Workers: n, Seed: cfg.seed()})
		for _, e := range []adaptivetc.Engine{adaptivetc.NewCilkSynched(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC()} {
			if e.Name() == "cilk-synched" && !wl.Taskprivate {
				rest[i] = append(rest[i], nil)
				continue
			}
			rest[i] = append(rest[i], cfg.submit(e, wl.Prog, adaptivetc.Options{Workers: n, Seed: cfg.seed()}))
		}
	}
	fmt.Fprintf(w, "\n%-18s%14s%14s%14s%14s\n", "benchmark", "cilk", "cilk-synched", "tascell", "adaptivetc")
	for i, wl := range wls {
		base, err := awaitBaseline(bases[i])
		if err != nil {
			return err
		}
		cilkRes, err := cilks[i].await()
		if err != nil {
			return err
		}
		if err := base.check(cilkRes); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s%14.2f", wl.Name, 1.0)
		for _, fu := range rest[i] {
			if fu == nil {
				fmt.Fprintf(w, "%14s", "—")
				continue
			}
			res, err := fu.await()
			if err != nil {
				return err
			}
			if err := base.check(res); err != nil {
				return err
			}
			fmt.Fprintf(w, "%14.2f", float64(cilkRes.Makespan)/float64(res.Makespan))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func (c Config) threadsMax() int {
	ts := c.threads()
	return ts[len(ts)-1]
}

// Table2 regenerates the one-thread execution times and their ratios to the
// serial program (paper Table 2).
func Table2(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Table 2 — execution time with one thread, scale=%s", cfg.Scale),
		"Virtual milliseconds and (ratio to serial), one worker.")
	engines := []adaptivetc.Engine{
		adaptivetc.NewTascell(), adaptivetc.NewCilk(),
		adaptivetc.NewCilkSynched(), adaptivetc.NewAdaptiveTC(),
	}
	wls := Figure4Workloads(cfg.Scale)
	bases := make([]*future, len(wls))
	cells := make([][]*future, len(wls)) // nil entry = engine skipped
	for i, wl := range wls {
		bases[i] = cfg.submitSerial(wl.Prog)
		for _, e := range engines {
			if e.Name() == "cilk-synched" && !wl.Taskprivate {
				cells[i] = append(cells[i], nil)
				continue
			}
			cells[i] = append(cells[i], cfg.submit(e, wl.Prog, adaptivetc.Options{Workers: 1, Seed: cfg.seed()}))
		}
	}
	fmt.Fprintf(w, "\n%-18s%12s", "benchmark", "serial")
	for _, e := range engines {
		fmt.Fprintf(w, "%20s", e.Name())
	}
	fmt.Fprintln(w)
	for i, wl := range wls {
		base, err := awaitBaseline(bases[i])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s%10.1fms", wl.Name, float64(base.makespan)/1e6)
		for _, fu := range cells[i] {
			if fu == nil {
				fmt.Fprintf(w, "%20s", "—")
				continue
			}
			res, err := fu.await()
			if err != nil {
				return err
			}
			if err := base.check(res); err != nil {
				return err
			}
			fmt.Fprintf(w, "%12.1fms (%4.2f)", float64(res.Makespan)/1e6,
				float64(res.Makespan)/float64(base.makespan))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// breakdownRow prints one engine's phase percentages as text and as a
// stacked bar (w=working, c=copy, d=deque/nested, p=poll, W=wait, s=steal).
func breakdownRow(w io.Writer, name string, st adaptivetc.Stats) {
	total := float64(st.WorkerTime)
	if total <= 0 {
		total = 1
	}
	pct := func(v int64) float64 { return 100 * float64(v) / total }
	fmt.Fprintf(w, "%-16s working=%6.2f%%  taskprivate/copy=%6.2f%%  deque/nested=%6.2f%%  poll=%5.2f%%  wait=%5.2f%%  steal/idle=%5.2f%%\n",
		name, pct(st.WorkTime), pct(st.CopyTime), pct(st.DequeTime+st.RespondTime),
		pct(st.PollTime), pct(st.WaitTime), pct(st.StealTime))
	renderBar(w, name, []struct {
		mark byte
		pct  float64
	}{
		{'w', pct(st.WorkTime)},
		{'c', pct(st.CopyTime)},
		{'d', pct(st.DequeTime + st.RespondTime)},
		{'p', pct(st.PollTime)},
		{'W', pct(st.WaitTime)},
		{'s', pct(st.StealTime)},
	})
}

// Figure6 regenerates the one-thread overhead breakdowns (paper Figure 6).
func Figure6(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 6 — overhead breakdown with one thread, scale=%s", cfg.Scale),
		"Shares of a single worker's time: working, taskprivate/workspace copying, deque or nested-function management.")
	engines := []adaptivetc.Engine{
		adaptivetc.NewTascell(), adaptivetc.NewCilk(),
		adaptivetc.NewCilkSynched(), adaptivetc.NewAdaptiveTC(),
	}
	wls := figure67Workloads(cfg.Scale)
	cells := make([][]*future, len(wls))
	names := make([][]string, len(wls))
	for i, wl := range wls {
		for _, e := range engines {
			if e.Name() == "cilk-synched" && !wl.Taskprivate {
				continue
			}
			cells[i] = append(cells[i], cfg.submit(e, wl.Prog, adaptivetc.Options{Workers: 1, Profile: true, Seed: cfg.seed()}))
			names[i] = append(names[i], e.Name())
		}
	}
	for i, wl := range wls {
		fmt.Fprintf(w, "\nFigure 6(%c): %s\n", 'a'+i, wl.Name)
		for j, fu := range cells[i] {
			res, err := fu.await()
			if err != nil {
				return err
			}
			breakdownRow(w, names[i][j], res.Stats)
		}
	}
	return nil
}

// figure67Workloads are the three benchmarks of Figures 6 and 7.
func figure67Workloads(s Scale) []Workload {
	all := Figure4Workloads(s)
	return []Workload{all[0], all[1], all[6]} // Nqueen-array, Nqueen-compute, Fib
}

// Figure7 regenerates Tascell's multi-thread overhead breakdown (paper
// Figure 7): working vs polling vs waiting for children at 2, 4, 8 threads.
func Figure7(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 7 — Tascell overhead breakdown with multiple threads, scale=%s", cfg.Scale),
		"Aggregated over all workers; wait_children is the non-suspendable join cost the paper highlights.")
	counts := []int{2, 4, 8}
	wls := figure67Workloads(cfg.Scale)
	cells := make([][]*future, len(wls))
	for i, wl := range wls {
		for _, n := range counts {
			cells[i] = append(cells[i], cfg.submit(adaptivetc.NewTascell(), wl.Prog,
				adaptivetc.Options{Workers: n, Profile: true, Seed: cfg.seed()}))
		}
	}
	for i, wl := range wls {
		fmt.Fprintf(w, "\nFigure 7(%c): %s\n", 'a'+i, wl.Name)
		for j, n := range counts {
			res, err := cells[i][j].await()
			if err != nil {
				return err
			}
			st := res.Stats
			total := float64(st.WorkerTime)
			fmt.Fprintf(w, "  %d threads: working=%6.2f%%  polling=%5.2f%%  wait_children=%6.2f%%  respond=%5.2f%%  idle/steal=%6.2f%%\n",
				n, 100*float64(st.WorkTime)/total, 100*float64(st.PollTime)/total,
				100*float64(st.WaitTime)/total, 100*float64(st.RespondTime)/total,
				100*float64(st.StealTime)/total)
		}
	}
	return nil
}

// Figure8 reports the shape of the unbalanced Sudoku input1 tree along its
// heavy path (paper Figure 8). Pure tree analysis, no engine cells — it
// stays sequential regardless of Config.Parallel.
func Figure8(cfg Config) error {
	w := cfg.out()
	_, input1, _ := SudokuInputs(cfg.Scale)
	header(w, fmt.Sprintf("Figure 8 — the unbalanced tree of Sudoku input1, scale=%s", cfg.Scale),
		"Subtree shares along the heavy path; the paper's tree (1,934,719,465 nodes, depth 63) shows 61%/28%/11% at depth 1.")
	st := adaptivetc.Analyze(input1, 0)
	fmt.Fprintf(w, "\nsize=%d; leaves=%d; depth=%d\n", st.Nodes, st.Leaves, st.Depth)
	levels, err := HeavyPath(input1, 4)
	if err != nil {
		return err
	}
	for d, shares := range levels {
		fmt.Fprintf(w, "depth %d children of heavy node:", d+1)
		for _, p := range shares {
			fmt.Fprintf(w, "  %.2f%%", p)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure9 regenerates the cut-off starvation experiment on Sudoku input1
// (paper Figure 9).
func Figure9(cfg Config) error {
	w := cfg.out()
	_, input1, _ := SudokuInputs(cfg.Scale)
	cutP := cfg.CutoffProgrammer
	if cutP <= 0 {
		cutP = 3
	}
	header(w, fmt.Sprintf("Figure 9 — Sudoku input1: AdaptiveTC vs cut-off strategies, scale=%s", cfg.Scale),
		fmt.Sprintf("Cutoff-programmer uses depth %d; Cutoff-library uses ⌈log2 N⌉. The paper reports both starving past 4 threads.", cutP))
	baseFu := cfg.submitSerial(input1)
	var sweeps []*sweep
	for _, e := range []adaptivetc.Engine{
		adaptivetc.NewCilk(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC(),
		adaptivetc.NewCutoffProgrammer(), adaptivetc.NewCutoffLibrary(),
	} {
		mutate := func(o *adaptivetc.Options) {}
		if e.Name() == "cutoff-programmer" {
			mutate = func(o *adaptivetc.Options) { o.Cutoff = cutP }
		}
		sweeps = append(sweeps, cfg.submitSweep(e, input1, mutate))
	}
	base, err := awaitBaseline(baseFu)
	if err != nil {
		return err
	}
	threads := cfg.threads()
	var rows []series
	for _, s := range sweeps {
		row, err := cfg.collectSweep(s, base, "fig9")
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	printSpeedupTable(w, fmt.Sprintf("Sudoku input1 [%s, serial %.1fms]", input1.Name(), float64(base.makespan)/1e6), threads, rows)
	return nil
}

// Figure10 regenerates the unbalanced-tree load-balancing comparison
// (paper Figure 10): Sudoku input1/input2 plus the three Table 3 tree
// pairs, under Cilk-SYNCHED, Tascell and AdaptiveTC.
func Figure10(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Figure 10 — speedup on unbalanced trees, scale=%s", cfg.Scale),
		"Cilk suspends waiting tasks; Tascell cannot (hurts right-heavy trees); AdaptiveTC suspends everything but special tasks.")
	threads := cfg.threads()
	engines := []adaptivetc.Engine{adaptivetc.NewCilkSynched(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC()}

	// The Sudoku inputs share panel (a); each Table 3 tree pair shares the
	// next letter. Flatten into one submit list so every program's cells are
	// in flight before the first panel is formatted.
	type panel struct {
		label  string // panel title minus the serial time, filled at collect
		base   *future
		sweeps []*sweep
	}
	var panels []panel
	submit := func(label string, p adaptivetc.Program) {
		pl := panel{label: label, base: cfg.submitSerial(p)}
		for _, e := range engines {
			pl.sweeps = append(pl.sweeps, cfg.submitSweep(e, p, nil))
		}
		panels = append(panels, pl)
	}
	_, input1, input2 := SudokuInputs(cfg.Scale)
	for _, p := range []adaptivetc.Program{input1, input2} {
		submit(fmt.Sprintf("Figure 10(a): %s", p.Name()), p)
	}
	specs := Table3Specs(cfg.Scale)
	for i := 0; i < len(specs); i += 2 {
		for _, spec := range specs[i : i+2] {
			p := newTree(spec)
			submit(fmt.Sprintf("Figure 10(%c): %s", 'b'+i/2, p.Name()), p)
		}
	}

	for _, pl := range panels {
		base, err := awaitBaseline(pl.base)
		if err != nil {
			return err
		}
		var rows []series
		for _, s := range pl.sweeps {
			row, err := cfg.collectSweep(s, base, "fig10")
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		printSpeedupTable(w, fmt.Sprintf("%s [serial %.1fms]", pl.label, float64(base.makespan)/1e6), threads, rows)
	}
	return nil
}

// Table3 describes the six random unbalanced trees (paper Table 3). Pure
// tree analysis, no engine cells — it stays sequential regardless of
// Config.Parallel.
func Table3(cfg Config) error {
	w := cfg.out()
	header(w, fmt.Sprintf("Table 3 — randomly generated unbalanced trees, scale=%s", cfg.Scale),
		"Scaled stand-ins for the paper's ~2-billion-node trees; same fraction vectors, same L/R mirroring.")
	fmt.Fprintf(w, "\n%-8s%12s%12s%7s  %s\n", "input", "nodes", "leaves", "depth", "depth-1 subtree shares (%)")
	for _, spec := range Table3Specs(cfg.Scale) {
		st := adaptivetc.Analyze(newTree(spec), 0)
		fmt.Fprintf(w, "%-8s%12d%12d%7d  ", spec.Label, st.Nodes, st.Leaves, st.Depth)
		for _, p := range st.Depth1Percent() {
			fmt.Fprintf(w, "%.3f ", p)
		}
		fmt.Fprintln(w)
	}
	return nil
}
