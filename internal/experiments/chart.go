package experiments

import (
	"fmt"
	"io"
	"strings"
)

// renderBar draws one stacked percentage bar in the idiom of the paper's
// Figures 6 and 7: one character per 2%, a letter per phase.
func renderBar(w io.Writer, label string, segments []struct {
	mark byte
	pct  float64
}) {
	var bar strings.Builder
	total := 0.0
	for _, seg := range segments {
		n := int(seg.pct/2 + 0.5)
		for i := 0; i < n; i++ {
			bar.WriteByte(seg.mark)
		}
		total += seg.pct
	}
	fmt.Fprintf(w, "  %-16s |%-50s| %5.1f%%\n", label, bar.String(), total)
}

// renderChart draws an ASCII line chart of speedup-vs-threads series, one
// mark per engine, in the visual idiom of the paper's figures. Rows are
// speedup bands from the top down; the ideal linear-speedup diagonal is
// drawn with '.' for reference.
func renderChart(w io.Writer, threads []int, rows []series) {
	if len(rows) == 0 || len(threads) == 0 {
		return
	}
	marks := []byte{'A', 'C', 'S', 'T', 'o', 'x', '+', '*'}
	// Assign stable marks by engine name so charts are comparable.
	markFor := func(name string) byte {
		switch name {
		case "adaptivetc":
			return 'A'
		case "cilk":
			return 'C'
		case "cilk-synched":
			return 'S'
		case "tascell":
			return 'T'
		case "cutoff-programmer":
			return 'P'
		case "cutoff-library":
			return 'L'
		case "helpfirst":
			return 'H'
		case "slaw":
			return 'W'
		}
		return marks[len(name)%len(marks)]
	}

	maxV := float64(threads[len(threads)-1])
	for _, r := range rows {
		for _, v := range r.values {
			if v > maxV {
				maxV = v
			}
		}
	}
	const height = 12
	colWidth := 6
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", colWidth*len(threads)+2))
	}
	rowOf := func(v float64) int {
		r := height - 1 - int(v/maxV*float64(height-1)+0.5)
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// Ideal linear speedup reference.
	for i, t := range threads {
		grid[rowOf(float64(t))][i*colWidth+colWidth/2] = '.'
	}
	for _, r := range rows {
		m := markFor(r.name)
		for i, v := range r.values {
			pos := i*colWidth + colWidth/2
			row := rowOf(v)
			if grid[row][pos] == ' ' || grid[row][pos] == '.' {
				grid[row][pos] = m
			} else {
				// Collision: nudge right.
				if pos+1 < len(grid[row]) {
					grid[row][pos+1] = m
				}
			}
		}
	}
	for i, line := range grid {
		label := "      "
		// Print the speedup value of this band at a few rows.
		if i%3 == 0 {
			v := maxV * float64(height-1-i) / float64(height-1)
			label = fmt.Sprintf("%5.1f ", v)
		}
		fmt.Fprintf(w, "  %s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", colWidth*len(threads)))
	fmt.Fprintf(w, "        ")
	for _, t := range threads {
		fmt.Fprintf(w, "%*d", colWidth, t)
	}
	fmt.Fprintln(w, "   threads")
	fmt.Fprint(w, "        legend:")
	for _, r := range rows {
		fmt.Fprintf(w, " %c=%s", markFor(r.name), r.name)
	}
	fmt.Fprintln(w, " .=linear")
}
