// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the deterministic virtual-time platform: the
// speedup curves of Figures 4 and 5, the one-thread costs of Table 2, the
// overhead breakdowns of Figures 6 and 7, the tree shapes of Figure 8 and
// Table 3, the cut-off starvation of Figure 9 and the unbalanced-tree
// comparison of Figure 10.
//
// Problem sizes scale with Config.Scale: the paper's inputs (16-queens,
// Knight 6×6, Fib 45, 1.9-billion-node Sudoku trees) ran for minutes to
// hours on 2010 hardware; Quick and Default shrink them so a full
// regeneration takes seconds to minutes while preserving every qualitative
// relationship, and Full approaches paper-like tree sizes.
package experiments

import (
	"adaptivetc"
	"adaptivetc/problems/comp"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/knight"
	"adaptivetc/problems/nqueens"
	"adaptivetc/problems/pentomino"
	"adaptivetc/problems/strimko"
	"adaptivetc/problems/sudoku"
	"adaptivetc/problems/synthtree"
)

// Scale selects workload sizes.
type Scale int

const (
	// Quick: tens of thousands of nodes per benchmark; the whole suite in
	// well under a minute.
	Quick Scale = iota
	// Default: hundreds of thousands to ~2M nodes; minutes.
	Default
	// Full: multi-million-node trees approaching the paper's; an hour or
	// more on one core.
	Full
)

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, bool) {
	switch s {
	case "quick":
		return Quick, true
	case "default", "":
		return Default, true
	case "full":
		return Full, true
	}
	return 0, false
}

func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return "default"
	}
}

// Workload pairs a display name (the paper's benchmark name) with a
// program instance at the configured scale.
type Workload struct {
	// Name is the paper's label, e.g. "Nqueen-array(16)".
	Name string
	// Paper notes the paper's original input for the record.
	Paper string
	// Prog is the scaled instance actually run.
	Prog adaptivetc.Program
	// Taskprivate reports whether the benchmark has taskprivate data
	// (fib and comp do not, so Figure 4 omits their Cilk-SYNCHED series).
	Taskprivate bool
}

// Figure4Workloads returns the paper's eight benchmarks (Table 1) at the
// given scale, in the paper's order.
func Figure4Workloads(s Scale) []Workload {
	type sizes struct{ qa, qc, strimko, knightW, knightH, balRemoved, pent, fib, comp int }
	var z sizes
	switch s {
	case Quick:
		z = sizes{qa: 10, qc: 10, strimko: 10, knightW: 5, knightH: 4, balRemoved: 42, pent: 8, fib: 24, comp: 8000}
	case Full:
		z = sizes{qa: 13, qc: 12, strimko: 5, knightW: 5, knightH: 5, balRemoved: 48, pent: 10, fib: 30, comp: 60000}
	default:
		z = sizes{qa: 12, qc: 11, strimko: 7, knightW: 4, knightH: 6, balRemoved: 46, pent: 9, fib: 27, comp: 20000}
	}
	pieces := "FILNPTUVWXYZ"
	return []Workload{
		{Name: "Nqueen-array", Paper: "Nqueen-array(16)", Prog: nqueens.NewArray(z.qa), Taskprivate: true},
		{Name: "Nqueen-compute", Paper: "Nqueen-compute(16)", Prog: nqueens.NewCompute(z.qc), Taskprivate: true},
		{Name: "Strimko", Paper: "Strimko 7x7", Prog: strimko.Diagonal(7, z.strimko), Taskprivate: true},
		{Name: "Knight's Tour", Paper: "Knight's Tour (6x6)", Prog: knight.NewRect(z.knightW, z.knightH, 0, 0), Taskprivate: true},
		{Name: "Sudoku", Paper: "Sudoku (balanced tree)", Prog: sudoku.Balanced(3, z.balRemoved), Taskprivate: true},
		{Name: "Pentomino", Paper: "Pentomino(13)", Prog: pentomino.NewBoard(5, z.pent, pieces[:z.pent], "bench"), Taskprivate: true},
		{Name: "Fib", Paper: "Fib(45)", Prog: fib.New(z.fib), Taskprivate: false},
		{Name: "Comp", Paper: "Comp(60000)", Prog: comp.New(z.comp), Taskprivate: false},
	}
}

// SudokuInputs returns the balanced, input1 and input2 Sudoku instances of
// §5.3 at the given scale.
func SudokuInputs(s Scale) (balanced, input1, input2 adaptivetc.Program) {
	switch s {
	case Quick:
		return sudoku.Balanced(3, 42), sudoku.Input1(3, 52), sudoku.Input2(3, 52)
	case Full:
		return sudoku.Balanced(3, 48), sudoku.Input1(3, 57), sudoku.Input2(3, 55)
	default:
		return sudoku.Balanced(3, 46), sudoku.Input1(3, 54), sudoku.Input2(3, 54)
	}
}

// TreeSize returns the synthetic-tree leaf count for a scale. (Table 3's
// trees have ~2 billion nodes; these are scaled stand-ins.)
func TreeSize(s Scale) int64 {
	switch s {
	case Quick:
		return 50_000
	case Full:
		return 600_000
	default:
		return 150_000
	}
}

// Table3Specs returns the six random unbalanced trees of Table 3 (the
// three left-heavy shapes and their reversals) at the given scale.
func Table3Specs(s Scale) []synthtree.Spec {
	size := TreeSize(s)
	mk := func(spec synthtree.Spec) synthtree.Spec {
		spec.Seed = 20100424 // the paper's publication date as a seed
		return spec
	}
	t1 := mk(synthtree.Tree1(size))
	t2 := mk(synthtree.Tree2(size))
	t3 := mk(synthtree.Tree3(size))
	return []synthtree.Spec{t1, t1.Reverse(), t2, t2.Reverse(), t3, t3.Reverse()}
}
