package experiments

import (
	"fmt"

	"adaptivetc"
	"adaptivetc/problems/synthtree"
)

func newTree(spec synthtree.Spec) adaptivetc.Program { return synthtree.New(spec) }

// HeavyPath walks `levels` steps down a program's search tree, always
// descending into the largest child, and reports at every level each
// child's share of the *whole* tree (in percent) — the annotation style of
// the paper's Figure 8.
func HeavyPath(p adaptivetc.Program, levels int) ([][]float64, error) {
	ws := p.Root()
	var sizeOf func(depth int) int64
	sizeOf = func(depth int) int64 {
		if _, term := p.Terminal(ws, depth); term {
			return 1
		}
		size := int64(1)
		n := p.Moves(ws, depth)
		for m := 0; m < n; m++ {
			if !p.Apply(ws, depth, m) {
				continue
			}
			size += sizeOf(depth + 1)
			p.Undo(ws, depth, m)
		}
		return size
	}
	total := sizeOf(0)
	if total <= 0 {
		return nil, fmt.Errorf("heavypath: empty tree for %s", p.Name())
	}

	var out [][]float64
	depth := 0
	for level := 0; level < levels; level++ {
		if _, term := p.Terminal(ws, depth); term {
			break
		}
		var shares []float64
		var sizes []int64
		n := p.Moves(ws, depth)
		for m := 0; m < n; m++ {
			if !p.Apply(ws, depth, m) {
				continue
			}
			s := sizeOf(depth + 1)
			p.Undo(ws, depth, m)
			sizes = append(sizes, s)
			shares = append(shares, 100*float64(s)/float64(total))
		}
		if len(sizes) == 0 {
			break
		}
		out = append(out, shares)
		// Descend into the heaviest child. We must re-find its move index
		// among the legal moves.
		best, bestIdx := int64(-1), -1
		legal := 0
		for m := 0; m < n; m++ {
			if !p.Apply(ws, depth, m) {
				continue
			}
			if sizes[legal] > best {
				best, bestIdx = sizes[legal], m
			}
			p.Undo(ws, depth, m)
			legal++
		}
		if bestIdx < 0 {
			break
		}
		p.Apply(ws, depth, bestIdx)
		depth++
	}
	return out, nil
}
