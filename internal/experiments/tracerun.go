// The -trace entry point: one fully traced AdaptiveTC run, invariant-checked
// and exported as Chrome trace_event JSON for chrome://tracing / Perfetto.
package experiments

import (
	"fmt"
	"os"

	"adaptivetc"
	"adaptivetc/internal/trace"
	"adaptivetc/problems/nqueens"
)

// TraceRun executes one AdaptiveTC n-queens(8) run with the event tracer
// attached, replays the trace against the scheduler invariants, and writes
// it as Chrome trace_event JSON to path. The run uses the Config's seed and
// thread count on the deterministic Sim platform, so the exported trace is
// reproducible byte-for-byte.
func TraceRun(cfg Config, path string) error {
	p := nqueens.NewArray(8)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{Seed: cfg.seed()})
	if err != nil {
		return fmt.Errorf("trace: serial oracle: %w", err)
	}

	rec := trace.NewRecorder()
	defer rec.Release()
	workers := cfg.MaxThreads
	if workers <= 0 {
		workers = 8
	}
	res, err := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{
		Workers: workers,
		Seed:    cfg.seed(),
		Tracer:  rec,
	})
	if err != nil {
		return fmt.Errorf("trace: traced run: %w", err)
	}
	if cfg.InjectTraceViolation {
		// A thief-side steal failure no deque recorded: breaks
		// steal-symmetry, so Check below must report a violation.
		rec.WorkerLog(0).Add(0, trace.OpStealFail, 0, 0, 0)
	}
	if err := rec.Check(res.Value, serial.Value); err != nil {
		return fmt.Errorf("trace: invariant check: %w", err)
	}

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := rec.WriteChrome(f); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "traced %s P=%d: value=%d events=%d, invariants ok, wrote %s\n",
			res.Engine, workers, res.Value, rec.EventCount(), path)
	}
	return nil
}
