package tascell

import (
	"fmt"
	"testing"

	"adaptivetc/internal/sched"
)

// skewed is a two-child tree where the configured side holds almost all of
// the weight: heavyFirst=true puts the big subtree on iteration 0
// (left-heavy), false on the last iteration (right-heavy).
type skewed struct {
	total      int64
	heavyFirst bool
}

type skewWS struct{ stack []int64 }

func (w *skewWS) Clone() sched.Workspace {
	return &skewWS{stack: append([]int64(nil), w.stack...)}
}
func (w *skewWS) Bytes() int { return 64 }

func (p skewed) Name() string {
	return fmt.Sprintf("skewed(%d,heavyFirst=%v)", p.total, p.heavyFirst)
}
func (p skewed) Root() sched.Workspace { return &skewWS{stack: []int64{p.total}} }
func (p skewed) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*skewWS)
	if s.stack[len(s.stack)-1] <= 1 {
		return 1, true
	}
	return 0, false
}
func (p skewed) Moves(sched.Workspace, int) int { return 2 }
func (p skewed) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*skewWS)
	size := s.stack[len(s.stack)-1]
	heavy := size - size/8 // 7/8 of the weight
	light := size - heavy
	if light == 0 {
		light, heavy = 1, size-1
	}
	var child int64
	if (m == 0) == p.heavyFirst {
		child = heavy
	} else {
		child = light
	}
	if child == 0 {
		return false
	}
	s.stack = append(s.stack, child)
	return true
}
func (p skewed) Undo(w sched.Workspace, depth, m int) {
	s := w.(*skewWS)
	s.stack = s.stack[:len(s.stack)-1]
}

// NodeCost keeps per-node work meaningful relative to steal latency.
func (p skewed) NodeCost(sched.Workspace, int) int64 { return 700 }

func runT(t *testing.T, p sched.Program, workers int, profile bool) sched.Result {
	t.Helper()
	res, err := New().Run(p, sched.Options{Workers: workers, Seed: 5, Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValuesAcrossWorkers(t *testing.T) {
	p := skewed{total: 30000, heavyFirst: true}
	serial, _ := sched.Serial{}.Run(p, sched.Options{})
	for _, workers := range []int{1, 2, 4, 8} {
		res := runT(t, p, workers, false)
		if res.Value != serial.Value {
			t.Errorf("P=%d: %d, want %d", workers, res.Value, serial.Value)
		}
	}
}

func TestNoTasksUntilRequested(t *testing.T) {
	p := skewed{total: 5000, heavyFirst: true}
	res := runT(t, p, 1, false)
	if res.Stats.WorkspaceCopies != 0 {
		t.Errorf("one worker copied %d workspaces; Tascell copies only on extraction", res.Stats.WorkspaceCopies)
	}
	if res.Stats.Requests != 0 || res.Stats.Steals != 0 {
		t.Error("phantom requests with a single worker")
	}
}

func TestExtractionCountsMatch(t *testing.T) {
	p := skewed{total: 60000, heavyFirst: true}
	res := runT(t, p, 8, false)
	if res.Stats.Steals == 0 {
		t.Fatal("no successful requests with 8 workers")
	}
	if res.Stats.Requests != res.Stats.Steals {
		t.Errorf("victim answered %d tasks but thieves received %d", res.Stats.Requests, res.Stats.Steals)
	}
	// One workspace clone per extracted task.
	if res.Stats.WorkspaceCopies != res.Stats.Requests {
		t.Errorf("copies %d != extractions %d", res.Stats.WorkspaceCopies, res.Stats.Requests)
	}
}

// TestRightHeavyWaitsMore is the §5.3.2 asymmetry at unit-test scale.
func TestRightHeavyWaitsMore(t *testing.T) {
	left := runT(t, skewed{total: 60000, heavyFirst: true}, 8, true)
	right := runT(t, skewed{total: 60000, heavyFirst: false}, 8, true)
	if left.Value != right.Value {
		t.Fatalf("mirror changed the answer: %d vs %d", left.Value, right.Value)
	}
	lw := float64(left.Stats.WaitTime) / float64(left.Stats.WorkerTime)
	rw := float64(right.Stats.WaitTime) / float64(right.Stats.WorkerTime)
	t.Logf("wait_children: left-heavy %.1f%%, right-heavy %.1f%%", 100*lw, 100*rw)
	if rw <= lw {
		t.Errorf("right-heavy wait share %.3f not above left-heavy %.3f", rw, lw)
	}
}

func TestDeterministic(t *testing.T) {
	p := skewed{total: 20000, heavyFirst: false}
	a := runT(t, p, 6, false)
	b := runT(t, p, 6, false)
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestHalvingLeavesWorkForVictim(t *testing.T) {
	// A single victim with one thief: after the first extraction the
	// victim must still hold at least as many iterations as it gave away
	// (keep = r/2, give = r - r/2 of the remainder, victim also keeps the
	// in-flight child).
	p := skewed{total: 40000, heavyFirst: true}
	res := runT(t, p, 2, false)
	if res.Stats.Steals == 0 {
		t.Skip("no extraction happened at this size/seed")
	}
	if res.Value != 0 {
		serial, _ := sched.Serial{}.Run(p, sched.Options{})
		if res.Value != serial.Value {
			t.Fatalf("value %d, want %d", res.Value, serial.Value)
		}
	}
}

func TestSingleGrainVariant(t *testing.T) {
	p := skewed{total: 40000, heavyFirst: true}
	serial, _ := sched.Serial{}.Run(p, sched.Options{})
	res, err := NewSingle().Run(p, sched.Options{Workers: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != serial.Value {
		t.Fatalf("value %d, want %d", res.Value, serial.Value)
	}
	half, err := New().Run(p, sched.Options{Workers: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// On a binary-split tree both grains give one iteration, so only check
	// both complete correctly and report distinct names.
	if half.Value != serial.Value {
		t.Fatalf("half-grain value %d, want %d", half.Value, serial.Value)
	}
	if NewSingle().Name() == New().Name() {
		t.Fatal("variants share a name")
	}
}
