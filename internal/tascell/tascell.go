// Package tascell implements the Tascell baseline (Hiraishi et al., PPoPP
// 2009) as this paper describes it: tasks live on the worker's execution
// stack, not in a deque. An idle thread sends a request to a busy victim;
// the victim, at its next poll, *temporarily backtracks* — it undoes the
// moves along its spine of nested calls up to the oldest level that still
// has untried iterations, clones the workspace there (the only point where
// Tascell ever copies a workspace), packages half of the remaining
// iterations as a task for the requester, restores its state by re-applying
// the undone moves, and resumes. Because a level's state lives in stack
// frames, a level that reaches its join with stolen children outstanding
// cannot be suspended: the worker waits, answering further requests while
// it does — this wait_children time is exactly what Figure 7 and the
// left/right-heavy asymmetry of Figure 10 measure.
//
// The halving rule ("In Tascell, a parallel-for loop construct is
// implemented by spawning a half of the tasks for the requested threads",
// §5.3.2) is what makes right-heavy trees painful: the victim keeps the
// early iterations and gives away the late ones, so when the heavy subtree
// is last the victim finishes its light half quickly and then waits.
package tascell

import (
	"fmt"
	"sync"
	"sync/atomic"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/vtime"
)

// Engine is the Tascell baseline scheduler.
type Engine struct {
	single bool
}

// New returns a Tascell engine with the paper's parallel-for extraction
// rule: a victim gives away half of a level's remaining iterations.
func New() *Engine { return &Engine{} }

// NewSingle returns a Tascell variant that extracts exactly one iteration
// per request — the plain-recursion rule the paper's §1 describes
// ("creates a task for the requesting thread"). Used by the extraction
// granularity ablation bench.
func NewSingle() *Engine { return &Engine{single: true} }

// Name implements sched.Engine.
func (e *Engine) Name() string {
	if e.single {
		return "tascell-single"
	}
	return "tascell"
}

// Run implements sched.Engine.
func (e *Engine) Run(p sched.Program, opt sched.Options) (sched.Result, error) {
	n := opt.WorkersOrDefault()
	rt := &runtime{
		prog:    p,
		costs:   opt.CostsOrDefault(),
		n:       n,
		single:  e.single,
		mail:    make([]chan *request, n),
		pending: make([]atomic.Int64, n),
		profile: opt.Profile,
	}
	for i := range rt.mail {
		rt.mail[i] = make(chan *request, n)
	}
	workers := make([]*tworker, n)
	makespan := opt.PlatformOrDefault().Run(n, func(proc vtime.Proc) {
		tw := &tworker{id: proc.ID(), proc: proc, rt: rt}
		workers[tw.id] = tw
		start := proc.Now()
		if tw.id == 0 {
			v := tw.exec(p.Root(), 0)
			rt.value.Store(v)
			rt.done.Store(true)
		}
		tw.idleLoop()
		tw.stats.WorkerTime += proc.Now() - start
	})
	var st sched.Stats
	for _, tw := range workers {
		if tw != nil {
			st.Add(tw.stats)
		}
	}
	if opt.Profile {
		st.WorkTime = st.WorkerTime - st.CopyTime - st.DequeTime - st.PollTime - st.WaitTime - st.StealTime - st.RespondTime
	}
	return sched.Result{
		Value:    rt.value.Load(),
		Makespan: makespan,
		Workers:  n,
		Engine:   e.Name(),
		Program:  p.Name(),
		Stats:    st,
	}, nil
}

type runtime struct {
	prog    sched.Program
	costs   sched.Costs
	n       int
	single  bool // extract one iteration per request instead of half
	mail    []chan *request
	pending []atomic.Int64 // requests in flight per victim mailbox
	profile bool
	done    atomic.Bool
	value   atomic.Int64
}

// request is an idle thread's plea for work. The victim replies with a task
// or nil ("nothing to give").
type request struct {
	reply chan *task
}

// task is a range of iterations [mStart, mEnd) of the node at depth,
// executed on a private clone of the victim's backtracked workspace. Its
// total is delivered to the victim's join for that level.
type task struct {
	ws           sched.Workspace
	depth        int
	mStart, mEnd int
	join         *join
}

// join counts a level's stolen children and accumulates their results.
type join struct {
	mu          sync.Mutex
	outstanding int
	sum         int64
}

func (j *join) addChild() {
	j.mu.Lock()
	j.outstanding++
	j.mu.Unlock()
}

func (j *join) deposit(v int64) {
	j.mu.Lock()
	j.sum += v
	j.outstanding--
	j.mu.Unlock()
}

func (j *join) drained() (int64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.outstanding > 0 {
		return 0, false
	}
	return j.sum, true
}

// level is one frame of the spine: the state of the move loop of one node
// of the current task's recursion.
type level struct {
	depth   int
	m       int // current candidate index; -1 before the loop starts
	limit   int // exclusive end of this level's iterations (shrunk by theft)
	inChild bool
	join    *join
}

type tworker struct {
	id    int
	proc  vtime.Proc
	rt    *runtime
	stats sched.Stats

	ws    sched.Workspace // workspace of the task being executed
	spine []*level
}

// exec runs the node reached by tw.ws at depth and returns its subtree
// value. Note tw.ws aliases ws; the field exists so respond can backtrack.
func (tw *tworker) exec(ws sched.Workspace, depth int) int64 {
	tw.ws = ws
	prog := tw.rt.prog
	c := &tw.rt.costs
	tw.stats.Nodes++
	sched.ChargeNode(prog, ws, depth, c, tw.proc)
	tw.proc.Yield()
	tw.nodeTick()
	if v, term := prog.Terminal(ws, depth); term {
		return v
	}
	lvl := &level{depth: depth, m: -1, limit: prog.Moves(ws, depth)}
	tw.spine = append(tw.spine, lvl)
	sum := tw.levelLoop(lvl, 0)
	tw.spine = tw.spine[:len(tw.spine)-1]
	return sum
}

// levelLoop runs lvl's iterations from mStart, joining stolen children at
// the end. The limit is re-read every iteration because respond may shrink
// it while we are deep in a child.
func (tw *tworker) levelLoop(lvl *level, mStart int) int64 {
	prog := tw.rt.prog
	c := &tw.rt.costs
	var sum int64
	moveCost := c.Move
	var nestedPerMove int64
	if tw.ws.Bytes() > 0 {
		// Tascell's sequential code keeps the workspace reachable for
		// backtracking, which taxes every workspace access a little.
		moveCost += c.TascellMove
		nestedPerMove = c.TascellMove
	}
	for mm := mStart; mm < lvl.limit; mm++ {
		lvl.m = mm
		tw.proc.Advance(moveCost)
		if tw.rt.profile {
			// The workspace-reachability tax is part of the "nested
			// function management" bar of the paper's Figure 6.
			tw.stats.DequeTime += nestedPerMove
		}
		if !prog.Apply(tw.ws, lvl.depth, mm) {
			continue
		}
		lvl.inChild = true
		sum += tw.exec(tw.ws, lvl.depth+1)
		lvl.inChild = false
		prog.Undo(tw.ws, lvl.depth, mm)
	}
	lvl.m = lvl.limit
	if lvl.join != nil {
		sum += tw.waitJoin(lvl.join)
	}
	return sum
}

// nodeTick is the per-node bookkeeping: the (cheap) nested-function
// overhead and the polling-flag check at every function entry. The mailbox
// itself is only drained when the flag says a request is actually waiting,
// so the common case costs a single load, as in Tascell's generated code.
func (tw *tworker) nodeTick() {
	c := &tw.rt.costs
	tw.proc.Advance(c.NestedCall + c.Poll)
	tw.stats.Polls++
	if tw.rt.profile {
		tw.stats.DequeTime += c.NestedCall
		tw.stats.PollTime += c.Poll
	}
	if tw.rt.pending[tw.id].Load() == 0 {
		return
	}
	t0 := tw.now()
	tw.drainRequests(true)
	if tw.rt.profile {
		tw.stats.PollTime += tw.proc.Now() - t0
	}
}

// drainRequests answers every pending request; when canGive is false (the
// worker is idle) every requester is turned away.
func (tw *tworker) drainRequests(canGive bool) {
	for {
		select {
		case req := <-tw.rt.mail[tw.id]:
			tw.rt.pending[tw.id].Add(-1)
			if canGive {
				tw.respond(req)
			} else {
				req.reply <- nil
			}
		default:
			return
		}
	}
}

// respond implements Tascell's backtracking task creation: find the oldest
// spine level with untried iterations, temporarily undo the moves above it,
// clone the workspace, hand half of the remaining iterations to the
// requester, and restore.
func (tw *tworker) respond(req *request) {
	prog := tw.rt.prog
	c := &tw.rt.costs
	victim := -1
	for i, lvl := range tw.spine {
		if lvl.m+1 < lvl.limit {
			victim = i
			break
		}
	}
	if victim < 0 {
		req.reply <- nil
		return
	}
	t0 := tw.now()
	tw.proc.Advance(c.Respond)
	// Temporary backtracking: undo from the deepest level down to the
	// chosen one, inclusive.
	for i := len(tw.spine) - 1; i >= victim; i-- {
		if lvl := tw.spine[i]; lvl.inChild {
			prog.Undo(tw.ws, lvl.depth, lvl.m)
		}
	}
	lvl := tw.spine[victim]
	if b := tw.ws.Bytes(); b > 0 {
		tw.proc.Advance(c.CopyBase + int64(b)/c.CopyBytesPerNs)
		tw.stats.WorkspaceCopies++
		tw.stats.WorkspaceBytes += int64(b)
	}
	clone := tw.ws.Clone()
	remaining := lvl.limit - (lvl.m + 1)
	keep := remaining / 2
	if tw.rt.single {
		keep = remaining - 1 // give exactly the last iteration away
	}
	split := lvl.m + 1 + keep
	if lvl.join == nil {
		lvl.join = &join{}
	}
	lvl.join.addChild()
	t := &task{ws: clone, depth: lvl.depth, mStart: split, mEnd: lvl.limit, join: lvl.join}
	lvl.limit = split
	// Restore: re-apply the undone moves from the chosen level back down.
	for i := victim; i < len(tw.spine); i++ {
		if l := tw.spine[i]; l.inChild {
			if !prog.Apply(tw.ws, l.depth, l.m) {
				panic(fmt.Sprintf("tascell: re-applying move %d at depth %d failed during restore", l.m, l.depth))
			}
		}
	}
	tw.stats.Requests++
	if tw.rt.profile {
		tw.stats.RespondTime += tw.proc.Now() - t0
	}
	req.reply <- t
}

// waitJoin is the non-suspendable join: the worker waits for its stolen
// children, answering requests from other levels of its spine meanwhile.
func (tw *tworker) waitJoin(j *join) int64 {
	c := &tw.rt.costs
	for {
		if v, done := j.drained(); done {
			return v
		}
		tw.drainRequests(true)
		// Account the sleep tick itself, not the whole wall span: respond
		// time spent answering requests mid-wait is tallied separately.
		if tw.rt.profile {
			tw.stats.WaitTime += c.WaitTick
		}
		tw.proc.Sleep(c.WaitTick)
	}
}

// idleLoop requests work from random victims until the run completes.
func (tw *tworker) idleLoop() {
	rt := tw.rt
	c := &rt.costs
	for !rt.done.Load() {
		tw.drainRequests(false)
		if rt.n == 1 {
			tw.proc.Sleep(c.WaitTick)
			continue
		}
		victim := tw.proc.Rand().Intn(rt.n - 1)
		if victim >= tw.id {
			victim++
		}
		t0 := tw.now()
		tw.proc.Advance(c.Steal)
		req := &request{reply: make(chan *task, 1)}
		rt.pending[victim].Add(1)
		rt.mail[victim] <- req
	awaitReply:
		for {
			select {
			case t := <-req.reply:
				if tw.rt.profile {
					tw.stats.StealTime += tw.proc.Now() - t0
				}
				if t == nil {
					tw.stats.StealFails++
					break awaitReply
				}
				tw.stats.Steals++
				tw.runTask(t)
				break awaitReply
			default:
			}
			if rt.done.Load() {
				return
			}
			tw.drainRequests(false)
			tw.proc.Sleep(c.WaitTick)
		}
	}
}

// runTask executes a stolen iteration range and deposits its total.
func (tw *tworker) runTask(t *task) {
	tw.ws = t.ws
	lvl := &level{depth: t.depth, m: t.mStart - 1, limit: t.mEnd}
	tw.spine = append(tw.spine, lvl)
	sum := tw.levelLoop(lvl, t.mStart)
	tw.spine = tw.spine[:len(tw.spine)-1]
	t.join.deposit(sum)
}

func (tw *tworker) now() int64 {
	if tw.rt.profile {
		return tw.proc.Now()
	}
	return 0
}
