// Package progtest is a conformance harness for sched.Program
// implementations: every benchmark problem must satisfy the contracts the
// scheduling engines rely on (deterministic evaluation, clean Apply/Undo
// round-trips, deep-copy Clone/CopyFrom isolation). Each problem package's
// tests call Conformance with a small instance.
package progtest

import (
	"math/rand"
	"testing"

	"adaptivetc/internal/sched"
)

// Conformance runs the full contract battery on a small instance of p.
// The instance should evaluate in well under a second serially.
func Conformance(t *testing.T, p sched.Program) {
	t.Helper()
	t.Run("deterministic", func(t *testing.T) { deterministic(t, p) })
	t.Run("churned-workspace", func(t *testing.T) { churned(t, p) })
	t.Run("clone-isolation", func(t *testing.T) { cloneIsolation(t, p) })
	t.Run("copyfrom-matches-clone", func(t *testing.T) { copyFrom(t, p) })
	t.Run("illegal-apply-is-pure", func(t *testing.T) { illegalPure(t, p) })
}

func serialValue(t *testing.T, p sched.Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

// evalOn evaluates p's subtree on a given workspace/depth without engines.
func evalOn(p sched.Program, ws sched.Workspace, depth int) int64 {
	if v, term := p.Terminal(ws, depth); term {
		return v
	}
	var sum int64
	n := p.Moves(ws, depth)
	for m := 0; m < n; m++ {
		if !p.Apply(ws, depth, m) {
			continue
		}
		sum += evalOn(p, ws, depth+1)
		p.Undo(ws, depth, m)
	}
	return sum
}

func deterministic(t *testing.T, p sched.Program) {
	a := serialValue(t, p)
	b := serialValue(t, p)
	if a != b {
		t.Fatalf("two serial runs disagree: %d vs %d", a, b)
	}
}

// churned exercises a workspace with random apply/undo walks, then
// evaluates on it: the answer must match a fresh workspace's.
func churned(t *testing.T, p sched.Program) {
	want := evalOn(p, p.Root(), 0)
	rng := rand.New(rand.NewSource(7))
	ws := p.Root()
	for trial := 0; trial < 20; trial++ {
		depth := 0
		var applied []int
		for step := 0; step < 50; step++ {
			if _, term := p.Terminal(ws, depth); term {
				break
			}
			m := rng.Intn(p.Moves(ws, depth))
			if p.Apply(ws, depth, m) {
				applied = append(applied, m)
				depth++
			}
		}
		for len(applied) > 0 {
			depth--
			p.Undo(ws, depth, applied[len(applied)-1])
			applied = applied[:len(applied)-1]
		}
		if got := evalOn(p, ws, 0); got != want {
			t.Fatalf("trial %d: churned workspace evaluates to %d, fresh to %d", trial, got, want)
		}
	}
}

// cloneIsolation clones mid-descent and checks the two workspaces evolve
// independently: evaluating the clone's residual subtree twice must agree,
// and the original, after undo, must still produce the full answer.
func cloneIsolation(t *testing.T, p sched.Program) {
	want := evalOn(p, p.Root(), 0)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		ws := p.Root()
		depth := 0
		var applied []int
		steps := rng.Intn(6)
		for step := 0; step < steps; step++ {
			if _, term := p.Terminal(ws, depth); term {
				break
			}
			m := rng.Intn(p.Moves(ws, depth))
			if p.Apply(ws, depth, m) {
				applied = append(applied, m)
				depth++
			}
		}
		cloneDepth := depth
		c1 := ws.Clone()
		c2 := ws.Clone()
		v1 := evalOn(p, c1, cloneDepth)
		// Mutating the original must not disturb the clones.
		for len(applied) > 0 {
			depth--
			p.Undo(ws, depth, applied[len(applied)-1])
			applied = applied[:len(applied)-1]
		}
		v2 := evalOn(p, c2, cloneDepth)
		if v1 != v2 {
			t.Fatalf("trial %d: clones evaluate differently: %d vs %d", trial, v1, v2)
		}
		if got := evalOn(p, ws, 0); got != want {
			t.Fatalf("trial %d: original corrupted after cloning: %d vs %d", trial, got, want)
		}
	}
}

// copyFrom checks sched.Reusable implementations against Clone.
func copyFrom(t *testing.T, p sched.Program) {
	ws := p.Root()
	dst, ok := p.Root().(sched.Reusable)
	if !ok {
		t.Skip("workspace is not Reusable")
	}
	depth := 0
	for m := 0; m < p.Moves(ws, depth); m++ {
		if p.Apply(ws, depth, m) {
			depth++
			break
		}
	}
	dst.CopyFrom(ws)
	a := evalOn(p, ws.Clone(), depth)
	b := evalOn(p, dst, depth)
	if a != b {
		t.Fatalf("CopyFrom result evaluates to %d, Clone to %d", b, a)
	}
}

// illegalPure verifies that a failed Apply leaves the workspace unchanged:
// the full evaluation afterwards must still be right.
func illegalPure(t *testing.T, p sched.Program) {
	want := evalOn(p, p.Root(), 0)
	ws := p.Root()
	n := p.Moves(ws, 0)
	illegal := 0
	for m := 0; m < n; m++ {
		if !p.Apply(ws, 0, m) {
			illegal++
			continue
		}
		p.Undo(ws, 0, m)
	}
	if got := evalOn(p, ws, 0); got != want {
		t.Fatalf("after %d failed applies, evaluation drifted: %d vs %d", illegal, got, want)
	}
}
