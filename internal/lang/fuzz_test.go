package lang

import (
	"errors"
	"strings"
	"testing"
)

// fuzzProbes are curated mutations of real programs: each pins a failure
// mode the pipeline must answer with a positioned diagnostic, never a
// panic — torn blocks, stray operator halves, reserved-name collisions,
// literal overflow, oversized state, hostile init loops, deep nesting.
var fuzzProbes = []string{
	"",
	"param",
	"param n = ",
	"param n = 8 param n = 9 terminal 1 -> 1 moves 1 apply { } undo { }",
	"state depth terminal 1 -> 1 moves 1 apply { } undo { }",
	"state x[0] terminal 1 -> 1 moves 1 apply { } undo { }",
	"state x[5000000] terminal 1 -> 1 moves 1 apply { } undo { }",
	"param n = 99999999999999999999\nterminal 1 -> 1 moves 1 apply { } undo { }",
	"terminal 1 -> 1 moves 1 apply { reject } undo { reject }",
	"terminal 1 -> 1 moves 1 apply { if 1 & 2 { } } undo { }",
	"state s shared terminal 1 -> 1 moves 1 apply { s = 1 } undo { }",
	"init { for i = 0 to 10 { for i = 0 to 10 { } } } terminal 1 -> 1 moves 1 apply { } undo { }",
	"init { for i = 0 to 100000000 { } } terminal 1 -> 1 moves 1 apply { } undo { }",
	"state x[4] init { x[9] = 1 } terminal 1 -> 1 moves 1 apply { } undo { }",
	"terminal 1 / 0 -> 1 moves 1 apply { } undo { }",
	"terminal ((((((((1)))))))) -> 1 moves 1 apply { } undo { }",
	"terminal " + strings.Repeat("(", 300) + "1" + strings.Repeat(")", 300) + " -> 1 moves 1 apply { } undo { }",
	"terminal " + strings.Repeat("!", 300) + "1 -> 1 moves 1 apply { } undo { }",
	"terminal 007 == 7 -> 1 moves 1 apply { } undo {",
	"# only a comment",
	"\x00\xff param n = 8",
}

// FuzzLangCompile drives arbitrary bytes through the whole lexer →
// parser → compiler pipeline and, when compilation succeeds, through the
// guarded init probe and the canonicalization round trip. Contracts:
//
//   - the pipeline never panics: every failure is an error value;
//   - every compile or init error is a *lang.Error carrying a 1-based
//     line:col position;
//   - any source that compiles also canonicalizes, its canonical form
//     compiles, and canonicalization is a fixed point — the canonical
//     form re-canonicalizes to itself, so the content hash is stable.
//     This is the identity the program store's content addressing rests
//     on: if it drifted, the same program could cache under two hashes.
func FuzzLangCompile(f *testing.F) {
	for _, src := range Sources() {
		f.Add(src)
	}
	for _, src := range fuzzProbes {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		checkErr := func(stage string, err error) {
			var e *Error
			if !errors.As(err, &e) {
				t.Fatalf("%s error is %T, not *lang.Error: %v", stage, err, err)
			}
			if e.Line < 1 || e.Col < 1 {
				t.Fatalf("%s error lacks a position: %+v", stage, e)
			}
		}
		c, err := Compile("fuzz", src, nil)
		if err != nil {
			checkErr("compile", err)
			return
		}
		if _, err := NewProgramGuarded(c, 1<<16); err != nil {
			checkErr("init", err)
		}
		h1, canon, herr := HashSource(src)
		if herr != nil {
			t.Fatalf("source compiled but canonicalization failed: %v", herr)
		}
		if _, err := Compile("fuzz", canon, nil); err != nil {
			t.Fatalf("canonical form of a compiling source fails to compile: %v\ncanonical: %q", err, canon)
		}
		h2, canon2, herr := HashSource(canon)
		if herr != nil {
			t.Fatalf("re-canonicalization failed: %v", herr)
		}
		if canon2 != canon {
			t.Fatalf("canonicalization is not a fixed point:\n first: %q\nsecond: %q", canon, canon2)
		}
		if h2 != h1 {
			t.Fatalf("content hash unstable across canonicalization: %s vs %s", h1, h2)
		}
	})
}
