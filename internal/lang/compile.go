package lang

import "fmt"

// store holds the runtime values of ATC state: scalar slots and arrays.
type store struct {
	scalars []int64
	arrays  [][]int64
}

func (s *store) clone() *store {
	c := &store{
		scalars: append([]int64(nil), s.scalars...),
		arrays:  make([][]int64, len(s.arrays)),
	}
	for i, a := range s.arrays {
		c.arrays[i] = append([]int64(nil), a...)
	}
	return c
}

func (s *store) copyFrom(o *store) {
	copy(s.scalars, o.scalars)
	for i := range s.arrays {
		copy(s.arrays[i], o.arrays[i])
	}
}

func (s *store) bytes() int {
	n := 8 * len(s.scalars)
	for _, a := range s.arrays {
		n += 8 * len(a)
	}
	return n
}

// writeRec is one entry of the apply rollback log.
type writeRec struct {
	shared bool
	array  int // -1 for a scalar
	slot   int
	old    int64
}

// env is the evaluation context of one workspace.
type env struct {
	ws     *store
	shared *store
	depth  int64
	m      int64
	locals []int64 // for-loop variables, slot-indexed

	rejected bool
	logging  bool
	log      []writeRec

	// budget, when positive, bounds the total for-loop iterations this env
	// may execute; exceeding it panics with a positioned *Error. The program
	// store sets it when probing untrusted init blocks so a hostile
	// `for i = 0 to 1000000000 {}` cannot pin an API handler; engine
	// execution leaves it zero (unbounded, and branch-free off the hot path
	// for loop-free blocks).
	budget int64
	steps  int64
}

type evalFn func(*env) int64
type execFn func(*env) bool // false = stop (a reject fired)

// symKind classifies resolved names.
type symKind int

const (
	symScalar symKind = iota
	symArray
	symSharedScalar
	symSharedArray
	symParam
	symBuiltinDepth
	symBuiltinMove
)

type symbol struct {
	kind symKind
	slot int   // scalar/array index in its store
	val  int64 // for params
	size int   // for arrays
}

// Compiled is an ATC program compiled to closures; lang.Program wraps it
// into a sched.Program.
type Compiled struct {
	name         string
	syms         map[string]*symbol
	scalarCount  int
	arraySizes   []int
	sharedProto  *store // built by init; referenced read-only by all runs
	initStmts    execFn
	terminalCond evalFn
	terminalVal  evalFn
	movesExpr    evalFn
	applyStmts   execFn
	undoStmts    execFn
}

type compiler struct {
	syms        map[string]*symbol
	scalarCount int
	arraySizes  []int
	inInit      bool
	inApply     bool
	locals      []string // lexical stack of for-loop variables
	maxLocals   int
}

// MaxStateCells bounds the total declared state of one program — scalars
// plus every array cell, taskprivate and shared — at 2^22 int64 cells
// (32 MiB). The limit exists because the compiler allocates the shared
// prototype and the service runs untrusted submissions: without it,
// `state x[999999999999]` is an out-of-memory, not a diagnostic.
const MaxStateCells = 1 << 22

// Compile parses and compiles ATC source. Parameter values may be
// overridden (the mechanism behind "Nqueen-array(16)"-style sizing).
func Compile(name, src string, overrides map[string]int64) (*Compiled, error) {
	f, perr := parse(src)
	if perr != nil {
		return nil, perr
	}
	c := &compiler{syms: map[string]*symbol{}}

	// Parameters: const-fold in declaration order; overrides win.
	for _, pd := range f.params {
		if _, dup := c.syms[pd.name]; dup || pd.name == "depth" || pd.name == "m" {
			return nil, errf(pd.line, 1, "duplicate or reserved name %q", pd.name)
		}
		v, err := c.constEval(pd.value)
		if err != nil {
			return nil, err
		}
		if ov, ok := overrides[pd.name]; ok {
			v = ov
		}
		c.syms[pd.name] = &symbol{kind: symParam, val: v}
	}
	for name := range overrides {
		if s, ok := c.syms[name]; !ok || s.kind != symParam {
			return nil, fmt.Errorf("lang: override for unknown param %q", name)
		}
	}

	// State declarations.
	var sharedScalars int
	var sharedSizes []int
	var totalCells int64
	for _, sd := range f.states {
		if _, dup := c.syms[sd.name]; dup || sd.name == "depth" || sd.name == "m" {
			return nil, errf(sd.line, 1, "duplicate or reserved name %q", sd.name)
		}
		sym := &symbol{}
		if sd.size == nil {
			totalCells++
			if sd.shared {
				sym.kind, sym.slot = symSharedScalar, sharedScalars
				sharedScalars++
			} else {
				sym.kind, sym.slot = symScalar, c.scalarCount
				c.scalarCount++
			}
		} else {
			n, err := c.constEval(sd.size)
			if err != nil {
				return nil, err
			}
			if n <= 0 {
				return nil, errf(sd.line, 1, "state %s has non-positive size %d", sd.name, n)
			}
			if n > MaxStateCells {
				return nil, errf(sd.line, 1, "state %s size %d exceeds the %d-cell limit", sd.name, n, MaxStateCells)
			}
			totalCells += n
			if sd.shared {
				sym.kind, sym.slot, sym.size = symSharedArray, len(sharedSizes), int(n)
				sharedSizes = append(sharedSizes, int(n))
			} else {
				sym.kind, sym.slot, sym.size = symArray, len(c.arraySizes), int(n)
				c.arraySizes = append(c.arraySizes, int(n))
			}
		}
		if totalCells > MaxStateCells {
			return nil, errf(sd.line, 1, "total state exceeds the %d-cell limit", MaxStateCells)
		}
		c.syms[sd.name] = sym
	}

	out := &Compiled{
		name:        name,
		syms:        c.syms,
		scalarCount: c.scalarCount,
		arraySizes:  c.arraySizes,
	}

	// init block (may write shared state).
	c.inInit = true
	initFn, err := c.compileBlock(f.initBody)
	if err != nil {
		return nil, err
	}
	c.inInit = false
	out.initStmts = initFn

	if out.terminalCond, err = c.compileExpr(f.terminal.cond); err != nil {
		return nil, err
	}
	if out.terminalVal, err = c.compileExpr(f.terminal.value); err != nil {
		return nil, err
	}
	if out.movesExpr, err = c.compileExpr(f.moves); err != nil {
		return nil, err
	}
	c.inApply = true
	if out.applyStmts, err = c.compileBlock(f.apply); err != nil {
		return nil, err
	}
	c.inApply = false
	if out.undoStmts, err = c.compileBlock(f.undo); err != nil {
		return nil, err
	}

	// Build the zeroed shared prototype; NewProgram runs init exactly once
	// to populate it (running it here too would double any read-modify-
	// write the init block performs on shared state).
	out.sharedProto = &store{
		scalars: make([]int64, sharedScalars),
		arrays:  make([][]int64, len(sharedSizes)),
	}
	for i, n := range sharedSizes {
		out.sharedProto.arrays[i] = make([]int64, n)
	}
	return out, nil
}

// Name returns the name the program was compiled under.
func (p *Compiled) Name() string { return p.name }

// Params returns the program's compile-time parameters and their
// effective (post-override) values — catalog metadata for the program
// store, and the vocabulary a job submission may override per run.
func (p *Compiled) Params() map[string]int64 {
	out := make(map[string]int64)
	for name, s := range p.syms {
		if s.kind == symParam {
			out[name] = s.val
		}
	}
	return out
}

// StateCells returns the total declared state cells (taskprivate plus
// shared): the size driver of per-task clones, reported as metadata.
func (p *Compiled) StateCells() int64 {
	n := int64(p.scalarCount) + int64(len(p.sharedProto.scalars))
	for _, sz := range p.arraySizes {
		n += int64(sz)
	}
	for _, a := range p.sharedProto.arrays {
		n += int64(len(a))
	}
	return n
}

func (p *Compiled) newStore() *store {
	s := &store{
		scalars: make([]int64, p.scalarCount),
		arrays:  make([][]int64, len(p.arraySizes)),
	}
	for i, n := range p.arraySizes {
		s.arrays[i] = make([]int64, n)
	}
	return s
}

// constEval evaluates an expression over parameters only (array sizes,
// parameter initialisers).
func (c *compiler) constEval(e expr) (int64, *Error) {
	switch v := e.(type) {
	case *numLit:
		return v.v, nil
	case *ident:
		if s, ok := c.syms[v.name]; ok && s.kind == symParam {
			return s.val, nil
		}
		return 0, errf(v.line, v.col, "%q is not a compile-time constant", v.name)
	case *unaryExpr:
		x, err := c.constEval(v.operand)
		if err != nil {
			return 0, err
		}
		if v.op == tokMinus {
			return -x, nil
		}
		return b2i(x == 0), nil
	case *binExpr:
		l, err := c.constEval(v.left)
		if err != nil {
			return 0, err
		}
		r, err := c.constEval(v.right)
		if err != nil {
			return 0, err
		}
		return applyBin(v.op, l, r, v.line, v.col)
	}
	line, col := e.pos()
	return 0, errf(line, col, "expression is not a compile-time constant")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func applyBin(op kind, l, r int64, line, col int) (int64, *Error) {
	switch op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, errf(line, col, "division by zero")
		}
		return l / r, nil
	case tokPercent:
		if r == 0 {
			return 0, errf(line, col, "modulo by zero")
		}
		return l % r, nil
	case tokEq:
		return b2i(l == r), nil
	case tokNeq:
		return b2i(l != r), nil
	case tokLt:
		return b2i(l < r), nil
	case tokLe:
		return b2i(l <= r), nil
	case tokGt:
		return b2i(l > r), nil
	case tokGe:
		return b2i(l >= r), nil
	case tokAnd:
		return b2i(l != 0 && r != 0), nil
	case tokOr:
		return b2i(l != 0 || r != 0), nil
	}
	return 0, errf(line, col, "bad operator")
}

// compileExpr resolves names and returns an evaluator closure.
func (c *compiler) compileExpr(e expr) (evalFn, *Error) {
	switch v := e.(type) {
	case *numLit:
		n := v.v
		return func(*env) int64 { return n }, nil
	case *ident:
		switch v.name {
		case "depth":
			return func(ev *env) int64 { return ev.depth }, nil
		case "m":
			return func(ev *env) int64 { return ev.m }, nil
		}
		for i := len(c.locals) - 1; i >= 0; i-- {
			if c.locals[i] == v.name {
				slot := i
				return func(ev *env) int64 { return ev.locals[slot] }, nil
			}
		}
		s, ok := c.syms[v.name]
		if !ok {
			return nil, errf(v.line, v.col, "undefined name %q", v.name)
		}
		slot := s.slot
		switch s.kind {
		case symParam:
			n := s.val
			return func(*env) int64 { return n }, nil
		case symScalar:
			return func(ev *env) int64 { return ev.ws.scalars[slot] }, nil
		case symSharedScalar:
			return func(ev *env) int64 { return ev.shared.scalars[slot] }, nil
		default:
			return nil, errf(v.line, v.col, "array %q used without an index", v.name)
		}
	case *indexExpr:
		s, ok := c.syms[v.name]
		if !ok {
			return nil, errf(v.line, v.col, "undefined name %q", v.name)
		}
		idx, err := c.compileExpr(v.index)
		if err != nil {
			return nil, err
		}
		slot, size := s.slot, int64(s.size)
		line, col := v.line, v.col
		switch s.kind {
		case symArray:
			return func(ev *env) int64 {
				i := idx(ev)
				if i < 0 || i >= size {
					panic(errf(line, col, "index %d out of range [0,%d)", i, size))
				}
				return ev.ws.arrays[slot][i]
			}, nil
		case symSharedArray:
			return func(ev *env) int64 {
				i := idx(ev)
				if i < 0 || i >= size {
					panic(errf(line, col, "index %d out of range [0,%d)", i, size))
				}
				return ev.shared.arrays[slot][i]
			}, nil
		default:
			return nil, errf(v.line, v.col, "%q is not an array", v.name)
		}
	case *unaryExpr:
		sub, err := c.compileExpr(v.operand)
		if err != nil {
			return nil, err
		}
		if v.op == tokMinus {
			return func(ev *env) int64 { return -sub(ev) }, nil
		}
		return func(ev *env) int64 { return b2i(sub(ev) == 0) }, nil
	case *binExpr:
		l, err := c.compileExpr(v.left)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(v.right)
		if err != nil {
			return nil, err
		}
		op, line, col := v.op, v.line, v.col
		switch op {
		case tokAnd:
			return func(ev *env) int64 { return b2i(l(ev) != 0 && r(ev) != 0) }, nil
		case tokOr:
			return func(ev *env) int64 { return b2i(l(ev) != 0 || r(ev) != 0) }, nil
		default:
			return func(ev *env) int64 {
				out, err := applyBin(op, l(ev), r(ev), line, col)
				if err != nil {
					panic(err)
				}
				return out
			}, nil
		}
	}
	line, col := e.pos()
	return nil, errf(line, col, "unsupported expression")
}

// compileBlock compiles statements; the returned closure reports false when
// a reject fired.
func (c *compiler) compileBlock(body []stmt) (execFn, *Error) {
	var fns []execFn
	for _, s := range body {
		fn, err := c.compileStmt(s)
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	return func(ev *env) bool {
		for _, fn := range fns {
			if !fn(ev) {
				return false
			}
		}
		return true
	}, nil
}

func (c *compiler) compileStmt(s stmt) (execFn, *Error) {
	switch v := s.(type) {
	case *rejectStmt:
		if !c.inApply {
			return nil, errf(v.line, v.col, "reject is only allowed inside apply")
		}
		return func(ev *env) bool {
			ev.rejected = true
			return false
		}, nil
	case *ifStmt:
		cond, err := c.compileExpr(v.cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compileBlock(v.then)
		if err != nil {
			return nil, err
		}
		alt, err := c.compileBlock(v.alt)
		if err != nil {
			return nil, err
		}
		return func(ev *env) bool {
			if cond(ev) != 0 {
				return then(ev)
			}
			return alt(ev)
		}, nil
	case *forStmt:
		for _, name := range c.locals {
			if name == v.varName {
				return nil, errf(v.line, v.col, "loop variable %q shadows an enclosing loop variable", v.varName)
			}
		}
		if _, clash := c.syms[v.varName]; clash || v.varName == "depth" || v.varName == "m" {
			return nil, errf(v.line, v.col, "loop variable %q shadows an existing name", v.varName)
		}
		lo, err := c.compileExpr(v.lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compileExpr(v.hi)
		if err != nil {
			return nil, err
		}
		slot := len(c.locals)
		c.locals = append(c.locals, v.varName)
		if len(c.locals) > c.maxLocals {
			c.maxLocals = len(c.locals)
		}
		body, err := c.compileBlock(v.body)
		c.locals = c.locals[:len(c.locals)-1]
		if err != nil {
			return nil, err
		}
		fline, fcol := v.line, v.col
		return func(ev *env) bool {
			for len(ev.locals) <= slot {
				ev.locals = append(ev.locals, 0)
			}
			for i := lo(ev); i < hi(ev); i++ {
				if ev.budget > 0 {
					if ev.steps++; ev.steps > ev.budget {
						panic(errf(fline, fcol, "for loop exceeded the %d-iteration evaluation budget", ev.budget))
					}
				}
				ev.locals[slot] = i
				if !body(ev) {
					return false
				}
			}
			return true
		}, nil
	case *assignStmt:
		for _, name := range c.locals {
			if name == v.target {
				return nil, errf(v.line, v.col, "cannot assign to loop variable %q", v.target)
			}
		}
		sym, ok := c.syms[v.target]
		if !ok {
			if v.target == "depth" || v.target == "m" {
				return nil, errf(v.line, v.col, "cannot assign to builtin %q", v.target)
			}
			return nil, errf(v.line, v.col, "undefined name %q", v.target)
		}
		if sym.kind == symParam {
			return nil, errf(v.line, v.col, "cannot assign to param %q", v.target)
		}
		shared := sym.kind == symSharedScalar || sym.kind == symSharedArray
		if shared && !c.inInit {
			return nil, errf(v.line, v.col, "shared state %q may only be written in init (it is not cloned for tasks)", v.target)
		}
		val, err := c.compileExpr(v.value)
		if err != nil {
			return nil, err
		}
		slot := sym.slot
		switch sym.kind {
		case symScalar, symSharedScalar:
			if v.index != nil {
				return nil, errf(v.line, v.col, "%q is a scalar, not an array", v.target)
			}
			return func(ev *env) bool {
				st := ev.ws
				if shared {
					st = ev.shared
				}
				if ev.logging {
					ev.log = append(ev.log, writeRec{shared: shared, array: -1, slot: slot, old: st.scalars[slot]})
				}
				st.scalars[slot] = val(ev)
				return true
			}, nil
		case symArray, symSharedArray:
			if v.index == nil {
				return nil, errf(v.line, v.col, "array %q assigned without an index", v.target)
			}
			idx, err := c.compileExpr(v.index)
			if err != nil {
				return nil, err
			}
			size := int64(sym.size)
			line, col := v.line, v.col
			return func(ev *env) bool {
				st := ev.ws
				if shared {
					st = ev.shared
				}
				i := idx(ev)
				if i < 0 || i >= size {
					panic(errf(line, col, "index %d out of range [0,%d)", i, size))
				}
				if ev.logging {
					ev.log = append(ev.log, writeRec{shared: shared, array: slot, slot: int(i), old: st.arrays[slot][i]})
				}
				st.arrays[slot][i] = val(ev)
				return true
			}, nil
		}
	}
	line, col := s.stmtPos()
	return nil, errf(line, col, "unsupported statement")
}
