package lang

// The AST of an ATC program. An ATC source file declares compile-time
// parameters, the taskprivate state (scalars and arrays), an optional init
// block, and the four rules every backtracking task function consists of
// (the shape of the paper's Appendix A):
//
//	param n = 8                 # compile-time constant, overridable
//	state cols[n]               # taskprivate array (the default)
//	state count shared          # a shared scalar is not part of the clone
//	init { ... }                # establish the root workspace
//	terminal depth == n -> 1    # leaf test and leaf value
//	moves n                     # candidate moves per node
//	apply { ... reject ... }    # play move m (reject = illegal)
//	undo { ... }                # reverse move m
type file struct {
	params   []*paramDecl
	states   []*stateDecl
	initBody []stmt
	terminal *terminalDecl
	moves    expr
	apply    []stmt
	undo     []stmt
}

type paramDecl struct {
	name  string
	value expr // constant expression over earlier params
	line  int
}

type stateDecl struct {
	name   string
	size   expr // nil = scalar
	shared bool // shared state is not cloned (read-mostly lookup tables)
	line   int
}

type terminalDecl struct {
	cond  expr
	value expr
}

// ---------------------------------------------------------------------------
// Expressions

type expr interface{ pos() (int, int) }

type numLit struct {
	v         int64
	line, col int
}

type ident struct {
	name      string
	line, col int
}

type indexExpr struct {
	name      string
	index     expr
	line, col int
}

type unaryExpr struct {
	op        kind // tokMinus or tokNot
	operand   expr
	line, col int
}

type binExpr struct {
	op          kind
	left, right expr
	line, col   int
}

func (e *numLit) pos() (int, int)    { return e.line, e.col }
func (e *ident) pos() (int, int)     { return e.line, e.col }
func (e *indexExpr) pos() (int, int) { return e.line, e.col }
func (e *unaryExpr) pos() (int, int) { return e.line, e.col }
func (e *binExpr) pos() (int, int)   { return e.line, e.col }

// ---------------------------------------------------------------------------
// Statements

type stmt interface{ stmtPos() (int, int) }

type assignStmt struct {
	target    string
	index     expr // nil for scalars
	value     expr
	line, col int
}

type ifStmt struct {
	cond      expr
	then, alt []stmt
	line, col int
}

type rejectStmt struct {
	line, col int
}

// forStmt is `for v = lo to hi { body }`: v ranges over [lo, hi), a fresh
// read-only local scoped to the body.
type forStmt struct {
	varName   string
	lo, hi    expr
	body      []stmt
	line, col int
}

func (s *assignStmt) stmtPos() (int, int) { return s.line, s.col }
func (s *forStmt) stmtPos() (int, int)    { return s.line, s.col }
func (s *ifStmt) stmtPos() (int, int)     { return s.line, s.col }
func (s *rejectStmt) stmtPos() (int, int) { return s.line, s.col }
