package lang

// lexer turns ATC source into tokens. Comments run from '#' to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.peekByte() {
		case ' ', '\t', '\r', '\n':
			l.advance()
		case '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// next returns the next token or a lexical error.
func (l *lexer) next() (token, *Error) {
	l.skipSpace()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.advance()
	mk := func(k kind, text string) (token, *Error) {
		return token{kind: k, text: text, line: line, col: col}, nil
	}
	switch c {
	case '{':
		return mk(tokLBrace, "{")
	case '}':
		return mk(tokRBrace, "}")
	case '[':
		return mk(tokLBracket, "[")
	case ']':
		return mk(tokRBracket, "]")
	case '(':
		return mk(tokLParen, "(")
	case ')':
		return mk(tokRParen, ")")
	case ',':
		return mk(tokComma, ",")
	case '+':
		return mk(tokPlus, "+")
	case '*':
		return mk(tokStar, "*")
	case '/':
		return mk(tokSlash, "/")
	case '%':
		return mk(tokPercent, "%")
	case '-':
		if l.peekByte() == '>' {
			l.advance()
			return mk(tokArrow, "->")
		}
		return mk(tokMinus, "-")
	case '=':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokEq, "==")
		}
		return mk(tokAssign, "=")
	case '!':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokNeq, "!=")
		}
		return mk(tokNot, "!")
	case '<':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokLe, "<=")
		}
		return mk(tokLt, "<")
	case '>':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokGe, ">=")
		}
		return mk(tokGt, ">")
	case '&':
		if l.peekByte() == '&' {
			l.advance()
			return mk(tokAnd, "&&")
		}
		return token{}, errf(line, col, "stray '&' (did you mean '&&'?)")
	case '|':
		if l.peekByte() == '|' {
			l.advance()
			return mk(tokOr, "||")
		}
		return token{}, errf(line, col, "stray '|' (did you mean '||'?)")
	}
	if isDigit(c) {
		n := int64(c - '0')
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			n = n*10 + int64(l.advance()-'0')
			if n < 0 {
				return token{}, errf(line, col, "integer literal overflows int64")
			}
		}
		return token{kind: tokNumber, num: n, line: line, col: col}, nil
	}
	if isAlpha(c) {
		start := l.pos - 1
		for l.pos < len(l.src) && (isAlpha(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		word := l.src[start:l.pos]
		if k, ok := keywords[word]; ok {
			return token{kind: k, text: word, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: word, line: line, col: col}, nil
	}
	return token{}, errf(line, col, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
