// Package lang implements ATC, the mini-language front end of this
// reproduction. The paper presents AdaptiveTC as "a comprehensive parallel
// programming environment that includes a parallel programming language, a
// compiler and a runtime system": the runtime lives in the engine packages;
// this package is the language and compiler. An ATC source file describes a
// backtracking task function in exactly the shape of the paper's Appendix A
// — taskprivate state, a terminal test, a candidate-move count, and
// apply/undo blocks — and compiles to a sched.Program that every scheduler
// in the repository can run.
//
// A complete program (8-queens, the array variant):
//
//	param n = 8
//
//	state x[n]              # queen column per row — the paper's chessboard
//	state cols[n]           # taskprivate conflict arrays
//	state d1[2*n - 1]
//	state d2[2*n - 1]
//
//	terminal depth == n -> 1
//
//	moves n
//
//	apply {
//	    if cols[m] != 0 || d1[depth + m] != 0 || d2[depth - m + n - 1] != 0 {
//	        reject          # an illegal placement; all writes roll back
//	    }
//	    x[depth] = m
//	    cols[m] = 1
//	    d1[depth + m] = 1
//	    d2[depth - m + n - 1] = 1
//	}
//
//	undo {
//	    cols[m] = 0
//	    d1[depth + m] = 0
//	    d2[depth - m + n - 1] = 0
//	}
//
// Language summary:
//
//   - `param name = const-expr` — compile-time integer constants,
//     overridable at Compile time (how benchmark sizes are set);
//   - `state name` / `state name[size]` — taskprivate int64 scalars and
//     arrays, deep-copied whenever a scheduler clones the workspace; the
//     suffix `shared` marks read-only lookup tables that are built in init
//     and never cloned (writes outside init are compile errors);
//   - `init { ... }` — establishes the root workspace and shared tables;
//   - `terminal cond -> value` — the leaf test and leaf value;
//   - `moves expr` — candidate moves per node (the spawn fan-out);
//   - `apply { ... }` / `undo { ... }` — play/reverse candidate `m` at
//     depth `depth`; `reject` inside apply marks the move illegal and rolls
//     back every write the block made, so engines can rely on failed
//     applies being pure;
//   - statements: assignment, if/else, reject; expressions: int64
//     arithmetic (+ - * / %), comparisons, && || ! (short-circuit), array
//     indexing (bounds-checked), parentheses; `#` starts a comment.
//
// The compiler is a classical small pipeline: lexer → recursive-descent
// parser → AST → name resolution and constant folding → closure
// compilation (each expression and statement becomes a Go closure over a
// slot-indexed store, so the hot path does no map lookups or AST walks).
package lang
