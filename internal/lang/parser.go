package lang

// parser is a recursive-descent parser over the token slice.
type parser struct {
	toks  []token
	pos   int
	depth int // live expr/block nesting, bounded by maxNesting
}

// maxNesting bounds expression and block nesting. The parser is
// recursive-descent, so unbounded nesting ("(((((…" or towers of nested
// ifs) turns into unbounded Go stack growth; with untrusted source on the
// API path that must be a positioned diagnostic, not a stack exhaustion.
// 200 levels is far beyond anything a human writes.
const maxNesting = 200

// enter bumps the nesting depth, erroring past maxNesting; pair every
// successful call with leave.
func (p *parser) enter() *Error {
	p.depth++
	if p.depth > maxNesting {
		t := p.cur()
		return errf(t.line, t.col, "nesting deeper than %d levels", maxNesting)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k kind) (token, *Error) {
	t := p.cur()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, found %s", k, describe(t))
	}
	return p.take(), nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent:
		return "identifier " + t.text
	case tokNumber:
		return "number"
	default:
		return "'" + t.kind.String() + "'"
	}
}

// parse builds the file AST.
func parse(src string) (*file, *Error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &file{}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch t.kind {
		case tokParam:
			d, err := p.parseParam()
			if err != nil {
				return nil, err
			}
			f.params = append(f.params, d)
		case tokState:
			d, err := p.parseState()
			if err != nil {
				return nil, err
			}
			f.states = append(f.states, d)
		case tokInit:
			if f.initBody != nil {
				return nil, errf(t.line, t.col, "duplicate init block")
			}
			p.take()
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			f.initBody = body
		case tokTerminal:
			if f.terminal != nil {
				return nil, errf(t.line, t.col, "duplicate terminal rule")
			}
			p.take()
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.terminal = &terminalDecl{cond: cond, value: val}
		case tokMoves:
			if f.moves != nil {
				return nil, errf(t.line, t.col, "duplicate moves rule")
			}
			p.take()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.moves = e
		case tokApply:
			if f.apply != nil {
				return nil, errf(t.line, t.col, "duplicate apply block")
			}
			p.take()
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			f.apply = body
		case tokUndo:
			if f.undo != nil {
				return nil, errf(t.line, t.col, "duplicate undo block")
			}
			p.take()
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			f.undo = body
		default:
			return nil, errf(t.line, t.col, "expected a declaration (param/state/init/terminal/moves/apply/undo), found %s", describe(t))
		}
	}
	switch {
	case f.terminal == nil:
		return nil, errf(1, 1, "missing terminal rule")
	case f.moves == nil:
		return nil, errf(1, 1, "missing moves rule")
	case f.apply == nil:
		return nil, errf(1, 1, "missing apply block")
	case f.undo == nil:
		return nil, errf(1, 1, "missing undo block")
	}
	return f, nil
}

func (p *parser) parseParam() (*paramDecl, *Error) {
	t := p.take() // param
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &paramDecl{name: name.text, value: v, line: t.line}, nil
}

func (p *parser) parseState() (*stateDecl, *Error) {
	t := p.take() // state
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	d := &stateDecl{name: name.text, line: t.line}
	if p.cur().kind == tokLBracket {
		p.take()
		size, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		d.size = size
	}
	switch p.cur().kind {
	case tokShared:
		p.take()
		d.shared = true
	case tokTaskprivate:
		p.take() // the default, stated explicitly
	}
	return d, nil
}

func (p *parser) parseBlock() ([]stmt, *Error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	// Non-nil even when empty: `apply { }` is a present-but-empty block,
	// and parse distinguishes missing/duplicate sections by nil-ness.
	out := []stmt{}
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokEOF {
			t := p.cur()
			return nil, errf(t.line, t.col, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.take() // }
	return out, nil
}

func (p *parser) parseStmt() (stmt, *Error) {
	t := p.cur()
	switch t.kind {
	case tokReject:
		p.take()
		return &rejectStmt{line: t.line, col: t.col}, nil
	case tokFor:
		p.take()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokTo); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &forStmt{varName: name.text, lo: lo, hi: hi, body: body, line: t.line, col: t.col}, nil
	case tokIf:
		p.take()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{cond: cond, then: then, line: t.line, col: t.col}
		if p.cur().kind == tokElse {
			p.take()
			if p.cur().kind == tokIf {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				s.alt = []stmt{inner}
			} else {
				alt, err := p.parseBlock()
				if err != nil {
					return nil, err
				}
				s.alt = alt
			}
		}
		return s, nil
	case tokIdent:
		name := p.take()
		var index expr
		if p.cur().kind == tokLBracket {
			p.take()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			index = e
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &assignStmt{target: name.text, index: index, value: v, line: t.line, col: t.col}, nil
	}
	return nil, errf(t.line, t.col, "expected a statement, found %s", describe(t))
}

// Expression grammar, lowest to highest precedence:
//
//	or:      and ("||" and)*
//	and:     cmp ("&&" cmp)*
//	cmp:     add (("=="|"!="|"<"|"<="|">"|">=") add)?
//	add:     mul (("+"|"-") mul)*
//	mul:     unary (("*"|"/"|"%") unary)*
//	unary:   ("-"|"!") unary | primary
//	primary: number | ident | ident "[" expr "]" | "(" expr ")"
func (p *parser) parseExpr() (expr, *Error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (expr, *Error) {
	return p.parseLeftAssoc(p.parseAnd, tokOr)
}

func (p *parser) parseAnd() (expr, *Error) {
	return p.parseLeftAssoc(p.parseCmp, tokAnd)
}

func (p *parser) parseLeftAssoc(sub func() (expr, *Error), ops ...kind) (expr, *Error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		for _, op := range ops {
			if t.kind == op {
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
		p.take()
		right, err := sub()
		if err != nil {
			return nil, err
		}
		left = &binExpr{op: t.kind, left: left, right: right, line: t.line, col: t.col}
	}
}

func (p *parser) parseCmp() (expr, *Error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch t.kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		p.take()
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &binExpr{op: t.kind, left: left, right: right, line: t.line, col: t.col}, nil
	}
	return left, nil
}

func (p *parser) parseAdd() (expr, *Error) {
	return p.parseLeftAssoc(p.parseMul, tokPlus, tokMinus)
}

func (p *parser) parseMul() (expr, *Error) {
	return p.parseLeftAssoc(p.parseUnary, tokStar, tokSlash, tokPercent)
}

func (p *parser) parseUnary() (expr, *Error) {
	t := p.cur()
	if t.kind == tokMinus || t.kind == tokNot {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.leave()
		p.take()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.kind, operand: operand, line: t.line, col: t.col}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, *Error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.take()
		return &numLit{v: t.num, line: t.line, col: t.col}, nil
	case tokIdent:
		p.take()
		if p.cur().kind == tokLBracket {
			p.take()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &indexExpr{name: t.text, index: idx, line: t.line, col: t.col}, nil
		}
		return &ident{name: t.text, line: t.line, col: t.col}, nil
	case tokLParen:
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.line, t.col, "expected an expression, found %s", describe(t))
}
