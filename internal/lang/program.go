package lang

import (
	"adaptivetc/internal/sched"
)

// workspace adapts a store to sched.Workspace: the taskprivate state of
// one task, deep-copied on Clone exactly as the paper's taskprivate
// attribute prescribes.
type workspace struct {
	st *store
}

// Clone implements sched.Workspace.
func (w *workspace) Clone() sched.Workspace { return &workspace{st: w.st.clone()} }

// Bytes implements sched.Workspace: the taskprivate payload size.
func (w *workspace) Bytes() int { return w.st.bytes() }

// CopyFrom implements sched.Reusable.
func (w *workspace) CopyFrom(src sched.Workspace) { w.st.copyFrom(src.(*workspace).st) }

// Program adapts a Compiled ATC program to sched.Program, so every engine
// in the repository (Cilk, Tascell, AdaptiveTC, …) can run source written
// in the mini-language.
type Program struct {
	c       *Compiled
	wsProto *store
}

// NewProgram wraps a compiled ATC file, running the init block exactly
// once to establish the shared state and the root taskprivate state. The
// shared prototype is re-zeroed first, so wrapping the same Compiled twice
// is safe.
func NewProgram(c *Compiled) *Program {
	for i := range c.sharedProto.scalars {
		c.sharedProto.scalars[i] = 0
	}
	for _, a := range c.sharedProto.arrays {
		for i := range a {
			a[i] = 0
		}
	}
	probe := &env{ws: c.newStore(), shared: c.sharedProto}
	c.initStmts(probe)
	return &Program{c: c, wsProto: probe.ws}
}

// NewProgramGuarded wraps a compiled ATC file like NewProgram, but runs
// the init block defensively: for-loop iterations are bounded by budget
// (≤ 0 means the default 1<<22), and a runtime fault in init — an
// out-of-range index, a division by zero, an exceeded budget — is caught
// and returned as the positioned *Error it panicked with, instead of
// unwinding into the caller. This is the constructor for untrusted
// source: the program store probes every submission through it, so a
// hostile init block costs one bounded evaluation, not a wedged API
// handler.
func NewProgramGuarded(c *Compiled, budget int64) (p *Program, err error) {
	if budget <= 0 {
		budget = 1 << 22
	}
	for i := range c.sharedProto.scalars {
		c.sharedProto.scalars[i] = 0
	}
	for _, a := range c.sharedProto.arrays {
		for i := range a {
			a[i] = 0
		}
	}
	probe := &env{ws: c.newStore(), shared: c.sharedProto, budget: budget}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*Error); ok {
				p, err = nil, e
				return
			}
			panic(r)
		}
	}()
	c.initStmts(probe)
	return &Program{c: c, wsProto: probe.ws}, nil
}

// CompileProgram is the one-call front end: source to runnable program.
func CompileProgram(name, src string, overrides map[string]int64) (*Program, error) {
	c, err := Compile(name, src, overrides)
	if err != nil {
		return nil, err
	}
	return NewProgram(c), nil
}

// CompileProgramGuarded is CompileProgram for untrusted source: compile
// errors and init-time runtime faults both come back as errors (with
// source positions when they have one), never as panics.
func CompileProgramGuarded(name, src string, overrides map[string]int64, initBudget int64) (*Program, error) {
	c, err := Compile(name, src, overrides)
	if err != nil {
		return nil, err
	}
	return NewProgramGuarded(c, initBudget)
}

// Compiled returns the underlying compiled file, for callers that need
// its catalog metadata (parameters, state size).
func (p *Program) Compiled() *Compiled { return p.c }

// Name implements sched.Program.
func (p *Program) Name() string { return "atc:" + p.c.name }

// Root implements sched.Program.
func (p *Program) Root() sched.Workspace { return &workspace{st: p.wsProto.clone()} }

func (p *Program) envFor(w sched.Workspace, depth, m int) *env {
	return &env{
		ws:     w.(*workspace).st,
		shared: p.c.sharedProto,
		depth:  int64(depth),
		m:      int64(m),
	}
}

// Terminal implements sched.Program.
func (p *Program) Terminal(w sched.Workspace, depth int) (int64, bool) {
	ev := p.envFor(w, depth, 0)
	if p.c.terminalCond(ev) == 0 {
		return 0, false
	}
	return p.c.terminalVal(ev), true
}

// Moves implements sched.Program.
func (p *Program) Moves(w sched.Workspace, depth int) int {
	ev := p.envFor(w, depth, 0)
	n := p.c.movesExpr(ev)
	if n < 0 {
		return 0
	}
	return int(n)
}

// Apply implements sched.Program: run the apply block with a rollback log;
// a reject restores every write and reports the move illegal.
func (p *Program) Apply(w sched.Workspace, depth, m int) bool {
	ev := p.envFor(w, depth, m)
	ev.logging = true
	p.c.applyStmts(ev)
	if !ev.rejected {
		return true
	}
	// Roll back in reverse order.
	for i := len(ev.log) - 1; i >= 0; i-- {
		rec := ev.log[i]
		st := ev.ws
		if rec.shared {
			st = ev.shared
		}
		if rec.array < 0 {
			st.scalars[rec.slot] = rec.old
		} else {
			st.arrays[rec.array][rec.slot] = rec.old
		}
	}
	return false
}

// Undo implements sched.Program.
func (p *Program) Undo(w sched.Workspace, depth, m int) {
	ev := p.envFor(w, depth, m)
	p.c.undoStmts(ev)
}
