package lang

// Example ATC sources, used by tests, examples/dsl and cmd/adaptivetc-run.

// NQueensSrc is the paper's canonical taskprivate example (§4.1): n-queens
// with conflict arrays (the Nqueen-array variant of Table 1).
const NQueensSrc = `
# N-Queens, array variant (the paper's canonical taskprivate example).
param n = 8

state x[n]              # queen column per row - the chessboard
state cols[n]           # conflict arrays
state d1[2*n - 1]
state d2[2*n - 1]

terminal depth == n -> 1

moves n

apply {
    if cols[m] != 0 || d1[depth + m] != 0 || d2[depth - m + n - 1] != 0 {
        reject
    }
    x[depth] = m
    cols[m] = 1
    d1[depth + m] = 1
    d2[depth - m + n - 1] = 1
}

undo {
    cols[m] = 0
    d1[depth + m] = 0
    d2[depth - m + n - 1] = 0
}
`

// FibSrc computes Fibonacci recursively: the workspace is an explicit
// stack of pending subproblems, as in problems/fib.
const FibSrc = `
# Recursive Fibonacci: fib(n) = fib(n-1) + fib(n-2); leaves are worth n.
param n = 20
param maxdepth = 96

state stack[maxdepth]
state sp

init {
    stack[0] = n
    sp = 0
}

terminal stack[sp] < 2 -> stack[sp]

moves 2

apply {
    stack[sp + 1] = stack[sp] - 1 - m
    sp = sp + 1
}

undo {
    sp = sp - 1
}
`

// LatinSrc counts Latin squares of order n (the degenerate Strimko of
// problems/strimko): rows and columns each contain every digit once.
const LatinSrc = `
# Latin squares of order n: 576 for n = 4, 161280 for n = 5.
param n = 4

state grid[n * n]
state rowUsed[n * n]    # rowUsed[r*n + v] = digit v used in row r
state colUsed[n * n]

terminal depth == n * n -> 1

moves n

apply {
    if rowUsed[(depth / n) * n + m] != 0 || colUsed[(depth % n) * n + m] != 0 {
        reject
    }
    grid[depth] = m + 1
    rowUsed[(depth / n) * n + m] = 1
    colUsed[(depth % n) * n + m] = 1
}

undo {
    grid[depth] = 0
    rowUsed[(depth / n) * n + m] = 0
    colUsed[(depth % n) * n + m] = 0
}
`

// KnightSrc counts open knight's tours on an n×n board from the corner,
// matching problems/knight. The move deltas live in shared (non-cloned)
// lookup tables built by the init block.
const KnightSrc = `
# Knight's tours on an n x n board starting at (0,0).
param n = 5
param cells = n * n

state visited[cells]
state path[cells]       # cell index per step; path[depth] is current
state dr[8] shared      # knight move deltas (offset by +2 to stay >= 0)
state dc[8] shared

init {
    dr[0] = 3  dc[0] = 4   # (+1,+2) stored as (d+2)
    dr[1] = 4  dc[1] = 3
    dr[2] = 4  dc[2] = 1
    dr[3] = 3  dc[3] = 0
    dr[4] = 1  dc[4] = 0
    dr[5] = 0  dc[5] = 1
    dr[6] = 0  dc[6] = 3
    dr[7] = 1  dc[7] = 4
    visited[0] = 1
    path[0] = 0
}

terminal depth == cells - 1 -> 1

moves 8

apply {
    if path[depth] / n + dr[m] - 2 < 0 || path[depth] / n + dr[m] - 2 >= n {
        reject
    }
    if path[depth] % n + dc[m] - 2 < 0 || path[depth] % n + dc[m] - 2 >= n {
        reject
    }
    if visited[(path[depth] / n + dr[m] - 2) * n + path[depth] % n + dc[m] - 2] != 0 {
        reject
    }
    path[depth + 1] = (path[depth] / n + dr[m] - 2) * n + path[depth] % n + dc[m] - 2
    visited[path[depth + 1]] = 1
}

undo {
    visited[path[depth + 1]] = 0
}
`

// Sources lists the built-in ATC programs by name.
func Sources() map[string]string {
	return map[string]string{
		"nqueens": NQueensSrc,
		"fib":     FibSrc,
		"latin":   LatinSrc,
		"knight":  KnightSrc,
	}
}
