package lang

import (
	"strings"
	"testing"
)

// TestCanonicalHashInvariance: reformatting — comments, blank lines,
// indentation, literal spelling — must not move the content hash, while
// any token-level change must.
func TestCanonicalHashInvariance(t *testing.T) {
	base := "param n = 8\nterminal depth == n -> 1\nmoves n\napply { }\nundo { }\n"
	same := []string{
		"param n=8 terminal depth==n->1 moves n apply{} undo{}",
		"# a comment\nparam n = 8 # trailing\n\n\tterminal depth == n -> 1\nmoves n\napply {\n}\nundo {\n}",
		"param n = 08\nterminal depth == n -> 1\nmoves n\napply { }\nundo { }",
	}
	h0, canon, err := HashSource(base)
	if err != nil {
		t.Fatalf("hash base: %v", err)
	}
	for _, src := range same {
		h, _, err := HashSource(src)
		if err != nil {
			t.Fatalf("hash %q: %v", src, err)
		}
		if h != h0 {
			t.Errorf("reformatted source hashed differently:\n%q -> %s\n%q -> %s", base, h0, src, h)
		}
	}
	hDiff, _, err := HashSource(strings.Replace(base, "n = 8", "n = 9", 1))
	if err != nil {
		t.Fatalf("hash variant: %v", err)
	}
	if hDiff == h0 {
		t.Error("token-level change kept the same hash")
	}
	// Fixed point: the canonical form canonicalizes to itself.
	canon2, err := Canonicalize(canon)
	if err != nil {
		t.Fatalf("re-canonicalize: %v", err)
	}
	if canon2 != canon {
		t.Errorf("canonical form is not a fixed point:\n%q\n%q", canon, canon2)
	}
}

// TestCanonicalExamplesCompile: every shipped example canonicalizes, the
// canonical form compiles, and both spellings build programs that agree
// on the root workspace size (a cheap structural identity check).
func TestCanonicalExamplesCompile(t *testing.T) {
	for name, src := range Sources() {
		hash, canon, err := HashSource(src)
		if err != nil {
			t.Fatalf("%s: canonicalize: %v", name, err)
		}
		if len(hash) != 64 {
			t.Fatalf("%s: hash %q is not hex sha-256", name, hash)
		}
		orig, cerr := CompileProgram(name, src, nil)
		if cerr != nil {
			t.Fatalf("%s: compile original: %v", name, cerr)
		}
		re, cerr := CompileProgram(name, canon, nil)
		if cerr != nil {
			t.Fatalf("%s: compile canonical: %v", name, cerr)
		}
		if orig.Root().Bytes() != re.Root().Bytes() {
			t.Errorf("%s: canonical compile changed the workspace: %d vs %d bytes",
				name, orig.Root().Bytes(), re.Root().Bytes())
		}
	}
}

// TestCompileLimits pins the hardening added for untrusted source: state
// size caps, parser nesting caps, and the guarded init budget, each a
// positioned diagnostic instead of an OOM, stack exhaustion, or spin.
func TestCompileLimits(t *testing.T) {
	mustFail := func(src, want string) {
		t.Helper()
		_, err := Compile("t", src, nil)
		if err == nil {
			t.Fatalf("compile %q: expected error containing %q", src, want)
		}
		e, ok := err.(*Error)
		if !ok {
			t.Fatalf("compile %q: error is %T, want *Error", src, err)
		}
		if e.Line < 1 || e.Col < 1 {
			t.Fatalf("compile %q: error lacks position: %v", src, e)
		}
		if !strings.Contains(e.Msg, want) {
			t.Fatalf("compile %q: error %q does not mention %q", src, e.Msg, want)
		}
	}
	tail := " terminal 1 -> 1 moves 1 apply { } undo { }"
	mustFail("state x[8388609]"+tail, "cell limit")
	mustFail("state a[4194000] state b[4194000]"+tail, "cell limit")
	mustFail("terminal "+strings.Repeat("(", 250)+"1"+strings.Repeat(")", 250)+" -> 1 moves 1 apply { } undo { }", "nesting")
	mustFail("terminal "+strings.Repeat("!", 250)+"1 -> 1 moves 1 apply { } undo { }", "nesting")

	// A hostile init loop trips the guarded budget with a position…
	c, err := Compile("t", "init { for i = 0 to 1000000000 { } }"+tail, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := NewProgramGuarded(c, 1000); err == nil {
		t.Fatal("guarded init ran a 10^9-iteration loop without tripping the budget")
	} else if e, ok := err.(*Error); !ok || e.Line < 1 {
		t.Fatalf("budget error unpositioned: %v", err)
	}
	// …and an out-of-range init write comes back as an error, not a panic.
	c, err = Compile("t", "state x[4] init { x[9] = 1 }"+tail, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := NewProgramGuarded(c, 0); err == nil {
		t.Fatal("guarded init swallowed an out-of-range write")
	}

	// The budget does not bleed into normal execution: NewProgram still
	// runs legitimate init loops (knight's shared tables) unbudgeted.
	if _, err := CompileProgramGuarded("knight", KnightSrc, nil, 0); err != nil {
		t.Fatalf("guarded compile of knight example: %v", err)
	}
}
