package lang

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// Canonicalize reduces ATC source to its canonical spelling: the token
// stream rendered with single spaces between tokens, comments and layout
// dropped, and numeric literals re-printed in plain decimal. Two sources
// that differ only in whitespace, comments or literal spelling (007 vs 7)
// canonicalize identically, so the content hash of the canonical form is
// a compile-level identity: same hash ⇒ same token stream ⇒ same AST ⇒
// the same compiled program.
//
// The canonical form is a fixed point: re-lexing it yields the original
// token stream (tokens are separated by spaces, and no ATC token ever
// spans a space), so Canonicalize(Canonicalize(src)) == Canonicalize(src).
// FuzzLangCompile pins that property on arbitrary inputs.
func Canonicalize(src string) (string, *Error) {
	toks, err := lexAll(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(src))
	for i, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		if t.kind == tokNumber {
			b.WriteString(strconv.FormatInt(t.num, 10))
		} else {
			b.WriteString(t.text)
		}
	}
	return b.String(), nil
}

// HashSource canonicalizes src and returns the hex SHA-256 of the
// canonical form together with the canonical form itself. This is the
// content address used by the program store: submit the same program
// twice — reformatted, re-commented — and it lands on the same hash.
func HashSource(src string) (hash, canonical string, err *Error) {
	canonical, err = Canonicalize(src)
	if err != nil {
		return "", "", err
	}
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:]), canonical, nil
}
