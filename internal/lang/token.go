package lang

import "fmt"

// kind enumerates token kinds of the ATC mini-language.
type kind int

const (
	tokEOF kind = iota
	tokIdent
	tokNumber
	// punctuation
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokComma
	tokAssign // =
	tokArrow  // ->
	// operators
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokEq  // ==
	tokNeq // !=
	tokLt
	tokLe
	tokGt
	tokGe
	tokAnd // &&
	tokOr  // ||
	tokNot // !
	// keywords
	tokParam
	tokState
	tokInit
	tokTerminal
	tokMoves
	tokApply
	tokUndo
	tokIf
	tokElse
	tokReject
	tokTaskprivate
	tokShared
	tokFor
	tokTo
)

var keywords = map[string]kind{
	"param":       tokParam,
	"state":       tokState,
	"init":        tokInit,
	"terminal":    tokTerminal,
	"moves":       tokMoves,
	"apply":       tokApply,
	"undo":        tokUndo,
	"if":          tokIf,
	"else":        tokElse,
	"reject":      tokReject,
	"taskprivate": tokTaskprivate,
	"shared":      tokShared,
	"for":         tokFor,
	"to":          tokTo,
}

func (k kind) String() string {
	names := map[kind]string{
		tokEOF: "end of file", tokIdent: "identifier", tokNumber: "number",
		tokLBrace: "{", tokRBrace: "}", tokLBracket: "[", tokRBracket: "]",
		tokLParen: "(", tokRParen: ")", tokComma: ",", tokAssign: "=",
		tokArrow: "->", tokPlus: "+", tokMinus: "-", tokStar: "*",
		tokSlash: "/", tokPercent: "%", tokEq: "==", tokNeq: "!=",
		tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">=", tokAnd: "&&",
		tokOr: "||", tokNot: "!",
	}
	if s, ok := names[k]; ok {
		return s
	}
	for w, kw := range keywords {
		if kw == k {
			return w
		}
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexeme with its source position.
type token struct {
	kind kind
	text string
	num  int64
	line int
	col  int
}

// Error is a compile-time diagnostic with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
