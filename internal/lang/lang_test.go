package lang

import (
	"strings"
	"testing"

	"adaptivetc/internal/progtest"
	"adaptivetc/internal/sched"
)

func compileT(t *testing.T, src string, overrides map[string]int64) *Program {
	t.Helper()
	p, err := CompileProgram("test", src, overrides)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func serialValue(t *testing.T, p sched.Program) int64 {
	t.Helper()
	res, err := sched.Serial{}.Run(p, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Value
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll("param x = 12 # comment\nif a[i] >= 3 && !b { reject }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]kind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []kind{tokParam, tokIdent, tokAssign, tokNumber, tokIf, tokIdent,
		tokLBracket, tokIdent, tokRBracket, tokGe, tokNumber, tokAnd, tokNot,
		tokIdent, tokLBrace, tokReject, tokRBrace, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"a & b", "a | b", "@", "99999999999999999999999999"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) accepted bad input", src)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := map[string]string{
		"missing terminal":  "moves 2 apply {} undo {}",
		"missing moves":     "terminal 1 -> 1 apply {} undo {}",
		"missing apply":     "terminal 1 -> 1 moves 2 undo {}",
		"missing undo":      "terminal 1 -> 1 moves 2 apply {}",
		"dup terminal":      "terminal 1 -> 1 terminal 1 -> 1 moves 2 apply {} undo {}",
		"unterminated":      "terminal 1 -> 1 moves 2 apply { undo {}",
		"bad statement":     "terminal 1 -> 1 moves 2 apply { 3 = 4 } undo {}",
		"bad expression":    "terminal -> 1 moves 2 apply {} undo {}",
		"unbalanced parens": "terminal (1 -> 1 moves 2 apply {} undo {}",
	}
	for name, src := range cases {
		if _, err := parse(src); err == nil {
			t.Errorf("%s: parser accepted %q", name, src)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"undefined name":       "terminal q == 1 -> 1 moves 2 apply {} undo {}",
		"assign to param":      "param p = 1 terminal 1 -> 1 moves 2 apply { p = 2 } undo {}",
		"assign to builtin":    "terminal 1 -> 1 moves 2 apply { depth = 2 } undo {}",
		"reject outside apply": "terminal 1 -> 1 moves 2 apply {} undo { reject }",
		"scalar indexed":       "state s terminal 1 -> 1 moves 2 apply { s[0] = 1 } undo {}",
		"array unindexed":      "state a[3] terminal 1 -> 1 moves 2 apply { a = 1 } undo {}",
		"array in expression":  "state a[3] terminal a == 1 -> 1 moves 2 apply {} undo {}",
		"zero-size array":      "state a[0] terminal 1 -> 1 moves 2 apply {} undo {}",
		"non-const size":       "state s state a[s] terminal 1 -> 1 moves 2 apply {} undo {}",
		"dup name":             "state s state s terminal 1 -> 1 moves 2 apply {} undo {}",
		"reserved name":        "state depth terminal 1 -> 1 moves 2 apply {} undo {}",
		"shared write":         "state g shared terminal 1 -> 1 moves 2 apply { g = 1 } undo {}",
		"const div zero":       "param p = 1 / 0 terminal 1 -> 1 moves 2 apply {} undo {}",
	}
	for name, src := range cases {
		if _, err := Compile("t", src, nil); err == nil {
			t.Errorf("%s: compiler accepted %q", name, src)
		}
	}
	if _, err := Compile("t", "terminal 1 -> 1 moves 2 apply {} undo {}", map[string]int64{"nope": 1}); err == nil {
		t.Error("override of unknown param accepted")
	}
}

func TestNQueensMatchesNative(t *testing.T) {
	// 92 solutions for 8 queens; also cross-checked against the known
	// counts for 4..9.
	want := []int64{2, 10, 4, 40, 92, 352}
	for i, n := range []int64{4, 5, 6, 7, 8, 9} {
		p := compileT(t, NQueensSrc, map[string]int64{"n": n})
		if got := serialValue(t, p); got != want[i] {
			t.Errorf("atc nqueens(%d) = %d, want %d", n, got, want[i])
		}
	}
}

func TestFibMatches(t *testing.T) {
	fib := func(n int64) int64 {
		a, b := int64(0), int64(1)
		for i := int64(0); i < n; i++ {
			a, b = b, a+b
		}
		return a
	}
	for _, n := range []int64{0, 1, 2, 10, 17} {
		p := compileT(t, FibSrc, map[string]int64{"n": n})
		if got := serialValue(t, p); got != fib(n) {
			t.Errorf("atc fib(%d) = %d, want %d", n, got, fib(n))
		}
	}
}

func TestLatinSquares(t *testing.T) {
	if got := serialValue(t, compileT(t, LatinSrc, nil)); got != 576 {
		t.Errorf("atc latin(4) = %d, want 576", got)
	}
	if got := serialValue(t, compileT(t, LatinSrc, map[string]int64{"n": 3})); got != 12 {
		t.Errorf("atc latin(3) = %d, want 12", got)
	}
}

func TestConformance(t *testing.T) {
	progtest.Conformance(t, compileT(t, NQueensSrc, map[string]int64{"n": 6}))
	progtest.Conformance(t, compileT(t, FibSrc, map[string]int64{"n": 12}))
	progtest.Conformance(t, compileT(t, LatinSrc, map[string]int64{"n": 3}))
}

func TestRejectRollsBack(t *testing.T) {
	// The apply block writes before rejecting; a failed Apply must leave
	// the workspace untouched (the sched.Program contract).
	src := `
state a[4]
terminal depth == 2 -> 1
moves 4
apply {
    a[m] = a[m] + 1
    if a[m] > 1 { reject }
    if m == 3 { reject }       # rejected after a visible write
}
undo { a[m] = a[m] - 1 }
`
	p := compileT(t, src, nil)
	ws := p.Root()
	if p.Apply(ws, 0, 3) {
		t.Fatal("move 3 should be rejected")
	}
	// The write a[3]=1 must have been rolled back: applying again behaves
	// identically.
	if p.Apply(ws, 0, 3) {
		t.Fatal("rollback failed: second apply of move 3 accepted")
	}
	if !p.Apply(ws, 0, 0) {
		t.Fatal("legal move refused")
	}
}

func TestSharedStateNotCloned(t *testing.T) {
	src := `
param n = 3
state table[n] shared
state pos
init {
    table[0] = 10
    table[1] = 20
    table[2] = 30
}
terminal depth == 1 -> table[pos]
moves n
apply { pos = m }
undo { pos = 0 }
`
	p := compileT(t, src, nil)
	if got := serialValue(t, p); got != 60 {
		t.Fatalf("shared-table sum = %d, want 60", got)
	}
	// The clone must not carry the shared table (Bytes counts only
	// taskprivate state: one scalar).
	if b := p.Root().Bytes(); b != 8 {
		t.Fatalf("workspace bytes = %d, want 8 (shared state must not be cloned)", b)
	}
}

func TestRuntimeBoundsCheck(t *testing.T) {
	src := `
state a[2]
terminal depth == 1 -> a[depth + 5]
moves 1
apply { a[0] = 1 }
undo { a[0] = 0 }
`
	p := compileT(t, src, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected bounds panic")
		}
		if !strings.Contains(r.(*Error).Msg, "out of range") {
			t.Fatalf("unexpected panic %v", r)
		}
	}()
	serialValue(t, p)
}

func TestOverridesChangeSize(t *testing.T) {
	small := compileT(t, NQueensSrc, map[string]int64{"n": 4})
	big := compileT(t, NQueensSrc, map[string]int64{"n": 6})
	if small.Root().Bytes() >= big.Root().Bytes() {
		t.Error("override did not resize the state arrays")
	}
}

func TestSourcesCompile(t *testing.T) {
	for name, src := range Sources() {
		if _, err := CompileProgram(name, src, nil); err != nil {
			t.Errorf("built-in source %s fails to compile: %v", name, err)
		}
	}
}

func TestForLoop(t *testing.T) {
	src := `
param n = 10
state total shared
state dummy
init {
    for i = 0 to n {
        for j = 0 to i {
            total = total + 1
        }
    }
}
terminal depth == 1 -> total
moves 1
apply { dummy = 1 }
undo { dummy = 0 }
`
	p := compileT(t, src, nil)
	// Σ_{i<10} i = 45 per leaf; one leaf.
	if got := serialValue(t, p); got != 45 {
		t.Fatalf("for-loop total = %d, want 45", got)
	}
}

func TestForLoopErrors(t *testing.T) {
	cases := map[string]string{
		"assign to loop var": "state s terminal 1 -> 1 moves 1 apply { for i = 0 to 3 { i = 2 } } undo {}",
		"shadow state":       "state s terminal 1 -> 1 moves 1 apply { for s = 0 to 3 { } } undo {}",
		"shadow nested":      "state s terminal 1 -> 1 moves 1 apply { for i = 0 to 3 { for i = 0 to 2 { } } } undo {}",
		"shadow builtin":     "state s terminal 1 -> 1 moves 1 apply { for m = 0 to 3 { } } undo {}",
	}
	for name, src := range cases {
		if _, err := Compile("t", src, nil); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
	// Loop variable must not leak out of its scope.
	leak := "state s terminal 1 -> 1 moves 1 apply { for i = 0 to 3 { s = i } s = i } undo {}"
	if _, err := Compile("t", leak, nil); err == nil {
		t.Error("loop variable leaked out of scope")
	}
}

func TestKnightMatchesNative(t *testing.T) {
	// Cross-check the ATC knight's tour against problems/knight via the
	// known values: 5x5 from the corner.
	p := compileT(t, KnightSrc, map[string]int64{"n": 5})
	got := serialValue(t, p)
	if got <= 0 {
		t.Fatalf("atc knight(5) = %d, want > 0", got)
	}
	// 4x4 has no tours.
	if got4 := serialValue(t, compileT(t, KnightSrc, map[string]int64{"n": 4})); got4 != 0 {
		t.Fatalf("atc knight(4) = %d, want 0", got4)
	}
	t.Logf("atc knight(5) from corner = %d", got)
}

func TestForLoopRejectInsideApply(t *testing.T) {
	src := `
param n = 4
state used[n]
state picks[n]
terminal depth == n -> 1
moves n
apply {
    # permutations: reject if m already used anywhere (loop + reject)
    for i = 0 to depth {
        if picks[i] == m { reject }
    }
    picks[depth] = m
    used[m] = used[m] + 1
}
undo {
    used[m] = used[m] - 1
}
`
	p := compileT(t, src, nil)
	if got := serialValue(t, p); got != 24 {
		t.Fatalf("permutations(4) = %d, want 24", got)
	}
}
