package deque

import (
	"sync"
	"testing"
)

// stealN is a test helper: batch-steal up to max entries from d.
func stealN(d WorkDeque, max int) []Entry {
	dst := make([]Entry, max)
	n := d.StealN(dst)
	return dst[:n]
}

func TestStealNBatchFIFO(t *testing.T) {
	for _, mk := range []struct {
		name string
		d    WorkDeque
	}{
		{"fixed", New(16, 20)},
		{"growable", NewGrowable(16, 20)},
		{"relaxed", NewRelaxed(16, 20)},
	} {
		d := mk.d
		for i := 0; i < 8; i++ {
			d.Push(item(i))
		}
		got := stealN(d, 3)
		if len(got) != 3 {
			t.Fatalf("%s: StealN took %d entries, want 3", mk.name, len(got))
		}
		for i, e := range got {
			if e.(*entry).id != i {
				t.Errorf("%s: batch[%d] = %d, want %d (head order)", mk.name, i, e.(*entry).id, i)
			}
			if e.(*entry).stolen.Load() != 1 {
				t.Errorf("%s: OnStolen not called exactly once for %d", mk.name, i)
			}
		}
		// The owner's view: 5 entries remain, poppable LIFO from the tail.
		if got := d.Size(); got != 5 {
			t.Fatalf("%s: size after batch = %d, want 5", mk.name, got)
		}
		e, ok := d.Pop()
		if !ok || e.(*entry).id != 7 {
			t.Fatalf("%s: pop after batch = %v/%v, want 7", mk.name, e, ok)
		}
	}
}

func TestStealNClampedToAvailable(t *testing.T) {
	d := New(16, 20)
	d.Push(item(0))
	d.Push(item(1))
	got := stealN(d, 8)
	if len(got) != 2 {
		t.Fatalf("StealN took %d, want 2 (all available)", len(got))
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("deque should be empty after the batch took everything")
	}
}

func TestStealNEmptyFailsOnce(t *testing.T) {
	d := New(16, 3)
	var fails int
	d.SetTrace(func(op TraceOp, stolenNum int64, needTask bool) {
		if op == TraceStealFail {
			fails++
		}
	})
	if n := d.StealN(make([]Entry, 8)); n != 0 {
		t.Fatalf("StealN on empty deque took %d", n)
	}
	if fails != 1 {
		t.Fatalf("empty batch attempt recorded %d steal-fail transitions, want exactly 1", fails)
	}
	if d.StolenNum() != 1 {
		t.Fatalf("stolen_num = %d after one failed batch, want 1", d.StolenNum())
	}
}

func TestStealNStopsAtSpecialMarker(t *testing.T) {
	d := New(16, 20)
	d.Push(item(0))
	d.Push(item(1))
	d.Push(specialItem(2))
	d.Push(item(3))
	got := stealN(d, 8)
	if len(got) != 2 || got[0].(*entry).id != 0 || got[1].(*entry).id != 1 {
		t.Fatalf("batch = %v, want exactly the two entries before the marker", got)
	}
	// The marker is now the head: a second batch degrades to
	// steal_specialtask and takes the marker's child.
	got = stealN(d, 8)
	if len(got) != 1 || got[0].(*entry).id != 3 {
		t.Fatalf("batch over marker = %v, want the marker's child 3", got)
	}
	// The marker itself stays owned by the victim.
	if stolen := d.PopSpecial(); !stolen {
		t.Fatal("PopSpecial did not report the child theft")
	}
}

func TestStealNHeadSpecialNoChildFails(t *testing.T) {
	d := New(16, 20)
	d.Push(specialItem(0))
	if n := d.StealN(make([]Entry, 4)); n != 0 {
		t.Fatalf("batch stole %d over a childless marker, want 0", n)
	}
	if d.StolenNum() != 1 {
		t.Fatalf("stolen_num = %d, want 1", d.StolenNum())
	}
}

// TestFailLockedTable pins the shared fail-path semantics Steal and StealN
// both go through: the stolen_num counter, the need_task threshold and the
// trace transition must evolve identically whether a failure came from an
// organic empty deque, a forced injection, or a batch attempt. One step per
// row; the table is replayed against both entry points.
func TestFailLockedTable(t *testing.T) {
	type step struct {
		op       string // "push", "steal", "fail-steal" (forced), "check"
		wantOK   bool   // for steal steps: success expected
		wantNum  int64  // post-step stolen_num
		wantNeed bool   // post-step need_task
	}
	script := []step{
		{op: "steal", wantOK: false, wantNum: 1, wantNeed: false},
		{op: "steal", wantOK: false, wantNum: 2, wantNeed: false},
		{op: "fail-steal", wantOK: false, wantNum: 3, wantNeed: false}, // injected, same path
		{op: "steal", wantOK: false, wantNum: 4, wantNeed: true},       // past max_stolen_num=3
		{op: "steal", wantOK: false, wantNum: 5, wantNeed: true},
		{op: "push"},
		{op: "steal", wantOK: true, wantNum: 0, wantNeed: false}, // success clears both
		{op: "fail-steal", wantOK: false, wantNum: 1, wantNeed: false},
		{op: "push"},
		{op: "steal", wantOK: true, wantNum: 0, wantNeed: false},
	}
	for _, mode := range []string{"steal", "stealN"} {
		d := New(16, 3)
		forced := false
		d.SetFailSteal(func() bool { return forced })
		var traced []TraceOp
		d.SetTrace(func(op TraceOp, stolenNum int64, needTask bool) {
			traced = append(traced, op)
		})
		id := 0
		for i, s := range script {
			switch s.op {
			case "push":
				d.Push(item(id))
				id++
				continue
			case "fail-steal":
				forced = true
			case "steal":
				forced = false
			}
			var ok bool
			if mode == "steal" {
				_, ok = d.Steal()
			} else {
				ok = d.StealN(make([]Entry, 4)) > 0
			}
			if ok != s.wantOK {
				t.Fatalf("%s step %d (%s): ok = %v, want %v", mode, i, s.op, ok, s.wantOK)
			}
			if got := d.StolenNum(); got != s.wantNum {
				t.Errorf("%s step %d (%s): stolen_num = %d, want %d", mode, i, s.op, got, s.wantNum)
			}
			if got := d.NeedTask(); got != s.wantNeed {
				t.Errorf("%s step %d (%s): need_task = %v, want %v", mode, i, s.op, got, s.wantNeed)
			}
		}
		// Trace symmetry: every failed attempt produced exactly one
		// TraceStealFail and every success exactly one TraceStealOK,
		// regardless of entry point.
		fails, oks := 0, 0
		for _, op := range traced {
			switch op {
			case TraceStealFail:
				fails++
			case TraceStealOK:
				oks++
			}
		}
		if fails != 6 || oks != 2 {
			t.Errorf("%s: trace saw %d fails / %d oks, want 6/2", mode, fails, oks)
		}
	}
}

func TestStealNForcedFailureCountsOnce(t *testing.T) {
	d := New(16, 20)
	for i := 0; i < 8; i++ {
		d.Push(item(i))
	}
	d.SetFailSteal(func() bool { return true })
	if n := d.StealN(make([]Entry, 8)); n != 0 {
		t.Fatalf("forced failure still stole %d entries", n)
	}
	if d.StolenNum() != 1 {
		t.Fatalf("a forced batch failure bumped stolen_num to %d, want 1 (one attempt, one failure)", d.StolenNum())
	}
	d.SetFailSteal(nil)
	if got := stealN(d, 8); len(got) != 8 {
		t.Fatalf("after clearing the gate the batch took %d, want 8", len(got))
	}
}

// TestStealNConcurrentWithOwner hammers batch thieves against a pushing and
// popping owner: every entry must be consumed exactly once, by exactly one
// side.
func TestStealNConcurrentWithOwner(t *testing.T) {
	for _, mk := range []struct {
		name string
		d    WorkDeque
	}{
		{"fixed", New(32768, 20)}, // capacity ≥ total: starved thieves must never overflow it
		{"relaxed", NewRelaxed(64, 20)},
	} {
		d := mk.d
		const total = 20000
		var stolen, popped int64
		seen := make([]int32, total)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for th := 0; th < 3; th++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := make([]Entry, 5)
				local := int64(0)
				for {
					n := d.StealN(dst)
					for i := 0; i < n; i++ {
						seen[dst[i].(*entry).id]++
						local++
					}
					if n == 0 {
						select {
						case <-stop:
							mu.Lock()
							stolen += local
							mu.Unlock()
							return
						default:
						}
					}
				}
			}()
		}
		for i := 0; i < total; i++ {
			if !d.Push(item(i)) {
				t.Fatalf("%s: push %d overflowed", mk.name, i)
			}
			if i%3 == 0 {
				if e, ok := d.Pop(); ok {
					seen[e.(*entry).id]++
					popped++
				}
			}
		}
		for {
			e, ok := d.Pop()
			if !ok {
				break
			}
			seen[e.(*entry).id]++
			popped++
		}
		close(stop)
		wg.Wait()
		if got := stolen + popped; got != total {
			t.Fatalf("%s: consumed %d entries (%d stolen + %d popped), want %d", mk.name, got, stolen, popped, total)
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("%s: entry %d consumed %d times", mk.name, id, n)
			}
		}
	}
}

// mu guards the cross-goroutine counters of the concurrent tests above;
// seen[] itself is safe because each id is consumed exactly once (what the
// test asserts) — a double-consumption bug shows up as a count, and under
// -race as the write race it truly is.
var mu sync.Mutex
