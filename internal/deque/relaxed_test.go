package deque

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRelaxedPushPopLIFO(t *testing.T) {
	d := NewRelaxed(16, 20)
	for i := 0; i < 10; i++ {
		if !d.Push(item(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if got := d.Size(); got != 10 {
		t.Fatalf("size = %d, want 10", got)
	}
	for i := 9; i >= 0; i-- {
		e, ok := d.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if e.(*entry).id != i {
			t.Fatalf("pop returned %d, want %d", e.(*entry).id, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
	// Emptiness is re-normalised: pushing again still works.
	if !d.Push(item(99)) {
		t.Fatal("push after empty pop failed")
	}
	if e, ok := d.Pop(); !ok || e.(*entry).id != 99 {
		t.Fatalf("pop after re-push = %v/%v", e, ok)
	}
}

func TestRelaxedNeverOverflows(t *testing.T) {
	d := NewRelaxed(8, 20)
	const n = 10000
	for i := 0; i < n; i++ {
		if !d.Push(item(i)) {
			t.Fatalf("push %d reported overflow on a growable deque", i)
		}
	}
	if d.Cap() < n {
		t.Fatalf("capacity %d after %d pushes", d.Cap(), n)
	}
	if got := d.MaxDepth(); got != n {
		t.Fatalf("max depth = %d, want %d", got, n)
	}
	for i := n - 1; i >= 0; i-- {
		e, ok := d.Pop()
		if !ok || e.(*entry).id != i {
			t.Fatalf("pop %d after growth = %v/%v", i, e, ok)
		}
	}
}

func TestRelaxedKeepsWindowAcrossGrowth(t *testing.T) {
	d := NewRelaxed(8, 20)
	// Steal a prefix so the live window [H, T) starts off-origin, then grow.
	for i := 0; i < 6; i++ {
		d.Push(item(i))
	}
	for i := 0; i < 3; i++ {
		e, ok := d.Steal()
		if !ok || e.(*entry).id != i {
			t.Fatalf("steal %d = %v/%v", i, e, ok)
		}
	}
	for i := 6; i < 40; i++ {
		d.Push(item(i))
	}
	// Everything from 3..39 must still come back, thief side FIFO.
	for i := 3; i < 40; i++ {
		e, ok := d.Steal()
		if !ok || e.(*entry).id != i {
			t.Fatalf("steal %d after growth = %v/%v", i, e, ok)
		}
	}
}

func TestRelaxedSpecialSemantics(t *testing.T) {
	d := NewRelaxed(16, 20)
	d.Push(specialItem(0))
	// Marker alone: steal_specialtask fails, marker stays.
	if _, ok := d.Steal(); ok {
		t.Fatal("stole a childless special marker")
	}
	d.Push(item(1))
	// Marker with child: the thief takes the child over the marker.
	e, ok := d.Steal()
	if !ok || e.(*entry).id != 1 {
		t.Fatalf("steal over marker = %v/%v, want child 1", e, ok)
	}
	if stolen := d.PopSpecial(); !stolen {
		t.Fatal("PopSpecial did not report the theft")
	}
	// Clean case: marker popped with nothing stolen.
	d.Push(specialItem(2))
	if stolen := d.PopSpecial(); stolen {
		t.Fatal("PopSpecial reported a theft that never happened")
	}
	// The owner can keep using the deque after both re-normalisations.
	d.Push(item(3))
	if e, ok := d.Pop(); !ok || e.(*entry).id != 3 {
		t.Fatalf("pop after PopSpecial = %v/%v", e, ok)
	}
}

func TestRelaxedReset(t *testing.T) {
	d := NewRelaxed(8, 3)
	for i := 0; i < 5; i++ {
		d.Push(item(i))
	}
	for i := 0; i < 4; i++ {
		d.Steal()
	}
	for i := 0; i < 5; i++ {
		d.Steal() // failures: raise the starvation signal
	}
	if !d.NeedTask() {
		t.Fatal("need_task not raised")
	}
	d.Reset()
	if d.Size() != 0 || d.NeedTask() || d.StolenNum() != 0 || d.MaxDepth() != 0 {
		t.Fatalf("Reset left state: size=%d need=%v num=%d depth=%d",
			d.Size(), d.NeedTask(), d.StolenNum(), d.MaxDepth())
	}
	// Owner-side caches were re-anchored too.
	if !d.Push(item(9)) {
		t.Fatal("push after reset failed")
	}
	if e, ok := d.Pop(); !ok || e.(*entry).id != 9 {
		t.Fatalf("pop after reset = %v/%v", e, ok)
	}
}

// TestRelaxedConcurrentStress mirrors the growable stress test: one owner
// pushing and popping randomly, several thieves stealing, every entry
// consumed exactly once. Run under -race this also proves the fence-light
// owner path has no data race with the locked thief path.
func TestRelaxedConcurrentStress(t *testing.T) {
	d := NewRelaxed(8, 20)
	const total = 30000
	var consumed [total]atomic.Int32
	var stolenCount atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			dst := make([]Entry, 4)
			for {
				if th%2 == 0 {
					if e, ok := d.Steal(); ok {
						consumed[e.(*entry).id].Add(1)
						stolenCount.Add(1)
						continue
					}
				} else {
					if n := d.StealN(dst); n > 0 {
						for i := 0; i < n; i++ {
							consumed[dst[i].(*entry).id].Add(1)
						}
						stolenCount.Add(int64(n))
						continue
					}
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(th)
	}
	rng := rand.New(rand.NewSource(42))
	popped := 0
	for i := 0; i < total; i++ {
		d.Push(item(i))
		for rng.Intn(3) == 0 {
			e, ok := d.Pop()
			if !ok {
				break
			}
			consumed[e.(*entry).id].Add(1)
			popped++
		}
	}
	for {
		e, ok := d.Pop()
		if !ok {
			break
		}
		consumed[e.(*entry).id].Add(1)
		popped++
	}
	close(stop)
	wg.Wait()
	if got := stolenCount.Load() + int64(popped); got != total {
		t.Fatalf("consumed %d entries (%d stolen + %d popped), want %d", got, stolenCount.Load(), popped, total)
	}
	for id := range consumed {
		if n := consumed[id].Load(); n != 1 {
			t.Fatalf("entry %d consumed %d times", id, n)
		}
	}
}

// TestRelaxedPushPopZeroAllocs pins the owner fast path of the relaxed
// variant to the same zero-allocation guarantee as the THE deque.
func TestRelaxedPushPopZeroAllocs(t *testing.T) {
	d := NewRelaxed(64, 20)
	e := item(1)
	d.Push(e)
	d.Pop()
	allocs := testing.AllocsPerRun(1000, func() {
		d.Push(e)
		d.Pop()
	})
	if allocs != 0 {
		t.Errorf("relaxed owner Push+Pop allocates %.1f objects/op, want 0", allocs)
	}
}

func TestRelaxedSetFailSteal(t *testing.T) {
	d := NewRelaxed(16, 20)
	d.Push(item(0))
	d.SetFailSteal(func() bool { return true })
	if _, ok := d.Steal(); ok {
		t.Fatal("forced failure still stole")
	}
	if n := d.StealN(make([]Entry, 4)); n != 0 {
		t.Fatal("forced failure still batch-stole")
	}
	if d.StolenNum() != 2 {
		t.Fatalf("stolen_num = %d after two forced failures, want 2", d.StolenNum())
	}
	d.SetFailSteal(nil)
	if _, ok := d.Steal(); !ok {
		t.Fatal("steal failed after clearing the gate")
	}
}
