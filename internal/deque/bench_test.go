package deque

import "testing"

// TestPushPopZeroAllocs pins the hot-path guarantee: once the box free-list
// is warm, the owner's Push/Pop cycle performs no heap allocation at all.
func TestPushPopZeroAllocs(t *testing.T) {
	d := New(64, 20)
	e := item(1)
	// One warm-up cycle seeds the free-list and sizes its backing array.
	d.Push(e)
	d.Pop()
	allocs := testing.AllocsPerRun(1000, func() {
		d.Push(e)
		d.Pop()
	})
	if allocs != 0 {
		t.Errorf("owner Push+Pop allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDeepPushPopZeroAllocs repeats the check at realistic deque depth: a
// spawn burst of 32 frames pushed then popped, as a deep recursion would.
func TestDeepPushPopZeroAllocs(t *testing.T) {
	d := New(64, 20)
	es := make([]*entry, 32)
	for i := range es {
		es[i] = item(i)
	}
	burst := func() {
		for _, e := range es {
			d.Push(e)
		}
		for range es {
			d.Pop()
		}
	}
	burst() // warm the free-list to burst depth
	if allocs := testing.AllocsPerRun(100, burst); allocs != 0 {
		t.Errorf("32-deep Push/Pop burst allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkPushPop measures the owner's uncontended Push+Pop cycle — the
// dominant deque operation of every engine's spawn loop.
func BenchmarkPushPop(b *testing.B) {
	d := New(64, 20)
	e := item(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(e)
		d.Pop()
	}
}

// BenchmarkPushPopDepth32 measures a 32-deep spawn burst per iteration.
func BenchmarkPushPopDepth32(b *testing.B) {
	d := New(64, 20)
	e := item(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			d.Push(e)
		}
		for j := 0; j < 32; j++ {
			d.Pop()
		}
	}
}
