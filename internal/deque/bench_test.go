package deque

import "testing"

// TestPushPopZeroAllocs pins the hot-path guarantee: once the box free-list
// is warm, the owner's Push/Pop cycle performs no heap allocation at all.
func TestPushPopZeroAllocs(t *testing.T) {
	d := New(64, 20)
	e := item(1)
	// One warm-up cycle seeds the free-list and sizes its backing array.
	d.Push(e)
	d.Pop()
	allocs := testing.AllocsPerRun(1000, func() {
		d.Push(e)
		d.Pop()
	})
	if allocs != 0 {
		t.Errorf("owner Push+Pop allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDeepPushPopZeroAllocs repeats the check at realistic deque depth: a
// spawn burst of 32 frames pushed then popped, as a deep recursion would.
func TestDeepPushPopZeroAllocs(t *testing.T) {
	d := New(64, 20)
	es := make([]*entry, 32)
	for i := range es {
		es[i] = item(i)
	}
	burst := func() {
		for _, e := range es {
			d.Push(e)
		}
		for range es {
			d.Pop()
		}
	}
	burst() // warm the free-list to burst depth
	if allocs := testing.AllocsPerRun(100, burst); allocs != 0 {
		t.Errorf("32-deep Push/Pop burst allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkPushPop measures the owner's uncontended Push+Pop cycle — the
// dominant deque operation of every engine's spawn loop.
func BenchmarkPushPop(b *testing.B) {
	d := New(64, 20)
	e := item(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(e)
		d.Pop()
	}
}

// BenchmarkPushPopDepth32 measures a 32-deep spawn burst per iteration.
func BenchmarkPushPopDepth32(b *testing.B) {
	d := New(64, 20)
	e := item(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			d.Push(e)
		}
		for j := 0; j < 32; j++ {
			d.Pop()
		}
	}
}

// BenchmarkPushPopRelaxed is the lock-reduced owner fast path: two atomic
// stores per Push, one store plus one load per Pop. Compare against
// BenchmarkPushPop for the tentpole's owner-path saving.
func BenchmarkPushPopRelaxed(b *testing.B) {
	d := NewRelaxed(64, 20)
	e := item(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(e)
		d.Pop()
	}
}

// BenchmarkPushPopDepth32Relaxed is the 32-deep burst on the relaxed owner
// path.
func BenchmarkPushPopDepth32Relaxed(b *testing.B) {
	d := NewRelaxed(64, 20)
	e := item(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 32; j++ {
			d.Push(e)
		}
		for j := 0; j < 32; j++ {
			d.Pop()
		}
	}
}

// BenchmarkStealN measures the per-entry cost of batch stealing at several
// batch widths against single-entry Steal (batch=1 uses Steal itself). One
// critical section amortises across the batch, which is the mechanism the
// steal-half policy banks on.
func BenchmarkStealN(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8, 16} {
		name := "batch1_steal"
		if batch > 1 {
			name = "batchN"
		}
		b.Run(name+"/"+itoa(batch), func(b *testing.B) {
			d := New(1<<16, 20)
			dst := make([]Entry, batch)
			e := item(1)
			refill := func() {
				for d.Size() < 1<<15 {
					d.Push(e)
				}
			}
			refill()
			b.ResetTimer()
			// b.N counts stolen entries, so ns/op is per entry across
			// batch widths.
			for i := 0; i < b.N; i += batch {
				if d.Size() < batch {
					b.StopTimer()
					refill()
					b.StartTimer()
				}
				if batch == 1 {
					d.Steal()
				} else {
					d.StealN(dst)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
