package deque

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// entry is a plain stealable item.
type entry struct {
	id      int
	special bool
	stolen  atomic.Int64
}

func (e *entry) Special() bool { return e.special }
func (e *entry) OnStolen()     { e.stolen.Add(1) }

func item(id int) *entry        { return &entry{id: id} }
func specialItem(id int) *entry { return &entry{id: id, special: true} }

func TestPushPopLIFO(t *testing.T) {
	d := New(16, 20)
	for i := 0; i < 10; i++ {
		if !d.Push(item(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if got := d.Size(); got != 10 {
		t.Fatalf("size = %d, want 10", got)
	}
	for i := 9; i >= 0; i-- {
		e, ok := d.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if e.(*entry).id != i {
			t.Fatalf("pop returned %d, want %d", e.(*entry).id, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New(16, 20)
	for i := 0; i < 5; i++ {
		d.Push(item(i))
	}
	for i := 0; i < 5; i++ {
		e, ok := d.Steal()
		if !ok {
			t.Fatalf("steal %d failed", i)
		}
		if e.(*entry).id != i {
			t.Fatalf("steal returned %d, want %d (head order)", e.(*entry).id, i)
		}
		if e.(*entry).stolen.Load() != 1 {
			t.Fatalf("OnStolen not called exactly once for %d", i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
}

func TestOverflow(t *testing.T) {
	d := New(6, 20) // effective capacity 4: two slots reserved for claims
	for i := 0; i < 4; i++ {
		if !d.Push(item(i)) {
			t.Fatalf("push %d failed before capacity", i)
		}
	}
	if d.Push(item(4)) {
		t.Fatal("push beyond capacity succeeded")
	}
	// Draining one slot re-enables pushing.
	if _, ok := d.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if !d.Push(item(5)) {
		t.Fatal("push after pop failed")
	}
}

func TestNeedTaskSignalling(t *testing.T) {
	d := New(8, 3) // max_stolen_num = 3
	for i := 0; i < 3; i++ {
		if _, ok := d.Steal(); ok {
			t.Fatal("steal from empty deque succeeded")
		}
	}
	if d.NeedTask() {
		t.Fatal("need_task raised at stolen_num == max_stolen_num")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("steal from empty deque succeeded")
	}
	if !d.NeedTask() {
		t.Fatal("need_task not raised past max_stolen_num")
	}
	// A successful steal clears both counters.
	d.Push(item(1))
	if _, ok := d.Steal(); !ok {
		t.Fatal("steal failed")
	}
	if d.NeedTask() || d.StolenNum() != 0 {
		t.Fatalf("steal success did not clear signalling: need=%v num=%d", d.NeedTask(), d.StolenNum())
	}
}

func TestSpecialNeverStolen(t *testing.T) {
	d := New(8, 20)
	s := specialItem(0)
	d.Push(s)
	// Alone in the deque: steal_specialtask must fail (no child).
	if _, ok := d.Steal(); ok {
		t.Fatal("stole a lone special task")
	}
	// With a child above it, the child is taken instead.
	c := item(1)
	d.Push(c)
	e, ok := d.Steal()
	if !ok {
		t.Fatal("steal_specialtask failed with a child present")
	}
	if e.(*entry) != c {
		t.Fatalf("steal_specialtask returned %d, want the child", e.(*entry).id)
	}
	if s.stolen.Load() != 0 {
		t.Fatal("special task's OnStolen fired")
	}
	// The owner discovers the theft via PopSpecial.
	if stolen := d.PopSpecial(); !stolen {
		t.Fatal("PopSpecial did not report the stolen child")
	}
}

func TestPopSpecialClean(t *testing.T) {
	d := New(8, 20)
	s := specialItem(0)
	d.Push(s)
	d.Push(item(1))
	if _, ok := d.Pop(); !ok {
		t.Fatal("pop of child failed")
	}
	if stolen := d.PopSpecial(); stolen {
		t.Fatal("PopSpecial reported theft with none")
	}
	if d.Size() != 0 {
		t.Fatalf("size = %d after PopSpecial, want 0", d.Size())
	}
	// The cycle repeats: push special + child again.
	d.Push(s)
	d.Push(item(2))
	if e, ok := d.Pop(); !ok || e.(*entry).id != 2 {
		t.Fatal("second cycle pop failed")
	}
	if d.PopSpecial() {
		t.Fatal("second cycle PopSpecial reported theft")
	}
}

// TestPopSpecialReturn pins the documented single-return contract of
// PopSpecial: false when the marker sat undisturbed at the tail, true when
// a thief's steal_specialtask carried H past it; the marker entry is
// removed either way (there is no separate "found" result).
func TestPopSpecialReturn(t *testing.T) {
	cases := []struct {
		name       string
		setup      func(t *testing.T, d *Deque)
		wantStolen bool
	}{
		{
			name:       "lone marker, untouched",
			setup:      func(t *testing.T, d *Deque) { d.Push(specialItem(0)) },
			wantStolen: false,
		},
		{
			name: "child popped by owner",
			setup: func(t *testing.T, d *Deque) {
				d.Push(specialItem(0))
				d.Push(item(1))
				if _, ok := d.Pop(); !ok {
					t.Fatal("pop of child failed")
				}
			},
			wantStolen: false,
		},
		{
			name: "child taken by steal_specialtask",
			setup: func(t *testing.T, d *Deque) {
				d.Push(specialItem(0))
				d.Push(item(1))
				if _, ok := d.Steal(); !ok {
					t.Fatal("steal_specialtask failed")
				}
			},
			wantStolen: true,
		},
		{
			name: "one of two children stolen, other popped",
			setup: func(t *testing.T, d *Deque) {
				d.Push(specialItem(0))
				d.Push(item(1))
				d.Push(item(2))
				if e, ok := d.Steal(); !ok || e.(*entry).id != 1 {
					t.Fatal("steal_specialtask did not take the first child")
				}
				if e, ok := d.Pop(); !ok || e.(*entry).id != 2 {
					t.Fatal("pop did not return the second child")
				}
			},
			wantStolen: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := New(16, 20)
			c.setup(t, d)
			if stolen := d.PopSpecial(); stolen != c.wantStolen {
				t.Fatalf("PopSpecial() = %v, want %v", stolen, c.wantStolen)
			}
			// The marker is gone regardless of the result, and the deque is
			// immediately reusable for the next special-task cycle.
			if d.Size() != 0 {
				t.Fatalf("size = %d after PopSpecial, want 0", d.Size())
			}
			if _, ok := d.Pop(); ok {
				t.Fatal("pop after PopSpecial returned an entry from an empty deque")
			}
			d.Push(specialItem(3))
			d.Push(item(4))
			if e, ok := d.Pop(); !ok || e.(*entry).id != 4 {
				t.Fatal("deque not reusable after PopSpecial")
			}
			if d.PopSpecial() {
				t.Fatal("fresh cycle reported a stale theft")
			}
		})
	}
}

// TestMaxDepthMidPushSteal reproduces the maxDepth over-count: Push loads H
// before publishing the entry, and thieves advancing H inside that window
// used to make the owner record a depth it never co-held. The hook steals
// six entries between the loads and the store of the ninth push; the fresh
// depth at publication is 3, so the high-water mark must stay at 8.
func TestMaxDepthMidPushSteal(t *testing.T) {
	d := New(32, 20)
	for i := 0; i < 8; i++ {
		if !d.Push(item(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if got := d.MaxDepth(); got != 8 {
		t.Fatalf("maxDepth = %d after 8 pushes, want 8", got)
	}
	fired := false
	testMidPush = func(dd *Deque) {
		fired = true
		testMidPush = nil // only the next push interleaves
		for i := 0; i < 6; i++ {
			if _, ok := dd.Steal(); !ok {
				t.Errorf("mid-push steal %d failed", i)
			}
		}
	}
	defer func() { testMidPush = nil }()
	if !d.Push(item(8)) {
		t.Fatal("ninth push failed")
	}
	if !fired {
		t.Fatal("mid-push hook never ran")
	}
	// Stale arithmetic would record t+1-h = 9; the true depth at the moment
	// of publication was 9-6 = 3.
	if got := d.MaxDepth(); got != 8 {
		t.Fatalf("maxDepth = %d after mid-push steals, want 8 (stale-H over-count)", got)
	}
	if got := d.Size(); got != 3 {
		t.Fatalf("size = %d, want 3", got)
	}
}

// TestConcurrentStealPop hammers one owner against many thieves and checks
// that every pushed entry is consumed exactly once — the THE-protocol
// linearizability property. Run with -race.
func TestConcurrentStealPop(t *testing.T) {
	const (
		items   = 20000
		thieves = 4
	)
	d := New(64, 20)
	var consumed sync.Map
	var popped, stolenCount atomic.Int64
	record := func(e Entry, by string) {
		if _, dup := consumed.LoadOrStore(e.(*entry).id, by); dup {
			t.Errorf("entry %d consumed twice", e.(*entry).id)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					// Drain whatever remains after the owner finished.
					for {
						e, ok := d.Steal()
						if !ok {
							return
						}
						record(e, "thief")
						stolenCount.Add(1)
					}
				default:
				}
				if e, ok := d.Steal(); ok {
					record(e, "thief")
					stolenCount.Add(1)
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(7))
	next := 0
	live := 0
	for next < items {
		if live < 48 && (live == 0 || rng.Intn(2) == 0) {
			if d.Push(item(next)) {
				next++
				live++
			}
			continue
		}
		if e, ok := d.Pop(); ok {
			record(e, "owner")
			popped.Add(1)
		}
		// Whether the pop succeeded or not, entries may also vanish to
		// thieves; recompute the live estimate from the deque itself.
		live = d.Size()
	}
	for {
		e, ok := d.Pop()
		if !ok {
			break
		}
		record(e, "owner")
		popped.Add(1)
	}
	close(done)
	wg.Wait()
	total := popped.Load() + stolenCount.Load()
	count := 0
	consumed.Range(func(_, _ any) bool { count++; return true })
	if count != items {
		t.Fatalf("consumed %d distinct entries, want %d (popped=%d stolen=%d)",
			count, items, popped.Load(), stolenCount.Load())
	}
	if total != items {
		t.Fatalf("consumed %d total, want %d", total, items)
	}
}

// TestQuickOwnerSequence drives random single-threaded op sequences and
// checks the deque against a simple slice model.
func TestQuickOwnerSequence(t *testing.T) {
	f := func(ops []byte) bool {
		d := New(32, 20)
		var model []int
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				ok := d.Push(item(next))
				wantOK := len(model) < 30 // capacity 32 minus claim slack
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
					next++
				}
			case 1: // pop
				e, ok := d.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if e.(*entry).id != want {
						return false
					}
				}
			case 2: // steal
				e, ok := d.Steal()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					want := model[0]
					model = model[1:]
					if e.(*entry).id != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// A forced steal failure must be indistinguishable from losing a real
// race: no entry leaves, stolen_num/need_task advance, the trace records
// a steal-fail, and clearing the hook restores normal stealing.
func TestSetFailStealForcesFailure(t *testing.T) {
	d := New(16, 3)
	var forced int
	remaining := 4
	d.SetFailSteal(func() bool {
		if remaining > 0 {
			remaining--
			forced++
			return true
		}
		return false
	})
	var ops []TraceOp
	d.SetTrace(func(op TraceOp, stolenNum int64, needTask bool) {
		ops = append(ops, op)
	})
	for i := 0; i < 6; i++ {
		d.Push(item(i))
	}
	for i := 0; i < 4; i++ {
		if _, ok := d.Steal(); ok {
			t.Fatalf("forced attempt %d stole an entry", i)
		}
	}
	if forced != 4 {
		t.Fatalf("hook consulted %d times, want 4", forced)
	}
	if d.Size() != 6 {
		t.Fatalf("entries leaked through forced failures: size %d", d.Size())
	}
	if d.StolenNum() != 4 || !d.NeedTask() {
		t.Fatalf("starvation signal wrong after forced failures: num=%d need=%v",
			d.StolenNum(), d.NeedTask())
	}
	// Hook exhausted: the next steal succeeds and clears the signal.
	e, ok := d.Steal()
	if !ok || e.(*entry).id != 0 {
		t.Fatalf("steal after forced burst: ok=%v e=%v", ok, e)
	}
	if d.StolenNum() != 0 || d.NeedTask() {
		t.Fatal("successful steal did not clear the starvation signal")
	}
	want := []TraceOp{TraceStealFail, TraceStealFail, TraceStealFail, TraceStealFail, TraceStealOK}
	if len(ops) != len(want) {
		t.Fatalf("trace ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("trace ops = %v, want %v", ops, want)
		}
	}
	// nil uninstalls.
	d.SetFailSteal(nil)
	if _, ok := d.Steal(); !ok {
		t.Fatal("steal failed after uninstalling the hook")
	}
}

// The Growable wrapper must delegate the gate to its inner deque.
func TestGrowableSetFailSteal(t *testing.T) {
	g := NewGrowable(8, 20)
	g.Push(item(1))
	g.SetFailSteal(func() bool { return true })
	if _, ok := g.Steal(); ok {
		t.Fatal("forced failure did not reach the growable's inner deque")
	}
	g.SetFailSteal(nil)
	if _, ok := g.Steal(); !ok {
		t.Fatal("steal failed after uninstalling the hook")
	}
}
