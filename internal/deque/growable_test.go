package deque

import (
	"sync"
	"sync/atomic"
	"testing"
)

var _ WorkDeque = (*Deque)(nil)
var _ WorkDeque = (*Growable)(nil)

func TestGrowablePushNeverOverflows(t *testing.T) {
	g := NewGrowable(8, 20)
	for i := 0; i < 10000; i++ {
		if !g.Push(item(i)) {
			t.Fatalf("push %d failed on a growable deque", i)
		}
	}
	if g.Cap() < 10000 {
		t.Fatalf("capacity %d after 10000 pushes", g.Cap())
	}
	for i := 9999; i >= 0; i-- {
		e, ok := g.Pop()
		if !ok || e.(*entry).id != i {
			t.Fatalf("pop %d: got %v,%v", i, e, ok)
		}
	}
}

func TestGrowableKeepsWindowAcrossGrowth(t *testing.T) {
	g := NewGrowable(8, 20)
	// Interleave so the live window straddles a wrap point when growth hits.
	next := 0
	for i := 0; i < 5; i++ {
		g.Push(item(next))
		next++
	}
	for i := 0; i < 3; i++ {
		if _, ok := g.Steal(); !ok {
			t.Fatal("steal failed")
		}
	}
	for i := 0; i < 40; i++ { // forces growth with h=3 offset
		g.Push(item(next))
		next++
	}
	// FIFO via steals must resume exactly at id 3.
	for want := 3; want < next; want++ {
		e, ok := g.Steal()
		if !ok {
			t.Fatalf("steal for id %d failed", want)
		}
		if e.(*entry).id != want {
			t.Fatalf("steal got %d, want %d", e.(*entry).id, want)
		}
	}
}

func TestGrowableSpecialSemantics(t *testing.T) {
	g := NewGrowable(8, 20)
	s := specialItem(0)
	g.Push(s)
	if _, ok := g.Steal(); ok {
		t.Fatal("stole a lone special")
	}
	g.Push(item(1))
	if e, ok := g.Steal(); !ok || e.(*entry).id != 1 {
		t.Fatal("steal_specialtask failed across growable")
	}
	if !g.PopSpecial() {
		t.Fatal("PopSpecial missed the theft")
	}
}

func TestGrowableConcurrentStress(t *testing.T) {
	const items = 30000
	g := NewGrowable(8, 20)
	var consumed sync.Map
	var count atomic.Int64
	record := func(e Entry) {
		if _, dup := consumed.LoadOrStore(e.(*entry).id, true); dup {
			t.Errorf("entry %d consumed twice", e.(*entry).id)
		}
		count.Add(1)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if e, ok := g.Steal(); ok {
					record(e)
				}
				select {
				case <-done:
					for {
						e, ok := g.Steal()
						if !ok {
							return
						}
						record(e)
					}
				default:
				}
			}
		}()
	}
	for i := 0; i < items; i++ {
		g.Push(item(i))
		if i%3 == 0 {
			if e, ok := g.Pop(); ok {
				record(e)
			}
		}
	}
	for {
		e, ok := g.Pop()
		if !ok {
			break
		}
		record(e)
	}
	close(done)
	wg.Wait()
	if count.Load() != items {
		t.Fatalf("consumed %d, want %d", count.Load(), items)
	}
}
