package deque

// Relaxed is the lock-reduced variant of the THE deque, after Castañeda &
// Piña's observation that the owner-path synchronisation cost is not
// fundamental. The thief side is untouched — Steal/StealN delegate to the
// wrapped Deque, keeping the lock-ordered claim protocol, the StealAware
// notification ordering and the starvation FSM exactly as they are — but
// the owner's Push and Pop are fence-light:
//
//   - The owner caches T in a plain field (it is T's only writer), so Push
//     and Pop never load it; the atomic T store remains, because it is the
//     MEMBAR of the protocol — the one publication thieves order against.
//   - The owner tracks a monotone lower bound of H (hCache), refreshed only
//     from at-rest reads (under the owner lock, or its own PopSpecial
//     re-normalisation), never from a racing thief's transient claim. The
//     capacity check and the depth high-water pre-filter run against the
//     bound, so the common Push performs zero atomic loads.
//   - Pop still falls back to the owner lock in the conflict window (H
//     caught up with T) — the one place owner and thief must serialise,
//     because a steal's deposit registration (StealAware.OnStolen) must be
//     ordered before the victim acts on the failed pop.
//
// The owner fast path is therefore two atomic stores per Push and one store
// plus one load per Pop, against the THE deque's four and three. Nothing
// here admits multiplicity: ownership of every entry is still linearised by
// the claim protocol, so the variant targets k = 1 under the
// multiplicity-tolerant checker (trace.CheckMultiplicity) that guards it —
// the checker's k ≥ 2 allowance is headroom for genuinely fence-free
// descendants, not a licence this implementation uses.
//
// The buffer doubles on overflow like Growable (growth happens on the
// owner's Push under the owner lock); Push never reports overflow.
type Relaxed struct {
	d      *Deque
	bottom int64 // owner's cached T; equals d.t between owner operations
	hCache int64 // owner's monotone lower bound of H (at-rest reads only)
}

// NewRelaxed returns a lock-reduced growable deque with the given initial
// capacity and max_stolen_num threshold.
func NewRelaxed(initial, maxStolenNum int) *Relaxed {
	if initial < 8 {
		initial = 8
	}
	return &Relaxed{d: New(initial, maxStolenNum)}
}

// Cap returns the current capacity.
func (r *Relaxed) Cap() int { return r.d.Cap() }

// Size returns the owner-visible entry count.
func (r *Relaxed) Size() int { return r.d.Size() }

// MaxDepth returns the owner-observed high-water mark.
func (r *Relaxed) MaxDepth() int64 { return r.d.maxDepth }

// NeedTask reports the starvation flag.
func (r *Relaxed) NeedTask() bool { return r.d.NeedTask() }

// SetNeedTask overrides the flag.
func (r *Relaxed) SetNeedTask(v bool) { r.d.SetNeedTask(v) }

// StolenNum returns the failed-steal counter.
func (r *Relaxed) StolenNum() int64 { return r.d.StolenNum() }

// SetTrace installs the thief-side transition observer.
func (r *Relaxed) SetTrace(fn TraceFn) { r.d.SetTrace(fn) }

// SetFailSteal installs the fault-injection gate of the steal path.
func (r *Relaxed) SetFailSteal(fn func() bool) { r.d.SetFailSteal(fn) }

// Steal takes from the head on behalf of a thief (THE ordering, unchanged).
func (r *Relaxed) Steal() (Entry, bool) { return r.d.Steal() }

// StealN takes up to len(dst) head entries under one critical section.
func (r *Relaxed) StealN(dst []Entry) int { return r.d.StealN(dst) }

// Push appends e at the tail. Only the owner may call it. The fast path is
// two atomic stores (slot, T) and no atomic loads: capacity and the depth
// high-water mark are checked against the cached H bound, and the bound is
// only refreshed under the owner lock, where no thief holds a transient
// over-claim (a stale claim frozen into the cache would erode the two slots
// of Push slack the claim windows rely on). It never reports overflow: a
// full buffer doubles, as in Growable.
func (r *Relaxed) Push(e Entry) bool {
	d := r.d
	b := r.bottom
	if b-r.hCache >= d.cap-2 {
		d.mu.Lock()
		r.hCache = d.h.Load() // at rest: no thief claim is in flight
		if b-r.hCache >= d.cap-2 {
			r.growLocked()
		}
		d.mu.Unlock()
	}
	var box *entryBox
	if n := len(d.free); n > 0 {
		box = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		box.e = e
	} else {
		box = &entryBox{e: e}
	}
	d.buf[b%d.cap].Store(box)
	r.bottom = b + 1
	d.t.Store(b + 1) // release: publishes the buffer write to thieves
	// Depth high-water: the cached bound over-counts (H only grows), so it
	// is a cheap pre-filter; the fresh reload can at worst read a thief's
	// transient claim and under-count by the claim width, same as Deque.
	if b+1-r.hCache > d.maxDepth {
		if depth := b + 1 - d.h.Load(); depth > d.maxDepth {
			d.maxDepth = depth
		}
	}
	return true
}

// growLocked doubles the buffer, re-homing the live window [H, T). The
// caller holds the owner lock, which excludes thieves; the owner cannot
// race itself.
func (r *Relaxed) growLocked() {
	d := r.d
	oldCap := d.cap
	newCap := oldCap * 2
	newBuf := makeBuf(int(newCap))
	h, t := d.h.Load(), d.t.Load()
	for i := h; i < t; i++ {
		newBuf[i%newCap].Store(d.buf[i%oldCap].Load())
	}
	d.buf = newBuf
	d.cap = newCap
}

// Pop removes and returns the tail entry. Only the owner may call it. The
// fast path is one atomic store (T, the protocol's MEMBAR) and one atomic
// load (H); the conflict window falls back to the owner lock exactly as
// Deque.Pop does, re-normalising to empty on failure.
func (r *Relaxed) Pop() (Entry, bool) {
	d := r.d
	b := r.bottom - 1
	d.t.Store(b) // the MEMBAR: publish the claim before consulting H
	r.bottom = b
	h := d.h.Load()
	if h > b {
		d.t.Store(b + 1)
		d.mu.Lock()
		b = d.t.Load() - 1
		d.t.Store(b)
		r.bottom = b
		h = d.h.Load()
		if h > b {
			d.t.Store(h) // normalise empty
			r.bottom = h
			r.hCache = h // at-rest read: safe to cache
			d.mu.Unlock()
			return nil, false
		}
		r.hCache = h
		d.mu.Unlock()
	}
	box := d.buf[b%d.cap].Load()
	e := box.e
	box.e = nil
	d.free = append(d.free, box)
	return e, true
}

// PopSpecial removes the owner's special marker, reporting child theft (see
// Deque.PopSpecial). Re-normalising H = T moves H downward, so the cached
// bound is re-anchored to keep it a true lower bound.
func (r *Relaxed) PopSpecial() (stolen bool) {
	d := r.d
	d.mu.Lock()
	t := d.t.Load() - 1
	d.t.Store(t)
	r.bottom = t
	if d.h.Load() > t {
		d.h.Store(t) // re-normalise: the marker stays owned by the victim
		r.hCache = t
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()
	return false
}

// Reset empties the deque and clears the starvation signal and high-water
// mark (see Deque.Reset). The grown buffer is kept.
func (r *Relaxed) Reset() {
	r.d.Reset()
	r.bottom = 0
	r.hCache = 0
}
