package deque

// Growable is a THE-protocol deque whose buffer doubles instead of
// overflowing — the remedy the paper's related-work section points at
// (Chase & Lev's dynamic circular deque [6]; Michael et al.'s growable
// deques [15]). The protocol is unchanged: growth happens on the owner's
// Push while holding the owner lock, which excludes thieves (they steal
// under the same lock) and cannot race the owner's own pops (same thread).
//
// AdaptiveTC itself is "less prone to overflow" because it pushes so few
// tasks; Growable exists so the baselines can run workloads whose spawn
// depth exceeds any fixed capacity, and for the ablation bench comparing
// the two (BenchmarkAblationGrowableDeque).
type Growable struct {
	d *Deque
}

// NewGrowable returns a growable deque with the given initial capacity.
func NewGrowable(initial, maxStolenNum int) *Growable {
	if initial < 8 {
		initial = 8
	}
	return &Growable{d: New(initial, maxStolenNum)}
}

// Cap returns the current capacity.
func (g *Growable) Cap() int { return g.d.Cap() }

// Size returns the owner-visible entry count.
func (g *Growable) Size() int { return g.d.Size() }

// MaxDepth returns the owner-observed high-water mark.
func (g *Growable) MaxDepth() int64 { return g.d.maxDepth }

// NeedTask reports the starvation flag.
func (g *Growable) NeedTask() bool { return g.d.NeedTask() }

// SetNeedTask overrides the flag.
func (g *Growable) SetNeedTask(v bool) { g.d.SetNeedTask(v) }

// StolenNum returns the failed-steal counter.
func (g *Growable) StolenNum() int64 { return g.d.StolenNum() }

// SetTrace installs the thief-side transition observer.
func (g *Growable) SetTrace(fn TraceFn) { g.d.SetTrace(fn) }

// SetFailSteal installs the fault-injection gate of the steal path.
func (g *Growable) SetFailSteal(fn func() bool) { g.d.SetFailSteal(fn) }

// Push appends e, doubling the buffer when full. It never reports
// overflow.
func (g *Growable) Push(e Entry) bool {
	if g.d.Push(e) {
		return true
	}
	g.grow()
	if !g.d.Push(e) {
		panic("deque: push failed immediately after growth")
	}
	return true
}

// grow doubles the buffer under the owner lock, re-homing the live window
// [H, T) so every logical index keeps addressing its entry.
func (g *Growable) grow() {
	d := g.d
	d.mu.Lock()
	oldCap := d.cap
	newCap := oldCap * 2
	newBuf := makeBuf(int(newCap))
	h, t := d.h.Load(), d.t.Load()
	for i := h; i < t; i++ {
		newBuf[i%newCap].Store(d.buf[i%oldCap].Load())
	}
	d.buf = newBuf
	d.cap = newCap
	d.mu.Unlock()
}

// Reset empties the deque and clears the starvation signal and high-water
// mark (see Deque.Reset). The grown buffer is kept.
func (g *Growable) Reset() { g.d.Reset() }

// Pop removes the tail entry (owner only).
func (g *Growable) Pop() (Entry, bool) { return g.d.Pop() }

// PopSpecial removes the owner's special marker, reporting child theft.
func (g *Growable) PopSpecial() bool { return g.d.PopSpecial() }

// Steal takes from the head on behalf of a thief.
func (g *Growable) Steal() (Entry, bool) { return g.d.Steal() }

// StealN takes up to len(dst) head entries under one critical section.
func (g *Growable) StealN(dst []Entry) int { return g.d.StealN(dst) }
