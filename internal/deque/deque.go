// Package deque implements the work-stealing double-ended queue used by the
// Cilk, cutoff and AdaptiveTC engines, following the simplified THE protocol
// of the paper's Figure 3: the owner pushes and pops at the tail T without a
// lock on the fast path, thieves take from the head H under the owner's
// lock, and the owner falls back to the lock when H and T collide.
//
// The deque also carries the paper's starvation signal: a thief that fails
// to steal increments the victim's stolen_num, and once it passes
// max_stolen_num the victim's need_task flag is raised; a successful steal
// clears both (Figure 3(d)/(e)).
//
// Special tasks (the AdaptiveTC transition markers) can never be stolen.
// When the head of a deque is a special task a thief executes
// steal_specialtask, which skips over the marker and takes the special
// task's child instead (H += 2); the owner's PopSpecial detects the theft by
// finding H beyond T and re-normalises H = T, keeping the never-stealable
// marker logically at the head (Figure 3(b)/(e)).
package deque

import (
	"sync"
	"sync/atomic"
)

// Entry is an element of a deque. Engines store task frames; the deque only
// needs to know whether an entry is a special task.
type Entry interface {
	// Special reports whether this entry is an AdaptiveTC special task.
	Special() bool
}

// WorkDeque is the owner/thief operation set the scheduling engines need.
// The fixed-size Deque implements it directly; Growable removes the
// overflow limit.
type WorkDeque interface {
	// Push appends at the tail (owner only); false reports overflow.
	Push(Entry) bool
	// Pop removes the tail entry (owner only).
	Pop() (Entry, bool)
	// PopSpecial removes the owner's special marker, reporting child theft.
	PopSpecial() bool
	// Steal takes from the head on behalf of a thief.
	Steal() (Entry, bool)
	// StealN takes up to len(dst) entries from the head under one critical
	// section on behalf of a thief, returning how many were taken.
	StealN(dst []Entry) int
	// NeedTask reports the paper's need_task starvation flag.
	NeedTask() bool
	// SetNeedTask overrides the flag (tests, ablations).
	SetNeedTask(bool)
	// StolenNum returns the failed-steal counter.
	StolenNum() int64
	// SetTrace installs fn as the thief-side transition observer (nil
	// disables tracing; the default).
	SetTrace(fn TraceFn)
	// SetFailSteal installs fn as the fault-injection gate of the steal
	// path (nil disables; the default). See Deque.SetFailSteal.
	SetFailSteal(fn func() bool)
	// Reset empties the deque and clears the starvation signal and the
	// high-water mark, readying it for the next job of a resident pool.
	// The caller must guarantee quiescence: no concurrent owner or thief.
	Reset()
	// MaxDepth returns the owner-observed size high-water mark.
	MaxDepth() int64
	// Cap returns the (current) capacity.
	Cap() int
	// Size returns the owner-visible entry count.
	Size() int
}

// TraceOp labels a thief-side deque transition for the optional trace
// hook.
type TraceOp uint8

const (
	// TraceStealOK: a plain head steal succeeded; the failed-steal counter
	// and the need_task flag were cleared (Figure 3(d)).
	TraceStealOK TraceOp = iota
	// TraceStealSpecial: the head was a special marker, so the thief
	// skipped over it and took the marker's child instead (Figure 3(e)).
	TraceStealSpecial
	// TraceStealFail: a steal attempt failed; the counter was bumped and
	// need_task possibly raised.
	TraceStealFail
)

// String names the transition for reports.
func (op TraceOp) String() string {
	switch op {
	case TraceStealOK:
		return "steal-ok"
	case TraceStealSpecial:
		return "steal-special"
	case TraceStealFail:
		return "steal-fail"
	}
	return "steal-?"
}

// TraceFn observes thief-side transitions of the steal/need_task FSM. It is
// called while the thief holds the owner lock, so for one deque the calls
// are totally ordered — the order the FSM actually serialised its
// transitions in. stolenNum and needTask are the post-transition counter
// and flag. The function must be fast and must not call back into the
// deque.
type TraceFn func(op TraceOp, stolenNum int64, needTask bool)

// StealAware entries are notified of a successful steal while the thief
// still holds the victim's lock. The work-stealing runtime uses this to
// register the deposit the old executor will make after its failed pop:
// the pop's failure path takes the same lock, so the notification is
// ordered before the deposit.
type StealAware interface {
	OnStolen()
}

// Deque is a fixed-capacity THE-protocol work-stealing deque. The zero
// value is not usable; call New.
type Deque struct {
	mu  sync.Mutex // the paper's worker.L
	h   atomic.Int64
	t   atomic.Int64
	buf []atomic.Pointer[entryBox]
	cap int64

	stolenNum    atomic.Int64
	needTask     atomic.Bool
	maxStolenNum int64

	// maxDepth is the owner-observed high-water mark of T-H.
	maxDepth int64

	// free recycles entry boxes: Push takes one, a successful Pop returns
	// the popped slot's box. A popped slot is exclusively the owner's (a
	// thief that claimed it would have made the pop fail through the lock),
	// so reuse is as safe as the read of box.e always was, and the owner's
	// Push/Pop fast path allocates nothing in steady state. Boxes consumed
	// by thieves leave through the steal and are never recycled, so the
	// list's length is bounded by the deque's own high-water mark.
	free []*entryBox

	// trace, when non-nil, observes thief-side FSM transitions under the
	// owner lock. The owner's Push/Pop fast path never consults it.
	trace TraceFn

	// failSteal, when non-nil, is consulted at the top of every steal
	// attempt under the owner lock; returning true forces the attempt to
	// fail through the normal stolen_num/need_task path. The owner's
	// Push/Pop fast path never consults it.
	failSteal func() bool
}

type entryBox struct{ e Entry }

// New returns a deque with the given capacity and max_stolen_num threshold.
func New(capacity, maxStolenNum int) *Deque {
	if capacity <= 0 {
		capacity = 8192
	}
	if maxStolenNum <= 0 {
		maxStolenNum = 20
	}
	return &Deque{
		buf:          makeBuf(capacity),
		cap:          int64(capacity),
		maxStolenNum: int64(maxStolenNum),
	}
}

func makeBuf(n int) []atomic.Pointer[entryBox] {
	return make([]atomic.Pointer[entryBox], n)
}

// Cap returns the deque capacity.
func (d *Deque) Cap() int { return int(d.cap) }

// Size returns the current number of entries as seen by the owner. It is a
// snapshot; concurrent steals may shrink it immediately.
func (d *Deque) Size() int {
	n := d.t.Load() - d.h.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// MaxDepth returns the owner-observed high-water mark of the deque size.
func (d *Deque) MaxDepth() int64 { return d.maxDepth }

// NeedTask reports whether starving thieves have raised the need_task flag.
func (d *Deque) NeedTask() bool { return d.needTask.Load() }

// SetNeedTask overrides the flag (used by tests and ablations).
func (d *Deque) SetNeedTask(v bool) { d.needTask.Store(v) }

// StolenNum returns the current failed-steal counter.
func (d *Deque) StolenNum() int64 { return d.stolenNum.Load() }

// SetTrace installs fn as the thief-side transition observer (nil
// disables). Install before workers start; the steal path reads it without
// synchronisation beyond the owner lock.
func (d *Deque) SetTrace(fn TraceFn) { d.trace = fn }

// SetFailSteal installs fn as the fault-injection gate of the steal path
// (nil disables; the default). When fn returns true the attempt fails
// before any claim is published, going through the same
// stolen_num/need_task bookkeeping as an organic failure — the injected
// contention is indistinguishable from losing a real race, which is what
// keeps the starvation-signalling FSM and its trace invariants honest
// under chaos. fn runs under the owner lock, so its state needs no other
// synchronisation. Install before workers start (or between jobs of a
// resident pool).
func (d *Deque) SetFailSteal(fn func() bool) { d.failSteal = fn }

// Push appends e at the tail. Only the owner may call it. It reports false
// on overflow (the deque is a fixed-size array, as in Cilk; the paper calls
// out overflow-proneness explicitly, so we surface it rather than grow).
//
// Two slots of slack are reserved: a thief publishes its claim (H move)
// before reading the claimed slot, and steal_specialtask claims two slots
// at once, so without the slack a burst of pushes could lap the ring and
// overwrite a claimed-but-unread slot.
func (d *Deque) Push(e Entry) bool {
	t := d.t.Load()
	h := d.h.Load()
	if t-h >= d.cap-2 {
		return false
	}
	if testMidPush != nil {
		testMidPush(d)
	}
	var box *entryBox
	if n := len(d.free); n > 0 {
		box = d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		box.e = e
	} else {
		box = &entryBox{e: e}
	}
	d.buf[t%d.cap].Store(box)
	d.t.Store(t + 1) // release: publishes the buffer write to thieves
	// maxDepth: the h loaded at entry is stale by the time the entry is
	// published — thieves may have advanced H in between, so t+1-h would
	// over-count the high-water mark. The stale depth is an upper bound on
	// the fresh one (H only grows), so it serves as a cheap pre-filter and
	// H is reloaded only when the mark could actually rise; the fresh value
	// can at worst under-count by steals racing the reload, which keeps the
	// recorded mark within what the owner ever truly co-held.
	if t+1-h > d.maxDepth {
		if depth := t + 1 - d.h.Load(); depth > d.maxDepth {
			d.maxDepth = depth
		}
	}
	return true
}

// testMidPush, when non-nil, is called by Push between its entry loads of
// H/T and the buffer store. Tests use it to interleave a concurrent steal
// deterministically inside the push window; it must stay nil outside tests
// (the hot path pays one predicted branch for it).
var testMidPush func(*Deque)

// Pop removes and returns the tail entry. Only the owner may call it.
// It returns (nil, false) when the deque is empty or the tail entry has
// been stolen; in that case the deque has been re-normalised to empty.
// This is Figure 3(a) with the failure path additionally restoring T = H so
// that subsequent pushes are well defined.
func (d *Deque) Pop() (Entry, bool) {
	t := d.t.Load() - 1
	d.t.Store(t) // the MEMBAR of the figure: sequentially consistent store
	h := d.h.Load()
	if h > t {
		d.t.Store(t + 1)
		d.mu.Lock()
		t = d.t.Load() - 1
		d.t.Store(t)
		h = d.h.Load()
		if h > t {
			d.t.Store(h) // normalise empty
			d.mu.Unlock()
			return nil, false
		}
		d.mu.Unlock()
	}
	box := d.buf[t%d.cap].Load()
	e := box.e
	box.e = nil
	d.free = append(d.free, box)
	return e, true
}

// PopSpecial removes the special task the owner pushed at the tail and
// reports whether any of the special task's children were stolen in the
// meantime (Figure 3(b)). It returns false in the common case — the marker
// was still the only claim at the tail, so no thief skipped over it — and
// true when a thief's steal_specialtask carried H past the marker; in that
// case H is re-normalised to T so the never-stealable marker stays
// logically owned by the victim. The special entry is removed either way;
// there is no separate "found" result, because the owner only calls
// PopSpecial while its marker is the tail entry.
func (d *Deque) PopSpecial() (stolen bool) {
	d.mu.Lock()
	t := d.t.Load() - 1
	d.t.Store(t)
	if d.h.Load() > t {
		d.h.Store(t) // re-normalise: the marker stays owned by the victim
		d.mu.Unlock()
		return true
	}
	d.mu.Unlock()
	return false
}

// Steal attempts to take the head entry on behalf of a thief, implementing
// both Figure 3(d) and (e): if the head is a special task its child is
// taken instead (or the attempt fails if the special task has no child in
// the deque). On failure the victim's stolen_num is incremented and
// need_task may be raised; on success both are cleared.
//
// The claim must be published (H moved) *before* T is consulted and before
// the entry is read — the Dekker-style ordering against the owner's Pop is
// what makes the protocol safe. Entries are therefore read only from slots
// the thief has already claimed.
func (d *Deque) Steal() (Entry, bool) {
	d.mu.Lock()
	if d.failSteal != nil && d.failSteal() {
		d.failLocked()
		d.mu.Unlock()
		return nil, false
	}
	h := d.h.Load()
	// Claim the head slot: H++, MEMBAR, then check against T.
	d.h.Store(h + 1)
	t := d.t.Load()
	if h+1 > t {
		d.h.Store(h)
		d.failLocked()
		d.mu.Unlock()
		return nil, false
	}
	box := d.buf[h%d.cap].Load()
	if !box.e.Special() {
		if sa, ok := box.e.(StealAware); ok {
			sa.OnStolen()
		}
		d.stolenNum.Store(0)
		d.needTask.Store(false)
		if d.trace != nil {
			d.trace(TraceStealOK, 0, false)
		}
		d.mu.Unlock()
		return box.e, true
	}
	// steal_specialtask: the marker can never be stolen. Re-claim with
	// H += 2 and take the special task's child at h+1. The marker slot is
	// protected while we hold the lock: the owner can only remove it via
	// PopSpecial (which locks) or a tail Pop that collides with our claim
	// (which falls back to the lock), so re-reading it was safe.
	d.h.Store(h + 2)
	t = d.t.Load()
	if h+2 > t {
		d.h.Store(h)
		d.failLocked()
		d.mu.Unlock()
		return nil, false
	}
	child := d.buf[(h+1)%d.cap].Load()
	if sa, ok := child.e.(StealAware); ok {
		sa.OnStolen()
	}
	d.stolenNum.Store(0)
	d.needTask.Store(false)
	if d.trace != nil {
		d.trace(TraceStealSpecial, 0, false)
	}
	d.mu.Unlock()
	return child.e, true
}

// StealN takes up to len(dst) entries from the head on behalf of a thief,
// all under one acquisition of the owner lock — the batch transfer behind
// the steal-half policy. Slots are still claimed one H++ at a time (each
// claim published before its slot is read, preserving the Dekker ordering
// against the owner's Pop and never overshooting H beyond the two slots of
// Push slack), but the lock, the fault gate and the starvation bookkeeping
// are paid once per batch instead of once per entry.
//
// A batch never crosses a special marker: it stops short of one, and when
// the marker is already at the head the attempt degrades to the single
// steal_specialtask (the marker's child is taken, H += 2). Per-entry
// effects are preserved exactly — each taken entry gets its StealAware
// notification and one TraceStealOK event, so the trace invariants cannot
// tell a batch from a burst of single steals by the same thief.
//
// The return is the number of entries taken, head-most first in dst. Zero
// means the attempt failed; the failure went through the same
// stolen_num/need_task path as a failed Steal, exactly once.
func (d *Deque) StealN(dst []Entry) int {
	if len(dst) == 0 {
		return 0
	}
	d.mu.Lock()
	if d.failSteal != nil && d.failSteal() {
		d.failLocked()
		d.mu.Unlock()
		return 0
	}
	h := d.h.Load()
	n := 0
	for n < len(dst) {
		// Claim one slot: H++, MEMBAR, then check against T (as in Steal).
		d.h.Store(h + 1)
		t := d.t.Load()
		if h+1 > t {
			d.h.Store(h) // retreat: nothing (more) to take
			break
		}
		box := d.buf[h%d.cap].Load()
		if box.e.Special() {
			if n > 0 {
				d.h.Store(h) // the batch stops short of a special marker
				break
			}
			// The head is a special marker: degrade to steal_specialtask
			// and take the marker's child (H += 2), exactly like Steal.
			d.h.Store(h + 2)
			t = d.t.Load()
			if h+2 > t {
				d.h.Store(h)
				d.failLocked()
				d.mu.Unlock()
				return 0
			}
			child := d.buf[(h+1)%d.cap].Load()
			if sa, ok := child.e.(StealAware); ok {
				sa.OnStolen()
			}
			dst[0] = child.e
			d.stolenNum.Store(0)
			d.needTask.Store(false)
			if d.trace != nil {
				d.trace(TraceStealSpecial, 0, false)
			}
			d.mu.Unlock()
			return 1
		}
		dst[n] = box.e
		n++
		h++
	}
	if n == 0 {
		d.failLocked()
		d.mu.Unlock()
		return 0
	}
	for i := 0; i < n; i++ {
		if sa, ok := dst[i].(StealAware); ok {
			sa.OnStolen()
		}
		if d.trace != nil {
			d.trace(TraceStealOK, 0, false)
		}
	}
	d.stolenNum.Store(0)
	d.needTask.Store(false)
	d.mu.Unlock()
	return n
}

// Reset discards whatever a finished (or aborted) job left behind — entries
// a cancelled run never consumed, a raised need_task flag, the failed-steal
// counter, the depth high-water mark — so the next job of a resident pool
// starts from the same state a fresh deque would. It must only be called in
// quiescence (between jobs, with no worker running); the lock is taken for
// the memory ordering, not for mutual exclusion.
func (d *Deque) Reset() {
	d.mu.Lock()
	h, t := d.h.Load(), d.t.Load()
	for i := h; i < t; i++ {
		if box := d.buf[i%d.cap].Load(); box != nil {
			box.e = nil // drop the abandoned entry for the GC
		}
	}
	d.h.Store(0)
	d.t.Store(0)
	d.stolenNum.Store(0)
	d.needTask.Store(false)
	d.maxDepth = 0
	d.mu.Unlock()
}

func (d *Deque) failLocked() {
	n := d.stolenNum.Add(1)
	if n > d.maxStolenNum {
		d.needTask.Store(true)
	}
	if d.trace != nil {
		d.trace(TraceStealFail, n, d.needTask.Load())
	}
}
