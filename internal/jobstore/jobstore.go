// Package jobstore is the persistent, replayable job journal behind
// adaptivetc-serve: an append-only log of job submissions, state
// transitions, results, and DSL program registrations, durable enough
// that a SIGKILL'd server restarted on the same directory serves every
// completed job's result, re-queues jobs that never started, and marks
// jobs that were mid-run as aborted-by-restart.
//
// # On-disk format
//
// The store is a directory of numbered segment files (journal-000001.log,
// …). Each record is framed as
//
//	u32 length (LE) | u32 CRC32-C of payload (LE) | payload (JSON Record)
//
// Appends go to the highest-numbered segment; when it passes
// Config.SegmentBytes a new segment is started. Recovery reads segments
// in order and verifies every frame. A bad frame in the *last* segment is
// a torn tail from the crash — the segment is truncated there and the
// store appends after the good prefix. A bad frame in an earlier segment
// is corruption; the rest of that segment is skipped (counted in
// Recovery.Corrupt) and reading continues with the next.
//
// A zero length field terminates scanning of a segment (it is what a
// pre-allocated or zero-filled tail reads as), and a length beyond
// MaxRecordBytes is treated as corruption, never allocated.
//
// # Durability
//
// Append queues a record for the background syncer (fsync within
// Config.FsyncInterval). AppendSync is group commit: the record is
// written under the lock, then the caller blocks until a batch fsync
// covers it — concurrent committers share one fsync. The serving tier
// journals submissions and results with AppendSync (acknowledge ⇒
// durable) and start transitions with Append (re-running a side-effect-
// free program after a crash is safe; losing an acknowledged result is
// not).
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record types journaled by the serving tier.
const (
	// TProgram registers a DSL program: Hash, Name, Source (canonical).
	TProgram = "program"
	// TProgDel deletes a DSL program: Hash.
	TProgDel = "progdel"
	// TSubmit records an admitted job: ID, Req (the submitted request).
	TSubmit = "submit"
	// TStart records a job entering execution: ID.
	TStart = "start"
	// TDone records a terminal job: ID, State, Value/Err, MakespanNS.
	TDone = "done"
)

// MaxRecordBytes bounds a single frame; a length field past this is
// corruption, not an allocation request.
const MaxRecordBytes = 16 << 20

// Record is one journal entry. Fields are a union over the record types;
// unused ones stay at their zero value and are omitted from the JSON.
type Record struct {
	T string `json:"t"`

	// Job records.
	ID         string          `json:"id,omitempty"`
	Req        json.RawMessage `json:"req,omitempty"`
	State      string          `json:"state,omitempty"`
	Value      int64           `json:"value,omitempty"`
	Err        string          `json:"err,omitempty"`
	MakespanNS int64           `json:"makespan_ns,omitempty"`

	// Program records.
	Hash   string `json:"hash,omitempty"`
	Name   string `json:"name,omitempty"`
	Source string `json:"source,omitempty"`
}

// JobState is the per-job fold of the journal produced by recovery.
type JobState struct {
	ID      string
	Req     json.RawMessage
	Started bool
	// Done is set when a TDone record was recovered; State/Value/Err/
	// MakespanNS then carry the terminal outcome.
	Done       bool
	State      string
	Value      int64
	Err        string
	MakespanNS int64
}

// Recovery is what Open reconstructed from the directory.
type Recovery struct {
	// Jobs holds the folded per-job state, in first-submission order.
	Jobs []*JobState
	// Programs maps hash → the last registered (and not deleted) program.
	Programs []ProgramRec
	// Records is the total number of valid records read.
	Records int
	// Corrupt counts bad frames encountered in non-tail positions.
	Corrupt int
	// TruncatedTail reports whether the last segment had a torn tail that
	// was cut back to the last valid frame.
	TruncatedTail bool
}

// ProgramRec is a recovered DSL program registration.
type ProgramRec struct {
	Hash, Name, Source string
}

// Config tunes the store. Zero values take the defaults.
type Config struct {
	// SegmentBytes caps a segment file before rotation; default 4 MiB.
	SegmentBytes int64
	// FsyncInterval bounds how long an Append can sit unsynced; default
	// 10ms. AppendSync ignores it (the batch fsync runs immediately).
	FsyncInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 10 * time.Millisecond
	}
	return c
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is an open journal.
type Store struct {
	cfg Config
	dir string

	mu      sync.Mutex
	f       *os.File
	seg     int   // current segment number
	segSize int64 // bytes written to the current segment
	dirty   bool  // unsynced writes pending
	waiters []chan error
	closed  bool

	syncReq chan struct{}
	done    chan struct{}

	fsyncs  atomic.Int64
	records atomic.Int64
}

func segName(n int) string { return fmt.Sprintf("journal-%06d.log", n) }

// segNum parses a segment file name; ok is false for foreign files.
func segNum(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "journal-%06d.log", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the journal in dir, replays it, repairs
// a torn tail, and returns the store positioned for appending plus the
// recovered state.
func Open(dir string, cfg Config) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovery{}
	jobs := map[string]*JobState{}
	progs := map[string]ProgramRec{}
	var progOrder []string

	for i, n := range segs {
		last := i == len(segs)-1
		path := filepath.Join(dir, segName(n))
		goodEnd, truncated, cerr := scanSegment(path, func(r *Record) {
			rec.Records++
			foldRecord(r, jobs, &rec.Jobs, progs, &progOrder)
		})
		if cerr != nil {
			return nil, nil, fmt.Errorf("jobstore: scan %s: %w", path, cerr)
		}
		if truncated {
			if last {
				// Torn tail from the crash: cut the segment back to the
				// last whole frame so appends resume cleanly.
				if err := os.Truncate(path, goodEnd); err != nil {
					return nil, nil, fmt.Errorf("jobstore: truncate torn tail of %s: %w", path, err)
				}
				rec.TruncatedTail = true
			} else {
				rec.Corrupt++
			}
		}
	}
	for _, h := range progOrder {
		if p, ok := progs[h]; ok {
			rec.Programs = append(rec.Programs, p)
		}
	}

	s := &Store{
		cfg:     cfg.withDefaults(),
		dir:     dir,
		syncReq: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	s.records.Store(int64(rec.Records))
	seg := 1
	if len(segs) > 0 {
		seg = segs[len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	s.f, s.seg, s.segSize = f, seg, st.Size()
	go s.syncer()
	return s, rec, nil
}

func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range ents {
		if n, ok := segNum(e.Name()); ok && !e.IsDir() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// foldRecord applies one journal record to the recovery state.
func foldRecord(r *Record, jobs map[string]*JobState, order *[]*JobState, progs map[string]ProgramRec, progOrder *[]string) {
	switch r.T {
	case TProgram:
		if _, seen := progs[r.Hash]; !seen {
			*progOrder = append(*progOrder, r.Hash)
		}
		progs[r.Hash] = ProgramRec{Hash: r.Hash, Name: r.Name, Source: r.Source}
	case TProgDel:
		delete(progs, r.Hash)
	case TSubmit:
		if _, seen := jobs[r.ID]; seen {
			return // replayed duplicate; first submission wins
		}
		j := &JobState{ID: r.ID, Req: r.Req}
		jobs[r.ID] = j
		*order = append(*order, j)
	case TStart:
		if j, ok := jobs[r.ID]; ok {
			j.Started = true
		}
	case TDone:
		if j, ok := jobs[r.ID]; ok {
			j.Done = true
			j.State, j.Value, j.Err, j.MakespanNS = r.State, r.Value, r.Err, r.MakespanNS
		}
	}
}

// scanSegment reads frames from path, calling fn for each valid record.
// It returns the byte offset just past the last valid frame and whether
// the segment ends in a bad frame (torn or corrupt).
func scanSegment(path string, fn func(*Record)) (goodEnd int64, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()

	var hdr [8]byte
	var off int64
	for {
		_, rerr := io.ReadFull(f, hdr[:])
		if rerr == io.EOF {
			return off, false, nil
		}
		if rerr != nil { // partial header: torn tail
			return off, true, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordBytes {
			// Zero-filled or nonsense length: stop here.
			return off, true, nil
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return off, true, nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return off, true, nil
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			// CRC-valid but not JSON: treat as corruption, stop here.
			return off, true, nil
		}
		off += 8 + int64(length)
		fn(&rec)
	}
}

// Replay streams every valid record in dir (oldest first) to fn without
// opening the store for writing. Bad frames end the affected segment's
// scan, mirroring recovery.
func Replay(dir string, fn func(*Record)) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, n := range segs {
		if _, _, err := scanSegment(filepath.Join(dir, segName(n)), fn); err != nil {
			return err
		}
	}
	return nil
}

// appendLocked frames and writes r, rotating segments as needed.
func (s *Store) appendLocked(r *Record) error {
	if s.closed {
		return errors.New("jobstore: store closed")
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("jobstore: record of %d bytes exceeds the %d-byte frame limit", len(payload), MaxRecordBytes)
	}
	if s.segSize >= s.cfg.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.f.Write(payload); err != nil {
		return err
	}
	s.segSize += 8 + int64(len(payload))
	s.dirty = true
	s.records.Add(1)
	return nil
}

// rotateLocked syncs and closes the current segment and starts the next.
func (s *Store) rotateLocked() error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	if err := s.f.Close(); err != nil {
		return err
	}
	s.seg++
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.f, s.segSize, s.dirty = f, 0, false
	return nil
}

// Append journals r asynchronously: it is on disk after the next batch
// fsync (within Config.FsyncInterval).
func (s *Store) Append(r *Record) error {
	s.mu.Lock()
	err := s.appendLocked(r)
	s.mu.Unlock()
	return err
}

// AppendSync journals r and blocks until an fsync covers it. Concurrent
// callers are group-committed: one fsync releases the whole batch.
func (s *Store) AppendSync(r *Record) error {
	ch := make(chan error, 1)
	s.mu.Lock()
	if err := s.appendLocked(r); err != nil {
		s.mu.Unlock()
		return err
	}
	s.waiters = append(s.waiters, ch)
	s.mu.Unlock()
	select {
	case s.syncReq <- struct{}{}:
	default: // a sync is already pending; it will cover this write
	}
	return <-ch
}

// syncer is the background group-commit loop.
func (s *Store) syncer() {
	tick := time.NewTicker(s.cfg.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.syncReq:
		case <-tick.C:
		}
		s.syncBatch()
	}
}

// syncBatch fsyncs pending writes and releases the waiters they cover.
// The fsync runs under the append lock: writers arriving during the sync
// queue on the mutex and land in the next batch, so each fsync still
// covers every record written since the last one (group commit).
func (s *Store) syncBatch() {
	s.mu.Lock()
	if s.closed || (!s.dirty && len(s.waiters) == 0) {
		s.mu.Unlock()
		return
	}
	waiters := s.waiters
	s.waiters = nil
	s.dirty = false
	err := s.f.Sync()
	if err == nil {
		s.fsyncs.Add(1)
	}
	s.mu.Unlock()

	for _, ch := range waiters {
		ch <- err
	}
}

// Close syncs and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	waiters := s.waiters
	s.waiters = nil
	err := s.f.Sync()
	if err == nil {
		s.fsyncs.Add(1)
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.mu.Unlock()
	close(s.done)
	for _, ch := range waiters {
		ch <- err
	}
	return err
}

// Fsyncs returns the number of fsync calls issued.
func (s *Store) Fsyncs() int64 { return s.fsyncs.Load() }

// Records returns the number of records appended plus recovered.
func (s *Store) Records() int64 { return s.records.Load() }
