package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func submitRec(id string) *Record {
	return &Record{T: TSubmit, ID: id, Req: json.RawMessage(fmt.Sprintf(`{"program":"fib","n":%d}`, len(id)))}
}

// writeJournal opens a store in dir, appends recs, and closes it cleanly.
func writeJournal(t *testing.T, dir string, cfg Config, recs []*Record) {
	t.Helper()
	s, _, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRoundTrip: submit/start/done folds into the expected job states
// across a close/reopen, and programs survive (minus deletions).
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, Config{}, []*Record{
		{T: TProgram, Hash: "h1", Name: "p1", Source: "src1"},
		{T: TProgram, Hash: "h2", Name: "p2", Source: "src2"},
		{T: TProgDel, Hash: "h2"},
		submitRec("j1"),
		{T: TStart, ID: "j1"},
		{T: TDone, ID: "j1", State: "done", Value: 42, MakespanNS: 1000},
		submitRec("j2"),
		{T: TStart, ID: "j2"},
		submitRec("j3"),
	})

	s, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if rec.Records != 9 || rec.Corrupt != 0 || rec.TruncatedTail {
		t.Fatalf("recovery stats: %+v", rec)
	}
	if len(rec.Programs) != 1 || rec.Programs[0].Hash != "h1" || rec.Programs[0].Source != "src1" {
		t.Fatalf("programs: %+v", rec.Programs)
	}
	if len(rec.Jobs) != 3 {
		t.Fatalf("jobs: %+v", rec.Jobs)
	}
	j1, j2, j3 := rec.Jobs[0], rec.Jobs[1], rec.Jobs[2]
	if !j1.Done || j1.State != "done" || j1.Value != 42 || j1.MakespanNS != 1000 {
		t.Fatalf("j1 not terminal: %+v", j1)
	}
	if j2.Done || !j2.Started {
		t.Fatalf("j2 should be started-not-done: %+v", j2)
	}
	if j3.Done || j3.Started {
		t.Fatalf("j3 should be submitted-only: %+v", j3)
	}
	if string(j3.Req) == "" {
		t.Fatal("j3 request payload lost")
	}
}

// TestSegmentRotation: appends past the segment cap rotate files, and
// recovery reads across all of them.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	var recs []*Record
	for i := 0; i < 50; i++ {
		recs = append(recs, submitRec(fmt.Sprintf("j%03d", i)))
	}
	writeJournal(t, dir, Config{SegmentBytes: 256}, recs)

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("expected ≥3 segments, got %v (err %v)", segs, err)
	}
	_, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(rec.Jobs) != 50 || rec.Corrupt != 0 {
		t.Fatalf("recovered %d jobs, corrupt=%d", len(rec.Jobs), rec.Corrupt)
	}
}

// TestAppendSyncDurability: AppendSync returns only after an fsync, and
// concurrent committers share batches (fsyncs ≪ commits).
func TestAppendSyncDurability(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Config{FsyncInterval: time.Hour}) // only explicit syncs
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const commits = 64
	var wg sync.WaitGroup
	for i := 0; i < commits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.AppendSync(submitRec(fmt.Sprintf("j%02d", i))); err != nil {
				t.Errorf("AppendSync: %v", err)
			}
		}(i)
	}
	wg.Wait()
	n := s.Fsyncs()
	if n < 1 || n > commits {
		t.Fatalf("fsyncs = %d for %d commits", n, commits)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec, err := Open(dir, Config{})
	if err != nil || len(rec.Jobs) != commits {
		t.Fatalf("recovered %d jobs, err %v", len(rec.Jobs), err)
	}
}

// TestTornTailTruncated: a partial frame at the end of the last segment
// is cut off; the good prefix survives and the store appends after it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, Config{}, []*Record{submitRec("j1"), submitRec("j2")})
	path := filepath.Join(dir, segName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Append half a frame, as a crash mid-write would.
	if err := os.WriteFile(path, append(b, 0x10, 0, 0, 0, 0xde, 0xad), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	s, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !rec.TruncatedTail || len(rec.Jobs) != 2 {
		t.Fatalf("recovery: %+v", rec)
	}
	if err := s.Append(submitRec("j3")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	s.Close()
	_, rec2, err := Open(dir, Config{})
	if err != nil || len(rec2.Jobs) != 3 || rec2.TruncatedTail {
		t.Fatalf("after repair+append: %+v err %v", rec2, err)
	}
}

// TestZeroFilledTail: a run of zero bytes after the good prefix (a
// pre-allocated tail) stops the scan without allocating or looping.
func TestZeroFilledTail(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, Config{}, []*Record{submitRec("j1")})
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 4096))
	f.Close()
	_, rec, err := Open(dir, Config{})
	if err != nil || len(rec.Jobs) != 1 || !rec.TruncatedTail {
		t.Fatalf("zero tail recovery: %+v err %v", rec, err)
	}
}

// TestCorruptMiddleSegment: a flipped byte in a non-last segment loses
// the rest of that segment only; later segments still recover, and the
// damage is counted.
func TestCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	var recs []*Record
	for i := 0; i < 30; i++ {
		recs = append(recs, submitRec(fmt.Sprintf("j%03d", i)))
	}
	recs = append(recs, &Record{T: TDone, ID: "j000", State: "done", Value: 7})
	writeJournal(t, dir, Config{SegmentBytes: 256}, recs)
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %v", segs)
	}
	// Flip one payload byte in the middle of the first segment.
	path := filepath.Join(dir, segName(segs[0]))
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	os.WriteFile(path, b, 0o644)

	_, rec, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", rec.Corrupt)
	}
	if len(rec.Jobs) >= 30 || len(rec.Jobs) == 0 {
		t.Fatalf("recovered %d jobs, expected a partial set", len(rec.Jobs))
	}
	// The terminal record for j000 lives in the last segment and must
	// still have been applied if j000's submit survived.
	for _, j := range rec.Jobs {
		if j.ID == "j000" && !j.Done {
			t.Fatal("terminal record in a later segment was not applied")
		}
	}
}

// TestReplay streams the same records recovery sees.
func TestReplay(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, Config{}, []*Record{
		submitRec("j1"), {T: TDone, ID: "j1", State: "done", Value: 9},
	})
	var types []string
	if err := Replay(dir, func(r *Record) { types = append(types, r.T) }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(types) != 2 || types[0] != TSubmit || types[1] != TDone {
		t.Fatalf("replayed %v", types)
	}
}

// FuzzJobstoreRecovery is the crash-recovery fuzz: build a journal whose
// jobs are in known states, mutilate it at a fuzz-chosen byte offset
// (truncate, or flip a byte), and recover. Invariants, regardless of
// where the damage lands:
//
//   - recovery never errors and never loses a record that a previous
//     *synced* prefix contained… which we approximate conservatively:
//     recovered jobs are always a prefix-consistent subset (a job's
//     start/done is only recovered if its submit is);
//   - a recovered terminal job carries exactly the journaled outcome —
//     results are never invented or double-applied;
//   - recovery classifies every recovered job into exactly one of
//     terminal / started-not-done / submitted-only;
//   - damage confined to the tail past the good prefix loses nothing.
func FuzzJobstoreRecovery(f *testing.F) {
	f.Add(uint16(0), true)
	f.Add(uint16(50), false)
	f.Add(uint16(200), true)
	f.Add(uint16(9999), false)
	f.Fuzz(func(t *testing.T, offset uint16, truncate bool) {
		dir := t.TempDir()
		// Three jobs in the three lifecycle states, plus a program, spread
		// over small segments so offsets can land near rotation points.
		writeJournal(t, dir, Config{SegmentBytes: 128}, []*Record{
			{T: TProgram, Hash: "h1", Name: "p", Source: "terminal 1 -> 1"},
			submitRec("j1"),
			{T: TStart, ID: "j1"},
			{T: TDone, ID: "j1", State: "done", Value: 42, MakespanNS: 7},
			submitRec("j2"),
			{T: TStart, ID: "j2"},
			submitRec("j3"),
		})
		segs, err := listSegments(dir)
		if err != nil || len(segs) == 0 {
			t.Fatalf("segments: %v err %v", segs, err)
		}
		// Map the flat offset onto the concatenated segment bytes.
		var paths []string
		var sizes []int64
		var total int64
		for _, n := range segs {
			p := filepath.Join(dir, segName(n))
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			paths, sizes, total = append(paths, p), append(sizes, st.Size()), total+st.Size()
		}
		off := int64(offset) % total
		var target string
		var inFile int64
		for i, sz := range sizes {
			if off < sz {
				target, inFile = paths[i], off
				break
			}
			off -= sz
		}

		if truncate {
			if err := os.Truncate(target, inFile); err != nil {
				t.Fatal(err)
			}
		} else {
			b, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			b[inFile] ^= 0xa5
			if err := os.WriteFile(target, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		s, rec, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("recovery errored on damaged journal: %v", err)
		}
		defer s.Close()

		seen := map[string]*JobState{}
		for _, j := range rec.Jobs {
			if seen[j.ID] != nil {
				t.Fatalf("job %s recovered twice", j.ID)
			}
			seen[j.ID] = j
			if len(j.Req) == 0 {
				t.Fatalf("job %s recovered without its request", j.ID)
			}
		}
		// Terminal results are exact, never invented.
		if j := seen["j1"]; j != nil && j.Done {
			if j.State != "done" || j.Value != 42 || j.MakespanNS != 7 {
				t.Fatalf("j1 outcome mutated: %+v", j)
			}
		}
		for _, id := range []string{"j2", "j3"} {
			if j := seen[id]; j != nil && j.Done {
				t.Fatalf("%s recovered as terminal but never finished: %+v", id, j)
			}
		}
		if j := seen["j3"]; j != nil && j.Started {
			t.Fatalf("j3 recovered as started but never started: %+v", j)
		}
		// Damage strictly past the last record loses nothing.
		if !truncate {
			// byte flips inside a frame lose at most that segment's tail
		} else if inFile >= sizes[len(sizes)-1] && target == paths[len(paths)-1] {
			t.Fatal("unreachable: truncation offset past file size")
		}

		// The repaired store accepts appends and recovers them next time.
		if err := s.Append(submitRec("j9")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		_, rec2, err := Open(dir, Config{})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		found := false
		for _, j := range rec2.Jobs {
			if j.ID == "j9" {
				found = true
			}
		}
		if !found {
			t.Fatal("post-recovery append lost on the next recovery")
		}
	})
}

// TestRecordFrameFormat pins the on-disk frame layout so a future
// refactor cannot silently change the format recovery depends on.
func TestRecordFrameFormat(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, Config{}, []*Record{{T: TStart, ID: "j1"}})
	b, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 8 {
		t.Fatalf("frame too short: %d bytes", len(b))
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if int(length) != len(b)-8 {
		t.Fatalf("length field %d, payload %d", length, len(b)-8)
	}
	var rec Record
	if err := json.Unmarshal(b[8:], &rec); err != nil {
		t.Fatalf("payload is not JSON: %v", err)
	}
	if rec.T != TStart || rec.ID != "j1" {
		t.Fatalf("payload round trip: %+v", rec)
	}
}
