package vtime

import "testing"

// BenchmarkSimYieldHandoff measures the scheduler's worker-to-worker
// handoff: two procs leapfrog each other, so every Yield crosses the
// quantum horizon and transfers control through one channel send.
func BenchmarkSimYieldHandoff(b *testing.B) {
	b.ReportAllocs()
	sim := &Sim{Seed: 1, Quantum: 1}
	sim.Run(2, func(p Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(2)
			p.Yield()
		}
	})
}

// BenchmarkSimYieldSolo measures the serial fast path: with one proc the
// horizon is unbounded, so Yield is a single branch and no channel is ever
// touched.
func BenchmarkSimYieldSolo(b *testing.B) {
	b.ReportAllocs()
	sim := &Sim{Seed: 1, Quantum: 1}
	sim.Run(1, func(p Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(2)
			p.Yield()
		}
	})
}

// BenchmarkSimYieldWide exercises the heap: eight procs with staggered
// advances, so handoffs constantly reorder the pending set.
func BenchmarkSimYieldWide(b *testing.B) {
	b.ReportAllocs()
	sim := &Sim{Seed: 1, Quantum: 1}
	sim.Run(8, func(p Proc) {
		step := int64(p.ID()%3 + 1)
		for i := 0; i < b.N; i++ {
			p.Advance(step)
			p.Yield()
		}
	})
}
