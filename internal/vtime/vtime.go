// Package vtime is the execution platform shared by every scheduling engine
// in this repository. A Platform runs N workers; each worker receives a Proc
// handle through which it accounts for the cost of its actions and offers
// scheduling points.
//
// Two implementations exist:
//
//   - Real: workers are ordinary goroutines and Now is the wall clock. Use
//     this on multi-core hosts and in race-detector tests.
//   - Sim: a deterministic conservative discrete-event core. Only the worker
//     with the smallest virtual clock runs; everything an engine does
//     (executing a node, pushing a frame, attempting a steal, copying a
//     workspace, polling, waiting) advances its clock by a modelled cost.
//     The virtual makespan of a run is then a faithful, reproducible stand-in
//     for wall-clock time on a machine with N real cores — which is how this
//     reproduction measures speedup on a single-core host.
//
// Engines must follow one rule for the two modes to be interchangeable:
// never call Advance, Yield or Sleep while holding a lock that another
// worker may contend. Between two Yield points a Sim worker runs alone, so
// uncontended locks cost nothing and the identical code is race-safe under
// Real with the locks doing their usual job.
package vtime

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Proc is a worker's handle onto the platform. A Proc is owned by exactly
// one worker goroutine; none of its methods may be called from elsewhere.
type Proc interface {
	// ID is the worker index in [0, N).
	ID() int
	// Now returns the worker's current time in nanoseconds. Under Sim this
	// is the worker's virtual clock; under Real it is wall time since the
	// run started. Time from different workers is comparable.
	Now() int64
	// Advance accounts d nanoseconds of work. Under Sim it moves the
	// virtual clock; under Real it only feeds the busy-time counter
	// (the work itself is real). Negative d is ignored.
	Advance(d int64)
	// Yield is a scheduling point. Under Sim control may transfer to the
	// worker with the smallest clock; under Real it is (almost) free.
	Yield()
	// Sleep advances the clock by d and yields, modelling a blocking wait
	// tick (e.g. the paper's usleep(100) in sync_specialtask).
	Sleep(d int64)
	// Rand is this worker's deterministic random source (victim selection).
	Rand() *rand.Rand
}

// Platform runs workers to completion.
type Platform interface {
	// Run starts n workers executing body and returns when all have
	// returned. It reports the makespan in nanoseconds: virtual under Sim,
	// wall-clock under Real.
	Run(n int, body func(Proc)) int64
	// Name identifies the platform ("real" or "sim").
	Name() string
}

// ---------------------------------------------------------------------------
// Real platform

// Real executes workers as plain goroutines against the wall clock.
type Real struct {
	// Seed makes per-worker random sources reproducible. Zero means 1.
	Seed int64
}

// Name implements Platform.
func (*Real) Name() string { return "real" }

// Run implements Platform.
func (r *Real) Run(n int, body func(Proc)) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("vtime: Real.Run with n=%d workers", n))
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	var panicked atomic.Pointer[panicBox]
	wg.Add(n)
	for i := 0; i < n; i++ {
		p := &realProc{id: i, start: start, rng: rand.New(rand.NewSource(seed + int64(i)*7919))}
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicBox{val: r})
				}
			}()
			body(p)
		}()
	}
	wg.Wait()
	if pb := panicked.Load(); pb != nil {
		panic(pb.val) // re-raise on the caller's goroutine
	}
	return time.Since(start).Nanoseconds()
}

type panicBox struct{ val any }

// NewRealProcs returns n wall-clock Procs sharing one epoch, for resident
// worker pools that outlive any single run: each Proc is handed to one
// long-lived worker goroutine, and Now stays comparable across all of them
// for the life of the pool. seed follows the same per-worker derivation as
// Real.Run (zero means 1).
func NewRealProcs(n int, seed int64) []Proc {
	if n <= 0 {
		panic(fmt.Sprintf("vtime: NewRealProcs with n=%d workers", n))
	}
	if seed == 0 {
		seed = 1
	}
	start := time.Now()
	procs := make([]Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = &realProc{id: i, start: start, rng: rand.New(rand.NewSource(seed + int64(i)*7919))}
	}
	return procs
}

type realProc struct {
	id    int
	start time.Time
	rng   *rand.Rand
	busy  int64
}

func (p *realProc) ID() int          { return p.id }
func (p *realProc) Now() int64       { return time.Since(p.start).Nanoseconds() }
func (p *realProc) Rand() *rand.Rand { return p.rng }

func (p *realProc) Advance(d int64) {
	if d > 0 {
		p.busy += d
	}
}

func (p *realProc) Yield() {}

func (p *realProc) Sleep(d int64) {
	switch {
	case d <= 0:
	case d < int64(2*time.Microsecond):
		runtime.Gosched()
	default:
		time.Sleep(time.Duration(d))
	}
}

// ---------------------------------------------------------------------------
// Sim platform

// Sim is a deterministic virtual-time platform. At any instant exactly one
// worker executes; control always passes to the runnable worker with the
// smallest virtual clock (ties broken by worker ID). To keep the
// channel-handoff overhead low each worker is granted a slice: it may keep
// running without a handoff until its clock passes the second-smallest
// clock plus Quantum.
//
// Handoffs are direct: the yielding worker itself consults the min-heap of
// paused workers and resumes the next one over its channel — one channel
// transfer per scheduling event instead of the two a central scheduler
// goroutine would cost. When the yielding worker is still the earliest
// runnable worker (always the case for the last live worker, and for every
// single-worker run) it just extends its own horizon and continues with no
// channel transfer at all. The heap is only ever touched by the one running
// worker, so it needs no lock; determinism is untouched because the
// (worker, horizon) grant sequence is identical to a central scheduler's.
type Sim struct {
	// Seed for per-worker random sources. Zero means 1.
	Seed int64
	// Quantum is the slice slack in nanoseconds. Larger values run faster
	// but allow workers to interleave up to Quantum out of order. Zero
	// means 500ns.
	Quantum int64
	// Limit aborts the run (panic) if any clock passes this virtual time.
	// Zero means no limit. It exists to turn engine livelocks into loud
	// failures instead of hangs.
	Limit int64
}

// Name implements Platform.
func (*Sim) Name() string { return "sim" }

type simProc struct {
	id      int
	clock   int64
	horizon int64
	rng     *rand.Rand
	limit   int64
	core    *simCore

	// resume carries this worker's next horizon grant. Exactly one worker
	// runs at a time; everyone else blocks here (or has finished).
	resume chan int64
}

func (p *simProc) ID() int          { return p.id }
func (p *simProc) Now() int64       { return p.clock }
func (p *simProc) Rand() *rand.Rand { return p.rng }

func (p *simProc) Advance(d int64) {
	if d > 0 {
		p.clock += d
		if p.limit > 0 && p.clock > p.limit {
			panic(fmt.Sprintf("vtime: worker %d exceeded virtual time limit %dns (livelocked engine?)", p.id, p.limit))
		}
	}
}

func (p *simProc) Yield() {
	if p.clock < p.horizon {
		return
	}
	p.core.handoff(p)
}

func (p *simProc) Sleep(d int64) {
	p.Advance(d)
	p.Yield()
}

// simCore is the shared scheduling state of one Sim run. Only the single
// running worker ever touches it (the caller of Run touches it only before
// the first grant and after the last worker finished), so it is lock-free
// by construction.
type simCore struct {
	quantum  int64
	heap     []*simProc // paused runnable workers, min-ordered by (clock, id)
	running  int        // workers that have not finished
	makespan int64
	done     chan int64 // receives the makespan from the last finisher
}

// less orders the heap by clock, ties broken by worker ID — the same total
// order a linear minimum scan over worker slices would produce.
func simLess(a, b *simProc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

func (c *simCore) heapPush(p *simProc) {
	c.heap = append(c.heap, p)
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !simLess(c.heap[i], c.heap[parent]) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

func (c *simCore) heapPop() *simProc {
	h := c.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	c.heap = h[:last]
	// Sift down.
	i, n := 0, last
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && simLess(h[l], h[min]) {
			min = l
		}
		if r < n && simLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// grant computes the horizon for next, which has just been popped off the
// heap: the smallest paused clock plus the quantum (conservative ordering —
// next cannot run past any paused worker by more than the quantum). With no
// paused workers left nothing constrains the order, so the horizon is
// unbounded and the worker never hands off again.
func (c *simCore) grant(next *simProc) int64 {
	if len(c.heap) == 0 {
		return 1<<63 - 1
	}
	h := next.clock + c.quantum
	if s := c.heap[0].clock + c.quantum; s > h {
		h = s
	}
	return h
}

// handoff parks p and resumes the earliest runnable worker — possibly p
// itself, in which case no channel transfer happens.
func (c *simCore) handoff(p *simProc) {
	c.heapPush(p)
	next := c.heapPop()
	h := c.grant(next)
	if next == p {
		p.horizon = h
		return
	}
	next.resume <- h
	p.horizon = <-p.resume
}

// finish retires p and passes control to the next runnable worker; the last
// finisher reports the makespan to Run.
func (c *simCore) finish(p *simProc) {
	if p.clock > c.makespan {
		c.makespan = p.clock
	}
	c.running--
	if c.running == 0 {
		c.done <- c.makespan
		return
	}
	next := c.heapPop()
	next.resume <- c.grant(next)
}

// Run implements Platform.
func (s *Sim) Run(n int, body func(Proc)) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("vtime: Sim.Run with n=%d workers", n))
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	quantum := s.Quantum
	if quantum == 0 {
		quantum = 500
	}

	core := &simCore{
		quantum: quantum,
		heap:    make([]*simProc, 0, n),
		running: n,
		done:    make(chan int64, 1),
	}
	var panicked atomic.Pointer[panicBox]
	for i := 0; i < n; i++ {
		p := &simProc{
			id:     i,
			rng:    rand.New(rand.NewSource(seed + int64(i)*7919)),
			limit:  s.Limit,
			core:   core,
			resume: make(chan int64),
		}
		core.heapPush(p)
		go func() {
			p.horizon = <-p.resume
			defer func() {
				if r := recover(); r != nil {
					// Capture the panic and surface it from Run on the
					// caller's goroutine; retire the worker first so the
					// remaining workers keep being scheduled.
					panicked.CompareAndSwap(nil, &panicBox{val: r})
				}
				core.finish(p)
			}()
			body(p)
		}()
	}

	first := core.heapPop()
	first.resume <- core.grant(first)
	makespan := <-core.done
	if pb := panicked.Load(); pb != nil {
		panic(pb.val) // re-raise on the caller's goroutine
	}
	return makespan
}
