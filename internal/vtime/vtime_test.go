package vtime

import (
	"sync/atomic"
	"testing"
)

func TestSimDeterministicOrder(t *testing.T) {
	run := func() []int {
		var order []int
		sim := &Sim{Seed: 3, Quantum: 1}
		sim.Run(3, func(p Proc) {
			for i := 0; i < 5; i++ {
				p.Advance(int64(10 * (p.ID() + 1)))
				order = append(order, p.ID()) // safe: Sim serialises workers
				p.Yield()
			}
		})
		return order
	}
	a, b := run(), run()
	if len(a) != 15 {
		t.Fatalf("got %d events, want 15", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSimMakespan(t *testing.T) {
	sim := &Sim{}
	makespan := sim.Run(4, func(p Proc) {
		p.Advance(int64(1000 * (p.ID() + 1)))
		p.Yield()
	})
	if makespan != 4000 {
		t.Fatalf("makespan = %d, want 4000 (slowest worker)", makespan)
	}
}

func TestSimMinClockScheduling(t *testing.T) {
	// A slow worker and a fast worker: the fast worker should accumulate
	// many steps while the slow worker takes one.
	var trace []int
	sim := &Sim{Quantum: 1}
	sim.Run(2, func(p Proc) {
		if p.ID() == 0 {
			for i := 0; i < 3; i++ {
				p.Advance(1000)
				trace = append(trace, 0)
				p.Yield()
			}
		} else {
			for i := 0; i < 30; i++ {
				p.Advance(100)
				trace = append(trace, 1)
				p.Yield()
			}
		}
	})
	// Worker 1 should finish its first ~10 steps before worker 0's second.
	ones := 0
	for _, id := range trace[:10] {
		if id == 1 {
			ones++
		}
	}
	if ones < 8 {
		t.Fatalf("fast worker starved: first 10 events %v", trace[:10])
	}
}

func TestSimSleepConvergence(t *testing.T) {
	// One worker produces a flag at t=5000; the other waits on it with
	// Sleep ticks and must observe it, at a clock past the producer's.
	var flag atomic.Bool
	var sawAt int64
	sim := &Sim{}
	sim.Run(2, func(p Proc) {
		if p.ID() == 0 {
			p.Advance(5000)
			p.Yield()
			flag.Store(true)
		} else {
			for !flag.Load() {
				p.Sleep(200)
			}
			sawAt = p.Now()
		}
	})
	if sawAt < 5000 {
		t.Fatalf("waiter observed the flag at virtual %d, before the producer's 5000", sawAt)
	}
}

func TestSimLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from virtual time limit")
		}
	}()
	sim := &Sim{Limit: 1000}
	sim.Run(1, func(p Proc) {
		for {
			p.Sleep(500)
		}
	})
}

// TestNowMonotonic pins the clock property the trace recorder leans on:
// within one worker, Now never goes backwards across Advance, Yield and
// Sleep — per-worker trace timestamps are therefore already sorted.
func TestNowMonotonic(t *testing.T) {
	check := func(t *testing.T, p Proc, last *int64) {
		t.Helper()
		if now := p.Now(); now < *last {
			t.Errorf("worker %d: Now went backwards: %d after %d", p.ID(), now, *last)
		} else {
			*last = now
		}
	}
	t.Run("sim", func(t *testing.T) {
		sim := &Sim{Seed: 11, Quantum: 3}
		sim.Run(4, func(p Proc) {
			var last int64
			for i := 0; i < 200; i++ {
				p.Advance(int64(p.Rand().Intn(50)))
				check(t, p, &last)
				p.Yield()
				check(t, p, &last)
				if i%17 == 0 {
					p.Sleep(25)
					check(t, p, &last)
				}
			}
		})
	})
	t.Run("real", func(t *testing.T) {
		r := &Real{Seed: 11}
		r.Run(4, func(p Proc) {
			var last int64
			for i := 0; i < 200; i++ {
				p.Advance(5)
				check(t, p, &last)
				p.Yield()
				check(t, p, &last)
			}
		})
	})
}

func TestRealPlatformRuns(t *testing.T) {
	var count atomic.Int64
	r := &Real{Seed: 5}
	makespan := r.Run(4, func(p Proc) {
		count.Add(1)
		p.Advance(10)
		p.Yield()
		p.Sleep(100)
	})
	if count.Load() != 4 {
		t.Fatalf("ran %d workers, want 4", count.Load())
	}
	if makespan <= 0 {
		t.Fatalf("makespan = %d, want > 0", makespan)
	}
}

func TestProcRandDeterministic(t *testing.T) {
	draw := func(seed int64) [2]int64 {
		var out [2]int64
		sim := &Sim{Seed: seed}
		sim.Run(2, func(p Proc) {
			out[p.ID()] = p.Rand().Int63()
		})
		return out
	}
	a, b := draw(9), draw(9)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a[0] == a[1] {
		t.Fatal("workers share a random stream")
	}
	if c := draw(10); c == a {
		t.Fatal("different seeds produced identical streams")
	}
}
