package progstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"adaptivetc/internal/lang"
)

const tinySrc = "param n = 4\nterminal depth == n -> 1\nmoves n\napply { }\nundo { }\n"

func tinyVariant(i int) string {
	return fmt.Sprintf("param n = %d\nterminal depth == n -> 1\nmoves n\napply { }\nundo { }\n", i+2)
}

// TestPutGetDelete covers the content-addressed lifecycle: insert,
// reformatted re-insert landing on the same hash as a hit, lookup,
// delete, and the unknown-hash error afterwards.
func TestPutGetDelete(t *testing.T) {
	s := New(Config{})
	m, created, err := s.Put("tiny", tinySrc)
	if err != nil || !created {
		t.Fatalf("Put: created=%v err=%v", created, err)
	}
	if len(m.Hash) != 64 {
		t.Fatalf("hash %q is not hex sha-256", m.Hash)
	}
	if m.Params["n"] != 4 {
		t.Fatalf("catalog params = %v, want n=4", m.Params)
	}

	// A reformatted spelling is the same program: same hash, not created.
	m2, created, err := s.Put("tiny-reformat", "param n=4 terminal depth==n->1 moves n apply{} undo{}")
	if err != nil || created {
		t.Fatalf("reformatted Put: created=%v err=%v", created, err)
	}
	if m2.Hash != m.Hash {
		t.Fatalf("reformatted source hashed differently: %s vs %s", m2.Hash, m.Hash)
	}
	if got := s.Snapshot(); got.Cached != 1 || got.Hits != 1 {
		t.Fatalf("after duplicate Put: %+v", got)
	}

	if _, src, ok := s.Get(m.Hash); !ok || !strings.Contains(src, "terminal") {
		t.Fatalf("Get(%s): ok=%v src=%q", m.Hash, ok, src)
	}
	if p, err := s.Program(m.Hash, nil); err != nil || p == nil {
		t.Fatalf("Program: %v", err)
	}
	if !s.Delete(m.Hash) {
		t.Fatal("Delete reported missing")
	}
	if s.Delete(m.Hash) {
		t.Fatal("second Delete reported present")
	}
	if _, err := s.Program(m.Hash, nil); !errors.Is(err, ErrUnknown) {
		t.Fatalf("Program after delete: %v, want ErrUnknown", err)
	}
}

// TestCompileDiagnosticsCached: a broken submission fails with a
// positioned *lang.Error, the failure is served from the negative cache
// (no recompile) until the TTL lapses, and a corrected source is
// unaffected.
func TestCompileDiagnosticsCached(t *testing.T) {
	s := New(Config{ErrTTL: 50 * time.Millisecond})
	compiles := 0
	s.compileHook = func() { compiles++ }

	broken := "param n = 4\nterminal depth == n -> 1\nmoves n\napply { x = }\nundo { }\n"
	_, _, err := s.Put("broken", broken)
	var le *lang.Error
	if !errors.As(err, &le) {
		t.Fatalf("error is %T, want *lang.Error: %v", err, err)
	}
	if le.Line != 4 || le.Col < 1 {
		t.Fatalf("diagnostic position = %d:%d, want line 4", le.Line, le.Col)
	}

	_, _, err2 := s.Put("broken", broken)
	if !errors.As(err2, &le) {
		t.Fatalf("cached error is %T: %v", err2, err2)
	}
	if got := s.Snapshot(); got.ErrHits != 1 {
		t.Fatalf("negative cache not hit: %+v", got)
	}

	time.Sleep(60 * time.Millisecond)
	if _, _, err := s.Put("broken", broken); err == nil {
		t.Fatal("expired negative entry suppressed the real compile error")
	}
	// Lex errors (no canonical form) negative-cache too and never compile.
	if _, _, err := s.Put("lexfail", "param n = 8 &"); err == nil {
		t.Fatal("lex error not surfaced")
	}
	preCompiles := compiles
	if _, _, err := s.Put("lexfail", "param n = 8 &"); err == nil {
		t.Fatal("cached lex error not surfaced")
	}
	if compiles != preCompiles {
		t.Fatal("negative-cached lex failure re-ran the compiler")
	}

	if _, created, err := s.Put("fixed", tinySrc); err != nil || !created {
		t.Fatalf("good source after failures: created=%v err=%v", created, err)
	}
}

// TestSingleFlight: concurrent submitters of the same new source compile
// once; everyone gets the same entry.
func TestSingleFlight(t *testing.T) {
	s := New(Config{})
	var mu sync.Mutex
	compiles := 0
	gate := make(chan struct{})
	s.compileHook = func() {
		mu.Lock()
		compiles++
		mu.Unlock()
		<-gate
	}

	const workers = 8
	var wg sync.WaitGroup
	hashes := make([]string, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _, err := s.Put("tiny", tinySrc)
			hashes[i], errs[i] = m.Hash, err
		}(i)
	}
	// Let the leader enter the hook and followers pile onto the flight.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if hashes[i] != hashes[0] {
			t.Fatalf("worker %d saw hash %s, want %s", i, hashes[i], hashes[0])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if compiles != 1 {
		t.Fatalf("%d compiles for one source under %d concurrent Puts", compiles, workers)
	}
}

// TestLRUEviction: pushing past the count cap evicts the least recently
// used entry, and a Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	s := New(Config{MaxPrograms: 3})
	var hashes []string
	for i := 0; i < 3; i++ {
		m, _, err := s.Put("v", tinyVariant(i))
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		hashes = append(hashes, m.Hash)
	}
	// Touch the oldest so the middle one becomes the LRU victim.
	if _, _, ok := s.Get(hashes[0]); !ok {
		t.Fatal("Get oldest")
	}
	if _, _, err := s.Put("v", tinyVariant(3)); err != nil {
		t.Fatalf("Put overflow: %v", err)
	}
	if got := s.Snapshot(); got.Cached != 3 || got.Evictions != 1 {
		t.Fatalf("after overflow: %+v", got)
	}
	if _, _, ok := s.Get(hashes[1]); ok {
		t.Fatal("LRU victim survived")
	}
	if _, _, ok := s.Get(hashes[0]); !ok {
		t.Fatal("recently-touched entry was evicted")
	}

	// Byte cap: a store whose cap fits one tiny program holds exactly one.
	sb := New(Config{MaxBytes: int64(len(tinySrc))})
	for i := 0; i < 3; i++ {
		if _, _, err := sb.Put("v", tinyVariant(i)); err != nil {
			t.Fatalf("byte-cap Put %d: %v", i, err)
		}
	}
	if got := sb.Snapshot(); got.Cached != 1 {
		t.Fatalf("byte cap held %d entries: %+v", got.Cached, got)
	}
}

// TestParamVariants: per-job parameter overrides compile distinct cached
// variants under one entry; repeats are hits; unknown params error.
func TestParamVariants(t *testing.T) {
	s := New(Config{})
	compiles := 0
	s.compileHook = func() { compiles++ }
	m, _, err := s.Put("tiny", tinySrc)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	p6, err := s.Program(m.Hash, map[string]int64{"n": 6})
	if err != nil {
		t.Fatalf("Program n=6: %v", err)
	}
	p6b, err := s.Program(m.Hash, map[string]int64{"n": 6})
	if err != nil {
		t.Fatalf("Program n=6 again: %v", err)
	}
	if p6 != p6b {
		t.Fatal("repeat override did not reuse the cached variant")
	}
	if compiles != 2 { // initial Put + the n=6 variant
		t.Fatalf("%d compiles, want 2", compiles)
	}
	if _, err := s.Program(m.Hash, map[string]int64{"bogus": 1}); err == nil {
		t.Fatal("unknown parameter override did not error")
	}
}

// TestList reports most-recently-used order.
func TestList(t *testing.T) {
	s := New(Config{})
	var hashes []string
	for i := 0; i < 3; i++ {
		m, _, err := s.Put("v", tinyVariant(i))
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		hashes = append(hashes, m.Hash)
	}
	s.Get(hashes[0])
	l := s.List()
	if len(l) != 3 || l[0].Hash != hashes[0] {
		t.Fatalf("List order wrong: %+v", l)
	}
}
