// Package progstore is the content-addressed compile cache behind the
// programs-as-data serving tier: user-submitted ATC (DSL) source goes in,
// a hash comes back, and jobs thereafter run the cached compiled program
// by hash. The paper presents AdaptiveTC as a language whose compiler
// emits adaptive task-creation code; this package is what turns the
// resident service from a fixed catalog into a host for that language.
//
// Identity is the SHA-256 of the canonicalized source (lang.HashSource):
// reformat a program, resubmit it, and it lands on the same entry. Cache
// policy is LRU with both a count cap and a byte cap over canonical
// source. Compilation of the same source by concurrent submitters is
// single-flight — one compile, everyone shares the result — and compile
// *failures* are negatively cached for a short TTL keyed by the raw
// source bytes, so a client hammering a broken program replays the
// position-annotated diagnostic instead of re-running the compiler.
//
// Compiled programs are safe to share across concurrent jobs: after the
// init probe, a lang.Program only reads its shared tables and mutates
// per-task cloned workspaces (writes to shared state outside init are
// compile errors), so one *lang.Program instance serves any number of
// simultaneous runs. Per-run parameter overrides ("n", the registry's N
// knob) produce distinct compiled variants cached under the same entry.
package progstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetc/internal/lang"
	"adaptivetc/internal/sched"
)

// ErrUnknown reports a lookup of a hash the store does not hold — never
// submitted, deleted, or evicted. The client re-submits the source.
var ErrUnknown = errors.New("progstore: unknown program hash")

// Config bounds the cache. Zero values take the defaults.
type Config struct {
	// MaxPrograms caps the number of cached programs; default 256.
	MaxPrograms int
	// MaxBytes caps the total canonical source bytes; default 8 MiB.
	MaxBytes int64
	// ErrTTL is how long a compile failure is served from the negative
	// cache before the compiler runs again; default 10s.
	ErrTTL time.Duration
	// InitBudget bounds for-loop iterations when probing a submission's
	// init block (lang.NewProgramGuarded); default 1<<22.
	InitBudget int64
	// MaxVariants caps per-entry compiled parameter variants; default 32.
	MaxVariants int
}

func (c Config) withDefaults() Config {
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 256
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8 << 20
	}
	if c.ErrTTL <= 0 {
		c.ErrTTL = 10 * time.Second
	}
	if c.MaxVariants <= 0 {
		c.MaxVariants = 32
	}
	return c
}

// Meta is one cached program's catalog entry.
type Meta struct {
	// Hash is the content address: hex SHA-256 of the canonical source.
	Hash string `json:"hash"`
	// Name is the submitter-chosen display name (not part of identity).
	Name string `json:"name"`
	// SourceBytes is the canonical source size.
	SourceBytes int `json:"source_bytes"`
	// Params are the program's compile-time parameters with their default
	// values — the knobs a job submission may override per run.
	Params map[string]int64 `json:"params,omitempty"`
	// StateCells is the total declared state (taskprivate + shared cells).
	StateCells int64 `json:"state_cells"`
	// Created is when this entry was (re)inserted.
	Created time.Time `json:"created"`
}

// entry is one cached program: metadata, canonical source, and the
// compiled variants keyed by their override signature ("" = defaults).
type entry struct {
	meta      Meta
	canonical string
	variants  map[string]*lang.Program

	// LRU links (most recent at head.next).
	prev, next *entry
}

type negEntry struct {
	err error
	at  time.Time
}

// flight is one in-progress compilation; latecomers wait on done.
type flight struct {
	done chan struct{}
	prog *lang.Program
	err  error
}

// Stats is the cache counter snapshot.
type Stats struct {
	Cached     int   `json:"programs_cached"`
	Bytes      int64 `json:"program_cache_bytes"`
	Hits       int64 `json:"compile_hits"`
	Misses     int64 `json:"compile_misses"`
	ErrHits    int64 `json:"compile_error_hits"`
	Evictions  int64 `json:"program_evictions"`
	SingleWait int64 `json:"compile_singleflight_waits"`
}

// Store is the compile cache.
type Store struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	head    entry // LRU sentinel: head.next is most recent
	bytes   int64
	neg     map[string]negEntry
	flights map[string]*flight

	hits, misses, errHits, evictions, singleWait atomic.Int64

	// compileHook, when set, runs inside every leader compilation (tests
	// count and stall compiles through it).
	compileHook func()
}

// New builds an empty store.
func New(cfg Config) *Store {
	s := &Store{
		cfg:     cfg.withDefaults(),
		entries: make(map[string]*entry),
		neg:     make(map[string]negEntry),
		flights: make(map[string]*flight),
	}
	s.head.prev, s.head.next = &s.head, &s.head
	return s
}

func (s *Store) lruUnlink(e *entry) {
	e.prev.next, e.next.prev = e.next, e.prev
	e.prev, e.next = nil, nil
}

func (s *Store) lruFront(e *entry) {
	e.prev, e.next = &s.head, s.head.next
	e.prev.next, e.next.prev = e, e
}

// rawHash keys the negative cache: the submitter retries the same bytes,
// so identity-before-canonicalization is what a failure should stick to
// (a lex error has no canonical form at all).
func rawHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Put canonicalizes, hashes, and — if the program is new — compiles and
// caches src under the submitted display name. It returns the entry's
// metadata and whether this call inserted it (false: it was already
// cached, a compile hit). Compile and init-probe failures come back as
// position-annotated *lang.Error values and are negatively cached for
// cfg.ErrTTL.
func (s *Store) Put(name, src string) (Meta, bool, error) {
	raw := rawHash(src)
	s.mu.Lock()
	if ne, ok := s.neg[raw]; ok {
		if time.Since(ne.at) < s.cfg.ErrTTL {
			s.mu.Unlock()
			s.errHits.Add(1)
			return Meta{}, false, ne.err
		}
		delete(s.neg, raw)
	}
	s.mu.Unlock()

	hash, canonical, herr := lang.HashSource(src)
	if herr != nil {
		s.cacheFailure(raw, herr)
		return Meta{}, false, herr
	}

	s.mu.Lock()
	if e, ok := s.entries[hash]; ok {
		s.lruUnlink(e)
		s.lruFront(e)
		m := e.meta
		s.mu.Unlock()
		s.hits.Add(1)
		return m, false, nil
	}
	s.mu.Unlock()

	// Single-flight: one compile per hash, no matter how many submitters.
	prog, leader, err := s.compileShared(hash, name, src, nil)
	if err != nil {
		if leader {
			s.cacheFailure(raw, err)
		}
		return Meta{}, false, err
	}
	meta := Meta{
		Hash:        hash,
		Name:        name,
		SourceBytes: len(canonical),
		Params:      prog.Compiled().Params(),
		StateCells:  prog.Compiled().StateCells(),
		Created:     time.Now(),
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[hash]; ok {
		// A racing submitter inserted first; theirs wins.
		s.lruUnlink(e)
		s.lruFront(e)
		return e.meta, false, nil
	}
	e := &entry{meta: meta, canonical: canonical, variants: map[string]*lang.Program{"": prog}}
	s.entries[hash] = e
	s.bytes += int64(len(canonical))
	s.lruFront(e)
	s.evictLocked()
	return meta, true, nil
}

// cacheFailure records a compile failure in the negative cache.
func (s *Store) cacheFailure(raw string, err error) {
	s.mu.Lock()
	s.neg[raw] = negEntry{err: err, at: time.Now()}
	// Bound the negative cache opportunistically: drop expired entries,
	// and if a flood of distinct broken sources piles up, drop all of it —
	// it is only a latency shield, never a correctness layer.
	if len(s.neg) > 1024 {
		for k, ne := range s.neg {
			if time.Since(ne.at) >= s.cfg.ErrTTL {
				delete(s.neg, k)
			}
		}
		if len(s.neg) > 1024 {
			s.neg = make(map[string]negEntry)
		}
	}
	s.mu.Unlock()
}

// compileShared runs (or joins) the single-flight compilation of src with
// the given overrides, keyed by hash+overrides. leader reports whether
// this call did the compile (and thus owns failure caching).
func (s *Store) compileShared(hash, name, src string, overrides map[string]int64) (*lang.Program, bool, error) {
	key := hash + "|" + overridesKey(overrides)
	s.mu.Lock()
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.singleWait.Add(1)
		<-fl.done
		return fl.prog, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	hook := s.compileHook
	s.mu.Unlock()

	if hook != nil {
		hook()
	}
	fl.prog, fl.err = lang.CompileProgramGuarded(name, src, overrides, s.cfg.InitBudget)
	s.misses.Add(1)

	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(fl.done)
	return fl.prog, true, fl.err
}

// overridesKey renders an override set canonically ("k=3,n=8").
func overridesKey(ov map[string]int64) string {
	if len(ov) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ov))
	for k := range ov {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, ov[k])
	}
	return b.String()
}

// evictLocked drops least-recently-used entries past the caps (always
// keeping at least one).
func (s *Store) evictLocked() {
	for len(s.entries) > 1 &&
		(len(s.entries) > s.cfg.MaxPrograms || s.bytes > s.cfg.MaxBytes) {
		victim := s.head.prev
		s.lruUnlink(victim)
		delete(s.entries, victim.meta.Hash)
		s.bytes -= int64(len(victim.canonical))
		s.evictions.Add(1)
	}
}

// Get returns the metadata and canonical source cached under hash,
// bumping its recency.
func (s *Store) Get(hash string) (Meta, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return Meta{}, "", false
	}
	s.lruUnlink(e)
	s.lruFront(e)
	return e.meta, e.canonical, true
}

// Delete evicts hash. It reports whether the hash was cached.
func (s *Store) Delete(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[hash]
	if !ok {
		return false
	}
	s.lruUnlink(e)
	delete(s.entries, hash)
	s.bytes -= int64(len(e.canonical))
	return true
}

// Program returns a runnable compiled program for hash with the given
// parameter overrides, compiling (single-flight) and caching the variant
// on first use. Unknown hashes return ErrUnknown; an override for a
// parameter the program does not declare is a compile error.
func (s *Store) Program(hash string, overrides map[string]int64) (sched.Program, error) {
	key := overridesKey(overrides)
	s.mu.Lock()
	e, ok := s.entries[hash]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknown, hash)
	}
	s.lruUnlink(e)
	s.lruFront(e)
	if v, ok := e.variants[key]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return v, nil
	}
	name, src := e.meta.Name, e.canonical
	s.mu.Unlock()

	prog, _, err := s.compileShared(hash, name, src, overrides)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// The entry may have been evicted while compiling; the caller still
	// gets a usable program either way.
	if e, ok := s.entries[hash]; ok {
		if len(e.variants) >= s.cfg.MaxVariants {
			for k := range e.variants {
				if k != "" {
					delete(e.variants, k)
					break
				}
			}
		}
		e.variants[key] = prog
	}
	return prog, nil
}

// Restore re-inserts a program recovered from the persistent journal:
// like Put, but src is already canonical and failures are not negatively
// cached (they are counted by the caller's recovery stats instead).
func (s *Store) Restore(name, canonical string) (Meta, error) {
	m, _, err := s.Put(name, canonical)
	return m, err
}

// List returns the cached programs, most recently used first.
func (s *Store) List() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.entries))
	for e := s.head.next; e != &s.head; e = e.next {
		out = append(out, e.meta)
	}
	return out
}

// Snapshot returns the cache counters.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	cached, bytes := len(s.entries), s.bytes
	s.mu.Unlock()
	return Stats{
		Cached:     cached,
		Bytes:      bytes,
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		ErrHits:    s.errHits.Load(),
		Evictions:  s.evictions.Load(),
		SingleWait: s.singleWait.Load(),
	}
}
