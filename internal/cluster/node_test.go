// End-to-end test of the real cluster tier: two in-process serve services
// wired through the HTTP/JSON transport over httptest servers — the same
// path `adaptivetc-serve -peers` runs, minus the TCP listener setup.
package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"adaptivetc/internal/serve"
)

type testNode struct {
	svc  *serve.Service
	node *Node
	url  string
}

// startCluster brings up fully-peered nodes, one per service config.
func startCluster(t *testing.T, configs []serve.Config, ccfg Config) []*testNode {
	t.Helper()
	nodes := make([]*testNode, len(configs))
	muxes := make([]*http.ServeMux, len(configs))
	for i, c := range configs {
		svc := serve.New(c)
		mux := serve.NewMux(svc)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{svc: svc, url: srv.URL}
		muxes[i] = mux
	}
	for i, tn := range nodes {
		cfg := ccfg
		cfg.Self = tn.url
		for j, peer := range nodes {
			if j != i {
				cfg.Peers = append(cfg.Peers, peer.url)
			}
		}
		tn.node = NewNode(cfg, tn.svc, nil)
		Mount(muxes[i], tn.node)
		tn.node.Start()
		t.Cleanup(tn.node.Stop)
		t.Cleanup(tn.svc.Close)
	}
	return nodes
}

// waitDone polls a job on its owning service until terminal.
func waitDone(t *testing.T, svc *serve.Service, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := svc.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		st, _, err := j.Snapshot()
		switch st {
		case serve.StateDone:
			return
		case serve.StateFailed, serve.StateCancelled:
			t.Fatalf("job %s ended %s: %v", id, st, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
}

// TestTwoNodeForwarding pins the tentpole's real-transport path: skewed
// load at node A must spill to node B via the forward/steal plane, every
// job must complete on the client-visible record at A, and the gauges
// must return to zero once the burst settles.
func TestTwoNodeForwarding(t *testing.T) {
	nodes := startCluster(t,
		[]serve.Config{
			{Workers: 1, QueueCapacity: 4},
			{Workers: 2, QueueCapacity: 32},
		},
		Config{GossipInterval: 5 * time.Millisecond, ForwardThreshold: 2, Batch: 4})
	a, b := nodes[0], nodes[1]

	// Wait for the first gossip exchange: forward-on-full needs a load
	// view of B before it can route around a full backlog.
	viewDeadline := time.Now().Add(5 * time.Second)
	for len(a.node.peerViews()) == 0 {
		if time.Now().After(viewDeadline) {
			t.Fatalf("node A never learned node B's load")
		}
		time.Sleep(time.Millisecond)
	}

	// A long blocker pins A's lone worker, then a burst piles up behind it.
	blocker, err := a.svc.Submit(serve.Request{Program: "nqueens-array", N: 11, TimeoutMS: 30000})
	if err != nil {
		t.Fatalf("blocker: %v", err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		j, err := a.svc.Submit(serve.Request{Program: "fib", N: 14, Tenant: "burst", TimeoutMS: 30000})
		if err != nil {
			t.Fatalf("burst %d: %v (forward-on-full should have absorbed this)", i, err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitDone(t, a.svc, id)
	}
	waitDone(t, a.svc, blocker.ID)

	ma, mb := a.svc.Snapshot(), b.svc.Snapshot()
	if ma.ForwardedOut == 0 {
		t.Errorf("node A forwarded nothing; A=%+v cluster=%+v", ma, a.node.Snapshot())
	}
	if mb.ForwardedIn == 0 || mb.Completed == 0 {
		t.Errorf("node B forwarded_in=%d completed=%d, want both > 0", mb.ForwardedIn, mb.Completed)
	}
	if ma.ForwardedNow != 0 {
		t.Errorf("node A still has %d forwards pending after all jobs settled", ma.ForwardedNow)
	}
}

// TestClusterStatsEndpoint smoke-checks the mounted endpoints a peer (and
// the CI smoke script) relies on.
func TestClusterStatsEndpoint(t *testing.T) {
	nodes := startCluster(t,
		[]serve.Config{{Workers: 1, QueueCapacity: 4}, {Workers: 1, QueueCapacity: 4}},
		Config{GossipInterval: 5 * time.Millisecond})
	tr := NewHTTPTransport(0)
	rep, err := tr.Load(t.Context(), nodes[0].url)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rep.Node != nodes[0].url {
		t.Errorf("load report identifies %q, want %q", rep.Node, nodes[0].url)
	}
	resp, err := http.Get(nodes[1].url + "/cluster/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stats returned %d", resp.StatusCode)
	}
}
