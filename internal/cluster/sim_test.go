// Tests for the deterministic cluster model: byte-identical replay under
// every network-fault scenario, the partition-heal pin, and the basic
// rebalancing claim (a skewed cluster finishes faster than one node
// alone).
package cluster

import (
	"reflect"
	"testing"

	"adaptivetc/internal/faults"
)

// skewedJobs sends 80% of count jobs to node 0 and spreads the rest, at
// an aggregate rate of 4 jobs per service time.
func skewedJobs(nodes, count int, svcNS int64) []SimJob {
	jobs := make([]SimJob, count)
	for i := range jobs {
		node := 0
		if i%5 == 4 && nodes > 1 {
			node = 1 + (i/5)%(nodes-1)
		}
		jobs[i] = SimJob{ID: i, Node: node, ArriveNS: int64(i) * svcNS / 4, ServiceNS: svcNS, Value: int64(100 + i)}
	}
	return jobs
}

// TestSimDeterminism runs every network-fault scenario (and the fault-free
// baseline) twice with identical seeds and requires byte-identical event
// logs, complete job delivery, and zero invariant violations.
func TestSimDeterminism(t *testing.T) {
	scenarios := append([]string{""}, faults.NetScenarios()...)
	for _, scen := range scenarios {
		for _, nodes := range []int{2, 3} {
			name := scen
			if name == "" {
				name = "no-faults"
			}
			run := func(seed int64) *SimReport {
				cfg := SimConfig{Nodes: nodes, Seed: seed}
				if scen != "" {
					spec, err := faults.Scenario(scen, seed)
					if err != nil {
						t.Fatalf("%s: %v", scen, err)
					}
					cfg.Faults = faults.New(spec) // fresh plan: streams are stateful
				}
				rep, err := RunSim(cfg, skewedJobs(nodes, 30, 400_000))
				if err != nil {
					t.Fatalf("%s/n%d: %v", name, nodes, err)
				}
				return rep
			}
			a, b := run(7), run(7)
			if !reflect.DeepEqual(a.Events, b.Events) {
				t.Errorf("%s/n%d: identically-seeded runs diverged (%d vs %d events)", name, nodes, len(a.Events), len(b.Events))
			}
			if len(a.Violations) > 0 {
				t.Errorf("%s/n%d: violations: %v", name, nodes, a.Violations)
			}
			if a.Completed != 30 {
				t.Errorf("%s/n%d: %d of 30 jobs completed", name, nodes, a.Completed)
			}
			for id, v := range a.Values {
				if v != int64(100+id) {
					t.Errorf("%s/n%d: job %d completed with value %d, want %d", name, nodes, id, v, 100+id)
				}
			}
			// A different seed must actually change the schedule — otherwise
			// the determinism check above proves nothing.
			if c := run(8); reflect.DeepEqual(a.Events, c.Events) && scen != "" {
				t.Errorf("%s/n%d: seeds 7 and 8 produced identical logs — streams not keyed on seed", name, nodes)
			}
		}
	}
}

// TestSimRebalancing is the load-balancing claim in miniature: with every
// job arriving at node 0 of a 2-node cluster, forwarding/stealing must put
// the idle node to work and beat the single-node makespan.
func TestSimRebalancing(t *testing.T) {
	const svc = 500_000
	jobs := make([]SimJob, 20)
	for i := range jobs {
		jobs[i] = SimJob{ID: i, Node: 0, ArriveNS: 0, ServiceNS: svc, Value: 1}
	}
	solo, err := RunSim(SimConfig{Nodes: 1, Seed: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	duo, err := RunSim(SimConfig{Nodes: 2, Seed: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(duo.Violations) > 0 {
		t.Fatalf("violations: %v", duo.Violations)
	}
	if duo.PerNode[1].Completed == 0 {
		t.Fatalf("node 1 completed nothing — rebalancing never fired")
	}
	if duo.MakespanNS >= solo.MakespanNS {
		t.Fatalf("2-node makespan %d not better than single-node %d", duo.MakespanNS, solo.MakespanNS)
	}
}

// TestSimPartitionHeal is the partition-heal pin: node 0 starts isolated
// with the whole backlog. While partitioned nothing crosses the network
// (its gossip, forwards and acks all drop), yet local execution continues;
// once the partition lifts the backlog spreads, the idle node does real
// work, and every job completes with zero invariant violations.
func TestSimPartitionHeal(t *testing.T) {
	const svc = 1_000_000
	const heal = 10_000_000
	jobs := make([]SimJob, 30)
	for i := range jobs {
		jobs[i] = SimJob{ID: i, Node: 0, ArriveNS: 0, ServiceNS: svc, Value: int64(i)}
	}
	rep, err := RunSim(SimConfig{
		Nodes:      2,
		Seed:       11,
		Partitions: []PartitionWindow{{Node: 0, StartNS: 0, EndNS: heal}},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations after heal: %v", rep.Violations)
	}
	if rep.Completed != len(jobs) {
		t.Fatalf("%d of %d jobs completed", rep.Completed, len(jobs))
	}
	if rep.PerNode[1].Completed == 0 {
		t.Fatalf("node 1 completed nothing after the partition lifted")
	}
	for _, ev := range rep.Events {
		// Nothing may cross the network into node 1 during the window, and
		// node 1 only ever completes work it received after the heal.
		if ev.T < heal && ev.Node == 1 && (ev.Kind == "deliver" || ev.Kind == "complete") {
			t.Fatalf("node 1 saw %q for job %d at t=%d, inside the partition window", ev.Kind, ev.Job, ev.T)
		}
	}
	// The run must not have been solved by node 0 alone before the heal:
	// at 1ms per job and a 10ms window, at most ~10 of 30 finish early.
	early := 0
	for _, ev := range rep.Events {
		if ev.Kind == "complete" && ev.T < heal {
			early++
		}
	}
	if early >= len(jobs) {
		t.Fatalf("all %d jobs finished inside the partition window — the pin tests nothing", early)
	}
}

// TestSimInputValidation rejects malformed job sets instead of producing
// silently-wrong runs.
func TestSimInputValidation(t *testing.T) {
	if _, err := RunSim(SimConfig{Nodes: 0}, nil); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := RunSim(SimConfig{Nodes: 2}, []SimJob{{ID: 1, Node: 5}}); err == nil {
		t.Error("out-of-range arrival node accepted")
	}
	if _, err := RunSim(SimConfig{Nodes: 2}, []SimJob{{ID: 1}, {ID: 1}}); err == nil {
		t.Error("duplicate job id accepted")
	}
}
