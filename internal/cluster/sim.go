// The deterministic cluster model: an N-node cluster as a single-goroutine
// discrete-event simulation with virtual network costs, mirroring how
// internal/vtime charges virtual CPU costs. Nothing here touches
// serve.Service or goroutines — determinism on a 1-core host needs one
// event loop and one totally ordered clock.
//
// The model keeps the real tier's semantics at the protocol level:
//
//   - Each node is a FIFO backlog plus one executor (the pool's staging
//     depth); a job's service time is precomputed by the caller (the
//     deterministic makespan of a Sim-platform engine run), so "executing"
//     is occupying the node for ServiceNS and yielding Value.
//   - Load exchange, forwarding and stealing are messages with a virtual
//     latency: base + seeded per-link jitter + any injected delay spike.
//     Per-link fault streams (drop/delay/duplicate) and per-node partition
//     streams come from the same internal/faults Plan the process-level
//     chaos campaigns use.
//   - Forwarding is at-least-once: the sender holds the job until the ack
//     arrives, requeues it locally on timeout, and the receiver dedupes on
//     the forward token. A lost ack can therefore execute a job twice —
//     counted as a duplicate, never as a lost job. Remote steal asks the
//     victim to forward to the thief, exactly like the real tier.
//
// Every decision draws from splitmix64 streams keyed (seed, role, slot),
// and events are ordered by (virtual time, sequence number), so the full
// event log — and with it the whole run — is a pure function of the
// config. Chaos replay compares logs with reflect.DeepEqual.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"

	"adaptivetc/internal/faults"
)

// SimConfig configures one deterministic cluster run.
type SimConfig struct {
	// Nodes is the cluster size (≥ 1).
	Nodes int
	// Seed keys every stream (jitter and faults); zero means 1.
	Seed int64
	// BaseLatencyNS is the fixed one-way message cost. Zero means 200µs.
	BaseLatencyNS int64
	// JitterNS bounds the uniform per-message jitter added to the base
	// cost, drawn from the link's seeded stream. Zero means 50µs.
	JitterNS int64
	// GossipEveryNS is the virtual interval between decision ticks (load
	// exchange, rebalance, steal). Zero means 1ms.
	GossipEveryNS int64
	// AckTimeoutNS is how long a forwarder waits for the ack before
	// requeueing the job locally. Zero means 4× (base latency + jitter) +
	// gossip interval.
	AckTimeoutNS int64
	// ForwardThreshold is the minimum load gap before shedding. Zero
	// means 4.
	ForwardThreshold int
	// Batch bounds jobs moved per decision. Zero means 4.
	Batch int
	// StealMinScore is the minimum victim load worth stealing from. Zero
	// means 2.
	StealMinScore int
	// MaxHops bounds how many times one job may be forwarded (ping-pong
	// guard). Zero means 3.
	MaxHops int
	// Faults, when non-nil, injects network faults: Link streams for
	// drop/delay/duplicate keyed src*Nodes+dst, Partitioner streams probed
	// once per node per gossip tick. Process-level roles are ignored here.
	Faults *faults.Plan
	// Partitions are explicit isolation windows (virtual time), on top of
	// any fault-injected ones — the partition-heal pin test scripts these.
	Partitions []PartitionWindow
}

// PartitionWindow isolates Node from the network in [StartNS, EndNS).
type PartitionWindow struct {
	Node    int
	StartNS int64
	EndNS   int64
}

// SimJob is one job offered to the cluster.
type SimJob struct {
	// ID must be unique across the run.
	ID int
	// Node is the arrival node.
	Node int
	// ArriveNS is the arrival time.
	ArriveNS int64
	// ServiceNS is the deterministic execution cost (a Sim-engine
	// makespan, precomputed by the caller).
	ServiceNS int64
	// Value is the job's result, checked against the oracle by callers.
	Value int64
}

// SimEvent is one entry of the deterministic event log.
type SimEvent struct {
	T    int64  // virtual time
	Kind string // arrive|start|complete|dup-complete|gossip|forward|deliver|drop|dup|ack|timeout|requeue|steal|partition|heal
	Node int    // acting node
	Job  int    // job id, -1 when not job-scoped
	Peer int    // peer node, -1 when not message-scoped
}

// SimNodeStats is one node's counters.
type SimNodeStats struct {
	Arrived      int   `json:"arrived"`
	Completed    int   `json:"completed"` // first completions recorded here
	Duplicates   int   `json:"duplicates"`
	ForwardedOut int   `json:"forwarded_out"`
	ForwardedIn  int   `json:"forwarded_in"`
	StealsServed int   `json:"steals_served"`
	Requeues     int   `json:"requeues"`
	BusyNS       int64 `json:"busy_ns"`
}

// SimReport is the outcome of one run.
type SimReport struct {
	// Events is the full deterministic log; replay compares it.
	Events []SimEvent
	// Completed is the number of distinct jobs that completed at least
	// once; Duplicates counts extra executions from lost acks.
	Completed  int
	Duplicates int
	// Values maps job id → the value of its first completion.
	Values map[int]int64
	// SojournNS maps job id → first-completion time minus arrival.
	SojournNS map[int]int64
	// MakespanNS is the virtual time of the last event.
	MakespanNS int64
	// PerNode are the per-node counters.
	PerNode []SimNodeStats
	// Drops/Delays/Dups count injected network faults that fired.
	Drops, Delays, Dups int
	// Violations lists invariant breaches (empty on a healthy run).
	Violations []string
}

// --- event plumbing ---

type evKind int

const (
	evArrive evKind = iota
	evComplete
	evTick
	evDeliver
	evAckTimeout
)

type simMsgKind int

const (
	mGossip simMsgKind = iota
	mForward
	mAck
	mSteal
)

type simMsg struct {
	kind     simMsgKind
	from, to int
	load     int     // mGossip
	job      *simJob // mForward
	token    string  // mForward/mAck
	max      int     // mSteal
	thief    int     // mSteal
}

type simEvent struct {
	t    int64
	seq  int64
	kind evKind
	node int     // evComplete/evAckTimeout owner
	job  *simJob // evArrive
	msg  *simMsg // evDeliver
	tok  string  // evAckTimeout
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// simJob is the in-flight mutable view of a SimJob.
type simJob struct {
	SimJob
	hops int
}

type pendingFwd struct {
	job  *simJob
	to   int
	done bool // acked or already requeued
}

type simNode struct {
	id        int
	queue     []*simJob
	running   *simJob
	known     []int // last gossiped peer load, -1 unknown
	partUntil int64
	pending   map[string]*pendingFwd
	seen      map[string]bool // inbound forward tokens (dedupe)
	stats     SimNodeStats
}

func (n *simNode) load() int {
	l := len(n.queue)
	if n.running != nil {
		l++
	}
	return l
}

// splitmix64 for the jitter streams (fault streams live in the Plan).
type rng struct{ state uint64 }

func newRNG(seed int64, role, slot int) *rng {
	z := uint64(seed) ^ (uint64(role) << 32) ^ (uint64(slot+1) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return &rng{state: z ^ (z >> 31)}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sim is one run's full state.
type sim struct {
	cfg    SimConfig
	nodes  []*simNode
	heap   eventHeap
	seq    int64
	now    int64
	report SimReport

	jitter []*rng             // per directed link
	links  []*faults.Injector // per directed link, nil when no message faults
	parts  []*faults.Injector // per node, nil when no partition faults

	total     int // jobs offered
	completed int // distinct first completions
	tokenSeq  int
}

// RunSim executes one deterministic cluster run.
func RunSim(cfg SimConfig, jobs []SimJob) (*SimReport, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: sim needs ≥ 1 node, got %d", cfg.Nodes)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BaseLatencyNS <= 0 {
		cfg.BaseLatencyNS = 200_000
	}
	if cfg.JitterNS <= 0 {
		cfg.JitterNS = 50_000
	}
	if cfg.GossipEveryNS <= 0 {
		cfg.GossipEveryNS = 1_000_000
	}
	if cfg.AckTimeoutNS <= 0 {
		cfg.AckTimeoutNS = 4*(cfg.BaseLatencyNS+cfg.JitterNS) + cfg.GossipEveryNS
	}
	if cfg.ForwardThreshold <= 0 {
		cfg.ForwardThreshold = 4
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 4
	}
	if cfg.StealMinScore <= 0 {
		cfg.StealMinScore = 2
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 3
	}

	s := &sim{cfg: cfg, total: len(jobs)}
	s.report.Values = make(map[int]int64, len(jobs))
	s.report.SojournNS = make(map[int]int64, len(jobs))
	nn := cfg.Nodes
	s.nodes = make([]*simNode, nn)
	for i := range s.nodes {
		s.nodes[i] = &simNode{
			id:      i,
			known:   make([]int, nn),
			pending: make(map[string]*pendingFwd),
			seen:    make(map[string]bool),
		}
		for j := range s.nodes[i].known {
			s.nodes[i].known[j] = -1
		}
	}
	s.jitter = make([]*rng, nn*nn)
	s.links = make([]*faults.Injector, nn*nn)
	s.parts = make([]*faults.Injector, nn)
	const jitterRole = 0x7C15
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			l := src*nn + dst
			s.jitter[l] = newRNG(cfg.Seed, jitterRole, l)
			s.links[l] = cfg.Faults.Link(l)
		}
		s.parts[src] = cfg.Faults.Partitioner(src)
	}

	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if j.Node < 0 || j.Node >= nn {
			return nil, fmt.Errorf("cluster: job %d arrives at node %d of %d", j.ID, j.Node, nn)
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("cluster: duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
		jj := &simJob{SimJob: j}
		s.schedule(j.ArriveNS, &simEvent{kind: evArrive, node: j.Node, job: jj})
	}
	if len(jobs) > 0 {
		s.schedule(cfg.GossipEveryNS, &simEvent{kind: evTick})
	}

	for s.heap.Len() > 0 {
		e := heap.Pop(&s.heap).(*simEvent)
		s.now = e.t
		switch e.kind {
		case evArrive:
			s.onArrive(e.node, e.job)
		case evComplete:
			s.onComplete(e.node)
		case evTick:
			s.onTick()
		case evDeliver:
			s.onDeliver(e.msg)
		case evAckTimeout:
			s.onAckTimeout(e.node, e.tok)
		}
	}

	s.report.MakespanNS = s.now
	s.report.Completed = s.completed
	s.report.PerNode = make([]SimNodeStats, nn)
	for i, n := range s.nodes {
		s.report.PerNode[i] = n.stats
		if len(n.queue) > 0 || n.running != nil {
			s.report.Violations = append(s.report.Violations,
				fmt.Sprintf("node %d ended with work: queue=%d running=%v", i, len(n.queue), n.running != nil))
		}
		for tok, p := range n.pending {
			if !p.done {
				s.report.Violations = append(s.report.Violations,
					fmt.Sprintf("node %d ended with pending forward %s", i, tok))
			}
		}
	}
	if s.completed != s.total {
		s.report.Violations = append(s.report.Violations,
			fmt.Sprintf("%d of %d jobs never completed", s.total-s.completed, s.total))
	}
	sort.Strings(s.report.Violations)
	return &s.report, nil
}

func (s *sim) schedule(t int64, e *simEvent) {
	if t < s.now {
		t = s.now
	}
	e.t = t
	e.seq = s.seq
	s.seq++
	heap.Push(&s.heap, e)
}

func (s *sim) log(kind string, node, job, peer int) {
	s.report.Events = append(s.report.Events, SimEvent{T: s.now, Kind: kind, Node: node, Job: job, Peer: peer})
}

func (s *sim) partitioned(node int) bool {
	n := s.nodes[node]
	if n.partUntil > s.now {
		return true
	}
	for _, w := range s.cfg.Partitions {
		if w.Node == node && s.now >= w.StartNS && s.now < w.EndNS {
			return true
		}
	}
	return false
}

// send models one message: partition and drop checks at send time, fault
// and jitter draws from the directed link's streams, optional duplicate
// delivery. Receiver-side partition is re-checked at delivery.
func (s *sim) send(m *simMsg) {
	job := -1
	if m.job != nil {
		job = m.job.ID
	}
	if s.partitioned(m.from) || s.partitioned(m.to) {
		s.log("drop", m.from, job, m.to)
		return
	}
	l := m.from*s.cfg.Nodes + m.to
	if in := s.links[l]; in != nil {
		if in.DropMessage() {
			s.report.Drops++
			s.log("drop", m.from, job, m.to)
			return
		}
	}
	lat := s.cfg.BaseLatencyNS + int64(s.jitter[l].next()%uint64(s.cfg.JitterNS))
	copies := 1
	if in := s.links[l]; in != nil {
		if d := in.ExtraDelayNS(); d > 0 {
			s.report.Delays++
			lat += d
		}
		if in.DuplicateMessage() {
			s.report.Dups++
			copies = 2
			s.log("dup", m.from, job, m.to)
		}
	}
	for c := 0; c < copies; c++ {
		s.schedule(s.now+lat, &simEvent{kind: evDeliver, msg: m})
	}
}

func (s *sim) onArrive(node int, j *simJob) {
	n := s.nodes[node]
	n.stats.Arrived++
	s.log("arrive", node, j.ID, -1)
	s.enqueue(n, j)
}

func (s *sim) enqueue(n *simNode, j *simJob) {
	n.queue = append(n.queue, j)
	s.maybeStart(n)
}

func (s *sim) maybeStart(n *simNode) {
	if n.running != nil || len(n.queue) == 0 {
		return
	}
	j := n.queue[0]
	n.queue = n.queue[1:]
	n.running = j
	n.stats.BusyNS += j.ServiceNS
	s.log("start", n.id, j.ID, -1)
	s.schedule(s.now+j.ServiceNS, &simEvent{kind: evComplete, node: n.id})
}

func (s *sim) onComplete(node int) {
	n := s.nodes[node]
	j := n.running
	n.running = nil
	if _, done := s.report.Values[j.ID]; done {
		s.report.Duplicates++
		n.stats.Duplicates++
		s.log("dup-complete", node, j.ID, -1)
	} else {
		s.report.Values[j.ID] = j.Value
		s.report.SojournNS[j.ID] = s.now - j.ArriveNS
		s.completed++
		n.stats.Completed++
		s.log("complete", node, j.ID, -1)
	}
	s.maybeStart(n)
}

// onTick is the global decision tick: probe injected partitions, exchange
// load, rebalance hot→cold, steal cold←hot. Nodes act in id order, which
// fixes the draw order and keeps the run deterministic.
func (s *sim) onTick() {
	for _, n := range s.nodes {
		if in := s.parts[n.id]; in != nil {
			if d := in.PartitionNS(); d > 0 && n.partUntil <= s.now {
				n.partUntil = s.now + d
				s.log("partition", n.id, -1, -1)
			}
		}
	}
	// Load exchange: every node gossips its score to every peer.
	for _, n := range s.nodes {
		for p := range s.nodes {
			if p == n.id {
				continue
			}
			s.send(&simMsg{kind: mGossip, from: n.id, to: p, load: n.load()})
		}
	}
	s.log("gossip", -1, -1, -1)
	// Rebalance: hot nodes shed queue-tail jobs to the coldest known peer.
	for _, n := range s.nodes {
		cold, coldLoad := -1, -1
		for p, l := range n.known {
			if p == n.id || l < 0 {
				continue
			}
			if coldLoad < 0 || l < coldLoad {
				cold, coldLoad = p, l
			}
		}
		if cold < 0 {
			continue
		}
		gap := n.load() - coldLoad
		if gap < s.cfg.ForwardThreshold {
			continue
		}
		shed := gap / 2
		if shed > s.cfg.Batch {
			shed = s.cfg.Batch
		}
		s.shed(n, cold, shed)
	}
	// Steal: idle nodes ask the hottest known peer to forward work.
	for _, n := range s.nodes {
		if n.load() != 0 {
			continue
		}
		hot, hotLoad := -1, -1
		for p, l := range n.known {
			if p == n.id {
				continue
			}
			if l > hotLoad {
				hot, hotLoad = p, l
			}
		}
		if hot < 0 || hotLoad < s.cfg.StealMinScore {
			continue
		}
		s.log("steal", n.id, -1, hot)
		s.send(&simMsg{kind: mSteal, from: n.id, to: hot, thief: n.id, max: s.cfg.Batch})
	}
	// Keep ticking while any work is outstanding anywhere.
	if s.completed < s.total {
		s.schedule(s.now+s.cfg.GossipEveryNS, &simEvent{kind: evTick})
	}
}

// shed forwards up to max queue-tail jobs from n to peer with ack
// tracking. Jobs at their hop limit stay put.
func (s *sim) shed(n *simNode, peer, max int) {
	for i := 0; i < max && len(n.queue) > 0; i++ {
		j := n.queue[len(n.queue)-1]
		if j.hops >= s.cfg.MaxHops {
			return
		}
		n.queue = n.queue[:len(n.queue)-1]
		j.hops++
		s.tokenSeq++
		tok := fmt.Sprintf("n%d-j%d-t%d", n.id, j.ID, s.tokenSeq)
		n.pending[tok] = &pendingFwd{job: j, to: peer}
		n.stats.ForwardedOut++
		s.log("forward", n.id, j.ID, peer)
		s.send(&simMsg{kind: mForward, from: n.id, to: peer, job: j, token: tok})
		s.schedule(s.now+s.cfg.AckTimeoutNS, &simEvent{kind: evAckTimeout, node: n.id, tok: tok})
	}
}

func (s *sim) onDeliver(m *simMsg) {
	if s.partitioned(m.to) {
		job := -1
		if m.job != nil {
			job = m.job.ID
		}
		s.log("drop", m.from, job, m.to)
		return
	}
	n := s.nodes[m.to]
	switch m.kind {
	case mGossip:
		n.known[m.from] = m.load
	case mForward:
		// Ack duplicates too: the sender's retry must converge even when
		// the first ack was lost.
		if !n.seen[m.token] {
			n.seen[m.token] = true
			n.stats.ForwardedIn++
			s.log("deliver", m.to, m.job.ID, m.from)
			s.enqueue(n, m.job)
		}
		s.send(&simMsg{kind: mAck, from: m.to, to: m.from, token: m.token})
	case mAck:
		if p, ok := n.pending[m.token]; ok && !p.done {
			p.done = true
			s.log("ack", m.to, p.job.ID, m.from)
		}
	case mSteal:
		served := len(n.queue)
		if served > m.max {
			served = m.max
		}
		if served > 0 {
			n.stats.StealsServed++
			s.shed(n, m.thief, served)
		}
	}
}

// onAckTimeout requeues a forwarded job whose ack never arrived. The
// forward may still have been delivered — that is the at-least-once
// hazard the dedupe and duplicate accounting absorb.
func (s *sim) onAckTimeout(node int, tok string) {
	n := s.nodes[node]
	p, ok := n.pending[tok]
	if !ok || p.done {
		return
	}
	p.done = true
	n.stats.Requeues++
	s.log("requeue", node, p.job.ID, p.to)
	s.enqueue(n, p.job)
}
