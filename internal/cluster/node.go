// The real-transport cluster node: three periodic loops (gossip pull,
// hot-side rebalance, idle-side steal) plus the synchronous
// forward-on-full hook installed into the service's Submit path.
//
// Decision rules (DESIGN.md §15):
//
//   - Forward (push) when this node is hot: LoadScore - coldest peer's
//     score >= ForwardThreshold. The hot node sheds the *tail* of its
//     backlog (serve.ExtractQueued takes reverse service order), at most
//     Batch jobs per tick, and only to a peer it has a fresh load view of.
//   - Steal (pull) when this node is idle: LoadScore == 0 and some peer's
//     score >= StealMinScore. The thief asks; the victim extracts and
//     forwards through the same path, so dedupe and accounting are shared.
//   - Forward-on-full: a client submission that misses the local capacity
//     bound goes to the least-loaded non-draining peer whose score is
//     below this node's, before the client ever sees a 429.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/serve"
)

// Config configures a Node.
type Config struct {
	// Self is this node's advertised base URL (peers reach it there).
	Self string
	// Peers are the other nodes' base URLs.
	Peers []string
	// GossipInterval paces the load-exchange, rebalance and steal loops.
	// Zero means 100ms.
	GossipInterval time.Duration
	// ForwardThreshold is the minimum load-score gap (self − coldest peer)
	// before the rebalance loop sheds work. Zero means 4.
	ForwardThreshold int
	// Batch bounds jobs moved per rebalance tick or steal request. Zero
	// means 4.
	Batch int
	// StealMinScore is the minimum victim score worth a steal request.
	// Zero means 2.
	StealMinScore int
	// RPCTimeout bounds job-placement calls (forward, steal). Zero means
	// 1s. Deliberately independent of GossipInterval: gossip can run at
	// millisecond cadence with stale views being harmless, but a
	// placement call racing CPU-saturated workers needs real headroom.
	RPCTimeout time.Duration
}

func (c Config) gossipInterval() time.Duration {
	if c.GossipInterval <= 0 {
		return 100 * time.Millisecond
	}
	return c.GossipInterval
}

func (c Config) forwardThreshold() int {
	if c.ForwardThreshold <= 0 {
		return 4
	}
	return c.ForwardThreshold
}

func (c Config) batch() int {
	if c.Batch <= 0 {
		return 4
	}
	return c.Batch
}

func (c Config) stealMinScore() int {
	if c.StealMinScore <= 0 {
		return 2
	}
	return c.StealMinScore
}

func (c Config) rpcTimeout() time.Duration {
	if c.RPCTimeout <= 0 {
		return time.Second
	}
	return c.RPCTimeout
}

// peerView is the last load report received from one peer.
type peerView struct {
	report LoadReport
	at     time.Time
	ok     bool
}

// Node ties one serve.Service into a cluster.
type Node struct {
	cfg Config
	svc *serve.Service
	tr  Transport

	quit chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	peers map[string]peerView

	// Dedupe of inbound forwards: token → local job id, bounded FIFO.
	dedupeMu  sync.Mutex
	dedupe    map[string]string
	dedupeLog []string

	gossipOK      atomic.Int64
	gossipFail    atomic.Int64
	rebalancedOut atomic.Int64 // jobs shed by the rebalance loop
	stealRequests atomic.Int64 // steal requests this node sent
	stealMoved    atomic.Int64 // jobs received through those requests
	stealServed   atomic.Int64 // jobs shed when peers stole from us
	forwardFailed atomic.Int64 // forward attempts no peer accepted
}

// NewNode builds a cluster node around svc. tr nil means the HTTP
// transport. Call Start to join the cluster.
func NewNode(cfg Config, svc *serve.Service, tr Transport) *Node {
	if tr == nil {
		tr = NewHTTPTransport(0)
	}
	n := &Node{
		cfg:    cfg,
		svc:    svc,
		tr:     tr,
		quit:   make(chan struct{}),
		peers:  make(map[string]peerView, len(cfg.Peers)),
		dedupe: make(map[string]string),
	}
	return n
}

// Service returns the node's service.
func (n *Node) Service() *serve.Service { return n.svc }

// Start installs the forward-on-full hook and launches the gossip,
// rebalance and steal loops.
func (n *Node) Start() {
	n.svc.SetForwarder(n.forwardOnFull)
	n.wg.Add(3)
	go n.gossipLoop()
	go n.rebalanceLoop()
	go n.stealLoop()
}

// Stop uninstalls the hook and stops the loops. In-flight remote watchers
// belong to the service and settle through its own drain/close.
func (n *Node) Stop() {
	n.svc.SetForwarder(nil)
	close(n.quit)
	n.wg.Wait()
}

// gossipLoop pulls every peer's load view each interval. Pull keeps the
// protocol one-directional and trivially idempotent: a node that misses a
// round just serves a slightly stale view.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.gossipInterval())
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-tick.C:
		}
		for _, peer := range n.cfg.Peers {
			// rpcTimeout, not the gossip interval: at millisecond cadence on
			// a saturated host a single slow round would mark a healthy peer
			// unusable exactly when forward-on-full needs it. A tick that
			// overruns just delays the next round (NewTicker drops ticks).
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.rpcTimeout())
			r, err := n.tr.Load(ctx, peer)
			cancel()
			n.mu.Lock()
			if err != nil {
				n.gossipFail.Add(1)
				// Keep the stale report but mark it unusable; a partitioned
				// peer must not keep attracting forwards on old numbers.
				v := n.peers[peer]
				v.ok = false
				n.peers[peer] = v
			} else {
				n.gossipOK.Add(1)
				n.peers[peer] = peerView{report: r, at: time.Now(), ok: true}
			}
			n.mu.Unlock()
		}
	}
}

// peerViews returns the usable peer reports, sorted by ascending score
// with the peer URL as deterministic tie-break.
func (n *Node) peerViews() []peerView {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]peerView, 0, len(n.peers))
	for _, v := range n.peers {
		if v.ok && !v.report.Draining {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].report.Score != out[j].report.Score {
			return out[i].report.Score < out[j].report.Score
		}
		return out[i].report.Node < out[j].report.Node
	})
	return out
}

// rebalanceLoop sheds queued work while this node is hot relative to the
// coldest peer.
func (n *Node) rebalanceLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.gossipInterval())
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-tick.C:
		}
		views := n.peerViews()
		if len(views) == 0 {
			continue
		}
		cold := views[0]
		gap := n.svc.LoadScore() - cold.report.Score
		if gap < n.cfg.forwardThreshold() {
			continue
		}
		// Shed at most half the gap: moving more would just invert it.
		shed := gap / 2
		if b := n.cfg.batch(); shed > b {
			shed = b
		}
		for _, rj := range n.svc.ExtractQueued(shed) {
			if n.forwardRemoteJob(rj, cold.report.Node) {
				n.rebalancedOut.Add(1)
			}
		}
	}
}

// stealLoop pulls work while this node is idle and some peer is backed up.
func (n *Node) stealLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.gossipInterval())
	defer tick.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-tick.C:
		}
		if n.svc.LoadScore() > 0 || !n.svc.Ready() {
			continue
		}
		views := n.peerViews()
		if len(views) == 0 {
			continue
		}
		hot := views[len(views)-1]
		if hot.report.Score < n.cfg.stealMinScore() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.rpcTimeout())
		reply, err := n.tr.Steal(ctx, hot.report.Node, StealRequest{Thief: n.cfg.Self, Max: n.cfg.batch()})
		cancel()
		n.stealRequests.Add(1)
		if err == nil {
			n.stealMoved.Add(int64(reply.Moved))
		}
	}
}

// forwardOnFull is the hook Submit calls on a capacity miss: place the
// request on the least-loaded peer that is measurably colder than us.
func (n *Node) forwardOnFull(req serve.Request) (*serve.Forwarded, error) {
	self := n.svc.LoadScore()
	for _, v := range n.peerViews() {
		if v.report.Score >= self {
			break // sorted ascending: nobody colder remains
		}
		peer := v.report.Node
		fr := ForwardRequest{Req: req, Origin: n.cfg.Self, Token: newToken(n.cfg.Self)}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.rpcTimeout())
		reply, err := n.tr.Forward(ctx, peer, fr)
		cancel()
		if err != nil {
			continue
		}
		return &serve.Forwarded{Node: peer, JobID: reply.JobID, Wait: n.waitRemote(peer, reply.JobID)}, nil
	}
	n.forwardFailed.Add(1)
	return nil, errors.New("cluster: no peer can take the job")
}

// tokenSeq disambiguates forward-on-full tokens, which have no local job
// id yet at send time.
var tokenSeq atomic.Int64

func newToken(self string) string {
	return fmt.Sprintf("%s/onfull-%d", self, tokenSeq.Add(1))
}

// forwardRemoteJob ships one extracted job to peer; on any failure the job
// goes back to the head of its local queue. Reports whether it was placed.
func (n *Node) forwardRemoteJob(rj *serve.RemoteJob, peer string) bool {
	fr := ForwardRequest{
		Req:    rj.Request(),
		Origin: n.cfg.Self,
		Token:  n.cfg.Self + "/" + rj.ID(),
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.rpcTimeout())
	reply, err := n.tr.Forward(ctx, peer, fr)
	cancel()
	if err != nil {
		n.forwardFailed.Add(1)
		rj.Requeue()
		return false
	}
	rj.Placed(peer, reply.JobID, n.waitRemote(peer, reply.JobID))
	return true
}

// waitRemote returns the watcher the service runs for a forwarded job:
// poll the peer until the job is terminal, with exponential poll backoff;
// honour ctx by best-effort cancelling the remote job.
func (n *Node) waitRemote(peer, jobID string) func(ctx context.Context) (sched.Result, error) {
	return func(ctx context.Context) (sched.Result, error) {
		poll := 2 * time.Millisecond
		const maxPoll = 250 * time.Millisecond
		var misses int
		for {
			st, err := n.tr.Status(ctx, peer, jobID)
			switch {
			case err == nil:
				misses = 0
				switch st.State {
				case serve.StateDone, serve.StateFailed, serve.StateCancelled:
					return resultFromStatus(st)
				}
			case ctx.Err() != nil:
				// The local job was cancelled (or the service is closing):
				// tell the peer, then settle with the local cause.
				cctx, cancel := context.WithTimeout(context.Background(), time.Second)
				_ = n.tr.Cancel(cctx, peer, jobID)
				cancel()
				return sched.Result{}, context.Cause(ctx)
			default:
				// Transport error: the peer may be restarting or partitioned.
				// A bounded number of consecutive misses fails the job with
				// an explicit error instead of wedging the record forever.
				misses++
				if misses > 100 {
					return sched.Result{}, fmt.Errorf("cluster: lost contact with %s polling job %s: %w", peer, jobID, err)
				}
			}
			select {
			case <-ctx.Done():
				// Loop once more; the ctx.Err branch settles it.
			case <-time.After(poll):
			}
			if poll < maxPoll {
				poll *= 2
			}
		}
	}
}

// resultFromStatus converts a terminal remote JobStatus into the local
// result/err pair finalize classifies.
func resultFromStatus(st serve.JobStatus) (sched.Result, error) {
	res := sched.Result{Engine: st.Engine, Program: st.Program, Makespan: int64(st.MakespanMS * 1e6)}
	if st.Value != nil {
		res.Value = *st.Value
	}
	if st.Stats != nil {
		res.Stats = *st.Stats
	}
	switch st.State {
	case serve.StateDone:
		return res, nil
	case serve.StateCancelled:
		return res, fmt.Errorf("cluster: remote job cancelled (%s): %w", st.Error, serve.ErrCancelled)
	default:
		return res, fmt.Errorf("cluster: remote job failed: %s", st.Error)
	}
}

// acceptForward is the peer-side inbound path (shared by the HTTP handler):
// dedupe on the token, then admit through SubmitForwarded.
func (n *Node) acceptForward(fr ForwardRequest) (ForwardReply, error) {
	n.dedupeMu.Lock()
	if id, ok := n.dedupe[fr.Token]; ok {
		n.dedupeMu.Unlock()
		return ForwardReply{JobID: id, Dup: true}, nil
	}
	n.dedupeMu.Unlock()
	job, err := n.svc.SubmitForwarded(fr.Req, fr.Origin)
	if err != nil {
		return ForwardReply{}, err
	}
	n.dedupeMu.Lock()
	n.dedupe[fr.Token] = job.ID
	n.dedupeLog = append(n.dedupeLog, fr.Token)
	const dedupeCap = 4096
	for len(n.dedupeLog) > dedupeCap {
		delete(n.dedupe, n.dedupeLog[0])
		n.dedupeLog = n.dedupeLog[1:]
	}
	n.dedupeMu.Unlock()
	return ForwardReply{JobID: job.ID}, nil
}

// serveSteal is the victim-side steal handler: extract and forward to the
// thief through the normal forwarding path.
func (n *Node) serveSteal(req StealRequest) StealReply {
	max := req.Max
	if b := n.cfg.batch(); max <= 0 || max > b {
		max = b
	}
	moved := 0
	for _, rj := range n.svc.ExtractQueued(max) {
		if n.forwardRemoteJob(rj, req.Thief) {
			moved++
		}
	}
	n.stealServed.Add(int64(moved))
	return StealReply{Moved: moved}
}

// loadReport renders this node's gossiped view.
func (n *Node) loadReport() LoadReport {
	m := n.svc.Snapshot()
	return LoadReport{
		Node:         n.cfg.Self,
		Score:        m.LoadScore,
		Busy:         m.BusyWorkers,
		Queue:        m.QueueDepth,
		ForwardedNow: m.ForwardedNow,
		Draining:     m.Draining,
	}
}

// Stats is the node's own counter snapshot (mounted at /cluster/stats).
type Stats struct {
	Self          string         `json:"self"`
	Peers         map[string]any `json:"peers,omitempty"`
	GossipOK      int64          `json:"gossip_ok"`
	GossipFail    int64          `json:"gossip_fail"`
	RebalancedOut int64          `json:"rebalanced_out"`
	StealRequests int64          `json:"steal_requests"`
	StealMoved    int64          `json:"steal_moved"`
	StealServed   int64          `json:"steal_served"`
	ForwardFailed int64          `json:"forward_failed"`
}

// Snapshot returns the node's counters and last known peer views.
func (n *Node) Snapshot() Stats {
	st := Stats{
		Self:          n.cfg.Self,
		GossipOK:      n.gossipOK.Load(),
		GossipFail:    n.gossipFail.Load(),
		RebalancedOut: n.rebalancedOut.Load(),
		StealRequests: n.stealRequests.Load(),
		StealMoved:    n.stealMoved.Load(),
		StealServed:   n.stealServed.Load(),
		ForwardFailed: n.forwardFailed.Load(),
	}
	n.mu.Lock()
	if len(n.peers) > 0 {
		st.Peers = make(map[string]any, len(n.peers))
		for url, v := range n.peers {
			st.Peers[url] = map[string]any{"score": v.report.Score, "ok": v.ok}
		}
	}
	n.mu.Unlock()
	return st
}
