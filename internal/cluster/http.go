// The HTTP/JSON transport and the cluster endpoints mounted on a node's
// service mux:
//
//	GET  /cluster/load     this node's LoadReport (gossip pull)
//	POST /cluster/forward  accept one forwarded job (ForwardRequest →
//	                       ForwardReply; 429 + Retry-After when full, the
//	                       counter lands in forward_rejected, not rejected)
//	POST /cluster/steal    shed up to Max queued jobs to the thief
//	                       (StealRequest → StealReply)
//	GET  /cluster/stats    node counters and peer views (debugging/smoke)
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"adaptivetc/internal/serve"
	"adaptivetc/internal/wsrt"
)

// Mount adds the cluster endpoints to mux.
func Mount(mux *http.ServeMux, n *Node) {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}

	mux.HandleFunc("GET /cluster/load", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, n.loadReport())
	})

	mux.HandleFunc("POST /cluster/forward", func(w http.ResponseWriter, r *http.Request) {
		var fr ForwardRequest
		if err := json.NewDecoder(r.Body).Decode(&fr); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		reply, err := n.acceptForward(fr)
		switch {
		case errors.Is(err, wsrt.ErrQueueFull):
			// This node's own hint; the origin never relays it to a client.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
		case errors.Is(err, serve.ErrDraining), errors.Is(err, wsrt.ErrPoolClosed):
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		case err != nil:
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		default:
			writeJSON(w, http.StatusAccepted, reply)
		}
	})

	mux.HandleFunc("POST /cluster/steal", func(w http.ResponseWriter, r *http.Request) {
		var sr StealRequest
		if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if sr.Thief == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "cluster: steal needs a thief URL"})
			return
		}
		writeJSON(w, http.StatusOK, n.serveSteal(sr))
	})

	mux.HandleFunc("GET /cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, n.Snapshot())
	})
}

// HTTPTransport is the real node-to-node wire: JSON over the peers' serve
// muxes.
type HTTPTransport struct {
	client *http.Client
}

// NewHTTPTransport builds the transport. timeout bounds each call (zero
// means 2s); per-call contexts tighten it further.
func NewHTTPTransport(timeout time.Duration) *HTTPTransport {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &HTTPTransport{client: &http.Client{Timeout: timeout}}
}

// getJSON/postJSON do one call and decode the reply into out.
func (t *HTTPTransport) getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return t.do(req, out)
}

func (t *HTTPTransport) postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return t.do(req, out)
}

func (t *HTTPTransport) do(req *http.Request, out any) error {
	resp, err := t.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("cluster: %s %s: %s: %s", req.Method, req.URL.Path, resp.Status, bytes.TrimSpace(b))
		if resp.StatusCode == http.StatusTooManyRequests {
			return fmt.Errorf("%w: %w", wsrt.ErrQueueFull, err)
		}
		return err
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Load implements Transport.
func (t *HTTPTransport) Load(ctx context.Context, peer string) (LoadReport, error) {
	var r LoadReport
	err := t.getJSON(ctx, peer+"/cluster/load", &r)
	return r, err
}

// Forward implements Transport.
func (t *HTTPTransport) Forward(ctx context.Context, peer string, fr ForwardRequest) (ForwardReply, error) {
	var r ForwardReply
	err := t.postJSON(ctx, peer+"/cluster/forward", fr, &r)
	return r, err
}

// Steal implements Transport.
func (t *HTTPTransport) Steal(ctx context.Context, peer string, sr StealRequest) (StealReply, error) {
	var r StealReply
	err := t.postJSON(ctx, peer+"/cluster/steal", sr, &r)
	return r, err
}

// Status implements Transport.
func (t *HTTPTransport) Status(ctx context.Context, peer, jobID string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := t.getJSON(ctx, peer+"/jobs/"+jobID, &st)
	return st, err
}

// Cancel implements Transport.
func (t *HTTPTransport) Cancel(ctx context.Context, peer, jobID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, peer+"/jobs/"+jobID, nil)
	if err != nil {
		return err
	}
	return t.do(req, nil)
}
