// Package cluster is the multi-node tier: several serve processes forming
// a group that exchanges load views, forwards queued jobs from hot nodes
// to cold ones, and lets an idle node steal from a peer's backlog.
//
// The design follows the intra-node scheduler one level up. A node's
// "deque" is its weighted-fair admission queue; the only work that ever
// moves is queued, not-yet-admitted jobs — still plain serialisable
// requests — so a forward is a serialize-and-resubmit with tenant and
// priority metadata intact, never a mid-run migration. Remote steal is the
// symmetric operation: the thief asks the victim to forward to it, so one
// delivery mechanism (with one dedupe and one accounting contract) serves
// both directions.
//
// Two transports exist. The HTTP/JSON transport (http.go) wires real serve
// processes together via three endpoints mounted on the service mux. The
// Sim transport (sim.go) is a single-goroutine discrete-event model with
// virtual network costs — latency, loss, duplication and partitions drawn
// from internal/faults' seed-keyed streams, mirroring how internal/vtime
// charges virtual CPU costs — so whole-cluster chaos soaks replay
// byte-identically on a 1-core host.
package cluster

import (
	"context"

	"adaptivetc/internal/serve"
)

// LoadReport is one node's gossiped load view.
type LoadReport struct {
	// Node is the reporting node's advertised identity.
	Node string `json:"node"`
	// Score is the comparable load signal: backlog depth + busy workers
	// (serve.Service.LoadScore).
	Score int `json:"score"`
	// Busy is the busy-worker count.
	Busy int64 `json:"busy"`
	// Queue is the admission backlog depth (queued + staged).
	Queue int `json:"queue"`
	// ForwardedNow is the node's pending-forward gauge, so peers can tell
	// a node that already shed its backlog from a genuinely idle one.
	ForwardedNow int64 `json:"forwarded_now"`
	// Draining reports the node refuses new work.
	Draining bool `json:"draining"`
}

// ForwardRequest carries one job to a peer.
type ForwardRequest struct {
	// Req is the original submission, tenant/priority/engine intact.
	Req serve.Request `json:"req"`
	// Origin is the forwarding node's identity, recorded on the remote job.
	Origin string `json:"origin"`
	// Token dedupes redelivery: it is unique per origin job (origin +
	// local job id), so a retried or duplicated forward of the same job
	// resolves to the same remote job instead of running twice.
	Token string `json:"token"`
}

// ForwardReply acknowledges an accepted forward.
type ForwardReply struct {
	// JobID is the job's id on the accepting node.
	JobID string `json:"job_id"`
	// Dup reports the token had been seen before (the reply points at the
	// earlier job).
	Dup bool `json:"dup,omitempty"`
}

// StealRequest asks a victim to shed queued work to the thief.
type StealRequest struct {
	// Thief is the requesting node's identity (a peer URL the victim can
	// forward to).
	Thief string `json:"thief"`
	// Max bounds how many jobs the victim hands over.
	Max int `json:"max"`
}

// StealReply reports the steal outcome.
type StealReply struct {
	// Moved is the number of jobs forwarded to the thief.
	Moved int `json:"moved"`
}

// Transport is the node-to-node wire. Implementations: the HTTP/JSON
// transport (NewHTTPTransport) for real processes, and test fakes. The
// deterministic Sim model does not implement Transport — it cannot: a
// synchronous call interface forces goroutines, and determinism on one
// core needs a single event loop (see sim.go).
type Transport interface {
	// Load fetches peer's current load view.
	Load(ctx context.Context, peer string) (LoadReport, error)
	// Forward places one job on peer.
	Forward(ctx context.Context, peer string, req ForwardRequest) (ForwardReply, error)
	// Steal asks peer to forward up to req.Max queued jobs to req.Thief.
	Steal(ctx context.Context, peer string, req StealRequest) (StealReply, error)
	// Status fetches a remote job's status (polled until terminal).
	Status(ctx context.Context, peer, jobID string) (serve.JobStatus, error)
	// Cancel best-effort cancels a remote job.
	Cancel(ctx context.Context, peer, jobID string) error
}
