package cilk

import (
	"fmt"
	"testing"

	"adaptivetc/internal/sched"
)

// tree is a perfect k-ary tree of the given height; value = leaf count.
type tree struct{ arity, height int }

type treeWS struct {
	depth int
	bytes int
}

func (w *treeWS) Clone() sched.Workspace { c := *w; return &c }
func (w *treeWS) Bytes() int             { return w.bytes }
func (w *treeWS) CopyFrom(src sched.Workspace) {
	*w = *(src.(*treeWS))
}

func (p tree) Name() string          { return fmt.Sprintf("tree(%d,%d)", p.arity, p.height) }
func (p tree) Root() sched.Workspace { return &treeWS{bytes: 64} }
func (p tree) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == p.height {
		return 1, true
	}
	return 0, false
}
func (p tree) Moves(sched.Workspace, int) int { return p.arity }
func (p tree) Apply(w sched.Workspace, depth, m int) bool {
	w.(*treeWS).depth++
	return true
}
func (p tree) Undo(w sched.Workspace, depth, m int) { w.(*treeWS).depth-- }

func leaves(arity, height int) int64 {
	v := int64(1)
	for i := 0; i < height; i++ {
		v *= int64(arity)
	}
	return v
}

func TestValues(t *testing.T) {
	p := tree{arity: 3, height: 7}
	want := leaves(3, 7)
	for _, e := range []*Engine{New(), NewSynched()} {
		for _, workers := range []int{1, 2, 5, 8} {
			res, err := e.Run(p, sched.Options{Workers: workers, Seed: int64(workers)})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != want {
				t.Errorf("%s P=%d: %d, want %d", e.Name(), workers, res.Value, want)
			}
		}
	}
}

func TestEveryNodeIsATask(t *testing.T) {
	p := tree{arity: 2, height: 8}
	res, err := New().Run(p, sched.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := int64(1<<9 - 1) // full binary tree of height 8
	if res.Stats.Nodes != wantNodes {
		t.Fatalf("visited %d nodes, want %d", res.Stats.Nodes, wantNodes)
	}
	if res.Stats.TasksCreated != wantNodes {
		t.Errorf("tasks %d != nodes %d: Cilk must create a task per spawn", res.Stats.TasksCreated, wantNodes)
	}
	// Workspace copied for every spawn = every non-root node.
	if res.Stats.WorkspaceCopies != wantNodes-1 {
		t.Errorf("copies %d, want %d", res.Stats.WorkspaceCopies, wantNodes-1)
	}
}

func TestSynchedCopiesSameBytesCheaper(t *testing.T) {
	p := tree{arity: 2, height: 10}
	plain, err := New().Run(p, sched.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewSynched().Run(p, sched.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.WorkspaceBytes != pooled.Stats.WorkspaceBytes {
		t.Errorf("bytes copied differ: %d vs %d (SYNCHED must still copy the data)",
			plain.Stats.WorkspaceBytes, pooled.Stats.WorkspaceBytes)
	}
	if pooled.Makespan >= plain.Makespan {
		t.Errorf("SYNCHED makespan %d not below plain Cilk %d (allocation saving missing)",
			pooled.Makespan, plain.Makespan)
	}
}

func TestStealsHappenAndBalance(t *testing.T) {
	p := tree{arity: 4, height: 8}
	res, err := New().Run(p, sched.Options{Workers: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steals == 0 {
		t.Fatal("no steals with 8 workers on a wide tree")
	}
	// On a zero-work tree Cilk's absolute speedup is overhead-bound, so
	// measure scalability against its own one-worker run.
	one, err := New().Run(p, sched.Options{Workers: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	scaling := float64(one.Makespan) / float64(res.Makespan)
	if scaling < 4 {
		t.Errorf("self-scaling %.2f with 8 workers: load balancing broken", scaling)
	}
}

func TestNames(t *testing.T) {
	if New().Name() != "cilk" || NewSynched().Name() != "cilk-synched" {
		t.Fatal("engine names changed")
	}
}
