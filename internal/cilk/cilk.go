// Package cilk implements the Cilk 5.4.6 baseline of the paper: a
// work-first work-stealing scheduler in which *every* spawn creates a task.
// The executor pushes its continuation frame on the THE-protocol deque,
// copies the workspace for the child (the correctness-mandated "workspace
// copying" the paper measures), runs the child inline, and pops; a failed
// pop means the continuation was stolen, so the in-flight child value is
// deposited and the worker unwinds to the scheduler — exactly the
// fast-version/slow-version split of Cilk's compiled output.
//
// Unlike Tascell and unlike an AdaptiveTC special task, a Cilk task that
// reaches its sync with outstanding children is suspended and its worker
// goes back to stealing; the last child's deposit resumes (finalises) it.
//
// The SYNCHED variant models Cilk's SYNCHED-variable space optimisation:
// child workspaces come from a per-worker pool, so allocation is saved, but
// "all child tasks still have to copy the data from their parent tasks, and
// hence, the time overhead is not reduced" — the per-byte copy cost stays.
package cilk

import (
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// Engine is the Cilk baseline scheduler.
type Engine struct {
	synched bool
}

// New returns the plain Cilk engine.
func New() *Engine { return &Engine{} }

// NewSynched returns the Cilk-SYNCHED variant (pooled workspaces).
func NewSynched() *Engine { return &Engine{synched: true} }

// Name implements sched.Engine.
func (e *Engine) Name() string {
	if e.synched {
		return "cilk-synched"
	}
	return "cilk"
}

// Run implements sched.Engine.
func (e *Engine) Run(p sched.Program, opt sched.Options) (sched.Result, error) {
	return wsrt.Run(p, opt, e.NewExec(opt.WorkersOrDefault(), opt), e.Name())
}

// NewExec implements wsrt.PoolEngine.
func (e *Engine) NewExec(n int, opt sched.Options) wsrt.Engine {
	return &exec{synched: e.synched}
}

type exec struct {
	synched bool
}

// Root implements wsrt.Engine.
func (x *exec) Root(w *wsrt.Worker) (int64, bool) {
	return x.node(w, nil, w.Prog().Root(), 0)
}

// Resume implements wsrt.Engine: the slow version restores the saved PC and
// partial sum and continues the spawn loop.
func (x *exec) Resume(w *wsrt.Worker, f *wsrt.Frame) (int64, bool) {
	return x.loop(w, f, f.PC, f.Sum)
}

// node executes one task: a frame is charged at entry and freed at exit,
// for leaves too (Appendix B allocates the task_info before the terminal
// test).
func (x *exec) node(w *wsrt.Worker, parent *wsrt.Frame, ws sched.Workspace, depth int) (int64, bool) {
	w.BeginNode(ws, depth)
	w.ChargeTask()
	if v, term := w.Prog().Terminal(ws, depth); term {
		return v, true
	}
	f := w.NewFrame(parent, ws, depth, depth, wsrt.KindFast)
	v, completed := x.loop(w, f, 0, 0)
	if completed {
		// Completed inline: never stolen at the end, nothing pending — the
		// frame is dead and this worker is its sole owner.
		w.FreeFrame(f)
	}
	return v, completed
}

// loop runs f's spawn loop from move pc with the given partial sum.
// It returns (value, completed); completed==false means the computation
// detached (f was stolen, or f suspended at its sync point).
func (x *exec) loop(w *wsrt.Worker, f *wsrt.Frame, pc int, sum int64) (int64, bool) {
	prog := w.Prog()
	ws, depth := f.WS, f.Depth
	n := prog.Moves(ws, depth)
	for m := pc; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		var childWS sched.Workspace
		if x.synched {
			childWS = w.ClonePooled(ws)
		} else {
			childWS = w.Clone(ws)
		}
		prog.Undo(ws, depth, m)
		f.PC, f.Sum = m+1, sum
		w.Push(f)
		v, completed := x.node(w, f, childWS, depth+1)
		if !completed {
			// The child subtree detached, which means frames below it in
			// the deque — ours included — were stolen first. Do not pop,
			// do not deposit: the child's own finaliser will deliver to f.
			return 0, false
		}
		if _, ok := w.Pop(); !ok {
			// f was stolen while the child ran: the thief resumes the
			// continuation from f.PC; we hand it the in-flight child value.
			w.Deposit(f, v)
			return 0, false
		}
		if x.synched {
			w.Release(childWS)
		}
		sum += v
	}
	// sync
	total, out := f.Sync(sum)
	if out == wsrt.SyncSuspended {
		w.Suspend(f)
		return 0, false
	}
	return total, true
}
