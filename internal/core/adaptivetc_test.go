package core

import (
	"fmt"
	"testing"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/vtime"
	"adaptivetc/internal/wsrt"
)

// chain is a deliberately skewed test program: a unary spine of the given
// length with one leaf hanging off each spine node. Value = leaves.
type chain struct{ length int }

type chainWS struct{ stack []int }

func (w *chainWS) Clone() sched.Workspace {
	return &chainWS{stack: append([]int(nil), w.stack...)}
}
func (w *chainWS) Bytes() int { return 32 }

func (c chain) Name() string          { return fmt.Sprintf("chain(%d)", c.length) }
func (c chain) Root() sched.Workspace { return &chainWS{stack: []int{0}} }
func (c chain) Terminal(w sched.Workspace, depth int) (int64, bool) {
	s := w.(*chainWS)
	pos := s.stack[len(s.stack)-1]
	if pos >= c.length || pos < 0 {
		return 1, true
	}
	return 0, false
}
func (c chain) Moves(sched.Workspace, int) int { return 2 }
func (c chain) Apply(w sched.Workspace, depth, m int) bool {
	s := w.(*chainWS)
	pos := s.stack[len(s.stack)-1]
	if m == 0 {
		s.stack = append(s.stack, pos+1) // continue the spine
	} else {
		s.stack = append(s.stack, -1) // a leaf child
	}
	return true
}
func (c chain) Undo(w sched.Workspace, depth, m int) {
	s := w.(*chainWS)
	s.stack = s.stack[:len(s.stack)-1]
}

func run(t *testing.T, opt sched.Options, p sched.Program) sched.Result {
	t.Helper()
	res, err := New().Run(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChainValue(t *testing.T) {
	p := chain{length: 200}
	want := int64(201) // one leaf per spine node + the spine's terminal
	for _, workers := range []int{1, 2, 4, 8} {
		res := run(t, sched.Options{Workers: workers, Seed: int64(workers)}, p)
		if res.Value != want {
			t.Errorf("P=%d: value %d, want %d", workers, res.Value, want)
		}
	}
}

func TestCutoffControlsInitialTasks(t *testing.T) {
	// With needTask never firing (huge MaxStolenNum), only the fast region
	// creates tasks: for a binary-ish tree of depth D and cutoff c the
	// task count is bounded by the number of nodes above the cutoff.
	p := chain{length: 64}
	res := run(t, sched.Options{Workers: 4, MaxStolenNum: 1 << 30, Seed: 1}, p)
	cut := sched.LogCutoff(4)
	maxTasks := int64(1) << uint(cut+1) // generous bound on nodes above cutoff
	if res.Stats.TasksCreated > maxTasks {
		t.Errorf("tasks %d exceed fast-region bound %d (cutoff %d)", res.Stats.TasksCreated, maxTasks, cut)
	}
	if res.Stats.SpecialTasks != 0 {
		t.Errorf("special tasks fired with need_task disabled: %d", res.Stats.SpecialTasks)
	}
	if res.Stats.FakeTasks == 0 {
		t.Error("no fake tasks on a deep chain")
	}
}

func TestSpecialReopensChain(t *testing.T) {
	// On a pure chain the fast region exhausts immediately; with a
	// hair-trigger need_task the check version must emit special tasks and
	// thieves must actually steal their children.
	p := chain{length: 3000}
	res := run(t, sched.Options{Workers: 4, MaxStolenNum: 1, Seed: 2}, p)
	if res.Value != 3001 {
		t.Fatalf("value %d, want 3001", res.Value)
	}
	if res.Stats.SpecialTasks == 0 {
		t.Fatal("no special tasks on a starving chain")
	}
	if res.Stats.Steals == 0 {
		t.Fatal("no steals")
	}
}

func TestFast2MultiplierWidensTaskRegion(t *testing.T) {
	p := chain{length: 4000}
	base := sched.Options{Workers: 4, MaxStolenNum: 1, Seed: 3, Fast2Multiplier: 1}
	wide := base
	wide.Fast2Multiplier = 8
	a := run(t, base, p)
	b := run(t, wide, p)
	if a.Value != b.Value {
		t.Fatalf("values differ: %d vs %d", a.Value, b.Value)
	}
	if b.Stats.TasksCreated <= a.Stats.TasksCreated {
		t.Errorf("fast_2 ×8 created %d tasks, ×1 created %d — expected more",
			b.Stats.TasksCreated, a.Stats.TasksCreated)
	}
}

func TestForceCutoffZeroRunsFakeOnly(t *testing.T) {
	p := chain{length: 100}
	res := run(t, sched.Options{Workers: 1, Seed: 4}, p) // ⌈log2 1⌉ = 0
	if res.Stats.TasksCreated != 0 {
		t.Errorf("one worker created %d tasks; cutoff 0 should make everything fake", res.Stats.TasksCreated)
	}
	if res.Value != 101 {
		t.Errorf("value %d", res.Value)
	}
}

func TestResumeSpecialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on resuming a special frame")
		}
	}()
	x := &exec{cutoff: 1, cutoff2: 2}
	x.Resume(nil, &wsrt.Frame{Kind: wsrt.KindSpecial})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := chain{length: 500}
	opt := sched.Options{Workers: 6, MaxStolenNum: 2, Seed: 9}
	a := run(t, opt, p)
	b := run(t, opt, p)
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestRealPlatformChain(t *testing.T) {
	p := chain{length: 2000}
	res, err := New().Run(p, sched.Options{
		Workers:      8,
		MaxStolenNum: 1,
		Platform:     &vtime.Real{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2001 {
		t.Fatalf("value %d, want 2001", res.Value)
	}
}
