// Package core implements AdaptiveTC, the paper's adaptive task creation
// strategy for work-stealing scheduling (Section 3) as the five compiled
// code versions of Section 4.2:
//
//	fast      depth < cutoff: create real tasks (clone the taskprivate
//	          workspace, push the continuation frame); at the cutoff it
//	          falls through to check without pushing anything.
//	check     a fake task: plain recursion that ignores taskprivate but
//	          polls need_task once at entry (the latch in Appendix C).
//	          When the flag is up it creates one special task for the
//	          current node and runs every remaining child through fast_2
//	          with its depth reset to 0, re-pushing the special marker
//	          around each child so thieves can reach the child's tasks.
//	fast_2    like fast with twice the cutoff, falling through to sequence
//	          (not check) beyond it.
//	sequence  a plain recursive function. taskprivate is ignored.
//	slow      the entry point of every stolen task: restores the saved PC,
//	          partial sum and workspace and continues the interrupted spawn
//	          loop in its original flavour.
//
// The cutoff is ⌈log2 N⌉ for N workers. A thief that fails to steal bumps
// the victim's stolen_num; past max_stolen_num (default 20) the victim's
// need_task flag goes up, and a successful steal clears both — the
// signalling of Figure 3(d)/(e), implemented inside internal/deque.
//
// Special tasks are never stolen and never suspended: at the sync point
// their owner waits (sync_specialtask, a sleep-poll loop like the paper's
// usleep(100) loop in Figure 3(c)) because the fake task whose state the
// marker preserves lives on the owner's execution stack and could not be
// resumed by anyone else.
package core

import (
	"fmt"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// Engine is the AdaptiveTC scheduler.
type Engine struct{}

// New returns an AdaptiveTC engine.
func New() *Engine { return &Engine{} }

// Name implements sched.Engine.
func (*Engine) Name() string { return "adaptivetc" }

// Run implements sched.Engine.
func (e *Engine) Run(p sched.Program, opt sched.Options) (sched.Result, error) {
	return wsrt.Run(p, opt, e.NewExec(opt.WorkersOrDefault(), opt), e.Name())
}

// NewExec implements wsrt.PoolEngine.
func (e *Engine) NewExec(n int, opt sched.Options) wsrt.Engine {
	cut := opt.CutoffFor(n)
	cut2 := cut * opt.Fast2MultiplierOrDefault()
	if cut2 < cut {
		cut2 = cut
	}
	return &exec{cutoff: cut, cutoff2: cut2}
}

type exec struct {
	cutoff  int // fast → check transition depth (⌈log2 N⌉)
	cutoff2 int // fast_2 → sequence transition depth (2×cutoff)
}

// Root implements wsrt.Engine: the root task starts in the fast version at
// depth 0.
func (x *exec) Root(w *wsrt.Worker) (int64, bool) {
	return x.fastNode(w, nil, w.Prog().Root(), 0)
}

// Resume implements wsrt.Engine: the slow version. The frame's kind decides
// which spawn loop the continuation belongs to.
func (x *exec) Resume(w *wsrt.Worker, f *wsrt.Frame) (int64, bool) {
	switch f.Kind {
	case wsrt.KindFast:
		return x.fastLoop(w, f, f.PC, f.Sum)
	case wsrt.KindFast2:
		return x.fast2Loop(w, f, f.PC, f.Sum)
	default:
		panic(fmt.Sprintf("adaptivetc: resumed frame of kind %d (special tasks cannot be stolen)", f.Kind))
	}
}

// ---------------------------------------------------------------------------
// fast version

func (x *exec) fastNode(w *wsrt.Worker, parent *wsrt.Frame, ws sched.Workspace, depth int) (int64, bool) {
	if depth >= x.cutoff {
		return x.checkNode(w, ws, depth), true
	}
	w.BeginNode(ws, depth)
	w.ChargeTask()
	if v, term := w.Prog().Terminal(ws, depth); term {
		return v, true
	}
	f := w.NewFrame(parent, ws, depth, depth, wsrt.KindFast)
	v, completed := x.fastLoop(w, f, 0, 0)
	if completed {
		w.FreeFrame(f) // completed inline: the frame is dead and solely ours
	}
	return v, completed
}

func (x *exec) fastLoop(w *wsrt.Worker, f *wsrt.Frame, pc int, sum int64) (int64, bool) {
	prog := w.Prog()
	ws, depth := f.WS, f.Depth
	n := prog.Moves(ws, depth)
	for m := pc; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		childWS := w.Clone(ws) // taskprivate: allocate and copy for the child
		prog.Undo(ws, depth, m)
		f.PC, f.Sum = m+1, sum
		w.Push(f)
		v, completed := x.fastNode(w, f, childWS, depth+1)
		if !completed {
			return 0, false
		}
		if _, ok := w.Pop(); !ok {
			w.Deposit(f, v)
			return 0, false
		}
		sum += v
	}
	total, out := f.Sync(sum)
	if out == wsrt.SyncSuspended {
		w.Suspend(f)
		return 0, false
	}
	return total, true
}

// ---------------------------------------------------------------------------
// check version (fake task)

func (x *exec) checkNode(w *wsrt.Worker, ws sched.Workspace, depth int) int64 {
	w.BeginNode(ws, depth)
	w.Stats.FakeTasks++
	prog := w.Prog()
	if v, term := prog.Terminal(ws, depth); term {
		return v
	}
	// Poll the need_task flag once at entry — the _adpTC_need_task latch of
	// Appendix C. Each recursive checkNode re-reads it at its own entry.
	t0 := w.Proc.Now()
	w.Proc.Advance(w.Costs().FlagPoll)
	w.Stats.Polls++
	needTask := w.Deque.NeedTask()
	w.AddPoll(w.Proc.Now() - t0)

	if !needTask {
		var sum int64
		n := prog.Moves(ws, depth)
		for m := 0; m < n; m++ {
			w.ChargeMove()
			if !prog.Apply(ws, depth, m) {
				continue
			}
			sum += x.checkNode(w, ws, depth+1)
			prog.Undo(ws, depth, m)
		}
		return sum
	}
	return x.specialNode(w, ws, depth)
}

// specialNode is the need_task branch of the check version: a special task
// is created for the current fake task, pushed around each remaining child,
// and the children run as fast_2 with depth reset to 0 so their subtrees
// re-open for stealing.
func (x *exec) specialNode(w *wsrt.Worker, ws sched.Workspace, depth int) int64 {
	prog := w.Prog()
	w.ChargeTask()
	s := w.NewFrame(nil, ws, depth, depth, wsrt.KindSpecial)
	var sum int64
	anyStolen := false
	n := prog.Moves(ws, depth)
	for m := 0; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		childWS := w.Clone(ws) // taskprivate honoured in the special path
		prog.Undo(ws, depth, m)
		s.PC, s.Sum = m+1, sum
		w.Push(s)
		// The child's cutoff-relative depth restarts at 0 so its subtree
		// re-opens for task creation; its tree depth keeps counting.
		v, completed := x.fast2Node(w, s, childWS, depth+1, 0)
		stolen := w.PopSpecial(s)
		switch {
		case completed && !stolen:
			sum += v
		case !completed && stolen:
			// The child's task chain was taken over a thief; its total will
			// be deposited into the special frame by the chain's finaliser.
			w.ExpectDeposit(s)
			anyStolen = true
		case completed && stolen:
			panic("adaptivetc: special child completed inline but marked stolen")
		default:
			panic("adaptivetc: special child detached without the marker observing a theft")
		}
	}
	if anyStolen {
		// sync_specialtask: the special task waits for its children — it
		// cannot be suspended, because it preserves the state of a fake
		// task living on this worker's execution stack.
		t0 := w.Proc.Now()
		for {
			total, done := s.DrainedAfter(sum)
			if done {
				sum = total
				break
			}
			// A cancelled job's outstanding deposits may never arrive; poll
			// the stop flag so the wait cannot spin forever.
			w.CheckCancel()
			w.Proc.Sleep(w.Costs().WaitTick)
		}
		w.AddWait(w.Proc.Now() - t0)
	}
	// The marker is out of the deque and every expected deposit has been
	// drained (waited frames are never finalised by depositors), so the
	// special frame is dead and solely ours.
	w.FreeFrame(s)
	return sum
}

// ---------------------------------------------------------------------------
// fast_2 version

func (x *exec) fast2Node(w *wsrt.Worker, parent *wsrt.Frame, ws sched.Workspace, depth, rel int) (int64, bool) {
	if rel >= x.cutoff2 {
		return x.sequenceNode(w, ws, depth), true
	}
	w.BeginNode(ws, depth)
	w.ChargeTask()
	if v, term := w.Prog().Terminal(ws, depth); term {
		return v, true
	}
	f := w.NewFrame(parent, ws, depth, rel, wsrt.KindFast2)
	v, completed := x.fast2Loop(w, f, 0, 0)
	if completed {
		w.FreeFrame(f) // completed inline: the frame is dead and solely ours
	}
	return v, completed
}

func (x *exec) fast2Loop(w *wsrt.Worker, f *wsrt.Frame, pc int, sum int64) (int64, bool) {
	prog := w.Prog()
	ws, depth := f.WS, f.Depth
	n := prog.Moves(ws, depth)
	for m := pc; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		childWS := w.Clone(ws)
		prog.Undo(ws, depth, m)
		f.PC, f.Sum = m+1, sum
		w.Push(f)
		v, completed := x.fast2Node(w, f, childWS, depth+1, f.Rel+1)
		if !completed {
			return 0, false
		}
		if _, ok := w.Pop(); !ok {
			w.Deposit(f, v)
			return 0, false
		}
		sum += v
	}
	total, out := f.Sync(sum)
	if out == wsrt.SyncSuspended {
		w.Suspend(f)
		return 0, false
	}
	return total, true
}

// ---------------------------------------------------------------------------
// sequence version

func (x *exec) sequenceNode(w *wsrt.Worker, ws sched.Workspace, depth int) int64 {
	before := w.Stats.Nodes
	v := sched.EvalSequentialStop(w.Prog(), ws, depth, w.Costs(), w.Proc, &w.Stats, w.Rt().Stop())
	w.Stats.FakeTasks += w.Stats.Nodes - before
	return v
}
