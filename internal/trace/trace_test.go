package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adaptivetc/internal/deque"
)

func TestSeqPacking(t *testing.T) {
	r := NewRecorder()
	r.Init(3, 20)
	defer r.Release()
	s0 := r.WorkerLog(0).NextSeq()
	s2a := r.WorkerLog(2).NextSeq()
	s2b := r.WorkerLog(2).NextSeq()
	if SeqWorker(s0) != 0 || SeqIndex(s0) != 1 {
		t.Fatalf("seq %x decodes to worker %d index %d, want 0/1", s0, SeqWorker(s0), SeqIndex(s0))
	}
	if SeqWorker(s2b) != 2 || SeqIndex(s2b) != 2 {
		t.Fatalf("seq %x decodes to worker %d index %d, want 2/2", s2b, SeqWorker(s2b), SeqIndex(s2b))
	}
	if s2a == s2b || s0 == s2a {
		t.Fatal("seqs not unique")
	}
	if got := FormatSeq(s2a); got != "w2#1" {
		t.Fatalf("FormatSeq = %q, want w2#1", got)
	}
	if got := FormatSeq(0); got != "root" {
		t.Fatalf("FormatSeq(0) = %q, want root", got)
	}
}

// cleanRun builds a minimal consistent 2-worker trace: worker 0 spawns and
// pushes one task, worker 1 steals and suspends it, worker 0's deposit
// finalises it and cascades the total into the root. One failed steal on
// deque 1 exercises the FSM log. Returns the recorder and the task seq.
func cleanRun(maxStolenNum int64) (*Recorder, uint64) {
	r := NewRecorder()
	r.Init(2, maxStolenNum)
	w0, w1 := r.WorkerLog(0), r.WorkerLog(1)
	t1 := w0.NextSeq()

	w0.Add(10, OpSpawn, t1, 1, 0)
	w0.Add(20, OpPush, t1, 0, 0)
	r.DequeHook(0)(deque.TraceStealOK, 0, false) // w1's steal below, lock order
	w1.Add(25, OpSteal, t1, 0, int64(t1))
	w0.Add(30, OpPopEmpty, 0, 0, 0)
	w1.Add(35, OpSuspend, t1, 0, 0)
	w0.Add(40, OpStealFail, 0, 1, 0)
	r.DequeHook(1)(deque.TraceStealFail, 1, false)
	w0.Add(50, OpDeposit, t1, 3, 0)
	w0.Add(51, OpFinalize, t1, 10, 0)
	w0.Add(52, OpDeposit, 0, 10, 0)
	w0.Add(53, OpComplete, 0, 10, 0)
	return r, t1
}

func TestCheckCleanRun(t *testing.T) {
	r, _ := cleanRun(2)
	defer r.Release()
	if err := r.Check(10, 10); err != nil {
		t.Fatalf("clean run violates invariants: %v", err)
	}
}

// TestCheckCatchesViolations seeds one defect per invariant into the clean
// run and asserts the checker names the broken law.
func TestCheckCatchesViolations(t *testing.T) {
	cases := []struct {
		name  string
		seed  func(r *Recorder, t1 uint64)
		final int64 // value passed as the run result; 10 is correct
		want  string
	}{
		{
			name:  "wrong final value",
			seed:  func(*Recorder, uint64) {},
			final: 11,
			want:  "single-completion",
		},
		{
			name: "double spawn",
			seed: func(r *Recorder, t1 uint64) {
				r.WorkerLog(1).Add(60, OpSpawn, t1, 1, 0)
			},
			final: 10,
			want:  "spawn-unique",
		},
		{
			name: "push never consumed",
			seed: func(r *Recorder, t1 uint64) {
				r.WorkerLog(0).Add(60, OpPush, t1, 0, 0)
			},
			final: 10,
			want:  "conservation",
		},
		{
			name: "special marker stolen",
			seed: func(r *Recorder, _ uint64) {
				w0, w1 := r.WorkerLog(0), r.WorkerLog(1)
				s := w0.NextSeq()
				w0.Add(60, OpSpawn, s, 2, KindSpecial)
				w0.Add(61, OpPush, s, 0, 0)
				w1.Add(62, OpSteal, s, 0, int64(s))
				r.DequeHook(0)(deque.TraceStealOK, 0, false)
				// Balance the deposit the steal registered so only the
				// special-pinned law trips.
				w1.Add(63, OpDeposit, s, 0, 0)
				w0.Add(64, OpPopSpecial, s, 1, 0)
			},
			final: 10,
			want:  "special-pinned",
		},
		{
			name: "deposit nobody owed",
			seed: func(r *Recorder, t1 uint64) {
				r.WorkerLog(1).Add(60, OpDeposit, t1, 4, 0)
			},
			final: 10,
			want:  "deposit-owed",
		},
		{
			name: "finalize without suspend",
			seed: func(r *Recorder, t1 uint64) {
				r.WorkerLog(0).Add(60, OpFinalize, t1, 10, 0)
			},
			final: 10,
			want:  "suspend-once",
		},
		{
			name: "deque counter diverges from replay",
			seed: func(r *Recorder, _ uint64) {
				r.WorkerLog(0).Add(60, OpStealFail, 0, 1, 0)
				r.DequeHook(1)(deque.TraceStealFail, 7, false) // replay expects 2
			},
			final: 10,
			want:  "need-task-fsm",
		},
		{
			name: "need_task raised late",
			seed: func(r *Recorder, _ uint64) {
				w0 := r.WorkerLog(0)
				hook := r.DequeHook(1)
				// maxStolenNum is 2: the third consecutive failure must
				// raise the flag; recording it still false is the bug the
				// paper's Figure 3(d) forbids.
				w0.Add(60, OpStealFail, 0, 1, 0)
				hook(deque.TraceStealFail, 2, false)
				w0.Add(61, OpStealFail, 0, 1, 0)
				hook(deque.TraceStealFail, 3, false)
			},
			final: 10,
			want:  "need-task-fsm",
		},
		{
			name: "worker steal without deque record",
			seed: func(r *Recorder, t1 uint64) {
				r.WorkerLog(1).Add(60, OpStealFail, 0, 0, 0)
			},
			final: 10,
			want:  "steal-symmetry",
		},
		{
			name: "double completion",
			seed: func(r *Recorder, _ uint64) {
				r.WorkerLog(1).Add(60, OpComplete, 0, 10, 0)
			},
			final: 10,
			want:  "single-completion",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, t1 := cleanRun(2)
			defer r.Release()
			c.seed(r, t1)
			err := r.Check(c.final, 10)
			if err == nil {
				t.Fatalf("checker accepted a run violating %s", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("violation report does not name %s:\n%v", c.want, err)
			}
		})
	}
}

// duplicateSteal seeds the bounded-multiplicity shape into the clean run:
// t1's single push is stolen a second time (deque log and worker log agree,
// so steal-symmetry and the FSM replay stay exact), and the duplicated
// steal's credit is paid by a second deposit, with the second executor
// suspending again before it.
func duplicateSteal(r *Recorder, t1 uint64) {
	w1 := r.WorkerLog(1)
	r.DequeHook(0)(deque.TraceStealOK, 0, false)
	w1.Add(70, OpSteal, t1, 0, int64(t1))
	w1.Add(71, OpSuspend, t1, 0, 0)
	w1.Add(72, OpDeposit, t1, 3, 0)
}

func TestCheckMultiplicityToleratesBoundedDuplication(t *testing.T) {
	r, t1 := cleanRun(2)
	defer r.Release()
	duplicateSteal(r, t1)
	// The strict checker must reject the duplicated consumption...
	err := r.Check(10, 10)
	if err == nil {
		t.Fatal("strict checker accepted a twice-consumed push")
	}
	if !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("strict verdict does not name conservation:\n%v", err)
	}
	// ...k = 2 must absorb it: consumed twice, suspended twice, deposited
	// per credit, all within the multiplicity bound.
	if err := r.CheckMultiplicity(10, 10, 2); err != nil {
		t.Fatalf("k=2 checker rejected bounded duplication: %v", err)
	}
	// A third consumption exceeds k = 2.
	duplicateSteal(r, t1)
	if err := r.CheckMultiplicity(10, 10, 2); err == nil {
		t.Fatal("k=2 checker accepted a thrice-consumed push")
	}
	if err := r.CheckMultiplicity(10, 10, 3); err != nil {
		t.Fatalf("k=3 checker rejected triple consumption: %v", err)
	}
}

func TestCheckMultiplicityK1IsCheck(t *testing.T) {
	r, _ := cleanRun(2)
	defer r.Release()
	if err := r.CheckMultiplicity(10, 10, 1); err != nil {
		t.Fatalf("k=1 rejected the clean run: %v", err)
	}
	// k below 1 clamps to 1 instead of vacuously passing everything.
	r2, t1 := cleanRun(2)
	defer r2.Release()
	duplicateSteal(r2, t1)
	if err := r2.CheckMultiplicity(10, 10, 0); err == nil {
		t.Fatal("k=0 did not clamp to the strict checker")
	}
}

// TestCheckMultiplicityHardLaws pins what no k may forgive: consumption
// without a push, deposits nobody owed, and a worker/deque steal count
// mismatch.
func TestCheckMultiplicityHardLaws(t *testing.T) {
	t.Run("steal without push", func(t *testing.T) {
		r, _ := cleanRun(2)
		defer r.Release()
		w0, w1 := r.WorkerLog(0), r.WorkerLog(1)
		s := w0.NextSeq()
		w0.Add(60, OpSpawn, s, 1, 0)
		r.DequeHook(0)(deque.TraceStealOK, 0, false)
		w1.Add(61, OpSteal, s, 0, int64(s))
		w1.Add(62, OpDeposit, s, 0, 0) // balance the credit: only conservation trips
		err := r.CheckMultiplicity(10, 10, 4)
		if err == nil || !strings.Contains(err.Error(), "conservation") {
			t.Fatalf("k=4 forgave consumption without a push: %v", err)
		}
	})
	t.Run("deposit nobody owed", func(t *testing.T) {
		// k scales a debt, never invents one: a task with zero credits and
		// zero expects (owed = 0) may receive no deposit at any k.
		r, _ := cleanRun(2)
		defer r.Release()
		w0 := r.WorkerLog(0)
		s := w0.NextSeq()
		w0.Add(60, OpSpawn, s, 1, 0)
		w0.Add(61, OpPush, s, 0, 0)
		w0.Add(62, OpPop, s, 0, 0)
		r.WorkerLog(1).Add(63, OpDeposit, s, 4, 0)
		err := r.CheckMultiplicity(10, 10, 4)
		if err == nil || !strings.Contains(err.Error(), "deposit-owed") {
			t.Fatalf("k=4 forgave an unowed deposit: %v", err)
		}
	})
	t.Run("steal-symmetry", func(t *testing.T) {
		r, _ := cleanRun(2)
		defer r.Release()
		r.WorkerLog(1).Add(60, OpStealFail, 0, 0, 0)
		err := r.CheckMultiplicity(10, 10, 4)
		if err == nil || !strings.Contains(err.Error(), "steal-symmetry") {
			t.Fatalf("k=4 forgave a steal-symmetry break: %v", err)
		}
	})
}

func TestCheckTruncatedMultiplicity(t *testing.T) {
	r, t1 := cleanRun(2)
	defer r.Release()
	duplicateSteal(r, t1)
	// Truncated + strict still rejects the duplication ceiling...
	if err := r.CheckTruncated(); err == nil {
		t.Fatal("truncated strict checker accepted a twice-consumed push")
	}
	// ...truncated + k=2 absorbs it.
	if err := r.CheckTruncatedMultiplicity(2); err != nil {
		t.Fatalf("truncated k=2 rejected bounded duplication: %v", err)
	}
	// Truncation drops the floors even under multiplicity: an abandoned
	// push (never consumed) plus the duplication is still fine at k=2.
	r.WorkerLog(0).Add(80, OpPush, t1, 0, 0)
	if err := r.CheckTruncatedMultiplicity(2); err != nil {
		t.Fatalf("truncated k=2 rejected an abandoned push: %v", err)
	}
}

// chromeDoc mirrors the trace_event JSON object format.
type chromeDoc struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Tid  int             `json:"tid"`
		TS   float64         `json:"ts"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChromeValidJSON(t *testing.T) {
	r, _ := cleanRun(2)
	defer r.Release()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata events + the recorded worker events.
	want := 2 + r.EventCount()
	if len(doc.TraceEvents) != want {
		t.Fatalf("%d traceEvents, want %d", len(doc.TraceEvents), want)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
	}
	if phases["M"] != 2 || phases["i"] != r.EventCount() {
		t.Fatalf("phase mix %v, want 2 M + %d i", phases, r.EventCount())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
}

func TestRecorderReuse(t *testing.T) {
	r, _ := cleanRun(2)
	if r.EventCount() == 0 {
		t.Fatal("no events recorded")
	}
	// A new Init discards the previous run entirely.
	r.Init(1, 20)
	if r.EventCount() != 0 {
		t.Fatalf("EventCount = %d after re-Init, want 0", r.EventCount())
	}
	if r.Workers() != 1 {
		t.Fatalf("Workers = %d after re-Init, want 1", r.Workers())
	}
	if err := r.Check(0, 1); err == nil {
		t.Fatal("empty run with a wrong value passed the checker")
	}
	r.Release()
	if r.Workers() != 0 {
		t.Fatalf("Workers = %d after Release, want 0", r.Workers())
	}
}
