// The invariant checker: replays one run's trace against the conservation
// laws that the THE-protocol deque and the deposit protocol promise, so a
// run that produced the right answer by accident (a duplicated steal and a
// lost pop cancelling out, a deposit landing in the wrong frame) still
// fails loudly.
//
// The catalogue (each violation names the law it breaks):
//
//	spawn-unique      every task seq is spawned exactly once.
//	conservation      every push of an ordinary task is consumed by exactly
//	                  one pop XOR one steal; nothing is consumed that was
//	                  not pushed; nothing is left in a deque at the end.
//	special-pinned    a special marker is never stolen and never popped by
//	                  the ordinary path; every push of it is matched by one
//	                  PopSpecial. Conversely only special markers go
//	                  through PopSpecial.
//	deposit-owed      per frame, deposits == steals crediting the frame
//	                  + ExpectDeposit registrations - cancellations: every
//	                  deposit was owed, and every debt was paid.
//	suspend-once      a frame suspends at most once, is finalised at most
//	                  once, and only a suspended frame is finalised.
//	                  Special markers do neither.
//	steal-symmetry    thief-side success/failure counts equal the deque
//	                  logs' success/failure counts.
//	need-task-fsm     per deque, in lock order: the failed-steal counter
//	                  increments on failure and resets on success, and
//	                  need_task is raised exactly when the counter passes
//	                  max_stolen_num and cleared exactly on success.
//	single-completion the run records exactly one root completion, its
//	                  value matches the reported result, and the result
//	                  matches the serial oracle.
//
// Two orthogonal relaxations compose with the catalogue. Truncation
// (CheckTruncated) drops the "at least once" floors — an aborted run may
// abandon pushed tasks, owed deposits and suspended frames. Bounded
// multiplicity (CheckMultiplicity, CheckTruncatedMultiplicity) raises the
// "at most once" ceilings to k — a relaxed deque may hand the same entry to
// up to k consumers, so every exactly-once law becomes at-least-once,
// at-most-k-times. Neither relaxation ever forgives lost work, unowed
// deposits, wandering special markers, or a corrupted need_task FSM.
package trace

import (
	"errors"
	"fmt"

	"adaptivetc/internal/deque"
)

// KindSpecial mirrors wsrt.KindSpecial without importing wsrt (which
// imports this package). Pinned by a cross-package test in wsrt.
const KindSpecial = 2

// taskState accumulates one task seq's event counts.
type taskState struct {
	kind        int64
	spawns      int
	pushes      int
	pops        int
	popSpecials int
	steals      int
	credits     int // steals that registered a deposit on this frame
	expects     int
	cancels     int
	deposits    int
	suspends    int
	finalizes   int
}

// maxViolations bounds the error report; a systemically broken run would
// otherwise produce one violation per task.
const maxViolations = 20

// replay is the accumulated event history of one run, shared by the
// complete-run checker (Check) and the truncated-run checker
// (CheckTruncated).
type replay struct {
	tasks        map[uint64]*taskState
	completions  int
	completed    []int64 // values carried by OpComplete events
	rootDeposits int
	stealOKs     int
	stealFails   int
}

// replayWorkers folds every worker log into per-task counters.
func (r *Recorder) replayWorkers() *replay {
	rp := &replay{tasks: make(map[uint64]*taskState)}
	task := func(seq uint64) *taskState {
		t := rp.tasks[seq]
		if t == nil {
			t = &taskState{kind: -1}
			rp.tasks[seq] = t
		}
		return t
	}
	for _, w := range r.workers {
		for i := range w.evs {
			ev := &w.evs[i]
			switch ev.Op {
			case OpSpawn:
				t := task(ev.Task)
				t.spawns++
				t.kind = ev.B
			case OpPush:
				task(ev.Task).pushes++
			case OpPop:
				task(ev.Task).pops++
			case OpPopEmpty:
				// No conservation effect: a failed pop consumes nothing.
			case OpPopSpecial:
				task(ev.Task).popSpecials++
			case OpSteal:
				task(ev.Task).steals++
				task(uint64(ev.B)).credits++
				rp.stealOKs++
			case OpStealFail:
				rp.stealFails++
			case OpExpect:
				task(ev.Task).expects++
			case OpCancel:
				task(ev.Task).cancels++
			case OpDeposit:
				if ev.Task == 0 {
					rp.rootDeposits++
				} else {
					task(ev.Task).deposits++
				}
			case OpFinalize:
				task(ev.Task).finalizes++
			case OpSuspend:
				task(ev.Task).suspends++
			case OpComplete:
				rp.completions++
				rp.completed = append(rp.completed, ev.A)
			}
		}
	}
	return rp
}

// checkDeques replays each deque's lock-ordered log against the
// need_task/stolen_num finite state machine and the thief-side counts. These
// laws hold for truncated runs too: the FSM replay is per-event, and an
// abort cannot separate a deque transition from its worker-side record (no
// poll point lies between the deque hook and the worker's event append).
func (r *Recorder) checkDeques(rp *replay, addf func(string, ...any)) {
	dqOKs, dqFails := 0, 0
	for i, dl := range r.deques {
		counter, need := int64(0), false
		for j, ev := range dl.evs {
			switch ev.Op {
			case deque.TraceStealFail:
				dqFails++
				counter++
				if counter > r.maxStolenNum {
					need = true
				}
			case deque.TraceStealOK, deque.TraceStealSpecial:
				dqOKs++
				counter, need = 0, false
			}
			if ev.StolenNum != counter || ev.NeedTask != need {
				addf("need-task-fsm: deque %d event %d (%v): counter/flag = %d/%v, lock-order replay expects %d/%v (max_stolen_num=%d)",
					i, j, ev.Op, ev.StolenNum, ev.NeedTask, counter, need, r.maxStolenNum)
			}
		}
	}
	if rp.stealOKs != dqOKs {
		addf("steal-symmetry: workers recorded %d successful steals, deques recorded %d", rp.stealOKs, dqOKs)
	}
	if rp.stealFails != dqFails {
		addf("steal-symmetry: workers recorded %d failed steals, deques recorded %d", rp.stealFails, dqFails)
	}
}

// violationError joins the collected violations, or returns nil. The
// recorder's scope — the job/shard identity a multi-job pool stamps on each
// run — keys the verdict, so concurrent audits attribute failures to the
// job and worker group that produced them.
func (r *Recorder) violationError(violations []error) error {
	if len(violations) == 0 {
		return nil
	}
	if r.scope != "" {
		return fmt.Errorf("trace[%s]: %d invariant violation(s):\n%w", r.scope, len(violations), errors.Join(violations...))
	}
	return fmt.Errorf("trace: %d invariant violation(s):\n%w", len(violations), errors.Join(violations...))
}

// Check replays the recorded run and returns an error describing every
// violated invariant (capped), or nil if the run upheld all of them.
// finalValue is the run's reported result; wantValue is the serial oracle.
func (r *Recorder) Check(finalValue, wantValue int64) error {
	return r.CheckMultiplicity(finalValue, wantValue, 1)
}

// CheckMultiplicity is Check with a bounded-multiplicity allowance: every
// "exactly once" law relaxes to "at least once, at most k times", the shape
// a relaxed deque (Castañeda & Piña) is allowed to bend the protocol into.
// k = 1 is exactly Check. What k relaxes: spawn-unique (a re-extracted
// frame re-runs its spawn), conservation (a push may be consumed up to k
// times), deposit-owed (each duplicated steal duplicates its credit's
// deposit), suspend-once, single-completion and the special-marker
// PopSpecial matching. What k does NOT relax: consumption without a push,
// payment without a debt, markers leaving through the steal or ordinary-pop
// path, the per-deque need_task FSM replay and steal-symmetry — losing work
// or corrupting the starvation signal is a violation at any multiplicity.
func (r *Recorder) CheckMultiplicity(finalValue, wantValue int64, k int) error {
	if k < 1 {
		k = 1
	}
	var violations []error
	addf := func(format string, args ...any) {
		if len(violations) < maxViolations {
			violations = append(violations, fmt.Errorf(format, args...))
		}
	}

	if finalValue != wantValue {
		addf("single-completion: run value %d != serial value %d", finalValue, wantValue)
	}

	rp := r.replayWorkers()

	if rp.completions < 1 || rp.completions > k {
		addf("single-completion: %d root completions recorded, want 1..%d", rp.completions, k)
	}
	for _, v := range rp.completed {
		if v != finalValue {
			addf("single-completion: completion event carries %d, run reported %d", v, finalValue)
		}
	}
	if rp.rootDeposits > k {
		addf("single-completion: %d deposits to the run root, want at most %d", rp.rootDeposits, k)
	}

	r.checkTasks(rp, addf, k, false)
	r.checkDeques(rp, addf)
	return r.violationError(violations)
}

// CheckTruncated replays the trace of an aborted run — cancelled, timed
// out, or failed — against the laws that survive truncation. An abort
// unwinds workers at arbitrary poll points, so the equalities of Check
// relax to inequalities: a pushed task may never be consumed (it was
// drained by the pool's deque reset, which is untraced), an owed deposit
// may never be paid, a suspended frame may never be finalised, and the run
// root completes at most once. What must still hold exactly: task
// identities are unique, nothing is consumed that was not pushed, nothing
// is paid that was not owed, special markers never leave through the
// ordinary path, and the steal/need_task bookkeeping stays consistent
// event by event (aborts happen only at poll points, never between a deque
// transition and its worker-side record).
func (r *Recorder) CheckTruncated() error {
	return r.CheckTruncatedMultiplicity(1)
}

// CheckTruncatedMultiplicity is CheckTruncated with the bounded-multiplicity
// allowance of CheckMultiplicity: upper bounds scale by k, the "at least
// once" floors are dropped by truncation as usual.
func (r *Recorder) CheckTruncatedMultiplicity(k int) error {
	if k < 1 {
		k = 1
	}
	var violations []error
	addf := func(format string, args ...any) {
		if len(violations) < maxViolations {
			violations = append(violations, fmt.Errorf(format, args...))
		}
	}

	rp := r.replayWorkers()

	if rp.completions > k {
		addf("single-completion: %d root completions recorded, want at most %d", rp.completions, k)
	}
	if rp.rootDeposits > k {
		addf("single-completion: %d deposits to the run root, want at most %d", rp.rootDeposits, k)
	}

	r.checkTasks(rp, addf, k, true)
	r.checkDeques(rp, addf)
	return r.violationError(violations)
}

// checkTasks replays the per-task laws shared by the complete and truncated
// checkers. k is the multiplicity allowance; truncated drops the "at least
// once" floors (an aborted run may abandon work at any point).
func (r *Recorder) checkTasks(rp *replay, addf func(string, ...any), k int, truncated bool) {
	for seq, t := range rp.tasks {
		name := FormatSeq(seq)
		if t.spawns < 1 || t.spawns > k {
			addf("spawn-unique: task %s spawned %d times, want 1..%d", name, t.spawns, k)
			continue // counts below are meaningless without a unique identity
		}
		if t.kind == KindSpecial {
			if t.steals != 0 {
				addf("special-pinned: special marker %s was stolen %d times", name, t.steals)
			}
			if t.pops != 0 {
				addf("special-pinned: special marker %s left through the ordinary pop %d times", name, t.pops)
			}
			if t.popSpecials > k*t.pushes || (!truncated && t.popSpecials < t.pushes) {
				addf("special-pinned: special marker %s pushed %d times but removed by PopSpecial %d times (multiplicity %d)",
					name, t.pushes, t.popSpecials, k)
			}
			if t.suspends != 0 || t.finalizes != 0 {
				addf("suspend-once: special marker %s suspends=%d finalizes=%d, want 0/0", name, t.suspends, t.finalizes)
			}
		} else {
			if t.popSpecials != 0 {
				addf("special-pinned: ordinary task %s removed via PopSpecial %d times", name, t.popSpecials)
			}
			// Consumption without a push is a hard violation at any k
			// (k * 0 pushes is still 0); losing a push is only legal on a
			// truncated run.
			if consumed := t.pops + t.steals; consumed > k*t.pushes || (!truncated && consumed < t.pushes) {
				addf("conservation: task %s pushed %d times, consumed %d times (%d pops + %d steals, multiplicity %d)",
					name, t.pushes, consumed, t.pops, t.steals, k)
			}
			if t.suspends > k {
				addf("suspend-once: task %s suspended %d times, want at most %d", name, t.suspends, k)
			}
			if t.finalizes > t.suspends {
				addf("suspend-once: task %s finalised %d times but suspended %d times", name, t.finalizes, t.suspends)
			}
		}
		owed := t.credits + t.expects - t.cancels
		hi := k * owed
		if hi < owed {
			hi = owed // owed < 0 is itself nonsense; let the bound report it
		}
		if t.deposits > hi || (!truncated && t.deposits < owed) {
			addf("deposit-owed: task %s received %d deposits but was owed %d (%d steal credits + %d expects - %d cancels, multiplicity %d)",
				name, t.deposits, owed, t.credits, t.expects, t.cancels, k)
		}
	}
}
