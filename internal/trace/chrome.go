// Chrome trace_event export: the recorded run rendered as the JSON object
// format that chrome://tracing and Perfetto load directly. One track (tid)
// per worker, instant events with thread scope, timestamps converted from
// the run's nanosecond base to the format's microseconds.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome writes the current run's worker events as Chrome trace_event
// JSON. The deque FSM logs carry no timestamps (they are ordered by lock
// acquisition, not by a clock) and are not exported.
func (r *Recorder) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	for i := range r.workers {
		comma()
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"worker %d"}}`, i, i)
	}
	for i, wl := range r.workers {
		for j := range wl.evs {
			ev := &wl.evs[j]
			comma()
			bw.WriteString(`{"name":"`)
			bw.WriteString(ev.Op.String())
			bw.WriteString(`","ph":"i","s":"t","pid":0,"tid":`)
			bw.WriteString(strconv.Itoa(i))
			bw.WriteString(`,"ts":`)
			// trace_event timestamps are microseconds; keep ns precision.
			bw.WriteString(strconv.FormatFloat(float64(ev.TS)/1e3, 'f', 3, 64))
			bw.WriteString(`,"args":{`)
			writeArgs(bw, ev)
			bw.WriteString(`}}`)
		}
	}
	bw.WriteString(`],"displayTimeUnit":"ns"}`)
	bw.WriteByte('\n')
	return bw.Flush()
}

// writeArgs renders the per-Op operands under human-readable keys. Every
// value is a number or a fixed-alphabet task label, so no JSON escaping is
// needed.
func writeArgs(bw *bufio.Writer, ev *Event) {
	wroteTask := false
	if ev.Task != 0 || ev.Op == OpDeposit {
		fmt.Fprintf(bw, `"task":%q`, FormatSeq(ev.Task))
		wroteTask = true
	}
	sep := func() {
		if wroteTask {
			bw.WriteByte(',')
		}
		wroteTask = true
	}
	switch ev.Op {
	case OpSpawn:
		sep()
		fmt.Fprintf(bw, `"depth":%d,"kind":%d`, ev.A, ev.B)
	case OpPopSpecial:
		sep()
		fmt.Fprintf(bw, `"child_stolen":%d`, ev.A)
	case OpSteal:
		sep()
		fmt.Fprintf(bw, `"victim":%d,"credit":%q`, ev.A, FormatSeq(uint64(ev.B)))
	case OpStealFail:
		sep()
		fmt.Fprintf(bw, `"victim":%d`, ev.A)
	case OpDeposit, OpFinalize, OpComplete:
		sep()
		fmt.Fprintf(bw, `"value":%d`, ev.A)
	}
}
