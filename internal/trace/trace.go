// Package trace is the scheduler observability layer: a structured,
// per-worker event log of everything the work-stealing runtime does to a
// task — spawn, push, pop, steal, special-task skip-over, deposit,
// finalisation — plus a per-deque log of the need_task signalling FSM,
// recorded under the owner lock in exactly the order the lock serialises
// the transitions.
//
// The layer is built to be free when it is off: every recording site in the
// hot path is a single nil check (the runtime's Worker holds a nil log
// pointer unless Options.Tracer was set), and the deque's thief-side hook
// is a nil function pointer. When it is on, events go to per-worker buffers
// with no cross-worker synchronisation — a worker appends only to its own
// log, a deque appends only under its own lock — and the buffers themselves
// are recycled through a pool so that repeated traced runs (the invariant
// stress harness, the fuzzer) settle into zero steady-state allocation.
//
// Two consumers exist:
//
//   - WriteChrome renders the merged log as Chrome trace_event JSON
//     (chrome://tracing, Perfetto), one track per worker.
//   - Check replays the log against the conservation laws of the THE
//     protocol and the deposit protocol (see invariant.go) — the tool that
//     turns "the run produced the right number" into "every task was
//     consumed exactly once and every deposit was owed".
//
// Event timestamps come from vtime.Proc.Now(): virtual nanoseconds under
// Sim, wall nanoseconds since run start under Real. Per worker they are
// monotone; across workers they are comparable but carry no ordering
// guarantee, which is why the FSM invariant is checked against the
// lock-ordered deque log rather than against timestamps.
package trace

import (
	"fmt"
	"sync"

	"adaptivetc/internal/deque"
)

// Op is the kind of a worker-side event.
type Op uint8

const (
	// OpSpawn: a task frame was created. Task=new seq, A=tree depth, B=kind.
	OpSpawn Op = iota + 1
	// OpPush: the owner pushed Task on its deque.
	OpPush
	// OpPop: the owner popped Task from its deque tail.
	OpPop
	// OpPopEmpty: the owner's pop failed (empty, or the tail was stolen).
	OpPopEmpty
	// OpPopSpecial: the owner removed special marker Task; A=1 if a thief
	// had skipped over the marker and taken a child in the meantime.
	OpPopSpecial
	// OpSteal: a thief took Task from deque A; the theft registered one
	// expected deposit on frame B (Task itself for a continuation, its
	// parent for a help-first child).
	OpSteal
	// OpStealFail: a steal attempt on deque A failed.
	OpStealFail
	// OpExpect: one future deposit was registered on Task outside the
	// steal path (special-task child theft, help-first inline guard).
	OpExpect
	// OpCancel: one OpExpect registration on Task was withdrawn.
	OpCancel
	// OpDeposit: value A was deposited into frame Task (Task=0: the run's
	// root result).
	OpDeposit
	// OpFinalize: a deposit drained Task's pending count; the depositor
	// finalised the suspended frame with total A.
	OpFinalize
	// OpSuspend: the final executor reached Task's sync point with deposits
	// outstanding and abandoned the frame.
	OpSuspend
	// OpComplete: the run's root value A was recorded.
	OpComplete
)

var opNames = [...]string{
	OpSpawn:      "spawn",
	OpPush:       "push",
	OpPop:        "pop",
	OpPopEmpty:   "pop-empty",
	OpPopSpecial: "pop-special",
	OpSteal:      "steal",
	OpStealFail:  "steal-fail",
	OpExpect:     "expect-deposit",
	OpCancel:     "cancel-deposit",
	OpDeposit:    "deposit",
	OpFinalize:   "finalize",
	OpSuspend:    "suspend",
	OpComplete:   "complete",
}

// String returns the event name used in reports and Chrome traces.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Event is one worker-side scheduler event. The acting worker is implied by
// which WorkerLog holds the event. Task identifies the frame the event is
// about (0 = none / the run root); A and B are per-Op operands documented
// on the Op constants.
type Event struct {
	TS   int64 // nanoseconds in the run's time base
	Task uint64
	A, B int64
	Op   Op
}

// DequeEvent is one thief-side transition of a deque's steal/need_task FSM,
// with the post-transition counter and flag. Events of one deque are
// recorded under the owner lock, so their order is the true serialisation
// order of the transitions.
type DequeEvent struct {
	Op        deque.TraceOp
	StolenNum int64
	NeedTask  bool
}

// seqWorkerShift packs the owning worker into the high bits of a task seq,
// so every worker allocates globally-unique task identities with a plain
// local counter. 2^40 spawns per worker is out of reach for any run that
// fits in memory.
const seqWorkerShift = 40

// SeqWorker recovers the worker that allocated seq.
func SeqWorker(seq uint64) int { return int(seq>>seqWorkerShift) - 1 }

// SeqIndex recovers the per-worker spawn index of seq.
func SeqIndex(seq uint64) uint64 { return seq & (1<<seqWorkerShift - 1) }

// FormatSeq renders a task seq as "w<worker>#<index>" for reports.
func FormatSeq(seq uint64) string {
	if seq == 0 {
		return "root"
	}
	return fmt.Sprintf("w%d#%d", SeqWorker(seq), SeqIndex(seq))
}

// WorkerLog is one worker's event buffer and task-seq allocator. It is
// owned by exactly one worker goroutine during a run; the Recorder reads it
// only after the run has joined.
type WorkerLog struct {
	id  int32
	seq uint64
	evs []Event
}

// Add appends one event. The caller is the owning worker.
func (l *WorkerLog) Add(ts int64, op Op, task uint64, a, b int64) {
	l.evs = append(l.evs, Event{TS: ts, Op: op, Task: task, A: a, B: b})
}

// NextSeq allocates a fresh globally-unique task identity.
func (l *WorkerLog) NextSeq() uint64 {
	l.seq++
	return uint64(l.id+1)<<seqWorkerShift | l.seq
}

// Events returns the recorded events (read-only; valid until the next Init
// or Release).
func (l *WorkerLog) Events() []Event { return l.evs }

// DequeLog is one deque's FSM transition buffer, appended to under the
// deque's owner lock.
type DequeLog struct {
	evs []DequeEvent
}

// Events returns the recorded transitions in lock order.
func (l *DequeLog) Events() []DequeEvent { return l.evs }

// Buffer pools. Traced stress runs create and drop many short logs; the
// pools keep their backing arrays alive between runs so a warm
// Init/record/Check/Release cycle allocates nothing but what the run's own
// high-water mark demands.
var (
	eventBufPool = sync.Pool{New: func() any { s := make([]Event, 0, 1024); return &s }}
	dequeBufPool = sync.Pool{New: func() any { s := make([]DequeEvent, 0, 256); return &s }}
)

// Recorder collects one run's trace. Create it once, point Options.Tracer
// at it, and the work-stealing runtime calls Init with the run's geometry;
// after the run, Check and WriteChrome consume the log, and Release returns
// the buffers to the pool. A Recorder may be reused for any number of
// sequential runs; each Init discards the previous run's events.
type Recorder struct {
	maxStolenNum int64
	scope        string
	workers      []*WorkerLog
	deques       []*DequeLog
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Init prepares the recorder for a run with n workers (and n deques) and
// the given max_stolen_num threshold, recycling buffers from the pool. The
// work-stealing runtime calls it at run start.
func (r *Recorder) Init(n int, maxStolenNum int64) {
	r.Release()
	r.maxStolenNum = maxStolenNum
	r.scope = ""
	r.workers = r.workers[:0]
	r.deques = r.deques[:0]
	for i := 0; i < n; i++ {
		evs := *eventBufPool.Get().(*[]Event)
		r.workers = append(r.workers, &WorkerLog{id: int32(i), evs: evs[:0]})
		devs := *dequeBufPool.Get().(*[]DequeEvent)
		r.deques = append(r.deques, &DequeLog{evs: devs[:0]})
	}
}

// Release returns the recorder's buffers to the pool. The logs must not be
// read afterwards. Safe to call on an empty recorder.
func (r *Recorder) Release() {
	for i, w := range r.workers {
		evs := w.evs
		eventBufPool.Put(&evs)
		r.workers[i] = nil
	}
	for i, d := range r.deques {
		devs := d.evs
		dequeBufPool.Put(&devs)
		r.deques[i] = nil
	}
	r.workers = r.workers[:0]
	r.deques = r.deques[:0]
}

// SetScope labels the current run for reports: the invariant checker
// prefixes every violation with it, so when a sharded multi-job pool audits
// several concurrent jobs the verdicts are keyed by the job and worker
// shard that produced them. Set it after Init (which clears the previous
// run's scope); the empty string (the default) leaves reports unprefixed.
func (r *Recorder) SetScope(scope string) { r.scope = scope }

// Scope returns the current run's report label.
func (r *Recorder) Scope() string { return r.scope }

// Workers returns the number of worker logs of the current run.
func (r *Recorder) Workers() int { return len(r.workers) }

// WorkerLog returns worker i's log for the runtime to record into.
func (r *Recorder) WorkerLog(i int) *WorkerLog { return r.workers[i] }

// DequeLog returns deque i's FSM log.
func (r *Recorder) DequeLog(i int) *DequeLog { return r.deques[i] }

// DequeHook returns the thief-side observer to install on deque i with
// SetTrace. The returned function is called under the deque's owner lock.
func (r *Recorder) DequeHook(i int) deque.TraceFn {
	l := r.deques[i]
	return func(op deque.TraceOp, stolenNum int64, needTask bool) {
		l.evs = append(l.evs, DequeEvent{Op: op, StolenNum: stolenNum, NeedTask: needTask})
	}
}

// EventCount returns the total number of worker-side events recorded.
func (r *Recorder) EventCount() int {
	n := 0
	for _, w := range r.workers {
		n += len(w.evs)
	}
	return n
}
