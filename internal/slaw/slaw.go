// Package slaw implements the help-first scheduling policy and a SLAW-like
// adaptive switcher between help-first and work-first — the alternative
// adaptive scheduler the paper's related work contrasts AdaptiveTC with
// ("SLAW adaptively switches between work-first and help-first scheduling
// policies", Guo et al., IPDPS 2010).
//
// Under work-first (Cilk's policy, internal/cilk) the worker executes the
// spawned child immediately and leaves its own continuation stealable.
// Under help-first the worker pushes the *child* as an unstarted task and
// continues its own loop, so a burst of spawns fans out breadth-first —
// good when thieves are starving, at the price of a frame and a workspace
// copy per spawn even when nothing is stolen.
//
// The adaptive policy uses a simplified SLAW rule: spawn help-first while
// the worker's deque holds fewer tasks than the worker count (parallelism
// still needs to be published), work-first once the deque is comfortably
// populated. This engine exists as an extension for comparison against
// AdaptiveTC, which adapts along a different axis (how many tasks exist at
// all, rather than which end of the spawn is made stealable).
package slaw

import (
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
)

// Policy selects the spawn side that becomes stealable.
type Policy int

const (
	// HelpFirst always pushes the child.
	HelpFirst Policy = iota
	// WorkFirst always pushes the continuation (≡ Cilk; here for ablation
	// symmetry within this engine's code path).
	WorkFirst
	// Adaptive switches per spawn on deque population (SLAW-like).
	Adaptive
)

// Engine is the help-first / SLAW scheduler.
type Engine struct {
	policy Policy
}

// NewHelpFirst returns the pure help-first engine.
func NewHelpFirst() *Engine { return &Engine{policy: HelpFirst} }

// New returns the adaptive (SLAW-like) engine.
func New() *Engine { return &Engine{policy: Adaptive} }

// NewWorkFirst returns this engine's work-first configuration.
func NewWorkFirst() *Engine { return &Engine{policy: WorkFirst} }

// Name implements sched.Engine.
func (e *Engine) Name() string {
	switch e.policy {
	case HelpFirst:
		return "helpfirst"
	case WorkFirst:
		return "slaw-workfirst"
	default:
		return "slaw"
	}
}

// Run implements sched.Engine.
func (e *Engine) Run(p sched.Program, opt sched.Options) (sched.Result, error) {
	return wsrt.Run(p, opt, e.NewExec(opt.WorkersOrDefault(), opt), e.Name())
}

// NewExec implements wsrt.PoolEngine.
func (e *Engine) NewExec(n int, opt sched.Options) wsrt.Engine {
	return &exec{policy: e.policy, workers: n}
}

type exec struct {
	policy  Policy
	workers int
}

// Root implements wsrt.Engine.
func (x *exec) Root(w *wsrt.Worker) (int64, bool) {
	return x.node(w, nil, w.Prog().Root(), 0)
}

// Resume implements wsrt.Engine. A stolen KindChild frame is an unstarted
// node; a stolen continuation resumes its loop.
func (x *exec) Resume(w *wsrt.Worker, f *wsrt.Frame) (int64, bool) {
	if f.Kind == wsrt.KindChild {
		f.Start()
		return x.nodeFrame(w, f)
	}
	return x.loop(w, f, f.PC, f.Sum)
}

func (x *exec) helpFirst(w *wsrt.Worker) bool {
	switch x.policy {
	case HelpFirst:
		return true
	case WorkFirst:
		return false
	default:
		return w.Deque.Size() < x.workers
	}
}

// node runs one task from scratch.
func (x *exec) node(w *wsrt.Worker, parent *wsrt.Frame, ws sched.Workspace, depth int) (int64, bool) {
	w.BeginNode(ws, depth)
	w.ChargeTask()
	if v, term := w.Prog().Terminal(ws, depth); term {
		return v, true
	}
	f := w.NewFrame(parent, ws, depth, depth, wsrt.KindFast)
	v, completed := x.loop(w, f, 0, 0)
	if completed {
		w.FreeFrame(f) // completed inline: the frame is dead and solely ours
	}
	return v, completed
}

// nodeFrame runs an unstarted child frame. Its task-creation cost was
// charged when the frame was spawned (help-first pays the frame up front),
// so only the node visit is charged here.
func (x *exec) nodeFrame(w *wsrt.Worker, f *wsrt.Frame) (int64, bool) {
	w.BeginNode(f.WS, f.Depth)
	if v, term := w.Prog().Terminal(f.WS, f.Depth); term {
		return v, true
	}
	return x.loop(w, f, 0, 0)
}

// loop is the spawn loop, choosing help-first or work-first per move.
func (x *exec) loop(w *wsrt.Worker, f *wsrt.Frame, pc int, sum int64) (int64, bool) {
	prog := w.Prog()
	ws, depth := f.WS, f.Depth
	n := prog.Moves(ws, depth)
	queued := 0 // our help-first children currently in the deque
	for m := pc; m < n; m++ {
		w.ChargeMove()
		if !prog.Apply(ws, depth, m) {
			continue
		}
		childWS := w.Clone(ws)
		prog.Undo(ws, depth, m)
		if x.helpFirst(w) {
			// Push the child, keep going: the spawn fans out. The frame is
			// paid for now, whether or not it is ever stolen — help-first's
			// intrinsic cost.
			w.ChargeTask()
			child := w.NewFrame(f, childWS, depth+1, depth+1, wsrt.KindChild)
			w.Push(child)
			queued++
			continue
		}
		// Work-first: push our continuation and dive into the child.
		f.PC, f.Sum = m+1, sum
		w.Push(f)
		v, completed := x.node(w, f, childWS, depth+1)
		if !completed {
			// Everything below our continuation — our queued help-first
			// children included — was stolen first; their values arrive as
			// deposits (the steal of each KindChild credited our join).
			return 0, false
		}
		if _, ok := w.Pop(); !ok {
			w.Deposit(f, v)
			return 0, false
		}
		sum += v
	}
	// Drain our queued help-first children: LIFO pops return them unless
	// they were stolen (head side), in which case the pop fails only after
	// everything of ours is gone.
	for queued > 0 {
		e, ok := w.Pop()
		if !ok {
			// The rest were stolen; each theft already registered a
			// pending deposit on our frame.
			break
		}
		child := e.(*wsrt.Frame)
		if child.Parent != f || child.Kind != wsrt.KindChild {
			panic("slaw: popped a frame that is not one of our queued children")
		}
		queued--
		child.Start()
		// Register the possible deposit *before* running the child: if it
		// suspends, its finaliser may deposit into f immediately, racing a
		// post-hoc registration.
		w.ExpectDeposit(f)
		v, completed := x.nodeFrame(w, child)
		if completed {
			w.CancelExpected(f)
			sum += v
			// The child ran to completion on our stack: dead, solely ours.
			w.FreeFrame(child)
			continue
		}
		// The child suspended (or detached): its total arrives by deposit.
	}
	total, out := f.Sync(sum)
	if out == wsrt.SyncSuspended {
		w.Suspend(f)
		return 0, false
	}
	return total, true
}
