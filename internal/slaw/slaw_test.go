package slaw

import (
	"fmt"
	"testing"

	"adaptivetc/internal/sched"
)

// tri is a ternary tree of the given height with value = leaf count.
type tri struct{ height int }

type triWS struct{ d int }

func (w *triWS) Clone() sched.Workspace { c := *w; return &c }
func (w *triWS) Bytes() int             { return 40 }

func (p tri) Name() string          { return fmt.Sprintf("tri(%d)", p.height) }
func (p tri) Root() sched.Workspace { return &triWS{} }
func (p tri) Terminal(w sched.Workspace, depth int) (int64, bool) {
	if depth == p.height {
		return 1, true
	}
	return 0, false
}
func (p tri) Moves(sched.Workspace, int) int         { return 3 }
func (p tri) Apply(w sched.Workspace, d, m int) bool { w.(*triWS).d++; return true }
func (p tri) Undo(w sched.Workspace, d, m int)       { w.(*triWS).d-- }

func pow3(h int) int64 {
	v := int64(1)
	for i := 0; i < h; i++ {
		v *= 3
	}
	return v
}

func TestPoliciesMatchSerial(t *testing.T) {
	p := tri{height: 8}
	want := pow3(8)
	for _, e := range []*Engine{NewHelpFirst(), NewWorkFirst(), New()} {
		for _, workers := range []int{1, 2, 4, 8} {
			res, err := e.Run(p, sched.Options{Workers: workers, Seed: int64(workers)})
			if err != nil {
				t.Fatalf("%s P=%d: %v", e.Name(), workers, err)
			}
			if res.Value != want {
				t.Errorf("%s P=%d: value %d, want %d", e.Name(), workers, res.Value, want)
			}
		}
	}
}

func TestHelpFirstQueuesChildren(t *testing.T) {
	p := tri{height: 7}
	res, err := NewHelpFirst().Run(p, sched.Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With one worker all children are queued and popped back: the deque
	// high-water mark should reflect breadth (≥ height × (arity-1)).
	if res.Stats.MaxDequeDepth < 7*2 {
		t.Errorf("help-first deque depth %d too small", res.Stats.MaxDequeDepth)
	}
	wf, err := NewWorkFirst().Run(p, sched.Options{Workers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Stats.MaxDequeDepth >= res.Stats.MaxDequeDepth {
		t.Errorf("work-first deque depth %d not below help-first %d",
			wf.Stats.MaxDequeDepth, res.Stats.MaxDequeDepth)
	}
}

func TestAdaptiveBetweenExtremes(t *testing.T) {
	p := tri{height: 9}
	hf, _ := NewHelpFirst().Run(p, sched.Options{Workers: 8, Seed: 2})
	wf, _ := NewWorkFirst().Run(p, sched.Options{Workers: 8, Seed: 2})
	ad, _ := New().Run(p, sched.Options{Workers: 8, Seed: 2})
	if hf.Value != wf.Value || wf.Value != ad.Value {
		t.Fatalf("values diverge: %d/%d/%d", hf.Value, wf.Value, ad.Value)
	}
	t.Logf("makespans: helpfirst=%d workfirst=%d adaptive=%d", hf.Makespan, wf.Makespan, ad.Makespan)
	// The adaptive policy must not be drastically worse than the better
	// fixed policy (it should capture most of the benefit of each).
	best := hf.Makespan
	if wf.Makespan < best {
		best = wf.Makespan
	}
	if float64(ad.Makespan) > 1.5*float64(best) {
		t.Errorf("adaptive makespan %d is >1.5x the best fixed policy %d", ad.Makespan, best)
	}
}

func TestDeterministic(t *testing.T) {
	p := tri{height: 8}
	a, _ := New().Run(p, sched.Options{Workers: 5, Seed: 7})
	b, _ := New().Run(p, sched.Options{Workers: 5, Seed: 7})
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatal("nondeterministic")
	}
}

func TestNames(t *testing.T) {
	if New().Name() != "slaw" || NewHelpFirst().Name() != "helpfirst" || NewWorkFirst().Name() != "slaw-workfirst" {
		t.Fatal("names changed")
	}
}
