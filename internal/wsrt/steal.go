package wsrt

import (
	"math/bits"

	"adaptivetc/internal/deque"
)

// MaxStealBatch bounds how many entries one steal attempt may take. It also
// sizes the per-worker batch buffer, so raising it costs every worker
// MaxStealBatch words whether or not a batching policy is in use.
const MaxStealBatch = 16

// Thief is one worker's steal-side state for a job: each attempt asks it
// which victim to rob and how many entries to take. Implementations are
// confined to their worker (no synchronisation), may keep per-attempt state
// (PRNG, attempt counters) and may consult the deques read-only (Size) —
// the amount is a request, clamped by what the victim actually holds.
type Thief interface {
	// Pick returns the victim's index within deques and the number of
	// entries to try for (1 for a classic single steal, up to
	// MaxStealBatch for a batch). deques[self] is the thief's own deque
	// and must not be picked when len(deques) > 1.
	Pick(deques []deque.WorkDeque) (victim, amount int)
}

// StealPolicy is a victim-selection/steal-amount strategy, selected per run
// via sched.Options.StealPolicy (and per job on a pool via
// JobSpec.StealPolicy). A policy is a stateless factory; the per-worker
// state lives in the Thief it builds.
type StealPolicy interface {
	Name() string
	// NewThief builds worker id's thief for a run of n workers. The seed
	// is the run seed; implementations derive a private stream from
	// (seed, id) so schedules stay a pure function of the options.
	NewThief(id, n int, seed int64) Thief
}

// splitmix64 is the same tiny PRNG the fault plane uses: one add and three
// shift-xor-multiply rounds per draw, no allocation, trivially seedable per
// stream. It replaces the shared Proc.Rand in the thief loop, fixing both
// the per-steal interface-call cost and the modulo bias of Intn(n-1) for
// worker counts that do not divide 2^63.
type splitmix64 struct{ state uint64 }

const golden64 = 0x9E3779B97F4A7C15

// thiefStream tags the thief-loop PRNG streams, keeping them disjoint from
// the fault plane's roleWorker/roleDeque/... streams under the same seed.
const thiefStream = 0x9E37_F00D

func newSplitmix(seed int64, id int) splitmix64 {
	z := uint64(seed) ^ (uint64(thiefStream) << 32) ^ (uint64(id+1) * golden64)
	// One scramble round so adjacent ids do not start in adjacent states.
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return splitmix64{state: z ^ (z >> 31)}
}

func (s *splitmix64) next() uint64 {
	s.state += golden64
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns an unbiased draw from [0, n) via Lemire's multiply-shift
// rejection method — no modulo, and the rejection loop runs ~never for the
// small n of a victim pick.
func (s *splitmix64) intn(n int) int {
	v := uint64(n)
	hi, lo := bits.Mul64(s.next(), v)
	if lo < v {
		thresh := -v % v
		for lo < thresh {
			hi, lo = bits.Mul64(s.next(), v)
		}
	}
	return int(hi)
}

// --- random: the paper's baseline -------------------------------------

type randomPolicy struct{}

func (randomPolicy) Name() string { return "random" }

func (randomPolicy) NewThief(id, n int, seed int64) Thief {
	return &randomThief{id: id, rng: newSplitmix(seed, id)}
}

type randomThief struct {
	id  int
	rng splitmix64
}

func (t *randomThief) Pick(deques []deque.WorkDeque) (int, int) {
	v := t.rng.intn(len(deques) - 1)
	if v >= t.id {
		v++
	}
	return v, 1
}

// --- steal-half: batch half the victim's deque ------------------------

type stealHalfPolicy struct{}

func (stealHalfPolicy) Name() string { return "steal-half" }

func (stealHalfPolicy) NewThief(id, n int, seed int64) Thief {
	return &stealHalfThief{id: id, rng: newSplitmix(seed, id)}
}

type stealHalfThief struct {
	id  int
	rng splitmix64
}

func (t *stealHalfThief) Pick(deques []deque.WorkDeque) (int, int) {
	v := t.rng.intn(len(deques) - 1)
	if v >= t.id {
		v++
	}
	amount := deques[v].Size() / 2
	if amount < 1 {
		// Empty or single-entry victim: attempt a single steal anyway so
		// an organic failure still drives the victim's starvation FSM.
		amount = 1
	} else if amount > MaxStealBatch {
		amount = MaxStealBatch
	}
	return v, amount
}

// --- richest-first: rob the deepest deque -----------------------------

type richestPolicy struct{}

func (richestPolicy) Name() string { return "richest-first" }

func (richestPolicy) NewThief(id, n int, seed int64) Thief {
	return &richestThief{id: id, rng: newSplitmix(seed, id)}
}

type richestThief struct {
	id  int
	rng splitmix64
}

func (t *richestThief) Pick(deques []deque.WorkDeque) (int, int) {
	best, bestSize := -1, 0
	for i, d := range deques {
		if i == t.id {
			continue
		}
		if s := d.Size(); s > bestSize {
			best, bestSize = i, s
		}
	}
	if best < 0 {
		// Everyone looks empty: fall back to a random victim rather than a
		// fixed one, so the organic failures spread across the deques and
		// the need_task signal rises where the paper expects it.
		best = t.rng.intn(len(deques) - 1)
		if best >= t.id {
			best++
		}
	}
	return best, 1
}

// --- shard-local: prefer neighbours, occasionally go wide -------------

// shardWindow is the neighbourhood width of the shard-local policy.
const shardWindow = 4

// wideEvery makes every wideEvery-th attempt ignore the neighbourhood, so
// work still diffuses across a big shard instead of ping-ponging inside
// aligned windows.
const wideEvery = 4

type shardLocalPolicy struct{}

func (shardLocalPolicy) Name() string { return "shard-local" }

func (shardLocalPolicy) NewThief(id, n int, seed int64) Thief {
	return &shardLocalThief{id: id, rng: newSplitmix(seed, id)}
}

type shardLocalThief struct {
	id       int
	attempts int
	rng      splitmix64
}

func (t *shardLocalThief) Pick(deques []deque.WorkDeque) (int, int) {
	n := len(deques)
	t.attempts++
	// The deque slice is the steal domain (on a pool it is exactly the
	// shard), so "shard-local" means the aligned shardWindow-wide run of
	// indices around the thief — contiguous ids are contiguous workers of
	// the same shard by construction of the shard allocator.
	lo := (t.id / shardWindow) * shardWindow
	hi := lo + shardWindow
	if hi > n {
		hi = n
	}
	if t.attempts%wideEvery == 0 || hi-lo <= 1 {
		v := t.rng.intn(n - 1)
		if v >= t.id {
			v++
		}
		return v, 1
	}
	v := lo + t.rng.intn(hi-lo-1)
	if v >= t.id {
		v++
	}
	return v, 1
}

// --- registry ---------------------------------------------------------

var stealPolicies = map[string]StealPolicy{
	"random":        randomPolicy{},
	"steal-half":    stealHalfPolicy{},
	"richest-first": richestPolicy{},
	"shard-local":   shardLocalPolicy{},
}

// StealPolicyByName resolves a policy name. The empty string and unknown
// names resolve to "random" — front ends that want hard errors validate
// with ValidStealPolicy before a run reaches this point.
func StealPolicyByName(name string) StealPolicy {
	if p, ok := stealPolicies[name]; ok {
		return p
	}
	return randomPolicy{}
}

// ValidStealPolicy reports whether name is the empty default or a known
// policy.
func ValidStealPolicy(name string) bool {
	if name == "" {
		return true
	}
	_, ok := stealPolicies[name]
	return ok
}

// StealPolicyNames returns the known policy names in a fixed order (for
// usage strings and error messages).
func StealPolicyNames() []string {
	return []string{"random", "steal-half", "richest-first", "shard-local"}
}
