package wsrt

import "testing"

// TestFrameReuseZeroAllocs pins the frame free-list guarantee: once a frame
// has been recycled, the NewFrame/FreeFrame cycle of an inline-completing
// task allocates nothing.
func TestFrameReuseZeroAllocs(t *testing.T) {
	w := &Worker{}
	w.FreeFrame(w.NewFrame(nil, nil, 0, 0, KindFast)) // seed the free-list
	allocs := testing.AllocsPerRun(1000, func() {
		f := w.NewFrame(nil, nil, 3, 3, KindFast)
		w.FreeFrame(f)
	})
	if allocs != 0 {
		t.Errorf("recycled NewFrame+FreeFrame allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFreeFrameBounded checks the free-list respects workerPoolCap rather
// than growing with the number of frames a run finalises.
func TestFreeFrameBounded(t *testing.T) {
	w := &Worker{}
	for i := 0; i < 10*workerPoolCap; i++ {
		w.FreeFrame(&Frame{})
	}
	if len(w.frames) != workerPoolCap {
		t.Errorf("free-list holds %d frames, want the cap of %d", len(w.frames), workerPoolCap)
	}
}

// TestFrameResetClearsState checks a recycled frame carries nothing over
// from its previous life — stale pending counts or suspension flags would
// corrupt the deposit protocol.
func TestFrameResetClearsState(t *testing.T) {
	w := &Worker{}
	f := w.NewFrame(nil, nil, 1, 1, KindFast)
	f.PC, f.Sum = 7, 99
	f.OnStolen() // pending=1
	if _, out := f.Sync(0); out != SyncSuspended {
		t.Fatal("frame with a pending deposit should suspend")
	}
	if _, finalise := f.deposit(5); !finalise {
		t.Fatal("last deposit should finalise")
	}
	w.FreeFrame(f)
	g := w.NewFrame(nil, nil, 2, 2, KindFast2)
	if g != f {
		t.Fatal("free-list did not hand the frame back")
	}
	if g.PC != 0 || g.Sum != 0 || g.Depth != 2 || g.Kind != KindFast2 {
		t.Errorf("recycled frame kept stale state: %+v", g)
	}
	if total, out := g.Sync(11); out != SyncComplete || total != 11 {
		t.Errorf("recycled frame Sync = (%d,%v), want (11,complete) — stale pending/suspended state", total, out)
	}
}

// BenchmarkFrameRecycle measures the NewFrame/FreeFrame cycle every
// inline-completed task performs.
func BenchmarkFrameRecycle(b *testing.B) {
	w := &Worker{}
	w.FreeFrame(w.NewFrame(nil, nil, 0, 0, KindFast))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := w.NewFrame(nil, nil, 3, 3, KindFast)
		w.FreeFrame(f)
	}
}

// BenchmarkFrameFresh is the pre-free-list behaviour for comparison: every
// task pays a heap allocation.
func BenchmarkFrameFresh(b *testing.B) {
	b.ReportAllocs()
	var sink *Frame
	for i := 0; i < b.N; i++ {
		sink = &Frame{Depth: 3, Rel: 3, Kind: KindFast}
	}
	_ = sink
}
