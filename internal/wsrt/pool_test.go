package wsrt_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"adaptivetc/internal/cilk"
	"adaptivetc/internal/core"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/nqueens"
)

// poolEngine adapts an engine constructor for JobSpec.
func atc() wsrt.PoolEngine { return core.New() }

// TestPoolRunsJobs submits a stream of jobs with known answers through one
// resident pool and checks every result.
func TestPoolRunsJobs(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 16, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	want := map[string]int64{"fib": 55, "nqueens": 724}
	for i := 0; i < 8; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		res, err := h.Result()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Value != want["fib"] {
			t.Fatalf("job %d: value %d, want %d", i, res.Value, want["fib"])
		}
		if res.Stats.QueueWait < 0 {
			t.Fatalf("job %d: negative queue wait", i)
		}
	}
	h, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(10), Engine: cilk.New()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want["nqueens"] {
		t.Fatalf("nqueens: value %d, want %d", res.Value, want["nqueens"])
	}
	if got := p.Served(); got != 9 {
		t.Fatalf("served %d jobs, want 9", got)
	}
}

// TestPoolQueueFull fills the admission queue while the pool is blocked on
// a long job and checks the overflow submission is rejected, not queued.
func TestPoolQueueFull(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 2, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	// Occupy the workers with a job that waits for our signal.
	ctx, cancel := context.WithCancel(context.Background())
	blocker, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(12), Engine: atc(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.Started()

	// Fill the queue behind it.
	handles := make([]*wsrt.JobHandle, 0, 2)
	for i := 0; i < 2; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()})
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	if _, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()}); !errors.Is(err, wsrt.ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}

	// Unblock; everything queued must still complete.
	cancel()
	if _, err := blocker.Result(); err == nil {
		t.Fatal("cancelled blocker reported success")
	}
	for i, h := range handles {
		if res, err := h.Result(); err != nil || res.Value != 5 {
			t.Fatalf("queued job %d after cancel: value=%d err=%v", i, res.Value, err)
		}
	}
}

// TestPoolUsableAfterAbort cancels a job mid-run and checks the next job on
// the same pool still computes the right answer — the deque reset between
// jobs must drop the aborted job's leftover frames.
func TestPoolUsableAfterAbort(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	h, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(13), Engine: atc(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-h.Started()
	time.Sleep(5 * time.Millisecond) // let frames pile up in the deques
	cancel()
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job: err = %v, want context.Canceled", err)
	}

	h2, err := p.Submit(wsrt.JobSpec{Prog: fib.New(12), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Result(); err != nil || res.Value != 144 {
		t.Fatalf("job after abort: value=%d err=%v, want 144", res.Value, err)
	}
}

// TestPoolJobPanicIsContained converts a program panic into that job's
// failure without taking the pool down.
func TestPoolJobPanicIsContained(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	h, err := p.Submit(wsrt.JobSpec{Prog: panicProg{}, Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(); err == nil {
		t.Fatal("panicking job reported success")
	}

	h2, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Result(); err != nil || res.Value != 55 {
		t.Fatalf("job after panic: value=%d err=%v, want 55", res.Value, err)
	}
}

// panicProg is a binary tree whose nodes panic at depth 3 — a buggy user
// program the pool must contain.
type panicProg struct{}

type panicWS struct{}

func (panicWS) Clone() sched.Workspace { return panicWS{} }
func (panicWS) Bytes() int             { return 0 }

func (panicProg) Name() string          { return "panicker" }
func (panicProg) Root() sched.Workspace { return panicWS{} }

func (panicProg) Terminal(ws sched.Workspace, depth int) (int64, bool) {
	if depth >= 3 {
		panic("panicProg: boom")
	}
	return 0, false
}

func (panicProg) Moves(ws sched.Workspace, depth int) int     { return 2 }
func (panicProg) Apply(ws sched.Workspace, depth, m int) bool { return true }
func (panicProg) Undo(ws sched.Workspace, depth, m int)       {}

// gateProg is a one-node program whose only leaf blocks until the gate is
// closed — a job that occupies its shard for exactly as long as the test
// wants.
type gateProg struct{ gate chan struct{} }

func (g gateProg) Name() string          { return "gate" }
func (g gateProg) Root() sched.Workspace { return panicWS{} }

func (g gateProg) Terminal(ws sched.Workspace, depth int) (int64, bool) {
	<-g.gate
	return 1, true
}

func (g gateProg) Moves(ws sched.Workspace, depth int) int     { return 0 }
func (g gateProg) Apply(ws sched.Workspace, depth, m int) bool { return false }
func (g gateProg) Undo(ws sched.Workspace, depth, m int)       {}

// TestPoolConcurrentJobs is the sharding acceptance test: with 2 shards, a
// job blocked mid-run must not head-of-line-block the next job — job B
// finishes while job A demonstrably still occupies its shard.
func TestPoolConcurrentJobs(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 2, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardStatic,
		QueueCapacity: 8, Options: sched.Options{GrowableDeque: true},
	})
	defer p.Close()

	// Open the gate before the deferred Close runs, even when an assertion
	// below fails first — otherwise Close would wait on job A forever.
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	a, err := p.Submit(wsrt.JobSpec{Prog: gateProg{gate: gate}, Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	<-a.Started()

	b, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Result() // must complete while A is still blocked
	if err != nil || resB.Value != 55 {
		t.Fatalf("job B: value=%d err=%v, want 55", resB.Value, err)
	}
	select {
	case <-a.Done():
		t.Fatal("job A finished before its gate opened — B did not run concurrently")
	default:
	}
	// B's shard is reclaimed by the dispatcher shortly after its handle
	// resolves; wait for the count to settle at just job A.
	deadline := time.Now().Add(5 * time.Second)
	for p.RunningJobs() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := p.RunningJobs(); got != 1 {
		t.Fatalf("RunningJobs while A blocked = %d, want 1", got)
	}

	// The two jobs must have run on disjoint shards of width 1.
	shardA, shardB := a.Shard(), b.Shard()
	if len(shardA) != 1 || len(shardB) != 1 || shardA[0] == shardB[0] {
		t.Fatalf("shards not disjoint width-1 groups: A=%v B=%v", shardA, shardB)
	}

	openGate()
	if resA, err := a.Result(); err != nil || resA.Value != 1 {
		t.Fatalf("job A: value=%d err=%v, want 1", resA.Value, err)
	}
}

// TestPoolShardedRace runs 4 concurrent 8-queens jobs on 2 shards — the
// race-detector workload for the sharded dispatcher, shard-confined
// stealing and per-shard deque reset. Each job must find the classic 92
// solutions.
func TestPoolShardedRace(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardStatic,
		QueueCapacity: 8, Options: sched.Options{GrowableDeque: true},
	})
	defer p.Close()

	const jobs = 4
	handles := make([]*wsrt.JobHandle, jobs)
	engines := []func() wsrt.PoolEngine{atc, func() wsrt.PoolEngine { return cilk.New() }}
	for i := range handles {
		h, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(8), Engine: engines[i%len(engines)]()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[i] = h
	}
	for i, h := range handles {
		res, err := h.Result()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Value != 92 {
			t.Fatalf("job %d found %d solutions for 8-queens, want 92", i, res.Value)
		}
		if res.Workers != 2 || len(res.Shard) != 2 {
			t.Fatalf("job %d ran on shard %v (workers=%d), want width 2", i, res.Shard, res.Workers)
		}
	}
	if got := p.Served(); got != jobs {
		t.Fatalf("served %d jobs, want %d", got, jobs)
	}
}

// TestPoolAdaptiveGrows checks the adaptive policy end-to-end: a job
// admitted to an idle pool takes every worker, and under a backlog the
// shards split.
func TestPoolAdaptiveGrows(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 8, Options: sched.Options{GrowableDeque: true},
	})
	defer p.Close()

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	a, err := p.Submit(wsrt.JobSpec{Prog: gateProg{gate: gate}, Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	<-a.Started()
	if got := a.Shard(); len(got) != 4 {
		t.Fatalf("idle-pool adaptive shard = %v, want all 4 workers", got)
	}
	openGate()
	if _, err := a.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSubmitAfterClose pins the Submit/Close/drain ordering: once
// Close has begun, Submit fails with ErrPoolClosed, and jobs still queued
// at that point are deterministically drained with ErrPoolClosed — never
// raced into execution by the dispatcher's quit-vs-admit select.
func TestPoolSubmitAfterClose(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"submit-after-close-returns", func(t *testing.T) {
			p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, Options: sched.Options{GrowableDeque: true}})
			p.Close()
			if _, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()}); !errors.Is(err, wsrt.ErrPoolClosed) {
				t.Fatalf("submit after close: err = %v, want ErrPoolClosed", err)
			}
		}},
		{"queued-at-close-always-drains", func(t *testing.T) {
			// Repeat to exercise the quit-vs-admit select from many
			// interleavings: a job still queued once Close has observably
			// begun must always drain, never run. "Observably begun" is
			// pinned by waiting for Submit to return ErrPoolClosed — the
			// same lock orders that against the shutdown signal.
			for i := 0; i < 50; i++ {
				p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
				gate := make(chan struct{})
				blocker, err := p.Submit(wsrt.JobSpec{Prog: gateProg{gate: gate}, Engine: atc()})
				if err != nil {
					t.Fatal(err)
				}
				<-blocker.Started()
				queued, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()})
				if err != nil {
					t.Fatal(err)
				}
				done := make(chan struct{})
				go func() { p.Close(); close(done) }()
				for {
					if _, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()}); errors.Is(err, wsrt.ErrPoolClosed) {
						break // Close has begun: the shutdown signal is up
					}
					time.Sleep(100 * time.Microsecond)
				}
				close(gate) // release the blocker only now — the queued job must drain
				<-done
				if _, err := queued.Result(); !errors.Is(err, wsrt.ErrPoolClosed) {
					t.Fatalf("iteration %d: queued-at-close job err = %v, want ErrPoolClosed", i, err)
				}
			}
		}},
		{"submit-racing-close-never-hangs", func(t *testing.T) {
			// A submission racing Close either fails with ErrPoolClosed or
			// returns a handle that resolves — to a result or ErrPoolClosed —
			// but never hangs and never reports a third error.
			for i := 0; i < 50; i++ {
				p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
				got := make(chan error, 1)
				go func() {
					h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()})
					if err != nil {
						got <- err
						return
					}
					_, err = h.Result()
					got <- err
				}()
				p.Close()
				err := <-got
				if err != nil && !errors.Is(err, wsrt.ErrPoolClosed) {
					t.Fatalf("iteration %d: racing submit resolved with %v, want nil or ErrPoolClosed", i, err)
				}
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, c.run)
	}
}

// TestPoolCloseDrainsQueue fails queued jobs with ErrPoolClosed at
// shutdown instead of leaving their handles hanging.
func TestPoolCloseDrainsQueue(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 8, Options: sched.Options{GrowableDeque: true}})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocker, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(12), Engine: atc(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.Started()

	queued := make([]*wsrt.JobHandle, 0, 4)
	for i := 0; i < 4; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, h)
	}

	// Start Close first so the shutdown signal is raised before the running
	// job is released — the dispatcher must then drain the queue instead of
	// running it.
	closeDone := make(chan struct{})
	go func() {
		p.Close()
		close(closeDone)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel() // release the running job so Close can finish
	<-closeDone

	if _, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()}); !errors.Is(err, wsrt.ErrPoolClosed) {
		t.Fatalf("submit after close: err = %v, want ErrPoolClosed", err)
	}
	for i, h := range queued {
		if _, err := h.Result(); !errors.Is(err, wsrt.ErrPoolClosed) {
			t.Fatalf("queued job %d: err = %v, want ErrPoolClosed", i, err)
		}
	}
}

// TestPoolQuarantineHeals is the fault-plane acceptance pin: a worker
// panic injected by the fault plan fails ONLY the owning job — the error
// wraps ErrJobPanicked, the quarantine counter moves, the shard re-enters
// the allocator, and the very next job on that same shard completes with
// the right answer and a clean trace.
func TestPoolQuarantineHeals(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 4})
	defer p.Close()

	h, err := p.Submit(wsrt.JobSpec{
		Prog:   nqueens.NewArray(5),
		Engine: atc(),
		Faults: faults.New(faults.Spec{Seed: 20100424, Panic: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(); !errors.Is(err, wsrt.ErrJobPanicked) {
		t.Fatalf("faulted job: err = %v, want ErrJobPanicked", err)
	}
	if got := p.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}

	rec := trace.NewRecorder()
	defer rec.Release()
	h2, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(5), Engine: atc(), Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.Result()
	if err != nil || res.Value != 10 {
		t.Fatalf("job on healed shard: value=%d err=%v, want 10", res.Value, err)
	}
	if cerr := rec.Check(res.Value, 10); cerr != nil {
		t.Fatalf("healed shard trace: %v", cerr)
	}
	if len(h.Shard()) != 1 || h.Shard()[0] != h2.Shard()[0] {
		t.Fatalf("healed job ran on shard %v, want the quarantined shard %v", h2.Shard(), h.Shard())
	}
	if got := p.Quarantined(); got != 1 {
		t.Fatalf("clean job moved Quarantined() to %d", got)
	}
}

// TestPoolMoreJobsThanWorkers floods a 2-worker pool with 6 concurrent
// jobs under both policies: every job completes with the right answer and
// the busy/running counters settle back to zero.
func TestPoolMoreJobsThanWorkers(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 2, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 16,
	})
	defer p.Close()

	var hs []*wsrt.JobHandle
	for i := 0; i < 6; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		hs = append(hs, h)
		if i == 2 {
			p.SetShardPolicy(wsrt.ShardStatic) // flip mid-flood
		}
	}
	for i, h := range hs {
		if res, err := h.Result(); err != nil || res.Value != 55 {
			t.Fatalf("job %d: value=%d err=%v, want 55", i, res.Value, err)
		}
	}
	waitSettled(t, p)
}

// TestPoolAdaptiveSplitAfterQuarantine kills a grown adaptive job and then
// runs a pair of jobs over the healed workers: the pair must both finish
// on disjoint shards that re-use the quarantined workers.
func TestPoolAdaptiveSplitAfterQuarantine(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 8,
	})
	defer p.Close()

	h, err := p.Submit(wsrt.JobSpec{
		Prog:   nqueens.NewArray(6),
		Engine: atc(),
		Faults: faults.New(faults.Spec{Seed: 7, Panic: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(); !errors.Is(err, wsrt.ErrJobPanicked) {
		t.Fatalf("grown faulted job: err = %v, want ErrJobPanicked", err)
	}
	if len(h.Shard()) != 4 {
		t.Fatalf("adaptive job on idle pool got shard %v, want all 4 workers", h.Shard())
	}

	// Hold one job mid-run so the second demonstrably runs beside it on
	// the healed workers. Static placement keeps the gated job from
	// growing over the whole pool and starving its partner.
	p.SetShardPolicy(wsrt.ShardStatic)
	gate := make(chan struct{})
	g, err := p.Submit(wsrt.JobSpec{Prog: gateProg{gate: gate}, Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	<-g.Started()
	h2, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Result(); err != nil || res.Value != 55 {
		t.Fatalf("job beside gated job: value=%d err=%v, want 55", res.Value, err)
	}
	close(gate)
	if res, err := g.Result(); err != nil || res.Value != 1 {
		t.Fatalf("gated job: value=%d err=%v, want 1", res.Value, err)
	}
	for _, w := range g.Shard() {
		for _, x := range h2.Shard() {
			if w == x {
				t.Fatalf("concurrent healed shards overlap: %v / %v", g.Shard(), h2.Shard())
			}
		}
	}
	waitSettled(t, p)
}

// TestPoolPolicyFlipMidQuarantine flips the shard policy while a faulted
// job is dying: the flip must not strand the quarantined workers, and jobs
// submitted under the new policy complete.
func TestPoolPolicyFlipMidQuarantine(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 8,
	})
	defer p.Close()

	h, err := p.Submit(wsrt.JobSpec{
		Prog:   nqueens.NewArray(6),
		Engine: atc(),
		Faults: faults.New(faults.Spec{Seed: 7, Panic: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	p.SetShardPolicy(wsrt.ShardStatic) // flip while the faulted job dies
	if _, err := h.Result(); !errors.Is(err, wsrt.ErrJobPanicked) {
		t.Fatalf("faulted job: err = %v, want ErrJobPanicked", err)
	}
	for i := 0; i < 4; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
		if err != nil {
			t.Fatalf("submit %d after flip: %v", i, err)
		}
		if res, err := h.Result(); err != nil || res.Value != 55 {
			t.Fatalf("post-flip job %d: value=%d err=%v, want 55", i, res.Value, err)
		}
		if len(h.Shard()) != 2 {
			t.Fatalf("post-flip static shard %v, want width 2", h.Shard())
		}
	}
	if got := p.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}
	waitSettled(t, p)
}

// waitSettled polls until the pool's busy and running counters return to
// zero — quarantines and floods must not leave phantom occupancy behind.
func waitSettled(t *testing.T, p *wsrt.Pool) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if p.BusyWorkers() == 0 && p.RunningJobs() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("pool never settled: busy=%d running=%d", p.BusyWorkers(), p.RunningJobs())
}

// TestPoolSLOAdvisor exercises the SLO shard policy end to end: without
// an advisor the pool falls back to adaptive sizing (a lone job grows to
// the whole pool); with an advisor installed, the advisor's claim count
// sizes the shard, and the demand it sees includes the external queue
// depth the serving layer reports.
func TestPoolSLOAdvisor(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardSLO,
		QueueCapacity: 8, Options: sched.Options{GrowableDeque: true},
	})
	defer p.Close()
	if got := p.ShardPolicy(); got != wsrt.ShardSLO {
		t.Fatalf("ShardPolicy = %q, want slo", got)
	}

	h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h.Result(); err != nil || len(res.Shard) != 4 {
		t.Fatalf("advisorless slo shard = %v err=%v, want the whole pool", res.Shard, err)
	}

	var mu sync.Mutex
	var seenWaiting []int
	p.SetExternalQueueDepth(func() int { return 7 })
	p.SetShardAdvisor(func(waiting, slots, free int) int {
		mu.Lock()
		seenWaiting = append(seenWaiting, waiting)
		mu.Unlock()
		return 2
	})
	h2, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.Result()
	if err != nil || res.Value != 55 {
		t.Fatalf("advised job: value=%d err=%v, want 55", res.Value, err)
	}
	if len(res.Shard) != 2 {
		t.Fatalf("advised shard = %v, want width 2 (4 free / 2 claims)", res.Shard)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seenWaiting) == 0 || seenWaiting[0] < 7 {
		t.Fatalf("advisor saw waiting=%v, want >= the external depth 7", seenWaiting)
	}
}

// TestPoolSetShardPolicySLO flips a running pool to the SLO policy.
func TestPoolSetShardPolicySLO(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 4})
	defer p.Close()
	p.SetShardPolicy(wsrt.ShardSLO)
	if got := p.ShardPolicy(); got != wsrt.ShardSLO {
		t.Fatalf("ShardPolicy after flip = %q, want slo", got)
	}
}
