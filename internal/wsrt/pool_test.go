package wsrt_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"adaptivetc/internal/cilk"
	"adaptivetc/internal/core"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/nqueens"
)

// poolEngine adapts an engine constructor for JobSpec.
func atc() wsrt.PoolEngine { return core.New() }

// TestPoolRunsJobs submits a stream of jobs with known answers through one
// resident pool and checks every result.
func TestPoolRunsJobs(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 16, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	want := map[string]int64{"fib": 55, "nqueens": 724}
	for i := 0; i < 8; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		res, err := h.Result()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res.Value != want["fib"] {
			t.Fatalf("job %d: value %d, want %d", i, res.Value, want["fib"])
		}
		if res.Stats.QueueWait < 0 {
			t.Fatalf("job %d: negative queue wait", i)
		}
	}
	h, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(10), Engine: cilk.New()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want["nqueens"] {
		t.Fatalf("nqueens: value %d, want %d", res.Value, want["nqueens"])
	}
	if got := p.Served(); got != 9 {
		t.Fatalf("served %d jobs, want 9", got)
	}
}

// TestPoolQueueFull fills the admission queue while the pool is blocked on
// a long job and checks the overflow submission is rejected, not queued.
func TestPoolQueueFull(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 2, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	// Occupy the workers with a job that waits for our signal.
	ctx, cancel := context.WithCancel(context.Background())
	blocker, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(12), Engine: atc(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.Started()

	// Fill the queue behind it.
	handles := make([]*wsrt.JobHandle, 0, 2)
	for i := 0; i < 2; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()})
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	if _, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()}); !errors.Is(err, wsrt.ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}

	// Unblock; everything queued must still complete.
	cancel()
	if _, err := blocker.Result(); err == nil {
		t.Fatal("cancelled blocker reported success")
	}
	for i, h := range handles {
		if res, err := h.Result(); err != nil || res.Value != 5 {
			t.Fatalf("queued job %d after cancel: value=%d err=%v", i, res.Value, err)
		}
	}
}

// TestPoolUsableAfterAbort cancels a job mid-run and checks the next job on
// the same pool still computes the right answer — the deque reset between
// jobs must drop the aborted job's leftover frames.
func TestPoolUsableAfterAbort(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	h, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(13), Engine: atc(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-h.Started()
	time.Sleep(5 * time.Millisecond) // let frames pile up in the deques
	cancel()
	if _, err := h.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job: err = %v, want context.Canceled", err)
	}

	h2, err := p.Submit(wsrt.JobSpec{Prog: fib.New(12), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Result(); err != nil || res.Value != 144 {
		t.Fatalf("job after abort: value=%d err=%v, want 144", res.Value, err)
	}
}

// TestPoolJobPanicIsContained converts a program panic into that job's
// failure without taking the pool down.
func TestPoolJobPanicIsContained(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 4, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()

	h, err := p.Submit(wsrt.JobSpec{Prog: panicProg{}, Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Result(); err == nil {
		t.Fatal("panicking job reported success")
	}

	h2, err := p.Submit(wsrt.JobSpec{Prog: fib.New(10), Engine: atc()})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := h2.Result(); err != nil || res.Value != 55 {
		t.Fatalf("job after panic: value=%d err=%v, want 55", res.Value, err)
	}
}

// panicProg is a binary tree whose nodes panic at depth 3 — a buggy user
// program the pool must contain.
type panicProg struct{}

type panicWS struct{}

func (panicWS) Clone() sched.Workspace { return panicWS{} }
func (panicWS) Bytes() int             { return 0 }

func (panicProg) Name() string          { return "panicker" }
func (panicProg) Root() sched.Workspace { return panicWS{} }

func (panicProg) Terminal(ws sched.Workspace, depth int) (int64, bool) {
	if depth >= 3 {
		panic("panicProg: boom")
	}
	return 0, false
}

func (panicProg) Moves(ws sched.Workspace, depth int) int       { return 2 }
func (panicProg) Apply(ws sched.Workspace, depth, m int) bool   { return true }
func (panicProg) Undo(ws sched.Workspace, depth, m int)         {}

// TestPoolCloseDrainsQueue fails queued jobs with ErrPoolClosed at
// shutdown instead of leaving their handles hanging.
func TestPoolCloseDrainsQueue(t *testing.T) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 1, QueueCapacity: 8, Options: sched.Options{GrowableDeque: true}})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocker, err := p.Submit(wsrt.JobSpec{Prog: nqueens.NewArray(12), Engine: atc(), Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.Started()

	queued := make([]*wsrt.JobHandle, 0, 4)
	for i := 0; i < 4; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, h)
	}

	// Start Close first so the shutdown signal is raised before the running
	// job is released — the dispatcher must then drain the queue instead of
	// running it.
	closeDone := make(chan struct{})
	go func() {
		p.Close()
		close(closeDone)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel() // release the running job so Close can finish
	<-closeDone

	if _, err := p.Submit(wsrt.JobSpec{Prog: fib.New(5), Engine: atc()}); !errors.Is(err, wsrt.ErrPoolClosed) {
		t.Fatalf("submit after close: err = %v, want ErrPoolClosed", err)
	}
	for i, h := range queued {
		if _, err := h.Result(); !errors.Is(err, wsrt.ErrPoolClosed) {
			t.Fatalf("queued job %d: err = %v, want ErrPoolClosed", i, err)
		}
	}
}
