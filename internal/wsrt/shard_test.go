package wsrt

import (
	"reflect"
	"testing"
)

// TestShardAllocStatic checks the equal-width policy: every job gets its
// share of the free workers divided by the open slots, independent of how
// many jobs are actually waiting.
func TestShardAllocStatic(t *testing.T) {
	a := newShardAlloc(4, 2)
	s1 := a.grab(ShardStatic, 0)
	if want := []int{0, 1}; !reflect.DeepEqual(s1, want) {
		t.Fatalf("first static shard = %v, want %v", s1, want)
	}
	s2 := a.grab(ShardStatic, 5)
	if want := []int{2, 3}; !reflect.DeepEqual(s2, want) {
		t.Fatalf("second static shard = %v, want %v", s2, want)
	}
	if s3 := a.grab(ShardStatic, 0); s3 != nil {
		t.Fatalf("grab with all slots taken = %v, want nil", s3)
	}
	a.release(s1)
	if s4 := a.grab(ShardStatic, 0); !reflect.DeepEqual(s4, []int{0, 1}) {
		t.Fatalf("shard after release = %v, want [0 1]", s4)
	}
}

// TestShardAllocStaticUneven spreads a non-divisible worker count: the
// last job takes whatever remains, so no worker idles forever.
func TestShardAllocStaticUneven(t *testing.T) {
	a := newShardAlloc(5, 2)
	if s := a.grab(ShardStatic, 0); len(s) != 2 {
		t.Fatalf("first of two shards over 5 workers has width %d, want 2", len(s))
	}
	if s := a.grab(ShardStatic, 0); len(s) != 3 {
		t.Fatalf("second shard has width %d, want 3 (the remainder)", len(s))
	}
}

// TestShardAllocAdaptive checks grow-and-split: a job admitted to an idle
// pool takes every worker; with jobs waiting, the free set is split.
func TestShardAllocAdaptive(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardAdaptive, 0) // queue empty: grow to the whole pool
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(grown, want) {
		t.Fatalf("idle adaptive shard = %v, want %v", grown, want)
	}
	if s := a.grab(ShardAdaptive, 3); s != nil {
		t.Fatalf("no free workers but grab returned %v", s)
	}
	a.release(grown)

	split := a.grab(ShardAdaptive, 1) // one job waiting: split the pool
	if want := []int{0, 1}; !reflect.DeepEqual(split, want) {
		t.Fatalf("split adaptive shard = %v, want %v", split, want)
	}
	rest := a.grab(ShardAdaptive, 0)
	if want := []int{2, 3}; !reflect.DeepEqual(rest, want) {
		t.Fatalf("second adaptive shard = %v, want %v", rest, want)
	}
}

// TestShardAllocPolicyFlip flips adaptive→static while a grown shard holds
// every worker: the static grab must wait (nil) rather than hand out an
// overlapping or empty shard.
func TestShardAllocPolicyFlip(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardAdaptive, 0)
	if len(grown) != 4 {
		t.Fatalf("grown shard width %d, want 4", len(grown))
	}
	if s := a.grab(ShardStatic, 0); s != nil {
		t.Fatalf("static grab while all workers held = %v, want nil", s)
	}
	a.release(grown)
	if s := a.grab(ShardStatic, 0); len(s) != 2 {
		t.Fatalf("static grab after release has width %d, want 2", len(s))
	}
}

// TestShardAllocDisjoint grabs under mixed policies and waiting counts and
// checks no worker is ever in two live shards.
func TestShardAllocDisjoint(t *testing.T) {
	a := newShardAlloc(7, 3)
	held := map[int][]int{}
	owned := map[int]bool{}
	polFor := func(i int) ShardPolicy {
		if i%2 == 0 {
			return ShardAdaptive
		}
		return ShardStatic
	}
	id := 0
	for step := 0; step < 200; step++ {
		if step%3 == 2 && len(held) > 0 {
			for k, s := range held { // release an arbitrary live shard
				for _, w := range s {
					owned[w] = false
				}
				a.release(s)
				delete(held, k)
				break
			}
			continue
		}
		s := a.grab(polFor(step), step%4)
		if s == nil {
			continue
		}
		for _, w := range s {
			if owned[w] {
				t.Fatalf("step %d: worker %d handed out twice (live shards %v, new %v)", step, w, held, s)
			}
			owned[w] = true
		}
		held[id] = s
		id++
	}
}
