package wsrt

import (
	"reflect"
	"testing"
)

// TestShardAllocStatic checks the equal-width policy: every job gets its
// share of the free workers divided by the open slots, independent of how
// many jobs are actually waiting.
func TestShardAllocStatic(t *testing.T) {
	a := newShardAlloc(4, 2)
	s1 := a.grab(ShardStatic, 0)
	if want := []int{0, 1}; !reflect.DeepEqual(s1, want) {
		t.Fatalf("first static shard = %v, want %v", s1, want)
	}
	s2 := a.grab(ShardStatic, 5)
	if want := []int{2, 3}; !reflect.DeepEqual(s2, want) {
		t.Fatalf("second static shard = %v, want %v", s2, want)
	}
	if s3 := a.grab(ShardStatic, 0); s3 != nil {
		t.Fatalf("grab with all slots taken = %v, want nil", s3)
	}
	a.release(s1)
	if s4 := a.grab(ShardStatic, 0); !reflect.DeepEqual(s4, []int{0, 1}) {
		t.Fatalf("shard after release = %v, want [0 1]", s4)
	}
}

// TestShardAllocStaticUneven spreads a non-divisible worker count: the
// last job takes whatever remains, so no worker idles forever.
func TestShardAllocStaticUneven(t *testing.T) {
	a := newShardAlloc(5, 2)
	if s := a.grab(ShardStatic, 0); len(s) != 2 {
		t.Fatalf("first of two shards over 5 workers has width %d, want 2", len(s))
	}
	if s := a.grab(ShardStatic, 0); len(s) != 3 {
		t.Fatalf("second shard has width %d, want 3 (the remainder)", len(s))
	}
}

// TestShardAllocAdaptive checks grow-and-split: a job admitted to an idle
// pool takes every worker; with jobs waiting, the free set is split.
func TestShardAllocAdaptive(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardAdaptive, 0) // queue empty: grow to the whole pool
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(grown, want) {
		t.Fatalf("idle adaptive shard = %v, want %v", grown, want)
	}
	if s := a.grab(ShardAdaptive, 3); s != nil {
		t.Fatalf("no free workers but grab returned %v", s)
	}
	a.release(grown)

	split := a.grab(ShardAdaptive, 1) // one job waiting: split the pool
	if want := []int{0, 1}; !reflect.DeepEqual(split, want) {
		t.Fatalf("split adaptive shard = %v, want %v", split, want)
	}
	rest := a.grab(ShardAdaptive, 0)
	if want := []int{2, 3}; !reflect.DeepEqual(rest, want) {
		t.Fatalf("second adaptive shard = %v, want %v", rest, want)
	}
}

// TestShardAllocPolicyFlip flips adaptive→static while a grown shard holds
// every worker: the static grab must wait (nil) rather than hand out an
// overlapping or empty shard.
func TestShardAllocPolicyFlip(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardAdaptive, 0)
	if len(grown) != 4 {
		t.Fatalf("grown shard width %d, want 4", len(grown))
	}
	if s := a.grab(ShardStatic, 0); s != nil {
		t.Fatalf("static grab while all workers held = %v, want nil", s)
	}
	a.release(grown)
	if s := a.grab(ShardStatic, 0); len(s) != 2 {
		t.Fatalf("static grab after release has width %d, want 2", len(s))
	}
}

// TestShardAllocDisjoint grabs under mixed policies and waiting counts and
// checks no worker is ever in two live shards.
func TestShardAllocDisjoint(t *testing.T) {
	a := newShardAlloc(7, 3)
	held := map[int][]int{}
	owned := map[int]bool{}
	polFor := func(i int) ShardPolicy {
		if i%2 == 0 {
			return ShardAdaptive
		}
		return ShardStatic
	}
	id := 0
	for step := 0; step < 200; step++ {
		if step%3 == 2 && len(held) > 0 {
			for k, s := range held { // release an arbitrary live shard
				for _, w := range s {
					owned[w] = false
				}
				a.release(s)
				delete(held, k)
				break
			}
			continue
		}
		s := a.grab(polFor(step), step%4)
		if s == nil {
			continue
		}
		for _, w := range s {
			if owned[w] {
				t.Fatalf("step %d: worker %d handed out twice (live shards %v, new %v)", step, w, held, s)
			}
			owned[w] = true
		}
		held[id] = s
		id++
	}
}

// TestShardAllocSingleWorker pins the degenerate pool: one worker, two job
// slots. The lone worker is handed out whole, a second grab starves until
// release, and the free set survives the cycle.
func TestShardAllocSingleWorker(t *testing.T) {
	a := newShardAlloc(1, 2)
	s1 := a.grab(ShardStatic, 0)
	if want := []int{0}; !reflect.DeepEqual(s1, want) {
		t.Fatalf("single-worker shard = %v, want %v", s1, want)
	}
	if s := a.grab(ShardStatic, 3); s != nil {
		t.Fatalf("grab with no free workers = %v, want nil", s)
	}
	if s := a.grab(ShardAdaptive, 0); s != nil {
		t.Fatalf("adaptive grab with no free workers = %v, want nil", s)
	}
	a.release(s1)
	if s := a.grab(ShardAdaptive, 5); !reflect.DeepEqual(s, []int{0}) {
		t.Fatalf("shard after release = %v, want [0]", s)
	}
}

// TestShardAllocMoreSlotsThanWorkers allows more concurrent jobs than
// workers: width clamps at one, grabs stop when the free set empties (not
// when the slot count does), and releases re-admit in worker order.
func TestShardAllocMoreSlotsThanWorkers(t *testing.T) {
	a := newShardAlloc(2, 4)
	s1 := a.grab(ShardStatic, 0)
	s2 := a.grab(ShardStatic, 0)
	if len(s1) != 1 || len(s2) != 1 || s1[0] == s2[0] {
		t.Fatalf("two one-wide disjoint shards wanted, got %v and %v", s1, s2)
	}
	if s := a.grab(ShardStatic, 0); s != nil {
		t.Fatalf("third grab with 2 workers = %v, want nil (free set empty)", s)
	}
	a.release(s2)
	if s := a.grab(ShardAdaptive, 9); !reflect.DeepEqual(s, s2) {
		t.Fatalf("released worker not re-admitted: got %v, want %v", s, s2)
	}
}

// TestShardAllocSplitWhileHealing models a quarantined shard re-entering
// the allocator: a grown shard dies (its release is the heal), and the
// freed workers must split cleanly between the jobs that queued up behind
// the failure.
func TestShardAllocSplitWhileHealing(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardAdaptive, 0) // the job that will panic: all 4 workers
	if len(grown) != 4 {
		t.Fatalf("grown shard width %d, want 4", len(grown))
	}
	a.release(grown) // quarantine heal: the whole shard returns

	split := a.grab(ShardAdaptive, 1) // two jobs queued behind the failure
	rest := a.grab(ShardAdaptive, 0)
	if len(split) != 2 || len(rest) != 2 {
		t.Fatalf("healed workers split %v / %v, want two width-2 shards", split, rest)
	}
	for _, w := range split {
		for _, x := range rest {
			if w == x {
				t.Fatalf("healed split not disjoint: %v / %v", split, rest)
			}
		}
	}
}

// TestShardAllocFlipMidHeal flips adaptive→static while half the pool is
// still held by a live job: the static grab must size against the shrunken
// free set, never against workers a quarantined-then-healed shard already
// handed elsewhere.
func TestShardAllocFlipMidHeal(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardAdaptive, 0)
	a.release(grown) // heal
	half := a.grab(ShardAdaptive, 1)
	if want := []int{0, 1}; !reflect.DeepEqual(half, want) {
		t.Fatalf("post-heal split = %v, want %v", half, want)
	}
	// Policy flips to static while [2 3] is free and one slot remains.
	s := a.grab(ShardStatic, 0)
	if want := []int{2, 3}; !reflect.DeepEqual(s, want) {
		t.Fatalf("static grab mid-heal = %v, want %v", s, want)
	}
	if g := a.grab(ShardStatic, 0); g != nil {
		t.Fatalf("grab past capacity = %v, want nil", g)
	}
	a.release(half)
	a.release(s)
	if got := a.grab(ShardAdaptive, 0); len(got) != 4 {
		t.Fatalf("full free set after heals: got %v, want all 4 workers", got)
	}
}

// TestShardAllocSLOWithoutAdvisor checks the fallback contract: a pool
// set to the SLO policy but given no advisor behaves exactly like the
// adaptive policy — grow on an idle pool, split when jobs wait.
func TestShardAllocSLOWithoutAdvisor(t *testing.T) {
	a := newShardAlloc(4, 2)
	grown := a.grab(ShardSLO, 0)
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(grown, want) {
		t.Fatalf("idle slo shard = %v, want %v", grown, want)
	}
	a.release(grown)
	split := a.grab(ShardSLO, 1)
	if want := []int{0, 1}; !reflect.DeepEqual(split, want) {
		t.Fatalf("slo shard with one waiter = %v, want %v", split, want)
	}
}

// TestShardAllocGrabClaims pins the clamping contract of the advisor
// entry point: claims below one grow to the whole free set, claims above
// the open slots are cut down to them, and exhaustion returns nil.
func TestShardAllocGrabClaims(t *testing.T) {
	a := newShardAlloc(8, 4)
	whole := a.grabClaims(0) // < 1 clamps to 1: the whole pool
	if len(whole) != 8 {
		t.Fatalf("grabClaims(0) width = %d, want 8", len(whole))
	}
	a.release(whole)

	first := a.grabClaims(100) // clamped to the 4 open slots: width 2
	if len(first) != 2 {
		t.Fatalf("grabClaims(100) width = %d, want 2", len(first))
	}
	rest := a.grabClaims(1) // one claim: everything still free
	if len(rest) != 6 {
		t.Fatalf("grabClaims(1) width = %d, want 6", len(rest))
	}
	if s := a.grabClaims(1); s != nil {
		t.Fatalf("grabClaims with no free workers = %v, want nil", s)
	}
}

// TestShardPolicyValid pins the policy name set.
func TestShardPolicyValid(t *testing.T) {
	for _, p := range []ShardPolicy{ShardStatic, ShardAdaptive, ShardSLO} {
		if !p.valid() {
			t.Fatalf("policy %q should be valid", p)
		}
	}
	if ShardPolicy("p99").valid() {
		t.Fatal("unknown policy accepted")
	}
}
