package wsrt

import (
	"testing"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
)

// TestCompleteAfterFailure pins the abort semantics: once a worker has
// recorded a failure (deque overflow), a straggler's late completion — a
// deposit cascade reaching a nil parent while another worker aborts — must
// not overwrite the failed state and dress the run up as successful.
func TestCompleteAfterFailure(t *testing.T) {
	rt := &Runtime{}
	rt.failure.Store(&runError{err: sched.ErrDequeOverflow})
	rt.complete(42)
	if rt.done.Load() {
		t.Fatal("complete() after failure marked the run done")
	}
	if got := rt.value.Load(); got != 0 {
		t.Fatalf("complete() after failure stored value %d, want untouched 0", got)
	}

	// Without a failure the same call is the normal completion path.
	rt2 := &Runtime{}
	rt2.complete(42)
	if !rt2.done.Load() || rt2.value.Load() != 42 {
		t.Fatalf("complete() without failure: done=%v value=%d, want true/42",
			rt2.done.Load(), rt2.value.Load())
	}
}

// TestFinalizeStatsClampsWorkTime pins the WorkTime derivation: the
// overhead components are charged in windows that can overlap WorkerTime's
// endpoints on tiny runs, so the subtraction may dip below zero and must be
// clamped — a negative "useful work" figure poisons overhead percentages.
func TestFinalizeStatsClampsWorkTime(t *testing.T) {
	cases := []struct {
		name string
		in   sched.Stats
		want int64
	}{
		{
			name: "components below worker time",
			in:   sched.Stats{WorkerTime: 100, CopyTime: 10, DequeTime: 20, StealTime: 5},
			want: 65,
		},
		{
			name: "components exceed worker time",
			in:   sched.Stats{WorkerTime: 50, DequeTime: 30, WaitTime: 40},
			want: 0,
		},
		{
			name: "exactly zero",
			in:   sched.Stats{WorkerTime: 30, PollTime: 30},
			want: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := c.in
			finalizeStats(&st, true)
			if st.WorkTime != c.want {
				t.Fatalf("WorkTime = %d, want %d", st.WorkTime, c.want)
			}
		})
	}

	// Profile off: WorkTime is not derived at all.
	st := sched.Stats{WorkerTime: 100, WorkTime: -7}
	finalizeStats(&st, false)
	if st.WorkTime != -7 {
		t.Fatalf("finalizeStats touched WorkTime with profiling off: %d", st.WorkTime)
	}
}

// unitWS / leafProg: a one-node program for driving Run directly.
type unitWS struct{}

func (unitWS) Clone() sched.Workspace { return unitWS{} }
func (unitWS) Bytes() int             { return 0 }

type leafProg struct{}

func (leafProg) Name() string                                { return "leaf" }
func (leafProg) Root() sched.Workspace                       { return unitWS{} }
func (leafProg) Terminal(sched.Workspace, int) (int64, bool) { return 7, true }
func (leafProg) Moves(sched.Workspace, int) int              { return 0 }
func (leafProg) Apply(sched.Workspace, int, int) bool        { return false }
func (leafProg) Undo(sched.Workspace, int, int)              {}

// leafEngine visits the root node and returns its terminal value.
type leafEngine struct{}

func (leafEngine) Root(w *Worker) (int64, bool) {
	ws := w.Prog().Root()
	w.BeginNode(ws, 0)
	v, _ := w.Prog().Terminal(ws, 0)
	return v, true
}

func (leafEngine) Resume(*Worker, *Frame) (int64, bool) {
	panic("leafEngine: nothing is ever pushed, so nothing can be resumed")
}

// TestRunProfileOneNode is the S3 regression: a 1-node program under
// Profile spends essentially all of its only worker's time inside charge
// windows, the case where the WorkTime subtraction used to go negative.
func TestRunProfileOneNode(t *testing.T) {
	res, err := Run(leafProg{}, sched.Options{Workers: 1, Profile: true},
		leafEngine{}, "leaf")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Value != 7 {
		t.Fatalf("value = %d, want 7", res.Value)
	}
	if res.Stats.WorkTime < 0 {
		t.Fatalf("WorkTime = %d, want >= 0", res.Stats.WorkTime)
	}
}

// TestTraceKindSpecialMirror pins the cross-package constant: the trace
// checker cannot import wsrt (wsrt imports trace), so it mirrors
// KindSpecial numerically and this test keeps the two from drifting.
func TestTraceKindSpecialMirror(t *testing.T) {
	if trace.KindSpecial != int64(KindSpecial) {
		t.Fatalf("trace.KindSpecial = %d, wsrt.KindSpecial = %d; the mirror drifted",
			trace.KindSpecial, KindSpecial)
	}
}
