package wsrt_test

import (
	"testing"

	"adaptivetc/internal/cilk"
	"adaptivetc/internal/core"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/vtime"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/fib"
)

// BenchmarkPoolRoundTrip measures the submit→complete round-trip of a
// trivial job on a resident pool: the serving fast path, paying one
// wake/barrier cycle and a handful of allocations per job while deques,
// workers, Procs and frame free-lists persist.
func BenchmarkPoolRoundTrip(b *testing.B) {
	p := wsrt.NewPool(wsrt.PoolConfig{Workers: 2, QueueCapacity: 8, Options: sched.Options{GrowableDeque: true}})
	defer p.Close()
	prog := fib.New(5)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := p.Submit(wsrt.JobSpec{Prog: prog, Engine: core.New()})
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Result()
		if err != nil || res.Value != 5 {
			b.Fatalf("value=%d err=%v", res.Value, err)
		}
	}
}

// BenchmarkPoolShardedThroughput measures multi-job round-trip throughput
// with 1 vs 2 shards over the same 2 workers: a closed loop keeps as many
// jobs in flight as there are shards, so the sharded configuration's win
// is overlap, not extra hardware. BENCH_shards.json records a run.
func BenchmarkPoolShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2} {
		b.Run(map[int]string{1: "shards=1", 2: "shards=2"}[shards], func(b *testing.B) {
			p := wsrt.NewPool(wsrt.PoolConfig{
				Workers: 2, MaxConcurrentJobs: shards, ShardPolicy: wsrt.ShardStatic,
				QueueCapacity: 16, Options: sched.Options{GrowableDeque: true},
			})
			defer p.Close()
			prog := fib.New(5)

			b.ReportAllocs()
			b.ResetTimer()
			inflight := make([]*wsrt.JobHandle, 0, shards)
			for i := 0; i < b.N; i++ {
				if len(inflight) == shards {
					res, err := inflight[0].Result()
					if err != nil || res.Value != 5 {
						b.Fatalf("value=%d err=%v", res.Value, err)
					}
					inflight = inflight[:copy(inflight, inflight[1:])]
				}
				h, err := p.Submit(wsrt.JobSpec{Prog: prog, Engine: core.New()})
				if err != nil {
					b.Fatal(err)
				}
				inflight = append(inflight, h)
			}
			for _, h := range inflight {
				if res, err := h.Result(); err != nil || res.Value != 5 {
					b.Fatalf("value=%d err=%v", res.Value, err)
				}
			}
		})
	}
}

// BenchmarkPoolStealPolicies measures closed-loop job throughput on a
// 4-worker resident pool running a steal-heavy Cilk job (a stealable
// task at every spawn) for each steal policy on both deque variants.
// ns/op is per completed job; BENCH_steal.json records a run.
func BenchmarkPoolStealPolicies(b *testing.B) {
	for _, relaxed := range []bool{false, true} {
		variant := "the"
		if relaxed {
			variant = "relaxed"
		}
		for _, policy := range wsrt.StealPolicyNames() {
			b.Run(variant+"/"+policy, func(b *testing.B) {
				p := wsrt.NewPool(wsrt.PoolConfig{
					Workers: 4, QueueCapacity: 8,
					Options: sched.Options{GrowableDeque: true, RelaxedDeque: relaxed, StealPolicy: policy},
				})
				defer p.Close()
				prog := fib.New(16)

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h, err := p.Submit(wsrt.JobSpec{Prog: prog, Engine: cilk.New()})
					if err != nil {
						b.Fatal(err)
					}
					res, err := h.Result()
					if err != nil || res.Value != 987 {
						b.Fatalf("value=%d err=%v", res.Value, err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchRoundTrip is the same trivial job through the batch path —
// per-run deque construction, worker goroutine spawning, cold free-lists —
// the cost the resident pool amortises away.
func BenchmarkBatchRoundTrip(b *testing.B) {
	prog := fib.New(5)
	opt := sched.Options{Workers: 2, GrowableDeque: true, Platform: &vtime.Real{Seed: 1}}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.New().Run(prog, opt)
		if err != nil || res.Value != 5 {
			b.Fatalf("value=%d err=%v", res.Value, err)
		}
	}
}
