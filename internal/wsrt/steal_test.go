package wsrt

import (
	"testing"

	"adaptivetc/internal/deque"
)

// testDeques builds n deques, with sizes[i] plain entries pushed into deque
// i (sizes may be shorter than n; missing sizes mean empty).
func testDeques(n int, sizes ...int) []deque.WorkDeque {
	ds := make([]deque.WorkDeque, n)
	for i := range ds {
		d := deque.NewGrowable(16, 20)
		if i < len(sizes) {
			for j := 0; j < sizes[i]; j++ {
				d.Push(&Frame{})
			}
		}
		ds[i] = d
	}
	return ds
}

func TestSplitmixIntnUnbiased(t *testing.T) {
	// With Lemire rejection the draw must be exactly uniform over small
	// ranges; a sloppy modulo over 2^64 would skew the low residues. 3 does
	// not divide 2^64, so it is the interesting case.
	s := newSplitmix(1, 0)
	const draws = 300000
	var counts [3]int
	for i := 0; i < draws; i++ {
		counts[s.intn(3)]++
	}
	for r, c := range counts {
		if c < draws/3-2000 || c > draws/3+2000 {
			t.Errorf("residue %d drawn %d times, want %d±2000", r, c, draws/3)
		}
	}
}

func TestSplitmixStreamsDisjoint(t *testing.T) {
	a, b := newSplitmix(7, 0), newSplitmix(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.next() == b.next() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent worker streams collided on %d of 64 draws", same)
	}
}

func TestPoliciesNeverPickSelf(t *testing.T) {
	for _, name := range StealPolicyNames() {
		p := StealPolicyByName(name)
		if p.Name() != name {
			t.Fatalf("policy %q resolves to %q", name, p.Name())
		}
		for _, n := range []int{2, 3, 5, 8} {
			ds := testDeques(n, 4, 4, 4, 4, 4, 4, 4, 4)
			for id := 0; id < n; id++ {
				th := p.NewThief(id, n, 1)
				for i := 0; i < 200; i++ {
					v, amount := th.Pick(ds)
					if v == id {
						t.Fatalf("%s: thief %d of %d picked itself on attempt %d", name, id, n, i)
					}
					if v < 0 || v >= n {
						t.Fatalf("%s: thief %d of %d picked out-of-range victim %d", name, id, n, v)
					}
					if amount < 1 || amount > MaxStealBatch {
						t.Fatalf("%s: amount %d out of [1,%d]", name, amount, MaxStealBatch)
					}
				}
			}
		}
	}
}

func TestRandomPolicyCoversAllVictims(t *testing.T) {
	const n = 5
	ds := testDeques(n)
	th := StealPolicyByName("random").NewThief(2, n, 1)
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		v, _ := th.Pick(ds)
		seen[v]++
	}
	for v := 0; v < n; v++ {
		if v == 2 {
			continue
		}
		if seen[v] < 300 {
			t.Errorf("victim %d picked only %d of 2000 times (uniform would give 500)", v, seen[v])
		}
	}
}

func TestStealHalfAmounts(t *testing.T) {
	th := StealPolicyByName("steal-half").NewThief(0, 2, 1)
	for _, tc := range []struct {
		size, want int
	}{
		{0, 1},   // empty victim: still attempt one, to drive the starvation FSM
		{1, 1},   // half rounds down to zero: clamp up
		{6, 3},   // the classic half
		{40, 16}, // clamped to MaxStealBatch
	} {
		ds := testDeques(2, 0, tc.size)
		v, amount := th.Pick(ds)
		if v != 1 {
			t.Fatalf("size %d: victim %d, want 1 (only other deque)", tc.size, v)
		}
		if amount != tc.want {
			t.Errorf("size %d: amount %d, want %d", tc.size, amount, tc.want)
		}
	}
}

func TestRichestFirstPicksDeepest(t *testing.T) {
	ds := testDeques(4, 2, 0, 9, 5)
	th := StealPolicyByName("richest-first").NewThief(0, 4, 1)
	for i := 0; i < 10; i++ {
		v, amount := th.Pick(ds)
		if v != 2 || amount != 1 {
			t.Fatalf("pick = (%d, %d), want deepest victim (2, 1)", v, amount)
		}
	}
	// Richest is the thief itself: the runner-up wins.
	th3 := StealPolicyByName("richest-first").NewThief(2, 4, 1)
	if v, _ := th3.Pick(ds); v != 3 {
		t.Fatalf("thief at the deepest deque picked %d, want runner-up 3", v)
	}
	// All empty: random fallback, never self, spread over victims.
	empty := testDeques(4)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v, _ := th.Pick(empty)
		if v == 0 {
			t.Fatal("empty-fallback picked self")
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Errorf("empty-fallback covered only %d victims, want all 3", len(seen))
	}
}

func TestShardLocalPrefersWindow(t *testing.T) {
	const n = 16
	ds := testDeques(n, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4)
	th := StealPolicyByName("shard-local").NewThief(5, n, 1)
	inWindow, wide := 0, 0
	for i := 0; i < 1000; i++ {
		v, _ := th.Pick(ds)
		if v >= 4 && v < 8 {
			inWindow++
		} else {
			wide++
		}
	}
	// 3 of every 4 attempts stay in the window; wide attempts can also land
	// in it by chance, so in-window share must be clearly dominant but wide
	// picks must exist (the diffusion escape hatch).
	if inWindow < 700 {
		t.Errorf("only %d of 1000 picks in the thief's window, want ≥700", inWindow)
	}
	if wide == 0 {
		t.Error("no wide picks at all: work cannot diffuse between windows")
	}
	// A 2-worker domain degenerates to random without self-picks.
	small := testDeques(2, 4, 4)
	thSmall := StealPolicyByName("shard-local").NewThief(0, 2, 1)
	for i := 0; i < 50; i++ {
		if v, _ := thSmall.Pick(small); v != 1 {
			t.Fatalf("2-worker domain picked %d, want 1", v)
		}
	}
}

func TestStealPolicyRegistry(t *testing.T) {
	if !ValidStealPolicy("") {
		t.Error("empty policy name must be valid (the default)")
	}
	for _, name := range StealPolicyNames() {
		if !ValidStealPolicy(name) {
			t.Errorf("listed policy %q reported invalid", name)
		}
	}
	if ValidStealPolicy("round-robin") {
		t.Error("unknown policy reported valid")
	}
	if got := StealPolicyByName("no-such-policy").Name(); got != "random" {
		t.Errorf("unknown policy resolved to %q, want the random fallback", got)
	}
	if got := StealPolicyByName("").Name(); got != "random" {
		t.Errorf("empty policy resolved to %q, want random", got)
	}
}

// BenchmarkVictimPick measures one victim selection per policy — the cost
// the thief loop pays per attempt. The splitmix64 baseline replaced the
// shared Proc.Rand interface call (and its modulo bias); the structural
// policies add Size() scans on top.
func BenchmarkVictimPick(b *testing.B) {
	ds := testDeques(8, 3, 1, 7, 0, 2, 9, 4, 6)
	for _, name := range StealPolicyNames() {
		b.Run(name, func(b *testing.B) {
			th := StealPolicyByName(name).NewThief(0, 8, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				th.Pick(ds)
			}
		})
	}
}
