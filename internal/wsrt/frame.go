// Package wsrt is the shared work-stealing runtime underneath the Cilk,
// Cilk-SYNCHED, cutoff and AdaptiveTC engines: resumable task frames, the
// result-deposit protocol that replaces Cilk's closed/ready queues, the
// thief loop, and workspace-copy bookkeeping.
//
// # Frames and the deposit protocol
//
// A Frame is the saved continuation of one node of the computation: the
// workspace, the depth, the index of the next move to try (the saved
// program counter of the paper's slow version) and the partial sum of
// completed children. The executor of a node pushes its frame before diving
// into a child and pops it on the way out; a successful pop means nothing
// was stolen and the child's value was returned on the Go stack for free.
//
// When a thief steals a frame it becomes the frame's executor and resumes
// the move loop from Frame.PC. The old executor discovers the theft through
// a failed pop; at that point exactly one child value is in flight (the
// subtree it just finished), so it deposits that value into the frame and
// unwinds without touching shallower frames (they were stolen even earlier —
// thieves take from the head — and each of their in-flight children is a
// frame-bearing subtree that will deposit on its own completion).
//
// Pending counts the deposits a frame still expects: exactly one per steal
// of the frame, incremented under the victim's deque lock inside the steal
// (deque.StealAware), which orders it before the old executor's pop
// failure. The final executor that reaches the sync point with Pending > 0
// suspends the frame (the worker goes back to stealing, as in the paper's
// "Reaching a synchronization point" rule); the deposit that drains Pending
// to zero finalises the frame and cascades its total into the parent — the
// paper's "Terminate" rule (3).
//
// Special-task frames never suspend: their executor waits in
// sync_specialtask (see the adaptive engine), so depositors never finalise
// them; Waited marks that difference.
package wsrt

import (
	"sync"

	"adaptivetc/internal/sched"
)

// Kind tags which code version a stolen frame should resume as.
type Kind uint8

const (
	// KindFast resumes as the fast version (or check beyond the cutoff).
	KindFast Kind = iota
	// KindFast2 resumes as the fast_2 version (or sequence beyond 2×cutoff).
	KindFast2
	// KindSpecial marks an AdaptiveTC special task: a transition marker
	// that can never be stolen and never suspends.
	KindSpecial
	// KindChild marks an unstarted help-first child task: the frame holds
	// a node that has not begun executing (PC is meaningless until it is
	// started). Its theft is credited to the parent's join, because the
	// child's value — unlike a continuation's — belongs to the parent.
	KindChild
)

// Frame is a resumable task continuation.
type Frame struct {
	// Immutable after creation.
	Parent *Frame
	// Depth is the node's depth in the program's search tree — what gets
	// passed to Program calls.
	Depth int
	// Rel is the cutoff-relative depth. It usually equals Depth, but an
	// AdaptiveTC special task resets its children's Rel to 0 ("the depth
	// of the special task's child will be set to 0") while their tree
	// Depth keeps counting.
	Rel  int
	Kind Kind

	// Continuation state, written only by the current executor while the
	// frame is not in any deque.
	WS  sched.Workspace
	PC  int
	Sum int64

	// seq is the frame's trace identity, assigned by NewFrame only when the
	// run is traced (recycled frames get a fresh seq per task, so a seq
	// names one task, not one allocation). Zero when tracing is off.
	seq uint64

	// Join state, guarded by mu.
	mu        sync.Mutex
	extra     int64 // deposited child values
	pending   int   // deposits still expected; may dip negative transiently
	suspended bool  // final executor reached sync with pending > 0
	waited    bool  // special task: executor polls instead of suspending
}

// Special implements deque.Entry.
func (f *Frame) Special() bool { return f.Kind == KindSpecial }

// reset re-initialises a recycled frame for a new task. Fields are assigned
// individually (rather than by struct literal) so the mutex is not copied.
// The previous owner's last access was under mu (the finalising deposit or
// the completing Sync), which happens-before the recycler's acquisition of
// the frame, so the plain writes here are ordered after all old accesses.
func (f *Frame) reset(parent *Frame, ws sched.Workspace, depth, rel int, kind Kind) {
	f.Parent = parent
	f.Depth = depth
	f.Rel = rel
	f.Kind = kind
	f.WS = ws
	f.PC = 0
	f.Sum = 0
	f.extra = 0
	f.pending = 0
	f.suspended = false
	f.waited = false
}

// OnStolen implements deque.StealAware; the deque calls it under the
// victim's lock when the frame is successfully stolen. A stolen
// continuation owes a deposit to itself (the victim's in-flight child); a
// stolen help-first child owes its whole value to its parent instead.
func (f *Frame) OnStolen() {
	target := f
	if f.Kind == KindChild {
		target = f.Parent
	}
	target.mu.Lock()
	target.pending++
	target.mu.Unlock()
}

// Start converts a help-first child frame into an ordinary running frame:
// once an executor picks it up, any later theft of the frame (as a pushed
// continuation) follows the normal continuation accounting. It must be
// called before the frame is ever re-pushed.
func (f *Frame) Start() {
	if f.Kind == KindChild {
		f.Kind = KindFast
	}
}

// ExpectDeposit registers one future deposit outside the steal path. The
// AdaptiveTC check version uses it when pop_specialtask reports that a
// special task's child was taken: the child's subtree will deposit its
// total here instead of returning it inline. The help-first engine uses
// it *before* running a child inline, cancelling afterwards if the child
// completed — registering only after a child detaches would race with the
// child's finaliser.
func (f *Frame) ExpectDeposit() {
	f.mu.Lock()
	f.pending++
	f.mu.Unlock()
}

// CancelExpected withdraws one ExpectDeposit registration (the guarded
// outcome did not happen). It never finalises the frame: only real
// deposits can be the last word.
func (f *Frame) CancelExpected() {
	f.mu.Lock()
	f.pending--
	f.mu.Unlock()
}

// SyncOutcome is what the final executor observes at the sync point.
type SyncOutcome int

const (
	// SyncComplete: no outstanding children; the frame's total is final.
	SyncComplete SyncOutcome = iota
	// SyncSuspended: outstanding children; the frame was suspended and the
	// last depositor will finalise it. The executor must abandon it.
	SyncSuspended
)

// Sync is called by the frame's final executor at the synchronisation
// point with its local partial sum. On SyncComplete, total is the frame's
// final value. On SyncSuspended the frame now belongs to the depositors.
func (f *Frame) Sync(localSum int64) (total int64, outcome SyncOutcome) {
	f.mu.Lock()
	if f.pending > 0 {
		f.Sum = localSum
		f.suspended = true
		f.mu.Unlock()
		return 0, SyncSuspended
	}
	total = localSum + f.extra
	f.mu.Unlock()
	return total, SyncComplete
}

// DrainedAfter reports, for a waiting special task, whether all expected
// deposits have arrived, and if so the frame total given the executor's
// local sum. The executor must have finished registering ExpectDeposit
// calls before the first DrainedAfter (all increments precede the wait).
func (f *Frame) DrainedAfter(localSum int64) (total int64, done bool) {
	f.mu.Lock()
	if f.pending > 0 {
		f.mu.Unlock()
		return 0, false
	}
	total = localSum + f.extra
	f.mu.Unlock()
	return total, true
}

// MarkWaited flags the frame as a polled join (special task), so deposits
// never try to finalise it even when they drain pending to zero.
func (f *Frame) MarkWaited() {
	f.mu.Lock()
	f.waited = true
	f.mu.Unlock()
}

// deposit adds v to the frame and reports whether the caller must finalise
// it (it was suspended and this was the last expected deposit). When it
// returns true the caller owns the frame's total.
func (f *Frame) deposit(v int64) (total int64, finalise bool) {
	f.mu.Lock()
	if f.pending <= 0 && !f.waited {
		// Every deposit into an ordinary frame is pre-registered by
		// OnStolen under the victim's deque lock, which the failing pop
		// orders before us; pending < 1 here means a pop failed without a
		// matching steal. (Special tasks are exempt: their ExpectDeposit
		// races benignly with an early finaliser.)
		f.mu.Unlock()
		panic("wsrt: deposit into frame with no registered theft (THE protocol violation?)")
	}
	f.extra += v
	f.pending--
	if f.suspended && !f.waited && f.pending == 0 {
		total = f.Sum + f.extra
		f.mu.Unlock()
		return total, true
	}
	f.mu.Unlock()
	return 0, false
}
