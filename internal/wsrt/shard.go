// The shard allocator: the piece of the multi-job pool that decides which
// workers serve which job. A shard is a disjoint group of pool workers; a
// job admitted by the dispatcher is bound to exactly one shard, its
// runtime's victim set is the shard's deques, and the shard returns to the
// free set when the job finishes. Because every per-job structure — the
// Runtime, the engine instance, the deque slice, the starvation signals
// living inside those deques — is built over the shard, steal confinement
// and per-shard need_task/stolen_num state need no extra machinery: a
// worker in one shard cannot even name another shard's deques.
package wsrt

import "sort"

// ShardPolicy selects how the allocator sizes the worker group handed to
// the next job.
type ShardPolicy string

const (
	// ShardStatic gives every job its equal share of the pool: the free
	// workers divided by the job slots still unclaimed. A lone job on an
	// otherwise idle pool still gets only Workers/MaxConcurrentJobs
	// workers, keeping the remaining shards warm for instant admission.
	ShardStatic ShardPolicy = "static"
	// ShardAdaptive sizes shards against demand: a job admitted while the
	// queue is empty takes every free worker (the shard grows), and when
	// jobs are waiting behind it the free workers are split between the
	// waiters (the shard splits), up to MaxConcurrentJobs ways.
	ShardAdaptive ShardPolicy = "adaptive"
	// ShardSLO delegates the sizing decision to a ShardAdvisor installed
	// with Pool.SetShardAdvisor: the advisor sees live demand (waiting
	// jobs, open slots, free workers) and returns how many concurrent jobs
	// the free set should be split between — typically driven by an
	// SLO signal such as a priority class's live p99 rather than only the
	// idle/waiting counts the adaptive policy uses. Without an advisor it
	// behaves exactly like ShardAdaptive.
	ShardSLO ShardPolicy = "slo"
)

// valid reports whether p names a known policy.
func (p ShardPolicy) valid() bool {
	return p == ShardStatic || p == ShardAdaptive || p == ShardSLO
}

// shardAlloc owns the pool's free-worker set and hands out disjoint shards.
// It is used only by the dispatcher goroutine, so it needs no locking; the
// policy itself lives on the Pool as an atomic so tests and operators can
// flip it mid-stream.
type shardAlloc struct {
	maxJobs int
	free    []int // free worker ids, ascending for deterministic shards
	running int   // shards currently handed out
}

// newShardAlloc builds an allocator over workers 0..n-1 with at most
// maxJobs concurrent shards.
func newShardAlloc(n, maxJobs int) *shardAlloc {
	a := &shardAlloc{maxJobs: maxJobs, free: make([]int, n)}
	for i := range a.free {
		a.free[i] = i
	}
	return a
}

// grab forms a shard for the next job under policy, or returns nil when no
// shard can be formed right now (all slots taken, or — after a policy flip
// shrank the free set — no workers left). waiting is the number of jobs
// still queued behind the one being placed; the adaptive policy uses it to
// decide between growing and splitting.
func (a *shardAlloc) grab(policy ShardPolicy, waiting int) []int {
	if a.running >= a.maxJobs || len(a.free) == 0 {
		return nil
	}
	claims := a.maxJobs - a.running
	if policy == ShardAdaptive || policy == ShardSLO {
		claims = waiting + 1
	}
	return a.grabClaims(claims)
}

// grabClaims forms a shard sized to split the free workers between claims
// concurrent jobs (clamped to the open slots and to at least one). It is
// the common tail of grab and the entry point for the SLO policy, whose
// advisor computes claims from a live latency signal instead of counts.
func (a *shardAlloc) grabClaims(claims int) []int {
	if a.running >= a.maxJobs || len(a.free) == 0 {
		return nil
	}
	if slots := a.maxJobs - a.running; claims > slots {
		claims = slots
	}
	if claims < 1 {
		claims = 1
	}
	width := len(a.free) / claims
	if width < 1 {
		width = 1
	}
	shard := make([]int, width)
	copy(shard, a.free[:width])
	a.free = append(a.free[:0:0], a.free[width:]...)
	a.running++
	return shard
}

// release returns a finished job's shard to the free set.
func (a *shardAlloc) release(shard []int) {
	a.running--
	a.free = append(a.free, shard...)
	sort.Ints(a.free)
}
