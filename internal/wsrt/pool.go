// The resident scheduler pool: the pool-lifetime half of the pool/job
// split. A Pool owns N long-lived worker goroutines (Real platform), their
// deques and their frame free-lists, and executes a stream of jobs — root
// tasks of any wsrt engine — against them. Between jobs the workers park on
// a channel instead of exiting, so a job's cost is one wake/barrier cycle,
// not deque construction, goroutine spawning and free-list warm-up.
//
// Admission is controlled by a bounded queue: Submit never blocks, and a
// full queue is reported as ErrQueueFull (backpressure) rather than letting
// callers pile up behind a busy pool. Jobs run one at a time across all N
// workers — work-stealing parallelism is *within* a job; concurrency across
// jobs is the queue's — which keeps every scheduler invariant of the batch
// runtime intact per job, lets a per-job tracer observe a job in isolation,
// and bounds the memory of a misbehaving job to one runtime's worth.
//
// Every job gets its own Runtime (value, failure, stats, tracer) and its
// own cooperative stop flag wired to the submitter's context, checked at
// the runtime's poll points; a cancelled or expired job unwinds through the
// sched.Abort path, and the dispatcher then resets the deques so leftover
// frames cannot poison the next job.
package wsrt

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetc/internal/deque"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/vtime"
)

// PoolEngine is implemented by scheduling engines whose jobs can run on a
// resident Pool: everything built on this package (Cilk, Cilk-SYNCHED, the
// cut-off baselines, AdaptiveTC, help-first, SLAW). Tascell and the serial
// reference are not pool engines — they bring their own runtimes.
type PoolEngine interface {
	// Name identifies the engine in results.
	Name() string
	// NewExec builds the per-job execution strategy for a pool (or run)
	// with n workers. opt supplies strategy parameters (cutoff overrides,
	// fast_2 multiplier); it carries no pool state.
	NewExec(n int, opt sched.Options) Engine
}

// Pool errors.
var (
	// ErrQueueFull reports that the admission queue is at capacity; the
	// submitter should back off and retry (backpressure).
	ErrQueueFull = errors.New("wsrt: job queue full")
	// ErrPoolClosed reports a submission to (or a job drained by) a pool
	// that has been closed.
	ErrPoolClosed = errors.New("wsrt: pool closed")
)

// PoolConfig configures NewPool.
type PoolConfig struct {
	// Workers is the worker count; zero means 1.
	Workers int
	// QueueCapacity bounds the admission queue; zero means 64.
	QueueCapacity int
	// Options supplies the pool-wide scheduling parameters: cost model,
	// deque capacity and growability, max_stolen_num, seed. Platform, Ctx
	// and Tracer are ignored — the pool is always Real-platform, and
	// context/tracer are per-job (see JobSpec).
	Options sched.Options
}

// queueCapacityOrDefault returns the admission queue bound.
func (c PoolConfig) queueCapacityOrDefault() int {
	if c.QueueCapacity <= 0 {
		return 64
	}
	return c.QueueCapacity
}

// JobSpec describes one job: a root task to execute on the pool.
type JobSpec struct {
	// Prog is the program whose root task the job runs.
	Prog sched.Program
	// Engine is the scheduling strategy for this job.
	Engine PoolEngine
	// Ctx, when non-nil, cancels the job cooperatively — while it is still
	// queued (it then never starts) or mid-run (it aborts at the next poll
	// point). Nil means the job cannot be cancelled.
	Ctx context.Context
	// Tracer, when non-nil, records the job's scheduler events. The pool
	// Inits it at job start; the recorder must not be shared with another
	// in-flight job.
	Tracer *trace.Recorder
	// Profile enables the per-phase time breakdown for this job.
	Profile bool
}

// JobHandle is the submitter's view of an in-flight job.
type JobHandle struct {
	started chan struct{}
	done    chan struct{}
	res     sched.Result
	err     error
}

// Started is closed when the job leaves the queue and its workers begin.
func (h *JobHandle) Started() <-chan struct{} { return h.started }

// Done is closed when the job has finished (completed, failed, cancelled,
// or drained by Close).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Result blocks until the job finishes and returns its outcome. The
// result's Stats.QueueWait records the admission delay; Makespan is the
// job's wall-clock run time.
func (h *JobHandle) Result() (sched.Result, error) {
	<-h.done
	return h.res, h.err
}

// poolJob pairs a spec with its handle and job-scoped runtime.
type poolJob struct {
	spec      JobSpec
	name      string
	rt        *Runtime
	submitted time.Time
	wg        sync.WaitGroup // workers still running this job
	h         *JobHandle
}

func (j *poolJob) finish(res sched.Result, err error) {
	j.h.res, j.h.err = res, err
	close(j.h.done)
}

// Pool is a resident scheduler: long-lived workers serving a stream of
// jobs. Create with NewPool, submit with Submit, shut down with Close.
type Pool struct {
	n   int
	opt sched.Options

	deques  []deque.WorkDeque
	workers []*Worker
	wake    []chan *poolJob
	queue   chan *poolJob
	quit    chan struct{}
	joined  sync.WaitGroup // dispatcher + workers

	mu     sync.Mutex // guards Submit/Close handshake
	closed bool

	inflight atomic.Int64 // jobs submitted and not yet finished
	running  atomic.Int64 // 1 while a job occupies the workers
	served   atomic.Int64 // jobs finished (any outcome) since pool start
}

// NewPool builds a resident pool and starts its workers; they park until
// the first job arrives.
func NewPool(cfg PoolConfig) *Pool {
	opt := cfg.Options
	if cfg.Workers > 0 {
		opt.Workers = cfg.Workers
	}
	n := opt.WorkersOrDefault()
	p := &Pool{
		n:       n,
		opt:     opt,
		deques:  make([]deque.WorkDeque, n),
		workers: make([]*Worker, n),
		wake:    make([]chan *poolJob, n),
		queue:   make(chan *poolJob, cfg.queueCapacityOrDefault()),
		quit:    make(chan struct{}),
	}
	procs := vtime.NewRealProcs(n, opt.Seed)
	for i := 0; i < n; i++ {
		p.deques[i] = newDeque(opt)
		p.workers[i] = &Worker{ID: i, Proc: procs[i], Deque: p.deques[i]}
		p.wake[i] = make(chan *poolJob)
	}
	p.joined.Add(n + 1)
	for i := 0; i < n; i++ {
		go p.workerLoop(i)
	}
	go p.dispatch()
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.n }

// QueueDepth returns the number of jobs waiting for admission right now.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// QueueCapacity returns the admission queue bound.
func (p *Pool) QueueCapacity() int { return cap(p.queue) }

// InFlight returns the number of submitted jobs that have not finished
// (queued + running).
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Running reports whether a job currently occupies the workers.
func (p *Pool) Running() bool { return p.running.Load() != 0 }

// Served returns the number of jobs finished since the pool started.
func (p *Pool) Served() int64 { return p.served.Load() }

// Submit enqueues a job without blocking. It returns ErrQueueFull when the
// admission queue is at capacity and ErrPoolClosed after Close.
func (p *Pool) Submit(spec JobSpec) (*JobHandle, error) {
	if spec.Prog == nil || spec.Engine == nil {
		return nil, errors.New("wsrt: JobSpec needs Prog and Engine")
	}
	job := &poolJob{
		spec:      spec,
		name:      spec.Engine.Name(),
		submitted: time.Now(),
		h: &JobHandle{
			started: make(chan struct{}),
			done:    make(chan struct{}),
		},
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- job:
		p.inflight.Add(1)
		return job.h, nil
	default:
		return nil, ErrQueueFull
	}
}

// Close shuts the pool down: the running job (if any) finishes, every job
// still queued is failed with ErrPoolClosed, and the workers exit. Close
// blocks until all goroutines have joined; it is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.joined.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.joined.Wait()
}

// dispatch is the pool's coordinator goroutine: it admits one job at a
// time, runs it across all workers, and finalises it.
func (p *Pool) dispatch() {
	defer func() {
		for _, c := range p.wake {
			close(c)
		}
		p.joined.Done()
	}()
	for {
		// Prefer shutdown over further admissions once quit is closed.
		select {
		case <-p.quit:
			p.drain()
			return
		default:
		}
		select {
		case <-p.quit:
			p.drain()
			return
		case job := <-p.queue:
			p.runOne(job)
			p.inflight.Add(-1)
			p.served.Add(1)
		}
	}
}

// drain fails every job still queued at shutdown.
func (p *Pool) drain() {
	for {
		select {
		case job := <-p.queue:
			job.finish(sched.Result{Engine: job.name, Program: job.spec.Prog.Name(), Workers: p.n}, ErrPoolClosed)
			p.inflight.Add(-1)
			p.served.Add(1)
		default:
			return
		}
	}
}

// runOne executes one admitted job across all workers.
func (p *Pool) runOne(job *poolJob) {
	start := time.Now()
	queueWait := start.Sub(job.submitted)
	baseRes := sched.Result{
		Workers: p.n,
		Engine:  job.name,
		Program: job.spec.Prog.Name(),
	}
	baseRes.Stats.QueueWait = queueWait.Nanoseconds()
	if ctx := job.spec.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			// Cancelled while queued: never starts, costs the pool nothing.
			job.finish(baseRes, context.Cause(ctx))
			return
		}
	}

	rt := &Runtime{
		Prog:    job.spec.Prog,
		Costs:   p.opt.CostsOrDefault(),
		N:       p.n,
		Deques:  p.deques,
		Eng:     job.spec.Engine.NewExec(p.n, p.opt),
		profile: job.spec.Profile,
		tracer:  job.spec.Tracer,
		stop:    &sched.Stop{},
	}
	if rt.tracer != nil {
		rt.tracer.Init(p.n, int64(p.opt.MaxStolenNumOrDefault()))
		for i, d := range p.deques {
			d.SetTrace(rt.tracer.DequeHook(i))
		}
	}
	release := sched.WatchContext(job.spec.Ctx, rt.stop)

	job.rt = rt
	job.wg.Add(p.n)
	p.running.Store(1)
	close(job.h.started)
	for _, c := range p.wake {
		c <- job
	}
	job.wg.Wait()
	p.running.Store(0)
	release()

	st := collectStats(p.workers, p.deques, job.spec.Profile)
	st.QueueWait = queueWait.Nanoseconds()
	// Reset the deques for the next job: an aborted job leaves unconsumed
	// frames behind, and need_task/stolen_num must not leak across jobs.
	if rt.tracer != nil {
		for _, d := range p.deques {
			d.SetTrace(nil)
		}
	}
	for _, d := range p.deques {
		d.Reset()
	}

	res := baseRes
	res.Value = rt.value.Load()
	res.Makespan = time.Since(start).Nanoseconds()
	res.Stats = st
	var err error
	if f := rt.failure.Load(); f != nil {
		err = f.err
	}
	job.finish(res, err)
}

// workerLoop is one resident worker: park on the wake channel, run the
// job, hit the barrier, park again. This is the thief loop's "park between
// jobs instead of exiting".
func (p *Pool) workerLoop(i int) {
	defer p.joined.Done()
	w := p.workers[i]
	for job := range p.wake[i] {
		w.rt = job.rt
		w.Stats = sched.Stats{}
		w.tr = nil
		if job.rt.tracer != nil {
			w.tr = job.rt.tracer.WorkerLog(w.ID)
		}
		w.runJob(true)
		w.rt = nil
		job.wg.Done()
	}
}
