// The resident scheduler pool: the pool-lifetime half of the pool/job
// split. A Pool owns N long-lived worker goroutines (Real platform), their
// deques and their frame free-lists, and executes a stream of jobs — root
// tasks of any wsrt engine — against them. Between jobs the workers park on
// a channel instead of exiting, so a job's cost is one wake/barrier cycle,
// not deque construction, goroutine spawning and free-list warm-up.
//
// Admission is controlled by a bounded queue: Submit never blocks, and a
// full queue is reported as ErrQueueFull (backpressure) rather than letting
// callers pile up behind a busy pool. Up to MaxConcurrentJobs jobs run at
// once, each bound to its own shard — a disjoint group of workers handed
// out by the shard allocator (shard.go). Work-stealing parallelism is
// *within* a shard; a job's runtime is built over the shard's deques only,
// so steals are confined to the shard's victim set, one job's need_task
// starvation signal cannot re-open another job's subtree, and every
// scheduler invariant of the batch runtime holds per job exactly as it
// does for a whole-pool run. A per-job tracer therefore still observes its
// job in isolation, and the memory of a misbehaving job is bounded to one
// shard's worth of deques.
//
// Every job gets its own Runtime (value, failure, stats, tracer) and its
// own cooperative stop flag wired to the submitter's context, checked at
// the runtime's poll points; a cancelled or expired job unwinds through the
// sched.Abort path, and the finisher then resets the shard's deques — and
// only the shard's — so leftover frames cannot poison the next job while
// neighbouring shards keep running untouched.
package wsrt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adaptivetc/internal/deque"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/vtime"
)

// PoolEngine is implemented by scheduling engines whose jobs can run on a
// resident Pool: everything built on this package (Cilk, Cilk-SYNCHED, the
// cut-off baselines, AdaptiveTC, help-first, SLAW). Tascell and the serial
// reference are not pool engines — they bring their own runtimes.
type PoolEngine interface {
	// Name identifies the engine in results.
	Name() string
	// NewExec builds the per-job execution strategy for a pool (or run)
	// with n workers. opt supplies strategy parameters (cutoff overrides,
	// fast_2 multiplier); it carries no pool state.
	NewExec(n int, opt sched.Options) Engine
}

// Pool errors.
var (
	// ErrQueueFull reports that the admission queue is at capacity; the
	// submitter should back off and retry (backpressure).
	ErrQueueFull = errors.New("wsrt: job queue full")
	// ErrPoolClosed reports a submission to (or a job drained by) a pool
	// that has been closed.
	ErrPoolClosed = errors.New("wsrt: pool closed")
)

// PoolConfig configures NewPool.
type PoolConfig struct {
	// Workers is the worker count; zero means 1.
	Workers int
	// QueueCapacity bounds the admission queue; zero means 64.
	QueueCapacity int
	// MaxConcurrentJobs is the number of jobs the pool will run at once,
	// each on its own disjoint worker shard. Zero or one means the classic
	// single-job pool (one shard spanning every worker); values above
	// Workers are clamped to Workers.
	MaxConcurrentJobs int
	// ShardPolicy selects how shards are sized (see shard.go). The zero
	// value means ShardStatic. It can be flipped at runtime with
	// SetShardPolicy.
	ShardPolicy ShardPolicy
	// Options supplies the pool-wide scheduling parameters: cost model,
	// deque capacity and growability, max_stolen_num, seed. Platform, Ctx
	// and Tracer are ignored — the pool is always Real-platform, and
	// context/tracer are per-job (see JobSpec).
	Options sched.Options
	// Faults, when non-nil, injects pool-level faults: admission-queue
	// saturation (Submit reports ErrQueueFull though capacity remains) and
	// shard-allocator starvation (the dispatcher briefly cannot form a
	// shard). Worker-level faults are per-job (see JobSpec.Faults). Nil —
	// the default — costs nothing anywhere.
	Faults *faults.Plan
}

// queueCapacityOrDefault returns the admission queue bound.
func (c PoolConfig) queueCapacityOrDefault() int {
	if c.QueueCapacity <= 0 {
		return 64
	}
	return c.QueueCapacity
}

// JobSpec describes one job: a root task to execute on the pool.
type JobSpec struct {
	// Prog is the program whose root task the job runs.
	Prog sched.Program
	// Engine is the scheduling strategy for this job.
	Engine PoolEngine
	// Ctx, when non-nil, cancels the job cooperatively — while it is still
	// queued (it then never starts) or mid-run (it aborts at the next poll
	// point). Nil means the job cannot be cancelled.
	Ctx context.Context
	// Tracer, when non-nil, records the job's scheduler events. The pool
	// Inits it at job start with the job's shard width; the recorder must
	// not be shared with another in-flight job.
	Tracer *trace.Recorder
	// Profile enables the per-phase time breakdown for this job.
	Profile bool
	// Faults, when non-nil, injects the plan's worker- and deque-level
	// faults into this job only: stalls and panics at node entry, delayed
	// deposits, forced overflows, forced steal failures. Streams are
	// derived per shard-local worker, so the same plan on the same seed
	// draws the same decisions whichever shard hosts the job.
	Faults *faults.Plan
	// Deadline, when positive, bounds the job's run time (counted from the
	// moment its shard workers wake, not from submission). On expiry the
	// job's cooperative stop flag fires and the job aborts at the next poll
	// point with an error wrapping context.DeadlineExceeded — converting a
	// stalled worker into an orderly abort instead of a wedged shard.
	Deadline time.Duration
	// StealPolicy overrides the pool-wide steal strategy
	// (PoolConfig.Options.StealPolicy) for this job: "random",
	// "steal-half", "richest-first" or "shard-local". Empty means the pool
	// default; unknown names fall back to "random".
	StealPolicy string
	// FirstSolution runs the job with first-solution-wins semantics (see
	// sched.Options.FirstSolution): the first nonzero terminal value becomes
	// the result, siblings are cancelled cooperatively. Done jobs should be
	// invariant-checked with trace.CheckTruncatedMultiplicity — the losers'
	// deposit cascades are truncated by design.
	FirstSolution bool
}

// JobHandle is the submitter's view of an in-flight job.
type JobHandle struct {
	started chan struct{}
	done    chan struct{}
	shard   []int
	startAt time.Time
	endAt   time.Time
	res     sched.Result
	err     error
}

// Started is closed when the job leaves the queue and its shard's workers
// begin.
func (h *JobHandle) Started() <-chan struct{} { return h.started }

// Done is closed when the job has finished (completed, failed, cancelled,
// or drained by Close).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Shard returns the global ids of the pool workers the job is bound to.
// Valid after Started; nil for a job that never started.
func (h *JobHandle) Shard() []int { return h.shard }

// Interval returns the window during which the job held its shard
// exclusively: start is stamped before the shard's workers wake, end after
// the last worker hit the barrier and the shard's deques were reset, but
// before the shard returns to the free set. Valid after Done; both zero
// for a job that never started.
func (h *JobHandle) Interval() (start, end time.Time) { return h.startAt, h.endAt }

// Result blocks until the job finishes and returns its outcome. The
// result's Stats.QueueWait records the admission delay; Makespan is the
// job's wall-clock run time; Workers and Shard describe the worker group
// the job actually ran on.
func (h *JobHandle) Result() (sched.Result, error) {
	<-h.done
	return h.res, h.err
}

// poolJob pairs a spec with its handle and job-scoped runtime.
type poolJob struct {
	spec      JobSpec
	name      string
	rt        *Runtime
	submitted time.Time
	started   time.Time
	shard     []int             // global worker ids, shard-local order
	deques    []deque.WorkDeque // the shard's deques, indexed by local id
	workers   []*Worker         // the shard's workers, indexed by local id
	release   func()            // context watcher release
	deadline  *time.Timer       // run-deadline timer; nil unless JobSpec.Deadline
	wg        sync.WaitGroup    // shard workers still running this job
	h         *JobHandle
}

func (j *poolJob) finish(res sched.Result, err error) {
	j.h.res, j.h.err = res, err
	close(j.h.done)
}

// shardRun is one worker's wake message: the job to run and the worker's
// local index within the job's shard.
type shardRun struct {
	job   *poolJob
	local int
}

// Pool is a resident scheduler: long-lived workers serving a stream of
// jobs, up to MaxConcurrentJobs of them concurrently on disjoint worker
// shards. Create with NewPool, submit with Submit, shut down with Close.
type Pool struct {
	n       int
	maxJobs int
	opt     sched.Options

	deques   []deque.WorkDeque
	workers  []*Worker
	wake     []chan shardRun
	queue    chan *poolJob
	finished chan *poolJob // finishers hand shards back to the dispatcher
	quit     chan struct{}
	joined   sync.WaitGroup // dispatcher + workers

	policy  atomic.Int32 // 0 = static, 1 = adaptive, 2 = slo
	advisor atomic.Value // advisorBox: SLO shard-width advisor
	extQ    atomic.Value // extQueueBox: waiting jobs held outside the pool

	mu     sync.Mutex // guards Submit/Close handshake
	closed bool

	liveMu sync.Mutex            // guards live
	live   map[*poolJob][]int    // running jobs' shards, for occupancy views

	inflight    atomic.Int64 // jobs submitted and not yet finished
	running     atomic.Int64 // jobs currently occupying a shard
	busy        atomic.Int64 // workers currently bound to a job
	served      atomic.Int64 // jobs finished (any outcome) since pool start
	quarantined atomic.Int64 // jobs failed by a panic (ErrJobPanicked)

	// Pool-level fault streams (nil unless PoolConfig.Faults): admitFI is
	// drawn under p.mu in Submit, shardFI only by the dispatcher.
	admitFI *faults.Injector
	shardFI *faults.Injector
}

// NewPool builds a resident pool and starts its workers; they park until
// the first job arrives.
func NewPool(cfg PoolConfig) *Pool {
	opt := cfg.Options
	if cfg.Workers > 0 {
		opt.Workers = cfg.Workers
	}
	n := opt.WorkersOrDefault()
	maxJobs := cfg.MaxConcurrentJobs
	if maxJobs <= 0 {
		maxJobs = 1
	}
	if maxJobs > n {
		maxJobs = n
	}
	p := &Pool{
		n:        n,
		maxJobs:  maxJobs,
		opt:      opt,
		deques:   make([]deque.WorkDeque, n),
		workers:  make([]*Worker, n),
		wake:     make([]chan shardRun, n),
		queue:    make(chan *poolJob, cfg.queueCapacityOrDefault()),
		finished: make(chan *poolJob, maxJobs),
		quit:     make(chan struct{}),
		live:     make(map[*poolJob][]int),
		admitFI:  cfg.Faults.Admission(),
		shardFI:  cfg.Faults.ShardAlloc(),
	}
	p.SetShardPolicy(cfg.ShardPolicy)
	procs := vtime.NewRealProcs(n, opt.Seed)
	for i := 0; i < n; i++ {
		p.deques[i] = newDeque(opt)
		p.workers[i] = &Worker{ID: i, Proc: procs[i], Deque: p.deques[i]}
		p.wake[i] = make(chan shardRun)
	}
	p.joined.Add(n + 1)
	for i := 0; i < n; i++ {
		go p.workerLoop(i)
	}
	go p.dispatch()
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.n }

// MaxConcurrentJobs returns the number of jobs the pool can run at once.
func (p *Pool) MaxConcurrentJobs() int { return p.maxJobs }

// SetShardPolicy switches the shard allocator's sizing policy. Unknown
// values fall back to ShardStatic. Safe to call while jobs are running:
// shards already handed out keep their width, only future allocations are
// affected.
func (p *Pool) SetShardPolicy(pol ShardPolicy) {
	switch pol {
	case ShardAdaptive:
		p.policy.Store(1)
	case ShardSLO:
		p.policy.Store(2)
	default:
		p.policy.Store(0)
	}
}

// ShardPolicy returns the current shard sizing policy.
func (p *Pool) ShardPolicy() ShardPolicy {
	switch p.policy.Load() {
	case 1:
		return ShardAdaptive
	case 2:
		return ShardSLO
	}
	return ShardStatic
}

// ShardAdvisor decides, for the ShardSLO policy, how many concurrent jobs
// the free workers should be split between when the next shard is formed.
// waiting is the number of jobs queued behind the one being placed
// (pool queue plus any external admission queue registered with
// SetExternalQueueDepth), slots the open job slots, free the free worker
// count. The return value is clamped to [1, slots]; a serving layer
// typically returns 1 (widest shard, fastest drain) while a latency SLO is
// being missed and waiting+1 (the adaptive split) otherwise.
type ShardAdvisor func(waiting, slots, free int) int

// advisorBox/extQueueBox keep atomic.Value's concrete type stable.
type advisorBox struct{ fn ShardAdvisor }
type extQueueBox struct{ fn func() int }

// SetShardAdvisor installs the ShardSLO sizing callback. It is consulted
// only by the dispatcher goroutine, at shard-formation time, and only
// while the policy is ShardSLO; a nil or absent advisor makes ShardSLO
// behave like ShardAdaptive. Safe to call while jobs are running.
func (p *Pool) SetShardAdvisor(fn ShardAdvisor) { p.advisor.Store(advisorBox{fn}) }

// SetExternalQueueDepth registers a callback reporting jobs that are
// waiting for this pool but held outside its own admission queue — a
// serving layer's priority queue, say. The dispatcher folds it into the
// waiting count that drives the adaptive and SLO shard policies, so a
// front end that stages jobs into the pool one at a time does not starve
// the split heuristics of their demand signal.
func (p *Pool) SetExternalQueueDepth(fn func() int) { p.extQ.Store(extQueueBox{fn}) }

// waitingJobs returns the demand signal for shard sizing: queued here plus
// queued in any registered external admission queue. The external count
// may include jobs already staged into this pool's queue, so the sum can
// overcount slightly; the policies only need a monotone demand signal, not
// an exact census.
func (p *Pool) waitingJobs() int {
	w := len(p.queue)
	if b, ok := p.extQ.Load().(extQueueBox); ok && b.fn != nil {
		w += b.fn()
	}
	return w
}

// QueueDepth returns the number of jobs waiting for admission right now.
func (p *Pool) QueueDepth() int { return len(p.queue) }

// QueueCapacity returns the admission queue bound.
func (p *Pool) QueueCapacity() int { return cap(p.queue) }

// InFlight returns the number of submitted jobs that have not finished
// (queued + running).
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Running reports whether any job currently occupies workers.
func (p *Pool) Running() bool { return p.running.Load() != 0 }

// RunningJobs returns the number of jobs currently bound to shards.
func (p *Pool) RunningJobs() int64 { return p.running.Load() }

// BusyWorkers returns the number of workers currently bound to a job.
func (p *Pool) BusyWorkers() int64 { return p.busy.Load() }

// Served returns the number of jobs finished since the pool started.
func (p *Pool) Served() int64 { return p.served.Load() }

// LiveShards returns the worker groups currently bound to running jobs,
// sorted by their first (lowest) global worker id so the view is stable
// across scrapes. Each inner slice is a copy.
func (p *Pool) LiveShards() [][]int {
	p.liveMu.Lock()
	out := make([][]int, 0, len(p.live))
	for _, shard := range p.live {
		s := make([]int, len(shard))
		copy(s, shard)
		out = append(out, s)
	}
	p.liveMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Quarantined returns the number of jobs that failed by a panic in their
// program or engine. Each such job was contained to its own shard: the
// shard's deques were reset and handed back to the allocator, and the pool
// kept serving.
func (p *Pool) Quarantined() int64 { return p.quarantined.Load() }

// Submit enqueues a job without blocking. It returns ErrQueueFull when the
// admission queue is at capacity and ErrPoolClosed after Close. The
// closed check and the enqueue happen under one lock, ordered against
// Close's closed store: once Close has begun, Submit deterministically
// returns ErrPoolClosed, and a job enqueued before that point is either
// run or — if the dispatcher observes the shutdown first — deterministically
// drained with ErrPoolClosed, never both.
func (p *Pool) Submit(spec JobSpec) (*JobHandle, error) {
	if spec.Prog == nil || spec.Engine == nil {
		return nil, errors.New("wsrt: JobSpec needs Prog and Engine")
	}
	job := &poolJob{
		spec:      spec,
		name:      spec.Engine.Name(),
		submitted: time.Now(),
		h: &JobHandle{
			started: make(chan struct{}),
			done:    make(chan struct{}),
		},
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	if p.admitFI != nil && p.admitFI.RejectAdmission() {
		// Injected admission saturation: indistinguishable from a full
		// queue, so callers exercise their backpressure handling. The
		// stream is drawn under p.mu, which serialises it.
		return nil, ErrQueueFull
	}
	select {
	case p.queue <- job:
		p.inflight.Add(1)
		return job.h, nil
	default:
		return nil, ErrQueueFull
	}
}

// Close shuts the pool down: running jobs finish, every job still queued
// is failed with ErrPoolClosed, and the workers exit. Close blocks until
// all goroutines have joined; it is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.joined.Wait()
		return
	}
	// Close quit under the same lock that orders Submit's closed check:
	// any Submit that observes closed (and any outside observer it
	// unblocks) is guaranteed the dispatcher's shutdown signal is already
	// raised, so a job still queued at that point can only drain.
	p.closed = true
	close(p.quit)
	p.mu.Unlock()
	p.joined.Wait()
}

// dispatch is the pool's coordinator goroutine: it admits jobs while the
// shard allocator can place them, binds each admitted job to a shard, and
// reclaims shards as jobs finish. Jobs it cannot place yet stay in the
// bounded queue (at most one, already received, waits in the deferred
// slot), so admission backpressure is never weakened by an internal
// unbounded buffer.
func (p *Pool) dispatch() {
	defer func() {
		for _, c := range p.wake {
			close(c)
		}
		p.joined.Done()
	}()
	alloc := newShardAlloc(p.n, p.maxJobs)
	var deferred *poolJob // received from the queue, waiting for a shard
	for {
		// Prefer shutdown over further admissions once quit is closed.
		select {
		case <-p.quit:
			p.shutdown(alloc, deferred)
			return
		default:
		}
		if deferred != nil {
			if !p.tryStart(alloc, deferred) {
				// Without fault injection a deferred job can only be
				// unblocked by a finishing job (or shutdown). Injected
				// allocator starvation can refuse a shard with nothing
				// running at all, so the fault plane adds a retry tick —
				// otherwise the dispatcher would wait forever on a finish
				// that cannot come. Nil channel (no faults): zero cost.
				var retry <-chan time.Time
				var retryT *time.Timer
				if p.shardFI != nil {
					retryT = time.NewTimer(100 * time.Microsecond)
					retry = retryT.C
				}
				// A deferred job can also die where it stands: watching its
				// context here retires a cancelled job immediately instead
				// of holding it hostage until some other job finishes.
				var ctxDone <-chan struct{}
				if ctx := deferred.spec.Ctx; ctx != nil {
					ctxDone = ctx.Done()
				}
				select {
				case <-p.quit:
					if retryT != nil {
						retryT.Stop()
					}
					p.shutdown(alloc, deferred)
					return
				case job := <-p.finished:
					p.reclaim(alloc, job)
				case <-ctxDone:
					p.retire(deferred, context.Cause(deferred.spec.Ctx))
					deferred = nil
				case <-retry:
				}
				if retryT != nil {
					retryT.Stop()
				}
				continue
			}
			deferred = nil
			continue
		}
		// Receive from the queue only while a shard slot is open; otherwise
		// jobs stay queued and Submit's backpressure stays honest.
		var queueCh chan *poolJob
		if alloc.running < p.maxJobs && len(alloc.free) > 0 {
			queueCh = p.queue
		}
		select {
		case <-p.quit:
			p.shutdown(alloc, nil)
			return
		case job := <-queueCh:
			// quit and queue can be ready together and select picks
			// arbitrarily; re-checking quit here makes Close deterministic —
			// a job picked up after quit closed is drained, never run.
			select {
			case <-p.quit:
				p.retire(job, ErrPoolClosed)
				p.shutdown(alloc, nil)
				return
			default:
			}
			if !p.tryStart(alloc, job) {
				deferred = job
			}
		case job := <-p.finished:
			p.reclaim(alloc, job)
		}
	}
}

// tryStart binds job to a freshly allocated shard, or retires it
// immediately if its context was cancelled while it waited. It reports
// false when the allocator cannot form a shard under the current policy.
func (p *Pool) tryStart(alloc *shardAlloc, job *poolJob) bool {
	if ctx := job.spec.Ctx; ctx != nil {
		if ctx.Err() != nil {
			// Cancelled while queued: never starts, costs the pool nothing.
			p.retire(job, context.Cause(ctx))
			return true
		}
	}
	if p.shardFI != nil && p.shardFI.StarveShard() {
		// Injected allocator starvation: the dispatcher behaves exactly as
		// if no shard could be formed and retries on its fault tick.
		return false
	}
	policy := p.ShardPolicy()
	waiting := p.waitingJobs()
	var shard []int
	if b, ok := p.advisor.Load().(advisorBox); ok && b.fn != nil && policy == ShardSLO {
		shard = alloc.grabClaims(b.fn(waiting, alloc.maxJobs-alloc.running, len(alloc.free)))
	} else {
		shard = alloc.grab(policy, waiting)
	}
	if shard == nil {
		return false
	}
	p.startJob(job, shard)
	return true
}

// retire finishes a job that never ran (drained at shutdown, or cancelled
// while queued).
func (p *Pool) retire(job *poolJob, err error) {
	res := sched.Result{Engine: job.name, Program: job.spec.Prog.Name()}
	res.Stats.QueueWait = time.Since(job.submitted).Nanoseconds()
	job.finish(res, err)
	p.inflight.Add(-1)
	p.served.Add(1)
}

// reclaim returns a finished job's shard to the allocator. The served
// counter already ticked in finishJob, before the job's handle resolved,
// so Served() never lags a Result() return.
func (p *Pool) reclaim(alloc *shardAlloc, job *poolJob) {
	p.liveMu.Lock()
	delete(p.live, job)
	p.liveMu.Unlock()
	alloc.release(job.shard)
	p.busy.Add(-int64(len(job.shard)))
	p.running.Add(-1)
	p.inflight.Add(-1)
}

// shutdown drains the pool: the deferred job and every job still queued
// fail with ErrPoolClosed, running jobs finish and their shards are
// reclaimed. No new queue sends can begin once Close has set closed, so
// the drain loop terminates.
func (p *Pool) shutdown(alloc *shardAlloc, deferred *poolJob) {
	if deferred != nil {
		p.retire(deferred, ErrPoolClosed)
	}
	for {
		select {
		case job := <-p.queue:
			p.retire(job, ErrPoolClosed)
			continue
		default:
		}
		if alloc.running == 0 {
			return
		}
		p.reclaim(alloc, <-p.finished)
	}
}

// startJob builds the job's shard-scoped runtime and wakes the shard's
// workers. The runtime's deque slice is exactly the shard's deques, so the
// thief loop's victim set — and with it the need_task/stolen_num
// starvation machinery living in those deques — is confined to the shard
// by construction.
func (p *Pool) startJob(job *poolJob, shard []int) {
	width := len(shard)
	job.shard = shard
	job.started = time.Now()
	job.deques = make([]deque.WorkDeque, width)
	job.workers = make([]*Worker, width)
	for li, gi := range shard {
		job.deques[li] = p.deques[gi]
		job.workers[li] = p.workers[gi]
	}
	policyName := job.spec.StealPolicy
	if policyName == "" {
		policyName = p.opt.StealPolicy
	}
	rt := &Runtime{
		Prog:        job.spec.Prog,
		Costs:       p.opt.CostsOrDefault(),
		N:           width,
		Deques:      job.deques,
		Eng:         job.spec.Engine.NewExec(width, p.opt),
		profile:     job.spec.Profile,
		tracer:      job.spec.Tracer,
		faults:      job.spec.Faults,
		stop:        &sched.Stop{},
		stealPolicy: StealPolicyByName(policyName),
		stealSeed:   stealSeed(p.opt),

		firstSolution: job.spec.FirstSolution || p.opt.FirstSolution,
	}
	if rt.tracer != nil {
		rt.tracer.Init(width, int64(p.opt.MaxStolenNumOrDefault()))
		rt.tracer.SetScope(fmt.Sprintf("%s/%s shard %v", job.name, job.spec.Prog.Name(), shard))
		for li, d := range job.deques {
			d.SetTrace(rt.tracer.DequeHook(li))
		}
	}
	for li, d := range job.deques {
		// Fault hooks are keyed by shard-local index, like trace hooks, so
		// a plan's decisions do not depend on which shard hosts the job.
		if hook := rt.faults.DequeHook(li); hook != nil {
			d.SetFailSteal(hook)
		}
	}
	job.release = sched.WatchContext(job.spec.Ctx, rt.stop)
	if d := job.spec.Deadline; d > 0 {
		job.deadline = time.AfterFunc(d, func() {
			rt.stop.Signal(fmt.Errorf("wsrt: job exceeded its %v run deadline: %w",
				d, context.DeadlineExceeded))
		})
	}
	job.rt = rt
	job.wg.Add(width)
	p.liveMu.Lock()
	p.live[job] = shard
	p.liveMu.Unlock()
	p.running.Add(1)
	p.busy.Add(int64(width))
	job.h.shard = shard
	job.h.startAt = job.started
	close(job.h.started)
	for li, gi := range shard {
		p.wake[gi] <- shardRun{job: job, local: li}
	}
	go p.finishJob(job)
}

// finishJob waits for the job's shard workers to hit the barrier,
// finalises the result, and hands the shard back to the dispatcher. The
// deque reset is confined to the finishing job's shard — neighbouring
// shards are live and must not be touched — and happens before the shard
// returns to the free set, so the next job bound to these workers starts
// from the same state a fresh deque would.
func (p *Pool) finishJob(job *poolJob) {
	job.wg.Wait()
	job.release()
	if job.deadline != nil {
		job.deadline.Stop()
	}
	rt := job.rt
	st := collectStats(job.workers, job.deques, job.spec.Profile)
	st.QueueWait = job.started.Sub(job.submitted).Nanoseconds()
	if rt.tracer != nil {
		for _, d := range job.deques {
			d.SetTrace(nil)
		}
	}
	if rt.faults != nil {
		for _, d := range job.deques {
			d.SetFailSteal(nil)
		}
	}
	for _, d := range job.deques {
		d.Reset()
	}

	res := sched.Result{
		Value:    rt.value.Load(),
		Makespan: time.Since(job.started).Nanoseconds(),
		Workers:  len(job.shard),
		Engine:   job.name,
		Program:  job.spec.Prog.Name(),
		Stats:    st,
		Shard:    job.shard,
	}
	var err error
	if f := rt.failure.Load(); f != nil {
		err = f.err
		if errors.Is(err, ErrJobPanicked) {
			// Panic quarantine: the job failed, its shard was reset above
			// and heals by re-entering the allocator like any other.
			p.quarantined.Add(1)
		}
	}
	job.h.endAt = time.Now()
	p.served.Add(1)
	job.finish(res, err)
	p.finished <- job
}

// workerLoop is one resident worker: park on the wake channel, run the
// job, hit the barrier, park again. This is the thief loop's "park between
// jobs instead of exiting". For the job's duration the worker adopts its
// shard-local identity — victim selection, root election (local 0) and
// trace logs are all indexed within the shard's deque slice.
func (p *Pool) workerLoop(i int) {
	defer p.joined.Done()
	w := p.workers[i]
	for run := range p.wake[i] {
		job := run.job
		w.ID = run.local
		w.rt = job.rt
		w.Stats = sched.Stats{}
		w.tr = nil
		if job.rt.tracer != nil {
			w.tr = job.rt.tracer.WorkerLog(run.local)
		}
		w.fi = job.rt.faults.Worker(run.local)
		// The thief is rebuilt per job: its PRNG stream restarts from the
		// pool seed and the worker's shard-local id, so a job's victim
		// sequence does not depend on what ran on this worker before.
		w.thief = job.rt.stealPolicy.NewThief(run.local, job.rt.N, job.rt.stealSeed)
		w.bindProg()
		w.runJob(true)
		w.rt = nil
		w.prog = nil
		// The SYNCHED workspace pool holds program-typed workspaces; the
		// next job bound to this worker may run a different program, and
		// ClonePooled must never hand it a leftover (CopyFrom would panic
		// on the type mismatch). Frames are program-agnostic — their
		// free-list stays resident across jobs.
		w.DropWorkspacePool()
		job.wg.Done()
	}
}
