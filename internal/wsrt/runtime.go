package wsrt

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"adaptivetc/internal/deque"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/vtime"
)

// ErrJobPanicked tags job failures caused by a panic in the program or the
// engine (as opposed to a sched.Abort, which is the runtime's own orderly
// unwinding). A resident pool counts these as quarantined jobs: the job
// fails, the shard heals, the service keeps running.
var ErrJobPanicked = errors.New("wsrt: job panicked")

// Engine is the per-strategy part of the runtime: how to execute the root
// task and how to resume a stolen frame (the paper's slow version). Both
// return (value, completed); completed is false when the computation
// detached — the frame was re-stolen or suspended and its value will arrive
// at its parent through the deposit protocol.
type Engine interface {
	Root(w *Worker) (int64, bool)
	Resume(w *Worker, f *Frame) (int64, bool)
}

// Runtime ties N workers, their deques and an Engine together for one job:
// either a whole batch Run, or one root task executed on a resident Pool.
// The runtime is the job-scoped half of the pool/job split — it carries the
// program, the result, the failure and the tracer, while the workers, their
// Procs and their deques belong to whoever is hosting the job (Run builds
// them per call; a Pool keeps them for its lifetime).
type Runtime struct {
	Prog   sched.Program
	Costs  sched.Costs
	N      int
	Deques []deque.WorkDeque
	Eng    Engine

	profile bool
	tracer  *trace.Recorder // nil unless Options.Tracer was set
	faults  *faults.Plan    // nil unless fault injection was requested
	stop    *sched.Stop     // cooperative cancellation; may be nil (never stopped)
	done    atomic.Bool
	value   atomic.Int64
	failure atomic.Pointer[runError]

	// firstSolution switches the job to first-solution-wins semantics
	// (Options.FirstSolution / JobSpec.FirstSolution): each worker sees the
	// program through a wrapper that claims the first nonzero terminal value
	// via claimSolution and unwinds everyone else. solved latches the claim.
	firstSolution bool
	solved        atomic.Bool

	// stealPolicy is the job's resolved victim/amount strategy and
	// stealSeed the seed its per-worker thief streams derive from. Both are
	// set by whoever builds the runtime (Run, Pool.startJob).
	stealPolicy StealPolicy
	stealSeed   int64
}

// stealSeed normalises the run seed for thief-stream derivation, matching
// PlatformOrDefault's Sim seeding (zero means 1).
func stealSeed(opt sched.Options) int64 {
	if opt.Seed == 0 {
		return 1
	}
	return opt.Seed
}

type runError struct{ err error }

// Done reports whether the run has completed (or failed).
func (rt *Runtime) Done() bool { return rt.done.Load() }

// Stop returns the job's cooperative stop flag (possibly nil). Engines pass
// it into sched.EvalSequentialStop so that long sequential tails observe
// cancellation too.
func (rt *Runtime) Stop() *sched.Stop { return rt.stop }

// fail records err as the run's failure (first error wins) and releases
// every worker. Beyond the done flag — which only thief loops poll — it
// fires the cooperative stop flag: a worker can be parked in an engine wait
// loop (the AdaptiveTC special-task join) polling the stop flag for
// deposits that a failed run will never send, and without the signal a
// co-worker's panic or deque overflow would wedge it there forever.
// Quarantine depends on every worker of the job unwinding.
func (rt *Runtime) fail(err error) {
	rt.failure.CompareAndSwap(nil, &runError{err: err})
	rt.done.Store(true)
	rt.stop.Signal(err)
}

// complete records the run's root value and reports whether the completion
// took effect — callers record the trace OpComplete only on true, so the
// checker sees exactly the completions that decided the run. A recorded
// failure is final: a worker can be mid-Resume on a stolen frame when
// another worker aborts (deque overflow), and its deposit cascade may still
// reach a nil parent — that late completion must not overwrite the failure's
// done/value state and dress the run up as successful. A claimed first
// solution is equally final: the winner already stored the run's value.
func (rt *Runtime) complete(v int64) bool {
	if rt.failure.Load() != nil || rt.solved.Load() {
		return false
	}
	rt.value.Store(v)
	rt.done.Store(true)
	return true
}

// claimSolution races to publish v as the run's first solution. The winner
// stores the value, records the run's single OpComplete on its own trace
// log, and fires the stop flag with ErrSolutionFound so every sibling —
// including the claiming worker itself, which panics right after — unwinds
// at its next poll point. Losers of the race (a second solution found before
// the stop propagated, or a duplicated frame under the relaxed deque
// re-reaching the same leaf) get false and record nothing.
func (rt *Runtime) claimSolution(w *Worker, v int64) bool {
	if !rt.solved.CompareAndSwap(false, true) {
		return false
	}
	rt.value.Store(v)
	rt.done.Store(true)
	if w.tr != nil {
		w.tr.Add(w.Proc.Now(), trace.OpComplete, 0, v, 0)
	}
	rt.stop.Signal(sched.ErrSolutionFound)
	return true
}

// firstSolutionProg is the per-worker program view of a first-solution job:
// Terminal is intercepted so a nonzero leaf claims the run instead of
// contributing to a sum, and the claiming worker unwinds immediately via the
// Abort path (runJob treats ErrSolutionFound as a clean finish). Everything
// else forwards to the job's real program through the embedded interface.
type firstSolutionProg struct {
	sched.Program
	w *Worker
}

func (p firstSolutionProg) Terminal(ws sched.Workspace, depth int) (int64, bool) {
	v, term := p.Program.Terminal(ws, depth)
	if term && v != 0 {
		p.w.rt.claimSolution(p.w, v)
		panic(sched.Abort{Err: sched.ErrSolutionFound})
	}
	return v, term
}

// Aborts — deque overflow, cooperative cancellation — travel as
// panic(sched.Abort{...}) so that deep recursion unwinds; the worker's top
// level recovers and records the error as the run's failure.

// workerPoolCap bounds each worker's workspace pool and frame free-list.
// Both recycle per-spawn allocations, and both must stay bounded: a run can
// finalise many more frames (and release many more workspaces) than it will
// ever need live again at once — an unbalanced subtree can complete millions
// of tasks whose memory would otherwise sit in the lists until the run ends.
// The live demand at any instant is on the order of the deque depth, so a
// small cap keeps the recycle hit-rate near 100% while letting the excess
// go back to the garbage collector.
const workerPoolCap = 64

// Worker is one scheduler thread.
type Worker struct {
	ID    int
	Proc  vtime.Proc
	Deque deque.WorkDeque
	Stats sched.Stats

	rt     *Runtime
	pool   []sched.Workspace
	frames []*Frame

	// prog overrides the program Prog() hands to engine code; nil means the
	// runtime's program. First-solution jobs install a firstSolutionProg
	// wrapper here per worker (Run's platform body, the pool's workerLoop)
	// so every engine path — node bodies, sequential tails — sees the
	// intercepted Terminal without any engine changes.
	prog sched.Program

	// tr is this worker's trace log; nil unless the run is traced. Every
	// recording site below is a single nil check when tracing is off, so
	// the zero-alloc hot path is untouched.
	tr *trace.WorkerLog

	// fi is this worker's private fault-injection stream; nil unless the
	// run carries a fault plan with worker-side faults. Injection sites
	// follow the tracing discipline: one nil check on the hot path, body
	// out of line.
	fi *faults.Injector

	// thief is this worker's steal strategy for the current job (victim
	// order and steal amount). Built per job from the resolved StealPolicy
	// so its PRNG stream restarts deterministically with each job's seed.
	thief Thief

	// intake holds the tail of a batch steal: StealN hands the thief up to
	// MaxStealBatch frames in one critical section, the first is resumed
	// immediately and the rest wait here. They are drained FIFO, one per
	// thief-loop iteration, exactly like direct steals — and never pushed
	// onto the worker's own deque, where a second-level steal would
	// register a deposit debt nobody pays. stealBuf is the reusable
	// destination array of the StealN call itself.
	intake   []*Frame
	stealBuf [MaxStealBatch]deque.Entry
}

// Rt returns the worker's runtime.
func (w *Worker) Rt() *Runtime { return w.rt }

// Prog returns the program under execution — the worker's wrapped view for
// a first-solution job, the runtime's program otherwise.
func (w *Worker) Prog() sched.Program {
	if w.prog != nil {
		return w.prog
	}
	return w.rt.Prog
}

// bindProg installs the worker's per-job program view. Must be called after
// w.rt is set (per job on a pool worker, once in a batch Run).
func (w *Worker) bindProg() {
	if w.rt.firstSolution {
		w.prog = firstSolutionProg{Program: w.rt.Prog, w: w}
	} else {
		w.prog = nil
	}
}

// Costs returns the run's cost model.
func (w *Worker) Costs() *sched.Costs { return &w.rt.Costs }

// BeginNode accounts one node visit. It is also a cancellation poll point:
// a stopped job unwinds here via sched.Abort, so even a worker deep inside
// a task's recursion observes cancellation within one node. The poll is a
// nil check plus one atomic load and charges no virtual cost, keeping
// un-cancelled Sim runs byte-identical.
func (w *Worker) BeginNode(ws sched.Workspace, depth int) {
	if w.fi != nil {
		w.injectNode()
	}
	w.rt.stop.Check()
	w.Stats.Nodes++
	sched.ChargeNode(w.rt.Prog, ws, depth, &w.rt.Costs, w.Proc)
	w.Proc.Yield()
}

// injectNode draws this node's faults: a stall (virtual under Sim,
// wall-clock under Real) and/or an injected program panic. Kept out of
// BeginNode's body so the unfaulted hot path pays only the nil test.
//
//go:noinline
func (w *Worker) injectNode() {
	if d := w.fi.StallNS(); d > 0 {
		w.Proc.Sleep(d)
	}
	if w.fi.PanicNow() {
		panic(faults.PanicValue{Worker: w.ID})
	}
}

// CheckCancel is the explicit cancellation poll point for engine wait loops
// (the AdaptiveTC special-task join, which otherwise sleeps-and-polls until
// deposits arrive that a cancelled job will never send).
func (w *Worker) CheckCancel() { w.rt.stop.Check() }

// ChargeMove accounts one candidate move.
func (w *Worker) ChargeMove() { w.Proc.Advance(w.rt.Costs.Move) }

// ChargeTask accounts the creation of one real task (frame allocation and
// initialisation — the paper's "task creation" overhead). Engines call it
// at the entry of every task version, including for leaves, matching the
// alloc/free pair in the paper's Appendix B; the Go Frame object itself is
// only materialised when the node actually spawns.
func (w *Worker) ChargeTask() {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Spawn)
	w.Stats.TasksCreated++
	w.addDeque(t0)
}

// NewFrame builds a frame for the node at tree depth `depth` with
// cutoff-relative depth `rel`, reusing a recycled frame when the free-list
// has one. Cost is accounted separately via ChargeTask.
func (w *Worker) NewFrame(parent *Frame, ws sched.Workspace, depth, rel int, kind Kind) *Frame {
	var f *Frame
	if n := len(w.frames); n > 0 {
		f = w.frames[n-1]
		// The slot is not nilled: the stale pointer beyond len duplicates a
		// frame that is live anyway (it is being handed out right now), and
		// can over-retain at most workerPoolCap dead frames per worker until
		// the slot is overwritten. Skipping the store skips its write
		// barrier, which pays for the tracing nil-check this path gained.
		w.frames = w.frames[:n-1]
		f.reset(parent, ws, depth, rel, kind)
	} else {
		f = &Frame{Parent: parent, Depth: depth, Rel: rel, Kind: kind, WS: ws}
	}
	if kind == KindSpecial {
		f.waited = true
		w.Stats.SpecialTasks++
	}
	if w.tr != nil {
		w.traceSpawn(f, depth, kind)
	}
	return f
}

// traceSpawn assigns f its trace identity and records the spawn. Kept out
// of NewFrame's body so the untraced hot path pays only the nil test — the
// inlined event construction otherwise costs NewFrame ~25% (see
// BenchmarkFrameRecycle against BENCH_hotpath.json).
//
//go:noinline
func (w *Worker) traceSpawn(f *Frame, depth int, kind Kind) {
	f.seq = w.tr.NextSeq()
	w.tr.Add(w.Proc.Now(), trace.OpSpawn, f.seq, int64(depth), int64(kind))
}

// FreeFrame returns a dead frame to the worker's free-list for reuse by a
// later NewFrame. The caller must be the frame's sole owner: its executor
// after a SyncComplete (nothing pending, nothing in a deque), or the
// depositor that just finalised it — the two points where the deposit
// protocol guarantees no other reference survives. Frames freed by one
// worker may have been allocated by another; free-lists are per-worker, so
// no synchronisation is needed.
func (w *Worker) FreeFrame(f *Frame) {
	if len(w.frames) < workerPoolCap {
		w.frames = append(w.frames, f)
	}
}

// Push pushes f on the worker's own deque, accounting the cost. It aborts
// the run on overflow (the deque is a fixed-size array, as in Cilk).
func (w *Worker) Push(f *Frame) {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Push)
	if w.fi != nil && w.fi.ForceOverflow() {
		panic(sched.Abort{Err: fmt.Errorf("%w (%w): worker %d, program %s",
			sched.ErrDequeOverflow, faults.ErrInjected, w.ID, w.rt.Prog.Name())})
	}
	if !w.Deque.Push(f) {
		panic(sched.Abort{Err: fmt.Errorf("%w: worker %d, capacity %d, program %s",
			sched.ErrDequeOverflow, w.ID, w.Deque.Cap(), w.rt.Prog.Name())})
	}
	if w.tr != nil {
		w.tr.Add(w.Proc.Now(), trace.OpPush, f.seq, 0, 0)
	}
	w.addDeque(t0)
}

// Pop pops the worker's own deque tail, accounting the cost.
func (w *Worker) Pop() (deque.Entry, bool) {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Pop)
	e, ok := w.Deque.Pop()
	if w.tr != nil {
		if ok {
			w.tr.Add(w.Proc.Now(), trace.OpPop, e.(*Frame).seq, 0, 0)
		} else {
			w.tr.Add(w.Proc.Now(), trace.OpPopEmpty, 0, 0, 0)
		}
	}
	w.addDeque(t0)
	return e, ok
}

// PopSpecial pops the special task f the worker pushed and reports whether
// any of f's children were stolen over the marker in the meantime.
func (w *Worker) PopSpecial(f *Frame) (stolen bool) {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Pop)
	stolen = w.Deque.PopSpecial()
	if w.tr != nil {
		a := int64(0)
		if stolen {
			a = 1
		}
		w.tr.Add(w.Proc.Now(), trace.OpPopSpecial, f.seq, a, 0)
	}
	w.addDeque(t0)
	return stolen
}

// Clone copies ws for a child task (the taskprivate allocate-and-copy),
// charging allocation plus per-byte cost. Programs without taskprivate data
// (Bytes() == 0 — fib, comp) pay nothing: their spawn arguments travel by
// value and the structural Clone below stands in for ordinary argument
// passing, whose price is already inside Costs.Spawn.
func (w *Worker) Clone(ws sched.Workspace) sched.Workspace {
	if ws.Bytes() == 0 {
		return ws.Clone()
	}
	t0 := w.now()
	c := &w.rt.Costs
	w.Proc.Advance(c.CopyBase + int64(ws.Bytes())/c.CopyBytesPerNs)
	w.Stats.WorkspaceCopies++
	w.Stats.WorkspaceBytes += int64(ws.Bytes())
	clone := ws.Clone()
	w.addCopy(t0)
	return clone
}

// ClonePooled copies ws reusing a per-worker buffer when possible — the
// Cilk-SYNCHED behaviour: memory is conserved, but the bytes are still
// copied, so only the allocation part of the cost is saved.
func (w *Worker) ClonePooled(ws sched.Workspace) sched.Workspace {
	if ws.Bytes() == 0 {
		return ws.Clone()
	}
	t0 := w.now()
	c := &w.rt.Costs
	w.Proc.Advance(c.PooledBase + int64(ws.Bytes())/c.CopyBytesPerNs)
	w.Stats.WorkspaceCopies++
	w.Stats.WorkspaceBytes += int64(ws.Bytes())
	var clone sched.Workspace
	if n := len(w.pool); n > 0 {
		dst := w.pool[n-1]
		w.pool = w.pool[:n-1]
		if r, ok := dst.(sched.Reusable); ok {
			r.CopyFrom(ws)
			clone = dst
		}
	}
	if clone == nil {
		clone = ws.Clone()
	}
	w.addCopy(t0)
	return clone
}

// Release returns a workspace to the worker's pool once its child subtree
// has completed inline.
func (w *Worker) Release(ws sched.Workspace) {
	if len(w.pool) < workerPoolCap {
		w.pool = append(w.pool, ws)
	}
}

// DropWorkspacePool discards the pooled workspaces. A resident worker must
// call this between jobs: the pool is typed by the program that filled it,
// and ClonePooled's CopyFrom would panic if a job of one program popped a
// workspace recycled from another.
func (w *Worker) DropWorkspacePool() { w.pool = nil }

// Deposit delivers v to parent, finalising and cascading when a suspended
// frame's last expected deposit arrives. A nil parent completes the run.
// Each finalised frame is recycled: the finalising depositor owns it
// outright (its executor abandoned it at suspension and this was the last
// expected deposit), so after reading the total and the parent link it goes
// to the worker's free-list.
func (w *Worker) Deposit(parent *Frame, v int64) {
	if w.fi != nil {
		if d := w.fi.DepositDelayNS(); d > 0 {
			w.Proc.Sleep(d) // perturb the join/deposit race; no lock is held here
		}
	}
	for {
		if parent == nil {
			completed := w.rt.complete(v)
			if w.tr != nil {
				ts := w.Proc.Now()
				w.tr.Add(ts, trace.OpDeposit, 0, v, 0)
				if completed {
					w.tr.Add(ts, trace.OpComplete, 0, v, 0)
				}
			}
			return
		}
		if w.tr != nil {
			w.tr.Add(w.Proc.Now(), trace.OpDeposit, parent.seq, v, 0)
		}
		total, finalise := parent.deposit(v)
		if !finalise {
			return
		}
		if w.tr != nil {
			w.tr.Add(w.Proc.Now(), trace.OpFinalize, parent.seq, total, 0)
		}
		next := parent.Parent
		w.FreeFrame(parent)
		v, parent = total, next
	}
}

// ExpectDeposit registers one future deposit on f outside the steal path
// (see Frame.ExpectDeposit), recording it in the trace. Engines must use
// this wrapper rather than the Frame method so the invariant checker sees
// every registered debt.
func (w *Worker) ExpectDeposit(f *Frame) {
	if w.tr != nil {
		w.tr.Add(w.Proc.Now(), trace.OpExpect, f.seq, 0, 0)
	}
	f.ExpectDeposit()
}

// CancelExpected withdraws one ExpectDeposit registration on f (see
// Frame.CancelExpected), recording it in the trace.
func (w *Worker) CancelExpected(f *Frame) {
	if w.tr != nil {
		w.tr.Add(w.Proc.Now(), trace.OpCancel, f.seq, 0, 0)
	}
	f.CancelExpected()
}

// Suspend accounts the final executor abandoning f at its sync point with
// deposits outstanding (Frame.Sync returned SyncSuspended).
func (w *Worker) Suspend(f *Frame) {
	w.Stats.Suspends++
	if w.tr != nil {
		w.tr.Add(w.Proc.Now(), trace.OpSuspend, f.seq, 0, 0)
	}
}

func (w *Worker) now() int64 {
	if w.rt.profile {
		return w.Proc.Now()
	}
	return 0
}

func (w *Worker) addDeque(t0 int64) {
	if w.rt.profile {
		w.Stats.DequeTime += w.Proc.Now() - t0
	}
}

func (w *Worker) addCopy(t0 int64) {
	if w.rt.profile {
		w.Stats.CopyTime += w.Proc.Now() - t0
	}
}

// AddWait accounts join-wait time explicitly (special task sync).
func (w *Worker) AddWait(d int64) {
	if w.rt.profile {
		w.Stats.WaitTime += d
	}
}

// AddPoll accounts need_task polling.
func (w *Worker) AddPoll(d int64) {
	if w.rt.profile {
		w.Stats.PollTime += d
	}
}

// thiefLoop steals until the run completes. Each iteration polls the job's
// stop flag, so an idle thief observes cancellation without waiting for a
// task to abort under it. Victim order and steal amount come from the
// worker's Thief (built from the job's StealPolicy); the intake buffer of a
// previous batch steal drains first, one frame per iteration, so batched
// work interleaves with the loop's poll points exactly like direct steals.
func (w *Worker) thiefLoop() {
	rt := w.rt
	for !rt.done.Load() {
		rt.stop.Check()
		if n := len(w.intake); n > 0 {
			f := w.intake[0]
			copy(w.intake, w.intake[1:])
			w.intake[n-1] = nil
			w.intake = w.intake[:n-1]
			w.resumeStolen(f)
			w.Proc.Yield()
			continue
		}
		victim, amount := w.ID, 1
		if rt.N > 1 {
			victim, amount = w.thief.Pick(rt.Deques[:rt.N])
		}
		t0 := w.now()
		// One Costs.Steal charge per attempt regardless of the amount: the
		// batch shares one critical section, which is the whole point of
		// stealing more than one entry.
		w.Proc.Advance(rt.Costs.Steal)
		var (
			e  deque.Entry
			ok bool
		)
		if amount <= 1 {
			e, ok = rt.Deques[victim].Steal()
		} else {
			if amount > MaxStealBatch {
				amount = MaxStealBatch
			}
			if n := rt.Deques[victim].StealN(w.stealBuf[:amount]); n > 0 {
				e, ok = w.stealBuf[0], true
				// Queue the tail head-order: dst[0] is the oldest frame,
				// resumed now; the rest drain FIFO on later iterations.
				for i := 1; i < n; i++ {
					f := w.stealBuf[i].(*Frame)
					w.stealBuf[i] = nil
					w.noteStolen(f, victim)
					w.intake = append(w.intake, f)
				}
				w.stealBuf[0] = nil
			}
		}
		if w.rt.profile {
			w.Stats.StealTime += w.Proc.Now() - t0
		}
		if ok {
			f := e.(*Frame)
			w.noteStolen(f, victim)
			w.resumeStolen(f)
		} else {
			w.Stats.StealFails++
			if w.tr != nil {
				w.tr.Add(w.Proc.Now(), trace.OpStealFail, 0, int64(victim), 0)
			}
			// Yield the OS thread after a failed steal: an idle thief
			// spinning on a Real platform with fewer cores than workers
			// otherwise hogs its core until async preemption (~10ms),
			// serialising everyone behind it. Virtual time is untouched, so
			// Sim runs are unaffected beyond a few ns of wall time.
			runtime.Gosched()
		}
		w.Proc.Yield()
	}
}

// noteStolen accounts one stolen frame — counter and trace record — at
// steal time, whether the frame is resumed immediately or parked in the
// intake buffer. Recording the whole batch up front keeps the checker's
// steal-symmetry law exact: the deque emitted one TraceStealOK per entry
// inside StealN's critical section, so the worker must answer with one
// OpSteal per entry, not per resume.
func (w *Worker) noteStolen(f *Frame, victim int) {
	w.Stats.Steals++
	if w.tr != nil {
		// The theft registered one deposit: on f itself for a stolen
		// continuation, on its parent for a help-first child.
		credit := f
		if f.Kind == KindChild && f.Parent != nil {
			credit = f.Parent
		}
		w.tr.Add(w.Proc.Now(), trace.OpSteal, f.seq, int64(victim), int64(credit.seq))
	}
}

// resumeStolen runs a stolen frame to its completion or detachment and
// delivers its value (the slow-version body shared by direct steals and
// intake drains).
func (w *Worker) resumeStolen(f *Frame) {
	v, completed := w.rt.Eng.Resume(w, f)
	if completed {
		// f's subtree is done and its sync saw no pending deposits,
		// so the thief is its last owner: recycle it, then deliver
		// its value (the parent link must be read first).
		parent := f.Parent
		w.FreeFrame(f)
		w.Deposit(parent, v)
	}
}

// runJob is one worker's whole share of a job: run the root (worker 0),
// then steal until the job completes. A sched.Abort panic — overflow,
// cancellation — is recovered here and recorded as the job's failure.
// swallowPanics selects what happens to any *other* panic (a bug in a
// Program or an engine): batch runs propagate it to the caller, a resident
// pool converts it into a job failure so one bad program cannot take the
// service down with it.
func (w *Worker) runJob(swallowPanics bool) {
	rt := w.rt
	// A pool worker's intake can carry abandoned frames from an aborted
	// previous job; they died with that job's runtime and must not leak
	// into this one.
	for i := range w.intake {
		w.intake[i] = nil
	}
	w.intake = w.intake[:0]
	start := w.Proc.Now()
	defer func() {
		w.Stats.WorkerTime += w.Proc.Now() - start
		if r := recover(); r != nil {
			if ae, ok := r.(sched.Abort); ok {
				// A first-solution claim unwinds every worker through the
				// Abort path, but the run completed: the winner already
				// stored the value and set done. Not a failure.
				if errors.Is(ae.Err, sched.ErrSolutionFound) {
					return
				}
				rt.fail(ae.Err)
				return
			}
			// Record the failure (and fire the stop flag) even when the
			// panic propagates: co-workers must unwind either way, or a
			// batch run's panic would leave a special-task waiter spinning
			// behind the propagating goroutine.
			rt.fail(fmt.Errorf("%w: %v", ErrJobPanicked, r))
			if !swallowPanics {
				panic(r)
			}
		}
	}()
	if w.ID == 0 {
		v, completed := rt.Eng.Root(w)
		if completed && rt.complete(v) && w.tr != nil {
			w.tr.Add(w.Proc.Now(), trace.OpComplete, 0, v, 0)
		}
	}
	w.thiefLoop()
}

// collectStats folds the per-worker counters and the deque high-water marks
// of one finished job into a single Stats.
func collectStats(workers []*Worker, deques []deque.WorkDeque, profile bool) sched.Stats {
	var st sched.Stats
	for _, w := range workers {
		if w != nil {
			st.Add(w.Stats)
		}
	}
	for _, d := range deques {
		if d.MaxDepth() > st.MaxDequeDepth {
			st.MaxDequeDepth = d.MaxDepth()
		}
	}
	finalizeStats(&st, profile)
	return st
}

// newDeque builds one worker deque according to opt. RelaxedDeque wins over
// GrowableDeque (the relaxed variant grows by construction).
func newDeque(opt sched.Options) deque.WorkDeque {
	if opt.RelaxedDeque {
		return deque.NewRelaxed(opt.DequeCapacityOrDefault(), opt.MaxStolenNumOrDefault())
	}
	if opt.GrowableDeque {
		return deque.NewGrowable(opt.DequeCapacityOrDefault(), opt.MaxStolenNumOrDefault())
	}
	return deque.New(opt.DequeCapacityOrDefault(), opt.MaxStolenNumOrDefault())
}

// Run executes prog under eng with the given options and engine name: the
// batch entry point, building deques and workers for exactly one job and
// tearing everything down afterwards. Resident serving goes through Pool.
// Options.Ctx, when non-nil, cancels the run cooperatively.
func Run(prog sched.Program, opt sched.Options, eng Engine, name string) (sched.Result, error) {
	n := opt.WorkersOrDefault()
	rt := &Runtime{
		Prog:    prog,
		Costs:   opt.CostsOrDefault(),
		N:       n,
		Deques:  make([]deque.WorkDeque, n),
		Eng:     eng,
		profile: opt.Profile,
		tracer:  opt.Tracer,
		faults:  opt.Faults,
		stop:    &sched.Stop{},

		firstSolution: opt.FirstSolution,
	}
	if rt.tracer != nil {
		rt.tracer.Init(n, int64(opt.MaxStolenNumOrDefault()))
	}
	for i := range rt.Deques {
		rt.Deques[i] = newDeque(opt)
		if rt.tracer != nil {
			rt.Deques[i].SetTrace(rt.tracer.DequeHook(i))
		}
		if hook := rt.faults.DequeHook(i); hook != nil {
			rt.Deques[i].SetFailSteal(hook)
		}
	}
	release := sched.WatchContext(opt.Ctx, rt.stop)
	defer release()

	rt.stealPolicy = StealPolicyByName(opt.StealPolicy)
	rt.stealSeed = stealSeed(opt)
	workers := make([]*Worker, n)
	makespan := opt.PlatformOrDefault().Run(n, func(proc vtime.Proc) {
		w := &Worker{ID: proc.ID(), Proc: proc, Deque: rt.Deques[proc.ID()], rt: rt}
		if rt.tracer != nil {
			w.tr = rt.tracer.WorkerLog(w.ID)
		}
		w.fi = rt.faults.Worker(w.ID)
		w.thief = rt.stealPolicy.NewThief(w.ID, n, rt.stealSeed)
		w.bindProg()
		workers[w.ID] = w
		w.runJob(false)
	})

	res := sched.Result{
		Value:    rt.value.Load(),
		Makespan: makespan,
		Workers:  n,
		Engine:   name,
		Program:  prog.Name(),
		Stats:    collectStats(workers, rt.Deques, opt.Profile),
	}
	if f := rt.failure.Load(); f != nil {
		return res, f.err
	}
	return res, nil
}

// finalizeStats derives WorkTime as the worker time left over after the
// profiled overhead components. The components are accounted independently
// of WorkerTime, and nested charge windows (a poll interval inside a deque
// operation, say) can overlap, so on tiny runs the subtraction can dip
// below zero; clamp it — a negative "useful work" figure is never
// meaningful and poisons downstream overhead-percentage reports.
func finalizeStats(st *sched.Stats, profile bool) {
	if !profile {
		return
	}
	st.WorkTime = st.WorkerTime - st.CopyTime - st.DequeTime - st.PollTime - st.WaitTime - st.StealTime
	if st.WorkTime < 0 {
		st.WorkTime = 0
	}
}
