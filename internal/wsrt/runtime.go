package wsrt

import (
	"fmt"
	"sync/atomic"

	"adaptivetc/internal/deque"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/vtime"
)

// Engine is the per-strategy part of the runtime: how to execute the root
// task and how to resume a stolen frame (the paper's slow version). Both
// return (value, completed); completed is false when the computation
// detached — the frame was re-stolen or suspended and its value will arrive
// at its parent through the deposit protocol.
type Engine interface {
	Root(w *Worker) (int64, bool)
	Resume(w *Worker, f *Frame) (int64, bool)
}

// Runtime ties N workers, their deques and an Engine together for one run.
type Runtime struct {
	Prog   sched.Program
	Costs  sched.Costs
	N      int
	Deques []deque.WorkDeque
	Eng    Engine

	profile bool
	done    atomic.Bool
	value   atomic.Int64
	failure atomic.Pointer[runError]
}

type runError struct{ err error }

// Done reports whether the run has completed (or failed).
func (rt *Runtime) Done() bool { return rt.done.Load() }

func (rt *Runtime) complete(v int64) {
	rt.value.Store(v)
	rt.done.Store(true)
}

// Abort stops the run with an error (e.g. deque overflow). Engines call it
// via panic(abortError{...}) so that deep recursion unwinds; the worker's
// top level recovers.
type abortError struct{ err error }

func (e abortError) Error() string { return e.err.Error() }

// workerPoolCap bounds each worker's workspace pool and frame free-list.
// Both recycle per-spawn allocations, and both must stay bounded: a run can
// finalise many more frames (and release many more workspaces) than it will
// ever need live again at once — an unbalanced subtree can complete millions
// of tasks whose memory would otherwise sit in the lists until the run ends.
// The live demand at any instant is on the order of the deque depth, so a
// small cap keeps the recycle hit-rate near 100% while letting the excess
// go back to the garbage collector.
const workerPoolCap = 64

// Worker is one scheduler thread.
type Worker struct {
	ID    int
	Proc  vtime.Proc
	Deque deque.WorkDeque
	Stats sched.Stats

	rt     *Runtime
	pool   []sched.Workspace
	frames []*Frame
}

// Rt returns the worker's runtime.
func (w *Worker) Rt() *Runtime { return w.rt }

// Prog returns the program under execution.
func (w *Worker) Prog() sched.Program { return w.rt.Prog }

// Costs returns the run's cost model.
func (w *Worker) Costs() *sched.Costs { return &w.rt.Costs }

// BeginNode accounts one node visit.
func (w *Worker) BeginNode(ws sched.Workspace, depth int) {
	w.Stats.Nodes++
	sched.ChargeNode(w.rt.Prog, ws, depth, &w.rt.Costs, w.Proc)
	w.Proc.Yield()
}

// ChargeMove accounts one candidate move.
func (w *Worker) ChargeMove() { w.Proc.Advance(w.rt.Costs.Move) }

// ChargeTask accounts the creation of one real task (frame allocation and
// initialisation — the paper's "task creation" overhead). Engines call it
// at the entry of every task version, including for leaves, matching the
// alloc/free pair in the paper's Appendix B; the Go Frame object itself is
// only materialised when the node actually spawns.
func (w *Worker) ChargeTask() {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Spawn)
	w.Stats.TasksCreated++
	w.addDeque(t0)
}

// NewFrame builds a frame for the node at tree depth `depth` with
// cutoff-relative depth `rel`, reusing a recycled frame when the free-list
// has one. Cost is accounted separately via ChargeTask.
func (w *Worker) NewFrame(parent *Frame, ws sched.Workspace, depth, rel int, kind Kind) *Frame {
	var f *Frame
	if n := len(w.frames); n > 0 {
		f = w.frames[n-1]
		w.frames[n-1] = nil
		w.frames = w.frames[:n-1]
		f.reset(parent, ws, depth, rel, kind)
	} else {
		f = &Frame{Parent: parent, Depth: depth, Rel: rel, Kind: kind, WS: ws}
	}
	if kind == KindSpecial {
		f.waited = true
		w.Stats.SpecialTasks++
	}
	return f
}

// FreeFrame returns a dead frame to the worker's free-list for reuse by a
// later NewFrame. The caller must be the frame's sole owner: its executor
// after a SyncComplete (nothing pending, nothing in a deque), or the
// depositor that just finalised it — the two points where the deposit
// protocol guarantees no other reference survives. Frames freed by one
// worker may have been allocated by another; free-lists are per-worker, so
// no synchronisation is needed.
func (w *Worker) FreeFrame(f *Frame) {
	if len(w.frames) < workerPoolCap {
		w.frames = append(w.frames, f)
	}
}

// Push pushes f on the worker's own deque, accounting the cost. It aborts
// the run on overflow (the deque is a fixed-size array, as in Cilk).
func (w *Worker) Push(f *Frame) {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Push)
	if !w.Deque.Push(f) {
		panic(abortError{fmt.Errorf("%w: worker %d, capacity %d, program %s",
			sched.ErrDequeOverflow, w.ID, w.Deque.Cap(), w.rt.Prog.Name())})
	}
	w.addDeque(t0)
}

// Pop pops the worker's own deque tail, accounting the cost.
func (w *Worker) Pop() (deque.Entry, bool) {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Pop)
	e, ok := w.Deque.Pop()
	w.addDeque(t0)
	return e, ok
}

// PopSpecial pops the special task the worker pushed and reports whether
// its child was stolen.
func (w *Worker) PopSpecial() (stolen bool) {
	t0 := w.now()
	w.Proc.Advance(w.rt.Costs.Pop)
	stolen = w.Deque.PopSpecial()
	w.addDeque(t0)
	return stolen
}

// Clone copies ws for a child task (the taskprivate allocate-and-copy),
// charging allocation plus per-byte cost. Programs without taskprivate data
// (Bytes() == 0 — fib, comp) pay nothing: their spawn arguments travel by
// value and the structural Clone below stands in for ordinary argument
// passing, whose price is already inside Costs.Spawn.
func (w *Worker) Clone(ws sched.Workspace) sched.Workspace {
	if ws.Bytes() == 0 {
		return ws.Clone()
	}
	t0 := w.now()
	c := &w.rt.Costs
	w.Proc.Advance(c.CopyBase + int64(ws.Bytes())/c.CopyBytesPerNs)
	w.Stats.WorkspaceCopies++
	w.Stats.WorkspaceBytes += int64(ws.Bytes())
	clone := ws.Clone()
	w.addCopy(t0)
	return clone
}

// ClonePooled copies ws reusing a per-worker buffer when possible — the
// Cilk-SYNCHED behaviour: memory is conserved, but the bytes are still
// copied, so only the allocation part of the cost is saved.
func (w *Worker) ClonePooled(ws sched.Workspace) sched.Workspace {
	if ws.Bytes() == 0 {
		return ws.Clone()
	}
	t0 := w.now()
	c := &w.rt.Costs
	w.Proc.Advance(c.PooledBase + int64(ws.Bytes())/c.CopyBytesPerNs)
	w.Stats.WorkspaceCopies++
	w.Stats.WorkspaceBytes += int64(ws.Bytes())
	var clone sched.Workspace
	if n := len(w.pool); n > 0 {
		dst := w.pool[n-1]
		w.pool = w.pool[:n-1]
		if r, ok := dst.(sched.Reusable); ok {
			r.CopyFrom(ws)
			clone = dst
		}
	}
	if clone == nil {
		clone = ws.Clone()
	}
	w.addCopy(t0)
	return clone
}

// Release returns a workspace to the worker's pool once its child subtree
// has completed inline.
func (w *Worker) Release(ws sched.Workspace) {
	if len(w.pool) < workerPoolCap {
		w.pool = append(w.pool, ws)
	}
}

// Deposit delivers v to parent, finalising and cascading when a suspended
// frame's last expected deposit arrives. A nil parent completes the run.
// Each finalised frame is recycled: the finalising depositor owns it
// outright (its executor abandoned it at suspension and this was the last
// expected deposit), so after reading the total and the parent link it goes
// to the worker's free-list.
func (w *Worker) Deposit(parent *Frame, v int64) {
	for {
		if parent == nil {
			w.rt.complete(v)
			return
		}
		total, finalise := parent.deposit(v)
		if !finalise {
			return
		}
		next := parent.Parent
		w.FreeFrame(parent)
		v, parent = total, next
	}
}

func (w *Worker) now() int64 {
	if w.rt.profile {
		return w.Proc.Now()
	}
	return 0
}

func (w *Worker) addDeque(t0 int64) {
	if w.rt.profile {
		w.Stats.DequeTime += w.Proc.Now() - t0
	}
}

func (w *Worker) addCopy(t0 int64) {
	if w.rt.profile {
		w.Stats.CopyTime += w.Proc.Now() - t0
	}
}

// AddWait accounts join-wait time explicitly (special task sync).
func (w *Worker) AddWait(d int64) {
	if w.rt.profile {
		w.Stats.WaitTime += d
	}
}

// AddPoll accounts need_task polling.
func (w *Worker) AddPoll(d int64) {
	if w.rt.profile {
		w.Stats.PollTime += d
	}
}

// thiefLoop steals until the run completes.
func (w *Worker) thiefLoop() {
	rt := w.rt
	for !rt.done.Load() {
		victim := w.ID
		if rt.N > 1 {
			victim = w.Proc.Rand().Intn(rt.N - 1)
			if victim >= w.ID {
				victim++
			}
		}
		t0 := w.now()
		w.Proc.Advance(rt.Costs.Steal)
		e, ok := rt.Deques[victim].Steal()
		if w.rt.profile {
			w.Stats.StealTime += w.Proc.Now() - t0
		}
		if ok {
			w.Stats.Steals++
			f := e.(*Frame)
			v, completed := rt.Eng.Resume(w, f)
			if completed {
				// f's subtree is done and its sync saw no pending deposits,
				// so the thief is its last owner: recycle it, then deliver
				// its value (the parent link must be read first).
				parent := f.Parent
				w.FreeFrame(f)
				w.Deposit(parent, v)
			}
		} else {
			w.Stats.StealFails++
		}
		w.Proc.Yield()
	}
}

// Run executes prog under eng with the given options and engine name.
func Run(prog sched.Program, opt sched.Options, mk func(rt *Runtime) Engine, name string) (sched.Result, error) {
	n := opt.WorkersOrDefault()
	rt := &Runtime{
		Prog:    prog,
		Costs:   opt.CostsOrDefault(),
		N:       n,
		Deques:  make([]deque.WorkDeque, n),
		profile: opt.Profile,
	}
	for i := range rt.Deques {
		if opt.GrowableDeque {
			rt.Deques[i] = deque.NewGrowable(opt.DequeCapacityOrDefault(), opt.MaxStolenNumOrDefault())
		} else {
			rt.Deques[i] = deque.New(opt.DequeCapacityOrDefault(), opt.MaxStolenNumOrDefault())
		}
	}
	rt.Eng = mk(rt)

	workers := make([]*Worker, n)
	makespan := opt.PlatformOrDefault().Run(n, func(proc vtime.Proc) {
		w := &Worker{ID: proc.ID(), Proc: proc, Deque: rt.Deques[proc.ID()], rt: rt}
		workers[w.ID] = w
		start := proc.Now()
		defer func() {
			w.Stats.WorkerTime += proc.Now() - start
			if r := recover(); r != nil {
				if ae, ok := r.(abortError); ok {
					rt.failure.CompareAndSwap(nil, &runError{err: ae.err})
					rt.done.Store(true)
					return
				}
				panic(r)
			}
		}()
		if w.ID == 0 {
			v, completed := rt.Eng.Root(w)
			if completed {
				rt.complete(v)
			}
		}
		w.thiefLoop()
	})

	var st sched.Stats
	for _, w := range workers {
		if w != nil {
			st.Add(w.Stats)
		}
	}
	for _, d := range rt.Deques {
		if d.MaxDepth() > st.MaxDequeDepth {
			st.MaxDequeDepth = d.MaxDepth()
		}
	}
	if opt.Profile {
		st.WorkTime = st.WorkerTime - st.CopyTime - st.DequeTime - st.PollTime - st.WaitTime - st.StealTime
	}
	res := sched.Result{
		Value:    rt.value.Load(),
		Makespan: makespan,
		Workers:  n,
		Engine:   name,
		Program:  prog.Name(),
		Stats:    st,
	}
	if f := rt.failure.Load(); f != nil {
		return res, f.err
	}
	return res, nil
}
