package wsrt

import "testing"

func TestSyncCompleteWithoutTheft(t *testing.T) {
	f := &Frame{}
	total, out := f.Sync(42)
	if out != SyncComplete || total != 42 {
		t.Fatalf("got (%d,%v), want (42,complete)", total, out)
	}
}

func TestStealSuspendDeposit(t *testing.T) {
	f := &Frame{}
	f.OnStolen() // a thief took the frame; one deposit is now owed
	if total, out := f.Sync(10); out != SyncSuspended || total != 0 {
		t.Fatalf("sync with pending child: got (%d,%v)", total, out)
	}
	total, finalise := f.deposit(32)
	if !finalise || total != 42 {
		t.Fatalf("last deposit: got (%d,%v), want (42,true)", total, finalise)
	}
}

func TestDepositBeforeSyncFoldsIn(t *testing.T) {
	f := &Frame{}
	f.OnStolen()
	if _, finalise := f.deposit(5); finalise {
		t.Fatal("deposit finalised an unsuspended frame")
	}
	total, out := f.Sync(10)
	if out != SyncComplete || total != 15 {
		t.Fatalf("got (%d,%v), want (15,complete)", total, out)
	}
}

func TestMultipleSteals(t *testing.T) {
	f := &Frame{}
	f.OnStolen()
	f.OnStolen()
	f.OnStolen()
	if _, fin := f.deposit(1); fin {
		t.Fatal("finalised early")
	}
	if _, out := f.Sync(100); out != SyncSuspended {
		t.Fatal("should suspend with 2 pending")
	}
	if _, fin := f.deposit(2); fin {
		t.Fatal("finalised early")
	}
	total, fin := f.deposit(3)
	if !fin || total != 106 {
		t.Fatalf("got (%d,%v), want (106,true)", total, fin)
	}
}

func TestSpecialExpectAndDrain(t *testing.T) {
	f := &Frame{Kind: KindSpecial, waited: true}
	if !f.Special() {
		t.Fatal("not special")
	}
	f.ExpectDeposit()
	if _, done := f.DrainedAfter(7); done {
		t.Fatal("drained with a pending deposit")
	}
	if _, fin := f.deposit(5); fin {
		t.Fatal("a depositor finalised a waited frame")
	}
	total, done := f.DrainedAfter(7)
	if !done || total != 12 {
		t.Fatalf("got (%d,%v), want (12,true)", total, done)
	}
}

func TestSpecialEarlyDepositTransient(t *testing.T) {
	// The finaliser may deposit before the check version registers
	// ExpectDeposit; pending dips negative and recovers.
	f := &Frame{Kind: KindSpecial, waited: true}
	if _, fin := f.deposit(9); fin {
		t.Fatal("finalised waited frame")
	}
	f.ExpectDeposit()
	total, done := f.DrainedAfter(1)
	if !done || total != 10 {
		t.Fatalf("got (%d,%v), want (10,true)", total, done)
	}
}

func TestDepositWithoutTheftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected protocol-violation panic")
		}
	}()
	f := &Frame{}
	f.deposit(1)
}

func TestCancelExpected(t *testing.T) {
	f := &Frame{}
	f.ExpectDeposit()
	f.CancelExpected()
	if total, out := f.Sync(5); out != SyncComplete || total != 5 {
		t.Fatalf("after cancel: got (%d,%v), want (5,complete)", total, out)
	}
}

func TestStartConvertsChild(t *testing.T) {
	parent := &Frame{}
	child := &Frame{Kind: KindChild, Parent: parent}
	child.OnStolen() // help-first theft credits the parent
	if parent.pending != 1 || child.pending != 0 {
		t.Fatalf("child theft credited wrong frame: parent=%d child=%d", parent.pending, child.pending)
	}
	child.Start()
	if child.Kind != KindFast {
		t.Fatal("Start did not convert the child")
	}
	child.OnStolen() // continuation theft credits the frame itself
	if child.pending != 1 {
		t.Fatalf("continuation theft went to pending=%d", child.pending)
	}
	// Resolve both to keep the invariants tidy.
	if _, fin := child.deposit(1); fin {
		t.Fatal("unexpected finalise")
	}
	if _, fin := parent.deposit(2); fin {
		t.Fatal("unexpected finalise")
	}
}
