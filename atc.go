package adaptivetc

import "adaptivetc/internal/lang"

// CompileATC compiles ATC source — the mini-language front end of the
// reproduction, mirroring the paper's extended-Cilk language with its
// taskprivate attribute (see internal/lang for the language reference) —
// into a Program runnable by every engine. overrides replace `param`
// values, which is how benchmark sizes are set:
//
//	p, err := adaptivetc.CompileATC("queens", adaptivetc.ATCSources()["nqueens"],
//	    map[string]int64{"n": 10})
//	res, _ := adaptivetc.NewAdaptiveTC().Run(p, adaptivetc.Options{Workers: 8})
func CompileATC(name, src string, overrides map[string]int64) (Program, error) {
	return lang.CompileProgram(name, src, overrides)
}

// ATCSources returns the built-in ATC example programs by name
// ("nqueens", "fib", "latin").
func ATCSources() map[string]string { return lang.Sources() }
