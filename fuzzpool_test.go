package adaptivetc_test

import (
	"context"
	"errors"
	"testing"

	"adaptivetc"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/bnb"
	"adaptivetc/problems/dagflow"
	"adaptivetc/problems/fib"
	"adaptivetc/problems/firstsol"
	"adaptivetc/problems/nqueens"
)

// FuzzPoolConcurrent feeds a fuzzer-chosen schedule of operations —
// submit, cancel, shard-policy flip, submit-with-injected-faults — to a
// sharded pool, then closes it and audits the wreckage: every completed
// job must report the right answer with a trace satisfying all scheduler
// invariants, every cancelled, drained or fault-killed job must surface a
// known abort class and leave a consistent truncated trace, the pool's
// quarantine counter must agree with the observed panic deaths, and no
// two jobs may ever hold the same worker at the same time. A high second
// byte additionally arms pool-level admission/shard-allocator faults; a
// high first byte switches the pool to the lock-reduced deque variant
// (audited with the k=2 multiplicity-tolerant checker), and each job's
// steal policy is drawn from its op byte. Submitted programs are drawn
// from five families — classic search (fib, n-queens), the shared-state
// families (dataflow DAG, branch-and-bound knapsack) and first-solution
// SAT, whose jobs race the fuzzer's cancellations and are judged by a
// witness predicate under truncation laws rather than a fixed value. The
// seed corpus doubles as a regression suite in plain `go test` runs.
func FuzzPoolConcurrent(f *testing.F) {
	f.Add([]byte{2, 1, 0, 5, 10})
	f.Add([]byte{0, 2, 0, 0, 3, 2, 0, 7, 1, 0})
	f.Add([]byte{1, 1, 0, 2, 0, 4, 4, 3, 0, 2, 0, 9})
	f.Add([]byte{2, 2, 0, 0, 0, 0, 3, 3, 2, 2, 0, 0, 13, 8})
	f.Add([]byte{2, 2, 4, 0, 4, 0, 4, 0, 4, 0})       // panic-quarantine then heal
	f.Add([]byte{2, 2, 5, 1, 5, 1, 5, 1, 5, 1})       // forced-overflow aborts
	f.Add([]byte{3, 0x82, 0, 4, 5, 2, 3, 0, 4, 5, 2}) // pool-level faults armed
	// Relaxed-deque probes (high first byte): one seed cycles all four
	// steal policies (op/6 picks the policy), and the steal-half probes mix
	// panic quarantine (op 10) and overflow+steal-fail noise (op 11) with
	// batch steals in flight — the case where an abandoned intake buffer or
	// an unpaid batch debt would surface as a truncated-trace violation.
	f.Add([]byte{0x82, 2, 0, 6, 12, 18, 0, 6, 12, 18, 2, 3})
	f.Add([]byte{0x81, 2, 7, 10, 7, 10, 7, 10, 2})    // steal-half under panic quarantine
	f.Add([]byte{0x83, 1, 7, 11, 7, 11, 7, 11, 2, 9}) // steal-half under overflow + steal noise
	// Shared-state families: concurrent DAG + BnB jobs on one pool (the
	// per-position index walks all five families), first-solution jobs
	// racing cancellation (op%6==2 right after a first-sat submit), and a
	// first-solution job under a certain-panic plan.
	f.Add([]byte{2, 2, 0, 1, 6, 7, 12, 13, 18, 19, 24})
	f.Add([]byte{3, 1, 24, 2, 24, 2, 24, 2, 24, 2})
	f.Add([]byte{0x82, 2, 4, 24, 10, 24, 2, 5, 24, 11})

	fibProg, queensProg := fib.New(10), nqueens.NewArray(5)
	const fibWant, queensWant = 55, 10
	// The shared-state families: a wavefront DAG and a knapsack whose values
	// are schedule-independent by construction (dagflow/bnb package docs),
	// plus a planted-satisfiable first-solution SAT instance. One instance
	// each, deliberately shared by every concurrent job that draws it — the
	// per-run state allocated in Root() is what makes that legal.
	dagProg := dagflow.NewStencil(3, 4)
	knapProg := bnb.NewKnapsack(9, 0, 20100424)
	satProg := firstsol.NewSAT(8, 0, 20100424)
	dagWant := dagProg.WantValue()
	knapRes, err := adaptivetc.NewSerial().Run(knapProg, adaptivetc.Options{})
	if err != nil {
		f.Fatalf("knapsack oracle: %v", err)
	}
	knapWant := knapRes.Value

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) < 3 {
			t.Skip()
		}
		workers := 2 + int(ops[0]%3) // 2..4 resident workers
		maxJobs := 1 + int(ops[1]%3) // 1..3 shards
		// A high first byte switches every deque in the pool to the
		// lock-reduced variant; verdicts below then run the invariant
		// checker in multiplicity-tolerant mode (k=2).
		relaxed := ops[0] >= 128
		// A high second byte arms mild pool-level faults: transient
		// admission saturation and shard-allocator starvation. Both are
		// liveness hazards, not correctness ones — submits may see
		// ErrQueueFull, placement may be delayed, nothing else changes.
		var poolPlan *faults.Plan
		if ops[1] >= 128 {
			poolPlan = faults.New(faults.Spec{
				Seed:   int64(ops[0]) + 1,
				Reject: 0.05,
				Starve: 0.2, StarveBurst: 2,
			})
		}
		pool := wsrt.NewPool(wsrt.PoolConfig{
			Workers: workers, MaxConcurrentJobs: maxJobs,
			ShardPolicy: wsrt.ShardStatic, QueueCapacity: 8,
			Options: sched.Options{GrowableDeque: true, RelaxedDeque: relaxed},
			Faults:  poolPlan,
		})
		closed := false
		defer func() {
			if !closed {
				pool.Close()
			}
		}()

		type jobRec struct {
			h        *wsrt.JobHandle
			rec      *trace.Recorder
			want     int64
			verify   func(int64) bool // first-solution witness predicate
			first    bool             // submitted with JobSpec.FirstSolution
			cancel   context.CancelFunc
			panicked bool // submitted with a certain-panic fault plan
		}
		var jobs []*jobRec
		engines := []func() adaptivetc.Engine{
			adaptivetc.NewAdaptiveTC, adaptivetc.NewCilk,
			adaptivetc.NewHelpFirst, adaptivetc.NewSLAW,
		}

		for i, op := range ops[2:] {
			switch op % 6 {
			case 0, 1, 4, 5: // submit; 4 and 5 carry a fault plan
				if len(jobs) >= 24 {
					continue
				}
				// The family is drawn per position: two classic search
				// programs, the two shared-state families, and a
				// first-solution job — which has no fixed want value, only
				// a witness predicate, and is audited under truncation
				// laws (its losing workers are cancelled by design).
				prog, want := sched.Program(fibProg), int64(fibWant)
				var verify func(int64) bool
				first := false
				switch (int(op) + i) % 5 {
				case 1:
					prog, want = queensProg, queensWant
				case 2:
					prog, want = dagProg, dagWant
				case 3:
					prog, want = knapProg, knapWant
				case 4:
					prog, first = satProg, true
					verify = satProg.Verify
				}
				eng := engines[(int(op)/6+i)%len(engines)]().(wsrt.PoolEngine)
				// Fault schedules are drawn from the fuzz input too: a
				// deterministic per-position seed, a certain worker panic
				// (op%6==4) or a forced deque overflow plus steal noise
				// (op%6==5).
				var plan *faults.Plan
				panicked := false
				switch op % 6 {
				case 4:
					plan = faults.New(faults.Spec{Seed: int64(i)*131 + int64(op) + 1, Panic: 1})
					panicked = true
				case 5:
					plan = faults.New(faults.Spec{
						Seed:     int64(i)*131 + int64(op) + 1,
						Overflow: 0.2, StealFail: 0.3, StealFailBurst: 4,
					})
				}
				// The steal policy is fuzzer-chosen too: op/6 indexes the
				// registry, so every policy can meet every fault class.
				policy := wsrt.StealPolicyNames()[(int(op)/6)%len(wsrt.StealPolicyNames())]
				rec := trace.NewRecorder()
				ctx, cancel := context.WithCancel(context.Background())
				h, err := pool.Submit(wsrt.JobSpec{Prog: prog, Engine: eng, Ctx: ctx, Tracer: rec, Faults: plan, StealPolicy: policy, FirstSolution: first})
				if err != nil {
					rec.Release()
					cancel()
					if !errors.Is(err, wsrt.ErrQueueFull) {
						t.Fatalf("op %d: submit failed with %v, want nil or ErrQueueFull", i, err)
					}
					continue
				}
				jobs = append(jobs, &jobRec{h: h, rec: rec, want: want, verify: verify, first: first, cancel: cancel, panicked: panicked})
			case 2: // cancel an earlier job (idempotent if already done)
				if len(jobs) > 0 {
					jobs[int(op)%len(jobs)].cancel()
				}
			case 3: // flip the shard allocator policy mid-flight
				if pool.ShardPolicy() == wsrt.ShardStatic {
					pool.SetShardPolicy(wsrt.ShardAdaptive)
				} else {
					pool.SetShardPolicy(wsrt.ShardStatic)
				}
			}
		}

		pool.Close()
		closed = true
		if _, err := pool.Submit(wsrt.JobSpec{Prog: fibProg, Engine: adaptivetc.NewAdaptiveTC().(wsrt.PoolEngine)}); !errors.Is(err, wsrt.ErrPoolClosed) {
			t.Fatalf("submit after close: err = %v, want ErrPoolClosed", err)
		}

		multiplicity := 1
		if relaxed {
			multiplicity = 2
		}
		var sawPanicked int64
		for i, j := range jobs {
			res, err := j.h.Result()
			if err == nil {
				if j.panicked {
					t.Errorf("job %d: certain-panic fault plan but the job completed", i)
				}
				if j.first {
					// A completed first-solution job on a satisfiable
					// instance must carry a valid witness (a clean run
					// can only end by claiming one), and its trace is
					// audited under truncation laws: the winner's claim
					// cancels siblings mid-tree by design.
					if !j.verify(res.Value) {
						t.Errorf("job %d: invalid first-solution witness %d", i, res.Value)
					}
					if cerr := j.rec.CheckTruncatedMultiplicity(multiplicity); cerr != nil {
						t.Errorf("job %d first-solution invariants: %v", i, cerr)
					}
				} else {
					if res.Value != j.want {
						t.Errorf("job %d: value %d, want %d", i, res.Value, j.want)
					}
					if cerr := j.rec.CheckMultiplicity(res.Value, j.want, multiplicity); cerr != nil {
						t.Errorf("job %d invariants: %v", i, cerr)
					}
				}
			} else {
				if !chaosAbortOK(err) {
					t.Errorf("job %d: unknown abort class: %v", i, err)
				}
				if errors.Is(err, wsrt.ErrJobPanicked) {
					sawPanicked++
				}
				if cerr := j.rec.CheckTruncatedMultiplicity(multiplicity); cerr != nil {
					t.Errorf("job %d (failed with %v) truncated-trace invariants: %v", i, err, cerr)
				}
			}
			j.rec.Release()
			j.cancel()
		}
		if got := pool.Quarantined(); got != sawPanicked {
			t.Errorf("pool.Quarantined() = %d, but %d jobs died of ErrJobPanicked", got, sawPanicked)
		}

		// Shard-exclusivity: two jobs that ran on intersecting worker sets
		// must have held them at disjoint times. Each job's recorded
		// interval is inside its exclusive shard-hold window, so any
		// overlap here means the allocator double-booked a worker.
		for i := 0; i < len(jobs); i++ {
			for k := i + 1; k < len(jobs); k++ {
				a, b := jobs[i].h, jobs[k].h
				if len(a.Shard()) == 0 || len(b.Shard()) == 0 || !shardsIntersect(a.Shard(), b.Shard()) {
					continue
				}
				aStart, aEnd := a.Interval()
				bStart, bEnd := b.Interval()
				if aStart.Before(bEnd) && bStart.Before(aEnd) {
					t.Errorf("jobs %d and %d shared workers (shards %v ∩ %v) with overlapping run windows [%v,%v] and [%v,%v]",
						i, k, a.Shard(), b.Shard(), aStart, aEnd, bStart, bEnd)
				}
			}
		}
	})
}

func shardsIntersect(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
