// Sudoku solution counting — the paper's flagship taskprivate example
// (Appendix A). Solves a 9×9 instance with every scheduler and shows where
// the workspace-copying cost goes: Cilk clones the Status_t for every
// spawn, Cilk-SYNCHED reuses pooled memory but still copies the bytes,
// Tascell copies only when a task is extracted, and AdaptiveTC copies only
// in its (few) real tasks.
//
//	go run ./examples/sudoku [-removed 46] [-input balanced|input1|input2]
package main

import (
	"flag"
	"fmt"
	"log"

	"adaptivetc"
	"adaptivetc/problems/sudoku"
)

func main() {
	removed := flag.Int("removed", 46, "cells removed from the solved grid")
	input := flag.String("input", "balanced", "balanced, input1 (heavy spine) or input2")
	workers := flag.Int("workers", 8, "workers")
	flag.Parse()

	var prog adaptivetc.Program
	switch *input {
	case "balanced":
		prog = sudoku.Balanced(3, *removed)
	case "input1":
		prog = sudoku.Input1(3, *removed)
	case "input2":
		prog = sudoku.Input2(3, *removed)
	default:
		log.Fatalf("unknown input %q", *input)
	}

	shape := adaptivetc.Analyze(prog, 5e6)
	fmt.Printf("%s: search tree %d nodes, depth %d\n", prog.Name(), shape.Nodes, shape.Depth)
	fmt.Printf("depth-1 subtree shares: ")
	for _, p := range shape.Depth1Percent() {
		fmt.Printf("%.1f%% ", p)
	}
	fmt.Println()

	serial, err := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solutions: %d; serial %.2fms\n\n", serial.Value, float64(serial.Makespan)/1e6)

	fmt.Printf("%-18s %9s %12s %14s\n", "engine", "speedup", "copies", "bytes copied")
	for _, engine := range adaptivetc.Engines() {
		if engine.Name() == "serial" {
			continue
		}
		res, err := engine.Run(prog, adaptivetc.Options{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		if res.Value != serial.Value {
			log.Fatalf("%s returned %d, want %d", engine.Name(), res.Value, serial.Value)
		}
		fmt.Printf("%-18s %8.2fx %12d %14d\n", engine.Name(),
			float64(serial.Makespan)/float64(res.Makespan),
			res.Stats.WorkspaceCopies, res.Stats.WorkspaceBytes)
	}
}
