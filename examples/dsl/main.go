// The ATC mini-language in action: compile a backtracking search written
// in the paper's extended-Cilk shape (taskprivate state + terminal/moves/
// apply/undo) and run it under every scheduler. Pass -src to compile your
// own .atc file.
//
//	go run ./examples/dsl
//	go run ./examples/dsl -builtin latin -n 5
//	go run ./examples/dsl -src my-search.atc -workers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"adaptivetc"
)

func main() {
	builtin := flag.String("builtin", "nqueens", "built-in program: nqueens, fib, latin")
	srcPath := flag.String("src", "", "path to an .atc source file (overrides -builtin)")
	n := flag.Int64("n", 9, "value for the program's n parameter")
	workers := flag.Int("workers", 8, "workers")
	flag.Parse()

	var name, src string
	if *srcPath != "" {
		data, err := os.ReadFile(*srcPath)
		if err != nil {
			log.Fatal(err)
		}
		name, src = *srcPath, string(data)
	} else {
		s, ok := adaptivetc.ATCSources()[*builtin]
		if !ok {
			log.Fatalf("unknown built-in %q", *builtin)
		}
		name, src = *builtin, s
	}

	prog, err := adaptivetc.CompileATC(name, src, map[string]int64{"n": *n})
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	serial, err := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: value %d, serial %.2fms (virtual)\n\n", prog.Name(), serial.Value, float64(serial.Makespan)/1e6)
	fmt.Printf("%-14s %9s %9s %9s\n", "engine", "speedup", "tasks", "copies")
	for _, e := range []adaptivetc.Engine{
		adaptivetc.NewCilk(), adaptivetc.NewTascell(), adaptivetc.NewAdaptiveTC(),
	} {
		res, err := e.Run(prog, adaptivetc.Options{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		if res.Value != serial.Value {
			log.Fatalf("%s returned %d, want %d", e.Name(), res.Value, serial.Value)
		}
		fmt.Printf("%-14s %8.2fx %9d %9d\n", e.Name(),
			float64(serial.Makespan)/float64(res.Makespan),
			res.Stats.TasksCreated, res.Stats.WorkspaceCopies)
	}
	fmt.Println("\nThe same compiled program ran under three schedulers; the")
	fmt.Println("taskprivate state was cloned only where each strategy demands it.")
}
