// Quickstart: count 10-queens solutions with every scheduler and compare
// their virtual-time makespans at 8 workers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adaptivetc"
	"adaptivetc/problems/nqueens"
)

func main() {
	prog := nqueens.NewArray(10)

	// The serial engine is the baseline every speedup refers to.
	serial, err := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d solutions, serial time %.2fms (virtual)\n\n",
		prog.Name(), serial.Value, float64(serial.Makespan)/1e6)

	fmt.Printf("%-18s %10s %9s %8s %8s %8s\n",
		"engine (8 workers)", "makespan", "speedup", "tasks", "copies", "steals")
	for _, engine := range []adaptivetc.Engine{
		adaptivetc.NewCilk(),
		adaptivetc.NewCilkSynched(),
		adaptivetc.NewTascell(),
		adaptivetc.NewAdaptiveTC(),
	} {
		res, err := engine.Run(prog, adaptivetc.Options{Workers: 8})
		if err != nil {
			log.Fatal(err)
		}
		if res.Value != serial.Value {
			log.Fatalf("%s returned %d, want %d", engine.Name(), res.Value, serial.Value)
		}
		fmt.Printf("%-18s %8.2fms %8.2fx %8d %8d %8d\n",
			engine.Name(), float64(res.Makespan)/1e6,
			float64(serial.Makespan)/float64(res.Makespan),
			res.Stats.TasksCreated, res.Stats.WorkspaceCopies, res.Stats.Steals)
	}

	fmt.Println("\nNote how AdaptiveTC reaches the best makespan with a small")
	fmt.Println("fraction of Cilk's task creations and workspace copies — the")
	fmt.Println("paper's central claim.")
}
