// Unbalanced trees and dynamic load balancing — the experiment behind the
// paper's Figure 10. Runs the Table 3 Tree3 shape (the most skewed: one
// child holds ~90% of the tree) in its left-heavy and right-heavy
// orientations and shows the asymmetry: Tascell, which cannot suspend a
// waiting task, collapses on the right-heavy mirror, while Cilk-SYNCHED
// and AdaptiveTC barely notice the flip.
//
//	go run ./examples/unbalanced [-size 120000] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"adaptivetc"
	"adaptivetc/problems/synthtree"
)

func main() {
	size := flag.Int64("size", 120000, "tree leaf count")
	workers := flag.Int("workers", 8, "workers")
	flag.Parse()

	left := synthtree.Tree3(*size)
	left.Seed = 20100424
	right := left.Reverse()

	engines := []adaptivetc.Engine{
		adaptivetc.NewCilkSynched(),
		adaptivetc.NewTascell(),
		adaptivetc.NewAdaptiveTC(),
	}

	for _, spec := range []synthtree.Spec{left, right} {
		prog := synthtree.New(spec)
		serial, err := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d leaves, serial %.1fms)\n", prog.Name(), spec.Size, float64(serial.Makespan)/1e6)
		fmt.Printf("%-16s %9s %14s\n", "engine", "speedup", "wait_children")
		for _, engine := range engines {
			res, err := engine.Run(prog, adaptivetc.Options{Workers: *workers, Profile: true})
			if err != nil {
				log.Fatal(err)
			}
			if res.Value != spec.Size {
				log.Fatalf("%s returned %d, want %d", engine.Name(), res.Value, spec.Size)
			}
			waitPct := 100 * float64(res.Stats.WaitTime) / float64(res.Stats.WorkerTime)
			fmt.Printf("%-16s %8.2fx %13.2f%%\n", engine.Name(),
				float64(serial.Makespan)/float64(res.Makespan), waitPct)
		}
	}
	fmt.Println("\nTascell's victims keep the early iterations and give away the")
	fmt.Println("late ones, so when the heavy subtree comes last they finish their")
	fmt.Println("own share quickly and then sit in wait_children (§5.3.2).")
}
