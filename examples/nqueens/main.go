// N-queens under AdaptiveTC: sweep workers 1..8 on both paper variants
// (array-based and compute-based conflict detection) and print the speedup
// curves plus the adaptive machinery's statistics — how many real tasks,
// fake tasks and special tasks the strategy produced.
//
//	go run ./examples/nqueens [-n 11] [-real]
package main

import (
	"flag"
	"fmt"
	"log"

	"adaptivetc"
	"adaptivetc/problems/nqueens"
)

func main() {
	n := flag.Int("n", 11, "board size")
	real := flag.Bool("real", false, "use real goroutines instead of virtual time")
	flag.Parse()

	for _, prog := range []adaptivetc.Program{nqueens.NewArray(*n), nqueens.NewCompute(*n)} {
		serial, err := adaptivetc.NewSerial().Run(prog, adaptivetc.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — %d solutions, serial %.2fms\n", prog.Name(), serial.Value, float64(serial.Makespan)/1e6)
		fmt.Printf("%8s %9s %9s %9s %9s %9s\n", "workers", "speedup", "tasks", "fake", "special", "steals")
		for workers := 1; workers <= 8; workers++ {
			opt := adaptivetc.Options{Workers: workers}
			if *real {
				opt.Platform = adaptivetc.NewRealPlatform(1)
			}
			res, err := adaptivetc.NewAdaptiveTC().Run(prog, opt)
			if err != nil {
				log.Fatal(err)
			}
			if res.Value != serial.Value {
				log.Fatalf("wrong answer at %d workers: %d", workers, res.Value)
			}
			fmt.Printf("%8d %8.2fx %9d %9d %9d %9d\n",
				workers, float64(serial.Makespan)/float64(res.Makespan),
				res.Stats.TasksCreated, res.Stats.FakeTasks,
				res.Stats.SpecialTasks, res.Stats.Steals)
		}
	}
	fmt.Println("\nThe cutoff is ⌈log2 N⌉, so more workers ⇒ a deeper fast region")
	fmt.Println("⇒ more initial tasks; everything below runs as fake tasks until")
	fmt.Println("a starving thief raises need_task.")
}
