package adaptivetc_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"adaptivetc"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/bnb"
	"adaptivetc/problems/dagflow"
	"adaptivetc/problems/firstsol"
	"adaptivetc/problems/knight"
	"adaptivetc/problems/nqueens"
)

// Chaos tests: every traced engine must stay inside the failure contract
// while the deterministic fault plane (internal/faults) perturbs its
// schedule. A case may end one of two ways, and nothing else:
//
//   - completed: serial-oracle value AND an invariant-clean trace
//     (trace.Recorder.Check);
//   - aborted: a known abort class (injected panic, forced overflow,
//     deadline, cancellation, pool shutdown) AND a truncation-clean trace
//     (CheckTruncated).
//
// Wrong values, invariant violations, unknown panic classes, hangs and
// leaked goroutines all fail the test. Seeds are pinned, and the Sim
// platform makes each case a pure function of its seed, so any failure
// here reproduces byte-identically from the logged tuple (see
// TestChaosSeedReplay for the replay contract itself).

// chaosAbortOK reports whether err is an abort class chaos is allowed to
// surface. Mirrors the verdict contract of cmd/adaptivetc-chaos.
func chaosAbortOK(err error) bool {
	return errors.Is(err, sched.ErrDequeOverflow) ||
		errors.Is(err, wsrt.ErrJobPanicked) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, wsrt.ErrPoolClosed)
}

// chaosOutcome is everything observable about one Sim case: the value, the
// error text, and the full per-worker event and per-deque FSM streams. Two
// runs of the same (engine, program, spec, seed) tuple must produce
// DeepEqual outcomes — that is the seed-replay contract.
type chaosOutcome struct {
	Value   int64
	Err     string
	Workers [][]trace.Event
	Deques  [][]trace.DequeEvent
}

// runChaos executes one faulted case on the Sim platform. Injected program
// panics propagate out of batch runs by design; they are recovered here
// and folded into the returned error as wsrt.ErrJobPanicked.
func runChaos(e adaptivetc.Engine, p adaptivetc.Program, spec faults.Spec, workers int, seed int64) (*chaosOutcome, error) {
	rec := trace.NewRecorder()
	defer rec.Release()
	res, runErr := func() (res sched.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(faults.PanicValue); ok {
					err = errors.Join(wsrt.ErrJobPanicked, errors.New(r.(faults.PanicValue).String()))
					return
				}
				panic(r)
			}
		}()
		return e.Run(p, adaptivetc.Options{
			Workers: workers,
			Seed:    seed,
			Tracer:  rec,
			Faults:  faults.New(spec),
		})
	}()

	out := &chaosOutcome{Value: res.Value}
	if runErr != nil {
		out.Err = runErr.Error()
	}
	for i := 0; i < rec.Workers(); i++ {
		out.Workers = append(out.Workers, append([]trace.Event(nil), rec.WorkerLog(i).Events()...))
		out.Deques = append(out.Deques, append([]trace.DequeEvent(nil), rec.DequeLog(i).Events()...))
	}

	if runErr == nil {
		if cerr := rec.Check(res.Value, invariantOracleValue); cerr != nil {
			return out, cerr
		}
		return out, nil
	}
	if !chaosAbortOK(runErr) {
		return out, runErr
	}
	if cerr := rec.CheckTruncated(); cerr != nil {
		return out, cerr
	}
	return out, runErr
}

// invariantOracleValue is set once per test binary by chaosOracle.
var invariantOracleValue int64

func chaosOracle(t *testing.T, p adaptivetc.Program) int64 {
	t.Helper()
	res, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{})
	if err != nil {
		t.Fatalf("serial oracle: %v", err)
	}
	return res.Value
}

// TestChaosEngines drives all seven traced engines through the four core
// fault scenarios with pinned seeds. Each cell must land in the contract
// (completed-and-clean or known-abort-and-truncation-clean), and across
// the table the panic and overflow scenarios must actually have fired —
// a fault plane that never injects proves nothing.
func TestChaosEngines(t *testing.T) {
	p := nqueens.NewArray(6)
	invariantOracleValue = chaosOracle(t, p)
	base := runtime.NumGoroutine()

	// triggerSeeds pins, per engine, a seed at which the low-rate scenarios
	// are known to fire mid-run (found by exhaustive scan, deterministic on
	// Sim). The generic seeds exercise the complementary clean path.
	triggerSeeds := map[string]map[string]int64{
		"panic": {
			"cilk": 7, "cilk-synched": 7, "cutoff-library": 7,
			"adaptivetc": 7, "helpfirst": 7, "slaw": 7,
			"cutoff-programmer": 73,
		},
		"overflow": {
			"cilk": 11, "cilk-synched": 11, "helpfirst": 11, "slaw": 11,
			"cutoff-programmer": 56, "adaptivetc": 56,
			"cutoff-library": 68,
		},
	}

	scenarios := []string{"steal-burst", "stall", "panic", "overflow"}
	aborts := map[string]int{}
	completions := map[string]int{}
	for _, eng := range tracedEngines {
		for si, scen := range scenarios {
			seeds := []int64{
				20100424 + int64(si*1009),
				20100424 + int64(si*1009+101),
				20100424 + int64(si*1009+202),
			}
			if s, ok := triggerSeeds[scen][eng.name]; ok {
				seeds = append(seeds, s)
			}
			for _, seed := range seeds {
				spec, err := faults.Scenario(scen, seed)
				if err != nil {
					t.Fatalf("scenario %s: %v", scen, err)
				}
				out, runErr := runChaos(eng.mk(), p, spec, 4, seed)
				tuple := fmt.Sprintf("sim/w4/%s/nqueens-array=6/%s/%d", eng.name, scen, seed)
				switch {
				case runErr == nil:
					if out.Value != invariantOracleValue {
						t.Fatalf("%s: wrong value %d, want %d", tuple, out.Value, invariantOracleValue)
					}
					completions[scen]++
				case chaosAbortOK(runErr):
					aborts[scen]++
				default:
					t.Fatalf("%s: outside the chaos contract: %v", tuple, runErr)
				}
			}
		}
	}

	// The injection must have bitten: every engine's pinned trigger seed
	// aborts its panic and overflow runs, while steal-burst and stall
	// complete every run (they only perturb the schedule, never break it).
	for _, scen := range []string{"panic", "overflow"} {
		if aborts[scen] < len(tracedEngines) {
			t.Errorf("%s scenario aborted %d runs, want >= %d (one per pinned trigger seed); injection or pin has rotted",
				scen, aborts[scen], len(tracedEngines))
		}
	}
	for _, scen := range []string{"steal-burst", "stall"} {
		if aborts[scen] != 0 {
			t.Errorf("%s scenario aborted %d runs; schedule perturbation must not break runs", scen, aborts[scen])
		}
		if completions[scen] != 3*len(tracedEngines) {
			t.Errorf("%s: %d/%d runs completed", scen, completions[scen], 3*len(tracedEngines))
		}
	}

	waitForGoroutines(t, base)
}

// TestChaosSeedReplay pins the seed-replay contract on the hardest path:
// the SYNCHED engine (per-node workspace clones, the cross-job panic
// surface) aborted mid-run by an injected worker panic. Two runs of the
// pinned seed must produce byte-identical outcomes — same value, same
// error text, same per-worker event streams, same deque FSM transitions —
// and the truncated trace must still satisfy every conservation law.
func TestChaosSeedReplay(t *testing.T) {
	p := nqueens.NewArray(6)
	invariantOracleValue = chaosOracle(t, p)

	// Seed pinned to a case where the panic scenario fires mid-run for
	// cilk-synched; the assertions below fail loudly if a scheduler change
	// makes it complete instead, so the pin cannot rot silently.
	const seed = 7
	spec, err := faults.Scenario("panic", seed)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*chaosOutcome, error) {
		return runChaos(adaptivetc.NewCilkSynched(), p, spec, 4, seed)
	}
	o1, err1 := run()
	o2, err2 := run()
	if !errors.Is(err1, wsrt.ErrJobPanicked) {
		t.Fatalf("pinned seed %d no longer triggers the injected panic (err=%v); re-pin the seed", seed, err1)
	}
	if (err2 == nil) != (err1 == nil) || (err2 != nil && err2.Error() != err1.Error()) {
		t.Fatalf("replay diverged on error: run1=%v run2=%v", err1, err2)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("replay diverged: two runs of seed %d produced different schedules (%d vs %d worker streams)",
			seed, len(o1.Workers), len(o2.Workers))
	}
}

// TestChaosSeedReplayCompleted is the complementary pin: a steal-burst
// case that completes despite forced steal failures must also replay
// byte-identically and produce the oracle value both times.
func TestChaosSeedReplayCompleted(t *testing.T) {
	p := nqueens.NewArray(6)
	invariantOracleValue = chaosOracle(t, p)

	const seed = 7
	spec, err := faults.Scenario("steal-burst", seed)
	if err != nil {
		t.Fatal(err)
	}
	o1, err1 := runChaos(adaptivetc.NewAdaptiveTC(), p, spec, 4, seed)
	o2, err2 := runChaos(adaptivetc.NewAdaptiveTC(), p, spec, 4, seed)
	if err1 != nil || err2 != nil {
		t.Fatalf("steal-burst must complete: run1=%v run2=%v", err1, err2)
	}
	if o1.Value != invariantOracleValue {
		t.Fatalf("wrong value %d, want %d", o1.Value, invariantOracleValue)
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatalf("replay diverged for completed case seed %d", seed)
	}
}

// TestChaosPoolCrossJobPanic is the cross-job regression the fault plane
// exists to catch: a SYNCHED job killed mid-run by an injected worker
// panic must fail alone — its shard heals, re-enters the allocator, and a
// different program on the same workers completes with an invariant-clean
// trace. Before the stop-flag fix in Runtime.fail this wedged the
// co-workers of the panicking worker forever.
func TestChaosPoolCrossJobPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers:           2,
		MaxConcurrentJobs: 1,
		Options:           sched.Options{Seed: 1},
	})
	defer pool.Close()

	const seed = 20100424
	rec1 := trace.NewRecorder()
	defer rec1.Release()
	h1, err := pool.Submit(wsrt.JobSpec{
		Prog:   nqueens.NewArray(6),
		Engine: adaptivetc.NewCilkSynched().(wsrt.PoolEngine),
		Tracer: rec1,
		Faults: faults.New(faults.Spec{Seed: seed, Panic: 1}),
	})
	if err != nil {
		t.Fatalf("submit faulted job: %v", err)
	}
	_, runErr := h1.Result()
	if !errors.Is(runErr, wsrt.ErrJobPanicked) {
		t.Fatalf("faulted SYNCHED job: got %v, want ErrJobPanicked", runErr)
	}
	if cerr := rec1.CheckTruncated(); cerr != nil {
		t.Fatalf("panicked job left an invariant-violating trace: %v", cerr)
	}
	if got := pool.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}

	// Same shard, different program, no faults: must complete clean.
	kn := knight.New(4)
	want := chaosOracle(t, kn)
	rec2 := trace.NewRecorder()
	defer rec2.Release()
	h2, err := pool.Submit(wsrt.JobSpec{
		Prog:   kn,
		Engine: adaptivetc.NewCilkSynched().(wsrt.PoolEngine),
		Tracer: rec2,
	})
	if err != nil {
		t.Fatalf("submit follow-up job: %v", err)
	}
	res, runErr := h2.Result()
	if runErr != nil {
		t.Fatalf("follow-up job on healed shard failed: %v", runErr)
	}
	if res.Value != want {
		t.Fatalf("follow-up value %d, want %d", res.Value, want)
	}
	if cerr := rec2.Check(res.Value, want); cerr != nil {
		t.Fatalf("follow-up trace on healed shard: %v", cerr)
	}
	if !reflect.DeepEqual(h1.Shard(), h2.Shard()) {
		t.Fatalf("follow-up ran on shard %v, want the healed shard %v", h2.Shard(), h1.Shard())
	}

	pool.Close()
	waitForGoroutines(t, base)
}

// TestChaosNewFamilies extends the chaos table to the shared-state
// families: the dataflow DAG (dependency counters in per-run state) and
// branch-and-bound (the shared incumbent bound) under steal-burst, panic
// and mixed fault scenarios. The same contract applies — completed runs
// must produce the schedule-independent family value with a clean trace,
// aborted runs must surface a known class with a truncation-clean trace —
// and it is worth testing separately because an abort here tears down
// workers holding un-reverted claims and un-published bounds; the trace
// laws prove the wreckage is still consistent.
func TestChaosNewFamilies(t *testing.T) {
	base := runtime.NumGoroutine()
	families := []struct {
		name string
		p    adaptivetc.Program
		// panicSeeds pins, per engine, a seed at which the 0.002-rate
		// panic scenario fires mid-run (found by scan, deterministic on
		// Sim).
		panicSeeds map[string]int64
	}{
		{
			name: "dag-stencil-6x6",
			p:    dagflow.NewStencil(6, 6),
			panicSeeds: map[string]int64{
				"cilk": 7, "cilk-synched": 11, "cutoff-programmer": 135,
				"cutoff-library": 7, "adaptivetc": 7, "helpfirst": 11, "slaw": 11,
			},
		},
		{
			name: "bnb-knapsack-12",
			p:    bnb.NewKnapsack(12, 0, 20100424),
			panicSeeds: map[string]int64{
				"cilk": 1, "cilk-synched": 1, "cutoff-programmer": 73,
				"cutoff-library": 1, "adaptivetc": 1, "helpfirst": 1, "slaw": 1,
			},
		},
	}
	scenarios := []string{"steal-burst", "panic", "mixed"}
	for _, fam := range families {
		invariantOracleValue = chaosOracle(t, fam.p)
		panicAborts := 0
		for _, eng := range tracedEngines {
			for si, scen := range scenarios {
				seeds := []int64{20100424 + int64(si*1009), 20100424 + int64(si*1009+101)}
				if scen == "panic" {
					seeds = append(seeds, fam.panicSeeds[eng.name])
				}
				for _, seed := range seeds {
					spec, err := faults.Scenario(scen, seed)
					if err != nil {
						t.Fatalf("scenario %s: %v", scen, err)
					}
					out, runErr := runChaos(eng.mk(), fam.p, spec, 4, seed)
					tuple := fmt.Sprintf("sim/w4/%s/%s/%s/%d", eng.name, fam.name, scen, seed)
					switch {
					case runErr == nil:
						if out.Value != invariantOracleValue {
							t.Fatalf("%s: wrong value %d, want %d", tuple, out.Value, invariantOracleValue)
						}
						if scen == "steal-burst" {
							continue
						}
					case chaosAbortOK(runErr):
						if scen == "steal-burst" {
							t.Fatalf("%s: steal-burst only perturbs the schedule, must not abort: %v", tuple, runErr)
						}
						if scen == "panic" {
							panicAborts++
						}
					default:
						t.Fatalf("%s: outside the chaos contract: %v", tuple, runErr)
					}
				}
			}
		}
		if panicAborts < len(tracedEngines) {
			t.Errorf("%s: panic scenario aborted %d runs, want >= %d (one per pinned trigger seed); injection or pin has rotted",
				fam.name, panicAborts, len(tracedEngines))
		}
	}
	waitForGoroutines(t, base)
}

// TestChaosFirstSolution runs the first-solution family under the same
// fault scenarios with its own verdict: a completed run has no oracle value
// — the schedule picks the winner — so it must instead carry a *valid
// witness* and a truncation-clean trace (the winner cancels siblings
// mid-tree even on a fault-free run). Aborts keep the usual contract.
func TestChaosFirstSolution(t *testing.T) {
	base := runtime.NumGoroutine()
	p := firstsol.NewSAT(12, 0, 20100424)
	panicSeeds := map[string]int64{
		"cilk": 11, "cilk-synched": 11, "cutoff-programmer": 73,
		"cutoff-library": 11, "adaptivetc": 2, "helpfirst": 11, "slaw": 11,
	}
	run := func(e adaptivetc.Engine, spec faults.Spec, seed int64) (int64, error) {
		rec := trace.NewRecorder()
		defer rec.Release()
		res, runErr := func() (res sched.Result, err error) {
			defer func() {
				if r := recover(); r != nil {
					if pv, ok := r.(faults.PanicValue); ok {
						err = errors.Join(wsrt.ErrJobPanicked, errors.New(pv.String()))
						return
					}
					panic(r)
				}
			}()
			return e.Run(p, adaptivetc.Options{
				Workers: 4, Seed: seed, Tracer: rec,
				Faults: faults.New(spec), FirstSolution: true,
			})
		}()
		if runErr != nil && !chaosAbortOK(runErr) {
			return res.Value, runErr
		}
		if cerr := rec.CheckTruncated(); cerr != nil {
			return res.Value, cerr
		}
		return res.Value, runErr
	}
	panicAborts := 0
	for _, eng := range tracedEngines {
		for si, scen := range []string{"steal-burst", "panic", "mixed"} {
			seeds := []int64{20100424 + int64(si*1009), 20100424 + int64(si*1009+101)}
			if scen == "panic" {
				seeds = append(seeds, panicSeeds[eng.name])
			}
			for _, seed := range seeds {
				spec, err := faults.Scenario(scen, seed)
				if err != nil {
					t.Fatalf("scenario %s: %v", scen, err)
				}
				v, runErr := run(eng.mk(), spec, seed)
				tuple := fmt.Sprintf("sim/w4/%s/first-sat/%s/%d", eng.name, scen, seed)
				switch {
				case runErr == nil:
					if !p.Verify(v) {
						t.Fatalf("%s: completed with invalid witness %d", tuple, v)
					}
				case chaosAbortOK(runErr):
					if scen == "steal-burst" {
						t.Fatalf("%s: steal-burst must not abort: %v", tuple, runErr)
					}
					if scen == "panic" {
						panicAborts++
					}
				default:
					t.Fatalf("%s: outside the chaos contract: %v", tuple, runErr)
				}
			}
		}
	}
	if panicAborts < len(tracedEngines) {
		t.Errorf("panic scenario aborted %d first-solution runs, want >= %d; injection or pin has rotted",
			panicAborts, len(tracedEngines))
	}
	waitForGoroutines(t, base)
}

// waitForGoroutines asserts the goroutine count settles back to within a
// small slack of base — chaos must not leak workers past pool shutdown.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	var n int
	for i := 0; i < 100; i++ {
		n = runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d now vs %d at start", n, base)
}
