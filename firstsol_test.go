package adaptivetc_test

import (
	"testing"

	"adaptivetc"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/firstsol"
	"adaptivetc/problems/registry"
)

// The first-solution differential rows. Unlike the value-equality rows of
// difftest_test.go, a first-solution run's value depends on which solution
// the schedule reached first — so the rows check a *validity predicate*
// (the witness decodes to a real solution) instead of equality with the
// serial oracle, plus the usual identically-seeded Sim rerun determinism
// (same winner, same witness, same makespan).

// firstSolutionCases are the first-solution registry families at
// differential sizes.
var firstSolutionCases = []struct {
	name   string
	params registry.Params
}{
	{"first-nqueens", registry.Params{N: 6}},
	{"first-sat", registry.Params{N: 10}},
}

// TestDifferentialFirstSolution runs every first-solution family through
// all seven pool-capable engines and the serial oracle with
// Options.FirstSolution set: each run must finish cleanly with a valid
// witness, and seeded Sim reruns must be deterministic.
func TestDifferentialFirstSolution(t *testing.T) {
	for _, tc := range firstSolutionCases {
		if !registry.FirstSolution(tc.name) {
			t.Fatalf("%s is not registered as a first-solution family", tc.name)
		}
		p, err := registry.Build(tc.name, tc.params)
		if err != nil {
			t.Fatalf("build %s: %v", tc.name, err)
		}
		check := func(engine string, v int64) {
			t.Helper()
			ok, checkable := registry.VerifyWitness(tc.name, tc.params, v)
			if !checkable {
				t.Errorf("%s/%s: witness %d is not checkable (zero value from a solvable instance?)", engine, tc.name, v)
				return
			}
			if !ok {
				t.Errorf("%s/%s: invalid witness %d", engine, tc.name, v)
			}
		}
		serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{FirstSolution: true})
		if err != nil {
			t.Fatalf("serial/%s: %v", tc.name, err)
		}
		check("serial", serial.Value)
		for _, mk := range diffEngines() {
			eng := mk()
			opt := adaptivetc.Options{Workers: 3, Seed: 7, FirstSolution: true}
			a, err := eng.Run(p, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", eng.Name(), tc.name, err)
			}
			check(eng.Name(), a.Value)
			b, err := mk().Run(p, opt)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", eng.Name(), tc.name, err)
			}
			if a.Value != b.Value || a.Makespan != b.Makespan {
				t.Errorf("%s/%s: identically-seeded Sim reruns diverged: value %d/%d, makespan %d/%d",
					eng.Name(), tc.name, a.Value, b.Value, a.Makespan, b.Makespan)
			}
		}
	}
}

// TestDifferentialFirstSolutionPool pushes the first-solution families
// through a resident sharded pool with JobSpec.FirstSolution — the serving
// path — and checks witness validity per job.
func TestDifferentialFirstSolutionPool(t *testing.T) {
	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers: 4, MaxConcurrentJobs: 2, ShardPolicy: wsrt.ShardAdaptive,
		QueueCapacity: 16, Options: sched.Options{GrowableDeque: true},
	})
	defer pool.Close()
	for _, tc := range firstSolutionCases {
		p, err := registry.Build(tc.name, tc.params)
		if err != nil {
			t.Fatalf("build %s: %v", tc.name, err)
		}
		for _, mk := range diffEngines() {
			eng := mk()
			h, err := pool.Submit(wsrt.JobSpec{
				Prog:          p,
				Engine:        eng.(wsrt.PoolEngine),
				FirstSolution: true,
			})
			if err != nil {
				t.Fatalf("submit %s/%s: %v", eng.Name(), tc.name, err)
			}
			res, err := h.Result()
			if err != nil {
				t.Fatalf("pool %s/%s: %v", eng.Name(), tc.name, err)
			}
			if ok, checkable := registry.VerifyWitness(tc.name, tc.params, res.Value); !checkable || !ok {
				t.Errorf("pool %s/%s: invalid witness %d (checkable=%v)", eng.Name(), tc.name, res.Value, checkable)
			}
		}
	}
}

// TestFirstSolutionNoSolution: a search space with no solution (3-queens)
// must complete normally with Value 0 under FirstSolution — the mode only
// changes what happens when a solution exists.
func TestFirstSolutionNoSolution(t *testing.T) {
	p := firstsol.NewQueens(3)
	serial, err := adaptivetc.NewSerial().Run(p, adaptivetc.Options{FirstSolution: true})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.Value != 0 {
		t.Fatalf("serial: 3-queens has no solution, got witness %d", serial.Value)
	}
	for _, mk := range diffEngines() {
		eng := mk()
		res, err := eng.Run(p, adaptivetc.Options{Workers: 3, Seed: 7, FirstSolution: true})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if res.Value != 0 {
			t.Errorf("%s: 3-queens has no solution, got witness %d", eng.Name(), res.Value)
		}
	}
}

// TestFirstSolutionWinnerCancelsSiblings is the trace-level contract of the
// mode: across all workers of a traced run exactly one OpComplete is
// recorded (the winner's claim, carrying the run's witness), and the
// remaining workers' logs pass the truncation laws — the losers were
// cancelled mid-tree, which must look like a clean abort, not a corrupted
// run.
func TestFirstSolutionWinnerCancelsSiblings(t *testing.T) {
	for _, tc := range firstSolutionCases {
		p, err := registry.Build(tc.name, tc.params)
		if err != nil {
			t.Fatalf("build %s: %v", tc.name, err)
		}
		for _, eng := range tracedEngines {
			for seed := int64(1); seed <= 3; seed++ {
				rec := trace.NewRecorder()
				res, err := eng.mk().Run(p, adaptivetc.Options{
					Workers: 4, Seed: seed, FirstSolution: true, Tracer: rec,
				})
				if err != nil {
					t.Fatalf("%s/%s seed=%d: %v", eng.name, tc.name, seed, err)
				}
				completions := 0
				for i := 0; i < rec.Workers(); i++ {
					for _, ev := range rec.WorkerLog(i).Events() {
						if ev.Op == trace.OpComplete {
							completions++
							if ev.A != res.Value {
								t.Errorf("%s/%s seed=%d: OpComplete carries %d, result says %d",
									eng.name, tc.name, seed, ev.A, res.Value)
							}
						}
					}
				}
				if completions != 1 {
					t.Errorf("%s/%s seed=%d: %d root completions recorded, want exactly 1 (the winner's claim)",
						eng.name, tc.name, seed, completions)
				}
				if verr := rec.CheckTruncated(); verr != nil {
					t.Errorf("%s/%s seed=%d: losers' truncated logs violate invariants:\n%v",
						eng.name, tc.name, seed, verr)
				}
				rec.Release()
			}
		}
	}
}

// TestFirstSolutionRealPlatform repeats the first-solution rows on real
// goroutines — run under -race in CI, this is the test that proves the
// claim/cancel protocol (CAS on the solved flag, stop-plane signal, loser
// unwinding) is data-race-free off the deterministic simulator.
func TestFirstSolutionRealPlatform(t *testing.T) {
	for _, tc := range firstSolutionCases {
		p, err := registry.Build(tc.name, tc.params)
		if err != nil {
			t.Fatalf("build %s: %v", tc.name, err)
		}
		for _, mk := range diffEngines() {
			for seed := int64(1); seed <= 2; seed++ {
				eng := mk()
				res, err := eng.Run(p, adaptivetc.Options{
					Workers: 4, Seed: seed, FirstSolution: true,
					Platform: adaptivetc.NewRealPlatform(seed),
				})
				if err != nil {
					t.Fatalf("%s/%s seed=%d: %v", eng.Name(), tc.name, seed, err)
				}
				if ok, checkable := registry.VerifyWitness(tc.name, tc.params, res.Value); !checkable || !ok {
					t.Errorf("%s/%s seed=%d: invalid witness %d (checkable=%v)",
						eng.Name(), tc.name, seed, res.Value, checkable)
				}
			}
		}
	}
}
