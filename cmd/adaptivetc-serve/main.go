// Command adaptivetc-serve runs the resident scheduler service: one
// long-lived work-stealing worker pool serving a stream of jobs over an
// HTTP JSON API, with multi-tenant QoS admission in front of it.
//
// Usage:
//
//	adaptivetc-serve -addr :8080 -workers 4 -queue 256
//	adaptivetc-serve -addr :8080 -workers 4 -max-concurrent-jobs 2   # 2 jobs at once on disjoint worker shards
//	adaptivetc-serve -addr :8080 -check        # audit scheduler invariants per job
//	adaptivetc-serve -tenant-rate 50 -tenant-quota 32                # per-tenant limits
//	adaptivetc-serve -shard-policy slo -slo-target-ms 25             # p99-driven shard sizing
//	adaptivetc-serve -store-dir /var/lib/atc   # persistent, replayable job store
//	adaptivetc-serve -store-dir /var/lib/atc -replay                 # list the journal and exit
//
// With -store-dir, every submission, start, result and DSL program
// registration is journaled (CRC-framed, group-commit fsynced); a restart
// on the same directory serves completed results again, re-queues jobs
// that never started, marks mid-run jobs aborted-by-restart, and
// restores the program cache.
//
// API:
//
//	POST   /jobs       {"program":"nqueens-array","n":9,"engine":"adaptivetc",
//	                    "timeout_ms":5000,"tenant":"frontend","priority":"interactive"}
//	                   (X-Tenant header overrides the body's tenant)
//	GET    /jobs/{id}  job status; value, stats and latency once terminal
//	DELETE /jobs/{id}  cooperative cancellation
//	POST   /programs   {"name":"mine","source":"param n = 8 ..."} — compile
//	                   and cache a DSL program; returns its content hash,
//	                   runnable via {"program_hash": ...} on POST /jobs
//	GET    /programs   cached DSL programs (also /programs/{hash}, DELETE)
//	GET    /metrics    throughput, queue depth, latency histogram, per-tenant/
//	                   per-priority/per-engine breakdowns
//	GET    /catalog    available programs and engines
//	GET    /healthz    liveness
//	GET    /readyz     readiness; 503 once draining
//
// A full admission queue, an exhausted tenant quota, or a drained token
// bucket answers 429 with a Retry-After — the backpressure contract
// adaptivetc-loadgen exercises. On SIGTERM/SIGINT the server drains: it
// stops accepting jobs (readyz flips), finishes the backlog within
// -drain-timeout, then exits.
//
// Cluster mode: -peers joins this node to a group of serve processes that
// gossip load, forward queued jobs hot→cold, and let idle nodes steal
// from a peer's backlog (see internal/cluster):
//
//	adaptivetc-serve -addr :8331 -node-id http://127.0.0.1:8331 \
//	    -peers http://127.0.0.1:8332
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptivetc/internal/cluster"
	"adaptivetc/internal/jobstore"
	"adaptivetc/internal/progstore"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/serve"
	"adaptivetc/internal/wsrt"
)

// replayStore lists every valid record in dir, one line each — the
// offline view of what a restart would recover.
func replayStore(dir string) error {
	n := 0
	err := jobstore.Replay(dir, func(r *jobstore.Record) {
		n++
		switch r.T {
		case jobstore.TProgram:
			fmt.Printf("%6d  program  %s  name=%q  %d bytes\n", n, r.Hash, r.Name, len(r.Source))
		case jobstore.TProgDel:
			fmt.Printf("%6d  progdel  %s\n", n, r.Hash)
		case jobstore.TSubmit:
			fmt.Printf("%6d  submit   %-8s %s\n", n, r.ID, string(r.Req))
		case jobstore.TStart:
			fmt.Printf("%6d  start    %-8s\n", n, r.ID)
		case jobstore.TDone:
			fmt.Printf("%6d  done     %-8s state=%s value=%d makespan_ns=%d err=%q\n",
				n, r.ID, r.State, r.Value, r.MakespanNS, r.Err)
		default:
			fmt.Printf("%6d  %s\n", n, r.T)
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("adaptivetc-serve: %d records in %s\n", n, dir)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "resident pool worker count")
	queue := flag.Int("queue", 256, "admission queue capacity")
	maxJobs := flag.Int("max-concurrent-jobs", 1, "jobs run concurrently, each on its own worker shard (clamped to -workers)")
	shardPolicy := flag.String("shard-policy", "adaptive", "shard sizing policy: static (equal-width), adaptive (grow when idle, split under load), or slo (adaptive, but collapse to the widest shard while interactive p99 exceeds -slo-target-ms)")
	sloTarget := flag.Float64("slo-target-ms", 50, "interactive-class p99 target for -shard-policy slo")
	check := flag.Bool("check", false, "verify scheduler invariants on every job's trace")
	seed := flag.Int64("seed", 1, "victim-selection seed")
	growable := flag.Bool("growable-deque", true, "use growable deques (fixed deques can overflow on deep jobs)")
	relaxed := flag.Bool("relaxed-deque", false, "use the lock-reduced deque variant (implies growable; invariant checks run in multiplicity-tolerant mode)")
	stealPolicy := flag.String("steal-policy", "random",
		fmt.Sprintf("default steal strategy for jobs that do not set one: %v", wsrt.StealPolicyNames()))
	tenantQuota := flag.Int("tenant-quota", 0, "default per-tenant in-flight job cap (0 = unlimited)")
	tenantRate := flag.Float64("tenant-rate", 0, "default per-tenant submission rate limit, jobs/s (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "default per-tenant rate-limit burst (0 = derived from -tenant-rate)")
	retainJobs := flag.Int("retain-jobs", 0, "terminal job records kept for GET /jobs/{id} (0 = default 1024)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGTERM/SIGINT")
	peers := flag.String("peers", "", "comma-separated peer base URLs; non-empty joins the cluster tier")
	nodeID := flag.String("node-id", "", "this node's advertised base URL (cluster mode; defaults from -addr)")
	gossipInterval := flag.Duration("gossip-interval", 100*time.Millisecond, "cluster load-exchange interval")
	forwardThreshold := flag.Int("forward-threshold", 4, "minimum load gap before forwarding queued jobs to a colder peer")
	forwardBatch := flag.Int("forward-batch", 4, "max jobs moved per rebalance or steal")
	storeDir := flag.String("store-dir", "", "persistent job-store directory; restarts on the same directory recover results, re-queue unstarted jobs, and restore the DSL program cache")
	replay := flag.Bool("replay", false, "list every record in -store-dir and exit (no server)")
	maxPrograms := flag.Int("max-programs", 0, "DSL compile cache entry cap (0 = default 256)")
	flag.Parse()

	if !wsrt.ValidStealPolicy(*stealPolicy) {
		fmt.Fprintf(os.Stderr, "adaptivetc-serve: unknown -steal-policy %q (have %v)\n",
			*stealPolicy, wsrt.StealPolicyNames())
		os.Exit(2)
	}

	if *replay {
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "adaptivetc-serve: -replay requires -store-dir")
			os.Exit(2)
		}
		if err := replayStore(*storeDir); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-serve: replay: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var journal *jobstore.Store
	var recovered *jobstore.Recovery
	if *storeDir != "" {
		var err error
		journal, recovered, err = jobstore.Open(*storeDir, jobstore.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-serve: open job store: %v\n", err)
			os.Exit(1)
		}
		defer journal.Close()
		fmt.Printf("adaptivetc-serve: job store %s: %d records (%d jobs, %d programs, %d corrupt frames%s)\n",
			*storeDir, recovered.Records, len(recovered.Jobs), len(recovered.Programs), recovered.Corrupt,
			map[bool]string{true: ", torn tail repaired", false: ""}[recovered.TruncatedTail])
	}

	svc := serve.New(serve.Config{
		Journal:      journal,
		Recovered:    recovered,
		ProgramCache: progstore.Config{MaxPrograms: *maxPrograms},
		Workers:           *workers,
		QueueCapacity:     *queue,
		MaxConcurrentJobs: *maxJobs,
		ShardPolicy:       *shardPolicy,
		SLOTargetMS:       *sloTarget,
		Check:             *check,
		RetainJobs:        *retainJobs,
		TenantDefaults: serve.TenantLimits{
			MaxInFlight: *tenantQuota,
			RatePerSec:  *tenantRate,
			Burst:       *tenantBurst,
		},
		Options: sched.Options{
			Seed:          *seed,
			GrowableDeque: *growable,
			RelaxedDeque:  *relaxed,
			StealPolicy:   *stealPolicy,
		},
	})

	mux := serve.NewMux(svc)
	var node *cluster.Node
	if *peers != "" {
		self := *nodeID
		if self == "" {
			self = "http://127.0.0.1" + *addr
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimSuffix(p, "/"))
			}
		}
		node = cluster.NewNode(cluster.Config{
			Self:             strings.TrimSuffix(self, "/"),
			Peers:            peerList,
			GossipInterval:   *gossipInterval,
			ForwardThreshold: *forwardThreshold,
			Batch:            *forwardBatch,
		}, svc, nil)
		cluster.Mount(mux, node)
		node.Start()
	}

	server := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()

	fmt.Printf("adaptivetc-serve: listening on %s (workers=%d queue=%d max-concurrent-jobs=%d shard-policy=%s steal-policy=%s relaxed-deque=%v check=%v tenant-quota=%d tenant-rate=%.1f)\n",
		*addr, *workers, *queue, *maxJobs, *shardPolicy, *stealPolicy, *relaxed, *check, *tenantQuota, *tenantRate)
	if node != nil {
		fmt.Printf("adaptivetc-serve: cluster node %s with %d peer(s), gossip every %v, forward-threshold %d\n",
			node.Snapshot().Self, len(strings.Split(*peers, ",")), *gossipInterval, *forwardThreshold)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("adaptivetc-serve: %v, draining (up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-serve: drain incomplete: %v\n", err)
		}
		cancel()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "adaptivetc-serve: %v\n", err)
			if node != nil {
				node.Stop()
			}
			svc.Close()
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = server.Shutdown(ctx)
	if node != nil {
		node.Stop()
	}
	svc.Close()

	m := svc.Snapshot()
	fmt.Printf("adaptivetc-serve: served %d jobs (%d completed, %d cancelled, %d failed, %d rejected, %d rate-limited, %d over-quota)\n",
		m.Submitted, m.Completed, m.Cancelled, m.Failed, m.Rejected, m.RateLimited, m.QuotaRejected)
	if node != nil {
		fmt.Printf("adaptivetc-serve: cluster: forwarded_out=%d forwarded_in=%d forward_rejected=%d\n",
			m.ForwardedOut, m.ForwardedIn, m.ForwardRejected)
	}
	if m.InvariantChecked > 0 {
		fmt.Printf("adaptivetc-serve: invariant checks: %d run, %d violations\n",
			m.InvariantChecked, m.InvariantViolations)
		if m.InvariantViolations > 0 {
			os.Exit(1)
		}
	}
}
