// Command adaptivetc-serve runs the resident scheduler service: one
// long-lived work-stealing worker pool serving a stream of jobs over an
// HTTP JSON API.
//
// Usage:
//
//	adaptivetc-serve -addr :8080 -workers 4 -queue 256
//	adaptivetc-serve -addr :8080 -workers 4 -max-concurrent-jobs 2   # 2 jobs at once on disjoint worker shards
//	adaptivetc-serve -addr :8080 -check        # audit scheduler invariants per job
//
// API:
//
//	POST   /jobs       {"program":"nqueens-array","n":9,"engine":"adaptivetc","timeout_ms":5000}
//	GET    /jobs/{id}  job status; value, stats and latency once terminal
//	DELETE /jobs/{id}  cooperative cancellation
//	GET    /metrics    throughput, in-flight, queue depth, p50/p99 latency
//	GET    /catalog    available programs and engines
//
// A full admission queue answers 429 with Retry-After — the backpressure
// contract adaptivetc-loadgen exercises.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adaptivetc/internal/sched"
	"adaptivetc/internal/serve"
	"adaptivetc/internal/wsrt"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "resident pool worker count")
	queue := flag.Int("queue", 256, "admission queue capacity")
	maxJobs := flag.Int("max-concurrent-jobs", 1, "jobs run concurrently, each on its own worker shard (clamped to -workers)")
	shardPolicy := flag.String("shard-policy", "adaptive", "shard sizing policy: static (equal-width) or adaptive (grow when idle, split under load)")
	check := flag.Bool("check", false, "verify scheduler invariants on every job's trace")
	seed := flag.Int64("seed", 1, "victim-selection seed")
	growable := flag.Bool("growable-deque", true, "use growable deques (fixed deques can overflow on deep jobs)")
	relaxed := flag.Bool("relaxed-deque", false, "use the lock-reduced deque variant (implies growable; invariant checks run in multiplicity-tolerant mode)")
	stealPolicy := flag.String("steal-policy", "random",
		fmt.Sprintf("default steal strategy for jobs that do not set one: %v", wsrt.StealPolicyNames()))
	flag.Parse()

	if !wsrt.ValidStealPolicy(*stealPolicy) {
		fmt.Fprintf(os.Stderr, "adaptivetc-serve: unknown -steal-policy %q (have %v)\n",
			*stealPolicy, wsrt.StealPolicyNames())
		os.Exit(2)
	}

	svc := serve.New(serve.Config{
		Workers:           *workers,
		QueueCapacity:     *queue,
		MaxConcurrentJobs: *maxJobs,
		ShardPolicy:       *shardPolicy,
		Check:             *check,
		Options: sched.Options{
			Seed:          *seed,
			GrowableDeque: *growable,
			RelaxedDeque:  *relaxed,
			StealPolicy:   *stealPolicy,
		},
	})

	server := &http.Server{Addr: *addr, Handler: serve.NewMux(svc)}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()

	fmt.Printf("adaptivetc-serve: listening on %s (workers=%d queue=%d max-concurrent-jobs=%d shard-policy=%s steal-policy=%s relaxed-deque=%v check=%v)\n",
		*addr, *workers, *queue, *maxJobs, *shardPolicy, *stealPolicy, *relaxed, *check)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("adaptivetc-serve: %v, shutting down\n", sig)
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "adaptivetc-serve: %v\n", err)
			svc.Close()
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = server.Shutdown(ctx)
	svc.Close()

	m := svc.Snapshot()
	fmt.Printf("adaptivetc-serve: served %d jobs (%d completed, %d cancelled, %d failed, %d rejected)\n",
		m.Submitted, m.Completed, m.Cancelled, m.Failed, m.Rejected)
	if m.InvariantChecked > 0 {
		fmt.Printf("adaptivetc-serve: invariant checks: %d run, %d violations\n",
			m.InvariantChecked, m.InvariantViolations)
		if m.InvariantViolations > 0 {
			os.Exit(1)
		}
	}
}
