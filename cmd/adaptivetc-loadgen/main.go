// Command adaptivetc-loadgen drives an adaptivetc-serve instance with
// either a closed-loop or an open-loop workload.
//
// Closed loop (-mode closed, the default): C submitter goroutines each
// submit one job, poll it to completion, and immediately submit the next,
// for a fixed duration. Simple, but the measured latency suffers from
// coordinated omission: a slow server slows the submitters down, so the
// worst periods receive the fewest samples.
//
// Open loop (-mode open): submissions follow an arrival process (-arrival
// poisson|uniform|bursty|diurnal at -rate jobs/s) that does not care how
// the server is doing, and each job's latency is measured from its
// *intended* arrival time — the coordinated-omission-resistant number a
// real client population would experience. -max-outstanding bounds the
// in-flight jobs; arrivals past the bound are counted as dropped rather
// than silently deferred.
//
// Multi-tenant QoS mixes: -tenants "name:priority:weight,..." splits the
// load across tenants and priority classes (weights are relative arrival
// shares); each submission carries its tenant (X-Tenant) and priority, and
// the report breaks latency down per priority class.
//
// Multi-node targets: -addr repeats. Submissions round-robin across the
// targets and the report (and -json file) breaks counts and latency down
// per node — the shape a cluster-tier benchmark needs. -addr-weights
// skews the round-robin (e.g. "4,1" sends 80% of arrivals to the first
// node) to manufacture the hot/cold imbalance forwarding should fix.
//
// DSL programs: -dsl-file path/to/prog.atc POSTs the source to every
// target's /programs at startup and mixes the returned content hash into
// the program rotation as a program_hash submission — the load a
// programs-as-data deployment actually sees.
//
// Usage:
//
//	adaptivetc-loadgen -addr http://localhost:8080 -concurrency 8 -duration 10s
//	adaptivetc-loadgen -mode open -arrival poisson -rate 50 -duration 10s \
//	    -tenants "frontend:interactive:1,analytics:batch:1" -json out.json
//	adaptivetc-loadgen -addr http://127.0.0.1:8331 -addr http://127.0.0.1:8332 \
//	    -addr-weights 4,1 -mode open -rate 40 -duration 10s
//
// The report prints completed/cancelled/failed/rejected/lost counts,
// throughput, overall and per-priority p50/p90/p99 latency, and the
// server's shard configuration from /metrics. -json writes the same
// report as a machine-readable file (see BENCH_qos.json).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

type counters struct {
	completed    atomic.Int64
	cancelled    atomic.Int64
	failed       atomic.Int64
	rejected     atomic.Int64
	httpErrs     atomic.Int64
	lost         atomic.Int64 // poll saw 404: the record was evicted
	pollTimeouts atomic.Int64
	dropped      atomic.Int64 // open loop: arrival past -max-outstanding
}

// addrList is the repeatable -addr flag.
type addrList []string

func (a *addrList) String() string { return strings.Join(*a, ",") }
func (a *addrList) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			*a = append(*a, p)
		}
	}
	return nil
}

// targetRing spreads submissions across the -addr targets in a weighted
// round-robin: a weights vector like 4,1 repeats node 0 four times per
// cycle — the skew knob cluster benchmarks use.
type targetRing struct {
	slots []string
	next  atomic.Int64
}

func newTargetRing(addrs []string, weights string) (*targetRing, error) {
	r := &targetRing{}
	if weights == "" {
		r.slots = addrs
		return r, nil
	}
	parts := strings.Split(weights, ",")
	if len(parts) != len(addrs) {
		return nil, fmt.Errorf("loadgen: %d -addr targets but %d -addr-weights", len(addrs), len(parts))
	}
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("loadgen: bad weight %q", p)
		}
		for k := 0; k < w; k++ {
			r.slots = append(r.slots, addrs[i])
		}
	}
	return r, nil
}

func (r *targetRing) pick() string {
	return r.slots[int(r.next.Add(1)-1)%len(r.slots)]
}

// nodeSet collects the per-target breakdown for multi-addr runs.
type nodeSet struct {
	mu sync.Mutex
	m  map[string]*nodeAgg
}

type nodeAgg struct {
	submitted, completed, cancelled, failed, rejected, errors int64
	lat                                                       []time.Duration
}

func newNodeSet() *nodeSet { return &nodeSet{m: make(map[string]*nodeAgg)} }

func (ns *nodeSet) record(addr, outcome string, d time.Duration) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	a := ns.m[addr]
	if a == nil {
		a = &nodeAgg{}
		ns.m[addr] = a
	}
	a.submitted++
	switch outcome {
	case "done":
		a.completed++
		a.lat = append(a.lat, d)
	case "cancelled":
		a.cancelled++
	case "failed":
		a.failed++
	case "rejected":
		a.rejected++
	default:
		a.errors++
	}
}

// nodeReport is the per-target slice of the -json report.
type nodeReport struct {
	Submitted int64            `json:"submitted"`
	Completed int64            `json:"completed"`
	Cancelled int64            `json:"cancelled"`
	Failed    int64            `json:"failed"`
	Rejected  int64            `json:"rejected"`
	Errors    int64            `json:"errors"`
	Latency   percentileReport `json:"latency"`
}

// tenantSpec is one entry of the -tenants mix.
type tenantSpec struct {
	name     string
	priority string
	weight   int
}

// parseTenants parses "name:priority:weight,..." (weight optional,
// default 1; priority optional, default batch).
func parseTenants(s string) ([]tenantSpec, error) {
	if s == "" {
		return []tenantSpec{{name: "default", priority: "batch", weight: 1}}, nil
	}
	var out []tenantSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		t := tenantSpec{name: fields[0], priority: "batch", weight: 1}
		if t.name == "" {
			return nil, fmt.Errorf("loadgen: empty tenant name in %q", part)
		}
		if len(fields) > 1 && fields[1] != "" {
			t.priority = fields[1]
		}
		if len(fields) > 2 {
			w, err := strconv.Atoi(fields[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("loadgen: bad weight in %q", part)
			}
			t.weight = w
		}
		if len(fields) > 3 {
			return nil, fmt.Errorf("loadgen: too many fields in %q", part)
		}
		out = append(out, t)
	}
	return out, nil
}

// pickTenant draws a tenant from the mix with probability proportional to
// its weight.
func pickTenant(rng *rand.Rand, mix []tenantSpec) tenantSpec {
	total := 0
	for _, t := range mix {
		total += t.weight
	}
	k := rng.Intn(total)
	for _, t := range mix {
		if k < t.weight {
			return t
		}
		k -= t.weight
	}
	return mix[len(mix)-1]
}

// arrivalGen produces the open-loop arrival offsets for one run. The
// non-homogeneous processes (bursty, diurnal) are generated by thinning a
// Poisson stream at the peak rate, so every process with the same seed is
// reproducible.
type arrivalGen struct {
	kind   string
	rate   float64 // mean arrivals per second
	period time.Duration
	rng    *rand.Rand
	t      time.Duration // current virtual offset from the run start
}

// next advances to and returns the next arrival offset.
func (g *arrivalGen) next() time.Duration {
	switch g.kind {
	case "uniform":
		g.t += time.Duration(float64(time.Second) / g.rate)
	case "poisson":
		g.t += time.Duration(g.rng.ExpFloat64() / g.rate * float64(time.Second))
	case "bursty", "diurnal":
		peak := g.peakRate()
		for {
			g.t += time.Duration(g.rng.ExpFloat64() / peak * float64(time.Second))
			if g.rng.Float64() < g.rateAt(g.t)/peak {
				break
			}
		}
	default:
		panic("loadgen: unknown arrival process " + g.kind)
	}
	return g.t
}

func (g *arrivalGen) peakRate() float64 {
	if g.kind == "bursty" {
		return 4 * g.rate
	}
	return 1.8 * g.rate // diurnal peak: rate * (1 + 0.8)
}

// rateAt is the instantaneous rate of the non-homogeneous processes.
// bursty: the whole mean load compressed into the first quarter of each
// period (4x rate, then silence). diurnal: a sinusoid around the mean.
func (g *arrivalGen) rateAt(t time.Duration) float64 {
	period := g.period
	if period <= 0 {
		period = time.Second
	}
	phase := float64(t%period) / float64(period)
	switch g.kind {
	case "bursty":
		if phase < 0.25 {
			return 4 * g.rate
		}
		return 0
	case "diurnal":
		return g.rate * (1 + 0.8*math.Sin(2*math.Pi*phase))
	}
	return g.rate
}

// pctDur returns the nearest-rank percentile of a sorted sample: the
// smallest retained value ≥ p of the distribution. The truncating
// int(p*(n-1)) form this replaces reported ~p96 as p99 on 50 samples.
func pctDur(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// latencySet collects per-priority latency samples.
type latencySet struct {
	mu      sync.Mutex
	overall []time.Duration
	byPrio  map[string][]time.Duration
}

func newLatencySet() *latencySet {
	return &latencySet{byPrio: make(map[string][]time.Duration)}
}

func (l *latencySet) add(prio string, d time.Duration) {
	l.mu.Lock()
	l.overall = append(l.overall, d)
	l.byPrio[prio] = append(l.byPrio[prio], d)
	l.mu.Unlock()
}

// percentileReport is the JSON latency summary for one sample set.
type percentileReport struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

func summarize(samples []time.Duration) percentileReport {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return percentileReport{
		Count: int64(len(sorted)),
		P50MS: ms(pctDur(sorted, 0.50)),
		P90MS: ms(pctDur(sorted, 0.90)),
		P99MS: ms(pctDur(sorted, 0.99)),
	}
}

// report is the full machine-readable run summary (-json).
type report struct {
	Mode            string                      `json:"mode"`
	Arrival         string                      `json:"arrival,omitempty"`
	RatePerSec      float64                     `json:"rate_per_sec,omitempty"`
	Concurrency     int                         `json:"concurrency,omitempty"`
	DurationSeconds float64                     `json:"duration_seconds"`
	Completed       int64                       `json:"completed"`
	Cancelled       int64                       `json:"cancelled"`
	Failed          int64                       `json:"failed"`
	Rejected        int64                       `json:"rejected"`
	Lost            int64                       `json:"lost"`
	PollTimeouts    int64                       `json:"poll_timeouts"`
	HTTPErrors      int64                       `json:"http_errors"`
	Dropped         int64                       `json:"dropped"`
	ThroughputPerS  float64                     `json:"throughput_per_sec"`
	Latency         percentileReport            `json:"latency"`
	ByPriority      map[string]percentileReport `json:"by_priority,omitempty"`
	ByNode          map[string]nodeReport       `json:"by_node,omitempty"`
	Server          json.RawMessage             `json:"server_metrics,omitempty"`
	ServerByNode    map[string]json.RawMessage  `json:"server_metrics_by_node,omitempty"`
}

func main() {
	var addrs addrList
	flag.Var(&addrs, "addr", "serve base URL; repeat (or comma-separate) for multi-node round-robin")
	addrWeights := flag.String("addr-weights", "", "comma-separated round-robin weights, one per -addr (skews the node mix)")
	mode := flag.String("mode", "closed", "load model: closed (submitters) or open (arrival process)")
	concurrency := flag.Int("concurrency", 4, "closed loop: submitter count")
	rate := flag.Float64("rate", 20, "open loop: mean arrival rate, jobs/s")
	arrival := flag.String("arrival", "poisson", "open loop: arrival process (poisson|uniform|bursty|diurnal)")
	period := flag.Duration("arrival-period", time.Second, "open loop: bursty/diurnal modulation period")
	maxOutstanding := flag.Int("max-outstanding", 256, "open loop: in-flight cap; arrivals past it are dropped")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	programs := flag.String("programs", "nqueens-array,fib,knight,dag-stencil,bnb-tsp,first-nqueens", "comma-separated program mix")
	dslFile := flag.String("dsl-file", "", "path to a DSL source file: POSTed to every target's /programs at startup and mixed into the load as a program_hash submission")
	engines := flag.String("engines", "adaptivetc,cilk,slaw", "comma-separated engine mix")
	tenants := flag.String("tenants", "", "tenant mix: name:priority:weight,... (default one batch tenant)")
	n := flag.Int("n", 0, "problem size override (0 = per-family default)")
	timeoutMS := flag.Int64("job-timeout-ms", 30000, "per-job deadline sent with each submission")
	seed := flag.Int64("seed", 1, "rng seed for arrivals and mix choices")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file")
	flag.Parse()

	if len(addrs) == 0 {
		addrs = addrList{"http://localhost:8080"}
	}
	// Accept the same bare host:port that adaptivetc-serve -addr takes.
	for i, a := range addrs {
		if !strings.Contains(a, "://") {
			addrs[i] = "http://" + a
		}
	}
	ring, err := newTargetRing(addrs, *addrWeights)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	progMix := strings.Split(*programs, ",")
	engMix := strings.Split(*engines, ",")
	if *dslFile != "" {
		hash, err := registerDSL(addrs, *dslFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loadgen: registered %s as program %s on %d node(s)\n", *dslFile, hash, len(addrs))
		progMix = append(progMix, "hash:"+hash)
	}
	mix, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}

	var cnt counters
	lat := newLatencySet()
	nodes := newNodeSet()
	start := time.Now()
	switch *mode {
	case "closed":
		runClosed(client, ring, progMix, engMix, mix, *n, *timeoutMS, *concurrency, *duration, *seed, &cnt, lat, nodes)
	case "open":
		runOpen(client, ring, progMix, engMix, mix, *n, *timeoutMS, *rate, *arrival, *period,
			*maxOutstanding, *duration, *seed, &cnt, lat, nodes)
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -mode %q (closed|open)\n", *mode)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	completed := cnt.completed.Load()
	rep := report{
		Mode:            *mode,
		DurationSeconds: elapsed.Seconds(),
		Completed:       completed,
		Cancelled:       cnt.cancelled.Load(),
		Failed:          cnt.failed.Load(),
		Rejected:        cnt.rejected.Load(),
		Lost:            cnt.lost.Load(),
		PollTimeouts:    cnt.pollTimeouts.Load(),
		HTTPErrors:      cnt.httpErrs.Load(),
		Dropped:         cnt.dropped.Load(),
		ThroughputPerS:  float64(completed) / elapsed.Seconds(),
	}
	if *mode == "open" {
		rep.Arrival, rep.RatePerSec = *arrival, *rate
	} else {
		rep.Concurrency = *concurrency
	}
	lat.mu.Lock()
	rep.Latency = summarize(lat.overall)
	rep.ByPriority = make(map[string]percentileReport, len(lat.byPrio))
	for p, samples := range lat.byPrio {
		rep.ByPriority[p] = summarize(samples)
	}
	lat.mu.Unlock()
	nodes.mu.Lock()
	if len(addrs) > 1 {
		rep.ByNode = make(map[string]nodeReport, len(nodes.m))
		for a, agg := range nodes.m {
			rep.ByNode[a] = nodeReport{
				Submitted: agg.submitted, Completed: agg.completed, Cancelled: agg.cancelled,
				Failed: agg.failed, Rejected: agg.rejected, Errors: agg.errors,
				Latency: summarize(agg.lat),
			}
		}
	}
	nodes.mu.Unlock()
	rep.Server = fetchServerMetrics(client, addrs[0])
	if len(addrs) > 1 {
		rep.ServerByNode = make(map[string]json.RawMessage, len(addrs))
		for _, a := range addrs {
			if m := fetchServerMetrics(client, a); m != nil {
				rep.ServerByNode[a] = m
			}
		}
	}

	printReport(addrs[0], rep)
	if *jsonPath != "" {
		blob, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if completed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no job completed")
		os.Exit(1)
	}
}

// runClosed is the closed-loop model: each submitter chains jobs
// back-to-back, so offered load adapts to (and hides) server slowness.
func runClosed(client *http.Client, ring *targetRing, progMix, engMix []string, mix []tenantSpec,
	n int, timeoutMS int64, concurrency int, duration time.Duration, seed int64,
	cnt *counters, lat *latencySet, nodes *nodeSet) {
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; time.Now().Before(deadline); i++ {
				ten := pickTenant(rng, mix)
				req := submitReq{
					program: progMix[(c+i)%len(progMix)],
					engine:  engMix[(c*7+i)%len(engMix)],
					n:       n, timeoutMS: timeoutMS,
					tenant: ten.name, priority: ten.priority,
				}
				addr := ring.pick()
				d, outcome := runOne(client, addr, req, time.Now(), cnt)
				nodes.record(addr, outcome, d)
				if outcome == "done" {
					lat.add(ten.priority, d)
				}
			}
		}(c)
	}
	wg.Wait()
}

// runOpen is the open-loop model: arrivals come from the configured
// process regardless of server state, and each job's latency clock starts
// at its intended arrival time, so server-induced queueing is charged to
// the server rather than silently thinning the sample.
func runOpen(client *http.Client, ring *targetRing, progMix, engMix []string, mix []tenantSpec,
	n int, timeoutMS int64, rate float64, arrival string, period time.Duration,
	maxOutstanding int, duration time.Duration, seed int64,
	cnt *counters, lat *latencySet, nodes *nodeSet) {
	if rate <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: open loop needs -rate > 0")
		os.Exit(2)
	}
	gen := &arrivalGen{kind: arrival, rate: rate, period: period, rng: rand.New(rand.NewSource(seed))}
	rng := rand.New(rand.NewSource(seed + 1))
	outstanding := make(chan struct{}, maxOutstanding)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; ; i++ {
		offset := gen.next()
		if offset > duration {
			break
		}
		intended := start.Add(offset)
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		select {
		case outstanding <- struct{}{}:
		default:
			cnt.dropped.Add(1)
			continue
		}
		ten := pickTenant(rng, mix)
		req := submitReq{
			program: progMix[i%len(progMix)],
			engine:  engMix[(i*7)%len(engMix)],
			n:       n, timeoutMS: timeoutMS,
			tenant: ten.name, priority: ten.priority,
		}
		addr := ring.pick()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-outstanding }()
			d, outcome := runOne(client, addr, req, intended, cnt)
			nodes.record(addr, outcome, d)
			if outcome == "done" {
				lat.add(req.priority, d)
			}
		}()
	}
	wg.Wait()
}

func printReport(addr string, rep report) {
	switch rep.Mode {
	case "open":
		fmt.Printf("loadgen: open loop, %s arrivals at %.1f/s for %.1fs against %s\n",
			rep.Arrival, rep.RatePerSec, rep.DurationSeconds, addr)
	default:
		fmt.Printf("loadgen: closed loop at concurrency %d for %.1fs against %s\n",
			rep.Concurrency, rep.DurationSeconds, addr)
	}
	fmt.Printf("completed=%d cancelled=%d failed=%d rejected=%d lost=%d poll-timeouts=%d http-errors=%d dropped=%d\n",
		rep.Completed, rep.Cancelled, rep.Failed, rep.Rejected, rep.Lost, rep.PollTimeouts, rep.HTTPErrors, rep.Dropped)
	fmt.Printf("throughput=%.1f jobs/s\n", rep.ThroughputPerS)
	if rep.Latency.Count > 0 {
		fmt.Printf("latency p50=%.2fms p90=%.2fms p99=%.2fms (n=%d)\n",
			rep.Latency.P50MS, rep.Latency.P90MS, rep.Latency.P99MS, rep.Latency.Count)
	}
	prios := make([]string, 0, len(rep.ByPriority))
	for p := range rep.ByPriority {
		prios = append(prios, p)
	}
	sort.Strings(prios)
	for _, p := range prios {
		r := rep.ByPriority[p]
		fmt.Printf("  priority=%-11s p50=%.2fms p90=%.2fms p99=%.2fms (n=%d)\n", p, r.P50MS, r.P90MS, r.P99MS, r.Count)
	}
	nodeAddrs := make([]string, 0, len(rep.ByNode))
	for a := range rep.ByNode {
		nodeAddrs = append(nodeAddrs, a)
	}
	sort.Strings(nodeAddrs)
	for _, a := range nodeAddrs {
		r := rep.ByNode[a]
		fmt.Printf("  node=%s submitted=%d completed=%d rejected=%d errors=%d p99=%.2fms\n",
			a, r.Submitted, r.Completed, r.Rejected, r.Errors, r.Latency.P99MS)
	}
	var m struct {
		Workers             int     `json:"workers"`
		MaxConcurrentJobs   int     `json:"max_concurrent_jobs"`
		ShardPolicy         string  `json:"shard_policy"`
		Completed           int64   `json:"completed"`
		ThroughputPerSecond float64 `json:"throughput_per_second"`
		InvariantChecked    int64   `json:"invariant_checked"`
		InvariantViolations int64   `json:"invariant_violations"`
	}
	if rep.Server != nil && json.Unmarshal(rep.Server, &m) == nil {
		fmt.Printf("server: workers=%d max_concurrent_jobs=%d shard_policy=%s completed=%d throughput=%.1f/s invariant_checked=%d violations=%d\n",
			m.Workers, m.MaxConcurrentJobs, m.ShardPolicy, m.Completed, m.ThroughputPerSecond,
			m.InvariantChecked, m.InvariantViolations)
	}
}

// registerDSL posts the DSL source at path to every target's /programs
// and returns the content hash — identical on every node, since the hash
// is computed from the canonicalized source.
func registerDSL(addrs []string, path string) (string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	name := strings.TrimSuffix(path[strings.LastIndex(path, "/")+1:], ".atc")
	body, _ := json.Marshal(map[string]string{"name": name, "source": string(src)})
	client := &http.Client{Timeout: 10 * time.Second}
	hash := ""
	for _, addr := range addrs {
		resp, err := client.Post(addr+"/programs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", fmt.Errorf("register DSL program on %s: %w", addr, err)
		}
		var meta struct {
			Hash  string `json:"hash"`
			Error string `json:"error"`
			Line  int    `json:"line"`
			Col   int    `json:"col"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&meta)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			if meta.Line > 0 {
				return "", fmt.Errorf("%s rejected %s at line %d col %d: %s", addr, path, meta.Line, meta.Col, meta.Error)
			}
			return "", fmt.Errorf("%s rejected %s: HTTP %d %s", addr, path, resp.StatusCode, meta.Error)
		}
		if decErr != nil || meta.Hash == "" {
			return "", fmt.Errorf("%s returned no hash for %s", addr, path)
		}
		if hash == "" {
			hash = meta.Hash
		} else if hash != meta.Hash {
			return "", fmt.Errorf("nodes disagree on the content hash: %s vs %s", hash, meta.Hash)
		}
	}
	return hash, nil
}

// fetchServerMetrics snapshots the server's /metrics for the report, so a
// recorded run carries the configuration it was measured against.
func fetchServerMetrics(client *http.Client, addr string) json.RawMessage {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if json.NewDecoder(resp.Body).Decode(&raw) != nil {
		return nil
	}
	return raw
}

// submitReq is one job submission's parameters.
type submitReq struct {
	program, engine  string
	tenant, priority string
	n                int
	timeoutMS        int64
}

// runOne submits one job and polls it to a terminal state, returning the
// start→terminal latency and the outcome. start is the intended arrival
// time in open-loop mode (submit time in closed loop), so the latency
// includes any delay the generator itself accumulated.
//
// The poll loop treats every non-200 response as terminal: a 404 means
// the server evicted the record (RetainJobs pressure) and the job's fate
// is unknowable — before this check, an evicted job decoded into an empty
// state and the loop spun at the poll interval forever. A poll deadline
// (the job's own timeout plus a grace period) bounds the loop even
// against a server that keeps answering 200 without ever settling.
func runOne(client *http.Client, addr string, req submitReq, start time.Time, cnt *counters) (time.Duration, string) {
	payload := map[string]any{
		"engine": req.engine, "n": req.n,
		"timeout_ms": req.timeoutMS, "tenant": req.tenant, "priority": req.priority,
	}
	// "hash:<sha256>" mix entries (from -dsl-file) run a cached DSL
	// program by content hash; everything else is a registry name.
	if h, ok := strings.CutPrefix(req.program, "hash:"); ok {
		payload["program_hash"] = h
	} else {
		payload["program"] = req.program
	}
	body, _ := json.Marshal(payload)
	httpReq, err := http.NewRequest("POST", addr+"/jobs", bytes.NewReader(body))
	if err != nil {
		cnt.httpErrs.Add(1)
		return 0, "error"
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if req.tenant != "" {
		httpReq.Header.Set("X-Tenant", req.tenant)
	}
	resp, err := client.Do(httpReq)
	if err != nil {
		cnt.httpErrs.Add(1)
		time.Sleep(100 * time.Millisecond)
		return 0, "error"
	}
	var st jobStatus
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		cnt.rejected.Add(1)
		time.Sleep(50 * time.Millisecond) // back off as Retry-After suggests
		return 0, "rejected"
	case resp.StatusCode != http.StatusAccepted || decErr != nil || st.ID == "":
		cnt.httpErrs.Add(1)
		time.Sleep(100 * time.Millisecond)
		return 0, "error"
	}

	pollDeadline := time.Now().Add(time.Duration(req.timeoutMS)*time.Millisecond + 10*time.Second)
	for {
		resp, err := client.Get(addr + "/jobs/" + st.ID)
		if err != nil {
			cnt.httpErrs.Add(1)
			return 0, "error"
		}
		code := resp.StatusCode
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		switch {
		case code == http.StatusNotFound:
			cnt.lost.Add(1)
			return 0, "lost"
		case code != http.StatusOK || decErr != nil:
			cnt.httpErrs.Add(1)
			return 0, "error"
		}
		switch st.State {
		case "done":
			cnt.completed.Add(1)
			return time.Since(start), "done"
		case "cancelled":
			cnt.cancelled.Add(1)
			return time.Since(start), "cancelled"
		case "failed":
			cnt.failed.Add(1)
			return time.Since(start), "failed"
		case "queued", "running", "forwarded":
			// still in flight ("forwarded": executing on a cluster peer,
			// the origin node settles the record when the peer finishes)
		default:
			cnt.httpErrs.Add(1)
			return 0, "error"
		}
		if time.Now().After(pollDeadline) {
			cnt.pollTimeouts.Add(1)
			return 0, "poll-timeout"
		}
		time.Sleep(5 * time.Millisecond)
	}
}
