// Command adaptivetc-loadgen drives an adaptivetc-serve instance with a
// closed-loop workload: C submitter goroutines each submit one job, poll it
// to completion, and immediately submit the next, for a fixed duration.
// Backpressure (HTTP 429) is counted and retried after a short pause, so
// the report separates the server's useful throughput from its admission
// rejections.
//
// Usage:
//
//	adaptivetc-loadgen -addr http://localhost:8080 -concurrency 8 -duration 10s
//	adaptivetc-loadgen -programs nqueens-array,fib,knight -engines adaptivetc,cilk,slaw
//
// The report prints completed/cancelled/failed/rejected counts, throughput,
// the p50/p90/p99 submit→complete latency observed by the clients, and the
// server's shard configuration from /metrics — so sweeping a server over
// -max-concurrent-jobs 1/2/4 yields directly comparable throughput lines
// (see BENCH_shards.json for the recorded sweep).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

type counters struct {
	completed atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	httpErrs  atomic.Int64
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "serve base URL")
	concurrency := flag.Int("concurrency", 4, "closed-loop submitter count")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	programs := flag.String("programs", "nqueens-array,fib,knight", "comma-separated program mix")
	engines := flag.String("engines", "adaptivetc,cilk,slaw", "comma-separated engine mix")
	n := flag.Int("n", 0, "problem size override (0 = per-family default)")
	timeoutMS := flag.Int64("job-timeout-ms", 30000, "per-job deadline sent with each submission")
	flag.Parse()

	// Accept the same bare host:port that adaptivetc-serve -addr takes.
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}
	progMix := strings.Split(*programs, ",")
	engMix := strings.Split(*engines, ",")
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		cnt       counters
		mu        sync.Mutex
		latencies []time.Duration
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				prog := progMix[(c+i)%len(progMix)]
				eng := engMix[(c*7+i)%len(engMix)]
				d, outcome := runOne(client, *addr, prog, eng, *n, *timeoutMS, &cnt)
				if outcome == "done" {
					mu.Lock()
					latencies = append(latencies, d)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	completed := cnt.completed.Load()
	fmt.Printf("loadgen: %v at concurrency %d against %s\n", *duration, *concurrency, *addr)
	fmt.Printf("completed=%d cancelled=%d failed=%d rejected=%d http-errors=%d\n",
		completed, cnt.cancelled.Load(), cnt.failed.Load(), cnt.rejected.Load(), cnt.httpErrs.Load())
	fmt.Printf("throughput=%.1f jobs/s\n", float64(completed)/duration.Seconds())
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration { return latencies[int(p*float64(len(latencies)-1))] }
		fmt.Printf("latency p50=%v p90=%v p99=%v\n", pct(0.50), pct(0.90), pct(0.99))
	}
	reportServer(client, *addr)
	if completed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no job completed")
		os.Exit(1)
	}
}

// reportServer prints the server's shard configuration and audit counters
// from /metrics, so throughput lines from sweeps over -max-concurrent-jobs
// carry the configuration they were measured against.
func reportServer(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var m struct {
		Workers             int     `json:"workers"`
		MaxConcurrentJobs   int     `json:"max_concurrent_jobs"`
		ShardPolicy         string  `json:"shard_policy"`
		Completed           int64   `json:"completed"`
		ThroughputPerSecond float64 `json:"throughput_per_second"`
		InvariantChecked    int64   `json:"invariant_checked"`
		InvariantViolations int64   `json:"invariant_violations"`
	}
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return
	}
	fmt.Printf("server: workers=%d max_concurrent_jobs=%d shard_policy=%s completed=%d throughput=%.1f/s invariant_checked=%d violations=%d\n",
		m.Workers, m.MaxConcurrentJobs, m.ShardPolicy, m.Completed, m.ThroughputPerSecond,
		m.InvariantChecked, m.InvariantViolations)
}

// runOne submits one job and polls it to a terminal state, returning the
// submit→terminal latency and the final state.
func runOne(client *http.Client, addr, prog, eng string, n int, timeoutMS int64, cnt *counters) (time.Duration, string) {
	body, _ := json.Marshal(map[string]any{
		"program": prog, "engine": eng, "n": n, "timeout_ms": timeoutMS,
	})
	start := time.Now()
	resp, err := client.Post(addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		cnt.httpErrs.Add(1)
		time.Sleep(100 * time.Millisecond)
		return 0, "error"
	}
	var st jobStatus
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		cnt.rejected.Add(1)
		time.Sleep(50 * time.Millisecond) // back off as Retry-After suggests
		return 0, "rejected"
	case resp.StatusCode != http.StatusAccepted || decErr != nil || st.ID == "":
		cnt.httpErrs.Add(1)
		time.Sleep(100 * time.Millisecond)
		return 0, "error"
	}

	for {
		resp, err := client.Get(addr + "/jobs/" + st.ID)
		if err != nil {
			cnt.httpErrs.Add(1)
			return 0, "error"
		}
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if decErr != nil {
			cnt.httpErrs.Add(1)
			return 0, "error"
		}
		switch st.State {
		case "done":
			cnt.completed.Add(1)
			return time.Since(start), "done"
		case "cancelled":
			cnt.cancelled.Add(1)
			return time.Since(start), "cancelled"
		case "failed":
			cnt.failed.Add(1)
			return time.Since(start), "failed"
		}
		time.Sleep(5 * time.Millisecond)
	}
}
