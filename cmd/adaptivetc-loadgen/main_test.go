package main

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestPctDurNearestRank pins the percentile fix: nearest-rank indexing.
// On 50 sorted samples, p99 is the 50th — the old truncating
// int(p*(n-1)) form returned the 49th (~p96).
func TestPctDurNearestRank(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 50; i++ {
		s = append(s, time.Duration(i))
	}
	if got := pctDur(s, 0.99); got != 50 {
		t.Fatalf("p99 of 1..50 = %d, want 50", got)
	}
	if got := pctDur(s, 0.50); got != 25 {
		t.Fatalf("p50 of 1..50 = %d, want 25", got)
	}
	if got := pctDur(nil, 0.99); got != 0 {
		t.Fatalf("p99 of empty = %d, want 0", got)
	}
	if got := pctDur(s[:1], 0.99); got != 1 {
		t.Fatalf("p99 of singleton = %d, want the sample", got)
	}
}

// TestParseTenants covers the mix grammar and its defaults.
func TestParseTenants(t *testing.T) {
	mix, err := parseTenants("frontend:interactive:3,analytics:batch,scrub")
	if err != nil {
		t.Fatal(err)
	}
	want := []tenantSpec{
		{name: "frontend", priority: "interactive", weight: 3},
		{name: "analytics", priority: "batch", weight: 1},
		{name: "scrub", priority: "batch", weight: 1},
	}
	if len(mix) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(mix), len(want))
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("tenant %d = %+v, want %+v", i, mix[i], want[i])
		}
	}
	if def, err := parseTenants(""); err != nil || len(def) != 1 || def[0].name != "default" {
		t.Fatalf("default mix = %+v err=%v, want one default tenant", def, err)
	}
	for _, bad := range []string{":interactive", "a:b:c:d", "a:batch:0", "a:batch:x"} {
		if _, err := parseTenants(bad); err == nil {
			t.Fatalf("parseTenants(%q) accepted, want error", bad)
		}
	}
}

// TestPickTenantWeights checks the weighted draw is proportional.
func TestPickTenantWeights(t *testing.T) {
	mix := []tenantSpec{
		{name: "a", weight: 3},
		{name: "b", weight: 1},
	}
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[pickTenant(rng, mix).name]++
	}
	frac := float64(counts["a"]) / draws
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("tenant a drawn %.3f of the time, want ~0.75", frac)
	}
}

// TestArrivalGenRates checks each process is monotone and hits its mean
// rate to within sampling error over a long window.
func TestArrivalGenRates(t *testing.T) {
	const rate, window = 200.0, 60.0 // arrivals/s over a virtual minute
	for _, kind := range []string{"poisson", "uniform", "bursty", "diurnal"} {
		g := &arrivalGen{kind: kind, rate: rate, period: time.Second, rng: rand.New(rand.NewSource(42))}
		var prev time.Duration
		n := 0
		for {
			next := g.next()
			if next <= prev {
				t.Fatalf("%s: arrival %v not after %v", kind, next, prev)
			}
			prev = next
			if prev > time.Duration(window*float64(time.Second)) {
				break
			}
			n++
		}
		got := float64(n) / window
		if math.Abs(got-rate)/rate > 0.1 {
			t.Fatalf("%s: realized rate %.1f/s, want %.1f/s ±10%%", kind, got, rate)
		}
	}
}

// TestRunOnePollTerminalStatuses is the S1 regression test: a poll that
// returns 404 (the record was evicted under RetainJobs) or an unknown
// state must terminate the loop, not spin forever.
func TestRunOnePollTerminalStatuses(t *testing.T) {
	for _, tc := range []struct {
		name       string
		pollStatus int
		pollBody   string
		outcome    string
		counter    func(*counters) int64
	}{
		{"evicted-404", http.StatusNotFound, `{"error":"serve: no such job"}`, "lost",
			func(c *counters) int64 { return c.lost.Load() }},
		{"unknown-state", http.StatusOK, `{"id":"j1","state":"mystery"}`, "error",
			func(c *counters) int64 { return c.httpErrs.Load() }},
		{"server-error", http.StatusInternalServerError, `{}`, "error",
			func(c *counters) int64 { return c.httpErrs.Load() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var polls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				if r.Method == "POST" {
					w.WriteHeader(http.StatusAccepted)
					w.Write([]byte(`{"id":"j1","state":"queued"}`))
					return
				}
				polls.Add(1)
				w.WriteHeader(tc.pollStatus)
				w.Write([]byte(tc.pollBody))
			}))
			defer srv.Close()

			var cnt counters
			done := make(chan string, 1)
			go func() {
				_, outcome := runOne(srv.Client(), srv.URL, submitReq{program: "fib", timeoutMS: 1000}, time.Now(), &cnt)
				done <- outcome
			}()
			select {
			case outcome := <-done:
				if outcome != tc.outcome {
					t.Fatalf("outcome = %q, want %q", outcome, tc.outcome)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("runOne still polling after 5s (%d polls) — terminal status did not terminate it", polls.Load())
			}
			if got := tc.counter(&cnt); got != 1 {
				t.Fatalf("counter = %d, want 1", got)
			}
			if polls.Load() != 1 {
				t.Fatalf("polled %d times, want exactly 1", polls.Load())
			}
		})
	}
}

// TestRunOnePollDeadline bounds the loop against a server that answers
// 200 forever without the job ever settling.
func TestRunOnePollDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the poll grace period")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == "POST" {
			w.WriteHeader(http.StatusAccepted)
		}
		w.Write([]byte(`{"id":"j1","state":"running"}`))
	}))
	defer srv.Close()

	var cnt counters
	done := make(chan string, 1)
	go func() {
		// timeoutMS -9500 pulls the deadline (timeout + 10s grace) down to
		// ~500ms so the test stays fast.
		_, outcome := runOne(srv.Client(), srv.URL, submitReq{program: "fib", timeoutMS: -9500}, time.Now(), &cnt)
		done <- outcome
	}()
	select {
	case outcome := <-done:
		if outcome != "poll-timeout" || cnt.pollTimeouts.Load() != 1 {
			t.Fatalf("outcome=%q poll_timeouts=%d, want poll-timeout/1", outcome, cnt.pollTimeouts.Load())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("poll deadline never fired")
	}
}
