// Command adaptivetc-chaos runs seeded fault-injection soak campaigns
// against the scheduling engines and the resident pool, and reports a
// per-fault verdict table. Every case is identified by a replay tuple
//
//	<mode>/w<workers>/<engine>/<program>/<scenario>/<seed>
//
// printed whenever the case fails; `adaptivetc-chaos -replay <tuple>` runs
// exactly that case again (twice, on Sim, verifying the two runs are
// byte-identical), so any chaos failure is a one-line regression.
//
// Usage:
//
//	adaptivetc-chaos -duration 20s                      # full soak
//	adaptivetc-chaos -mode sim -scenarios panic,stall   # targeted
//	adaptivetc-chaos -replay sim/w4/adaptivetc/nqueens-array=6/steal-burst/7
//
// Verdicts per case: "completed" runs must produce the serial oracle's
// value and an invariant-clean trace (trace.Recorder.Check); "aborted"
// runs — injected panic, forced overflow, deadline — must surface a known
// abort class and a truncation-clean trace (CheckTruncated); "rejected"
// submissions must surface ErrQueueFull. Anything else (wrong value,
// invariant violation, unexpected panic class, leaked goroutines) fails
// the process with exit status 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"adaptivetc/internal/cilk"
	"adaptivetc/internal/core"
	"adaptivetc/internal/cutoff"
	"adaptivetc/internal/faults"
	"adaptivetc/internal/sched"
	"adaptivetc/internal/slaw"
	"adaptivetc/internal/trace"
	"adaptivetc/internal/wsrt"
	"adaptivetc/problems/registry"
)

// chaosEngine is the intersection the campaigns need: batch Run for Sim
// cases and NewExec for resident-pool jobs.
type chaosEngine interface {
	Name() string
	Run(sched.Program, sched.Options) (sched.Result, error)
	NewExec(int, sched.Options) wsrt.Engine
}

var engineMakers = map[string]func() chaosEngine{
	"adaptivetc":        func() chaosEngine { return core.New() },
	"cilk":              func() chaosEngine { return cilk.New() },
	"cilk-synched":      func() chaosEngine { return cilk.NewSynched() },
	"cutoff-programmer": func() chaosEngine { return cutoff.NewProgrammer() },
	"cutoff-library":    func() chaosEngine { return cutoff.NewLibrary() },
	"helpfirst":         func() chaosEngine { return slaw.NewHelpFirst() },
	"slaw":              func() chaosEngine { return slaw.New() },
}

func engineNames() []string {
	return []string{"adaptivetc", "cilk", "cilk-synched", "cutoff-programmer",
		"cutoff-library", "helpfirst", "slaw"}
}

// progSpec is one "name=N" program instance.
type progSpec struct {
	name string
	n    int
}

func (p progSpec) String() string {
	if p.n == 0 {
		return p.name
	}
	return fmt.Sprintf("%s=%d", p.name, p.n)
}

func (p progSpec) build() (sched.Program, error) {
	return registry.Build(p.name, registry.Params{N: p.n})
}

func parsePrograms(csv string) ([]progSpec, error) {
	var out []progSpec
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ps := progSpec{name: part}
		if name, nStr, ok := strings.Cut(part, "="); ok {
			n, err := strconv.Atoi(nStr)
			if err != nil {
				return nil, fmt.Errorf("bad program %q: %v", part, err)
			}
			ps = progSpec{name: name, n: n}
		}
		if _, err := ps.build(); err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	if len(out) == 0 {
		return nil, errors.New("no programs")
	}
	return out, nil
}

// caseSpec identifies one chaos case; its tuple is the replay handle.
type caseSpec struct {
	mode     string // "sim" or "pool"
	workers  int
	engine   string
	prog     progSpec
	scenario string
	seed     int64
}

func (c caseSpec) tuple() string {
	return fmt.Sprintf("%s/w%d/%s/%s/%s/%d", c.mode, c.workers, c.engine, c.prog, c.scenario, c.seed)
}

func parseTuple(s string) (caseSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), "/")
	if len(parts) != 6 {
		return caseSpec{}, fmt.Errorf("replay tuple needs 6 '/'-separated fields, got %q", s)
	}
	var c caseSpec
	c.mode = parts[0]
	if c.mode != "sim" && c.mode != "pool" {
		return c, fmt.Errorf("replay mode must be sim or pool, got %q", c.mode)
	}
	w, err := strconv.Atoi(strings.TrimPrefix(parts[1], "w"))
	if err != nil || w <= 0 {
		return c, fmt.Errorf("bad worker field %q", parts[1])
	}
	c.workers = w
	c.engine = parts[2]
	if _, ok := engineMakers[c.engine]; !ok {
		return c, fmt.Errorf("unknown engine %q", c.engine)
	}
	progs, err := parsePrograms(parts[3])
	if err != nil {
		return c, err
	}
	c.prog = progs[0]
	c.scenario = parts[4]
	if _, err := faults.Scenario(c.scenario, 1); err != nil {
		return c, err
	}
	c.seed, err = strconv.ParseInt(parts[5], 10, 64)
	if err != nil {
		return c, fmt.Errorf("bad seed %q", parts[5])
	}
	return c, nil
}

// verdict is one case's outcome. err non-nil means the case FAILED (wrong
// value, invariant violation, unexpected panic, leak); class records how
// the run ended for the per-fault table.
type verdict struct {
	c     caseSpec
	class string // "completed", "aborted", "rejected"
	err   error
}

// oracles caches the serial reference value per program instance.
type oracles struct{ m map[string]int64 }

func (o *oracles) value(p progSpec) (int64, error) {
	if o.m == nil {
		o.m = map[string]int64{}
	}
	if v, ok := o.m[p.String()]; ok {
		return v, nil
	}
	prog, err := p.build()
	if err != nil {
		return 0, err
	}
	res, err := sched.Serial{}.Run(prog, sched.Options{})
	if err != nil {
		return 0, err
	}
	o.m[p.String()] = res.Value
	return res.Value, nil
}

// knownAbort reports whether err is an abort class chaos is allowed to
// surface: injected/organic overflow, injected/organic panic quarantine,
// deadline or cancellation, pool shutdown.
func knownAbort(err error) bool {
	return errors.Is(err, sched.ErrDequeOverflow) ||
		errors.Is(err, wsrt.ErrJobPanicked) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, wsrt.ErrPoolClosed)
}

// simOutcome captures everything observable about one Sim case, for the
// byte-identical replay comparison.
type simOutcome struct {
	Value   int64
	Err     string
	Workers [][]trace.Event
	Deques  [][]trace.DequeEvent
}

// runSim executes one case on the Sim platform with a fresh recorder and
// returns its verdict plus the full observable outcome. A panic escaping
// the batch runtime (the injected program-panic fault propagates on batch
// runs by design) is recovered here and classified.
func runSim(c caseSpec, orc *oracles) (verdict, *simOutcome) {
	v := verdict{c: c}
	prog, err := c.prog.build()
	if err != nil {
		v.err = err
		return v, nil
	}
	want, err := orc.value(c.prog)
	if err != nil {
		v.err = fmt.Errorf("serial oracle: %w", err)
		return v, nil
	}
	spec, err := faults.Scenario(c.scenario, c.seed)
	if err != nil {
		v.err = err
		return v, nil
	}
	rec := trace.NewRecorder()
	defer rec.Release()
	opt := sched.Options{
		Workers: c.workers,
		Seed:    c.seed,
		Tracer:  rec,
		Faults:  faults.New(spec),
	}
	res, runErr := func() (res sched.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(faults.PanicValue); ok {
					err = fmt.Errorf("%w: %v", wsrt.ErrJobPanicked, r)
					return
				}
				err = fmt.Errorf("unexpected panic class: %v", r)
			}
		}()
		return engineMakers[c.engine]().Run(prog, opt)
	}()

	out := &simOutcome{Value: res.Value}
	if runErr != nil {
		out.Err = runErr.Error()
	}
	for i := 0; i < rec.Workers(); i++ {
		out.Workers = append(out.Workers, append([]trace.Event(nil), rec.WorkerLog(i).Events()...))
		out.Deques = append(out.Deques, append([]trace.DequeEvent(nil), rec.DequeLog(i).Events()...))
	}

	switch {
	case runErr == nil:
		v.class = "completed"
		if res.Value != want {
			v.err = fmt.Errorf("wrong value: got %d, serial oracle %d", res.Value, want)
		} else if cerr := rec.Check(res.Value, want); cerr != nil {
			v.err = fmt.Errorf("invariant violation: %w", cerr)
		}
	case knownAbort(runErr):
		v.class = "aborted"
		if cerr := rec.CheckTruncated(); cerr != nil {
			v.err = fmt.Errorf("invariant violation in aborted run (%v): %w", runErr, cerr)
		}
	default:
		v.class = "aborted"
		v.err = fmt.Errorf("unknown abort class: %w", runErr)
	}
	return v, out
}

// runPoolCampaign drives one scenario against a sharded resident pool:
// the scenario's plan injects at both levels (admission/shard starvation on
// the pool, worker/deque faults per job). Every job gets its own recorder
// and a safety deadline so a wedge surfaces as an abort, not a hang.
func runPoolCampaign(scenario string, seed int64, engines []string, programs []progSpec,
	workers, jobs int, orc *oracles) []verdict {
	spec, err := faults.Scenario(scenario, seed)
	if err != nil {
		return []verdict{{c: caseSpec{mode: "pool", scenario: scenario, seed: seed}, err: err}}
	}
	plan := faults.New(spec)
	maxJobs := 2
	if workers < 2 {
		maxJobs = 1
	}
	pool := wsrt.NewPool(wsrt.PoolConfig{
		Workers:           workers,
		MaxConcurrentJobs: maxJobs,
		ShardPolicy:       wsrt.ShardAdaptive,
		Options:           sched.Options{Seed: seed},
		Faults:            plan,
	})

	type inflight struct {
		c   caseSpec
		h   *wsrt.JobHandle
		rec *trace.Recorder
	}
	var verdicts []verdict
	var running []inflight
	for i := 0; i < jobs; i++ {
		c := caseSpec{
			mode:     "pool",
			workers:  workers,
			engine:   engines[i%len(engines)],
			prog:     programs[i%len(programs)],
			scenario: scenario,
			seed:     seed + int64(i),
		}
		prog, err := c.prog.build()
		if err != nil {
			verdicts = append(verdicts, verdict{c: c, err: err})
			continue
		}
		rec := trace.NewRecorder()
		h, err := pool.Submit(wsrt.JobSpec{
			Prog:   prog,
			Engine: engineMakers[c.engine](),
			Tracer: rec,
			Faults: faults.New(faults.Spec{Seed: c.seed, StealFail: spec.StealFail,
				StealFailBurst: spec.StealFailBurst, Stall: spec.Stall, StallNS: spec.StallNS,
				DepositDelay: spec.DepositDelay, DepositDelayNS: spec.DepositDelayNS,
				Panic: spec.Panic, Overflow: spec.Overflow}),
			Deadline: 10 * time.Second,
		})
		if err != nil {
			rec.Release()
			v := verdict{c: c, class: "rejected"}
			if !errors.Is(err, wsrt.ErrQueueFull) && !errors.Is(err, wsrt.ErrPoolClosed) {
				v.err = fmt.Errorf("unknown rejection class: %w", err)
			}
			verdicts = append(verdicts, v)
			continue
		}
		running = append(running, inflight{c: c, h: h, rec: rec})
	}
	for _, f := range running {
		res, runErr := f.h.Result()
		v := verdict{c: f.c}
		want, oerr := orc.value(f.c.prog)
		switch {
		case oerr != nil:
			v.err = fmt.Errorf("serial oracle: %w", oerr)
		case runErr == nil:
			v.class = "completed"
			if res.Value != want {
				v.err = fmt.Errorf("wrong value: got %d, serial oracle %d", res.Value, want)
			} else if cerr := f.rec.Check(res.Value, want); cerr != nil {
				v.err = fmt.Errorf("invariant violation: %w", cerr)
			}
		case knownAbort(runErr):
			v.class = "aborted"
			if cerr := f.rec.CheckTruncated(); cerr != nil {
				v.err = fmt.Errorf("invariant violation in aborted job (%v): %w", runErr, cerr)
			}
		default:
			v.class = "aborted"
			v.err = fmt.Errorf("unknown abort class: %w", runErr)
		}
		f.rec.Release()
		verdicts = append(verdicts, v)
	}
	pool.Close()
	return verdicts
}

// replay runs one Sim case twice and verifies the runs are byte-identical:
// same value, same error, same per-worker event streams, same per-deque
// FSM transitions. Pool tuples replay as a single-job campaign (outcomes
// on the Real platform are seed-reproducible per stream but interleavings
// are not byte-comparable, so only the verdict is checked).
func replay(c caseSpec, orc *oracles) int {
	if c.mode == "pool" {
		vs := runPoolCampaign(c.scenario, c.seed, []string{c.engine}, []progSpec{c.prog}, c.workers, 1, orc)
		bad := 0
		for _, v := range vs {
			fmt.Printf("%s: %s\n", v.c.tuple(), verdictString(v))
			if v.err != nil {
				bad++
			}
		}
		if bad > 0 {
			return 1
		}
		return 0
	}
	v1, o1 := runSim(c, orc)
	v2, o2 := runSim(c, orc)
	fmt.Printf("%s: %s\n", c.tuple(), verdictString(v1))
	if !reflect.DeepEqual(o1, o2) {
		fmt.Printf("REPLAY DIVERGED: two runs of %s produced different schedules\n", c.tuple())
		return 1
	}
	fmt.Printf("replayed byte-identically: value=%d err=%q events=%d\n",
		o1.Value, o1.Err, countEvents(o1))
	if v1.err != nil || v2.err != nil {
		return 1
	}
	return 0
}

func countEvents(o *simOutcome) int {
	n := 0
	for _, evs := range o.Workers {
		n += len(evs)
	}
	return n
}

func verdictString(v verdict) string {
	if v.err != nil {
		return fmt.Sprintf("FAIL (%s): %v", v.class, v.err)
	}
	return v.class
}

func main() {
	seed := flag.Int64("seed", 20100424, "master seed; every case seed derives from it")
	duration := flag.Duration("duration", 20*time.Second, "soak budget")
	mode := flag.String("mode", "all", "campaign mode: sim, pool, or all")
	workers := flag.Int("workers", 4, "workers per case (pool size in pool mode)")
	jobs := flag.Int("jobs", 16, "jobs per pool campaign")
	enginesCSV := flag.String("engines", strings.Join(engineNames(), ","), "engines to soak")
	programsCSV := flag.String("programs", "nqueens-array=6,fib=14,knight=4", "programs (name or name=N)")
	scenariosCSV := flag.String("scenarios", strings.Join(faults.Scenarios(), ","), "fault scenarios")
	replayTuple := flag.String("replay", "", "replay one case tuple and exit")
	verbose := flag.Bool("v", false, "print every case verdict")
	flag.Parse()

	orc := &oracles{}
	if *replayTuple != "" {
		c, err := parseTuple(*replayTuple)
		if err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
			os.Exit(2)
		}
		os.Exit(replay(c, orc))
	}

	programs, err := parsePrograms(*programsCSV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
		os.Exit(2)
	}
	var engines []string
	for _, e := range strings.Split(*enginesCSV, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if _, ok := engineMakers[e]; !ok {
			fmt.Fprintf(os.Stderr, "adaptivetc-chaos: unknown engine %q\n", e)
			os.Exit(2)
		}
		engines = append(engines, e)
	}
	var scenarios []string
	for _, s := range strings.Split(*scenariosCSV, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, err := faults.Scenario(s, 1); err != nil {
			fmt.Fprintf(os.Stderr, "adaptivetc-chaos: %v\n", err)
			os.Exit(2)
		}
		scenarios = append(scenarios, s)
	}

	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)

	// tally[scenario][class] plus failures collected globally.
	tally := map[string]map[string]int{}
	var failures []verdict
	record := func(v verdict) {
		if tally[v.c.scenario] == nil {
			tally[v.c.scenario] = map[string]int{}
		}
		key := v.class
		if v.err != nil {
			key = "FAILED"
			failures = append(failures, v)
			fmt.Printf("FAIL %s: %v\n", v.c.tuple(), v.err)
			fmt.Printf("  replay with: adaptivetc-chaos -replay %s\n", v.c.tuple())
		} else if *verbose {
			fmt.Printf("ok   %s: %s\n", v.c.tuple(), v.class)
		}
		tally[v.c.scenario][key]++
	}

	cases := 0
	for round := 0; time.Now().Before(deadline); round++ {
		for _, scen := range scenarios {
			if !time.Now().Before(deadline) {
				break
			}
			if *mode == "sim" || *mode == "all" {
				c := caseSpec{
					mode:     "sim",
					workers:  *workers,
					engine:   engines[rng.Intn(len(engines))],
					prog:     programs[rng.Intn(len(programs))],
					scenario: scen,
					seed:     rng.Int63n(1 << 30),
				}
				v, _ := runSim(c, orc)
				record(v)
				cases++
			}
			if *mode == "pool" || *mode == "all" {
				campaignSeed := rng.Int63n(1 << 30)
				for _, v := range runPoolCampaign(scen, campaignSeed, engines, programs, *workers, *jobs, orc) {
					record(v)
					cases++
				}
			}
		}
	}

	// Leak check: every pool campaign closed its pool; give exiting
	// goroutines a moment before declaring a leak.
	leaked := 0
	for i := 0; i < 50; i++ {
		leaked = runtime.NumGoroutine() - baseGoroutines
		if leaked <= 2 {
			leaked = 0
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Printf("\nchaos soak: %d cases, seed %d\n", cases, *seed)
	for _, scen := range scenarios {
		parts := []string{}
		for _, class := range []string{"completed", "aborted", "rejected", "FAILED"} {
			if n := tally[scen][class]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", class, n))
			}
		}
		fmt.Printf("  %-14s %s\n", scen, strings.Join(parts, " "))
	}
	if leaked > 0 {
		fmt.Printf("FAIL: %d goroutines leaked past pool shutdown\n", leaked)
	}
	if len(failures) > 0 || leaked > 0 {
		fmt.Printf("chaos soak FAILED: %d failing cases, %d leaked goroutines\n", len(failures), leaked)
		os.Exit(1)
	}
	fmt.Println("chaos soak clean: every verdict completed, aborted or rejected within contract")
}
